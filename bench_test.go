// Package main_test benchmarks the reproduction harness: one testing.B
// target per table and figure of the evaluation (see DESIGN.md's
// per-experiment index). Each bench runs the experiment at Quick scale —
// the same code path as `repro <id>`, so `go test -bench` both regenerates
// every result and reports how long each costs. Failures inside an
// experiment fail the bench.
package main_test

import (
	"testing"

	"powercap/internal/experiments"
)

func benchTable(b *testing.B, run func() (experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", tab.ID)
		}
	}
}

func BenchmarkFig42(b *testing.B) {
	benchTable(b, experiments.Fig42)
}

func BenchmarkFig43(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig43(experiments.Quick, 1) })
}

func BenchmarkTable42(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Table42(experiments.Quick, 1) })
}

func BenchmarkFig44(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig44(experiments.Quick, 1) })
}

func BenchmarkFig45(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig45(experiments.Quick, 1) })
}

func BenchmarkFig46(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig46(experiments.Quick, 1) })
}

func BenchmarkFig47(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig47(experiments.Quick, 1) })
}

func BenchmarkFig48(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig48(1) })
}

func BenchmarkFig49(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig49(1) })
}

func BenchmarkFig410(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig410(experiments.Quick, 1) })
}

func BenchmarkFig31(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig31(1) })
}

func BenchmarkFig35(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig35(experiments.Quick, 1) })
}

func BenchmarkFig37(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig37(experiments.Quick, 1) })
}

func BenchmarkTable32(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Table32(experiments.Quick, 1) })
}

func BenchmarkFig34(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig34(experiments.Quick, 1) })
}

func BenchmarkFig310(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig310(experiments.Quick, 1) })
}

func BenchmarkFig311(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig311(experiments.Quick, 1) })
}

func BenchmarkFig312(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig312(experiments.Quick, 1) })
}

func BenchmarkFig313(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig313(experiments.Quick, 1) })
}

func BenchmarkFig314(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig314(experiments.Quick, 1) })
}

func BenchmarkFig52(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig52(experiments.Quick, 1) })
}

func BenchmarkFig53(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig53(experiments.Quick, 1) })
}

func BenchmarkTable52(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Table52(experiments.Quick, 1) })
}

func BenchmarkFig54(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig54(experiments.Quick, 1) })
}

func BenchmarkFig55(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig55(experiments.Quick, 1) })
}

func BenchmarkScaling(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Scaling(experiments.Quick, 1) })
}

func BenchmarkSafety(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Safety(experiments.Quick, 1) })
}

func BenchmarkFXplore(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.FXplore(experiments.Quick, 1) })
}

func BenchmarkHierarchy(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Hierarchy(experiments.Quick, 1) })
}

func BenchmarkAsync(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Async(experiments.Quick, 1) })
}

func BenchmarkFailure(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Failure(experiments.Quick, 1) })
}

func BenchmarkAblation(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Ablation(experiments.Quick, 1) })
}

func BenchmarkFig57(b *testing.B) {
	benchTable(b, func() (experiments.Table, error) { return experiments.Fig57(experiments.Quick, 1) })
}
