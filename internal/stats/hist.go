package stats

import (
	"math/bits"
	"time"
)

// LatencyHist is a fixed-footprint log-linear latency histogram in the
// HdrHistogram tradition: durations are bucketed by octave (power of two
// nanoseconds) with histSub linear sub-buckets per octave, giving a
// worst-case quantile error of 1/histSub (~6%) at any magnitude from
// nanoseconds to hours. Record is branch-light, allocation-free and O(1),
// so the load harness can call it on the serving hot path; the struct is
// NOT safe for concurrent use — give each worker its own and Merge at the
// end, which also keeps recording free of atomics.
type LatencyHist struct {
	counts [histBuckets]uint64
	n      uint64
	maxNs  int64
	sumNs  int64
}

const (
	histOctaves  = 40 // 2^40 ns ≈ 18 minutes; beyond clamps to the top bucket
	histSub      = 16 // linear sub-buckets per octave
	histSubShift = 4  // log2(histSub)
	histBuckets  = histOctaves * histSub
)

// bucket maps a non-negative nanosecond value to its bucket index.
func bucket(ns int64) int {
	v := uint64(ns)
	if v < histSub {
		// The first histSub values map 1:1 — the range below 2^histSubShift.
		return int(v)
	}
	shift := bits.Len64(v) - 1 - histSubShift
	sub := int(v>>uint(shift)) & (histSub - 1)
	idx := (shift+1)*histSub + sub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketUpperNs returns the inclusive upper bound of bucket idx — the value
// quantiles report, so a quantile never understates the latency.
func bucketUpperNs(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	shift := idx/histSub - 1
	lo := (int64(histSub) + int64(idx%histSub)) << uint(shift)
	width := int64(1) << uint(shift)
	return lo + width - 1
}

// Record adds one duration sample. Negative durations count as zero.
func (h *LatencyHist) Record(d time.Duration) { h.RecordNs(int64(d)) }

// RecordNs adds one sample measured in nanoseconds.
func (h *LatencyHist) RecordNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucket(ns)]++
	h.n++
	h.sumNs += ns
	if ns > h.maxNs {
		h.maxNs = ns
	}
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() uint64 { return h.n }

// Max returns the largest recorded sample exactly (not bucket-rounded).
func (h *LatencyHist) Max() time.Duration { return time.Duration(h.maxNs) }

// Mean returns the arithmetic mean of the recorded samples.
func (h *LatencyHist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sumNs / int64(h.n))
}

// Merge folds other's samples into h.
func (h *LatencyHist) Merge(other *LatencyHist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sumNs += other.sumNs
	if other.maxNs > h.maxNs {
		h.maxNs = other.maxNs
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) as the upper bound of the
// bucket containing it — a conservative estimate within 1/histSub of the
// true value. The exact maximum is substituted for the top bucket so p100
// (and any quantile landing on the final sample) is exact.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sample the quantile selects.
	rank := uint64(q*float64(h.n-1)) + 1
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			up := bucketUpperNs(i)
			// The last non-empty bucket holds the max; report it exactly.
			// That also covers the saturated top bucket, whose nominal upper
			// bound understates off-scale samples clamped into it.
			if seen == h.n && (up >= h.maxNs || i == histBuckets-1) {
				return time.Duration(h.maxNs)
			}
			if up > h.maxNs {
				up = h.maxNs
			}
			return time.Duration(up)
		}
	}
	return time.Duration(h.maxNs)
}
