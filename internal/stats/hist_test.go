package stats

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// Bucket boundaries must be consistent: every value maps to a bucket whose
// upper bound is >= the value, and bucket indices are monotone in value.
func TestHistBucketBounds(t *testing.T) {
	values := []int64{0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1023, 1024,
		1_000_000, 123_456_789, 1 << 39, (1 << 40) - 1, 1 << 41, 1 << 62}
	prev := -1
	for _, v := range values {
		idx := bucket(v)
		if idx < prev {
			t.Fatalf("bucket not monotone: bucket(%d)=%d after %d", v, idx, prev)
		}
		prev = idx
		up := bucketUpperNs(idx)
		if up < v && idx < histBuckets-1 {
			t.Fatalf("bucketUpperNs(bucket(%d)) = %d < value", v, up)
		}
		// The upper bound maps back to the same bucket (closed intervals).
		if idx < histBuckets-1 && bucket(up) != idx {
			t.Fatalf("bucket(bucketUpperNs(%d)) = %d, want %d", idx, bucket(up), idx)
		}
	}
	// Exhaustively verify the 1:1 region and the first octaves.
	for v := int64(0); v < 4096; v++ {
		idx := bucket(v)
		if up := bucketUpperNs(idx); up < v {
			t.Fatalf("value %d: upper bound %d below value", v, up)
		}
		if idx > 0 {
			if lowUp := bucketUpperNs(idx - 1); lowUp >= v {
				t.Fatalf("value %d landed in bucket %d but previous bucket tops at %d", v, idx, lowUp)
			}
		}
	}
}

// Quantiles must sit within one sub-bucket (1/16 relative) of the exact
// order statistic, and never below it.
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h LatencyHist
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform from ~100ns to ~100ms — the latency range the API
		// harness actually sees.
		ns := int64(100 * pow2(rng.Float64()*20))
		samples = append(samples, ns)
		h.RecordNs(ns)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })

	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Fatalf("q%.3f: %d understates exact %d", q, got, exact)
		}
		// Upper-bound reporting is at most one sub-bucket above.
		if float64(got) > float64(exact)*(1+2.0/histSub)+1 {
			t.Fatalf("q%.3f: %d overstates exact %d beyond bucket width", q, got, exact)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("p100 %v != exact max %v", h.Quantile(1), h.Max())
	}
}

func pow2(x float64) float64 {
	r := 1.0
	for x >= 1 {
		r *= 2
		x--
	}
	// Linear blend is fine for test data; exactness is irrelevant here.
	return r * (1 + x)
}

func TestHistMergeMatchesCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, all LatencyHist
	for i := 0; i < 5000; i++ {
		ns := rng.Int63n(1_000_000)
		if i%2 == 0 {
			a.RecordNs(ns)
		} else {
			b.RecordNs(ns)
		}
		all.RecordNs(ns)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Max() != all.Max() || a.Mean() != all.Mean() {
		t.Fatalf("merge mismatch: count %d/%d max %v/%v mean %v/%v",
			a.Count(), all.Count(), a.Max(), all.Max(), a.Mean(), all.Mean())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q%.3f: merged %v != combined %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestHistEdgeCases(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-time.Second) // negative clamps to zero
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative sample handling: count=%d max=%v", h.Count(), h.Max())
	}
	h.RecordNs(1 << 62) // beyond the top octave clamps to the last bucket
	if got := h.Quantile(1); got != time.Duration(1<<62) {
		t.Fatalf("top-bucket max must be exact, got %v", got)
	}
}

// Record must be allocation-free — it runs on the load harness hot path.
func TestHistRecordZeroAlloc(t *testing.T) {
	var h LatencyHist
	allocs := testing.AllocsPerRun(1000, func() { h.RecordNs(12345) })
	if allocs != 0 {
		t.Fatalf("RecordNs allocated %.1f allocs/op, want 0", allocs)
	}
}
