// Package stats provides descriptive statistics and small regression
// utilities used throughout the evaluation harness: means (arithmetic and
// geometric), coefficient of variation (the text's unfairness metric),
// polynomial least-squares regression (used for the Fig. 4.10 cubic fit and
// the throughput models), and simple distribution helpers.
package stats

import (
	"math"
	"sort"

	"powercap/internal/linalg"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, computed in log space for
// numerical robustness. All inputs must be positive; it returns 0 for an
// empty slice and NaN if any element is non-positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoeffVar returns the coefficient of variation σ/μ — the dissertation's
// "unfairness" metric over per-workload ANPs. It returns 0 when the mean
// is 0.
func CoeffVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PolyFit fits a polynomial of the given degree to (xs, ys) by least squares
// and returns the coefficients c where y ≈ c[0] + c[1]x + … + c[deg]x^deg.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, linalg.ErrShape
	}
	a := linalg.New(len(xs), degree+1)
	for i, x := range xs {
		v := 1.0
		for j := 0; j <= degree; j++ {
			a.Set(i, j, v)
			v *= x
		}
	}
	return linalg.LeastSquares(a, ys)
}

// PolyEval evaluates the polynomial with coefficients c at x (Horner form).
func PolyEval(c []float64, x float64) float64 {
	var y float64
	for i := len(c) - 1; i >= 0; i-- {
		y = y*x + c[i]
	}
	return y
}

// MeanAbsError returns the mean |pred−truth| over the paired slices.
func MeanAbsError(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stats: length mismatch")
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// MeanAbsPctError returns the mean |pred−truth|/|truth| (as a fraction) over
// the paired slices. Entries with truth == 0 are skipped.
func MeanAbsPctError(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stats: length mismatch")
	}
	var s float64
	var n int
	for i := range pred {
		if truth[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-truth[i]) / math.Abs(truth[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// RSquared returns the coefficient of determination of predictions against
// observations.
func RSquared(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stats: length mismatch")
	}
	m := Mean(truth)
	var ssRes, ssTot float64
	for i := range truth {
		d := truth[i] - pred[i]
		ssRes += d * d
		e := truth[i] - m
		ssTot += e * e
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Histogram bins xs into n equal-width bins over [min, max] and returns the
// bin counts and bin edges (n+1 edges). Values exactly at max land in the
// last bin.
func Histogram(xs []float64, n int, min, max float64) (counts []int, edges []float64) {
	counts = make([]int, n)
	edges = make([]float64, n+1)
	width := (max - min) / float64(n)
	for i := range edges {
		edges[i] = min + float64(i)*width
	}
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		b := int((x - min) / width)
		if b == n {
			b = n - 1
		}
		counts[b]++
	}
	return counts, edges
}

// Normalize scales xs so that it sums to 1. It returns a copy; if the sum is
// 0 the copy is returned unchanged.
func Normalize(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	s := Sum(out)
	if s == 0 {
		return out
	}
	for i := range out {
		out[i] /= s
	}
	return out
}
