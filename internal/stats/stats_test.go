package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2, 1e-12) {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almost(got, 2, 1e-12) {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("GeoMean with non-positive input must be NaN")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
}

func TestGeoMeanLEArithMean(t *testing.T) {
	// AM-GM inequality on positive data.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*10 + 0.01
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestCoeffVar(t *testing.T) {
	if CoeffVar([]float64{5, 5, 5}) != 0 {
		t.Fatal("constant data must have zero CV")
	}
	if CoeffVar([]float64{0, 0}) != 0 {
		t.Fatal("zero-mean data must return 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := CoeffVar(xs); !almost(got, 2.0/5.0, 1e-12) {
		t.Fatalf("CV = %v, want 0.4", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 || Sum(xs) != 12 {
		t.Fatalf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Fatalf("p50 of {0,10} = %v, want 5", got)
	}
}

func TestPolyFitRecoversExactCubic(t *testing.T) {
	c := []float64{1, -2, 0.5, 0.25}
	xs := []float64{-3, -2, -1, 0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = PolyEval(c, x)
	}
	got, err := PolyFit(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if !almost(got[i], c[i], 1e-8) {
			t.Fatalf("coef[%d] = %v, want %v", i, got[i], c[i])
		}
	}
}

func TestPolyFitLengthMismatch(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestPolyEvalHorner(t *testing.T) {
	// 2 + 3x + x² at x=2 → 2+6+4 = 12.
	if got := PolyEval([]float64{2, 3, 1}, 2); got != 12 {
		t.Fatalf("PolyEval = %v, want 12", got)
	}
	if got := PolyEval(nil, 5); got != 0 {
		t.Fatalf("PolyEval(nil) = %v, want 0", got)
	}
}

func TestErrorsAndR2(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 3}
	if MeanAbsError(pred, truth) != 0 {
		t.Fatal("MAE of perfect prediction must be 0")
	}
	if MeanAbsPctError(pred, truth) != 0 {
		t.Fatal("MAPE of perfect prediction must be 0")
	}
	if got := RSquared(pred, truth); !almost(got, 1, 1e-12) {
		t.Fatalf("R² = %v, want 1", got)
	}
	pred2 := []float64{2, 3, 4}
	if got := MeanAbsError(pred2, truth); !almost(got, 1, 1e-12) {
		t.Fatalf("MAE = %v, want 1", got)
	}
	// MAPE skips zero-truth entries.
	if got := MeanAbsPctError([]float64{1, 5}, []float64{0, 4}); !almost(got, 0.25, 1e-12) {
		t.Fatalf("MAPE = %v, want 0.25", got)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 2, 0, 2)
	if len(edges) != 3 || edges[0] != 0 || edges[2] != 2 {
		t.Fatalf("edges = %v", edges)
	}
	// 0, 0.5 in first bin; 1, 1.5, 2 in second (2 lands in last bin).
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts = %v, want [2 3]", counts)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 3})
	if !almost(out[0], 0.25, 1e-12) || !almost(out[1], 0.75, 1e-12) {
		t.Fatalf("Normalize = %v", out)
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("Normalize of zeros must stay zeros")
	}
}

// Property: PolyFit of degree d on ≥ d+1 distinct points of an exact degree-d
// polynomial reproduces its values at arbitrary points.
func TestPolyFitInterpolationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		c := make([]float64, d+1)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		xs := make([]float64, d+3)
		for i := range xs {
			xs[i] = float64(i) - 2
		}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = PolyEval(c, x)
		}
		got, err := PolyFit(xs, ys, d)
		if err != nil {
			return false
		}
		for x := -5.0; x <= 5; x += 0.7 {
			if !almost(PolyEval(got, x), PolyEval(c, x), 1e-6*(1+math.Abs(PolyEval(c, x)))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
