package knapsack

import (
	"math/rand"
	"testing"

	"powercap/internal/workload"
)

// The DP's O(n·r·B_s) is Chapter 3's stated complexity; this measures its
// constant at the paper's scale.
func benchmarkSolve(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	s := workload.Chapter3Server
	caps := workload.CapGrid(s, 5)
	sets := make([]workload.Set, n)
	for i := range sets {
		sets[i] = workload.NewHeteroSet(workload.Desktop, rng)
	}
	choices, err := CapGridChoices(n, caps, func(i int, cap float64) float64 {
		return sets[i].GroundTruth(cap, s)
	})
	if err != nil {
		b.Fatal(err)
	}
	p := Problem{Choices: choices, Budget: 148 * float64(n), StepW: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve400(b *testing.B)  { benchmarkSolve(b, 400) }
func BenchmarkSolve3200(b *testing.B) { benchmarkSolve(b, 3200) }

func benchProblem(b *testing.B, n int) Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	s := workload.Chapter3Server
	caps := workload.CapGrid(s, 5)
	sets := make([]workload.Set, n)
	for i := range sets {
		sets[i] = workload.NewHeteroSet(workload.Desktop, rng)
	}
	choices, err := CapGridChoices(n, caps, func(i int, cap float64) float64 {
		return sets[i].GroundTruth(cap, s)
	})
	if err != nil {
		b.Fatal(err)
	}
	return Problem{Choices: choices, Budget: 148 * float64(n), StepW: 5}
}

// The warm-workspace re-solve: the DP without any of the allocation.
func BenchmarkSolveToWarm400(b *testing.B) {
	p := benchProblem(b, 400)
	var ws Workspace
	var sol Solution
	if err := ws.SolveTo(&sol, p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ws.SolveTo(&sol, p); err != nil {
			b.Fatal(err)
		}
	}
}

// The SolveAll budget read-off: what each probe of a bisection or
// partition loop costs after the one ceiling DP.
func BenchmarkSolveAllAt400(b *testing.B) {
	p := benchProblem(b, 400)
	all, err := SolveAll(p)
	if err != nil {
		b.Fatal(err)
	}
	var sol Solution
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		budget := all.MinTotal() + float64(i%7000)
		if budget > p.Budget {
			budget = p.Budget
		}
		if err := all.SolveTo(&sol, budget); err != nil {
			b.Fatal(err)
		}
	}
}
