package knapsack

import (
	"math"
	"math/rand"
	"testing"
)

// randomInstance builds a small MCKP with integer watts (so StepW 1
// discretizes exactly and enumeration is the ground truth).
func randomInstance(rng *rand.Rand) Problem {
	n := 1 + rng.Intn(6)
	choices := make([][]Choice, n)
	for i := range choices {
		r := 1 + rng.Intn(4)
		cs := make([]Choice, r)
		for j := range cs {
			cs[j] = Choice{
				Watts: float64(5 + rng.Intn(20)),
				Value: math.Round(rng.NormFloat64()*1000) / 1000,
			}
		}
		choices[i] = cs
	}
	minTotal := 0.0
	span := 0.0
	for _, cs := range choices {
		minW, maxW := cs[0].Watts, cs[0].Watts
		for _, c := range cs {
			minW = math.Min(minW, c.Watts)
			maxW = math.Max(maxW, c.Watts)
		}
		minTotal += minW
		span += maxW - minW
	}
	return Problem{
		Choices: choices,
		Budget:  minTotal + math.Floor(rng.Float64()*(span+1)),
		StepW:   1,
	}
}

// enumerate exhaustively finds the best feasible value.
func enumerate(p Problem) float64 {
	best := math.Inf(-1)
	var rec func(i int, watts, value float64)
	rec = func(i int, watts, value float64) {
		if watts > p.Budget {
			return
		}
		if i == len(p.Choices) {
			if value > best {
				best = value
			}
			return
		}
		for _, c := range p.Choices[i] {
			rec(i+1, watts+c.Watts, value+c.Value)
		}
	}
	rec(0, 0, 0)
	return best
}

// Property: the workspace DP (with dominance pruning and unit
// precomputation) matches exhaustive enumeration on random small
// instances, including ones with negative values and duplicate watts.
func TestSolveMatchesEnumerationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ws Workspace
	for trial := 0; trial < 300; trial++ {
		p := randomInstance(rng)
		sol, err := ws.Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Watts > p.Budget {
			t.Fatalf("trial %d: watts %v over budget %v", trial, sol.Watts, p.Budget)
		}
		if want := enumerate(p); math.Abs(sol.Value-want) > 1e-9 {
			t.Fatalf("trial %d: DP value %v, enumeration %v (problem %+v)", trial, sol.Value, want, p)
		}
		// The picks must reproduce the reported totals exactly.
		var watts, value float64
		for i := len(p.Choices) - 1; i >= 0; i-- {
			watts += p.Choices[i][sol.Pick[i]].Watts
			value += p.Choices[i][sol.Pick[i]].Value
		}
		if watts != sol.Watts || value != sol.Value {
			t.Fatalf("trial %d: picks sum to (%v, %v), solution says (%v, %v)",
				trial, watts, value, sol.Watts, sol.Value)
		}
	}
}

// Property: SolveAll at the ceiling answers every discretized budget (and
// off-grid budgets in between) bit-identically to an independent Solve at
// that budget.
func TestSolveAllMatchesIndependentSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		p := randomInstance(rng)
		all, err := SolveAll(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for budget := all.MinTotal(); budget <= p.Budget; budget += 0.5 {
			got, err := all.At(budget)
			if err != nil {
				t.Fatalf("trial %d budget %v: %v", trial, budget, err)
			}
			want, err := Solve(Problem{Choices: p.Choices, Budget: budget, StepW: p.StepW})
			if err != nil {
				t.Fatalf("trial %d budget %v: %v", trial, budget, err)
			}
			if got.Watts != want.Watts || got.Value != want.Value {
				t.Fatalf("trial %d budget %v: SolveAll (%v, %v) != Solve (%v, %v)",
					trial, budget, got.Watts, got.Value, want.Watts, want.Value)
			}
			for i := range got.Pick {
				if got.Pick[i] != want.Pick[i] {
					t.Fatalf("trial %d budget %v: picks differ at %d: %v vs %v",
						trial, budget, i, got.Pick, want.Pick)
				}
			}
		}
		if _, err := all.At(all.MinTotal() - 1); err == nil {
			t.Fatalf("trial %d: budget below minimum must error", trial)
		}
		if _, err := all.At(p.Budget + float64(len(p.Choices))*2); err == nil {
			t.Fatalf("trial %d: budget above the prepared ceiling must error", trial)
		}
	}
}

// Regression for the discretization fix: a budget one float ulp under an
// exact multiple of the step must still afford the upgrade at that
// multiple. The truncating int() conversion used to lose the whole step.
func TestBudgetDiscretizationOneUlpUnder(t *testing.T) {
	p := Problem{
		Choices: [][]Choice{
			{{Watts: 100, Value: 0}, {Watts: 105, Value: 1}},
			{{Watts: 100, Value: 0}, {Watts: 105, Value: 1}},
		},
		StepW: 5,
	}
	// 2.05·100 = 204.99999999999997: mathematically 205 (minTotal 200 plus
	// exactly one 5 W step), but one ulp under it in float64. The factor
	// must live in a variable: as untyped constants Go would fold the
	// product at arbitrary precision to exactly 205.
	perServer := 2.05
	p.Budget = perServer * 100
	if p.Budget >= 205 {
		t.Fatal("test premise broken: budget not below 205")
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 1 || sol.Watts != 205 {
		t.Fatalf("one-ulp-under budget lost a step: %+v", sol)
	}
	// The same budget via Nextafter.
	p.Budget = math.Nextafter(205, 0)
	if sol, err = Solve(p); err != nil || sol.Value != 1 {
		t.Fatalf("Nextafter budget lost a step: %+v, %v", sol, err)
	}
	// A budget a whole watt under the step must still not afford it.
	p.Budget = 204
	if sol, err = Solve(p); err != nil || sol.Value != 0 {
		t.Fatalf("budget 204 must not afford the 205 W upgrade: %+v, %v", sol, err)
	}
}

// The re-solve hot paths must not allocate: Workspace.SolveTo on a warmed
// workspace, and AllSolutions.SolveTo for budget read-off.
func TestSolveHotPathsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomInstance(rng)
	var ws Workspace
	var sol Solution
	if err := ws.SolveTo(&sol, p); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := ws.SolveTo(&sol, p); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warm Workspace.SolveTo allocates %v times per run", n)
	}
	all, err := ws.SolveAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := all.SolveTo(&sol, p.Budget); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AllSolutions.SolveTo allocates %v times per run", n)
	}
	b, err := NewBudgeter(p)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := b.Alloc(p.Budget); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Budgeter.Alloc allocates %v times per run", n)
	}
}

// Budgeter.Alloc must agree with the one-shot Solve+Alloc pipeline.
func TestBudgeterMatchesSolveAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		p := randomInstance(rng)
		b, err := NewBudgeter(p)
		if err != nil {
			t.Fatal(err)
		}
		for budget := b.all.MinTotal(); budget <= p.Budget; budget += 1.5 {
			got, err := b.Alloc(budget)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := Solve(Problem{Choices: p.Choices, Budget: budget, StepW: p.StepW})
			if err != nil {
				t.Fatal(err)
			}
			want := Alloc(Problem{Choices: p.Choices}, sol)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d budget %v: alloc differs at %d: %v vs %v",
						trial, budget, i, got, want)
				}
			}
		}
	}
}
