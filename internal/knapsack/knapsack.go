// Package knapsack implements Chapter 3's optimal computing-power budgeter:
// the multiple-choice knapsack formulation in which every server is a
// class, the discrete power caps are the class's items, and the product of
// ANPs (equivalently Σ log ANP) is maximized subject to the computing
// budget (Algorithm 2). The DP is exact over the discretized budget.
//
// The solver is built for repetition: a Workspace keeps the DP tables and
// choice preprocessing alive across calls, SolveAll runs the DP once at a
// ceiling budget and answers any smaller discretized budget by backtrack
// alone (the table for budget W is a prefix of the table for any larger
// budget), and a Budgeter wraps SolveAll behind the plain
// budget→allocation signature the self-consistent partition loop and the
// budget bisections use. All entry points produce bit-identical solutions
// to the straightforward from-scratch DP.
package knapsack

import (
	"errors"
	"fmt"
	"math"
)

// Choice is one selectable power cap for a server.
type Choice struct {
	// Watts is the cap's power draw.
	Watts float64
	// Value is the objective contribution, typically log(ANP) — the DP
	// maximizes the sum, i.e. the ANP product.
	Value float64
}

// Problem is a multiple-choice knapsack instance: one choice list per
// server and a total budget in watts.
type Problem struct {
	Choices [][]Choice
	Budget  float64
	// StepW is the DP's budget granularity in watts; 0 selects the GCD-ish
	// default of 1 W.
	StepW float64
}

// Solution is the chosen cap index per server.
type Solution struct {
	Pick []int
	// Watts is the total power of the selection.
	Watts float64
	// Value is the total objective Σ value (log-product).
	Value float64
}

var (
	// ErrInfeasible is returned when even the cheapest choice per server
	// exceeds the budget.
	ErrInfeasible = errors.New("knapsack: budget below cheapest selection")
	errEmpty      = errors.New("knapsack: empty problem")
)

// budgetEps absorbs float representation error when discretizing the
// budget axis: a budget that is one ulp under an integer multiple of the
// step must not silently lose a whole step of headroom. It is the floor
// counterpart of the math.Round used to snap choice watts onto the grid —
// far smaller than half a step, far larger than accumulated rounding noise
// on any realistic budget magnitude.
const budgetEps = 1e-9

// item is a preprocessed choice: watts snapped onto the increment grid
// once, with its index in the original choice list.
type item struct {
	units int
	watts float64
	value float64
	orig  int32
}

const neg = math.SmallestNonzeroFloat64 - math.MaxFloat64

// Workspace holds the DP tables, the preprocessed (dominance-pruned)
// choice lists and the backtrack matrix, all grow-only so repeated solves
// allocate nothing in steady state. The zero value is ready to use. A
// Workspace is not safe for concurrent use, and the *AllSolutions returned
// by SolveAll reads the workspace's tables: it is valid only until the
// next Prepare/Solve/SolveAll call on the same workspace.
type Workspace struct {
	dp, next []float64
	picks    []int16 // flat n×(maxW+1); row i starts at i*(maxW+1)
	arena    []item  // pruned items, all servers back to back
	off      []int32 // arena offsets; server i's items are arena[off[i]:off[i+1]]
	mins     []float64
	units    []int // per-class scratch during pruning

	all AllSolutions
}

// Solve runs the exact dynamic program. Complexity O(n·r·W/step), the
// O(n·r·B_s) of the text. It is a convenience wrapper over a throwaway
// Workspace; loops should hold a Workspace (or a Budgeter) instead.
func Solve(p Problem) (Solution, error) {
	return new(Workspace).Solve(p)
}

// SolveAll runs the DP once at p.Budget and returns a handle answering any
// budget up to p.Budget. See Workspace.SolveAll.
func SolveAll(p Problem) (*AllSolutions, error) {
	return new(Workspace).SolveAll(p)
}

// Solve runs the exact DP at p.Budget, reusing the workspace's tables.
func (ws *Workspace) Solve(p Problem) (Solution, error) {
	var sol Solution
	if err := ws.SolveTo(&sol, p); err != nil {
		return Solution{}, err
	}
	return sol, nil
}

// SolveTo is Solve with caller-owned solution storage: sol.Pick is reused
// when its capacity suffices, so a re-solve of a same-shaped problem
// performs no allocation at all.
func (ws *Workspace) SolveTo(sol *Solution, p Problem) error {
	all, err := ws.SolveAll(p)
	if err != nil {
		return err
	}
	return all.SolveTo(sol, p.Budget)
}

// SolveAll prepares the instance and runs the DP once at the ceiling
// budget p.Budget, keeping the full backtrack matrix. The returned handle
// reads off the exact optimal selection for any budget ≤ p.Budget in
// O(n) — the DP table at a smaller budget is a prefix of the table at a
// larger one, so fifty solves of a shrinking budget (Algorithm 1's
// partition loop, the budget bisection of Fig. 3.13) cost one DP. The
// handle aliases the workspace's tables and is invalidated by the next
// call on ws.
func (ws *Workspace) SolveAll(p Problem) (*AllSolutions, error) {
	n := len(p.Choices)
	if n == 0 {
		return nil, errEmpty
	}
	step := p.StepW
	if step == 0 {
		step = 1
	}

	// Normalize: subtract each server's cheapest choice from its options so
	// the DP budget axis only carries increments (the w_j of Eq. 3.6).
	ws.mins = grow(ws.mins, n)
	minTotal := 0.0
	for i, cs := range p.Choices {
		if len(cs) == 0 {
			return nil, fmt.Errorf("knapsack: server %d has no choices", i)
		}
		minW := cs[0].Watts
		for _, c := range cs {
			if c.Watts < minW {
				minW = c.Watts
			}
		}
		ws.mins[i] = minW
		minTotal += minW
	}
	if p.Budget < minTotal {
		return nil, fmt.Errorf("%w: budget %.1f < minimum %.1f", ErrInfeasible, p.Budget, minTotal)
	}
	W := discretize(p.Budget-minTotal, step)

	ws.prepareItems(p, step)

	// dp[w] is the best value over processed servers using ≤ w increment
	// units; picks row i holds the winning (pruned) choice index at every w.
	stride := W + 1
	ws.dp = grow(ws.dp, stride)
	ws.next = grow(ws.next, stride)
	if need := n * stride; cap(ws.picks) < need {
		ws.picks = make([]int16, need)
	} else {
		ws.picks = ws.picks[:need]
	}
	dp, next := ws.dp[:stride], ws.next[:stride]
	for w := range dp {
		dp[w] = 0
	}
	for i := 0; i < n; i++ {
		pick := ws.picks[i*stride : (i+1)*stride]
		for w := range next {
			next[w] = neg
			pick[w] = -1
		}
		// Choice-outer, budget-inner: the per-choice increment is loaded
		// once and the dp/next rows stream sequentially. Replacing only on
		// strict improvement keeps the lowest-index winner, exactly like
		// the scan over choices at each w.
		for j, it := range ws.items(i) {
			u, v := it.units, it.value
			for w := u; w <= W; w++ {
				if cand := dp[w-u] + v; cand > next[w] {
					next[w] = cand
					pick[w] = int16(j)
				}
			}
		}
		dp, next = next, dp
	}

	ws.all = AllSolutions{ws: ws, n: n, step: step, minTotal: minTotal, maxW: W, stride: stride}
	return &ws.all, nil
}

// prepareItems snaps every choice onto the increment grid once and applies
// exact dominance pruning per server: choice k is dropped when another
// choice j needs no more units and pays at least as much (strictly more
// when j comes later in the list, so ties keep the first choice — the one
// the plain DP's lowest-index tie-break would have reported). A dropped
// choice can never be the winning pick at any budget, so pruning changes
// neither the DP values nor the reported solution, it only shrinks the
// O(n·r·W) inner loop. LP-dominance (convex-hull) pruning is deliberately
// NOT applied: an LP-dominated choice can still be the exact integer
// optimum, and this solver's contract is exactness.
func (ws *Workspace) prepareItems(p Problem, step float64) {
	n := len(p.Choices)
	ws.off = growInt32(ws.off, n+1)
	ws.arena = ws.arena[:0]
	for i, cs := range p.Choices {
		ws.off[i] = int32(len(ws.arena))
		ws.units = growInt(ws.units, len(cs))
		us := ws.units[:len(cs)]
		for k, c := range cs {
			us[k] = int(math.Round((c.Watts - ws.mins[i]) / step))
		}
		for k, c := range cs {
			dominated := false
			for j, cj := range cs {
				if j == k || us[j] > us[k] {
					continue
				}
				if (j < k && cj.Value >= c.Value) || (j > k && cj.Value > c.Value) {
					dominated = true
					break
				}
			}
			if !dominated {
				ws.arena = append(ws.arena, item{units: us[k], watts: c.Watts, value: c.Value, orig: int32(k)})
			}
		}
	}
	ws.off[n] = int32(len(ws.arena))
}

func (ws *Workspace) items(i int) []item {
	return ws.arena[ws.off[i]:ws.off[i+1]]
}

// discretize converts a watt span to whole increment units, flooring with
// budgetEps so representation error one ulp under a grid point does not
// cost a unit.
func discretize(span, step float64) int {
	return int(math.Floor(span/step + budgetEps))
}

// AllSolutions is the read-off handle produced by SolveAll: one DP run at
// the ceiling budget, exact solutions for every budget at or below it.
type AllSolutions struct {
	ws       *Workspace
	n        int
	step     float64
	minTotal float64
	maxW     int
	stride   int
}

// MinTotal returns the cheapest feasible selection's watts — the
// infeasibility floor.
func (a *AllSolutions) MinTotal() float64 { return a.minTotal }

// At returns the exact optimal solution for the given budget, which must
// not exceed the ceiling the DP ran at. It equals what Solve would return
// for the same problem at this budget, bit for bit.
func (a *AllSolutions) At(budget float64) (Solution, error) {
	var sol Solution
	if err := a.SolveTo(&sol, budget); err != nil {
		return Solution{}, err
	}
	return sol, nil
}

// SolveTo is At with caller-owned storage: backtrack only, no allocation
// when sol.Pick has capacity.
func (a *AllSolutions) SolveTo(sol *Solution, budget float64) error {
	if budget < a.minTotal {
		return fmt.Errorf("%w: budget %.1f < minimum %.1f", ErrInfeasible, budget, a.minTotal)
	}
	w := discretize(budget-a.minTotal, a.step)
	if w > a.maxW {
		return fmt.Errorf("knapsack: budget %.1f above the %.1f ceiling the DP ran at", budget, a.minTotal+float64(a.maxW)*a.step)
	}
	if cap(sol.Pick) < a.n {
		sol.Pick = make([]int, a.n)
	} else {
		sol.Pick = sol.Pick[:a.n]
	}
	sol.Watts = 0
	sol.Value = 0
	for i := a.n - 1; i >= 0; i-- {
		j := a.ws.picks[i*a.stride+w]
		if j < 0 {
			return errors.New("knapsack: internal backtrack failure")
		}
		it := a.ws.items(i)[j]
		sol.Pick[i] = int(it.orig)
		sol.Watts += it.watts
		sol.Value += it.value
		w -= it.units
	}
	return nil
}

// Budgeter adapts SolveAll to the budget→per-server-watts signature the
// self-consistent partition (Algorithm 1) and the equal-SNP budget
// bisections consume. Construction runs the one DP at the ceiling
// p.Budget; every Alloc call afterwards is an O(n) backtrack into a
// reused buffer. The returned slice is overwritten by the next Alloc.
type Budgeter struct {
	ws      Workspace
	all     *AllSolutions
	choices [][]Choice
	sol     Solution
	alloc   []float64
}

// NewBudgeter prepares the instance at ceiling budget p.Budget.
func NewBudgeter(p Problem) (*Budgeter, error) {
	b := &Budgeter{choices: p.Choices}
	all, err := b.ws.SolveAll(p)
	if err != nil {
		return nil, err
	}
	b.all = all
	b.alloc = make([]float64, len(p.Choices))
	return b, nil
}

// Alloc returns the optimal per-server watt allocation at the budget,
// exactly as Solve+Alloc on the same problem would. The slice is reused
// across calls.
func (b *Budgeter) Alloc(budget float64) ([]float64, error) {
	if err := b.all.SolveTo(&b.sol, budget); err != nil {
		return nil, err
	}
	for i, j := range b.sol.Pick {
		b.alloc[i] = b.choices[i][j].Watts
	}
	return b.alloc, nil
}

// Solution returns the last Alloc's full solution (picks reused across
// calls).
func (b *Budgeter) Solution() Solution { return b.sol }

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// CapGridChoices builds the per-server choice lists from a throughput
// predictor: value = log(predicted ANP) at each cap of the grid, where ANP
// normalizes by the predicted throughput at the top cap (the "ideal
// throughput" of the text). predict(i, cap) must return server i's
// predicted throughput at the cap.
func CapGridChoices(n int, caps []float64, predict func(i int, cap float64) float64) ([][]Choice, error) {
	if n <= 0 || len(caps) == 0 {
		return nil, errEmpty
	}
	top := caps[len(caps)-1]
	out := make([][]Choice, n)
	for i := 0; i < n; i++ {
		ideal := predict(i, top)
		if ideal <= 0 {
			return nil, fmt.Errorf("knapsack: server %d has non-positive ideal throughput", i)
		}
		cs := make([]Choice, len(caps))
		for j, cap := range caps {
			v := predict(i, cap)
			if v <= 0 {
				v = 1e-9 * ideal
			}
			anp := v / ideal
			if anp > 1 {
				anp = 1
			}
			cs[j] = Choice{Watts: cap, Value: math.Log(anp)}
		}
		out[i] = cs
	}
	return out, nil
}

// Alloc converts a solution back into per-server watt allocations.
func Alloc(p Problem, sol Solution) []float64 {
	out := make([]float64, len(sol.Pick))
	for i, j := range sol.Pick {
		out[i] = p.Choices[i][j].Watts
	}
	return out
}
