// Package knapsack implements Chapter 3's optimal computing-power budgeter:
// the multiple-choice knapsack formulation in which every server is a
// class, the discrete power caps are the class's items, and the product of
// ANPs (equivalently Σ log ANP) is maximized subject to the computing
// budget (Algorithm 2). The DP is exact over the discretized budget.
package knapsack

import (
	"errors"
	"fmt"
	"math"
)

// Choice is one selectable power cap for a server.
type Choice struct {
	// Watts is the cap's power draw.
	Watts float64
	// Value is the objective contribution, typically log(ANP) — the DP
	// maximizes the sum, i.e. the ANP product.
	Value float64
}

// Problem is a multiple-choice knapsack instance: one choice list per
// server and a total budget in watts.
type Problem struct {
	Choices [][]Choice
	Budget  float64
	// StepW is the DP's budget granularity in watts; 0 selects the GCD-ish
	// default of 1 W.
	StepW float64
}

// Solution is the chosen cap index per server.
type Solution struct {
	Pick []int
	// Watts is the total power of the selection.
	Watts float64
	// Value is the total objective Σ value (log-product).
	Value float64
}

var (
	// ErrInfeasible is returned when even the cheapest choice per server
	// exceeds the budget.
	ErrInfeasible = errors.New("knapsack: budget below cheapest selection")
	errEmpty      = errors.New("knapsack: empty problem")
)

// Solve runs the exact dynamic program. Complexity O(n·r·W/step), the
// O(n·r·B_s) of the text.
func Solve(p Problem) (Solution, error) {
	n := len(p.Choices)
	if n == 0 {
		return Solution{}, errEmpty
	}
	step := p.StepW
	if step == 0 {
		step = 1
	}
	// Normalize: subtract each server's cheapest choice from its options so
	// the DP budget axis only carries increments (the w_j of Eq. 3.6).
	minTotal := 0.0
	for i, cs := range p.Choices {
		if len(cs) == 0 {
			return Solution{}, fmt.Errorf("knapsack: server %d has no choices", i)
		}
		minW := cs[0].Watts
		for _, c := range cs {
			if c.Watts < minW {
				minW = c.Watts
			}
		}
		minTotal += minW
	}
	if p.Budget < minTotal {
		return Solution{}, fmt.Errorf("%w: budget %.1f < minimum %.1f", ErrInfeasible, p.Budget, minTotal)
	}
	W := int((p.Budget - minTotal) / step)

	const neg = math.SmallestNonzeroFloat64 - math.MaxFloat64
	// dp[w] is the best value over processed servers using ≤ w increment
	// units; pick[i][w] the choice index achieving it.
	dp := make([]float64, W+1)
	next := make([]float64, W+1)
	picks := make([][]int16, n)

	// Base: zero servers processed.
	for w := range dp {
		dp[w] = 0
	}
	mins := make([]float64, n)
	for i, cs := range p.Choices {
		minW := cs[0].Watts
		for _, c := range cs {
			if c.Watts < minW {
				minW = c.Watts
			}
		}
		mins[i] = minW
	}
	for i, cs := range p.Choices {
		pick := make([]int16, W+1)
		for w := 0; w <= W; w++ {
			best := neg
			bestJ := -1
			for j, c := range cs {
				units := int(math.Round((c.Watts - mins[i]) / step))
				if units > w {
					continue
				}
				if prev := dp[w-units]; prev != neg {
					if v := prev + c.Value; v > best {
						best = v
						bestJ = j
					}
				}
			}
			next[w] = best
			pick[w] = int16(bestJ)
		}
		picks[i] = pick
		dp, next = next, dp
	}

	// Backtrack from the full budget.
	sol := Solution{Pick: make([]int, n)}
	w := W
	for i := n - 1; i >= 0; i-- {
		j := int(picks[i][w])
		if j < 0 {
			return Solution{}, errors.New("knapsack: internal backtrack failure")
		}
		sol.Pick[i] = j
		c := p.Choices[i][j]
		sol.Watts += c.Watts
		sol.Value += c.Value
		w -= int(math.Round((c.Watts - mins[i]) / step))
	}
	return sol, nil
}

// CapGridChoices builds the per-server choice lists from a throughput
// predictor: value = log(predicted ANP) at each cap of the grid, where ANP
// normalizes by the predicted throughput at the top cap (the "ideal
// throughput" of the text). predict(i, cap) must return server i's
// predicted throughput at the cap.
func CapGridChoices(n int, caps []float64, predict func(i int, cap float64) float64) ([][]Choice, error) {
	if n <= 0 || len(caps) == 0 {
		return nil, errEmpty
	}
	top := caps[len(caps)-1]
	out := make([][]Choice, n)
	for i := 0; i < n; i++ {
		ideal := predict(i, top)
		if ideal <= 0 {
			return nil, fmt.Errorf("knapsack: server %d has non-positive ideal throughput", i)
		}
		cs := make([]Choice, len(caps))
		for j, cap := range caps {
			v := predict(i, cap)
			if v <= 0 {
				v = 1e-9 * ideal
			}
			anp := v / ideal
			if anp > 1 {
				anp = 1
			}
			cs[j] = Choice{Watts: cap, Value: math.Log(anp)}
		}
		out[i] = cs
	}
	return out, nil
}

// Alloc converts a solution back into per-server watt allocations.
func Alloc(p Problem, sol Solution) []float64 {
	out := make([]float64, len(sol.Pick))
	for i, j := range sol.Pick {
		out[i] = p.Choices[i][j].Watts
	}
	return out
}
