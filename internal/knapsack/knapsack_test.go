package knapsack

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powercap/internal/workload"
)

func TestSolveEmptyAndInvalid(t *testing.T) {
	if _, err := Solve(Problem{}); err == nil {
		t.Fatal("empty problem must error")
	}
	if _, err := Solve(Problem{Choices: [][]Choice{{}}, Budget: 10}); err == nil {
		t.Fatal("server without choices must error")
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := Problem{
		Choices: [][]Choice{{{Watts: 100, Value: 0}}, {{Watts: 100, Value: 0}}},
		Budget:  150,
	}
	if _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestSolveTrivialAllMin(t *testing.T) {
	p := Problem{
		Choices: [][]Choice{
			{{Watts: 100, Value: -1}, {Watts: 150, Value: 0}},
			{{Watts: 100, Value: -1}, {Watts: 150, Value: 0}},
		},
		Budget: 200,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Pick[0] != 0 || sol.Pick[1] != 0 {
		t.Fatalf("tight budget must pick minimums, got %v", sol.Pick)
	}
	if sol.Watts != 200 || sol.Value != -2 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolvePrefersHigherValuePerWatt(t *testing.T) {
	// Budget allows upgrading exactly one server; server 1's upgrade is
	// worth more for the same watts.
	p := Problem{
		Choices: [][]Choice{
			{{Watts: 100, Value: 0}, {Watts: 150, Value: 0.1}},
			{{Watts: 100, Value: 0}, {Watts: 150, Value: 0.9}},
		},
		Budget: 250,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Pick[0] != 0 || sol.Pick[1] != 1 {
		t.Fatalf("must upgrade server 1: %v", sol.Pick)
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		r := 2 + rng.Intn(4)
		choices := make([][]Choice, n)
		for i := range choices {
			cs := make([]Choice, r)
			for j := range cs {
				cs[j] = Choice{
					Watts: float64(10 + 5*j),
					Value: rng.Float64() * float64(j+1),
				}
			}
			choices[i] = cs
		}
		budget := float64(10*n) + rng.Float64()*float64(5*r*n)
		p := Problem{Choices: choices, Budget: budget, StepW: 5}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}

		// Brute force.
		best := math.Inf(-1)
		var rec func(i int, watts, value float64)
		rec = func(i int, watts, value float64) {
			if watts > budget {
				return
			}
			if i == n {
				if value > best {
					best = value
				}
				return
			}
			for _, c := range choices[i] {
				rec(i+1, watts+c.Watts, value+c.Value)
			}
		}
		rec(0, 0, 0)
		if math.Abs(sol.Value-best) > 1e-9 {
			t.Fatalf("trial %d: DP value %v != brute force %v", trial, sol.Value, best)
		}
		if sol.Watts > budget+1e-9 {
			t.Fatalf("trial %d: selection %v exceeds budget %v", trial, sol.Watts, budget)
		}
	}
}

func TestCapGridChoicesFromSets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := workload.Chapter3Server
	caps := workload.CapGrid(s, 5)
	sets := make([]workload.Set, 10)
	for i := range sets {
		sets[i] = workload.NewHeteroSet(workload.Desktop, rng)
	}
	choices, err := CapGridChoices(len(sets), caps, func(i int, cap float64) float64 {
		return sets[i].GroundTruth(cap, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, cs := range choices {
		if len(cs) != len(caps) {
			t.Fatalf("server %d has %d choices, want %d", i, len(cs), len(caps))
		}
		// Values must be non-decreasing in watts (more power never hurts)
		// and end at log(1)=0.
		for j := 1; j < len(cs); j++ {
			if cs[j].Value < cs[j-1].Value-1e-9 {
				t.Fatalf("server %d: value decreasing at cap %v", i, cs[j].Watts)
			}
		}
		if last := cs[len(cs)-1].Value; math.Abs(last) > 1e-12 {
			t.Fatalf("server %d: top-cap log-ANP = %v, want 0", i, last)
		}
	}

	sol, err := Solve(Problem{Choices: choices, Budget: 10 * 145, StepW: 5})
	if err != nil {
		t.Fatal(err)
	}
	alloc := Alloc(Problem{Choices: choices}, sol)
	var sum float64
	for _, w := range alloc {
		sum += w
	}
	if sum != sol.Watts || sum > 10*145 {
		t.Fatalf("allocation inconsistent: sum %v, sol.Watts %v", sum, sol.Watts)
	}
}

func TestCapGridChoicesValidation(t *testing.T) {
	if _, err := CapGridChoices(0, []float64{1}, nil); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := CapGridChoices(1, []float64{130}, func(int, float64) float64 { return 0 }); err == nil {
		t.Fatal("non-positive ideal throughput must error")
	}
}

// Property: the DP solution is feasible and no single-server upgrade or
// downgrade improves it without violating the budget (local optimality of
// an exact solution).
func TestSolveLocalOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		caps := []float64{130, 135, 140, 145, 150, 155, 160, 165}
		choices := make([][]Choice, n)
		for i := range choices {
			cs := make([]Choice, len(caps))
			v := -rng.Float64()
			for j := range cs {
				cs[j] = Choice{Watts: caps[j], Value: v * float64(len(caps)-1-j) / float64(len(caps)-1)}
			}
			choices[i] = cs
		}
		budget := float64(n)*130 + rng.Float64()*float64(n*35)
		p := Problem{Choices: choices, Budget: budget, StepW: 5}
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		if sol.Watts > budget+1e-9 {
			return false
		}
		// No single-coordinate improvement.
		for i := range choices {
			for j, c := range choices[i] {
				if j == sol.Pick[i] {
					continue
				}
				newWatts := sol.Watts - choices[i][sol.Pick[i]].Watts + c.Watts
				newValue := sol.Value - choices[i][sol.Pick[i]].Value + c.Value
				if newWatts <= budget && newValue > sol.Value+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
