package knapsack_test

import (
	"fmt"

	"powercap/internal/knapsack"
)

// Three servers pick from two caps each under a 410 W budget. Server 2's
// upgrade is worth the most log-ANP, server 0's the least, so the budget
// funds servers 1 and 2.
func ExampleSolve() {
	choices := [][]knapsack.Choice{
		{{Watts: 130, Value: -0.10}, {Watts: 150, Value: 0}},
		{{Watts: 130, Value: -0.30}, {Watts: 150, Value: 0}},
		{{Watts: 130, Value: -0.60}, {Watts: 150, Value: 0}},
	}
	p := knapsack.Problem{Choices: choices, Budget: 430, StepW: 5}
	sol, err := knapsack.Solve(p)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("picks %v, %.0f W, value %.2f\n", sol.Pick, sol.Watts, sol.Value)
	// Output: picks [0 1 1], 430 W, value -0.10
}
