package cluster

import (
	"testing"
	"testing/quick"

	"powercap/internal/workload"
)

// The event-driven Run must be bit-identical to the legacy tick loop
// (RunTick): same seconds, same budget events, same churn draws, same
// floats in every sample. Two fresh Sims are built from the same config so
// each path owns its own RNG and engine state.

func samplesEqual(t *testing.T, a, b []Sample) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs:\nevent: %+v\ntick:  %+v", i, a[i], b[i])
		}
	}
}

func runBothPaths(t *testing.T, cfg Config, initialBudget float64, seconds int, events []BudgetEvent) {
	t.Helper()
	evSim, err := NewSim(cfg, initialBudget)
	if err != nil {
		t.Fatal(err)
	}
	tickSim, err := NewSim(cfg, initialBudget)
	if err != nil {
		t.Fatal(err)
	}
	got, err := evSim.Run(seconds, events)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tickSim.RunTick(seconds, events)
	if err != nil {
		t.Fatal(err)
	}
	samplesEqual(t, got, want)
}

// TestRunMatchesTickStatic: no churn, no phases — only rounds and
// snapshots are scheduled, and the outputs still match exactly.
func TestRunMatchesTickStatic(t *testing.T) {
	runBothPaths(t, Config{N: 24, Seed: 11, RoundsPerSecond: 20}, 170*24, 12, nil)
}

// TestRunMatchesTickBudgetEvents: budget steps land at their exact seconds
// in both paths.
func TestRunMatchesTickBudgetEvents(t *testing.T) {
	events := []BudgetEvent{
		{AtSecond: 3, Budget: 160 * 24},
		{AtSecond: 7, Budget: 185 * 24},
		{AtSecond: 10, Budget: 170 * 24},
	}
	runBothPaths(t, Config{N: 24, Seed: 5, RoundsPerSecond: 25}, 178*24, 12, events)
}

// TestRunMatchesTickChurn: churn consumes the shared RNG in per-server
// sweep order each second; both paths must draw identically.
func TestRunMatchesTickChurn(t *testing.T) {
	cfg := Config{
		N:               20,
		Seed:            3,
		RoundsPerSecond: 15,
		ChurnPerSecond:  0.2,
		MeasureNoise:    0.01,
	}
	runBothPaths(t, cfg, 172*20, 10, nil)
}

// TestRunMatchesTickPhased: phase-cycling applications advance on the
// same schedule in both paths.
func TestRunMatchesTickPhased(t *testing.T) {
	const n = 12
	ep, err := workload.ByName(workload.HPC, "EP")
	if err != nil {
		t.Fatal(err)
	}
	ra, err := workload.ByName(workload.HPC, "RA")
	if err != nil {
		t.Fatal(err)
	}
	// Phased carries mutable dwell state, so each path needs its own set.
	newPhased := func() []*workload.Phased {
		phased := make([]*workload.Phased, n)
		for i := 0; i < n; i += 2 {
			ph, err := workload.NewPhased("solver", []workload.Benchmark{ep, ra}, []float64{3, 4})
			if err != nil {
				t.Fatal(err)
			}
			phased[i] = ph
		}
		return phased
	}
	evSim, err := NewSim(Config{N: n, Seed: 9, RoundsPerSecond: 10, Phased: newPhased()}, 175*n)
	if err != nil {
		t.Fatal(err)
	}
	tickSim, err := NewSim(Config{N: n, Seed: 9, RoundsPerSecond: 10, Phased: newPhased()}, 175*n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := evSim.Run(9, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tickSim.RunTick(9, nil)
	if err != nil {
		t.Fatal(err)
	}
	samplesEqual(t, got, want)
}

// TestRunMatchesTickProperty: quick.Check across random seeds, churn
// rates, horizons, and budget-event schedules.
func TestRunMatchesTickProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in short mode")
	}
	f := func(seed int64, churnPct, horizon, nEvents uint8) bool {
		const n = 10
		seconds := 4 + int(horizon%8)
		cfg := Config{
			N:               n,
			Seed:            seed,
			RoundsPerSecond: 8,
			ChurnPerSecond:  float64(churnPct%40) / 100,
			MeasureNoise:    0.01,
		}
		var events []BudgetEvent
		for k := 0; k < int(nEvents%4); k++ {
			events = append(events, BudgetEvent{
				AtSecond: 1 + (k*3)%seconds,
				Budget:   (165 + 8*float64(k)) * n,
			})
		}
		evSim, err := NewSim(cfg, 176*n)
		if err != nil {
			return false
		}
		tickSim, err := NewSim(cfg, 176*n)
		if err != nil {
			return false
		}
		got, err := evSim.Run(seconds, events)
		if err != nil {
			return false
		}
		want, err := tickSim.RunTick(seconds, events)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
