package cluster

import (
	"errors"
	"fmt"
	"math/rand"

	"powercap/internal/capping"
	"powercap/internal/safety"
	"powercap/internal/sensor"
	"powercap/internal/workload"
)

// The sensed enforcement path closes the last gap between the budgeting
// math and the hardware: the caps DiBA computes are only honored if the
// per-server feedback controllers are fed honest power measurements. Here
// each server's controller reads through a fault-injectable meter and a
// robust filter (internal/sensor), and a cluster-level watchdog
// (internal/safety) checks ΣP ≤ B every control period, emergency-shedding
// all caps proportionally when the invariant breaks. Unlike EnforceCaps,
// which settles fresh controllers from scratch each second, the Enforcer is
// persistent: p-states, sensor bias, filter state, and the watchdog derate
// all carry across periods, which is what makes multi-period violation
// dynamics (and their containment) observable at all.

// SensedConfig enables the telemetry-hardened enforcement path.
type SensedConfig struct {
	// Plan injects per-server sensor faults; the zero Plan means ideal
	// sensors (the filter still runs unless RawTelemetry is set).
	Plan sensor.Plan
	// RawTelemetry disables the robust filter: controllers act on raw meter
	// output, checked only for finiteness. This is the unhardened baseline
	// the watchdog experiments compare against.
	RawTelemetry bool
	// Watchdog enables the cluster cap-safety watchdog; nil disables it.
	Watchdog *safety.Config
	// PeriodsPerSecond is how many control periods the enforcement loop runs
	// per simulated second (default 5).
	PeriodsPerSecond int
}

// PeriodReport is one control period of the sensed enforcement loop.
type PeriodReport struct {
	// TruePower is Σ actual post-actuation power — what the breakers see.
	TruePower float64
	// FilteredPower is Σ end-of-period filtered readings of that same power
	// — what the watchdog sees.
	FilteredPower float64
	// Throughput is Σ attained throughput.
	Throughput float64
	// Derate is the watchdog cap derate that was in force this period.
	Derate float64
	// Shed reports that the watchdog demanded an emergency shed for the
	// next period.
	Shed bool
	// Faulted is how many sensors are currently distrusted or in dropout.
	Faulted int
}

// EnforcerStats accumulates violation accounting across periods. Runs are
// maximal streaks of consecutive violating periods — the acceptance
// criterion for the hardened stack is MaxFilteredRun ≤ 1 (any transient is
// contained within one control period).
type EnforcerStats struct {
	Periods            int
	TrueViolations     int
	MaxTrueRun         int
	FilteredViolations int
	MaxFilteredRun     int
	Sheds              int
}

// Enforcer actuates cluster caps through persistent per-server controllers
// with sensor/filter telemetry and an optional watchdog. Not safe for
// concurrent use.
type Enforcer struct {
	ctls      []*capping.Controller
	pipes     []*sensor.Pipeline
	noise     float64
	wd        *safety.Watchdog
	derate    float64
	emergency bool
	stats     EnforcerStats
	trueRun   int
	filtRun   int
}

// NewEnforcer builds the sensed enforcement stack: one controller and one
// telemetry pipeline per benchmark. noise is the controllers' relative
// measurement noise (applied before sensor faults).
func NewEnforcer(benchs []workload.Benchmark, s workload.Server, noise float64, cfg SensedConfig) (*Enforcer, error) {
	if len(benchs) == 0 {
		return nil, errors.New("cluster: sensed enforcement needs at least one server")
	}
	e := &Enforcer{
		ctls:   make([]*capping.Controller, len(benchs)),
		pipes:  make([]*sensor.Pipeline, len(benchs)),
		noise:  noise,
		derate: 1,
	}
	for i, b := range benchs {
		ctl, err := capping.NewController(b, s)
		if err != nil {
			return nil, err
		}
		ctl.NoiseRel = noise
		pl := &sensor.Pipeline{}
		if cfg.Plan.Enabled() {
			pl.Meter = sensor.NewMeter(cfg.Plan, i)
		}
		if !cfg.RawTelemetry {
			pl.Filter = sensor.NewFilter(0.85*s.IdleWatts, 1.05*s.MaxWatts)
		}
		ctl.Telemetry = pl
		e.ctls[i] = ctl
		e.pipes[i] = pl
	}
	if cfg.Watchdog != nil {
		e.wd = safety.New(*cfg.Watchdog)
	}
	return e, nil
}

// SetBenchmarks swaps the running workloads after churn; p-states, sensor
// state, and the watchdog derate carry over.
func (e *Enforcer) SetBenchmarks(benchs []workload.Benchmark) error {
	if len(benchs) != len(e.ctls) {
		return fmt.Errorf("cluster: %d benchmarks for %d controllers", len(benchs), len(e.ctls))
	}
	for i, b := range benchs {
		e.ctls[i].SetBenchmark(b)
	}
	return nil
}

// Period runs one control period: apply the (derated) caps, tick every
// controller, read the resulting power back through each sensor pipeline,
// and let the watchdog judge the filtered total against the budget. The
// sensors are polled twice per period — at period start inside Tick (that
// reading drives the local p-state decision) and at period end here (that
// reading, of the post-actuation power, feeds the watchdog) — matching a
// real out-of-band telemetry loop.
func (e *Enforcer) Period(caps []float64, budget float64, rng *rand.Rand) (PeriodReport, error) {
	if len(caps) != len(e.ctls) {
		return PeriodReport{}, fmt.Errorf("cluster: %d caps for %d controllers", len(caps), len(e.ctls))
	}
	rep := PeriodReport{Derate: e.derate}
	for i, ctl := range e.ctls {
		eff := caps[i] * e.derate
		if e.emergency {
			if err := ctl.EmergencyTo(eff); err != nil {
				return PeriodReport{}, err
			}
		} else if err := ctl.SetCap(eff); err != nil {
			return PeriodReport{}, err
		}
		smp := ctl.Tick(rng)
		truePost := smp.Power
		if e.noise > 0 && rng != nil {
			truePost *= 1 + e.noise*rng.NormFloat64()
		}
		filtered, _ := e.pipes[i].Measure(truePost, smp.Power)
		rep.TruePower += smp.Power
		rep.FilteredPower += filtered
		rep.Throughput += smp.Throughput
		if !e.pipes[i].Healthy() {
			rep.Faulted++
		}
	}
	e.emergency = false
	if e.wd != nil {
		d, shed := e.wd.Observe(rep.FilteredPower, budget)
		e.derate = d
		e.emergency = shed
		rep.Shed = shed
		if shed {
			e.stats.Sheds++
		}
	}
	e.stats.Periods++
	const tol = 1e-6
	if rep.TruePower > budget+tol {
		e.stats.TrueViolations++
		e.trueRun++
		if e.trueRun > e.stats.MaxTrueRun {
			e.stats.MaxTrueRun = e.trueRun
		}
	} else {
		e.trueRun = 0
	}
	if rep.FilteredPower > budget+tol {
		e.stats.FilteredViolations++
		e.filtRun++
		if e.filtRun > e.stats.MaxFilteredRun {
			e.stats.MaxFilteredRun = e.filtRun
		}
	} else {
		e.filtRun = 0
	}
	return rep, nil
}

// Stats returns the violation accounting so far.
func (e *Enforcer) Stats() EnforcerStats { return e.stats }

// Derate returns the watchdog derate currently in force (1 without one).
func (e *Enforcer) Derate() float64 { return e.derate }

// Healthy counts sensors currently trusted by their filters.
func (e *Enforcer) Healthy() int {
	n := 0
	for _, pl := range e.pipes {
		if pl.Healthy() {
			n++
		}
	}
	return n
}

// runSensed is the simulation loop for the sensed enforcement path: like
// runEnforced it is sequential (every period draws from s.rng), but the
// enforcement state is persistent across the whole run.
func (s *Sim) runSensed(seconds int, events []BudgetEvent) ([]Sample, error) {
	byTime := make(map[int]float64, len(events))
	for _, ev := range events {
		byTime[ev.AtSecond] = ev.Budget
	}
	periods := s.cfg.Sensed.PeriodsPerSecond
	if periods <= 0 {
		periods = 5
	}
	samples := make([]Sample, 0, seconds+1)
	first, err := s.snapshot(0, 0)
	if err != nil {
		return nil, err
	}
	samples = append(samples, first)
	for sec := 1; sec <= seconds; sec++ {
		if b, ok := byTime[sec]; ok {
			if err := s.engine.SetBudget(b); err != nil {
				return nil, fmt.Errorf("cluster: budget event at %ds: %w", sec, err)
			}
			s.budget = b
		}
		churned, err := s.advanceWorkloads()
		if err != nil {
			return nil, err
		}
		if churned > 0 {
			if err := s.enf.SetBenchmarks(s.bench); err != nil {
				return nil, err
			}
		}
		for r := 0; r < s.cfg.RoundsPerSecond; r++ {
			s.engine.StepAuto()
		}
		caps := s.engine.Alloc()
		var rep PeriodReport
		for p := 0; p < periods; p++ {
			rep, err = s.enf.Period(caps, s.budget, s.rng)
			if err != nil {
				return nil, err
			}
		}
		smp, err := s.snapshot(sec, churned)
		if err != nil {
			return nil, err
		}
		smp.EnforcedPower = rep.TruePower
		smp.EnforcedThroughput = rep.Throughput
		smp.FilteredPower = rep.FilteredPower
		smp.Derate = rep.Derate
		smp.SensorFaulted = rep.Faulted
		samples = append(samples, smp)
	}
	return samples, nil
}

// EnforcerStats exposes the sensed path's violation accounting after a run;
// ok is false when the simulation is not in sensed mode.
func (s *Sim) EnforcerStats() (EnforcerStats, bool) {
	if s.enf == nil {
		return EnforcerStats{}, false
	}
	return s.enf.Stats(), true
}
