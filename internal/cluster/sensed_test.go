package cluster

import (
	"testing"

	"powercap/internal/safety"
	"powercap/internal/sensor"
	"powercap/internal/workload"
)

// runCapCycle drives one Enforcer through the violation-provoking schedule:
// a long warm phase at wide-open caps (sensor drift pins at its floor and
// the consistency check latches), then repeated deep budget cuts that force
// a multi-level p-state walk. Caps are uniform so Σcaps equals the budget
// exactly, as DiBA guarantees.
func runCapCycle(t *testing.T, cfg SensedConfig) EnforcerStats {
	t.Helper()
	const n = 8
	benchs := make([]workload.Benchmark, n)
	for i := range benchs {
		benchs[i] = workload.HPC[i%len(workload.HPC)]
	}
	e, err := NewEnforcer(benchs, workload.DefaultServer, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	uniform := func(w float64) []float64 {
		caps := make([]float64, n)
		for i := range caps {
			caps[i] = w
		}
		return caps
	}
	high, low := uniform(200), uniform(120)
	run := func(caps []float64, budget float64, periods int) {
		for i := 0; i < periods; i++ {
			if _, err := e.Period(caps, budget, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(high, n*200, 60)
	for c := 0; c < 3; c++ {
		run(low, n*120, 30)
		run(high, n*200, 40)
	}
	return e.Stats()
}

// TestRawTelemetrySustainsViolations is the unhardened baseline: with
// drifting sensors under-reporting and no filter, controllers stop their
// post-cut walk early and the cluster sits above budget for tens of
// periods.
func TestRawTelemetrySustainsViolations(t *testing.T) {
	st := runCapCycle(t, SensedConfig{Plan: sensor.DefaultChaos(11), RawTelemetry: true})
	if st.MaxTrueRun < 10 {
		t.Fatalf("raw telemetry: longest true-violation run %d periods, expected a sustained (≥10) breach; stats %+v", st.MaxTrueRun, st)
	}
}

// TestFilterAloneLeavesMultiPeriodViolations shows why the watchdog exists:
// the robust filter restores honest measurements (so violations are at
// least *visible*), but the one-level-per-period feedback walk still takes
// several periods to absorb a deep budget cut.
func TestFilterAloneLeavesMultiPeriodViolations(t *testing.T) {
	st := runCapCycle(t, SensedConfig{Plan: sensor.DefaultChaos(11)})
	if st.MaxFilteredRun < 2 {
		t.Fatalf("filter-only: longest filtered-violation run %d, expected a multi-period breach the watchdog would have shed; stats %+v", st.MaxFilteredRun, st)
	}
}

// TestWatchdogContainsViolationsWithinOnePeriod is the acceptance
// criterion: same chaos, same schedule, watchdog on — every filtered
// violation is contained within one control period, and the true power
// follows within two.
func TestWatchdogContainsViolationsWithinOnePeriod(t *testing.T) {
	st := runCapCycle(t, SensedConfig{
		Plan:     sensor.DefaultChaos(11),
		Watchdog: &safety.Config{},
	})
	if st.MaxFilteredRun > 1 {
		t.Fatalf("watchdog: filtered-violation run of %d periods, want ≤ 1; stats %+v", st.MaxFilteredRun, st)
	}
	if st.MaxTrueRun > 2 {
		t.Fatalf("watchdog: true-violation run of %d periods, want ≤ 2; stats %+v", st.MaxTrueRun, st)
	}
	if st.Sheds == 0 {
		t.Fatal("watchdog never shed — the schedule failed to provoke it")
	}
}

// TestSensedSimDisabledPathsUntouched: a Sim without Sensed must not even
// construct the enforcement stack, and a Sim with an ideal-sensor Sensed
// config must keep ΣP within budget throughout.
func TestSensedSimIdealSensorsStayWithinBudget(t *testing.T) {
	sim, err := NewSim(Config{
		N:               6,
		Seed:            3,
		RoundsPerSecond: 40,
		Sensed:          &SensedConfig{Watchdog: &safety.Config{}},
	}, 900)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sim.Run(20, []BudgetEvent{{AtSecond: 8, Budget: 780}, {AtSecond: 15, Budget: 900}})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 21 {
		t.Fatalf("got %d samples", len(samples))
	}
	st, ok := sim.EnforcerStats()
	if !ok {
		t.Fatal("sensed sim reports no enforcer stats")
	}
	if st.MaxFilteredRun > 1 {
		t.Fatalf("ideal sensors: filtered-violation run %d, want ≤ 1; stats %+v", st.MaxFilteredRun, st)
	}
	plain, err := NewSim(Config{N: 6, Seed: 3, RoundsPerSecond: 40}, 900)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.EnforcerStats(); ok {
		t.Fatal("plain sim unexpectedly has an enforcer")
	}
}
