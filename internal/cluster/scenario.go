package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"powercap/internal/des"
	"powercap/internal/netsim"
)

// Scenario is the composable multi-source simulation the shared-clock event
// core exists for: one description schedules budget steps, network
// partitions, sensor faults, and workload churn against the same clock,
// with optional DiBA round latency on every allocator refresh. Two runners
// execute it:
//
//   - RunScenarioEvents merges one des.EventSource per aspect under a
//     des.Scheduler — work is O(events), quiet servers cost nothing.
//   - RunScenarioTicks replays the identical logical events but pays the
//     legacy loop's cost model: a full O(N) sweep every simulated second
//     (recompute all demand sums from scratch), the way the pre-port
//     cluster loop re-evaluated every server every tick.
//
// Both runners drive the same cursor objects in the same total order, and
// all power state is integer milliwatts (exact arithmetic), so their
// ScenarioResults are bit-identical — the benchmark compares the cost of
// two loop structures doing provably the same work.
//
// Physical model: server i demands demand[i] mW (redrawn on churn). The
// allocator applies a uniform scale = min(1, budget/Σview), where view[i]
// is the demand the allocator believes — frozen at its last value while
// server i's sensor is faulted. Cluster power is scale·Σdemand, so stale
// views and frozen scales (during partitions, or while a refresh is in
// flight on a slow link) can push power above budget; samples count those
// violations.

// TimedBudget steps the cluster budget at a point in time.
type TimedBudget struct {
	AtSeconds float64
	BudgetW   float64
}

// FaultWindow marks one server's power sensor faulted during
// [StartSeconds, EndSeconds): the allocator keeps using the last reading.
type FaultWindow struct {
	Server       int
	StartSeconds float64
	EndSeconds   float64
}

// PartitionWindow marks the control plane partitioned during
// [StartSeconds, EndSeconds): allocator refreshes are suppressed and the
// current scale stays frozen until the partition heals.
type PartitionWindow struct {
	StartSeconds float64
	EndSeconds   float64
}

// Scenario describes one multi-source run. The zero values of the optional
// fields disable the corresponding aspect.
type Scenario struct {
	N              int
	Seed           int64
	HorizonSeconds int
	InitialBudgetW float64

	BudgetSteps []TimedBudget
	// ChurnPerSecond is each server's demand-redraw rate: cluster-wide churn
	// is a Poisson process with rate N·ChurnPerSecond.
	ChurnPerSecond float64
	SensorFaults   []FaultWindow
	Partitions     []PartitionWindow

	// SampleEverySeconds spaces the samples; 0 samples only at t=0 and the
	// horizon — the sparse regime where the event loop's advantage peaks.
	SampleEverySeconds int

	// Link, when set, charges every allocator refresh the sampled latency of
	// LinkRounds DiBA rounds over LinkNodes nodes (defaults 30 and 64); the
	// new scale applies only once the rounds complete.
	Link       *netsim.LinkModel
	LinkNodes  int
	LinkRounds int
}

// ScenarioSample is the cluster state observed at one sample instant.
type ScenarioSample struct {
	AtSeconds   float64
	BudgetW     float64
	DemandW     float64
	PowerW      float64
	Scale       float64
	Churned     uint64
	Faulted     int
	Partitioned bool
}

// ScenarioResult carries the samples plus the counters the desscale
// experiment pins and the benchmark compares. Steps and WorkUnits measure
// cost (event pops vs ticks; server-state visits); everything else is
// identical between the two runners by construction.
type ScenarioResult struct {
	Samples     []ScenarioSample
	Steps       uint64
	WorkUnits   uint64
	ChurnEvents uint64
	Refreshes   uint64
	Violations  int
	FinalPowerW float64
	// AllocLatencySeconds is the summed sampled refresh latency (0 without a
	// Link).
	AllocLatencySeconds float64
}

// RNG stream ids (des.PartitionedRNG): one per randomized aspect, so e.g.
// adding sensor faults to a scenario never perturbs the churn sequence.
const (
	streamDemand = 0
	streamChurn  = 1
	streamLink   = 2
)

// Cursor kinds double as same-time priorities (lower fires first), shared
// by the scheduler's registration order and the tick runner's merge.
const (
	scKindBudget = iota
	scKindFault
	scKindPartition
	scKindChurn
	scKindApply
	scKindSample
)

// demandMW draws one server's demand, uniform in [80, 200] W.
func demandMW(rng *rand.Rand) int64 { return 80_000 + rng.Int63n(120_001) }

// scnState is the shared cluster state both runners mutate through the
// same cursor fires in the same order. All sums are exact integers, which
// is what makes incremental updates (event loop) and full resweeps (tick
// loop) land on identical values.
type scnState struct {
	sc      Scenario
	horizon float64

	demand  []int64 // true demand, mW
	view    []int64 // allocator's believed demand, mW (frozen while faulted)
	faulted []bool
	sumTrue int64
	sumView int64

	budgetW   float64
	scale     float64
	partDepth int
	dirty     bool // refresh requested while partitioned
	nFaulted  int

	churned    uint64
	refreshes  uint64
	violations int
	latTotal   float64
	linkRNG    *rand.Rand
	applies    des.Heap // pending scale applications (Link mode only)

	samples []ScenarioSample
}

func (st *scnState) applyScale() {
	if st.sumView <= 0 {
		st.scale = 1
		return
	}
	s := st.budgetW * 1000 / float64(st.sumView)
	if s > 1 {
		s = 1
	}
	st.scale = s
}

// doRefresh recomputes the allocator scale, immediately or — with a link
// model — after the sampled round latency.
func (st *scnState) doRefresh(now float64) {
	st.refreshes++
	if st.sc.Link == nil {
		st.applyScale()
		return
	}
	var lat float64
	for r := 0; r < st.sc.LinkRounds; r++ {
		lat += float64(st.sc.Link.DiBARoundSampled(st.sc.LinkNodes, st.linkRNG))
	}
	lat /= 1e9 // ns → seconds
	st.latTotal += lat
	if at := now + lat; at <= st.horizon {
		st.applies.Push(des.Item{Time: at, Prio: scKindApply})
	}
}

// requestRefresh is called at every state change the allocator reacts to;
// during a partition it only marks the state dirty.
func (st *scnState) requestRefresh(now float64) {
	if st.partDepth > 0 {
		st.dirty = true
		return
	}
	st.doRefresh(now)
}

func (st *scnState) powerW() float64 {
	return st.scale * float64(st.sumTrue) / 1000
}

func (st *scnState) sample(at float64) {
	smp := ScenarioSample{
		AtSeconds:   at,
		BudgetW:     st.budgetW,
		DemandW:     float64(st.sumTrue) / 1000,
		PowerW:      st.powerW(),
		Scale:       st.scale,
		Churned:     st.churned,
		Faulted:     st.nFaulted,
		Partitioned: st.partDepth > 0,
	}
	if smp.PowerW > smp.BudgetW*(1+1e-9) {
		st.violations++
	}
	st.samples = append(st.samples, smp)
}

// resweep is the tick runner's per-second O(N) cost model: recompute every
// sum from per-server state, the way the legacy loop re-evaluated every
// server every tick. The integers must agree with the incrementally
// maintained values; a mismatch means the cursors and the sweep disagree
// about the world, which is a bug worth failing loudly on.
func (st *scnState) resweep() error {
	var sumTrue, sumView int64
	nFaulted := 0
	for i := range st.demand {
		sumTrue += st.demand[i]
		sumView += st.view[i]
		if st.faulted[i] {
			nFaulted++
		}
	}
	if sumTrue != st.sumTrue || sumView != st.sumView || nFaulted != st.nFaulted {
		return fmt.Errorf("cluster: scenario resweep mismatch: sums (%d,%d,%d) vs incremental (%d,%d,%d)",
			sumTrue, sumView, nFaulted, st.sumTrue, st.sumView, st.nFaulted)
	}
	return nil
}

func (st *scnState) result(steps, workUnits uint64) ScenarioResult {
	return ScenarioResult{
		Samples:             st.samples,
		Steps:               steps,
		WorkUnits:           workUnits,
		ChurnEvents:         st.churned,
		Refreshes:           st.refreshes,
		Violations:          st.violations,
		FinalPowerW:         st.powerW(),
		AllocLatencySeconds: st.latTotal,
	}
}

// scnCursor is one aspect's event stream. at() returns des.Never when
// exhausted; fire() processes exactly the event at() announced. The event
// runner adapts cursors to des.EventSources; the tick runner min-merges
// them directly — same objects, same order, same results.
type scnCursor interface {
	at() float64
	fire(st *scnState) error
}

// budgetCursor replays the sorted budget steps.
type budgetCursor struct {
	steps []TimedBudget
	idx   int
}

func (c *budgetCursor) at() float64 {
	if c.idx >= len(c.steps) {
		return des.Never
	}
	return c.steps[c.idx].AtSeconds
}

func (c *budgetCursor) fire(st *scnState) error {
	s := c.steps[c.idx]
	c.idx++
	st.budgetW = s.BudgetW
	st.requestRefresh(s.AtSeconds)
	return nil
}

// toggle is a fault or partition edge.
type toggle struct {
	t      float64
	server int
	on     bool
}

// faultCursor replays sensor fault set/clear edges.
type faultCursor struct {
	toggles []toggle
	idx     int
}

func (c *faultCursor) at() float64 {
	if c.idx >= len(c.toggles) {
		return des.Never
	}
	return c.toggles[c.idx].t
}

func (c *faultCursor) fire(st *scnState) error {
	tg := c.toggles[c.idx]
	c.idx++
	i := tg.server
	if tg.on {
		if !st.faulted[i] {
			st.faulted[i] = true
			st.nFaulted++
			// The view freezes at its current value; nothing changes until
			// the server churns underneath the stale reading.
		}
		return nil
	}
	if st.faulted[i] {
		st.faulted[i] = false
		st.nFaulted--
		// Resync the view with reality and let the allocator react.
		st.sumView += st.demand[i] - st.view[i]
		st.view[i] = st.demand[i]
		st.requestRefresh(tg.t)
	}
	return nil
}

// partitionCursor replays partition start/heal edges.
type partitionCursor struct {
	toggles []toggle
	idx     int
}

func (c *partitionCursor) at() float64 {
	if c.idx >= len(c.toggles) {
		return des.Never
	}
	return c.toggles[c.idx].t
}

func (c *partitionCursor) fire(st *scnState) error {
	tg := c.toggles[c.idx]
	c.idx++
	if tg.on {
		st.partDepth++
		return nil
	}
	st.partDepth--
	if st.partDepth == 0 && st.dirty {
		st.dirty = false
		st.doRefresh(tg.t)
	}
	return nil
}

// churnCursor generates the cluster-wide Poisson churn stream lazily: next
// inter-arrival, victim server, and fresh demand all come from one
// dedicated RNG stream, drawn in a fixed order, so both runners see the
// identical realization.
type churnCursor struct {
	rng  *rand.Rand
	rate float64 // N·ChurnPerSecond
	next float64
	end  float64
}

func newChurnCursor(rng *rand.Rand, n int, perSecond, horizon float64) *churnCursor {
	c := &churnCursor{rng: rng, rate: float64(n) * perSecond, end: horizon}
	if c.rate > 0 {
		c.next = rng.ExpFloat64() / c.rate
	} else {
		c.next = des.Never
	}
	return c
}

func (c *churnCursor) at() float64 {
	if c.next > c.end {
		return des.Never
	}
	return c.next
}

func (c *churnCursor) fire(st *scnState) error {
	now := c.next
	i := c.rng.Intn(len(st.demand))
	mw := demandMW(c.rng)
	st.sumTrue += mw - st.demand[i]
	st.demand[i] = mw
	if !st.faulted[i] {
		st.sumView += mw - st.view[i]
		st.view[i] = mw
	}
	st.churned++
	st.requestRefresh(now)
	c.next = now + c.rng.ExpFloat64()/c.rate
	return nil
}

// applyCursor drains the pending scale applications scheduled by link-mode
// refreshes.
type applyCursor struct {
	st *scnState
}

func (c *applyCursor) at() float64 {
	if c.st.applies.Len() == 0 {
		return des.Never
	}
	return c.st.applies.PeekTime()
}

func (c *applyCursor) fire(st *scnState) error {
	st.applies.Pop()
	st.applyScale()
	return nil
}

// sampleCursor emits the observation instants: t=0, every SampleEvery
// seconds, and the horizon.
type sampleCursor struct {
	next    float64
	every   float64
	horizon float64
	done    bool
}

func (c *sampleCursor) at() float64 {
	if c.done {
		return des.Never
	}
	return c.next
}

func (c *sampleCursor) fire(st *scnState) error {
	st.sample(c.next)
	if c.next >= c.horizon {
		c.done = true
		return nil
	}
	if c.every <= 0 {
		c.next = c.horizon
		return nil
	}
	c.next += c.every
	if c.next > c.horizon {
		c.next = c.horizon
	}
	return nil
}

// buildScenario validates the description and constructs the shared state
// plus the cursors in kind order — which is also the scheduler
// registration order and therefore the same-time tie-break everywhere.
func buildScenario(sc Scenario) (*scnState, []scnCursor, error) {
	if sc.N <= 0 {
		return nil, nil, errors.New("cluster: scenario needs N > 0")
	}
	if sc.HorizonSeconds <= 0 {
		return nil, nil, errors.New("cluster: scenario needs a positive horizon")
	}
	if sc.InitialBudgetW <= 0 {
		return nil, nil, errors.New("cluster: scenario needs a positive initial budget")
	}
	if sc.ChurnPerSecond < 0 || sc.SampleEverySeconds < 0 {
		return nil, nil, errors.New("cluster: churn rate and sample spacing must be non-negative")
	}
	horizon := float64(sc.HorizonSeconds)
	for _, f := range sc.SensorFaults {
		if f.Server < 0 || f.Server >= sc.N || f.StartSeconds < 0 || f.EndSeconds <= f.StartSeconds {
			return nil, nil, fmt.Errorf("cluster: invalid fault window %+v", f)
		}
	}
	for _, p := range sc.Partitions {
		if p.StartSeconds < 0 || p.EndSeconds <= p.StartSeconds {
			return nil, nil, fmt.Errorf("cluster: invalid partition window %+v", p)
		}
	}
	if sc.Link != nil {
		if sc.LinkNodes == 0 {
			sc.LinkNodes = 64
		}
		if sc.LinkRounds == 0 {
			sc.LinkRounds = 30
		}
		if sc.LinkNodes < 0 || sc.LinkRounds < 0 {
			return nil, nil, errors.New("cluster: link nodes and rounds must be positive")
		}
	}

	prng := des.NewPartitionedRNG(sc.Seed)
	st := &scnState{
		sc:      sc,
		horizon: horizon,
		demand:  make([]int64, sc.N),
		view:    make([]int64, sc.N),
		faulted: make([]bool, sc.N),
		budgetW: sc.InitialBudgetW,
		linkRNG: prng.Stream(streamLink),
	}
	demandRNG := prng.Stream(streamDemand)
	for i := range st.demand {
		mw := demandMW(demandRNG)
		st.demand[i] = mw
		st.view[i] = mw
		st.sumTrue += mw
	}
	st.sumView = st.sumTrue
	nSamples := 2
	if sc.SampleEverySeconds > 0 {
		nSamples += sc.HorizonSeconds / sc.SampleEverySeconds
	}
	st.samples = make([]ScenarioSample, 0, nSamples)
	st.applies.Grow(16)

	// The initial allocation happens before the clock starts.
	st.doRefresh(0)

	steps := append([]TimedBudget(nil), sc.BudgetSteps...)
	sort.SliceStable(steps, func(a, b int) bool { return steps[a].AtSeconds < steps[b].AtSeconds })
	for len(steps) > 0 && steps[len(steps)-1].AtSeconds > horizon {
		steps = steps[:len(steps)-1]
	}

	var faults []toggle
	for _, f := range sc.SensorFaults {
		faults = append(faults, toggle{t: f.StartSeconds, server: f.Server, on: true})
		if f.EndSeconds <= horizon {
			faults = append(faults, toggle{t: f.EndSeconds, server: f.Server, on: false})
		}
	}
	sort.SliceStable(faults, func(a, b int) bool { return faults[a].t < faults[b].t })

	var parts []toggle
	for _, p := range sc.Partitions {
		parts = append(parts, toggle{t: p.StartSeconds, on: true})
		if p.EndSeconds <= horizon {
			parts = append(parts, toggle{t: p.EndSeconds, on: false})
		}
	}
	sort.SliceStable(parts, func(a, b int) bool { return parts[a].t < parts[b].t })
	dropLate := func(ts []toggle) []toggle {
		keep := ts[:0]
		for _, tg := range ts {
			if tg.t <= horizon {
				keep = append(keep, tg)
			}
		}
		return keep
	}
	faults = dropLate(faults)
	parts = dropLate(parts)

	cursors := []scnCursor{
		&budgetCursor{steps: steps},
		&faultCursor{toggles: faults},
		&partitionCursor{toggles: parts},
		newChurnCursor(prng.Stream(streamChurn), sc.N, sc.ChurnPerSecond, horizon),
		&applyCursor{st: st},
		&sampleCursor{every: float64(sc.SampleEverySeconds), horizon: horizon},
	}
	return st, cursors, nil
}

// cursorSource adapts one cursor to a des.EventSource.
type cursorSource struct {
	c  scnCursor
	st *scnState
}

func (s cursorSource) HasPendingEvents() bool     { return s.c.at() != des.Never }
func (s cursorSource) PeekNextEventTime() float64 { return s.c.at() }
func (s cursorSource) ProcessNextEvent() error    { return s.c.fire(s.st) }

// RunScenarioEvents executes the scenario on the shared-clock event core:
// one EventSource per aspect, merged by a des.Scheduler. Work is
// O(events + samples) — independent of N·seconds.
func RunScenarioEvents(sc Scenario) (ScenarioResult, error) {
	st, cursors, err := buildScenario(sc)
	if err != nil {
		return ScenarioResult{}, err
	}
	sched := des.NewScheduler()
	for _, c := range cursors {
		sched.Add(cursorSource{c: c, st: st})
	}
	if err := sched.Run(); err != nil {
		return ScenarioResult{}, err
	}
	// Work: initial per-server draws plus one visit per processed event.
	return st.result(sched.Processed(), uint64(sc.N)+sched.Processed()), nil
}

// RunScenarioTicks executes the identical scenario with the legacy loop
// structure: every simulated second it drains the same cursors in the same
// order and then pays a full O(N) sweep over the servers. The result is
// bit-identical to RunScenarioEvents; only Steps/WorkUnits — the cost —
// differ. This is the baseline the desscale experiment and `repro bench
// -des` measure the event core against.
func RunScenarioTicks(sc Scenario) (ScenarioResult, error) {
	st, cursors, err := buildScenario(sc)
	if err != nil {
		return ScenarioResult{}, err
	}
	var fired uint64
	work := uint64(sc.N)
	for t := 1; t <= sc.HorizonSeconds; t++ {
		tick := float64(t)
		for {
			best := -1
			bestAt := des.Never
			for i, c := range cursors {
				// Strict < matches the scheduler's registration-order tie-break.
				if at := c.at(); at < bestAt {
					best, bestAt = i, at
				}
			}
			if best < 0 || bestAt > tick {
				break
			}
			if err := cursors[best].fire(st); err != nil {
				return ScenarioResult{}, err
			}
			fired++
			work++
		}
		if err := st.resweep(); err != nil {
			return ScenarioResult{}, err
		}
		work += uint64(sc.N)
	}
	return st.result(uint64(sc.HorizonSeconds), work), nil
}
