// Package cluster ties the pieces into the time-stepped simulation the
// dynamic experiments run on: a DiBA engine over a communication graph,
// per-server workloads with churn, a budget schedule, and the centralized
// oracle recomputed as a reference. It reproduces the settings of
// Figs. 4.4–4.7: budgets that change minute to minute, workloads that
// complete and are replaced by random draws from the benchmark pool, and
// SNP tracked against the optimum over simulated time.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"

	"powercap/internal/diba"
	"powercap/internal/metrics"
	"powercap/internal/parallel"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Config describes a simulated cluster.
type Config struct {
	// N is the number of servers. Required.
	N int
	// Graph is the DiBA communication graph; nil selects a ring.
	Graph *topology.Graph
	// Server is the servers' power model; zero value selects
	// workload.DefaultServer.
	Server workload.Server
	// Catalog is the benchmark pool; nil selects workload.HPC.
	Catalog []workload.Benchmark
	// Seed drives all randomness (assignment, churn, measurement noise).
	Seed int64
	// RoundsPerSecond is how many DiBA rounds run per simulated second;
	// 0 selects 100 (one exchange every 10 ms, well within the measured
	// 210 µs per round).
	RoundsPerSecond int
	// ChurnPerSecond is each server's per-second probability of finishing
	// its workload and drawing a new one (Fig. 4.7's dynamic-workload mode).
	ChurnPerSecond float64
	// MeasureNoise is the relative error of the throughput sweeps used to
	// fit new utilities on churn.
	MeasureNoise float64
	// Diba configures the allocation algorithm.
	Diba diba.Config
	// Phased optionally gives servers phase-cycling applications: entry i
	// (may be nil) replaces churn for server i — each simulated second the
	// phase clock advances and on a transition the server's utility is
	// refit to the new phase.
	Phased []*workload.Phased
	// Enforce, when true, actuates every second's caps through per-server
	// DVFS feedback controllers (EnforceCaps) and reports the measured
	// power and throughput in the samples — the full capping stack rather
	// than the model shortcut.
	Enforce bool
	// Sensed, when non-nil, actuates caps through the persistent
	// telemetry-hardened enforcement stack instead: fault-injectable
	// sensors, robust filters, and the cap-safety watchdog (see sensed.go).
	// Mutually exclusive with Enforce.
	Sensed *SensedConfig
}

// BudgetEvent changes the cluster budget at a simulated second, as in the
// demand-response scenarios of Figs. 4.4–4.6.
type BudgetEvent struct {
	AtSecond int
	Budget   float64
}

// Sample is one per-second observation of the simulated cluster.
type Sample struct {
	Second     int
	Budget     float64
	Power      float64
	Utility    float64
	OptUtility float64
	SNP        float64
	OptSNP     float64
	// Churned is how many servers swapped workloads this second.
	Churned int
	// EnforcedPower and EnforcedThroughput are the DVFS controllers'
	// measured outputs (only when Config.Enforce is set; otherwise zero).
	// Discrete p-states undershoot the continuous caps, so EnforcedPower
	// ≤ Power.
	EnforcedPower      float64
	EnforcedThroughput float64
	// FilteredPower, Derate, and SensorFaulted report the sensed
	// enforcement path's last control period of the second (only when
	// Config.Sensed is set; otherwise zero): the watchdog's filtered ΣP
	// view, the cap derate in force, and the number of distrusted sensors.
	FilteredPower float64
	Derate        float64
	SensorFaulted int
}

// Sim is a running cluster simulation.
type Sim struct {
	cfg    Config
	engine *diba.Engine
	us     []workload.Utility
	bench  []workload.Benchmark
	rng    *rand.Rand
	budget float64
	enf    *Enforcer
}

// NewSim builds the cluster: assigns workloads, fits utilities, and places
// the DiBA engine at its feasible starting state under initialBudget.
func NewSim(cfg Config, initialBudget float64) (*Sim, error) {
	if cfg.N <= 0 {
		return nil, errors.New("cluster: N must be positive")
	}
	if cfg.Graph == nil {
		cfg.Graph = topology.Ring(cfg.N)
	}
	if cfg.Graph.N() != cfg.N {
		return nil, fmt.Errorf("cluster: graph size %d != N %d", cfg.Graph.N(), cfg.N)
	}
	if cfg.Phased != nil && len(cfg.Phased) != cfg.N {
		return nil, fmt.Errorf("cluster: Phased has %d entries, want %d", len(cfg.Phased), cfg.N)
	}
	if cfg.Sensed != nil && cfg.Enforce {
		return nil, errors.New("cluster: Enforce and Sensed are mutually exclusive")
	}
	if (cfg.Server == workload.Server{}) {
		cfg.Server = workload.DefaultServer
	}
	if cfg.Catalog == nil {
		cfg.Catalog = workload.HPC
	}
	if cfg.RoundsPerSecond == 0 {
		cfg.RoundsPerSecond = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	a, err := workload.Assign(cfg.Catalog, cfg.N, cfg.Server, 0.05, cfg.MeasureNoise, rng)
	if err != nil {
		return nil, err
	}
	us := a.UtilitySlice()
	en, err := diba.New(cfg.Graph, us, initialBudget, cfg.Diba)
	if err != nil {
		return nil, err
	}
	sim := &Sim{
		cfg:    cfg,
		engine: en,
		us:     us,
		bench:  a.Benchmarks,
		rng:    rng,
		budget: initialBudget,
	}
	if cfg.Sensed != nil {
		enf, err := NewEnforcer(sim.bench, cfg.Server, cfg.MeasureNoise, *cfg.Sensed)
		if err != nil {
			return nil, err
		}
		sim.enf = enf
	}
	return sim, nil
}

// Engine exposes the underlying DiBA engine (read-mostly; prefer Run).
func (s *Sim) Engine() *diba.Engine { return s.engine }

// Utilities returns the live utility slice (shared with the engine).
func (s *Sim) Utilities() []workload.Utility { return s.us }

// snapshot evaluates the current allocation and its optimal reference.
func (s *Sim) snapshot(second, churned int) (Sample, error) {
	alloc := s.engine.Alloc()
	rep, err := metrics.Evaluate(s.us, alloc, metrics.Arithmetic)
	if err != nil {
		return Sample{}, err
	}
	opt, err := solver.Optimal(s.us, s.budget)
	if err != nil {
		return Sample{}, err
	}
	optRep, err := metrics.Evaluate(s.us, opt.Alloc, metrics.Arithmetic)
	if err != nil {
		return Sample{}, err
	}
	util, err := metrics.TotalUtility(s.us, alloc)
	if err != nil {
		return Sample{}, err
	}
	var enfPower, enfThroughput float64
	if s.cfg.Enforce {
		enf, err := EnforceCaps(s.bench, s.cfg.Server, alloc, s.cfg.MeasureNoise, 30, s.rng)
		if err != nil {
			return Sample{}, err
		}
		enfPower, enfThroughput = enf.TotalPower, enf.TotalThroughput
	}
	return Sample{
		Second:             second,
		Budget:             s.budget,
		Power:              s.engine.TotalPower(),
		Utility:            util,
		OptUtility:         opt.Utility,
		SNP:                rep.SNP,
		OptSNP:             optRep.SNP,
		Churned:            churned,
		EnforcedPower:      enfPower,
		EnforcedThroughput: enfThroughput,
	}, nil
}

// pendingSnap captures everything a per-second sample needs so that the
// expensive part — the centralized oracle (solver.Optimal) plus the metric
// evaluations — can be computed after the time loop, fanned across workers.
// us is nil when the utilities are static for the whole run (no churn, no
// phases), in which case the live slice is used directly.
type pendingSnap struct {
	second, churned int
	budget, power   float64
	alloc           []float64
	us              []workload.Utility
}

// snapshotBatch bounds how many deferred snapshots accumulate before a
// flush, keeping the captured alloc/us copies to a few MB even on
// hour-long full-scale runs.
const snapshotBatch = 256

// evalSnapshot computes a Sample from captured state. It touches nothing
// on the Sim, so flushes may run it concurrently across snapshots.
func evalSnapshot(us []workload.Utility, ps pendingSnap) (Sample, error) {
	rep, err := metrics.Evaluate(us, ps.alloc, metrics.Arithmetic)
	if err != nil {
		return Sample{}, err
	}
	opt, err := solver.Optimal(us, ps.budget)
	if err != nil {
		return Sample{}, err
	}
	optRep, err := metrics.Evaluate(us, opt.Alloc, metrics.Arithmetic)
	if err != nil {
		return Sample{}, err
	}
	util, err := metrics.TotalUtility(us, ps.alloc)
	if err != nil {
		return Sample{}, err
	}
	return Sample{
		Second:     ps.second,
		Budget:     ps.budget,
		Power:      ps.power,
		Utility:    util,
		OptUtility: opt.Utility,
		SNP:        rep.SNP,
		OptSNP:     optRep.SNP,
		Churned:    ps.churned,
	}, nil
}

// Run simulates the given number of seconds, applying budget events and
// workload churn, and returns one sample per second (plus one for the
// initial state at second 0).
//
// The default path runs on the internal/des shared-clock event core (see
// events.go): each second's budget step, workload churn, DiBA rounds, and
// snapshot are tick-aligned events processed in that fixed order, so the
// samples are bit-identical to the legacy tick loop (RunTick) — asserted
// by the property suite. Unless Config.Enforce is set, the per-second
// oracle/metric evaluation is deferred and computed in batches on up to
// parallel.Workers() goroutines; each snapshot is evaluated from state
// captured at its own second, so the samples are identical to the
// sequential schedule at any worker count.
func (s *Sim) Run(seconds int, events []BudgetEvent) ([]Sample, error) {
	if s.cfg.Enforce {
		// DVFS enforcement consumes s.rng inside each snapshot, so the
		// measurement schedule only makes sense evaluated in time order.
		return s.runEnforced(seconds, events)
	}
	if s.cfg.Sensed != nil {
		return s.runSensed(seconds, events)
	}
	return s.runEvents(seconds, events)
}

// RunTick is the legacy fixed-1-second tick loop, kept verbatim as the
// reference implementation the event-driven Run is property-tested
// against (it must stay bit-identical at every seed). Enforce/Sensed
// configurations dispatch to the same sequential paths Run uses.
func (s *Sim) RunTick(seconds int, events []BudgetEvent) ([]Sample, error) {
	if s.cfg.Enforce {
		return s.runEnforced(seconds, events)
	}
	if s.cfg.Sensed != nil {
		return s.runSensed(seconds, events)
	}
	byTime := make(map[int]float64, len(events))
	for _, ev := range events {
		byTime[ev.AtSecond] = ev.Budget
	}
	mutable := s.cfg.ChurnPerSecond > 0 || s.cfg.Phased != nil
	samples := make([]Sample, 0, seconds+1)
	batch := make([]pendingSnap, 0, snapshotBatch)
	capture := func(second, churned int) {
		ps := pendingSnap{
			second:  second,
			churned: churned,
			budget:  s.budget,
			power:   s.engine.TotalPower(),
			alloc:   s.engine.Alloc(),
		}
		if mutable {
			ps.us = append([]workload.Utility(nil), s.us...)
		}
		batch = append(batch, ps)
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		out := make([]Sample, len(batch))
		err := parallel.ForEach(len(batch), func(k int) error {
			us := batch[k].us
			if us == nil {
				us = s.us
			}
			smp, err := evalSnapshot(us, batch[k])
			out[k] = smp
			return err
		})
		if err != nil {
			return err
		}
		samples = append(samples, out...)
		batch = batch[:0]
		return nil
	}
	capture(0, 0)
	for sec := 1; sec <= seconds; sec++ {
		if b, ok := byTime[sec]; ok {
			if err := s.engine.SetBudget(b); err != nil {
				return nil, fmt.Errorf("cluster: budget event at %ds: %w", sec, err)
			}
			s.budget = b
		}
		churned, err := s.advanceWorkloads()
		if err != nil {
			return nil, err
		}
		for r := 0; r < s.cfg.RoundsPerSecond; r++ {
			s.engine.StepAuto()
		}
		capture(sec, churned)
		if len(batch) >= snapshotBatch {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return samples, nil
}

// runEnforced is the sequential path used when caps are actuated through
// the DVFS controllers: every snapshot draws measurement noise from s.rng,
// so evaluation order is part of the simulated schedule.
func (s *Sim) runEnforced(seconds int, events []BudgetEvent) ([]Sample, error) {
	byTime := make(map[int]float64, len(events))
	for _, ev := range events {
		byTime[ev.AtSecond] = ev.Budget
	}
	samples := make([]Sample, 0, seconds+1)
	first, err := s.snapshot(0, 0)
	if err != nil {
		return nil, err
	}
	samples = append(samples, first)
	for sec := 1; sec <= seconds; sec++ {
		if b, ok := byTime[sec]; ok {
			if err := s.engine.SetBudget(b); err != nil {
				return nil, fmt.Errorf("cluster: budget event at %ds: %w", sec, err)
			}
			s.budget = b
		}
		churned, err := s.advanceWorkloads()
		if err != nil {
			return nil, err
		}
		for r := 0; r < s.cfg.RoundsPerSecond; r++ {
			s.engine.StepAuto()
		}
		smp, err := s.snapshot(sec, churned)
		if err != nil {
			return nil, err
		}
		samples = append(samples, smp)
	}
	return samples, nil
}

// advanceWorkloads applies one second of churn and phase transitions and
// returns how many servers swapped utilities.
func (s *Sim) advanceWorkloads() (int, error) {
	churned := 0
	if s.cfg.ChurnPerSecond > 0 {
		for i := 0; i < s.cfg.N; i++ {
			if s.rng.Float64() < s.cfg.ChurnPerSecond {
				if err := s.churn(i); err != nil {
					return 0, err
				}
				churned++
			}
		}
	}
	for i, ph := range s.cfg.Phased {
		if ph == nil {
			continue
		}
		if ph.Advance(1, s.rng) {
			q := ph.Utility(s.cfg.Server)
			s.bench[i] = ph.Current()
			s.us[i] = q
			if err := s.engine.SetUtility(i, q); err != nil {
				return 0, err
			}
			churned++
		}
	}
	return churned, nil
}

// churn replaces server i's workload with a fresh random draw and refits
// its utility, exactly as the dynamic-workload experiment does.
func (s *Sim) churn(i int) error {
	b := s.cfg.Catalog[s.rng.Intn(len(s.cfg.Catalog))].Perturb(s.rng, 0.05)
	q, err := workload.FitFromSweep(b, s.cfg.Server, s.cfg.MeasureNoise, s.rng)
	if err != nil {
		return err
	}
	s.bench[i] = b
	s.us[i] = q
	return s.engine.SetUtility(i, q)
}

// TraceRound is one per-round observation used by the step-response detail
// plots (Figs. 4.5–4.6).
type TraceRound struct {
	Round   int
	Power   float64
	Utility float64
	Budget  float64
}

// Trace runs the engine for the given number of rounds with no events and
// records power and utility each round.
func (s *Sim) Trace(rounds int) []TraceRound {
	out := make([]TraceRound, 0, rounds+1)
	out = append(out, TraceRound{Round: 0, Power: s.engine.TotalPower(), Utility: s.engine.TotalUtility(), Budget: s.budget})
	for r := 1; r <= rounds; r++ {
		s.engine.StepAuto()
		out = append(out, TraceRound{Round: r, Power: s.engine.TotalPower(), Utility: s.engine.TotalUtility(), Budget: s.budget})
	}
	return out
}

// SetBudget changes the cluster budget immediately (between Run segments).
func (s *Sim) SetBudget(b float64) error {
	if err := s.engine.SetBudget(b); err != nil {
		return err
	}
	s.budget = b
	return nil
}

// Budget returns the current budget.
func (s *Sim) Budget() float64 { return s.budget }
