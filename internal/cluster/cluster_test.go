package cluster

import (
	"testing"

	"powercap/internal/topology"
	"powercap/internal/workload"
)

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(Config{N: 0}, 1000); err == nil {
		t.Fatal("N=0 must be rejected")
	}
	if _, err := NewSim(Config{N: 10, Graph: topology.Ring(5)}, 2000); err == nil {
		t.Fatal("graph/N mismatch must be rejected")
	}
	if _, err := NewSim(Config{N: 10}, 100); err == nil {
		t.Fatal("infeasible budget must be rejected")
	}
}

func TestRunStaticBudgetConvergesNearOptimal(t *testing.T) {
	sim, err := NewSim(Config{N: 100, Seed: 1}, 100*172)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sim.Run(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 11 {
		t.Fatalf("got %d samples, want 11", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Power > last.Budget {
		t.Fatalf("power %v exceeds budget %v", last.Power, last.Budget)
	}
	if last.Utility < 0.99*last.OptUtility {
		t.Fatalf("utility %v below 99%% of optimal %v after 10 s", last.Utility, last.OptUtility)
	}
	if last.SNP <= 0 || last.SNP > 1+1e-9 {
		t.Fatalf("SNP out of range: %v", last.SNP)
	}
	if last.SNP > last.OptSNP+1e-9 {
		t.Fatalf("SNP %v above optimal %v", last.SNP, last.OptSNP)
	}
}

func TestRunBudgetEventsNeverViolate(t *testing.T) {
	sim, err := NewSim(Config{N: 100, Seed: 2}, 100*190)
	if err != nil {
		t.Fatal(err)
	}
	events := []BudgetEvent{
		{AtSecond: 3, Budget: 100 * 170},
		{AtSecond: 6, Budget: 100 * 185},
		{AtSecond: 9, Budget: 100 * 175},
	}
	samples, err := sim.Run(12, events)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Power > s.Budget+1e-6 {
			t.Fatalf("second %d: power %v exceeds budget %v", s.Second, s.Power, s.Budget)
		}
	}
	// The budget changes must be visible in the samples.
	if samples[3].Budget != 100*170 || samples[6].Budget != 100*185 {
		t.Fatal("budget events not applied at the right seconds")
	}
	// Re-convergence after the final change.
	last := samples[len(samples)-1]
	if last.Utility < 0.985*last.OptUtility {
		t.Fatalf("utility %v below 98.5%% of optimal %v after events", last.Utility, last.OptUtility)
	}
}

func TestRunInfeasibleBudgetEvent(t *testing.T) {
	sim, err := NewSim(Config{N: 10, Seed: 3}, 10*180)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(3, []BudgetEvent{{AtSecond: 1, Budget: 100}}); err == nil {
		t.Fatal("infeasible budget event must error")
	}
}

func TestChurnKeepsFeasibilityAndTracksOptimal(t *testing.T) {
	sim, err := NewSim(Config{N: 100, Seed: 4, ChurnPerSecond: 0.05, MeasureNoise: 0.01}, 100*180)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sim.Run(30, nil)
	if err != nil {
		t.Fatal(err)
	}
	totalChurn := 0
	for _, s := range samples {
		totalChurn += s.Churned
		if s.Power > s.Budget+1e-6 {
			t.Fatalf("second %d: power %v exceeds budget %v", s.Second, s.Power, s.Budget)
		}
	}
	if totalChurn == 0 {
		t.Fatal("churn never happened with 5%/s on 100 nodes over 30 s")
	}
	last := samples[len(samples)-1]
	if last.Utility < 0.97*last.OptUtility {
		t.Fatalf("utility %v strayed from optimal %v under churn", last.Utility, last.OptUtility)
	}
}

func TestTraceStepResponse(t *testing.T) {
	sim, err := NewSim(Config{N: 50, Seed: 5}, 50*190)
	if err != nil {
		t.Fatal(err)
	}
	// Settle, then cut the budget and trace the detail.
	if _, err := sim.Run(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := sim.SetBudget(50 * 170); err != nil {
		t.Fatal(err)
	}
	tr := sim.Trace(200)
	if len(tr) != 201 {
		t.Fatalf("trace length %d, want 201", len(tr))
	}
	// Power must comply immediately after the cut (Fig. 4.5's "computing
	// power decreases immediately").
	if tr[0].Power > 50*170 {
		t.Fatalf("power %v not cut immediately", tr[0].Power)
	}
	// And recover utility over the trace without ever violating.
	for _, r := range tr {
		if r.Power > r.Budget+1e-6 {
			t.Fatalf("round %d: power %v exceeds budget", r.Round, r.Power)
		}
	}
	if tr[len(tr)-1].Utility <= tr[0].Utility {
		t.Fatal("utility must recover after the immediate cut")
	}
}

func TestBudgetAccessors(t *testing.T) {
	sim, err := NewSim(Config{N: 10, Seed: 6}, 10*180)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Budget() != 1800 {
		t.Fatal("wrong budget")
	}
	if sim.Engine() == nil || len(sim.Utilities()) != 10 {
		t.Fatal("accessors broken")
	}
	if err := sim.SetBudget(10 * 150); err != nil {
		t.Fatal(err)
	}
	if sim.Budget() != 1500 {
		t.Fatal("SetBudget not applied")
	}
	if err := sim.SetBudget(1); err == nil {
		t.Fatal("infeasible SetBudget must error")
	}
}

func TestPhasedWorkloadsTracked(t *testing.T) {
	const n = 60
	phased := make([]*workload.Phased, n)
	ep, _ := workload.ByName(workload.HPC, "EP")
	ra, _ := workload.ByName(workload.HPC, "RA")
	// A third of the servers run a two-phase solver alternating between
	// compute- and memory-bound behaviour every ~20 s.
	for i := 0; i < n; i += 3 {
		p, err := workload.NewPhased("solver", []workload.Benchmark{ep, ra}, []float64{20, 20})
		if err != nil {
			t.Fatal(err)
		}
		phased[i] = p
	}
	sim, err := NewSim(Config{N: n, Seed: 8, Phased: phased}, 170*n)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sim.Run(120, nil)
	if err != nil {
		t.Fatal(err)
	}
	transitions := 0
	for _, s := range samples {
		transitions += s.Churned
		if s.Power > s.Budget+1e-6 {
			t.Fatalf("second %d: phased workload broke the budget", s.Second)
		}
	}
	if transitions < 20 {
		t.Fatalf("expected many phase transitions, saw %d", transitions)
	}
	// Despite continuous phase churn the allocation stays near optimal.
	last := samples[len(samples)-1]
	if last.Utility < 0.97*last.OptUtility {
		t.Fatalf("utility %v strayed from optimal %v under phases", last.Utility, last.OptUtility)
	}
}

func TestPhasedLengthValidation(t *testing.T) {
	if _, err := NewSim(Config{N: 5, Phased: make([]*workload.Phased, 3)}, 5*180); err == nil {
		t.Fatal("Phased length mismatch must be rejected")
	}
}
