package cluster

import (
	"math/rand"
	"testing"

	"powercap/internal/diba"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

func TestEnforceCapsValidation(t *testing.T) {
	if _, err := EnforceCaps(workload.HPC[:2], workload.DefaultServer, []float64{150}, 0, 10, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := EnforceCaps(workload.HPC[:1], workload.Server{}, []float64{150}, 0, 10, nil); err == nil {
		t.Fatal("invalid server must error")
	}
}

func TestEnforceCapsRespectsEveryCap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	benchs := make([]workload.Benchmark, n)
	caps := make([]float64, n)
	for i := range benchs {
		benchs[i] = workload.HPC[rng.Intn(len(workload.HPC))]
		caps[i] = 115 + rng.Float64()*80
	}
	enf, err := EnforceCaps(benchs, workload.DefaultServer, caps, 0, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	var capSum float64
	for i, smp := range enf.Samples {
		if smp.Power > caps[i]+1e-9 {
			t.Fatalf("server %d measured %v W over cap %v W", i, smp.Power, caps[i])
		}
		capSum += caps[i]
	}
	if enf.TotalPower > capSum {
		t.Fatal("total measured power exceeds total caps")
	}
}

func TestEndToEndDiBAThenEnforce(t *testing.T) {
	// The full stack: fit models, allocate with DiBA, actuate with the
	// DVFS controllers, and confirm (a) the cluster budget is respected by
	// the *measured* power and (b) the delivered throughput lands near the
	// model's prediction.
	const n = 60
	budget := 165.0 * n
	rng := rand.New(rand.NewSource(2))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	us := a.UtilitySlice()
	en, err := diba.New(topology.Ring(n), us, budget, diba.Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	if res := en.RunToTarget(opt.Utility, 0.99, 20000); !res.Converged {
		t.Fatal("DiBA did not converge")
	}
	caps := en.Alloc()

	enf, err := EnforceCaps(a.Benchmarks, workload.DefaultServer, caps, 0.01, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if enf.TotalPower > budget {
		t.Fatalf("measured cluster power %v exceeds budget %v", enf.TotalPower, budget)
	}
	// Discrete p-states undershoot the continuous caps, so the delivered
	// throughput trails the model — but not by much.
	modelThroughput := en.TotalUtility()
	if enf.TotalThroughput < 0.85*modelThroughput {
		t.Fatalf("delivered throughput %v below 85%% of the model's %v", enf.TotalThroughput, modelThroughput)
	}
	if enf.TotalThroughput > 1.1*modelThroughput {
		t.Fatalf("delivered throughput %v implausibly above the model's %v", enf.TotalThroughput, modelThroughput)
	}
}

func TestSimWithEnforcement(t *testing.T) {
	sim, err := NewSim(Config{N: 50, Seed: 9, Enforce: true, MeasureNoise: 0.01}, 50*170)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sim.Run(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.EnforcedPower <= 0 || s.EnforcedThroughput <= 0 {
			t.Fatalf("second %d: enforcement not reported", s.Second)
		}
		// Controllers can only undershoot the caps, never overshoot.
		if s.EnforcedPower > s.Power+1e-9 {
			t.Fatalf("second %d: enforced power %v above cap sum %v", s.Second, s.EnforcedPower, s.Power)
		}
		if s.EnforcedPower > s.Budget {
			t.Fatalf("second %d: enforced power above budget", s.Second)
		}
	}
}
