package cluster

import (
	"fmt"

	"powercap/internal/des"
	"powercap/internal/parallel"
	"powercap/internal/workload"
)

// The event-driven simulation loop. Each simulated second decomposes into
// tick-aligned events at integer times, ordered within a second by
// priority: budget step, then workload churn/phases, then the DiBA rounds,
// then the snapshot — exactly the statement order of the legacy tick loop
// (RunTick), which is what keeps the two paths bit-identical. Events that
// would do nothing are never scheduled: a run with no churn, no phases,
// and no budget events queues only rounds and snapshot events, and a
// Scenario (scenario.go) with sparse sampling drops even those, which is
// where the O(events) win over O(n)·ticks comes from.
const (
	evBudget   = 0 // apply a budget step (Prio 0: first within the second)
	evWorkload = 1 // churn + phase transitions (Prio 1)
	evRounds   = 2 // the second's DiBA rounds (Prio 2)
	evSnapshot = 3 // capture the per-second sample (Prio 3: last)
)

// simSource drives one Sim through its per-second schedule as a
// des.EventSource. Seconds are scheduled lazily — processing second t's
// snapshot enqueues second t+1 — so the queue stays a handful of events
// deep regardless of horizon.
type simSource struct {
	s       *Sim
	seconds int
	byTime  map[int]float64
	mutable bool
	q       des.Heap

	// churned carries the workload event's count to the snapshot event of
	// the same second.
	churned int
	capture func(second, churned int)
	onBatch func() error
}

func (src *simSource) scheduleSecond(sec int) {
	t := float64(sec)
	if _, ok := src.byTime[sec]; ok {
		src.q.Push(des.Item{Time: t, Prio: evBudget, Kind: evBudget, Node: int32(sec)})
	}
	if src.mutable {
		src.q.Push(des.Item{Time: t, Prio: evWorkload, Kind: evWorkload, Node: int32(sec)})
	}
	if src.s.cfg.RoundsPerSecond > 0 {
		src.q.Push(des.Item{Time: t, Prio: evRounds, Kind: evRounds, Node: int32(sec)})
	}
	src.q.Push(des.Item{Time: t, Prio: evSnapshot, Kind: evSnapshot, Node: int32(sec)})
}

func (src *simSource) HasPendingEvents() bool     { return src.q.Len() > 0 }
func (src *simSource) PeekNextEventTime() float64 { return src.q.PeekTime() }

func (src *simSource) ProcessNextEvent() error {
	ev := src.q.Pop()
	sec := int(ev.Node)
	switch ev.Kind {
	case evBudget:
		b := src.byTime[sec]
		if err := src.s.engine.SetBudget(b); err != nil {
			return fmt.Errorf("cluster: budget event at %ds: %w", sec, err)
		}
		src.s.budget = b
	case evWorkload:
		churned, err := src.s.advanceWorkloads()
		if err != nil {
			return err
		}
		src.churned = churned
	case evRounds:
		for r := 0; r < src.s.cfg.RoundsPerSecond; r++ {
			src.s.engine.StepAuto()
		}
	case evSnapshot:
		src.capture(sec, src.churned)
		src.churned = 0
		if err := src.onBatch(); err != nil {
			return err
		}
		if sec < src.seconds {
			src.scheduleSecond(sec + 1)
		}
	}
	return nil
}

// runEvents is Run's default path on the shared-clock event core.
func (s *Sim) runEvents(seconds int, events []BudgetEvent) ([]Sample, error) {
	byTime := make(map[int]float64, len(events))
	for _, ev := range events {
		byTime[ev.AtSecond] = ev.Budget
	}
	mutable := s.cfg.ChurnPerSecond > 0 || s.cfg.Phased != nil
	samples := make([]Sample, 0, seconds+1)
	batch := make([]pendingSnap, 0, snapshotBatch)
	capture := func(second, churned int) {
		ps := pendingSnap{
			second:  second,
			churned: churned,
			budget:  s.budget,
			power:   s.engine.TotalPower(),
			alloc:   s.engine.Alloc(),
		}
		if mutable {
			ps.us = append([]workload.Utility(nil), s.us...)
		}
		batch = append(batch, ps)
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		out := make([]Sample, len(batch))
		err := parallel.ForEach(len(batch), func(k int) error {
			us := batch[k].us
			if us == nil {
				us = s.us
			}
			smp, err := evalSnapshot(us, batch[k])
			out[k] = smp
			return err
		})
		if err != nil {
			return err
		}
		samples = append(samples, out...)
		batch = batch[:0]
		return nil
	}
	src := &simSource{
		s:       s,
		seconds: seconds,
		byTime:  byTime,
		mutable: mutable,
		capture: capture,
		onBatch: func() error {
			if len(batch) >= snapshotBatch {
				return flush()
			}
			return nil
		},
	}
	capture(0, 0)
	if seconds >= 1 {
		src.scheduleSecond(1)
	}
	sched := des.NewScheduler(src)
	if err := sched.Run(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return samples, nil
}
