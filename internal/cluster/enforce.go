package cluster

import (
	"errors"
	"math/rand"

	"powercap/internal/capping"
	"powercap/internal/workload"
)

// Enforcement closes the loop the budgeting layer assumes: the caps any
// allocator computes are handed to one DVFS feedback controller per server
// (Fig. 2.1), which settles each machine at the highest p-state whose
// power fits under its cap. EnforceCaps runs that actuation and reports
// what the hardware would actually deliver.

// Enforcement is the settled state of the whole cluster's controllers.
type Enforcement struct {
	// Samples holds each server's settled control-period observation.
	Samples []capping.Sample
	// TotalPower is the measured Σ power after settling — at or below the
	// sum of caps, typically below (discrete p-states undershoot).
	TotalPower float64
	// TotalThroughput is the measured Σ throughput.
	TotalThroughput float64
}

// EnforceCaps settles one feedback controller per server at the given caps
// and returns the cluster's measured state. noise is the controllers'
// power-measurement noise; settle is the number of control periods to run
// (the paper's controller converges within a handful).
func EnforceCaps(benchs []workload.Benchmark, s workload.Server, caps []float64, noise float64, settle int, rng *rand.Rand) (Enforcement, error) {
	if len(benchs) != len(caps) {
		return Enforcement{}, errors.New("cluster: benchmarks/caps length mismatch")
	}
	if settle <= 0 {
		settle = 30
	}
	out := Enforcement{Samples: make([]capping.Sample, len(caps))}
	for i, b := range benchs {
		ctl, err := capping.NewController(b, s)
		if err != nil {
			return Enforcement{}, err
		}
		ctl.NoiseRel = noise
		if err := ctl.SetCap(caps[i]); err != nil {
			return Enforcement{}, err
		}
		smp := ctl.Settle(settle, rng)
		out.Samples[i] = smp
		out.TotalPower += smp.Power
		out.TotalThroughput += smp.Throughput
	}
	return out, nil
}
