package cluster

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"powercap/internal/diba"
	"powercap/internal/safety"
	"powercap/internal/sensor"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// checkGoroutineLeakCluster fails the test if goroutines outlive it (stray
// fault timers, stuck agents). Registered as a cleanup so it runs last.
func checkGoroutineLeakCluster(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	})
}

func TestSensorAndTransportChaosSoak(t *testing.T) {
	// The everything-at-once drill: DiBA agents exchanging estimates over a
	// chaos transport (delay, duplication, reordering) while every agent's
	// power sensor runs a fault plan (dropouts, stuck-at, spikes, drift)
	// behind its telemetry guard, and a watchdog-monitored enforcement loop
	// actuates whatever caps the agents currently apply. Under all of it at
	// once: no agent may error, the consensus must stay conservative, the
	// guard must visibly degrade/recover at least once, and the watchdog
	// must never let the filtered cluster power exceed the budget for more
	// than one control period.
	checkGoroutineLeakCluster(t)
	n := 8
	const rounds = 400
	rng := rand.New(rand.NewSource(61))
	asg, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	us := asg.UtilitySlice()
	budget := float64(n) * 170
	g := topology.Ring(n)
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}

	plan := &diba.FaultPlan{
		Seed:        19,
		DelayProb:   0.4,
		MaxDelay:    1200 * time.Microsecond,
		DupProb:     0.15,
		ReorderProb: 0.15,
	}
	fp := diba.FaultPolicy{GatherTimeout: 2 * time.Second, Recover: true}
	sensorPlan := sensor.DefaultChaos(23)
	net := diba.NewChanNetwork(n, 256)

	var transitions atomic.Int64
	agents := make([]*diba.Agent, n)
	for i := 0; i < n; i++ {
		a, err := diba.NewAgent(i, g.NeighborsInts(i), us[i], budget, n, totalIdle, diba.Config{}, diba.NewFaultTransport(net.Endpoint(i), i, plan))
		if err != nil {
			t.Fatal(err)
		}
		a.SetFaultPolicy(fp)
		pipe := &sensor.Pipeline{
			Meter:  sensor.NewMeter(sensorPlan, i),
			Filter: sensor.NewFilter(0.85*workload.DefaultServer.IdleWatts, 1.05*workload.DefaultServer.MaxWatts),
		}
		a.SetTelemetryGuard(diba.TelemetryGuard{
			Measure: func(expected float64) (float64, bool) {
				// The agent's server is sitting at the cap it applied; the
				// meter corrupts that reading per its fault plan.
				return pipe.Measure(expected, expected)
			},
			OnEvent: func(diba.HealthEvent) { transitions.Add(1) },
		})
		agents[i] = a
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	states := make([]diba.AgentState, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := agents[i].Run(rounds)
			states[i], errs[i] = st, err
		}(i)
	}

	// The monitor side: a watchdog-guarded enforcement loop actuating the
	// caps the agents currently apply (read through their atomics), with its
	// own independently faulted sensors on the controllers.
	enf, err := NewEnforcer(asg.Benchmarks, workload.DefaultServer, 0, SensedConfig{
		Plan:     sensor.DefaultChaos(29),
		Watchdog: &safety.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	mrng := rand.New(rand.NewSource(67))
	caps := make([]float64, n)
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
monitor:
	for {
		select {
		case <-done:
			break monitor
		case <-ticker.C:
			for i, a := range agents {
				caps[i] = a.AppliedCap()
			}
			if _, err := enf.Period(caps, budget, mrng); err != nil {
				t.Fatalf("enforcement period: %v", err)
			}
		}
	}
	plan.Quiesce()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	var sumP, sumE float64
	for i, st := range states {
		if st.Rounds != rounds {
			t.Fatalf("agent %d ran %d rounds, want %d", i, st.Rounds, rounds)
		}
		sumP += st.Power
		sumE += st.E
	}
	if gap := sumE - (sumP - budget); gap > 1e-6 || gap < -1e-6 {
		t.Fatalf("conservation violated under chaos: Σe − (Σp − B) = %v", gap)
	}
	if transitions.Load() == 0 {
		t.Fatal("no telemetry guard ever degraded or recovered; sensor chaos not exercised")
	}
	st := enf.Stats()
	if st.Periods < 20 {
		t.Fatalf("monitor ran only %d periods; soak too short to mean anything", st.Periods)
	}
	if st.MaxFilteredRun > 1 {
		t.Fatalf("watchdog let filtered power exceed the budget for %d consecutive periods (stats %+v)", st.MaxFilteredRun, st)
	}
}
