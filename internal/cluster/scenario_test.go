package cluster

import (
	"testing"
	"testing/quick"

	"powercap/internal/des"
	"powercap/internal/netsim"
)

// The two scenario runners must agree bit for bit: same samples, same
// counters, same final power. Only Steps and WorkUnits — the cost of the
// loop structure — may differ, and for sparse scenarios they must differ
// a lot in the event runner's favor.

func fullScenario(n int, seed int64) Scenario {
	return Scenario{
		N:              n,
		Seed:           seed,
		HorizonSeconds: 120,
		InitialBudgetW: 140 * float64(n) / 1000 * 1000, // ~140 W/server
		BudgetSteps: []TimedBudget{
			{AtSeconds: 30, BudgetW: 110 * float64(n)},
			{AtSeconds: 80, BudgetW: 150 * float64(n)},
		},
		ChurnPerSecond: 0.05,
		SensorFaults: []FaultWindow{
			{Server: 0, StartSeconds: 10, EndSeconds: 50},
			{Server: n / 2, StartSeconds: 40, EndSeconds: 90},
		},
		Partitions: []PartitionWindow{
			{StartSeconds: 55, EndSeconds: 70},
		},
		SampleEverySeconds: 10,
	}
}

func scenarioResultsIdentical(t *testing.T, ev, tick ScenarioResult) {
	t.Helper()
	if len(ev.Samples) != len(tick.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(ev.Samples), len(tick.Samples))
	}
	for i := range ev.Samples {
		if ev.Samples[i] != tick.Samples[i] {
			t.Fatalf("sample %d differs:\nevent: %+v\ntick:  %+v", i, ev.Samples[i], tick.Samples[i])
		}
	}
	if ev.ChurnEvents != tick.ChurnEvents || ev.Refreshes != tick.Refreshes ||
		ev.Violations != tick.Violations || ev.FinalPowerW != tick.FinalPowerW ||
		ev.AllocLatencySeconds != tick.AllocLatencySeconds {
		t.Fatalf("counters differ:\nevent: %+v\ntick:  %+v", ev, tick)
	}
}

func TestScenarioEventTickIdentical(t *testing.T) {
	sc := fullScenario(64, 42)
	ev, err := RunScenarioEvents(sc)
	if err != nil {
		t.Fatal(err)
	}
	tick, err := RunScenarioTicks(sc)
	if err != nil {
		t.Fatal(err)
	}
	scenarioResultsIdentical(t, ev, tick)
	if ev.ChurnEvents == 0 {
		t.Fatal("scenario produced no churn — the equivalence check is vacuous")
	}
	if ev.Samples[0].AtSeconds != 0 || ev.Samples[len(ev.Samples)-1].AtSeconds != 120 {
		t.Fatalf("samples must span [0, horizon], got %+v", ev.Samples)
	}
}

// TestScenarioEventTickIdenticalWithLink: refresh latency draws come from
// their own RNG stream at the same logical points, so the delayed scale
// applications land identically in both runners.
func TestScenarioEventTickIdenticalWithLink(t *testing.T) {
	sc := fullScenario(48, 7)
	sc.Link = &netsim.Measured
	sc.LinkNodes = 16
	sc.LinkRounds = 10
	ev, err := RunScenarioEvents(sc)
	if err != nil {
		t.Fatal(err)
	}
	tick, err := RunScenarioTicks(sc)
	if err != nil {
		t.Fatal(err)
	}
	scenarioResultsIdentical(t, ev, tick)
	if ev.AllocLatencySeconds <= 0 {
		t.Fatal("link mode recorded no allocator latency")
	}
}

// TestScenarioPartitionFreezesScale: while partitioned the allocator must
// not react — a budget cut during the partition shows up in the samples
// only after the heal.
func TestScenarioPartitionFreezesScale(t *testing.T) {
	sc := Scenario{
		N:                  32,
		Seed:               3,
		HorizonSeconds:     60,
		InitialBudgetW:     200 * 32, // ample: scale 1
		BudgetSteps:        []TimedBudget{{AtSeconds: 25, BudgetW: 50 * 32}},
		Partitions:         []PartitionWindow{{StartSeconds: 20, EndSeconds: 40}},
		SampleEverySeconds: 10,
	}
	res, err := RunScenarioEvents(sc)
	if err != nil {
		t.Fatal(err)
	}
	byTime := map[float64]ScenarioSample{}
	for _, s := range res.Samples {
		byTime[s.AtSeconds] = s
	}
	if byTime[30].Scale != 1 {
		t.Fatalf("scale reacted to a budget cut during the partition: %+v", byTime[30])
	}
	if !byTime[30].Partitioned {
		t.Fatalf("sample at t=30 should be inside the partition: %+v", byTime[30])
	}
	if byTime[50].Scale >= 1 {
		t.Fatalf("scale never caught up after the heal: %+v", byTime[50])
	}
	if res.Violations == 0 {
		t.Fatal("a frozen scale over a halved budget should violate at t=30")
	}
}

// TestScenarioFaultStalesTheView: a faulted sensor freezes the allocator's
// view, so churn under the fault makes view and truth disagree and the
// applied power drift off budget.
func TestScenarioFaultStalesTheView(t *testing.T) {
	sc := Scenario{
		N:                  16,
		Seed:               11,
		HorizonSeconds:     100,
		InitialBudgetW:     100 * 16, // tight: scale < 1, so view errors matter
		ChurnPerSecond:     0.2,
		SensorFaults:       []FaultWindow{{Server: 4, StartSeconds: 5, EndSeconds: 95}},
		SampleEverySeconds: 5,
	}
	res, err := RunScenarioEvents(sc)
	if err != nil {
		t.Fatal(err)
	}
	sawFault := false
	for _, s := range res.Samples {
		if s.Faulted > 0 {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatal("no sample observed the fault window")
	}
	tick, err := RunScenarioTicks(sc)
	if err != nil {
		t.Fatal(err)
	}
	scenarioResultsIdentical(t, res, tick)
}

// TestScenarioEquivalenceProperty: quick.Check the bit-identity across
// random seeds, sizes, churn rates, and sampling densities.
func TestScenarioEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in short mode")
	}
	f := func(seed int64, nRaw, churnRaw, everyRaw uint8) bool {
		n := 8 + int(nRaw%56)
		sc := Scenario{
			N:                  n,
			Seed:               seed,
			HorizonSeconds:     40 + int(nRaw%3)*30,
			InitialBudgetW:     120 * float64(n),
			BudgetSteps:        []TimedBudget{{AtSeconds: 11, BudgetW: 100 * float64(n)}},
			ChurnPerSecond:     float64(churnRaw%30) / 100,
			SensorFaults:       []FaultWindow{{Server: n - 1, StartSeconds: 7, EndSeconds: 29}},
			Partitions:         []PartitionWindow{{StartSeconds: 15, EndSeconds: 24}},
			SampleEverySeconds: int(everyRaw%4) * 7, // 0 (sparse) .. 21
		}
		ev, err := RunScenarioEvents(sc)
		if err != nil {
			return false
		}
		tick, err := RunScenarioTicks(sc)
		if err != nil {
			return false
		}
		if len(ev.Samples) != len(tick.Samples) {
			return false
		}
		for i := range ev.Samples {
			if ev.Samples[i] != tick.Samples[i] {
				return false
			}
		}
		return ev.ChurnEvents == tick.ChurnEvents && ev.Refreshes == tick.Refreshes &&
			ev.FinalPowerW == tick.FinalPowerW && ev.Violations == tick.Violations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioSparseWorkAdvantage: in the sparse regime the tick runner
// pays O(N) every second while the event runner pays only per event — the
// recorded WorkUnits must show at least an order of magnitude between them
// (wall-clock is benchmarked by `repro bench -des`, not asserted here).
func TestScenarioSparseWorkAdvantage(t *testing.T) {
	sc := Scenario{
		N:                  10_000,
		Seed:               1,
		HorizonSeconds:     600,
		InitialBudgetW:     120 * 10_000,
		ChurnPerSecond:     0.01 / 60, // 1% of servers churn per minute
		SampleEverySeconds: 60,
	}
	ev, err := RunScenarioEvents(sc)
	if err != nil {
		t.Fatal(err)
	}
	tick, err := RunScenarioTicks(sc)
	if err != nil {
		t.Fatal(err)
	}
	scenarioResultsIdentical(t, ev, tick)
	if ev.WorkUnits*10 > tick.WorkUnits {
		t.Fatalf("sparse scenario shows no O(events) advantage: event %d vs tick %d work units",
			ev.WorkUnits, tick.WorkUnits)
	}
}

// TestScenarioEventHotPathZeroAlloc: steady-state scheduler stepping over
// a churn-heavy scenario must not allocate.
func TestScenarioEventHotPathZeroAlloc(t *testing.T) {
	st, cursors, err := buildScenario(Scenario{
		N:                  256,
		Seed:               5,
		HorizonSeconds:     1 << 20,
		InitialBudgetW:     110 * 256,
		ChurnPerSecond:     1,
		SampleEverySeconds: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := des.NewScheduler()
	for _, c := range cursors {
		sched.Add(cursorSource{c: c, st: st})
	}
	for i := 0; i < 4096; i++ {
		if ok, err := sched.Step(); err != nil || !ok {
			t.Fatalf("warmup step %d: ok=%v err=%v", i, ok, err)
		}
	}
	allocs := testing.AllocsPerRun(4096, func() {
		if ok, err := sched.Step(); err != nil || !ok {
			t.Fatalf("step: ok=%v err=%v", ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("scenario event hot path allocated %v allocs/op, want 0", allocs)
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{N: 0, HorizonSeconds: 10, InitialBudgetW: 100},
		{N: 4, HorizonSeconds: 0, InitialBudgetW: 100},
		{N: 4, HorizonSeconds: 10, InitialBudgetW: 0},
		{N: 4, HorizonSeconds: 10, InitialBudgetW: 100, ChurnPerSecond: -1},
		{N: 4, HorizonSeconds: 10, InitialBudgetW: 100, SensorFaults: []FaultWindow{{Server: 9, StartSeconds: 1, EndSeconds: 2}}},
		{N: 4, HorizonSeconds: 10, InitialBudgetW: 100, SensorFaults: []FaultWindow{{Server: 1, StartSeconds: 3, EndSeconds: 3}}},
		{N: 4, HorizonSeconds: 10, InitialBudgetW: 100, Partitions: []PartitionWindow{{StartSeconds: 5, EndSeconds: 4}}},
	}
	for i, sc := range bad {
		if _, err := RunScenarioEvents(sc); err == nil {
			t.Fatalf("bad scenario %d accepted by event runner", i)
		}
		if _, err := RunScenarioTicks(sc); err == nil {
			t.Fatalf("bad scenario %d accepted by tick runner", i)
		}
	}
}
