// Package predict implements the Chapter 3 throughput predictors: given a
// server's runtime observation at its current power cap (attained
// throughput, power, and LLC miss rate), estimate its throughput at every
// other cap. Six model families are reproduced, matching Table 3.2:
//
//	quadratic-LLC+TP  — quadratic in p, parameters from τ/p and exp(β·LLC) (Eq. 3.8)
//	linear-LLC+TP     — linear in p, same parameter estimator
//	linear-TP         — linear in p, parameters from τ/p only
//	exponential-LLC   — quadratic in p, parameters from exp(β·LLC) only
//	previous-cubic    — one global workload-independent cubic scaling curve
//	previous-linear   — one global workload-independent linear scaling curve
//
// The parametric families are trained by fitting each training workload
// set's cap sweep with the model's polynomial, then regressing each
// polynomial coefficient on the observation features; the "previous"
// baselines learn a single normalized curve for all workloads, which is
// exactly why they trail on heterogeneous mixes.
package predict

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"powercap/internal/linalg"
	"powercap/internal/stats"
	"powercap/internal/workload"
)

// Kind selects a model family.
type Kind int

const (
	QuadraticLLCTP Kind = iota
	LinearLLCTP
	LinearTP
	ExponentialLLC
	PreviousCubic
	PreviousLinear
)

// Kinds lists every family in Table 3.2 order.
var Kinds = []Kind{QuadraticLLCTP, LinearLLCTP, LinearTP, ExponentialLLC, PreviousCubic, PreviousLinear}

func (k Kind) String() string {
	switch k {
	case QuadraticLLCTP:
		return "quadratic-LLC+TP"
	case LinearLLCTP:
		return "linear-LLC+TP"
	case LinearTP:
		return "linear-TP"
	case ExponentialLLC:
		return "exponential-LLC"
	case PreviousCubic:
		return "previous-cubic"
	case PreviousLinear:
		return "previous-linear"
	default:
		return "unknown"
	}
}

// Entry is one characterization record: a workload set swept over the cap
// grid, with the observation features recorded at every cap.
type Entry struct {
	Set workload.Set
	Obs []workload.Observation // one per cap, ascending caps
}

// DB is a characterization database over a fixed cap grid.
type DB struct {
	Server workload.Server
	Caps   []float64
	Data   []Entry
}

// BuildDB sweeps every set over the cap grid with the given measurement
// noise, producing the characterization database the predictors train on —
// the synthetic stand-in for the paper's pfmon/multimeter trace library.
func BuildDB(sets []workload.Set, s workload.Server, caps []float64, noise float64, rng *rand.Rand) (*DB, error) {
	if len(sets) == 0 || len(caps) < 3 {
		return nil, errors.New("predict: need sets and at least 3 caps")
	}
	db := &DB{Server: s, Caps: caps, Data: make([]Entry, len(sets))}
	for i, set := range sets {
		obs := make([]workload.Observation, len(caps))
		for j, c := range caps {
			obs[j] = set.Observe(c, s, noise, rng)
		}
		db.Data[i] = Entry{Set: set, Obs: obs}
	}
	return db, nil
}

// Model predicts throughput at a target cap from one observation.
type Model interface {
	// Name returns the family label used in Table 3.2.
	Name() string
	// Predict estimates the throughput at targetCap given the observation
	// at the current cap.
	Predict(obs workload.Observation, targetCap float64) float64
}

// Train fits the selected family on the database.
func Train(kind Kind, db *DB) (Model, error) {
	switch kind {
	case QuadraticLLCTP:
		return trainParametric(db, 2, true, true)
	case LinearLLCTP:
		return trainParametric(db, 1, true, true)
	case LinearTP:
		return trainParametric(db, 1, true, false)
	case ExponentialLLC:
		return trainParametric(db, 2, false, true)
	case PreviousCubic:
		return trainGlobal(db, 3)
	case PreviousLinear:
		return trainGlobal(db, 1)
	default:
		return nil, fmt.Errorf("predict: unknown model kind %d", kind)
	}
}

// parametric is the Eq. 3.8 family: per-set polynomial coefficients are a
// learned function of the observation features. Following the text — "the
// model coefficients for the current power cap" — a separate regression is
// trained per observation cap, because the throughput/Watt feature shifts
// with the cap it is measured at.
type parametric struct {
	name string
	// degree of the throughput polynomial in p (1 or 2).
	degree int
	// useTP / useLLC select which features enter the coefficient model.
	useTP, useLLC bool
	// beta4 is the exponent inside exp(β₄·LLC), grid-searched at training.
	beta4 float64
	// caps is the training cap grid; betas[c][j] are the regression weights
	// for coefficient a_j when observing at cap index c.
	caps  []float64
	betas [][][]float64
}

func featureVec(useTP, useLLC bool, beta4, tpw, llc float64) []float64 {
	f := []float64{1}
	if useTP {
		f = append(f, tpw)
	}
	if useLLC {
		f = append(f, math.Exp(beta4*llc))
	}
	return f
}

func trainParametric(db *DB, degree int, useTP, useLLC bool) (Model, error) {
	name := map[[3]int]string{
		{2, 1, 1}: QuadraticLLCTP.String(),
		{1, 1, 1}: LinearLLCTP.String(),
		{1, 1, 0}: LinearTP.String(),
		{2, 0, 1}: ExponentialLLC.String(),
	}[[3]int{degree, b2i(useTP), b2i(useLLC)}]

	// Step 1: fit each training set's own polynomial over its sweep.
	coeffs := make([][]float64, len(db.Data)) // per set: a_0..a_degree
	for i, e := range db.Data {
		xs := make([]float64, len(e.Obs))
		ys := make([]float64, len(e.Obs))
		for j, o := range e.Obs {
			xs[j] = o.Cap
			ys[j] = o.Throughput
		}
		c, err := stats.PolyFit(xs, ys, degree)
		if err != nil {
			return nil, fmt.Errorf("predict: fitting set %d: %w", i, err)
		}
		coeffs[i] = c
	}

	// Step 2: regress every coefficient a_j on the observation features,
	// separately per observation cap, grid searching the LLC exponent β₄.
	fit := func(beta4 float64) ([][][]float64, float64) {
		nf := 1 + b2i(useTP) + b2i(useLLC)
		betas := make([][][]float64, len(db.Caps))
		var sse float64
		for c := range db.Caps {
			betas[c] = make([][]float64, degree+1)
			for j := 0; j <= degree; j++ {
				a := linalg.New(len(db.Data), nf)
				y := make([]float64, len(db.Data))
				for i, e := range db.Data {
					o := e.Obs[c]
					fv := featureVec(useTP, useLLC, beta4, o.Throughput/o.Cap, o.LLC)
					for k, v := range fv {
						a.Set(i, k, v)
					}
					y[i] = coeffs[i][j]
				}
				b, err := linalg.LeastSquares(a, y)
				if err != nil {
					return nil, math.Inf(1)
				}
				betas[c][j] = b
				for i := range y {
					pred := 0.0
					o := db.Data[i].Obs[c]
					fv := featureVec(useTP, useLLC, beta4, o.Throughput/o.Cap, o.LLC)
					for k, v := range fv {
						pred += b[k] * v
					}
					d := pred - y[i]
					sse += d * d
				}
			}
		}
		return betas, sse
	}
	bestBeta4, bestSSE := 0.0, math.Inf(1)
	var bestBetas [][][]float64
	if useLLC {
		for _, b4 := range []float64{-0.5, -0.3, -0.2, -0.15, -0.1, -0.07, -0.05, -0.03, -0.02, -0.01} {
			betas, sse := fit(b4)
			if sse < bestSSE {
				bestSSE, bestBeta4, bestBetas = sse, b4, betas
			}
		}
	} else {
		bestBetas, _ = fit(0)
	}
	if bestBetas == nil {
		return nil, errors.New("predict: coefficient regression failed")
	}
	caps := append([]float64(nil), db.Caps...)
	return &parametric{name: name, degree: degree, useTP: useTP, useLLC: useLLC, beta4: bestBeta4, caps: caps, betas: bestBetas}, nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func (m *parametric) Name() string { return m.name }

func (m *parametric) Predict(obs workload.Observation, targetCap float64) float64 {
	// Select the coefficient regression trained at the cap closest to the
	// observation's.
	c := 0
	for i, cap := range m.caps {
		if math.Abs(cap-obs.Cap) < math.Abs(m.caps[c]-obs.Cap) {
			c = i
		}
	}
	fv := featureVec(m.useTP, m.useLLC, m.beta4, obs.Throughput/obs.Cap, obs.LLC)
	poly := make([]float64, m.degree+1)
	for j := range poly {
		for k, v := range fv {
			poly[j] += m.betas[c][j][k] * v
		}
	}
	pred := stats.PolyEval(poly, targetCap)
	// Anchor the curve at the observation: shift so the model reproduces
	// the measured throughput at the current cap, as the runtime predictor
	// must (the paper predicts the *change* in throughput).
	atObs := stats.PolyEval(poly, obs.Cap)
	return obs.Throughput + (pred - atObs)
}

// global is the "previous" family: one normalized scaling curve shared by
// all workloads; prediction rescales the observed throughput by the curve
// ratio.
type global struct {
	name  string
	curve []float64 // normalized throughput vs cap, polynomial coefficients
}

func trainGlobal(db *DB, degree int) (Model, error) {
	name := PreviousLinear.String()
	if degree == 3 {
		name = PreviousCubic.String()
	}
	var xs, ys []float64
	for _, e := range db.Data {
		top := e.Obs[len(e.Obs)-1].Throughput
		if top <= 0 {
			continue
		}
		for _, o := range e.Obs {
			xs = append(xs, o.Cap)
			ys = append(ys, o.Throughput/top)
		}
	}
	c, err := stats.PolyFit(xs, ys, degree)
	if err != nil {
		return nil, err
	}
	return &global{name: name, curve: c}, nil
}

func (m *global) Name() string { return m.name }

func (m *global) Predict(obs workload.Observation, targetCap float64) float64 {
	denom := stats.PolyEval(m.curve, obs.Cap)
	if denom <= 0 {
		return obs.Throughput
	}
	return obs.Throughput * stats.PolyEval(m.curve, targetCap) / denom
}

// Evaluate measures a model's mean absolute relative error over a test
// database: predict every cap's true throughput from the observation at
// every other cap.
func Evaluate(m Model, db *DB) float64 {
	var preds, truths []float64
	for _, e := range db.Data {
		for from, o := range e.Obs {
			for to, cap := range db.Caps {
				if to == from {
					continue
				}
				preds = append(preds, m.Predict(o, cap))
				truths = append(truths, e.Set.GroundTruth(cap, db.Server))
			}
		}
	}
	return stats.MeanAbsPctError(preds, truths)
}

// TrainTestSplit builds train and test databases from homogeneous and
// heterogeneous sets drawn from the catalog — the 50/50 mix of the
// Table 3.2 evaluation.
func TrainTestSplit(catalog []workload.Benchmark, s workload.Server, caps []float64, nTrain, nTest int, noise float64, rng *rand.Rand) (train, test *DB, err error) {
	mkSets := func(n int) []workload.Set {
		sets := make([]workload.Set, 0, n)
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				b := catalog[rng.Intn(len(catalog))].Perturb(rng, 0.05)
				sets = append(sets, workload.NewHomoSet(b))
			} else {
				sets = append(sets, workload.NewHeteroSet(catalog, rng))
			}
		}
		return sets
	}
	train, err = BuildDB(mkSets(nTrain), s, caps, noise, rng)
	if err != nil {
		return nil, nil, err
	}
	test, err = BuildDB(mkSets(nTest), s, caps, noise, rng)
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}
