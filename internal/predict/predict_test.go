package predict

import (
	"math/rand"
	"testing"

	"powercap/internal/workload"
)

func buildDBs(t *testing.T, seed int64, noise float64) (train, test *DB) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	caps := workload.CapGrid(workload.Chapter3Server, 5)
	train, test, err := TrainTestSplit(workload.Desktop, workload.Chapter3Server, caps, 120, 60, noise, rng)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestBuildDBValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BuildDB(nil, workload.Chapter3Server, workload.CapGrid(workload.Chapter3Server, 5), 0, rng); err == nil {
		t.Fatal("empty set list must be rejected")
	}
	sets := []workload.Set{workload.NewHomoSet(workload.Desktop[0])}
	if _, err := BuildDB(sets, workload.Chapter3Server, []float64{130, 165}, 0, rng); err == nil {
		t.Fatal("too few caps must be rejected")
	}
}

func TestTrainUnknownKind(t *testing.T) {
	train, _ := buildDBs(t, 2, 0.01)
	if _, err := Train(Kind(42), train); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestKindStrings(t *testing.T) {
	want := []string{"quadratic-LLC+TP", "linear-LLC+TP", "linear-TP", "exponential-LLC", "previous-cubic", "previous-linear"}
	for i, k := range Kinds {
		if k.String() != want[i] {
			t.Fatalf("kind %d label %q, want %q", i, k.String(), want[i])
		}
	}
	if Kind(42).String() != "unknown" {
		t.Fatal("unknown label")
	}
}

func TestAllModelsTrainAndPredictFinite(t *testing.T) {
	train, test := buildDBs(t, 3, 0.01)
	for _, k := range Kinds {
		m, err := Train(k, train)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if m.Name() != k.String() {
			t.Fatalf("name mismatch: %q vs %q", m.Name(), k.String())
		}
		e := test.Data[0]
		got := m.Predict(e.Obs[0], 165)
		if got <= 0 || got != got {
			t.Fatalf("%v: degenerate prediction %v", k, got)
		}
	}
}

func TestPredictionAnchoredAtObservation(t *testing.T) {
	train, test := buildDBs(t, 4, 0.01)
	m, err := Train(QuadraticLLCTP, train)
	if err != nil {
		t.Fatal(err)
	}
	o := test.Data[0].Obs[3]
	if got := m.Predict(o, o.Cap); got != o.Throughput {
		t.Fatalf("predicting the observed cap must return the observation: %v vs %v", got, o.Throughput)
	}
}

func TestOurModelBeatsGlobalBaselines(t *testing.T) {
	train, test := buildDBs(t, 5, 0.01)
	errs := map[Kind]float64{}
	for _, k := range Kinds {
		m, err := Train(k, train)
		if err != nil {
			t.Fatal(err)
		}
		errs[k] = Evaluate(m, test)
	}
	// The Table 3.2 ordering we must preserve: our quadratic model beats
	// both workload-independent baselines, and the cubic baseline beats the
	// linear one.
	if errs[QuadraticLLCTP] >= errs[PreviousCubic] {
		t.Fatalf("quadratic-LLC+TP (%.4f) must beat previous-cubic (%.4f)", errs[QuadraticLLCTP], errs[PreviousCubic])
	}
	if errs[QuadraticLLCTP] >= errs[PreviousLinear] {
		t.Fatalf("quadratic-LLC+TP (%.4f) must beat previous-linear (%.4f)", errs[QuadraticLLCTP], errs[PreviousLinear])
	}
	if errs[PreviousCubic] >= errs[PreviousLinear] {
		t.Fatalf("previous-cubic (%.4f) must beat previous-linear (%.4f)", errs[PreviousCubic], errs[PreviousLinear])
	}
	// And the full-feature model is at least as good as the reduced ones.
	if errs[QuadraticLLCTP] > errs[LinearTP]+1e-9 {
		t.Fatalf("quadratic-LLC+TP (%.4f) must not trail linear-TP (%.4f)", errs[QuadraticLLCTP], errs[LinearTP])
	}
	// Sanity: our model's error is small in absolute terms (paper: 1.37%).
	if errs[QuadraticLLCTP] > 0.05 {
		t.Fatalf("quadratic-LLC+TP error %.4f implausibly high", errs[QuadraticLLCTP])
	}
}

func TestEvaluateZeroForOracle(t *testing.T) {
	// A model that returns the ground truth must evaluate to ~0 error on a
	// noiseless DB.
	rng := rand.New(rand.NewSource(6))
	caps := workload.CapGrid(workload.Chapter3Server, 5)
	sets := []workload.Set{workload.NewHomoSet(workload.Desktop[1]), workload.NewHeteroSet(workload.Desktop, rng)}
	db, err := BuildDB(sets, workload.Chapter3Server, caps, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	o := oracle{db: db}
	if got := Evaluate(o, db); got > 1e-12 {
		t.Fatalf("oracle error %v, want 0", got)
	}
}

type oracle struct{ db *DB }

func (o oracle) Name() string { return "oracle" }
func (o oracle) Predict(obs workload.Observation, target float64) float64 {
	// Identify the entry by its observation — works because the DB is
	// noiseless and entries differ.
	for _, e := range o.db.Data {
		for _, eo := range e.Obs {
			if eo == obs {
				return e.Set.GroundTruth(target, o.db.Server)
			}
		}
	}
	return obs.Throughput
}
