package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewFromRowsAndRow(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	r := m.Row(1)
	r[0] = 99 // must be a copy
	if m.At(1, 0) != 3 {
		t.Fatal("Row must return a copy")
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestIdentityMul(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	got := Identity(2).Mul(a)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != a.At(i, j) {
				t.Fatalf("I·A != A at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := NewFromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := a.Mul(b)
	want := NewFromRows([][]float64{{58, 64}, {139, 154}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("got %v, want [3 7]", got)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Mul(New(2, 2))
}

func TestTranspose(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("shape %dx%d, want 3x2", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", at.At(2, 1))
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{4, 3}, {2, 1}})
	sum := a.Add(b)
	if sum.At(0, 0) != 5 || sum.At(1, 1) != 5 {
		t.Fatal("Add wrong")
	}
	diff := a.Sub(b)
	if diff.At(0, 0) != -3 || diff.At(1, 1) != 3 {
		t.Fatal("Sub wrong")
	}
	sc := a.Scale(2)
	if sc.At(1, 0) != 6 {
		t.Fatal("Scale wrong")
	}
	// Originals untouched.
	if a.At(0, 0) != 1 {
		t.Fatal("Add/Sub/Scale must not mutate receiver")
	}
}

func TestSolveKnown(t *testing.T) {
	a := NewFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, NewFromRows([][]float64{{5}, {10}}))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x.At(0, 0), 1, 1e-12) || !almost(x.At(1, 0), 3, 1e-12) {
		t.Fatalf("x = [%v %v], want [1 3]", x.At(0, 0), x.At(1, 0))
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero pivot forces a row swap.
	a := NewFromRows([][]float64{{0, 1}, {1, 0}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveVec([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 3, 1e-12) || !almost(x[1], 2, 1e-12) {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestFactorSingular(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factor(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestDet(t *testing.T) {
	a := NewFromRows([][]float64{{3, 8}, {4, 6}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Det(), -14, 1e-10) {
		t.Fatalf("det = %v, want -14", f.Det())
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant: nonsingular
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		prod := a.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almost(prod.At(i, j), want, 1e-8) {
					t.Fatalf("n=%d: (A·A⁻¹)(%d,%d) = %v", n, i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestLeastSquaresExactPolynomial(t *testing.T) {
	// y = 2 + 3x − x² sampled exactly must be recovered exactly.
	xs := []float64{-2, -1, 0, 1, 2, 3}
	a := New(len(xs), 3)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		a.Set(i, 2, x*x)
		b[i] = 2 + 3*x - x*x
	}
	c, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almost(c[i], want[i], 1e-9) {
			t.Fatalf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 1 + 2x with symmetric noise; the LS solution of this crafted
	// set is exactly the noiseless line.
	xs := []float64{0, 0, 1, 1}
	ys := []float64{0.9, 1.1, 2.9, 3.1}
	a := New(4, 2)
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
	}
	c, err := LeastSquares(a, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c[0], 1, 1e-12) || !almost(c[1], 2, 1e-12) {
		t.Fatalf("c = %v, want [1 2]", c)
	}
}

// Property: solving A·x = b then multiplying back recovers b.
func TestSolveRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		lu, err := Factor(a)
		if err != nil {
			return false
		}
		x, err := lu.SolveVec(b)
		if err != nil {
			return false
		}
		back := a.MulVec(x)
		for i := range b {
			if !almost(back[i], b[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (Aᵀ)ᵀ = A and (A·B)ᵀ = Bᵀ·Aᵀ.
func TestTransposeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c, k := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a, b := New(r, c), New(c, k)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		att := a.T().T()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if att.At(i, j) != a.At(i, j) {
					return false
				}
			}
		}
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		for i := 0; i < k; i++ {
			for j := 0; j < r; j++ {
				if !almost(lhs.At(i, j), rhs.At(i, j), 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveShapeMismatch(t *testing.T) {
	a := Identity(2)
	if _, err := Solve(a, New(3, 1)); err == nil {
		t.Fatal("row mismatch must error")
	}
	if _, err := Factor(New(2, 3)); err == nil {
		t.Fatal("non-square factor must error")
	}
	f, _ := Factor(a)
	if _, err := f.SolveVec([]float64{1}); err == nil {
		t.Fatal("rhs length mismatch must error")
	}
}

func TestLeastSquaresShapeMismatch(t *testing.T) {
	if _, err := LeastSquares(New(2, 1), []float64{1, 2, 3}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestDiagonal(t *testing.T) {
	d := Diagonal([]float64{2, 3})
	if d.At(0, 0) != 2 || d.At(1, 1) != 3 || d.At(0, 1) != 0 {
		t.Fatal("Diagonal wrong")
	}
}
