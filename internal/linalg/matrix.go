// Package linalg provides the small dense linear-algebra kernel used by the
// thermal model (matrix inverses of Eq. 3.3–3.5), the least-squares fits of
// the workload throughput models, and the polynomial regressions of the
// evaluation harness. It is deliberately minimal: dense row-major matrices,
// LU factorization with partial pivoting, solves, inverses and least squares.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve meets a matrix that
// is singular to working precision.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrShape is returned when operand dimensions do not conform.
var ErrShape = errors.New("linalg: dimension mismatch")

// Matrix is a dense row-major matrix. The zero value is an empty matrix;
// use New or NewFromRows to construct one with a shape.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns an r×c zero matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromRows builds a matrix from row slices. All rows must have equal
// length. The data is copied.
func NewFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diagonal returns a square matrix with d on its diagonal.
func Diagonal(d []float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(ErrShape)
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(ErrShape)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m − b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factor computes the LU factorization of square matrix a.
func Factor(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest magnitude in column k at/below row k.
		p := k
		maxAbs := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.data[i*n+k]); v > maxAbs {
				maxAbs, p = v, i
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.data[i*n+k] / pivot
			lu.data[i*n+k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= f * lu.data[k*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A·x = b for one right-hand side.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, ErrShape
	}
	x := make([]float64, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution (L has implicit unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.data[i*n : i*n+i]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.data[i*n : (i+1)*n]
		var s float64
		for j := i + 1; j < n; j++ {
			s += row[j] * x[j]
		}
		x[i] = (x[i] - s) / row[i]
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := float64(f.sign)
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Solve solves A·x = b where b may have multiple columns.
func Solve(a, b *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	if b.rows != a.rows {
		return nil, ErrShape
	}
	out := New(b.rows, b.cols)
	col := make([]float64, b.rows)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < b.rows; i++ {
			col[i] = b.At(i, j)
		}
		x, err := f.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i, v := range x {
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// Inverse returns A⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	return Solve(a, Identity(a.rows))
}

// LeastSquares solves the overdetermined system A·x ≈ b in the least-squares
// sense via the normal equations AᵀA·x = Aᵀb. The designs used in this
// repository are tiny (≤ 4 parameters), for which normal equations are
// accurate and fast.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, ErrShape
	}
	at := a.T()
	ata := at.Mul(a)
	atb := at.MulVec(b)
	f, err := Factor(ata)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(atb)
}
