// Package linalg provides the small dense linear-algebra kernel used by the
// thermal model (matrix inverses of Eq. 3.3–3.5), the least-squares fits of
// the workload throughput models, and the polynomial regressions of the
// evaluation harness. It is deliberately minimal: dense row-major matrices,
// LU factorization with partial pivoting, solves, inverses and least squares.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve meets a matrix that
// is singular to working precision.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrShape is returned when operand dimensions do not conform.
var ErrShape = errors.New("linalg: dimension mismatch")

// Matrix is a dense row-major matrix. The zero value is an empty matrix;
// use New or NewFromRows to construct one with a shape.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns an r×c zero matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromRows builds a matrix from row slices. All rows must have equal
// length. The data is copied.
func NewFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diagonal returns a square matrix with d on its diagonal.
func Diagonal(d []float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a live view into the matrix storage. The slice
// aliases the matrix: it stays valid while the matrix lives, and writes
// through it mutate the matrix. Callers that only read may use it to avoid
// the per-call copy of Row.
func (m *Matrix) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range %dx%d", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(ErrShape)
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	return m.MulVecTo(make([]float64, m.rows), x)
}

// MulVecTo computes m·x into dst and returns dst. dst must have length
// m.Rows(); the destination-passing form lets hot loops reuse one buffer
// instead of allocating per product. dst and x must not overlap.
func (m *Matrix) MulVecTo(dst, x []float64) []float64 {
	if m.cols != len(x) || len(dst) != m.rows {
		panic(ErrShape)
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m − b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factor computes the LU factorization of square matrix a. a is not
// modified.
func Factor(a *Matrix) (*LU, error) {
	return new(LU).Refactor(a)
}

// FactorInPlace computes the LU factorization using a's own storage as the
// factor workspace: a is overwritten and must not be used afterwards. Use it
// when a is scratch anyway (normal-equation matrices, cloned inputs) to skip
// the defensive copy Factor makes.
func FactorInPlace(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	f := &LU{lu: a, piv: make([]int, a.rows)}
	return f, f.refactor()
}

// Refactor computes the LU factorization of a into f, reusing f's existing
// factor and pivot storage when the shapes match. It returns f, making
// `lu, err := scratch.Refactor(a)` a drop-in, allocation-free replacement
// for Factor in loops that factor many same-sized matrices. a is not
// modified.
func (f *LU) Refactor(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	n := a.rows
	if f.lu == nil || f.lu.rows != n || f.lu.cols != n {
		f.lu = New(n, n)
		f.piv = make([]int, n)
	}
	copy(f.lu.data, a.data)
	return f, f.refactor()
}

// refactor runs the factorization over f.lu in place. Pivoting is recorded
// as the swap sequence piv[k] = p (row k exchanged with row p at step k,
// LAPACK ipiv style) so solves can replay it on a right-hand side in place,
// without gather scratch.
func (f *LU) refactor() error {
	lu := f.lu
	n := lu.rows
	piv := f.piv
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest magnitude in column k at/below row k.
		p := k
		maxAbs := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.data[i*n+k]); v > maxAbs {
				maxAbs, p = v, i
			}
		}
		if maxAbs == 0 {
			return ErrSingular
		}
		piv[k] = p
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			sign = -sign
		}
		pivot := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.data[i*n+k] / pivot
			lu.data[i*n+k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= f * lu.data[k*n+j]
			}
		}
	}
	f.sign = sign
	return nil
}

// SolveVec solves A·x = b for one right-hand side.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	x := make([]float64, f.lu.rows)
	if err := f.SolveVecTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveVecTo solves A·x = b into x, which must have length n. x and b may
// alias (solve in place over the right-hand side); when they differ, b is
// left untouched. The destination-passing form keeps repeated solves
// allocation-free.
func (f *LU) SolveVecTo(x, b []float64) error {
	n := f.lu.rows
	if len(b) != n || len(x) != n {
		return ErrShape
	}
	if n > 0 && &x[0] != &b[0] {
		copy(x, b)
	}
	// Replay the recorded pivot swaps: x ← P·b.
	for k, p := range f.piv {
		if p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution (L has implicit unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.data[i*n : i*n+i]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.data[i*n : (i+1)*n]
		var s float64
		for j := i + 1; j < n; j++ {
			s += row[j] * x[j]
		}
		x[i] = (x[i] - s) / row[i]
	}
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := float64(f.sign)
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Solve solves A·x = b where b may have multiple columns.
func Solve(a, b *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	if b.rows != a.rows {
		return nil, ErrShape
	}
	out := New(b.rows, b.cols)
	col := make([]float64, b.rows)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < b.rows; i++ {
			col[i] = b.At(i, j)
		}
		if err := f.SolveVecTo(col, col); err != nil {
			return nil, err
		}
		for i, v := range col {
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// Inverse returns A⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	out := New(n, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
		if err := f.SolveVecTo(col, col); err != nil {
			return nil, err
		}
		for i, v := range col {
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// LeastSquares solves the overdetermined system A·x ≈ b in the least-squares
// sense via the normal equations AᵀA·x = Aᵀb. The designs used in this
// repository are tiny (≤ 4 parameters), for which normal equations are
// accurate and fast. The normal-equation matrix is built directly from a
// (no explicit transpose) and factored in place, so a fit costs two small
// allocations: the Gram matrix and the returned coefficients.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, ErrShape
	}
	m, n := a.rows, a.cols
	// ata[i][j] = Σ_k a[k][i]·a[k][j] and atb[i] = Σ_k a[k][i]·b[k],
	// accumulated over k in row order — the same summation order (and so
	// the same floats) as forming Aᵀ and multiplying would produce.
	ata := New(n, n)
	atb := make([]float64, n)
	for k := 0; k < m; k++ {
		arow := a.data[k*n : (k+1)*n]
		for i, aki := range arow {
			if aki == 0 {
				continue
			}
			orow := ata.data[i*n : (i+1)*n]
			for j, akj := range arow {
				orow[j] += aki * akj
			}
			atb[i] += aki * b[k]
		}
	}
	f, err := FactorInPlace(ata)
	if err != nil {
		return nil, err
	}
	if err := f.SolveVecTo(atb, atb); err != nil {
		return nil, err
	}
	return atb, nil
}
