package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderEmpty(t *testing.T) {
	if got := Render(nil, Options{}); got != "" {
		t.Fatalf("empty input must render nothing, got %q", got)
	}
	// Mismatched lengths are skipped.
	s := []Series{{Name: "bad", X: []float64{1, 2}, Y: []float64{1}}}
	if got := Render(s, Options{}); got != "" {
		t.Fatalf("mismatched series must be skipped, got %q", got)
	}
}

func TestRenderSkipsNaN(t *testing.T) {
	nan := []Series{{Name: "n", X: []float64{1, 2}, Y: []float64{1, nanf()}}}
	if got := Render(nan, Options{}); got != "" {
		t.Fatal("NaN series must be skipped")
	}
}

func nanf() float64 {
	var z float64
	return z / z
}

func TestRenderPlacesCorners(t *testing.T) {
	s := []Series{{Name: "diag", X: []float64{0, 10}, Y: []float64{0, 10}}}
	out := Render(s, Options{Width: 11, Height: 5, Title: "T"})
	lines := strings.Split(out, "\n")
	if lines[0] != "T" {
		t.Fatalf("title missing: %q", lines[0])
	}
	// Top row holds the max point at the right edge; bottom canvas row the
	// min at the left edge.
	top := lines[1]
	if !strings.HasSuffix(top, "*") {
		t.Fatalf("max point not at top right: %q", top)
	}
	bottom := lines[5]
	if !strings.Contains(bottom, "|*") {
		t.Fatalf("min point not at bottom left: %q", bottom)
	}
	// Axis labels appear.
	if !strings.Contains(out, "10") || !strings.Contains(out, "0") {
		t.Fatal("axis labels missing")
	}
	// Legend names the series with its marker.
	if !strings.Contains(out, "* diag") {
		t.Fatal("legend missing")
	}
}

func TestRenderTwoSeriesDistinctMarkers(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}
	out := Render(s, Options{Width: 21, Height: 7})
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("markers/legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("both markers must appear on the canvas")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	s := []Series{{Name: "c", X: []float64{5, 5, 5}, Y: []float64{3, 3, 3}}}
	out := Render(s, Options{Width: 10, Height: 4})
	if out == "" || !strings.Contains(out, "*") {
		t.Fatalf("constant series must still render:\n%s", out)
	}
}
