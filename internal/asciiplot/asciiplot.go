// Package asciiplot renders line charts as plain text, so the repro tool
// can show the paper's *figures* as figures in a terminal, not only as
// number tables. It is deliberately simple: a character canvas, one marker
// per series, min/max-labelled axes, and a legend.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name string
	X, Y []float64
}

// markers cycles per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Options configure rendering.
type Options struct {
	// Width and Height are the canvas size in characters (excluding axis
	// labels). Zero selects 64×16.
	Width, Height int
	// Title is printed above the chart.
	Title string
}

// Render draws the series onto a text canvas. Series with mismatched X/Y
// lengths or no points are skipped. It returns "" when nothing is
// plottable.
func Render(series []Series, opt Options) string {
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	var plottable []Series
	for _, s := range series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			continue
		}
		ok := true
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		plottable = append(plottable, s)
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if len(plottable) == 0 {
		return ""
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	w, h := opt.Width, opt.Height
	canvas := make([][]byte, h)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range plottable {
		mark := markers[si%len(markers)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(w-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(h-1)))
			r := h - 1 - row
			if r >= 0 && r < h && col >= 0 && col < w {
				canvas[r][col] = mark
			}
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	yHi := trimNum(maxY)
	yLo := trimNum(minY)
	labelW := len(yHi)
	if len(yLo) > labelW {
		labelW = len(yLo)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = fmt.Sprintf("%*s", labelW, yHi)
		}
		if r == h-1 {
			label = fmt.Sprintf("%*s", labelW, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(canvas[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	xLo, xHi := trimNum(minX), trimNum(maxX)
	pad := w - len(xLo) - len(xHi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW), xLo, strings.Repeat(" ", pad), xHi)
	for si, s := range plottable {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// trimNum formats a float compactly.
func trimNum(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}
