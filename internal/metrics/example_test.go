package metrics_test

import (
	"fmt"

	"powercap/internal/metrics"
	"powercap/internal/workload"
)

// Evaluate an allocation: a starved steep workload drags the SNP down and
// the unfairness up.
func ExampleEvaluate() {
	steep, _ := workload.NewQuadratic(0, 2, 0, 100, 200) // linear to 400 BIPS-ish
	flat, _ := workload.NewQuadratic(300, 0.5, 0, 100, 200)
	us := []workload.Utility{steep, flat}

	fair, _ := metrics.Evaluate(us, []float64{200, 200}, metrics.Arithmetic)
	starved, _ := metrics.Evaluate(us, []float64{100, 200}, metrics.Arithmetic)
	fmt.Printf("both fed : SNP %.2f, unfairness %.2f\n", fair.SNP, fair.Unfairness)
	fmt.Printf("starved  : SNP %.2f, unfairness %.2f\n", starved.SNP, starved.Unfairness)
	// Output:
	// both fed : SNP 1.00, unfairness 0.00
	// starved  : SNP 0.75, unfairness 0.33
}
