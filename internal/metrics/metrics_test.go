package metrics

import (
	"math"
	"testing"

	"powercap/internal/workload"
)

func mkUtil(t *testing.T, a0, a1, a2 float64) workload.Quadratic {
	t.Helper()
	q, err := workload.NewQuadratic(a0, a1, a2, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestANP(t *testing.T) {
	q := mkUtil(t, 0, 1, 0) // linear: value p, peak 200
	if got := ANP(q, 100); got != 0.5 {
		t.Fatalf("ANP = %v, want 0.5", got)
	}
	if got := ANP(q, 200); got != 1 {
		t.Fatalf("ANP at peak = %v, want 1", got)
	}
}

func TestANPsAndErrors(t *testing.T) {
	us := []workload.Utility{mkUtil(t, 0, 1, 0), mkUtil(t, 0, 2, 0)}
	anps, err := ANPs(us, []float64{200, 100})
	if err != nil {
		t.Fatal(err)
	}
	if anps[0] != 1 || anps[1] != 0.5 {
		t.Fatalf("anps = %v", anps)
	}
	if _, err := ANPs(us, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestSNPKinds(t *testing.T) {
	anps := []float64{1, 0.25}
	if got := SNP(anps, Arithmetic); got != 0.625 {
		t.Fatalf("arithmetic SNP = %v", got)
	}
	if got := SNP(anps, Geometric); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("geometric SNP = %v, want 0.5", got)
	}
}

func TestSlowdownNorm(t *testing.T) {
	if got := SlowdownNorm([]float64{1, 0.5}); got != 1.5 {
		t.Fatalf("slowdown = %v, want 1.5", got)
	}
	if got := SlowdownNorm(nil); got != 0 {
		t.Fatalf("empty slowdown = %v", got)
	}
	if got := SlowdownNorm([]float64{1, 0}); !math.IsInf(got, 1) {
		t.Fatalf("zero ANP must give +Inf, got %v", got)
	}
}

func TestUnfairness(t *testing.T) {
	if got := Unfairness([]float64{0.8, 0.8, 0.8}); got > 1e-12 {
		t.Fatalf("equal ANPs must be perfectly fair, got %v", got)
	}
	if Unfairness([]float64{0.2, 1.0}) <= Unfairness([]float64{0.55, 0.65}) {
		t.Fatal("wider spread must be less fair")
	}
}

func TestEvaluate(t *testing.T) {
	us := []workload.Utility{mkUtil(t, 0, 1, 0), mkUtil(t, 0, 1, 0)}
	r, err := Evaluate(us, []float64{200, 200}, Arithmetic)
	if err != nil {
		t.Fatal(err)
	}
	if r.SNP != 1 || r.Slowdown != 1 || r.Unfairness != 0 {
		t.Fatalf("perfect allocation report = %+v", r)
	}
	if _, err := Evaluate(us, []float64{1}, Arithmetic); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestTotalUtilityAndPower(t *testing.T) {
	us := []workload.Utility{mkUtil(t, 0, 1, 0), mkUtil(t, 0, 2, 0)}
	tu, err := TotalUtility(us, []float64{150, 150})
	if err != nil {
		t.Fatal(err)
	}
	if tu != 150+300 {
		t.Fatalf("total utility = %v, want 450", tu)
	}
	if TotalPower([]float64{150, 150}) != 300 {
		t.Fatal("total power wrong")
	}
	if _, err := TotalUtility(us, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestFeasible(t *testing.T) {
	us := []workload.Utility{mkUtil(t, 0, 1, 0), mkUtil(t, 0, 1, 0)}
	if !Feasible(us, []float64{100, 150}, 250, 1e-9) {
		t.Fatal("allocation at budget must be feasible")
	}
	if Feasible(us, []float64{100, 151}, 250, 1e-9) {
		t.Fatal("over-budget must be infeasible")
	}
	if Feasible(us, []float64{99, 100}, 250, 1e-9) {
		t.Fatal("below idle power must be infeasible")
	}
	if Feasible(us, []float64{100, 201}, 400, 1e-9) {
		t.Fatal("above max power must be infeasible")
	}
	if Feasible(us, []float64{100}, 400, 1e-9) {
		t.Fatal("length mismatch must be infeasible")
	}
}
