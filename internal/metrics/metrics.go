// Package metrics computes the normalized performance metrics the
// dissertation evaluates every budgeting method with: application normalized
// performance (ANP), system normalized performance (SNP, arithmetic mean in
// Chapter 4, geometric mean in Chapter 3), slowdown norm, and unfairness
// (the coefficient of variation of the ANPs).
package metrics

import (
	"fmt"
	"math"

	"powercap/internal/stats"
	"powercap/internal/workload"
)

// ANP returns the application normalized performance of one node: attained
// throughput over peak throughput, in [0, 1] for utilities that peak inside
// their cap range.
func ANP(u workload.Utility, p float64) float64 {
	peak := u.Peak()
	if peak == 0 {
		return 0
	}
	return u.Value(p) / peak
}

// ANPs returns the per-node ANP vector for an allocation.
func ANPs(us []workload.Utility, alloc []float64) ([]float64, error) {
	if len(us) != len(alloc) {
		return nil, fmt.Errorf("metrics: %d utilities but %d allocations", len(us), len(alloc))
	}
	out := make([]float64, len(us))
	for i, u := range us {
		out[i] = ANP(u, alloc[i])
	}
	return out, nil
}

// Kind selects how per-node ANPs aggregate into SNP.
type Kind int

const (
	// Arithmetic is the Chapter 4 definition: SNP = mean of ANPs.
	Arithmetic Kind = iota
	// Geometric is the Chapter 3 definition: SNP = geometric mean of ANPs.
	Geometric
)

// SNP aggregates an ANP vector into the system normalized performance.
func SNP(anps []float64, kind Kind) float64 {
	if kind == Geometric {
		return stats.GeoMean(anps)
	}
	return stats.Mean(anps)
}

// SlowdownNorm returns the cluster slowdown norm (Σ 1/ANP_i)/N. Nodes with
// zero ANP make the norm +Inf.
func SlowdownNorm(anps []float64) float64 {
	if len(anps) == 0 {
		return 0
	}
	var s float64
	for _, a := range anps {
		if a == 0 {
			return math.Inf(1)
		}
		s += 1 / a
	}
	return s / float64(len(anps))
}

// Unfairness returns the coefficient of variation of the ANPs.
func Unfairness(anps []float64) float64 { return stats.CoeffVar(anps) }

// Report bundles the three headline metrics for one allocation.
type Report struct {
	SNP        float64
	Slowdown   float64
	Unfairness float64
}

// Evaluate computes all three metrics for an allocation using the given SNP
// aggregation.
func Evaluate(us []workload.Utility, alloc []float64, kind Kind) (Report, error) {
	anps, err := ANPs(us, alloc)
	if err != nil {
		return Report{}, err
	}
	return Report{
		SNP:        SNP(anps, kind),
		Slowdown:   SlowdownNorm(anps),
		Unfairness: Unfairness(anps),
	}, nil
}

// TotalUtility returns Σ r_i(p_i), the objective of problem (4.1).
func TotalUtility(us []workload.Utility, alloc []float64) (float64, error) {
	if len(us) != len(alloc) {
		return 0, fmt.Errorf("metrics: %d utilities but %d allocations", len(us), len(alloc))
	}
	var s float64
	for i, u := range us {
		s += u.Value(alloc[i])
	}
	return s, nil
}

// TotalPower returns Σ p_i.
func TotalPower(alloc []float64) float64 { return stats.Sum(alloc) }

// Feasible reports whether an allocation respects the global budget and the
// per-node cap ranges, within tol watts.
func Feasible(us []workload.Utility, alloc []float64, budget, tol float64) bool {
	if len(us) != len(alloc) {
		return false
	}
	var sum float64
	for i, u := range us {
		if alloc[i] < u.MinPower()-tol || alloc[i] > u.MaxPower()+tol {
			return false
		}
		sum += alloc[i]
	}
	return sum <= budget+tol
}
