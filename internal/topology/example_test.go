package topology_test

import (
	"fmt"

	"powercap/internal/topology"
)

// Chords shrink a ring's diameter — the fault-tolerance/latency trade the
// text suggests for DiBA's communication graph.
func ExampleChordalRing() {
	ring := topology.Ring(100)
	chordal := topology.ChordalRing(100, 10)
	fmt.Printf("ring: diameter %d, avg degree %.0f\n", ring.Diameter(), ring.AvgDegree())
	fmt.Printf("chordal: diameter %d, avg degree %.0f\n", chordal.Diameter(), chordal.AvgDegree())
	// Output:
	// ring: diameter 50, avg degree 2
	// chordal: diameter 9, avg degree 4
}
