package topology

import (
	"math/rand"
	"testing"
)

func TestNestedRingsShape(t *testing.T) {
	g, levels := NestedRings(4, 3, 5)
	if g.N() != 60 {
		t.Fatalf("want 60 nodes, got %d", g.N())
	}
	if len(levels) != 2 {
		t.Fatalf("want 2 explicit levels, got %d", len(levels))
	}
	// Finest level: 12 groups of 5; next: 4 groups of 15.
	for i := 0; i < 60; i++ {
		if want := i / 5; levels[0][i] != want {
			t.Fatalf("node %d finest group = %d, want %d", i, levels[0][i], want)
		}
		if want := i / 15; levels[1][i] != want {
			t.Fatalf("node %d row group = %d, want %d", i, levels[1][i], want)
		}
	}
	if !g.Connected() {
		t.Fatal("nested rings must be connected")
	}
	for l, gof := range levels {
		if bad, ok := GroupConnected(g, gof); !ok {
			t.Fatalf("level %d group %d not internally connected", l, bad)
		}
	}
	// Leaf rings of 5 plus leader rings: a non-leader leaf node has degree 2.
	if d := g.Degree(1); d != 2 {
		t.Fatalf("leaf node degree = %d, want 2", d)
	}
}

func TestNestedRingsSmallCounts(t *testing.T) {
	// Rings of size 2 and 1 must not panic or duplicate edges.
	g, levels := NestedRings(2, 2)
	if g.N() != 4 || len(levels) != 1 {
		t.Fatalf("unexpected shape: n=%d levels=%d", g.N(), len(levels))
	}
	if !g.Connected() {
		t.Fatal("2x2 nested rings must be connected")
	}
	g1, levels1 := NestedRings(5)
	if g1.N() != 5 || len(levels1) != 0 {
		t.Fatalf("single-level shape wrong: n=%d levels=%d", g1.N(), len(levels1))
	}
	if !g1.Connected() {
		t.Fatal("single ring must be connected")
	}
}

func TestBuildGroupedCSRMatchesNaiveCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, levels := NestedRings(3, 4, 6)
	// Add random chords so the mask sees cross-group edges at every level.
	n := g.N()
	for e := 0; e < 40; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b && !g.HasEdge(a, b) {
			_ = g.AddEdge(a, b)
		}
	}
	gof := append([][]int{nil}, levels...)
	gc, err := BuildGroupedCSR(g, gof...)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Levels != 3 {
		t.Fatalf("levels = %d, want 3", gc.Levels)
	}
	off, nbr := g.CSR()
	for i := 0; i < n; i++ {
		wantDeg := make([]int32, gc.Levels)
		for k := off[i]; k < off[i+1]; k++ {
			j := int(nbr[k])
			var m uint32 = 1 // nil level 0: always same group
			wantDeg[0]++
			for l := 1; l < gc.Levels; l++ {
				if gof[l][i] == gof[l][j] {
					m |= 1 << l
					wantDeg[l]++
				}
			}
			if gc.Mask[k] != m {
				t.Fatalf("mask[%d] (edge %d-%d) = %b, want %b", k, i, j, gc.Mask[k], m)
			}
		}
		for l := 0; l < gc.Levels; l++ {
			if gc.Deg[i*gc.Levels+l] != wantDeg[l] {
				t.Fatalf("deg[%d][level %d] = %d, want %d", i, l, gc.Deg[i*gc.Levels+l], wantDeg[l])
			}
		}
	}
	// NbrDeg must mirror Deg of the slot's neighbor wherever the mask bit
	// is set.
	for k, j := range nbr {
		for l := 0; l < gc.Levels; l++ {
			want := int32(0)
			if gc.Mask[k]&(1<<l) != 0 {
				want = gc.Deg[int(j)*gc.Levels+l]
			}
			if gc.NbrDeg[k*gc.Levels+l] != want {
				t.Fatalf("nbrDeg[slot %d][level %d] = %d, want %d", k, l, gc.NbrDeg[k*gc.Levels+l], want)
			}
		}
	}
}

func TestBuildGroupedCSRValidation(t *testing.T) {
	g := Ring(6)
	if _, err := BuildGroupedCSR(g); err == nil {
		t.Fatal("zero levels must be rejected")
	}
	if _, err := BuildGroupedCSR(g, []int{0, 0, 0}); err == nil {
		t.Fatal("short assignment must be rejected")
	}
	if _, err := BuildGroupedCSR(g, []int{0, 0, 0, -1, 0, 0}); err == nil {
		t.Fatal("negative group must be rejected")
	}
	many := make([][]int, MaxGroupLevels+1)
	if _, err := BuildGroupedCSR(g, many...); err == nil {
		t.Fatal("too many levels must be rejected")
	}
}

func TestGroupConnected(t *testing.T) {
	g := Ring(8)
	// Contiguous halves are connected within the ring.
	gof := []int{0, 0, 0, 0, 1, 1, 1, 1}
	if bad, ok := GroupConnected(g, gof); !ok {
		t.Fatalf("contiguous halves should be connected (group %d)", bad)
	}
	// Alternating assignment is internally disconnected.
	alt := []int{0, 1, 0, 1, 0, 1, 0, 1}
	if _, ok := GroupConnected(g, alt); ok {
		t.Fatal("alternating groups must be disconnected")
	}
	if _, ok := GroupConnected(g, nil); !ok {
		t.Fatal("nil grouping follows graph connectivity")
	}
}
