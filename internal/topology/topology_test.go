package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop must be rejected")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range edge must be rejected")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Fatal("duplicate edge must be rejected")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge must be undirected")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewGraph(5)
	for _, b := range []int{4, 1, 3, 2} {
		if err := g.AddEdge(0, b); err != nil {
			t.Fatal(err)
		}
	}
	ns := g.Neighbors(0)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("neighbors not sorted: %v", ns)
		}
	}
}

func TestRing(t *testing.T) {
	g := Ring(10)
	if g.NumEdges() != 10 {
		t.Fatalf("ring edges = %d, want 10", g.NumEdges())
	}
	for i := 0; i < 10; i++ {
		if g.Degree(i) != 2 {
			t.Fatalf("node %d degree = %d, want 2", i, g.Degree(i))
		}
	}
	if !g.Connected() {
		t.Fatal("ring must be connected")
	}
	if d := g.Diameter(); d != 5 {
		t.Fatalf("ring-10 diameter = %d, want 5", d)
	}
	if got := g.AvgDegree(); got != 2 {
		t.Fatalf("avg degree = %v, want 2", got)
	}
}

func TestRingTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Ring(2)
}

func TestChordalRing(t *testing.T) {
	g := ChordalRing(10, 3)
	if !g.Connected() {
		t.Fatal("chordal ring must be connected")
	}
	// Every node gains exactly two chord endpoints when stride ∤ pattern.
	for i := 0; i < 10; i++ {
		if g.Degree(i) != 4 {
			t.Fatalf("node %d degree = %d, want 4", i, g.Degree(i))
		}
	}
	if g.Diameter() >= Ring(10).Diameter() {
		t.Fatal("chords must shrink the diameter")
	}
}

func TestStar(t *testing.T) {
	g := Star(8)
	if g.Degree(0) != 7 {
		t.Fatalf("hub degree = %d, want 7", g.Degree(0))
	}
	for i := 1; i < 8; i++ {
		if g.Degree(i) != 1 {
			t.Fatalf("leaf %d degree = %d, want 1", i, g.Degree(i))
		}
	}
	if g.Diameter() != 2 {
		t.Fatalf("star diameter = %d, want 2", g.Diameter())
	}
}

func TestTwoTierStar(t *testing.T) {
	g := TwoTierStar(4, 10)
	if g.N() != 1+4+40 {
		t.Fatalf("N = %d, want 45", g.N())
	}
	if g.Degree(0) != 4 {
		t.Fatalf("core degree = %d, want 4", g.Degree(0))
	}
	for r := 0; r < 4; r++ {
		if got := g.Degree(1 + r); got != 11 { // core + 10 servers
			t.Fatalf("ToR %d degree = %d, want 11", r, got)
		}
	}
	if !g.Connected() {
		t.Fatal("two-tier star must be connected")
	}
	if g.Diameter() != 4 {
		t.Fatalf("diameter = %d, want 4", g.Diameter())
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := ErdosRenyi(20, 50, rng)
	if g.NumEdges() != 50 {
		t.Fatalf("edges = %d, want 50", g.NumEdges())
	}
	if g.N() != 20 {
		t.Fatalf("N = %d, want 20", g.N())
	}
}

func TestConnectedErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := ConnectedErdosRenyi(30, 35, rng)
		if !g.Connected() {
			t.Fatal("must be connected")
		}
		if g.NumEdges() != 35 {
			t.Fatalf("edges = %d, want 35", g.NumEdges())
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.NumEdges() != 15 {
		t.Fatalf("K6 edges = %d, want 15", g.NumEdges())
	}
	if g.Diameter() != 1 {
		t.Fatalf("K6 diameter = %d, want 1", g.Diameter())
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(2, 3)
	if g.Connected() {
		t.Fatal("must be disconnected")
	}
	if g.Diameter() != -1 {
		t.Fatal("diameter of disconnected graph must be -1")
	}
}

func TestRemoveNode(t *testing.T) {
	g := Ring(6)
	h := g.RemoveNode(2)
	if h.Degree(2) != 0 {
		t.Fatal("removed node must be isolated")
	}
	if h.NumEdges() != 4 {
		t.Fatalf("edges after removal = %d, want 4", h.NumEdges())
	}
	// Ring minus one node stays connected among the others but the graph as
	// a whole (with the isolated node) is disconnected.
	if h.Connected() {
		t.Fatal("graph with isolated node is disconnected")
	}
	// Original untouched.
	if g.Degree(2) != 2 {
		t.Fatal("RemoveNode must not mutate the receiver")
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := Ring(4)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("len(edges) = %d, want 4", len(edges))
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not ordered", e)
		}
	}
}

// Property: handshake lemma — sum of degrees equals twice the edge count,
// on random ER graphs.
func TestHandshakeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		maxE := n * (n - 1) / 2
		m := rng.Intn(maxE + 1)
		g := ErdosRenyi(n, m, rng)
		sum := 0
		for i := 0; i < n; i++ {
			sum += g.Degree(i)
		}
		return sum == 2*g.NumEdges() && g.NumEdges() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: neighbor lists are mutual — j ∈ N(i) ⇔ i ∈ N(j).
func TestSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		m := n + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := ConnectedErdosRenyi(n, m, rng)
		for i := 0; i < n; i++ {
			for _, j := range g.Neighbors(i) {
				if !g.HasEdge(int(j), i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadParameters(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("NewGraph(-1)", func() { NewGraph(-1) })
	mustPanic("Star(1)", func() { Star(1) })
	mustPanic("ChordalRing stride 1", func() { ChordalRing(10, 1) })
	mustPanic("ChordalRing stride n-1", func() { ChordalRing(10, 9) })
	mustPanic("TwoTierStar(0,1)", func() { TwoTierStar(0, 1) })
	mustPanic("ER too many edges", func() { ErdosRenyi(3, 10, rand.New(rand.NewSource(1))) })
	mustPanic("ConnectedER too few edges", func() { ConnectedErdosRenyi(5, 3, rand.New(rand.NewSource(1))) })
}

func TestTrivialGraphProperties(t *testing.T) {
	empty := NewGraph(0)
	if empty.AvgDegree() != 0 || !empty.Connected() || empty.Diameter() != 0 {
		t.Fatal("empty graph properties wrong")
	}
	single := NewGraph(1)
	if !single.Connected() || single.Diameter() != 0 || single.MaxDegree() != 0 {
		t.Fatal("single-node graph properties wrong")
	}
}

func TestConnectedErdosRenyiSparseFallback(t *testing.T) {
	// Far below the connectivity threshold rejection can't succeed; the
	// spanning-tree fallback must deliver a connected graph with the exact
	// edge count.
	rng := rand.New(rand.NewSource(5))
	g := ConnectedErdosRenyi(200, 200, rng)
	if !g.Connected() {
		t.Fatal("sparse fallback must be connected")
	}
	if g.NumEdges() != 200 {
		t.Fatalf("edges = %d, want 200", g.NumEdges())
	}
}
