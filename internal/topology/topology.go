// Package topology builds the communication graphs that DiBA's distributed
// computation runs over: the ring used throughout the evaluation, rings
// augmented with chords for fault tolerance, the star of the centralized and
// primal-dual schemes, the two-tier star of the cluster's physical network,
// and connected Erdős–Rényi random graphs for the Fig. 4.10 connectivity
// study.
package topology

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Graph is an undirected simple graph over nodes 0..N-1. Edges are inserted
// through per-node sorted adjacency lists; reads go through a compressed
// sparse row (CSR) view — one backing []int32 of concatenated neighbor ids
// plus an offsets array — that is rebuilt lazily after mutation. The flat
// layout keeps the engine's per-round neighbor sweeps on contiguous memory
// instead of chasing one heap slice per node.
//
// The lazy rebuild is internally synchronized (double-checked atomic flag
// plus a rebuild mutex), so any number of goroutines may read a quiescent
// graph concurrently — agents fanning out over a shared topology need no
// extra coordination. Mutation (AddEdge) is not goroutine-safe and must not
// overlap with reads.
type Graph struct {
	// adj is the build-phase adjacency: sorted, duplicate-free neighbor
	// lists, the source of truth for mutation.
	adj [][]int32
	// off/nbr form the sealed CSR view: node i's neighbors are
	// nbr[off[i]:off[i+1]], valid while dirty is false.
	off []int32
	nbr []int32
	// dirty is atomic so concurrent readers can skip a clean seal without
	// locking; sealMu serializes the rebuild itself.
	dirty  atomic.Bool
	sealMu sync.Mutex
}

// NewGraph returns an edgeless graph with n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("topology: negative node count")
	}
	g := &Graph{adj: make([][]int32, n)}
	g.dirty.Store(true)
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// Seal (re)builds the CSR view from the adjacency lists. Read accessors
// call it implicitly, and concurrent callers are safe: the fast path is a
// single atomic load, and when a rebuild is needed the last writer's
// dirty.Store(false) publishes the finished CSR arrays to every goroutine
// that subsequently observes the flag clear.
func (g *Graph) Seal() {
	if !g.dirty.Load() {
		return
	}
	g.sealMu.Lock()
	defer g.sealMu.Unlock()
	if !g.dirty.Load() {
		return
	}
	n := len(g.adj)
	total := 0
	for _, ns := range g.adj {
		total += len(ns)
	}
	if cap(g.off) < n+1 {
		g.off = make([]int32, n+1)
	} else {
		g.off = g.off[:n+1]
	}
	if cap(g.nbr) < total {
		g.nbr = make([]int32, 0, total)
	} else {
		g.nbr = g.nbr[:0]
	}
	g.off[0] = 0
	for i, ns := range g.adj {
		g.nbr = append(g.nbr, ns...)
		g.off[i+1] = int32(len(g.nbr))
	}
	g.dirty.Store(false)
}

// CSR returns the sealed offsets and neighbor arrays: node i's neighbors
// are nbr[off[i]:off[i+1]]. Both slices are shared and read-only.
func (g *Graph) CSR() (off, nbr []int32) {
	g.Seal()
	return g.off, g.nbr
}

// Neighbors returns the (shared, read-only) sorted neighbor list of node i,
// a zero-copy slice of the CSR backing array.
func (g *Graph) Neighbors(i int) []int32 {
	g.Seal()
	return g.nbr[g.off[i]:g.off[i+1]]
}

// NeighborsInts returns a freshly allocated []int copy of node i's neighbor
// list, for callers that keep node ids in the int domain (agent
// construction, config plumbing). Not for hot loops.
func (g *Graph) NeighborsInts(i int) []int {
	ns := g.Neighbors(i)
	out := make([]int, len(ns))
	for k, v := range ns {
		out[k] = int(v)
	}
	return out
}

// Degree returns the degree of node i.
func (g *Graph) Degree(i int) int {
	g.Seal()
	return int(g.off[i+1] - g.off[i])
}

// HasEdge reports whether nodes a and b are adjacent.
func (g *Graph) HasEdge(a, b int) bool {
	// Binary search the sorted build list: usable mid-construction without
	// forcing a CSR rebuild per probe.
	ns := g.adj[a]
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(ns[mid]) < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ns) && int(ns[lo]) == b
}

// AddEdge inserts the undirected edge {a,b}. Self-loops and duplicate edges
// are rejected with an error.
func (g *Graph) AddEdge(a, b int) error {
	n := g.N()
	if a < 0 || a >= n || b < 0 || b >= n {
		return fmt.Errorf("topology: edge (%d,%d) out of range 0..%d", a, b, n-1)
	}
	if a == b {
		return fmt.Errorf("topology: self-loop at %d", a)
	}
	if g.HasEdge(a, b) {
		return fmt.Errorf("topology: duplicate edge (%d,%d)", a, b)
	}
	g.adj[a] = insertSorted(g.adj[a], int32(b))
	g.adj[b] = insertSorted(g.adj[b], int32(a))
	g.dirty.Store(true)
	return nil
}

func insertSorted(s []int32, v int32) []int32 {
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Edges returns every undirected edge once, as ordered pairs (a < b).
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for a, ns := range g.adj {
		for _, b := range ns {
			if a < int(b) {
				out = append(out, [2]int{a, int(b)})
			}
		}
	}
	return out
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, ns := range g.adj {
		total += len(ns)
	}
	return total / 2
}

// AvgDegree returns the average node degree 2|E|/N.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(g.N())
}

// Connected reports whether the graph is connected (true for N ≤ 1).
func (g *Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	off, nbr := g.CSR()
	seen := make([]bool, n)
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range nbr[off[v]:off[v+1]] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// Diameter returns the longest shortest-path length in the graph via BFS
// from every node. It returns -1 for a disconnected graph and 0 for N ≤ 1.
func (g *Graph) Diameter() int {
	n := g.N()
	if n <= 1 {
		return 0
	}
	off, nbr := g.CSR()
	diam := 0
	dist := make([]int, n)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		reached := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range nbr[off[v]:off[v+1]] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					if dist[w] > diam {
						diam = dist[w]
					}
					reached++
					queue = append(queue, w)
				}
			}
		}
		if reached != n {
			return -1
		}
	}
	return diam
}

// MaxDegree returns the largest node degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	m := 0
	for _, ns := range g.adj {
		if len(ns) > m {
			m = len(ns)
		}
	}
	return m
}

// Ring returns the cycle graph over n ≥ 3 nodes — the topology DiBA's
// evaluation uses by default.
func Ring(n int) *Graph {
	if n < 3 {
		panic("topology: ring needs at least 3 nodes")
	}
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		_ = g.AddEdge(i, (i+1)%n)
	}
	return g
}

// ChordalRing returns a ring over n nodes augmented with chords connecting
// each node i to i+stride (mod n), the fault-tolerant variant the text
// suggests for surviving node failures. stride must be in [2, n-2] and is
// skipped where it would duplicate a ring edge.
func ChordalRing(n, stride int) *Graph {
	g := Ring(n)
	if stride < 2 || stride > n-2 {
		panic("topology: chord stride out of range")
	}
	for i := 0; i < n; i++ {
		j := (i + stride) % n
		if !g.HasEdge(i, j) {
			_ = g.AddEdge(i, j)
		}
	}
	return g
}

// Star returns a star with the hub at node 0 and n-1 leaves — the logical
// topology of the centralized and primal-dual schemes.
func Star(n int) *Graph {
	if n < 2 {
		panic("topology: star needs at least 2 nodes")
	}
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(0, i)
	}
	return g
}

// TwoTierStar models the cluster's physical network: node 0 is the core
// switch, nodes 1..numRacks are top-of-rack switches, and the remaining
// serversPerRack·numRacks nodes are servers attached to their rack switch.
// Server k of rack r is node 1+numRacks+r·serversPerRack+k.
func TwoTierStar(numRacks, serversPerRack int) *Graph {
	if numRacks < 1 || serversPerRack < 1 {
		panic("topology: invalid two-tier dimensions")
	}
	n := 1 + numRacks + numRacks*serversPerRack
	g := NewGraph(n)
	for r := 0; r < numRacks; r++ {
		tor := 1 + r
		_ = g.AddEdge(0, tor)
		for k := 0; k < serversPerRack; k++ {
			_ = g.AddEdge(tor, 1+numRacks+r*serversPerRack+k)
		}
	}
	return g
}

// ErdosRenyi samples G(n, m): a graph chosen uniformly among all simple
// graphs with n nodes and m edges (the model used in Fig. 4.10). It panics
// if m exceeds n(n-1)/2.
func ErdosRenyi(n, m int, rng *rand.Rand) *Graph {
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		panic("topology: too many edges requested")
	}
	g := NewGraph(n)
	for g.NumEdges() < m {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b || g.HasEdge(a, b) {
			continue
		}
		_ = g.AddEdge(a, b)
	}
	return g
}

// ConnectedErdosRenyi samples G(n, m) conditioned on connectivity,
// matching the text's "connected Erdős–Rényi random graphs". Above the
// connectivity threshold (m ≳ n·ln(n)/2) it rejection-samples true G(n, m);
// in the sparse regime, where connected graphs are exponentially rare and
// rejection would never terminate, it falls back to a uniform random
// spanning tree plus uniformly random extra edges — connected by
// construction with the same edge count. It panics if m < n-1.
func ConnectedErdosRenyi(n, m int, rng *rand.Rand) *Graph {
	if m < n-1 {
		panic("topology: fewer edges than a spanning tree")
	}
	const rejectionTries = 200
	for try := 0; try < rejectionTries; try++ {
		g := ErdosRenyi(n, m, rng)
		if g.Connected() {
			return g
		}
	}
	// Sparse regime: random-walk spanning tree (uniform over trees on the
	// complete graph, by Broder/Aldous), then top up with random edges.
	g := NewGraph(n)
	visited := make([]bool, n)
	cur := rng.Intn(n)
	visited[cur] = true
	remaining := n - 1
	for remaining > 0 {
		next := rng.Intn(n)
		if next == cur {
			continue
		}
		if !visited[next] {
			_ = g.AddEdge(cur, next)
			visited[next] = true
			remaining--
		}
		cur = next
	}
	for g.NumEdges() < m {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || g.HasEdge(a, b) {
			continue
		}
		_ = g.AddEdge(a, b)
	}
	return g
}

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph {
	g := NewGraph(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			_ = g.AddEdge(a, b)
		}
	}
	return g
}

// RemoveNode returns a copy of g with node v isolated (all incident edges
// dropped). Node ids are preserved; the node stays in the graph with degree
// zero. This models a crashed server in the fault-tolerance experiments.
func (g *Graph) RemoveNode(v int) *Graph {
	out := NewGraph(g.N())
	for a, ns := range g.adj {
		for _, b := range ns {
			if a < int(b) && a != v && int(b) != v {
				_ = out.AddEdge(a, int(b))
			}
		}
	}
	return out
}
