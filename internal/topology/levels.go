package topology

import "fmt"

// Multi-level grouping. Real fleets nest their power delivery: servers
// share a rack PDU, racks share a row feed, rows share the facility
// budget. The hierarchical DiBA engine runs one consensus family per
// level, and each family's estimate flows are restricted to edges whose
// endpoints share a group at that level. The structures here give the
// engine a flat, precomputed view of that restriction — a per-edge level
// bitmask and per-level within-group degrees aligned with the graph's CSR
// arrays — so the per-round hot loop never compares group ids or walks a
// tree.

// MaxGroupLevels bounds the number of grouping levels a GroupedCSR can
// carry; each level occupies one bit of the per-edge mask.
const MaxGroupLevels = 32

// GroupedCSR is the flattened multi-level view of a graph: the CSR arrays
// plus, per neighbor slot, a bitmask of the levels at which the edge's two
// endpoints share a group, and per (node, level) the node's within-group
// degree. Slot-major arrays are aligned with Nbr so the engine's flow loop
// streams them in one pass.
type GroupedCSR struct {
	// Off and Nbr are the graph's CSR arrays (shared, read-only): node i's
	// neighbor slots are Off[i]..Off[i+1].
	Off, Nbr []int32
	// Levels is the number of grouping levels L.
	Levels int
	// Mask[k] has bit l set iff the edge in slot k joins two nodes of the
	// same level-l group. A nil (trivial) level's bit is always set.
	Mask []uint32
	// Deg is node-major: Deg[i*Levels+l] is node i's degree counting only
	// same-group edges at level l.
	Deg []int32
	// NbrDeg is slot-major: NbrDeg[k*Levels+l] is the within-group degree
	// of the neighbor in slot k at level l (meaningful when Mask[k] has
	// bit l; zero otherwise).
	NbrDeg []int32
}

// BuildGroupedCSR flattens the graph with the given group assignments, one
// per level. Each groupOf slice maps node -> group id at that level; a nil
// slice denotes the trivial level where every node shares one group (the
// cluster-wide constraint). Group ids must be non-negative. The graph's
// CSR view is sealed as a side effect.
func BuildGroupedCSR(g *Graph, groupOf ...[]int) (*GroupedCSR, error) {
	n := g.N()
	nl := len(groupOf)
	if nl == 0 {
		return nil, fmt.Errorf("topology: grouped CSR needs at least one level")
	}
	if nl > MaxGroupLevels {
		return nil, fmt.Errorf("topology: %d grouping levels exceed the maximum %d", nl, MaxGroupLevels)
	}
	for l, gof := range groupOf {
		if gof == nil {
			continue
		}
		if len(gof) != n {
			return nil, fmt.Errorf("topology: level %d assigns %d nodes, graph has %d", l, len(gof), n)
		}
		for i, k := range gof {
			if k < 0 {
				return nil, fmt.Errorf("topology: level %d assigns node %d a negative group %d", l, i, k)
			}
		}
	}
	off, nbr := g.CSR()
	gc := &GroupedCSR{
		Off:    off,
		Nbr:    nbr,
		Levels: nl,
		Mask:   make([]uint32, len(nbr)),
		Deg:    make([]int32, n*nl),
		NbrDeg: make([]int32, len(nbr)*nl),
	}
	for i := 0; i < n; i++ {
		for k := off[i]; k < off[i+1]; k++ {
			j := int(nbr[k])
			var m uint32
			for l, gof := range groupOf {
				if gof == nil || gof[i] == gof[j] {
					m |= 1 << l
					gc.Deg[i*nl+l]++
				}
			}
			gc.Mask[k] = m
		}
	}
	for k, j := range nbr {
		m := gc.Mask[k]
		for l := 0; l < nl; l++ {
			if m&(1<<l) != 0 {
				gc.NbrDeg[k*nl+l] = gc.Deg[int(j)*nl+l]
			}
		}
	}
	return gc, nil
}

// GroupConnected reports whether every group of the given assignment is
// internally connected in g (using only edges between same-group nodes).
// A nil assignment is the trivial single group, checked with Connected.
// The first offending group id is returned with ok=false. Runs one O(N+M)
// sweep regardless of the group count.
func GroupConnected(g *Graph, groupOf []int) (badGroup int, ok bool) {
	if groupOf == nil {
		if g.Connected() {
			return 0, true
		}
		return 0, false
	}
	n := g.N()
	off, nbr := g.CSR()
	seen := make([]bool, n)
	starts := make(map[int]bool, 16)
	stack := make([]int32, 0, 64)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		grp := groupOf[s]
		if starts[grp] {
			// Second component inside one group: disconnected.
			return grp, false
		}
		starts[grp] = true
		seen[s] = true
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range nbr[off[v]:off[v+1]] {
				if !seen[w] && groupOf[w] == grp {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return 0, true
}

// NestedRings builds an L-deep nested-ring cluster, the scale topology of
// the hierarchical engine's benchmarks: counts[0] top-level groups, each
// subdividing into counts[1] subgroups, ..., with counts[L-1] servers per
// finest group. Every finest group's servers form a ring; at each higher
// level the leaders (lowest-id member) of sibling groups form a ring
// inside their parent, and the top-level leaders form the cluster ring.
// Total nodes = Π counts.
//
// The returned assignments are the explicit grouping levels below the
// cluster, finest first: levels[0] groups nodes by finest group (rack),
// levels[1] by the next level up (row), and so on — len(counts)-1 slices
// (nil when len(counts) == 1). Every group is internally connected by
// construction, as the hierarchical engine requires.
func NestedRings(counts ...int) (*Graph, [][]int) {
	if len(counts) == 0 {
		panic("topology: NestedRings needs at least one level")
	}
	n := 1
	for _, c := range counts {
		if c < 1 {
			panic("topology: NestedRings counts must be >= 1")
		}
		n *= c
	}
	g := NewGraph(n)
	// stride[k] is the id distance between siblings at prefix depth k:
	// members of one prefix-k group occupy a contiguous id range of
	// stride[k] * counts[k].
	stride := make([]int, len(counts)+1)
	stride[len(counts)] = 1
	for k := len(counts) - 1; k >= 0; k-- {
		stride[k] = stride[k+1] * counts[k]
	}
	ring := func(base, cnt, step int) {
		if cnt < 2 {
			return
		}
		for c := 0; c < cnt; c++ {
			a := base + c*step
			b := base + ((c+1)%cnt)*step
			if a != b && !g.HasEdge(a, b) {
				_ = g.AddEdge(a, b)
			}
		}
	}
	for k := 0; k < len(counts); k++ {
		// One ring per prefix-k group over its counts[k] children's leaders.
		for base := 0; base < n; base += stride[k] {
			ring(base, counts[k], stride[k+1])
		}
	}
	levels := make([][]int, 0, len(counts)-1)
	// Finest explicit level first: grouping by prefix depth L-1, then L-2,
	// ..., down to depth 1. Depth 0 is the whole cluster (implicit).
	for k := len(counts) - 1; k >= 1; k-- {
		gof := make([]int, n)
		for i := 0; i < n; i++ {
			gof[i] = i / stride[k]
		}
		levels = append(levels, gof)
	}
	return g, levels
}
