package layout

import (
	"math"
	"math/rand"
	"testing"
)

// multiScenarioProblem adds utilization diversity so swaps produce both
// tiny and large cost deltas (the regime that exercises the exact-decision
// fallback: the synthetic room's symmetry makes exact ties common).
func multiScenarioProblem(t testing.TB, rows, perRow int, seed int64) Problem {
	t.Helper()
	base := smallProblem(t, rows, perRow, seed)
	n := base.N()
	rng := rand.New(rand.NewSource(seed + 100))
	scens := []Scenario{{Weight: 2, Power: base.Scenarios[0].Power}}
	for s := 0; s < 2; s++ {
		pw := make([]float64, n)
		for i := range pw {
			pw[i] = base.Scenarios[0].Power[i] * (0.3 + 0.7*rng.Float64())
		}
		scens = append(scens, Scenario{Weight: 1, Power: pw})
	}
	return Problem{Rise: base.Rise, Scenarios: scens}
}

// referenceLocalSearch is the pre-evaluator implementation: full Cost per
// candidate. The incremental LocalSearch must replay its decisions bit for
// bit.
func referenceLocalSearch(p Problem, start Assignment, iters int, rng *rand.Rand) Assignment {
	n := p.N()
	cur := start.Clone()
	best := p.Cost(cur)
	for k := 0; k < iters; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		cur[i], cur[j] = cur[j], cur[i]
		if c := p.Cost(cur); c <= best {
			best = c
		} else {
			cur[i], cur[j] = cur[j], cur[i]
		}
	}
	return cur
}

// referenceAnneal mirrors Anneal with full-cost evaluation everywhere.
func referenceAnneal(p Problem, iters int, rng *rand.Rand) Assignment {
	n := p.N()
	cur, _ := Greedy(p)
	curCost := p.Cost(cur)
	best := cur.Clone()
	bestCost := curCost
	temp := curCost * 0.1
	cooling := math.Pow(1e-3, 1/float64(max(iters, 1)))
	for k := 0; k < iters; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		cur[i], cur[j] = cur[j], cur[i]
		c := p.Cost(cur)
		if c <= curCost || rng.Float64() < math.Exp((curCost-c)/temp) {
			curCost = c
			if c < bestCost {
				bestCost = c
				best = cur.Clone()
			}
		} else {
			cur[i], cur[j] = cur[j], cur[i]
		}
		temp *= cooling
	}
	out := referenceLocalSearch(p, best, iters/2, rng)
	if p.Cost(out) < bestCost {
		return out
	}
	return best
}

func assignmentsEqual(a, b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The incremental local search must reproduce the full-recompute
// trajectory exactly — same rng stream, same accepts, same final
// permutation — across seeds and scenario mixes.
func TestLocalSearchMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, multi := range []bool{false, true} {
			var p Problem
			if multi {
				p = multiScenarioProblem(t, 4, 10, seed)
			} else {
				p = smallProblem(t, 4, 10, seed)
			}
			start := RandomOblivious(p.N(), rand.New(rand.NewSource(seed*7)))
			// 3000 iterations crosses refreshInterval accepted swaps on
			// easy instances, covering the periodic full recompute.
			got, err := LocalSearch(p, start, 3000, rand.New(rand.NewSource(seed*13)))
			if err != nil {
				t.Fatal(err)
			}
			want := referenceLocalSearch(p, start, 3000, rand.New(rand.NewSource(seed*13)))
			if !assignmentsEqual(got, want) {
				t.Fatalf("seed %d multi=%v: incremental trajectory diverged:\n got %v\nwant %v",
					seed, multi, got, want)
			}
		}
	}
}

func TestAnnealMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		p := multiScenarioProblem(t, 3, 8, seed)
		got, err := Anneal(p, 2000, rand.New(rand.NewSource(seed*17)))
		if err != nil {
			t.Fatal(err)
		}
		want := referenceAnneal(p, 2000, rand.New(rand.NewSource(seed*17)))
		if !assignmentsEqual(got, want) {
			t.Fatalf("seed %d: anneal trajectory diverged:\n got %v\nwant %v", seed, got, want)
		}
	}
}

// swapCost must agree with the from-scratch cost of the swapped assignment
// to within the decision window, across many applied swaps (drift check).
func TestSwapCostWithinWindow(t *testing.T) {
	p := multiScenarioProblem(t, 4, 10, 21)
	n := p.N()
	rng := rand.New(rand.NewSource(22))
	cur := RandomOblivious(n, rng)
	e := newEvaluator(p)
	e.reset(cur)
	for k := 0; k < 2000; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		inc := e.swapCost(cur, i, j)
		full := p.costSwapped(cur, i, j)
		if math.Abs(inc-full) > costWindow/100 {
			t.Fatalf("swap %d: incremental %v vs full %v differ by %v (window %v)",
				k, inc, full, math.Abs(inc-full), costWindow)
		}
		if k%3 != 0 {
			e.apply(cur, i, j)
		}
	}
}

// The steady-state candidate evaluation and acceptance must not allocate.
func TestSwapEvalAllocFree(t *testing.T) {
	p := multiScenarioProblem(t, 4, 10, 31)
	n := p.N()
	rng := rand.New(rand.NewSource(32))
	cur := RandomOblivious(n, rng)
	e := newEvaluator(p)
	e.reset(cur)
	if a := testing.AllocsPerRun(200, func() {
		e.swapCost(cur, 3, 17)
	}); a != 0 {
		t.Fatalf("swapCost allocates %v times per run", a)
	}
	k := 0
	if a := testing.AllocsPerRun(200, func() {
		i, j := k%n, (k*7+1)%n
		if i != j {
			e.apply(cur, i, j)
		}
		k++
	}); a != 0 {
		t.Fatalf("apply allocates %v times per run", a)
	}
}
