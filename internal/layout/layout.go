// Package layout solves the Chapter 5 rack-layout problem: place n
// heterogeneous racks onto n room locations to minimize the hottest inlet
// rise max_i (M·X·p)_i — equivalently maximize the CRAC supply temperature
// and minimize cooling power. Implemented planners: the greedy and
// local-search heuristics (Algorithms 5 and 6), an exact branch-and-bound
// (the stdlib replacement for the paper's ILP, exact for small instances),
// and simulated annealing for full 80-rack rooms. The probabilistic
// formulation of Section 5.2.2 — expected hottest rise over a distribution
// of utilization scenarios — is supported by every planner through the
// Scenario weights.
package layout

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"powercap/internal/linalg"
)

// Assignment maps location → rack index (a permutation).
type Assignment []int

// Valid reports whether a is a permutation of 0..n-1.
func (a Assignment) Valid() bool {
	seen := make([]bool, len(a))
	for _, r := range a {
		if r < 0 || r >= len(a) || seen[r] {
			return false
		}
		seen[r] = true
	}
	return true
}

// Clone returns a copy.
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// Scenario is one operating condition: per-rack power draws with a
// probability weight. A single scenario with weight 1 is the deterministic
// problem of Section 5.2.1.
type Scenario struct {
	Weight float64
	// Power[rack] is the rack's draw in this scenario (W).
	Power []float64
}

// Problem is a layout instance.
type Problem struct {
	// Rise is the location-indexed inlet-rise operator (°C per W), e.g.
	// thermal.Room.RiseMatrix.
	Rise *linalg.Matrix
	// Scenarios carry the rack power distribution; weights need not be
	// normalized (Cost normalizes).
	Scenarios []Scenario
}

// Validate reports structural errors.
func (p Problem) Validate() error {
	if p.Rise == nil || p.Rise.Rows() != p.Rise.Cols() {
		return errors.New("layout: rise matrix must be square")
	}
	if len(p.Scenarios) == 0 {
		return errors.New("layout: need at least one scenario")
	}
	n := p.Rise.Rows()
	var w float64
	for i, s := range p.Scenarios {
		if len(s.Power) != n {
			return fmt.Errorf("layout: scenario %d has %d racks, want %d", i, len(s.Power), n)
		}
		if s.Weight < 0 {
			return fmt.Errorf("layout: scenario %d has negative weight", i)
		}
		w += s.Weight
	}
	if w <= 0 {
		return errors.New("layout: total scenario weight must be positive")
	}
	return nil
}

// N returns the number of racks/locations.
func (p Problem) N() int { return p.Rise.Rows() }

// Cost returns the weighted expected hottest inlet rise of the assignment:
// Σ_s w_s · max_i (Rise·q_s)_i with q_s[loc] = Power_s[a[loc]].
func (p Problem) Cost(a Assignment) float64 {
	n := p.N()
	q := make([]float64, n)
	var total, wsum float64
	for _, s := range p.Scenarios {
		for loc := 0; loc < n; loc++ {
			q[loc] = s.Power[a[loc]]
		}
		rise := p.Rise.MulVec(q)
		m := 0.0
		for _, v := range rise {
			if v > m {
				m = v
			}
		}
		total += s.Weight * m
		wsum += s.Weight
	}
	return total / wsum
}

// evaluator is the incremental cost engine behind LocalSearch and Anneal.
// It maintains the per-scenario inlet-rise vectors of the current
// assignment; a candidate pairwise swap touches exactly two q coordinates,
// so its cost needs only the two affected Rise columns — O(n·|S|) instead
// of the O(n²·|S|) full mat-vec — and accepting it updates the vectors
// with the identical arithmetic. A periodic full recompute (every
// refreshInterval accepted swaps) bounds float drift. Steady-state
// candidate evaluation and acceptance allocate nothing.
//
// Incremental costs agree with the from-scratch Cost only up to
// accumulated rounding (≤ ~1e-11 °C, see costWindow), which is not enough
// for bit-identical search trajectories: the room's symmetry makes
// exactly-tied candidates common and the accept rules compare with ≤ and
// <. The planners therefore use the incremental cost as a certain-decision
// filter — any comparison landing within costWindow of the boundary is
// re-resolved with the exact full recompute, so every accept/reject (and
// every rng draw) is identical to the non-incremental implementation.
type evaluator struct {
	p    Problem
	n    int
	wsum float64
	// cols is Rise's transpose, giving contiguous access to Rise's columns.
	cols         *linalg.Matrix
	rises        [][]float64
	q            []float64
	sinceRefresh int
}

// refreshInterval is how many accepted swaps may pass between full
// recomputes of the rise vectors. Each incremental update adds O(ulp)
// error, so ~500 updates keep accumulated drift far below costWindow
// while amortizing the O(n²) recompute to nothing.
const refreshInterval = 512

// costWindow bounds |incremental cost − exact cost|: per-update rounding
// is ~ulp(rise) ≈ 7e-15 °C, so 512 updates of drift plus the candidate
// delta arithmetic stay under ~1e-11 — four orders of magnitude inside
// this margin. A comparison whose incremental margin exceeds costWindow
// is therefore decided identically to the exact comparison; anything
// closer falls back to the full recompute.
const costWindow = 1e-7

func newEvaluator(p Problem) *evaluator {
	n := p.N()
	e := &evaluator{p: p, n: n, cols: p.Rise.T(), q: make([]float64, n),
		rises: make([][]float64, len(p.Scenarios))}
	for i := range e.rises {
		e.rises[i] = make([]float64, n)
	}
	for _, s := range p.Scenarios {
		e.wsum += s.Weight
	}
	return e
}

// reset computes the rise vectors for a from scratch and returns its cost,
// bit-identical to Problem.Cost(a).
func (e *evaluator) reset(a Assignment) float64 {
	e.sinceRefresh = 0
	var total float64
	for si, s := range e.p.Scenarios {
		for loc, r := range a {
			e.q[loc] = s.Power[r]
		}
		e.p.Rise.MulVecTo(e.rises[si], e.q)
		total += s.Weight * maxRise(e.rises[si])
	}
	return total / e.wsum
}

// swapCost returns the cost of a with locations i and j swapped, without
// modifying anything: rise'_k = rise_k + Rise(k,i)·Δq_i + Rise(k,j)·Δq_j.
func (e *evaluator) swapCost(a Assignment, i, j int) float64 {
	ci, cj := e.cols.RowView(i), e.cols.RowView(j)
	var total float64
	for si, s := range e.p.Scenarios {
		dqi := s.Power[a[j]] - s.Power[a[i]]
		dqj := s.Power[a[i]] - s.Power[a[j]]
		m := 0.0
		for k, r := range e.rises[si] {
			v := r + ci[k]*dqi
			v += cj[k] * dqj
			if v > m {
				m = v
			}
		}
		total += s.Weight * m
	}
	return total / e.wsum
}

// apply commits the swap of locations i and j: updates the rise vectors
// with the same two-step arithmetic swapCost used (so the state matches
// the accepted candidate exactly) and swaps a in place.
func (e *evaluator) apply(a Assignment, i, j int) {
	ci, cj := e.cols.RowView(i), e.cols.RowView(j)
	for si, s := range e.p.Scenarios {
		dqi := s.Power[a[j]] - s.Power[a[i]]
		dqj := s.Power[a[i]] - s.Power[a[j]]
		rise := e.rises[si]
		for k, r := range rise {
			v := r + ci[k]*dqi
			rise[k] = v + cj[k]*dqj
		}
	}
	a[i], a[j] = a[j], a[i]
	if e.sinceRefresh++; e.sinceRefresh >= refreshInterval {
		e.sinceRefresh = 0
		for si, s := range e.p.Scenarios {
			for loc, r := range a {
				e.q[loc] = s.Power[r]
			}
			e.p.Rise.MulVecTo(e.rises[si], e.q)
		}
	}
}

func maxRise(rise []float64) float64 {
	m := 0.0
	for _, v := range rise {
		if v > m {
			m = v
		}
	}
	return m
}

// costSwapped returns the exact from-scratch cost of a with locations i
// and j swapped, leaving a unchanged.
func (p Problem) costSwapped(a Assignment, i, j int) float64 {
	a[i], a[j] = a[j], a[i]
	c := p.Cost(a)
	a[i], a[j] = a[j], a[i]
	return c
}

// meanPower returns the scenario-weighted mean power per rack, the ranking
// signal the greedy planner uses.
func (p Problem) meanPower() []float64 {
	n := p.N()
	mean := make([]float64, n)
	var wsum float64
	for _, s := range p.Scenarios {
		wsum += s.Weight
		for r, v := range s.Power {
			mean[r] += s.Weight * v
		}
	}
	for r := range mean {
		mean[r] /= wsum
	}
	return mean
}

// Greedy is Algorithm 5: rank locations by how strongly they heat the rest
// of the room (column sums of the rise operator — the "recirculation effect
// on others") and racks by power, then pair the most power-hungry rack with
// the least-recirculating location, and so on.
func Greedy(p Problem) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	colSum := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += p.Rise.At(i, j)
		}
		colSum[j] = s
	}
	locs := make([]int, n)
	racks := make([]int, n)
	for i := range locs {
		locs[i] = i
		racks[i] = i
	}
	sort.Slice(locs, func(a, b int) bool { return colSum[locs[a]] < colSum[locs[b]] })
	mean := p.meanPower()
	sort.Slice(racks, func(a, b int) bool { return mean[racks[a]] > mean[racks[b]] })
	out := make(Assignment, n)
	for k := 0; k < n; k++ {
		out[locs[k]] = racks[k]
	}
	return out, nil
}

// LocalSearch is Algorithm 6: starting from start (or a random permutation
// when nil), repeatedly try random pairwise swaps and keep improvements.
func LocalSearch(p Problem, start Assignment, iters int, rng *rand.Rand) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	cur := start.Clone()
	if cur == nil {
		cur = randomAssignment(n, rng)
	}
	if !cur.Valid() || len(cur) != n {
		return nil, errors.New("layout: invalid starting assignment")
	}
	e := newEvaluator(p)
	best := e.reset(cur)
	for k := 0; k < iters; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		c := e.swapCost(cur, i, j)
		accept := c <= best-costWindow
		if !accept && c <= best+costWindow {
			// Near-tie: resolve the ≤ exactly as the full recompute would.
			if cf := p.costSwapped(cur, i, j); cf <= p.Cost(cur) {
				accept = true
				c = cf
			}
		}
		if accept {
			best = c
			e.apply(cur, i, j)
		}
	}
	return cur, nil
}

// Anneal refines an assignment by simulated annealing — the large-instance
// stand-in for the paper's ILP. Starting from the greedy solution it
// accepts worsening swaps with Boltzmann probability under a geometric
// cooling schedule, then finishes with pure descent.
func Anneal(p Problem, iters int, rng *rand.Rand) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	cur, err := Greedy(p)
	if err != nil {
		return nil, err
	}
	e := newEvaluator(p)
	curCost := e.reset(cur)
	best := cur.Clone()
	bestCost := curCost
	temp := curCost * 0.1
	cooling := math.Pow(1e-3, 1/float64(max(iters, 1)))
	for k := 0; k < iters; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		c := e.swapCost(cur, i, j)
		// The Boltzmann draw happens only on worsening candidates, exactly
		// as before: the rng stream must not shift, and near-boundary
		// decisions are re-resolved with exact costs.
		accept := false
		switch {
		case c <= curCost-costWindow:
			accept = true
		case c <= curCost+costWindow:
			cf := p.costSwapped(cur, i, j)
			cuf := p.Cost(cur)
			c = cf
			accept = cf <= cuf || rng.Float64() < math.Exp((cuf-cf)/temp)
		default:
			u := rng.Float64()
			pr := math.Exp((curCost - c) / temp)
			if d := u - pr; math.Abs(d) > 2*costWindow/temp {
				accept = d < 0
			} else {
				cf := p.costSwapped(cur, i, j)
				c = cf
				accept = u < math.Exp((p.Cost(cur)-cf)/temp)
			}
		}
		if accept {
			curCost = c
			e.apply(cur, i, j)
			better := c < bestCost-costWindow
			if !better && c < bestCost+costWindow {
				// cur already includes the swap, so this is the exact
				// candidate cost; bestCost is exactly p.Cost(best).
				better = p.Cost(cur) < p.Cost(best)
			}
			if better {
				bestCost = c
				best = cur.Clone()
			}
		}
		temp *= cooling
	}
	// Final descent from the best state.
	out, err := LocalSearch(p, best, iters/2, rng)
	if err != nil {
		return nil, err
	}
	oc := p.Cost(out)
	better := oc < bestCost-costWindow
	if !better && oc < bestCost+costWindow {
		better = oc < p.Cost(best)
	}
	if better {
		return out, nil
	}
	return best, nil
}

// MaxExactN caps the exact solver's instance size; branch-and-bound over
// permutations is exponential.
const MaxExactN = 11

// Exact solves the instance optimally by branch-and-bound over
// assignments, pruning on the monotone partial-cost lower bound (placing
// more racks can only raise inlet temperatures, since the rise operator is
// non-negative). It refuses instances with more than MaxExactN racks.
func Exact(p Problem) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	if n > MaxExactN {
		return nil, fmt.Errorf("layout: exact solver capped at %d racks (got %d)", MaxExactN, n)
	}
	// Place racks in descending mean-power order for early pruning.
	mean := p.meanPower()
	rackOrder := make([]int, n)
	for i := range rackOrder {
		rackOrder[i] = i
	}
	sort.Slice(rackOrder, func(a, b int) bool { return mean[rackOrder[a]] > mean[rackOrder[b]] })

	// Partial rise per scenario per location.
	rises := make([][]float64, len(p.Scenarios))
	for s := range rises {
		rises[s] = make([]float64, n)
	}
	var wsum float64
	for _, s := range p.Scenarios {
		wsum += s.Weight
	}
	partialCost := func() float64 {
		var total float64
		for si, s := range p.Scenarios {
			m := 0.0
			for _, v := range rises[si] {
				if v > m {
					m = v
				}
			}
			total += s.Weight * m
		}
		return total / wsum
	}

	usedLoc := make([]bool, n)
	bestAssign := randomAssignment(n, rand.New(rand.NewSource(1)))
	// Seed the incumbent with greedy for tighter pruning.
	if g, err := Greedy(p); err == nil {
		bestAssign = g
	}
	bestCost := p.Cost(bestAssign)
	cur := make(Assignment, n)

	var rec func(k int)
	rec = func(k int) {
		if partialCost() >= bestCost {
			return
		}
		if k == n {
			if c := partialCost(); c < bestCost {
				bestCost = c
				bestAssign = cur.Clone()
			}
			return
		}
		rack := rackOrder[k]
		for loc := 0; loc < n; loc++ {
			if usedLoc[loc] {
				continue
			}
			usedLoc[loc] = true
			cur[loc] = rack
			for si, s := range p.Scenarios {
				pw := s.Power[rack]
				for i := 0; i < n; i++ {
					rises[si][i] += p.Rise.At(i, loc) * pw
				}
			}
			rec(k + 1)
			for si, s := range p.Scenarios {
				pw := s.Power[rack]
				for i := 0; i < n; i++ {
					rises[si][i] -= p.Rise.At(i, loc) * pw
				}
			}
			usedLoc[loc] = false
		}
	}
	rec(0)
	return bestAssign, nil
}

// RandomOblivious returns a heterogeneity-oblivious placement: a uniformly
// random permutation, the baseline the paper compares against.
func RandomOblivious(n int, rng *rand.Rand) Assignment {
	return randomAssignment(n, rng)
}

func randomAssignment(n int, rng *rand.Rand) Assignment {
	out := make(Assignment, n)
	for i, v := range rng.Perm(n) {
		out[i] = v
	}
	return out
}
