package layout

import (
	"math/rand"
	"testing"
)

// BenchmarkSwapCost measures the incremental candidate evaluation — the
// local-search inner loop. O(n·|S|), alloc-free.
func BenchmarkSwapCost(b *testing.B) {
	p := multiScenarioProblem(b, 4, 10, 1)
	n := p.N()
	rng := rand.New(rand.NewSource(2))
	cur := RandomOblivious(n, rng)
	e := newEvaluator(p)
	e.reset(cur)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.swapCost(cur, i%n, (i*7+3)%n)
	}
}

// BenchmarkLocalSearch measures the whole planner at the full-room size
// the Chapter 5 figures use.
func BenchmarkLocalSearch(b *testing.B) {
	p := smallProblem(b, 4, 10, 1)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LocalSearch(p, nil, 3000, rng); err != nil {
			b.Fatal(err)
		}
	}
}
