package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"powercap/internal/linalg"
	"powercap/internal/thermal"
)

// smallProblem builds an n-rack instance from a synthetic room with a
// heterogeneous power spread.
func smallProblem(t testing.TB, rows, perRow int, seed int64) Problem {
	t.Helper()
	l := thermal.Layout{Rows: rows, RacksPerRow: perRow}
	d, err := l.SynthesizeD()
	if err != nil {
		t.Fatal(err)
	}
	n := d.Rows()
	kInv := make([]float64, n)
	for i := range kInv {
		kInv[i] = 0.001
	}
	room, err := thermal.NewRoom(d, kInv, 24)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	power := make([]float64, n)
	for i := range power {
		power[i] = 3000 + rng.Float64()*7000
	}
	return Problem{Rise: room.RiseMatrix(), Scenarios: []Scenario{{Weight: 1, Power: power}}}
}

func TestValidate(t *testing.T) {
	if err := (Problem{}).Validate(); err == nil {
		t.Fatal("nil rise must be rejected")
	}
	p := smallProblem(t, 2, 4, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Problem{Rise: p.Rise, Scenarios: []Scenario{{Weight: 1, Power: []float64{1}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("wrong power length must be rejected")
	}
	neg := Problem{Rise: p.Rise, Scenarios: []Scenario{{Weight: -1, Power: p.Scenarios[0].Power}}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative weight must be rejected")
	}
	zero := Problem{Rise: p.Rise, Scenarios: []Scenario{{Weight: 0, Power: p.Scenarios[0].Power}}}
	if err := zero.Validate(); err == nil {
		t.Fatal("zero total weight must be rejected")
	}
}

func TestAssignmentValid(t *testing.T) {
	if !(Assignment{2, 0, 1}).Valid() {
		t.Fatal("permutation must be valid")
	}
	if (Assignment{0, 0, 1}).Valid() {
		t.Fatal("duplicate must be invalid")
	}
	if (Assignment{0, 3, 1}).Valid() {
		t.Fatal("out of range must be invalid")
	}
}

func TestGreedyProducesValidAssignment(t *testing.T) {
	p := smallProblem(t, 2, 5, 2)
	a, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Valid() {
		t.Fatal("greedy must return a permutation")
	}
}

func TestGreedyBeatsRandomOnAverage(t *testing.T) {
	// Needs a room large enough to have interior/edge structure for the
	// ranking to exploit; tiny rooms are all edge.
	p := smallProblem(t, 4, 10, 3)
	g, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	gc := p.Cost(g)
	rng := rand.New(rand.NewSource(4))
	var worse int
	const trials = 50
	for i := 0; i < trials; i++ {
		if p.Cost(RandomOblivious(p.N(), rng)) >= gc {
			worse++
		}
	}
	if worse < trials*3/4 {
		t.Fatalf("greedy must beat at least 75%% of random placements, beat %d/%d", worse, trials)
	}
}

func TestLocalSearchImprovesStart(t *testing.T) {
	p := smallProblem(t, 2, 5, 5)
	rng := rand.New(rand.NewSource(6))
	start := RandomOblivious(p.N(), rng)
	startCost := p.Cost(start)
	improved, err := LocalSearch(p, start, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !improved.Valid() {
		t.Fatal("local search must return a permutation")
	}
	if p.Cost(improved) > startCost {
		t.Fatal("local search must never worsen its start")
	}
}

func TestLocalSearchInvalidStart(t *testing.T) {
	p := smallProblem(t, 2, 4, 7)
	rng := rand.New(rand.NewSource(8))
	if _, err := LocalSearch(p, Assignment{0, 0, 1}, 10, rng); err == nil {
		t.Fatal("invalid start must be rejected")
	}
}

func TestExactOptimalOnTinyInstances(t *testing.T) {
	// Exhaustive cross-check on 6 racks.
	p := smallProblem(t, 2, 3, 9)
	a, err := Exact(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Valid() {
		t.Fatal("exact must return a permutation")
	}
	best := p.Cost(a)
	perm := make(Assignment, p.N())
	var rec func(k int, used []bool)
	found := false
	rec = func(k int, used []bool) {
		if k == p.N() {
			if c := p.Cost(perm); c < best-1e-12 {
				found = true
			}
			return
		}
		for r := 0; r < p.N(); r++ {
			if used[r] {
				continue
			}
			used[r] = true
			perm[k] = r
			rec(k+1, used)
			used[r] = false
		}
	}
	rec(0, make([]bool, p.N()))
	if found {
		t.Fatal("exhaustive search found a better assignment than Exact")
	}
}

func TestExactBeatsHeuristics(t *testing.T) {
	p := smallProblem(t, 2, 4, 10)
	rng := rand.New(rand.NewSource(11))
	ex, err := Exact(p)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := Greedy(p)
	ls, _ := LocalSearch(p, nil, 3000, rng)
	if p.Cost(ex) > p.Cost(g)+1e-12 {
		t.Fatal("exact must not lose to greedy")
	}
	if p.Cost(ex) > p.Cost(ls)+1e-12 {
		t.Fatal("exact must not lose to local search")
	}
}

func TestExactRefusesLargeInstances(t *testing.T) {
	p := smallProblem(t, 4, 10, 12)
	if _, err := Exact(p); err == nil {
		t.Fatal("exact must refuse 40 racks")
	}
}

func TestAnnealAtLeastAsGoodAsGreedy(t *testing.T) {
	p := smallProblem(t, 3, 5, 13)
	rng := rand.New(rand.NewSource(14))
	an, err := Anneal(p, 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := Greedy(p)
	if !an.Valid() {
		t.Fatal("anneal must return a permutation")
	}
	if p.Cost(an) > p.Cost(g)+1e-12 {
		t.Fatalf("anneal (%v) must not lose to its greedy start (%v)", p.Cost(an), p.Cost(g))
	}
}

func TestProbabilisticScenariosChangeOptimum(t *testing.T) {
	// Two scenarios weighting different racks as hot: the weighted cost
	// must differ from either single-scenario cost for a fixed layout.
	p := smallProblem(t, 2, 3, 15)
	n := p.N()
	powA := make([]float64, n)
	powB := make([]float64, n)
	for i := range powA {
		powA[i] = 3000
		powB[i] = 3000
	}
	powA[0] = 10000
	powB[n-1] = 10000
	probA := Problem{Rise: p.Rise, Scenarios: []Scenario{{Weight: 1, Power: powA}}}
	probAB := Problem{Rise: p.Rise, Scenarios: []Scenario{{Weight: 1, Power: powA}, {Weight: 1, Power: powB}}}
	a := Assignment{0, 1, 2, 3, 4, 5}
	ca := probA.Cost(a)
	cab := probAB.Cost(a)
	if ca == cab {
		t.Fatal("mixed scenarios must change the cost")
	}
	// Weighted cost must lie between the two single-scenario costs.
	probB := Problem{Rise: p.Rise, Scenarios: []Scenario{{Weight: 1, Power: powB}}}
	cb := probB.Cost(a)
	lo, hi := ca, cb
	if lo > hi {
		lo, hi = hi, lo
	}
	if cab < lo-1e-12 || cab > hi+1e-12 {
		t.Fatalf("mixed cost %v outside [%v, %v]", cab, lo, hi)
	}
}

// Property: every planner returns a valid permutation whose cost is finite
// and positive, and local search never worsens greedy when seeded with it.
func TestPlannersWellBehavedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := smallProblem(t, 2, 3+rng.Intn(3), seed)
		g, err := Greedy(p)
		if err != nil || !g.Valid() {
			return false
		}
		ls, err := LocalSearch(p, g, 500, rng)
		if err != nil || !ls.Valid() {
			return false
		}
		return p.Cost(ls) <= p.Cost(g)+1e-12 && p.Cost(ls) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCostMatchesManualComputation(t *testing.T) {
	// 2×2 hand-checked instance.
	rise := linalg.NewFromRows([][]float64{{0.001, 0.002}, {0.003, 0.0005}})
	p := Problem{Rise: rise, Scenarios: []Scenario{{Weight: 1, Power: []float64{1000, 2000}}}}
	// Assignment [0,1]: q = [1000, 2000]; rise = [1+4, 3+1] = [5, 4] → 5.
	if got := p.Cost(Assignment{0, 1}); got != 5 {
		t.Fatalf("cost = %v, want 5", got)
	}
	// Assignment [1,0]: q = [2000, 1000]; rise = [2+2, 6+0.5] = [4, 6.5] → 6.5.
	if got := p.Cost(Assignment{1, 0}); got != 6.5 {
		t.Fatalf("cost = %v, want 6.5", got)
	}
}
