package dessim

import (
	"testing"
)

func baseConfig(lambda float64, seed int64) Config {
	return Config{
		Types:          Table51(80, 40),
		ArrivalRate:    lambda,
		MeanJobSeconds: 120,
		Horizon:        6000,
		Seed:           seed,
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config must error")
	}
	c := baseConfig(8, 1)
	c.ArrivalRate = 0
	if _, err := Run(c); err == nil {
		t.Fatal("zero arrival rate must error")
	}
	c = baseConfig(8, 1)
	c.WarmupFraction = 1
	if _, err := Run(c); err == nil {
		t.Fatal("warmup=1 must error")
	}
	c = baseConfig(8, 1)
	c.Types = []ServerType{{Name: "x", Count: 0, SpeedFactor: 1}}
	if _, err := Run(c); err == nil {
		t.Fatal("zero-count type must error")
	}
}

func TestUtilizationIncreasesWithArrivalRate(t *testing.T) {
	var prev float64 = -1
	for _, lambda := range []float64{8, 16, 24} {
		res, err := Run(baseConfig(lambda, 7))
		if err != nil {
			t.Fatal(err)
		}
		var mean float64
		for _, u := range res.Utilization {
			mean += u
		}
		mean /= float64(len(res.Utilization))
		if mean <= prev {
			t.Fatalf("λ=%v: mean utilization %v did not increase from %v", lambda, mean, prev)
		}
		prev = mean
	}
}

func TestGreedySchedulerPrefersEfficientType(t *testing.T) {
	// At low load, the efficient type (D) must be used far more than the
	// least efficient (C), matching Fig. 5.3.
	res, err := Run(baseConfig(8, 3))
	if err != nil {
		t.Fatal(err)
	}
	types := Table51(80, 40)
	var uD, uC float64
	for i, st := range types {
		switch st.Name {
		case "D":
			uD = res.Utilization[i]
		case "C":
			uC = res.Utilization[i]
		}
	}
	if uD <= uC {
		t.Fatalf("efficient type D (%.3f) must be busier than C (%.3f) at low load", uD, uC)
	}
}

func TestUtilizationBounds(t *testing.T) {
	res, err := Run(baseConfig(24, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range res.Utilization {
		if u < 0 || u > 1 {
			t.Fatalf("type %d utilization %v out of [0,1]", i, u)
		}
	}
	if res.Completed <= 0 {
		t.Fatal("no jobs completed")
	}
	if res.MeanQueueLen < 0 {
		t.Fatal("negative queue length")
	}
}

func TestOverloadSaturates(t *testing.T) {
	// Offered load far above capacity: everything saturates and the queue
	// grows.
	cfg := baseConfig(200, 5)
	cfg.Horizon = 1500
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range res.Utilization {
		if u < 0.9 {
			t.Fatalf("type %d utilization %v under overload", i, u)
		}
	}
	if res.MeanQueueLen < 10 {
		t.Fatalf("queue must build under overload, got %v", res.MeanQueueLen)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, err := Run(baseConfig(12, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(12, 9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.MeanQueueLen != b.MeanQueueLen {
		t.Fatal("same seed must reproduce results")
	}
	for i := range a.Utilization {
		if a.Utilization[i] != b.Utilization[i] {
			t.Fatal("same seed must reproduce utilizations")
		}
	}
}

func TestTable51Shape(t *testing.T) {
	types := Table51(80, 40)
	if len(types) != 4 {
		t.Fatal("four server classes expected")
	}
	total := 0
	for _, st := range types {
		total += st.Count
	}
	if total != 3200 {
		t.Fatalf("total servers %d, want 3200", total)
	}
}
