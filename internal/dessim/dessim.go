// Package dessim is the discrete-event queueing simulator Chapter 5 uses
// to derive per-server-type utilizations: jobs arrive in a Poisson stream,
// are queued, and a greedy scheduler assigns each to the most
// energy-efficient free server (highest throughput per Watt), matching the
// scheduler of Section 5.3. The long-run utilization per server type feeds
// the probabilistic rack-layout optimization.
package dessim

import (
	"container/heap"
	"errors"
	"math/rand"
	"sort"
)

// ServerType describes one hardware class of Table 5.1.
type ServerType struct {
	Name string
	// Count is how many servers of this type exist.
	Count int
	// ThroughputPerWatt ranks scheduling preference (higher first).
	ThroughputPerWatt float64
	// SpeedFactor scales job service times (faster machines, shorter jobs).
	SpeedFactor float64
}

// Config configures a simulation run.
type Config struct {
	Types []ServerType
	// ArrivalRate λ is mean job arrivals per second.
	ArrivalRate float64
	// MeanJobSeconds is the mean service time on a SpeedFactor-1 server.
	MeanJobSeconds float64
	// Horizon is the simulated duration in seconds.
	Horizon float64
	// WarmupFraction of the horizon is excluded from statistics; 0 selects
	// 0.1.
	WarmupFraction float64
	Seed           int64
}

// Result reports the long-run statistics.
type Result struct {
	// Utilization is the mean busy fraction per server type, aligned with
	// Config.Types.
	Utilization []float64
	// Completed is the number of jobs that finished in the measured window.
	Completed int
	// MeanQueueLen is the time-averaged queue length.
	MeanQueueLen float64
}

type event struct {
	at   float64
	kind int // 0 arrival, 1 departure
	srv  int // server index for departures
}

type eventQueue []event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// rankHeap is a min-heap of free server indices ordered by scheduling
// preference rank.
type rankHeap struct {
	items []int
	rank  []int
}

func (h rankHeap) Len() int            { return len(h.items) }
func (h rankHeap) Less(i, j int) bool  { return h.rank[h.items[i]] < h.rank[h.items[j]] }
func (h rankHeap) Swap(i, j int)       { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *rankHeap) Push(x interface{}) { h.items = append(h.items, x.(int)) }
func (h *rankHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	v := old[n-1]
	h.items = old[:n-1]
	return v
}

// Run executes the simulation.
func Run(cfg Config) (Result, error) {
	if len(cfg.Types) == 0 {
		return Result{}, errors.New("dessim: no server types")
	}
	if cfg.ArrivalRate <= 0 || cfg.MeanJobSeconds <= 0 || cfg.Horizon <= 0 {
		return Result{}, errors.New("dessim: rates and horizon must be positive")
	}
	if cfg.WarmupFraction == 0 {
		cfg.WarmupFraction = 0.1
	}
	if cfg.WarmupFraction < 0 || cfg.WarmupFraction >= 1 {
		return Result{}, errors.New("dessim: warmup fraction must lie in [0,1)")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Flatten servers; order them by scheduling preference once.
	type server struct {
		typeIdx int
		speed   float64
		busy    bool
		// busySince tracks the start of the current busy period.
		busySince float64
	}
	var servers []server
	for ti, st := range cfg.Types {
		if st.Count <= 0 || st.SpeedFactor <= 0 {
			return Result{}, errors.New("dessim: invalid server type")
		}
		for k := 0; k < st.Count; k++ {
			servers = append(servers, server{typeIdx: ti, speed: st.SpeedFactor})
		}
	}
	// Preference rank: highest throughput/Watt first (greedy scheduler).
	// A min-heap of free servers keyed by rank makes each placement O(log n).
	rank := make([]int, len(servers))
	order := make([]int, len(servers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cfg.Types[servers[order[a]].typeIdx].ThroughputPerWatt >
			cfg.Types[servers[order[b]].typeIdx].ThroughputPerWatt
	})
	for r, si := range order {
		rank[si] = r
	}
	free := &rankHeap{rank: rank}
	for _, si := range order {
		free.items = append(free.items, si) // already in rank order
	}

	warmEnd := cfg.Horizon * cfg.WarmupFraction
	busyTime := make([]float64, len(cfg.Types))
	var queue int
	var queueArea float64
	lastT := 0.0
	completed := 0

	q := &eventQueue{}
	heap.Push(q, event{at: rng.ExpFloat64() / cfg.ArrivalRate, kind: 0})

	startJob := func(now float64) bool {
		if free.Len() == 0 {
			return false
		}
		si := heap.Pop(free).(int)
		servers[si].busy = true
		servers[si].busySince = now
		dur := rng.ExpFloat64() * cfg.MeanJobSeconds / servers[si].speed
		heap.Push(q, event{at: now + dur, kind: 1, srv: si})
		return true
	}

	for q.Len() > 0 {
		ev := heap.Pop(q).(event)
		if ev.at > cfg.Horizon {
			break
		}
		// Accumulate queue-length area in the measured window.
		if ev.at > warmEnd {
			from := lastT
			if from < warmEnd {
				from = warmEnd
			}
			queueArea += float64(queue) * (ev.at - from)
		}
		lastT = ev.at
		switch ev.kind {
		case 0: // arrival
			if !startJob(ev.at) {
				queue++
			}
			heap.Push(q, event{at: ev.at + rng.ExpFloat64()/cfg.ArrivalRate, kind: 0})
		case 1: // departure
			s := &servers[ev.srv]
			start := s.busySince
			if start < warmEnd {
				start = warmEnd
			}
			if ev.at > warmEnd {
				busyTime[s.typeIdx] += ev.at - start
				completed++
			}
			s.busy = false
			heap.Push(free, ev.srv)
			if queue > 0 {
				queue--
				startJob(ev.at)
			}
		}
	}
	// Account for servers still busy at the horizon.
	for _, s := range servers {
		if s.busy {
			start := s.busySince
			if start < warmEnd {
				start = warmEnd
			}
			if cfg.Horizon > start {
				busyTime[s.typeIdx] += cfg.Horizon - start
			}
		}
	}

	window := cfg.Horizon - warmEnd
	util := make([]float64, len(cfg.Types))
	for ti, st := range cfg.Types {
		util[ti] = busyTime[ti] / (window * float64(st.Count))
		if util[ti] > 1 {
			util[ti] = 1
		}
	}
	return Result{
		Utilization:  util,
		Completed:    completed,
		MeanQueueLen: queueArea / window,
	}, nil
}

// Table51 is the four-class server mix of Table 5.1, with efficiency
// ranking D > B > A > C (server D is the most energy-efficient, so the
// greedy scheduler fills it first — the behaviour Fig. 5.3 shows).
func Table51(racks, serversPerRack int) []ServerType {
	per := racks * serversPerRack / 4
	return []ServerType{
		{Name: "A", Count: per, ThroughputPerWatt: 0.055, SpeedFactor: 0.95},
		{Name: "B", Count: per, ThroughputPerWatt: 0.070, SpeedFactor: 1.0},
		{Name: "C", Count: per, ThroughputPerWatt: 0.045, SpeedFactor: 1.1},
		{Name: "D", Count: per, ThroughputPerWatt: 0.085, SpeedFactor: 1.05},
	}
}
