// Package dessim is the discrete-event queueing simulator Chapter 5 uses
// to derive per-server-type utilizations: jobs arrive in a Poisson stream,
// are queued, and a greedy scheduler assigns each to the most
// energy-efficient free server (highest throughput per Watt), matching the
// scheduler of Section 5.3. The long-run utilization per server type feeds
// the probabilistic rack-layout optimization.
//
// The simulator is an internal/des EventSource: Run drives a Sim to its
// horizon on a des.Scheduler, and a Sim can equally be merged with other
// sources (cluster dynamics, link delays) under one shared clock. The
// event queue is the des 4-ary arena heap — the old container/heap queue,
// which boxed every event into an interface on push, is gone.
package dessim

import (
	"errors"
	"math/rand"
	"sort"

	"powercap/internal/des"
)

// ServerType describes one hardware class of Table 5.1.
type ServerType struct {
	Name string
	// Count is how many servers of this type exist.
	Count int
	// ThroughputPerWatt ranks scheduling preference (higher first).
	ThroughputPerWatt float64
	// SpeedFactor scales job service times (faster machines, shorter jobs).
	SpeedFactor float64
}

// Config configures a simulation run.
type Config struct {
	Types []ServerType
	// ArrivalRate λ is mean job arrivals per second.
	ArrivalRate float64
	// MeanJobSeconds is the mean service time on a SpeedFactor-1 server.
	MeanJobSeconds float64
	// Horizon is the simulated duration in seconds.
	Horizon float64
	// WarmupFraction of the horizon is excluded from statistics; 0 selects
	// 0.1.
	WarmupFraction float64
	Seed           int64
}

// Result reports the long-run statistics.
type Result struct {
	// Utilization is the mean busy fraction per server type, aligned with
	// Config.Types.
	Utilization []float64
	// Completed is the number of jobs that finished in the measured window.
	Completed int
	// MeanQueueLen is the time-averaged queue length.
	MeanQueueLen float64
}

// Event kinds on the des queue.
const (
	kindArrival   = 0
	kindDeparture = 1
)

type server struct {
	typeIdx int
	speed   float64
	busy    bool
	// busySince tracks the start of the current busy period.
	busySince float64
}

// freeHeap is an inlined min-heap of free server indices ordered by
// scheduling preference rank (rank is a permutation, so keys are unique and
// the pop order is identical to the old container/heap version — without
// the interface boxing on every push).
type freeHeap struct {
	items []int
	rank  []int
}

func (h *freeHeap) push(si int) {
	h.items = append(h.items, si)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.rank[h.items[i]] >= h.rank[h.items[p]] {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *freeHeap) pop() int {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.rank[h.items[c+1]] < h.rank[h.items[c]] {
			c++
		}
		if h.rank[h.items[i]] <= h.rank[h.items[c]] {
			break
		}
		h.items[i], h.items[c] = h.items[c], h.items[i]
		i = c
	}
	return top
}

// Sim is a running queueing simulation, exposed as a des.EventSource so it
// can share a clock with other simulators. Create with NewSim, drive with
// a des.Scheduler (or Run), read statistics with Result.
type Sim struct {
	cfg     Config
	rng     *rand.Rand
	q       des.Heap
	free    freeHeap
	servers []server

	warmEnd   float64
	busyTime  []float64
	queue     int
	queueArea float64
	lastT     float64
	completed int
	// done latches once an event beyond the horizon is popped; remaining
	// events stay unprocessed, exactly like the old loop's break.
	done bool
}

// NewSim validates the config and builds the simulator with its first
// arrival scheduled.
func NewSim(cfg Config) (*Sim, error) {
	if len(cfg.Types) == 0 {
		return nil, errors.New("dessim: no server types")
	}
	if cfg.ArrivalRate <= 0 || cfg.MeanJobSeconds <= 0 || cfg.Horizon <= 0 {
		return nil, errors.New("dessim: rates and horizon must be positive")
	}
	if cfg.WarmupFraction == 0 {
		cfg.WarmupFraction = 0.1
	}
	if cfg.WarmupFraction < 0 || cfg.WarmupFraction >= 1 {
		return nil, errors.New("dessim: warmup fraction must lie in [0,1)")
	}
	s := &Sim{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		warmEnd: cfg.Horizon * cfg.WarmupFraction,
	}

	// Flatten servers; order them by scheduling preference once.
	for ti, st := range cfg.Types {
		if st.Count <= 0 || st.SpeedFactor <= 0 {
			return nil, errors.New("dessim: invalid server type")
		}
		for k := 0; k < st.Count; k++ {
			s.servers = append(s.servers, server{typeIdx: ti, speed: st.SpeedFactor})
		}
	}
	// Preference rank: highest throughput/Watt first (greedy scheduler).
	// A min-heap of free servers keyed by rank makes each placement O(log n).
	rank := make([]int, len(s.servers))
	order := make([]int, len(s.servers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cfg.Types[s.servers[order[a]].typeIdx].ThroughputPerWatt >
			cfg.Types[s.servers[order[b]].typeIdx].ThroughputPerWatt
	})
	for r, si := range order {
		rank[si] = r
	}
	s.free = freeHeap{items: order, rank: rank} // ascending ranks are heap-ordered
	s.busyTime = make([]float64, len(cfg.Types))

	s.q.Grow(len(s.servers) + 2)
	s.q.Push(des.Item{Time: s.rng.ExpFloat64() / cfg.ArrivalRate, Kind: kindArrival})
	return s, nil
}

// HasPendingEvents implements des.EventSource.
func (s *Sim) HasPendingEvents() bool { return !s.done && s.q.Len() > 0 }

// PeekNextEventTime implements des.EventSource.
func (s *Sim) PeekNextEventTime() float64 { return s.q.PeekTime() }

// startJob places a queued-or-arriving job on the best free server and
// schedules its departure. Returns false when every server is busy.
func (s *Sim) startJob(now float64) bool {
	if len(s.free.items) == 0 {
		return false
	}
	si := s.free.pop()
	s.servers[si].busy = true
	s.servers[si].busySince = now
	dur := s.rng.ExpFloat64() * s.cfg.MeanJobSeconds / s.servers[si].speed
	s.q.Push(des.Item{Time: now + dur, Kind: kindDeparture, Node: int32(si)})
	return true
}

// ProcessNextEvent implements des.EventSource: one arrival or departure.
// Popping the first event beyond the horizon ends the run without
// processing it.
func (s *Sim) ProcessNextEvent() error {
	ev := s.q.Pop()
	if ev.Time > s.cfg.Horizon {
		s.done = true
		return nil
	}
	// Accumulate queue-length area in the measured window.
	if ev.Time > s.warmEnd {
		from := s.lastT
		if from < s.warmEnd {
			from = s.warmEnd
		}
		s.queueArea += float64(s.queue) * (ev.Time - from)
	}
	s.lastT = ev.Time
	switch ev.Kind {
	case kindArrival:
		if !s.startJob(ev.Time) {
			s.queue++
		}
		s.q.Push(des.Item{Time: ev.Time + s.rng.ExpFloat64()/s.cfg.ArrivalRate, Kind: kindArrival})
	case kindDeparture:
		srv := &s.servers[ev.Node]
		start := srv.busySince
		if start < s.warmEnd {
			start = s.warmEnd
		}
		if ev.Time > s.warmEnd {
			s.busyTime[srv.typeIdx] += ev.Time - start
			s.completed++
		}
		srv.busy = false
		s.free.push(int(ev.Node))
		if s.queue > 0 {
			s.queue--
			s.startJob(ev.Time)
		}
	}
	return nil
}

// Result finalizes the long-run statistics. Servers still busy at the
// horizon are accounted up to it; the Sim itself is left untouched, so
// Result may be called repeatedly.
func (s *Sim) Result() Result {
	util := make([]float64, len(s.cfg.Types))
	copy(util, s.busyTime)
	for _, srv := range s.servers {
		if srv.busy {
			start := srv.busySince
			if start < s.warmEnd {
				start = s.warmEnd
			}
			if s.cfg.Horizon > start {
				util[srv.typeIdx] += s.cfg.Horizon - start
			}
		}
	}
	window := s.cfg.Horizon - s.warmEnd
	for ti, st := range s.cfg.Types {
		util[ti] /= window * float64(st.Count)
		if util[ti] > 1 {
			util[ti] = 1
		}
	}
	return Result{
		Utilization:  util,
		Completed:    s.completed,
		MeanQueueLen: s.queueArea / window,
	}
}

// Run executes the simulation to its horizon on a dedicated scheduler.
func Run(cfg Config) (Result, error) {
	sim, err := NewSim(cfg)
	if err != nil {
		return Result{}, err
	}
	sc := des.NewScheduler(sim)
	if err := sc.Run(); err != nil {
		return Result{}, err
	}
	return sim.Result(), nil
}

// Table51 is the four-class server mix of Table 5.1, with efficiency
// ranking D > B > A > C (server D is the most energy-efficient, so the
// greedy scheduler fills it first — the behaviour Fig. 5.3 shows).
func Table51(racks, serversPerRack int) []ServerType {
	per := racks * serversPerRack / 4
	return []ServerType{
		{Name: "A", Count: per, ThroughputPerWatt: 0.055, SpeedFactor: 0.95},
		{Name: "B", Count: per, ThroughputPerWatt: 0.070, SpeedFactor: 1.0},
		{Name: "C", Count: per, ThroughputPerWatt: 0.045, SpeedFactor: 1.1},
		{Name: "D", Count: per, ThroughputPerWatt: 0.085, SpeedFactor: 1.05},
	}
}
