package dessim

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// The des-core port must not move a digit: runLegacy below is the
// pre-port implementation (container/heap event queue, interface-boxed
// rank heap) kept verbatim as the reference, and the property test checks
// Result equality — float bits included — across random configurations.

type legacyEvent struct {
	at   float64
	kind int
	srv  int
}

type legacyQueue []legacyEvent

func (q legacyQueue) Len() int            { return len(q) }
func (q legacyQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q legacyQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *legacyQueue) Push(x interface{}) { *q = append(*q, x.(legacyEvent)) }
func (q *legacyQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type legacyRankHeap struct {
	items []int
	rank  []int
}

func (h legacyRankHeap) Len() int            { return len(h.items) }
func (h legacyRankHeap) Less(i, j int) bool  { return h.rank[h.items[i]] < h.rank[h.items[j]] }
func (h legacyRankHeap) Swap(i, j int)       { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *legacyRankHeap) Push(x interface{}) { h.items = append(h.items, x.(int)) }
func (h *legacyRankHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	v := old[n-1]
	h.items = old[:n-1]
	return v
}

func runLegacy(cfg Config) (Result, error) {
	if cfg.WarmupFraction == 0 {
		cfg.WarmupFraction = 0.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	type server struct {
		typeIdx   int
		speed     float64
		busy      bool
		busySince float64
	}
	var servers []server
	for ti, st := range cfg.Types {
		for k := 0; k < st.Count; k++ {
			servers = append(servers, server{typeIdx: ti, speed: st.SpeedFactor})
		}
	}
	rank := make([]int, len(servers))
	order := make([]int, len(servers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cfg.Types[servers[order[a]].typeIdx].ThroughputPerWatt >
			cfg.Types[servers[order[b]].typeIdx].ThroughputPerWatt
	})
	for r, si := range order {
		rank[si] = r
	}
	free := &legacyRankHeap{rank: rank}
	for _, si := range order {
		free.items = append(free.items, si)
	}

	warmEnd := cfg.Horizon * cfg.WarmupFraction
	busyTime := make([]float64, len(cfg.Types))
	var queue int
	var queueArea float64
	lastT := 0.0
	completed := 0

	q := &legacyQueue{}
	heap.Push(q, legacyEvent{at: rng.ExpFloat64() / cfg.ArrivalRate, kind: 0})

	startJob := func(now float64) bool {
		if free.Len() == 0 {
			return false
		}
		si := heap.Pop(free).(int)
		servers[si].busy = true
		servers[si].busySince = now
		dur := rng.ExpFloat64() * cfg.MeanJobSeconds / servers[si].speed
		heap.Push(q, legacyEvent{at: now + dur, kind: 1, srv: si})
		return true
	}

	for q.Len() > 0 {
		ev := heap.Pop(q).(legacyEvent)
		if ev.at > cfg.Horizon {
			break
		}
		if ev.at > warmEnd {
			from := lastT
			if from < warmEnd {
				from = warmEnd
			}
			queueArea += float64(queue) * (ev.at - from)
		}
		lastT = ev.at
		switch ev.kind {
		case 0:
			if !startJob(ev.at) {
				queue++
			}
			heap.Push(q, legacyEvent{at: ev.at + rng.ExpFloat64()/cfg.ArrivalRate, kind: 0})
		case 1:
			s := &servers[ev.srv]
			start := s.busySince
			if start < warmEnd {
				start = warmEnd
			}
			if ev.at > warmEnd {
				busyTime[s.typeIdx] += ev.at - start
				completed++
			}
			s.busy = false
			heap.Push(free, ev.srv)
			if queue > 0 {
				queue--
				startJob(ev.at)
			}
		}
	}
	for _, s := range servers {
		if s.busy {
			start := s.busySince
			if start < warmEnd {
				start = warmEnd
			}
			if cfg.Horizon > start {
				busyTime[s.typeIdx] += cfg.Horizon - start
			}
		}
	}

	window := cfg.Horizon - warmEnd
	util := make([]float64, len(cfg.Types))
	for ti, st := range cfg.Types {
		util[ti] = busyTime[ti] / (window * float64(st.Count))
		if util[ti] > 1 {
			util[ti] = 1
		}
	}
	return Result{
		Utilization:  util,
		Completed:    completed,
		MeanQueueLen: queueArea / window,
	}, nil
}

func resultsEqual(a, b Result) bool {
	if a.Completed != b.Completed || a.MeanQueueLen != b.MeanQueueLen {
		return false
	}
	if len(a.Utilization) != len(b.Utilization) {
		return false
	}
	for i := range a.Utilization {
		if a.Utilization[i] != b.Utilization[i] {
			return false
		}
	}
	return true
}

// TestPortBitwiseIdenticalToLegacy: the des-core Run reproduces the
// container/heap implementation bit for bit across random loads, mixes,
// horizons, and seeds.
func TestPortBitwiseIdenticalToLegacy(t *testing.T) {
	f := func(seed int64, loadPct uint8, mix uint8, horizonK uint8) bool {
		cfg := Config{
			Types:          Table51(8, 4+int(mix%5)*4),
			ArrivalRate:    0.5 + float64(loadPct%200)/10,
			MeanJobSeconds: 30 + float64(mix%7)*20,
			Horizon:        500 + float64(horizonK%8)*250,
			Seed:           seed,
		}
		want, err := runLegacy(cfg)
		if err != nil {
			return false
		}
		got, err := Run(cfg)
		if err != nil {
			return false
		}
		return resultsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPortBitwiseIdenticalPaperConfig: the exact configuration the pinned
// fig5.3/fig5.7 tables run (Table 5.1 mix) stays byte-identical too.
func TestPortBitwiseIdenticalPaperConfig(t *testing.T) {
	for _, lambda := range []float64{8, 12, 16, 20, 24} {
		cfg := Config{
			Types:          Table51(80, 10),
			ArrivalRate:    lambda * 10 / 40,
			MeanJobSeconds: 120,
			Horizon:        3000,
			Seed:           1,
		}
		want, err := runLegacy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(got, want) {
			t.Fatalf("λ=%v: port diverges: got %+v want %+v", lambda, got, want)
		}
	}
}

// TestProcessNextEventZeroAlloc: the simulator's hot path on the des arena
// heap must not allocate in steady state.
func TestProcessNextEventZeroAlloc(t *testing.T) {
	sim, err := NewSim(Config{
		Types:          Table51(8, 8),
		ArrivalRate:    10,
		MeanJobSeconds: 60,
		Horizon:        1e9,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: fill the queue and the heap arenas.
	for i := 0; i < 10000; i++ {
		if err := sim.ProcessNextEvent(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5000, func() {
		if err := sim.ProcessNextEvent(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ProcessNextEvent allocated %v allocs/op, want 0", allocs)
	}
}
