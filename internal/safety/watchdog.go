// Package safety provides the cluster cap-safety watchdog: a runtime
// invariant monitor for ΣP ≤ B, the guarantee the budgeting layer proves
// at the cap level but hardware only honors if the enforcement loop is fed
// honest measurements. The watchdog sits after the per-sensor robust
// filter (internal/sensor), evaluates the filtered total against the
// budget every control period, and on a violation derates every cap
// proportionally — an emergency shed in the spirit of the agents'
// emergencyShedMarginW over-shed (internal/diba), sized so the next
// period lands safely below the budget, not exactly on it. The shed is
// released with hysteresis: only after ReleasePeriods consecutive clean
// periods does the derate step back toward 1, so a marginal sensor cannot
// flap the cluster between shed and release.
package safety

import "math"

// shedMarginFrac is the default fraction of the budget the emergency shed
// undershoots by. Like diba's emergencyShedMarginW, the margin makes the
// move strictly safe rather than boundary-exact; it is relative here
// because the watchdog sheds a whole cluster, not one node's watts.
const shedMarginFrac = 0.02

// derateFloor bounds how far the watchdog can cut caps (it must never
// derate below a server's ability to idle; the capping layer clamps to
// idle anyway, this keeps the arithmetic sane on garbage totals).
const derateFloor = 0.05

// Config tunes a Watchdog. The zero value selects all defaults.
type Config struct {
	// MarginFrac is the shed undershoot: a violation derates caps so the
	// filtered total lands at (1−MarginFrac)·B. 0 selects 0.02.
	MarginFrac float64
	// ReleasePeriods is how many consecutive clean periods must pass before
	// the derate starts stepping back toward 1. 0 selects 5.
	ReleasePeriods int
	// ReleaseFrac is the fraction of the remaining shed restored per clean
	// period once release starts. 0 selects 0.5.
	ReleaseFrac float64
	// ToleranceW is the absolute slack before ΣP > B counts as a violation
	// (measurement granularity). 0 selects 1e-6.
	ToleranceW float64
}

func (c Config) withDefaults() Config {
	if c.MarginFrac <= 0 {
		c.MarginFrac = shedMarginFrac
	}
	if c.ReleasePeriods <= 0 {
		c.ReleasePeriods = 5
	}
	if c.ReleaseFrac <= 0 {
		c.ReleaseFrac = 0.5
	}
	if c.ToleranceW <= 0 {
		c.ToleranceW = 1e-6
	}
	return c
}

// Stats counts what the watchdog saw and did.
type Stats struct {
	// Periods is how many control periods were observed.
	Periods int
	// Violations is how many periods had filteredTotal > budget + tol.
	Violations int
	// Sustained is how many of those immediately followed another
	// violation — the count the acceptance criterion requires to be zero.
	Sustained int
	// Sheds is how many periods tightened the derate.
	Sheds int
	// Releases is how many times the derate fully returned to 1.
	Releases int
	// MinDerate is the deepest cap derate ever applied (1 if never shed).
	MinDerate float64
}

// Watchdog is the invariant monitor. Drive it with one Observe call per
// control period; apply the returned derate to every cap for the next
// period. Not safe for concurrent use.
type Watchdog struct {
	cfg    Config
	derate float64
	clean  int
	inViol bool
	stats  Stats
}

// New builds a watchdog.
func New(cfg Config) *Watchdog {
	return &Watchdog{cfg: cfg.withDefaults(), derate: 1, stats: Stats{MinDerate: 1}}
}

// Observe evaluates one control period: filteredTotal is the robust-
// filtered ΣP, budget the active B. It returns the cap derate factor to
// apply next period and whether this period demands an emergency shed
// (violation detected — actuation should clamp hard to the derated caps
// rather than walk down one p-state at a time).
func (w *Watchdog) Observe(filteredTotal, budget float64) (derate float64, shed bool) {
	w.stats.Periods++
	if math.IsNaN(filteredTotal) || math.IsInf(filteredTotal, 0) || budget <= 0 {
		// A garbage total cannot prove safety: treat it as a violation and
		// shed to the margin (the filter layer should make this unreachable).
		filteredTotal = budget / derateFloor
	}
	if filteredTotal > budget+w.cfg.ToleranceW {
		w.stats.Violations++
		if w.inViol {
			w.stats.Sustained++
		}
		w.inViol = true
		w.clean = 0
		target := (1 - w.cfg.MarginFrac) * budget
		// filteredTotal was produced under the current derate; tighten
		// proportionally so next period's total lands at the target.
		next := w.derate * target / filteredTotal
		if next < derateFloor {
			next = derateFloor
		}
		if next < w.derate {
			w.derate = next
			w.stats.Sheds++
			if w.derate < w.stats.MinDerate {
				w.stats.MinDerate = w.derate
			}
		}
		return w.derate, true
	}
	w.inViol = false
	if w.derate < 1 {
		w.clean++
		if w.clean >= w.cfg.ReleasePeriods {
			w.derate += w.cfg.ReleaseFrac * (1 - w.derate)
			if 1-w.derate < 1e-9 {
				w.derate = 1
				w.clean = 0
				w.stats.Releases++
			}
		}
	}
	return w.derate, false
}

// Derate returns the derate currently in force.
func (w *Watchdog) Derate() float64 { return w.derate }

// Stats returns the counters so far.
func (w *Watchdog) Stats() Stats { return w.stats }
