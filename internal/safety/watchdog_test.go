package safety

import (
	"math"
	"testing"
)

func TestWatchdogQuietOnCleanPeriods(t *testing.T) {
	w := New(Config{})
	for i := 0; i < 100; i++ {
		d, shed := w.Observe(9500, 10000)
		if d != 1 || shed {
			t.Fatalf("period %d: derate %g shed %v on a clean cluster", i, d, shed)
		}
	}
	st := w.Stats()
	if st.Violations != 0 || st.Sheds != 0 || st.MinDerate != 1 {
		t.Fatalf("clean run stats %+v", st)
	}
}

func TestWatchdogShedsProportionallyOnViolation(t *testing.T) {
	w := New(Config{MarginFrac: 0.02})
	d, shed := w.Observe(10500, 10000)
	if !shed {
		t.Fatal("violation not flagged")
	}
	want := 0.98 * 10000 / 10500
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("derate %g, want %g", d, want)
	}
	// A deeper violation tightens further; a shallower one must NOT relax
	// the derate outside the release path.
	d2, _ := w.Observe(12000, 10000)
	if d2 >= d {
		t.Fatalf("deeper violation did not tighten: %g → %g", d, d2)
	}
	d3, _ := w.Observe(10001, 10000)
	if d3 > d2 {
		t.Fatalf("violation relaxed the derate: %g → %g", d2, d3)
	}
}

func TestWatchdogReleaseHysteresis(t *testing.T) {
	cfg := Config{MarginFrac: 0.02, ReleasePeriods: 5, ReleaseFrac: 0.5}
	w := New(cfg)
	w.Observe(10500, 10000)
	shedDerate := w.Derate()
	// Fewer clean periods than the hysteresis: no release yet.
	for i := 0; i < cfg.ReleasePeriods-1; i++ {
		if d, _ := w.Observe(9700, 10000); d != shedDerate {
			t.Fatalf("derate moved to %g after only %d clean periods", d, i+1)
		}
	}
	// The next clean period starts the geometric release...
	d, _ := w.Observe(9700, 10000)
	if d <= shedDerate {
		t.Fatalf("release did not start: derate still %g", d)
	}
	// ...and sustained clean periods restore derate = 1 exactly.
	for i := 0; i < 64 && w.Derate() != 1; i++ {
		w.Observe(9700, 10000)
	}
	if w.Derate() != 1 {
		t.Fatalf("derate %g never fully released", w.Derate())
	}
	if w.Stats().Releases != 1 {
		t.Fatalf("releases %d, want 1", w.Stats().Releases)
	}
}

func TestWatchdogCountsSustainedViolations(t *testing.T) {
	w := New(Config{})
	w.Observe(10500, 10000)
	w.Observe(10400, 10000) // second consecutive → sustained
	w.Observe(9000, 10000)
	w.Observe(10200, 10000) // isolated again
	st := w.Stats()
	if st.Violations != 3 || st.Sustained != 1 {
		t.Fatalf("stats %+v, want 3 violations of which 1 sustained", st)
	}
}

func TestWatchdogSurvivesGarbageTotals(t *testing.T) {
	w := New(Config{})
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		d, shed := w.Observe(v, 10000)
		if !shed || d <= 0 || d > 1 || math.IsNaN(d) {
			t.Fatalf("Observe(%v) → derate %g shed %v", v, d, shed)
		}
	}
}

func TestWatchdogDerateFloor(t *testing.T) {
	w := New(Config{})
	for i := 0; i < 50; i++ {
		w.Observe(1e9, 100)
	}
	if d := w.Derate(); d < derateFloor {
		t.Fatalf("derate %g fell through the floor", d)
	}
}
