package sensor

import (
	"math"
	"testing"
)

func TestMeterDeterministicPerSeedAndID(t *testing.T) {
	plan := DefaultChaos(7)
	a := NewMeter(plan, 3)
	b := NewMeter(plan, 3)
	c := NewMeter(plan, 4)
	same, diff := true, false
	for i := 0; i < 2000; i++ {
		va, vb, vc := a.Read(150), b.Read(150), c.Read(150)
		if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
			same = false
		}
		if va != vc {
			diff = true
		}
	}
	if !same {
		t.Error("two meters with the same (seed, id) diverged")
	}
	if !diff {
		t.Error("meters with different ids produced identical streams")
	}
}

func TestMeterInjectsEveryFaultClass(t *testing.T) {
	m := NewMeter(DefaultChaos(1), 0)
	var nans, exact, stuckRun, maxStuckRun int
	var prev float64
	for i := 0; i < 5000; i++ {
		v := m.Read(150)
		if math.IsNaN(v) {
			nans++
			stuckRun = 0
			continue
		}
		if i > 0 && v == prev {
			stuckRun++
			if stuckRun > maxStuckRun {
				maxStuckRun = stuckRun
			}
		} else {
			stuckRun = 0
		}
		if v == 150 {
			exact++
		}
		if b := m.Bias(); b > 0 || b < -0.10-1e-12 {
			t.Fatalf("drift bias %g outside [-0.10, 0]", b)
		}
		prev = v
	}
	if nans == 0 {
		t.Error("no dropouts injected in 5000 readings")
	}
	if maxStuckRun < 5 {
		t.Errorf("longest stuck run %d; want a real stuck episode", maxStuckRun)
	}
	// With quantization and downward drift, verbatim-true readings should be
	// rare after the bias accumulates.
	if exact > 2500 {
		t.Errorf("%d of 5000 readings exactly true; faults too weak", exact)
	}
}

func TestMeterDriftIsDownward(t *testing.T) {
	m := NewMeter(Plan{Seed: 2, DriftRel: 0.003, DriftMax: 0.10}, 0)
	for i := 0; i < 500; i++ {
		m.Read(150)
	}
	if b := m.Bias(); b > -0.05 {
		t.Errorf("bias %g after 500 readings; want the walk to have drifted down", b)
	}
	v := m.Read(150)
	if v >= 150 {
		t.Errorf("drifted meter read %g, want under-reading of 150", v)
	}
}

func TestMeterQuantization(t *testing.T) {
	m := NewMeter(Plan{Seed: 3, QuantStep: 0.5}, 0)
	for i := 0; i < 100; i++ {
		v := m.Read(151.3)
		if r := math.Mod(v, 0.5); math.Abs(r) > 1e-9 && math.Abs(r-0.5) > 1e-9 {
			t.Fatalf("reading %g not on the 0.5 W grid", v)
		}
	}
}

func TestPlanEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	if !(Plan{DropoutProb: 0.1}).Enabled() || !DefaultChaos(1).Enabled() {
		t.Error("non-zero plan reports disabled")
	}
}
