package sensor

import "math"

// Verdict classifies one reading after filtering.
type Verdict uint8

const (
	// VerdictOK: the reading passed every check unmodified.
	VerdictOK Verdict = iota
	// VerdictClamped: the reading was pulled into the plausible range.
	VerdictClamped
	// VerdictDespiked: the reading deviated too far from the window median
	// and was replaced by it.
	VerdictDespiked
	// VerdictDropped: the reading was non-finite (sensor dropout); the
	// output holds the last good value. Not trustworthy for control.
	VerdictDropped
	// VerdictDistrusted: the sensor persistently disagrees with the
	// actuation model (stuck or heavily biased); the output substitutes the
	// model expectation. Not trustworthy for control.
	VerdictDistrusted
)

func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictClamped:
		return "clamped"
	case VerdictDespiked:
		return "despiked"
	case VerdictDropped:
		return "dropped"
	case VerdictDistrusted:
		return "distrusted"
	}
	return "unknown"
}

// Reading is one filtered observation.
type Reading struct {
	// Raw is the value the sensor produced (possibly NaN).
	Raw float64
	// Value is the filtered estimate — always finite and in range.
	Value float64
	// Verdict classifies what the filter did.
	Verdict Verdict
	// Trusted reports whether Value is safe to base control decisions on.
	// Dropped and distrusted readings are not: their Value is a hold or a
	// model substitute, good for monitoring but not for stepping p-states.
	Trusted bool
}

// Filter is the robust per-sensor pipeline: range clamp → median-of-k
// despike → model-consistency check → EWMA with step reset. Zero-valued
// knobs select defaults via NewFilter. Not safe for concurrent use.
type Filter struct {
	// Min/Max bound physically plausible readings (the server's idle and
	// peak draw, with margin).
	Min, Max float64
	// Window is the despike median window length (default 5).
	Window int
	// SpikeRel is the relative deviation from the window median beyond
	// which a reading is treated as a spike and replaced (default 0.3).
	SpikeRel float64
	// Alpha is the EWMA smoothing factor (default 0.5).
	Alpha float64
	// ResetRel: an accepted value jumping more than this fraction from the
	// running EWMA snaps the EWMA to it instead of chasing it slowly — real
	// p-state changes must show up within one period (default 0.15).
	ResetRel float64
	// ConsistencyRel is the relative disagreement with the caller-supplied
	// model expectation that counts as suspicious (default 0.05).
	ConsistencyRel float64
	// ConsistencyRun is how many consecutive suspicious (or, symmetrically,
	// agreeing) readings flip the sensor into (or out of) distrust
	// (default 4). 0 disables the consistency check.
	ConsistencyRun int
	// MaxHold is how many consecutive dropouts are bridged by holding the
	// last good value before the sensor is distrusted outright (default 8).
	MaxHold int

	win      []float64
	winNext  int
	winLen   int
	scratch  []float64
	ewma     float64
	hasEwma  bool
	lastGood float64
	hasGood  bool
	disagree int
	agree    int
	dropRun  int
	distrust bool
}

// NewFilter builds a filter with default knobs for readings plausible in
// [min, max] watts.
func NewFilter(min, max float64) *Filter {
	return &Filter{
		Min:            min,
		Max:            max,
		Window:         5,
		SpikeRel:       0.3,
		Alpha:          0.5,
		ResetRel:       0.15,
		ConsistencyRel: 0.05,
		ConsistencyRun: 4,
		MaxHold:        8,
	}
}

// relFloorW keeps relative thresholds meaningful near zero expectations.
const relFloorW = 25.0

// Ingest runs one raw reading through the pipeline. expected is the
// caller's model prediction of the value (e.g. the capping controller's
// p-state power model); pass 0 when no model is available, which disables
// the consistency check and the model fallback for this reading.
func (f *Filter) Ingest(raw, expected float64) Reading {
	r := Reading{Raw: raw}
	if math.IsNaN(raw) || math.IsInf(raw, 0) {
		f.dropRun++
		r.Verdict = VerdictDropped
		if f.MaxHold > 0 && f.dropRun > f.MaxHold {
			r.Verdict = VerdictDistrusted
		}
		switch {
		case r.Verdict == VerdictDistrusted && expected > 0:
			r.Value = expected
		case f.hasGood:
			r.Value = f.lastGood
		case expected > 0:
			r.Value = expected
		default:
			r.Value = f.Min
		}
		return r
	}
	f.dropRun = 0
	v := raw
	verdict := VerdictOK
	if v < f.Min {
		v, verdict = f.Min, VerdictClamped
	} else if v > f.Max {
		v, verdict = f.Max, VerdictClamped
	}
	med := f.push(v)
	if f.winLen >= 3 && f.SpikeRel > 0 && math.Abs(v-med) > f.SpikeRel*math.Max(med, relFloorW) {
		v, verdict = med, VerdictDespiked
	}
	if expected > 0 && f.ConsistencyRun > 0 {
		if math.Abs(v-expected) > f.ConsistencyRel*math.Max(expected, relFloorW) {
			f.disagree++
			f.agree = 0
			if f.disagree >= f.ConsistencyRun {
				f.distrust = true
			}
		} else {
			f.agree++
			f.disagree = 0
			if f.distrust && f.agree >= f.ConsistencyRun {
				f.distrust = false
			}
		}
		if f.distrust {
			r.Value = expected
			r.Verdict = VerdictDistrusted
			return r
		}
	}
	if !f.hasEwma || (f.ResetRel > 0 && math.Abs(v-f.ewma) > f.ResetRel*math.Max(f.ewma, relFloorW)) {
		f.ewma, f.hasEwma = v, true
	} else {
		f.ewma += f.Alpha * (v - f.ewma)
	}
	f.lastGood, f.hasGood = f.ewma, true
	r.Value = f.ewma
	r.Verdict = verdict
	r.Trusted = true
	return r
}

// Healthy reports whether the sensor is currently trusted (no active
// distrust, not in an extended dropout).
func (f *Filter) Healthy() bool {
	return !f.distrust && (f.MaxHold <= 0 || f.dropRun <= f.MaxHold)
}

// push adds v to the median window and returns the current median.
func (f *Filter) push(v float64) float64 {
	w := f.Window
	if w <= 0 {
		w = 5
	}
	if f.win == nil {
		f.win = make([]float64, w)
		f.scratch = make([]float64, 0, w)
	}
	f.win[f.winNext] = v
	f.winNext = (f.winNext + 1) % len(f.win)
	if f.winLen < len(f.win) {
		f.winLen++
	}
	f.scratch = append(f.scratch[:0], f.win[:f.winLen]...)
	s := f.scratch
	// Insertion sort: the window is tiny and mostly sorted.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// Pipeline couples a (possibly faulty) meter with a filter into the
// Telemetry hook the capping controller consumes. Either half may be nil:
// a nil Meter passes true power through unfaulted (filter-only, e.g. a
// production deployment), a nil Filter passes the meter output through raw
// except for a finiteness check (the unhardened baseline the watchdog
// experiments compare against).
type Pipeline struct {
	Meter  *Meter
	Filter *Filter
	last   Reading
}

// Measure implements the capping controller's telemetry hook: corrupt the
// (noisy) true power through the meter, recover an estimate through the
// filter. expected is the controller's model prediction for its current
// p-state. The returned ok is false when the reading must not drive
// control decisions.
func (pl *Pipeline) Measure(truePower, expected float64) (float64, bool) {
	raw := truePower
	if pl.Meter != nil {
		raw = pl.Meter.Read(truePower)
	}
	if pl.Filter == nil {
		ok := !math.IsNaN(raw) && !math.IsInf(raw, 0)
		pl.last = Reading{Raw: raw, Value: raw, Trusted: ok}
		if !ok {
			pl.last.Verdict = VerdictDropped
			pl.last.Value = expected
		}
		return raw, ok
	}
	pl.last = pl.Filter.Ingest(raw, expected)
	return pl.last.Value, pl.last.Trusted
}

// Last returns the most recent reading (for monitoring).
func (pl *Pipeline) Last() Reading { return pl.last }

// Healthy reports whether the pipeline currently trusts its sensor.
func (pl *Pipeline) Healthy() bool {
	if pl.Filter == nil {
		return pl.last.Verdict != VerdictDropped
	}
	return pl.Filter.Healthy()
}
