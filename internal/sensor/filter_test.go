package sensor

import (
	"math"
	"testing"
)

func feed(f *Filter, v, expected float64, n int) Reading {
	var r Reading
	for i := 0; i < n; i++ {
		r = f.Ingest(v, expected)
	}
	return r
}

func TestFilterPassesCleanReadings(t *testing.T) {
	f := NewFilter(110, 200)
	r := feed(f, 150, 150, 10)
	if !r.Trusted || r.Verdict != VerdictOK {
		t.Fatalf("clean reading verdict %v trusted=%v", r.Verdict, r.Trusted)
	}
	if math.Abs(r.Value-150) > 1e-9 {
		t.Fatalf("clean steady value %g, want 150", r.Value)
	}
}

func TestFilterClampsOutOfRange(t *testing.T) {
	f := NewFilter(110, 200)
	r := f.Ingest(450, 0)
	if r.Verdict != VerdictClamped || r.Value > 200 {
		t.Fatalf("got verdict %v value %g, want clamped ≤ 200", r.Verdict, r.Value)
	}
	if r2 := f.Ingest(-30, 0); r2.Verdict != VerdictClamped || r2.Value < 110 {
		t.Fatalf("got verdict %v value %g, want clamped ≥ 110", r2.Verdict, r2.Value)
	}
}

func TestFilterDespikesTransients(t *testing.T) {
	f := NewFilter(110, 200)
	feed(f, 150, 150, 6)
	r := f.Ingest(199, 150) // in range, but a 33% spike off the median
	if r.Verdict != VerdictDespiked {
		t.Fatalf("spike verdict %v, want despiked", r.Verdict)
	}
	if math.Abs(r.Value-150) > 5 {
		t.Fatalf("despiked value %g, want near the 150 median", r.Value)
	}
	if !r.Trusted {
		t.Error("a despiked reading is still usable for control")
	}
}

func TestFilterHoldsThroughDropout(t *testing.T) {
	f := NewFilter(110, 200)
	feed(f, 150, 150, 6)
	r := f.Ingest(math.NaN(), 150)
	if r.Verdict != VerdictDropped || r.Trusted {
		t.Fatalf("dropout verdict %v trusted=%v", r.Verdict, r.Trusted)
	}
	if math.Abs(r.Value-150) > 1e-9 {
		t.Fatalf("dropout held value %g, want last good 150", r.Value)
	}
}

func TestFilterDistrustsExtendedDropout(t *testing.T) {
	f := NewFilter(110, 200)
	feed(f, 150, 150, 6)
	var r Reading
	for i := 0; i < f.MaxHold+2; i++ {
		r = f.Ingest(math.NaN(), 160)
	}
	if r.Verdict != VerdictDistrusted {
		t.Fatalf("verdict %v after %d dropouts, want distrusted", r.Verdict, f.MaxHold+2)
	}
	if math.Abs(r.Value-160) > 1e-9 {
		t.Fatalf("distrusted dropout value %g, want the model expectation 160", r.Value)
	}
	if f.Healthy() {
		t.Error("filter reports healthy through an extended dropout")
	}
}

func TestFilterDistrustsPersistentModelDisagreement(t *testing.T) {
	f := NewFilter(110, 200)
	feed(f, 150, 150, 4)
	// The sensor now under-reads by ~10% while the model expects 166.
	var r Reading
	for i := 0; i < 12; i++ {
		r = f.Ingest(150, 166.5)
		if i < f.ConsistencyRun-1 && r.Verdict == VerdictDistrusted {
			t.Fatalf("distrusted after only %d disagreeing readings", i+1)
		}
	}
	if r.Verdict != VerdictDistrusted || r.Trusted {
		t.Fatalf("verdict %v trusted=%v after persistent disagreement", r.Verdict, r.Trusted)
	}
	if math.Abs(r.Value-166.5) > 1e-9 {
		t.Fatalf("distrusted value %g, want the model 166.5", r.Value)
	}
	// Agreement restores trust with the same hysteresis.
	for i := 0; i < f.ConsistencyRun; i++ {
		r = f.Ingest(166.5, 166.5)
	}
	if r.Verdict == VerdictDistrusted {
		t.Error("sustained agreement did not restore trust")
	}
	if !f.Healthy() {
		t.Error("filter unhealthy after recovery")
	}
}

func TestFilterEWMATracksRealStepsImmediately(t *testing.T) {
	f := NewFilter(110, 200)
	feed(f, 166, 166, 8)
	// A real p-state drop: the reading falls 14% in one period. The
	// despiker must not eat it (median catches up within the window) and
	// the EWMA must snap, not crawl.
	var r Reading
	for i := 0; i < 4; i++ {
		r = f.Ingest(143, 143)
	}
	if math.Abs(r.Value-143) > 2 {
		t.Fatalf("filtered value %g four periods after a real step to 143", r.Value)
	}
}

func TestPipelineRawModeOnlyChecksFiniteness(t *testing.T) {
	pl := &Pipeline{} // no meter, no filter
	if v, ok := pl.Measure(150, 150); !ok || v != 150 {
		t.Fatalf("raw passthrough got (%g, %v)", v, ok)
	}
	pl2 := &Pipeline{Meter: NewMeter(Plan{Seed: 1, DropoutProb: 1}, 0)}
	if _, ok := pl2.Measure(150, 150); ok {
		t.Fatal("raw mode trusted a NaN reading")
	}
}

func TestPipelineFiltersMeterFaults(t *testing.T) {
	pl := &Pipeline{
		Meter:  NewMeter(DefaultChaos(5), 2),
		Filter: NewFilter(100, 210),
	}
	bad := 0
	for i := 0; i < 600; i++ {
		v, _ := pl.Measure(166.45, 166.45)
		if math.IsNaN(v) || v < 100 || v > 210 {
			t.Fatalf("filtered value %g escaped the plausible range", v)
		}
		// Under heavy chaos the filtered estimate should stay close to the
		// truth (model substitution bounds the drift error).
		if math.Abs(v-166.45) > 0.12*166.45 {
			bad++
		}
	}
	if bad > 60 {
		t.Errorf("%d of 600 filtered readings off by more than 12%%", bad)
	}
}
