// Package sensor models the power-measurement path between a server and
// its capping controller — the last untrusted input of the control loop.
// Real deployments lose the paper's "no violation at any step" guarantee to
// bad telemetry long before they lose it to bad networks: a shunt that ages
// into under-reading, an ADC bit that sticks, a BMC poll that times out.
//
// The package has two halves, mirroring internal/diba's transport split:
//
//   - Meter is the fault injector — a seeded, deterministic model of a
//     failing power sensor (stuck-at, dropout/NaN, spike, downward bias
//     drift, quantization), designed like FaultTransport: every decision is
//     drawn from a per-sensor RNG derived from (plan seed, sensor id), so
//     the same seed reproduces the same failure schedule on any run.
//   - Filter is the defense — a robust per-reading pipeline (range clamp →
//     median-of-k despike → model-consistency check → EWMA) that attaches a
//     validity verdict to every reading and holds the last good value (or
//     substitutes the actuation model) when the sensor cannot be trusted.
package sensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Plan describes one cluster's sensor fault injection. Probabilities are
// per reading per sensor; the zero value injects nothing. All decisions are
// deterministic in (Seed, sensor id, reading index).
type Plan struct {
	// Seed drives every sensor's fault schedule. A zero seed is as valid as
	// any other; use Enabled to test whether the plan injects at all.
	Seed int64
	// StuckProb is the per-reading probability that the sensor latches: it
	// keeps returning the value it just produced, ignoring the input.
	StuckProb float64
	// StuckMeanLen is the mean duration of a stuck episode in readings
	// (actual lengths are uniform in [1, 2·mean]). 0 selects 50.
	StuckMeanLen int
	// DropoutProb is the per-reading probability the reading is lost
	// entirely — the meter returns NaN (a failed BMC poll).
	DropoutProb float64
	// SpikeProb is the per-reading probability of a transient spike scaling
	// the reading by up to ±SpikeRel.
	SpikeProb float64
	// SpikeRel is the maximum relative magnitude of a spike. 0 selects 0.5.
	SpikeRel float64
	// DriftRel is the per-reading step scale of the calibration-drift
	// random walk. Sensing hardware ages into UNDER-reporting (shunt
	// resistance grows, ADC references sag), so the walk is biased downward
	// and the bias clamped to [−DriftMax, 0] — the dangerous direction: an
	// under-reading sensor makes its controller hold a p-state the real
	// power no longer fits in.
	DriftRel float64
	// DriftMax caps the magnitude of the drift bias. 0 selects 0.10.
	DriftMax float64
	// QuantStep rounds readings to this granularity in watts (ADC LSB).
	QuantStep float64
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return p.StuckProb > 0 || p.DropoutProb > 0 || p.SpikeProb > 0 ||
		p.DriftRel > 0 || p.QuantStep > 0
}

// DefaultChaos is the package's default fault severity — the level the
// watchdog acceptance tests and the sensorchaos experiment run at. It is
// deliberately harsh: within a few simulated minutes most sensors carry a
// near-maximal under-reading bias, and stuck/dropout/spike episodes land
// continuously.
func DefaultChaos(seed int64) Plan {
	return Plan{
		Seed:         seed,
		StuckProb:    0.002,
		StuckMeanLen: 60,
		DropoutProb:  0.01,
		SpikeProb:    0.01,
		SpikeRel:     0.5,
		DriftRel:     0.003,
		DriftMax:     0.10,
		QuantStep:    0.25,
	}
}

func (p Plan) withDefaults() Plan {
	if p.StuckMeanLen <= 0 {
		p.StuckMeanLen = 50
	}
	if p.SpikeRel <= 0 {
		p.SpikeRel = 0.5
	}
	if p.DriftMax <= 0 {
		p.DriftMax = 0.10
	}
	return p
}

// String summarizes the plan for logs.
func (p Plan) String() string {
	return fmt.Sprintf("sensor.Plan{seed=%d stuck=%.3g/%d drop=%.3g spike=%.3g/%.2g drift=%.3g/%.2g quant=%.2g}",
		p.Seed, p.StuckProb, p.StuckMeanLen, p.DropoutProb, p.SpikeProb, p.SpikeRel, p.DriftRel, p.DriftMax, p.QuantStep)
}

// meterSeed mixes the plan seed with the sensor identity (splitmix64
// finalizer, the same construction as diba's laneSeed) so each sensor's
// fault stream is independent and stable.
func meterSeed(seed int64, id int) int64 {
	z := uint64(seed) ^ (uint64(id)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Meter is one server's fault-injected power sensor. Not safe for
// concurrent use; each server owns one.
type Meter struct {
	plan Plan
	rng  *rand.Rand

	bias      float64
	stuckVal  float64
	stuckLeft int
	reads     int
}

// NewMeter builds sensor id's meter under the plan.
func NewMeter(p Plan, id int) *Meter {
	p = p.withDefaults()
	return &Meter{plan: p, rng: rand.New(rand.NewSource(meterSeed(p.Seed, id)))}
}

// Read corrupts one true power draw according to the fault schedule. The
// decisions for reading k depend only on (Seed, id, readings 0..k), so a
// rerun with the same seed reproduces the same faults.
func (m *Meter) Read(truePower float64) float64 {
	m.reads++
	if m.stuckLeft > 0 {
		m.stuckLeft--
		return m.stuckVal
	}
	v := truePower
	if m.plan.DriftRel > 0 {
		// Downward-biased random walk: mean −DriftRel per reading.
		m.bias += m.plan.DriftRel * (m.rng.NormFloat64() - 1)
		if m.bias < -m.plan.DriftMax {
			m.bias = -m.plan.DriftMax
		}
		if m.bias > 0 {
			m.bias = 0
		}
		v *= 1 + m.bias
	}
	if m.plan.SpikeProb > 0 && m.rng.Float64() < m.plan.SpikeProb {
		mag := m.plan.SpikeRel * m.rng.Float64()
		if m.rng.Intn(2) == 0 {
			mag = -mag
		}
		v *= 1 + mag
	}
	if m.plan.QuantStep > 0 {
		v = math.Round(v/m.plan.QuantStep) * m.plan.QuantStep
	}
	if m.plan.DropoutProb > 0 && m.rng.Float64() < m.plan.DropoutProb {
		return math.NaN()
	}
	if m.plan.StuckProb > 0 && m.rng.Float64() < m.plan.StuckProb {
		m.stuckVal = v
		m.stuckLeft = 1 + m.rng.Intn(2*m.plan.StuckMeanLen)
	}
	return v
}

// Bias returns the current calibration-drift bias (≤ 0), for tests and
// telemetry dashboards.
func (m *Meter) Bias() float64 { return m.bias }

// Reads returns how many readings the meter has produced.
func (m *Meter) Reads() int { return m.reads }
