// Package firmware reproduces the search algorithms of Chapter 6
// (FXplore): finding server firmware configurations that minimize a
// workload's runtime or energy. The chapter's hardware observations —
// configurations matter a lot, optima are workload-specific, and options
// interact non-additively (Observations #1–#3) — are modeled by a
// synthetic response surface with per-option main effects and pairwise
// interaction terms. On top of it we implement:
//
//   - brute-force enumeration (the 2^N baseline),
//   - FXplore-S, the sequential disable-and-lock search (Algorithm 7),
//     which explores O(N²) configurations,
//   - FXplore-SC, the k-means sub-clustering of workloads by their
//     performance-counter features (Algorithm 8), and
//   - nearest-neighbor mapping of new workloads onto sub-clusters
//     (the online mode).
//
// The hardware-bound measurements of Figs. 6.2–6.11 have no faithful
// synthetic equivalent; this package reproduces the algorithms and their
// relative behaviour (near-optimality at quadratic cost), not the absolute
// numbers.
package firmware

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Options are the five firmware settings of Table 6.1.
var Options = []string{"HP", "CP", "CTB", "MTB", "HT"}

// Config is a bitmask over options: bit i set means option i is enabled.
type Config uint32

// Enabled reports whether option i is enabled.
func (c Config) Enabled(i int) bool { return c&(1<<uint(i)) != 0 }

// With returns the config with option i forced to the given state.
func (c Config) With(i int, on bool) Config {
	if on {
		return c | (1 << uint(i))
	}
	return c &^ (1 << uint(i))
}

// AllEnabled returns the baseline configuration with every option on.
func AllEnabled(nOptions int) Config { return Config(1<<uint(nOptions)) - 1 }

// String renders the config as the list of enabled option names.
func (c Config) String() string {
	out := ""
	for i, name := range Options {
		if c.Enabled(i) {
			if out != "" {
				out += "+"
			}
			out += name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// Workload is a synthetic application with a firmware response surface:
// runtime(config) = base · Π_i effect_i(enabled_i) · Π_{i<j} pair_ij, and
// a feature vector standing in for its performance-counter signature.
type Workload struct {
	Name string
	// Features are the PMC-like signature (normalized), used for
	// sub-clustering and online mapping.
	Features []float64

	base float64
	// main[i] multiplies runtime when option i is enabled (values < 1 help).
	main []float64
	// pair[i][j] multiplies runtime when options i and j are both enabled —
	// the non-additive interactions of Observation #3.
	pair [][]float64
	// power draw model: idleW plus per-option adders when enabled.
	idleW    float64
	powerAdd []float64
}

// Runtime returns the workload's runtime under the configuration.
func (w *Workload) Runtime(c Config) float64 {
	r := w.base
	n := len(w.main)
	for i := 0; i < n; i++ {
		if c.Enabled(i) {
			r *= w.main[i]
		}
	}
	for i := 0; i < n; i++ {
		if !c.Enabled(i) {
			continue
		}
		for j := i + 1; j < n; j++ {
			if c.Enabled(j) {
				r *= w.pair[i][j]
			}
		}
	}
	return r
}

// Power returns the average power draw under the configuration.
func (w *Workload) Power(c Config) float64 {
	p := w.idleW
	for i := range w.powerAdd {
		if c.Enabled(i) {
			p += w.powerAdd[i]
		}
	}
	return p
}

// Energy returns runtime × power.
func (w *Workload) Energy(c Config) float64 { return w.Runtime(c) * w.Power(c) }

// NumOptions returns the workload's firmware option count.
func (w *Workload) NumOptions() int { return len(w.main) }

// Generate synthesizes a workload with nOptions firmware options whose
// response surface is tied to a random memory-boundedness character, so
// that similar feature vectors imply similar optimal configurations — the
// property FXplore-SC exploits.
func Generate(name string, nOptions int, rng *rand.Rand) *Workload {
	memBound := rng.Float64() // 0 compute-bound … 1 memory-bound
	threadScale := rng.Float64()
	w := &Workload{
		Name: name,
		// Feature vector: LLC misses, IPC (inverted memBound), branch
		// misses, L1 refs, thread friendliness — noisy functions of the
		// latent character.
		Features: []float64{
			clamp01(memBound + 0.08*rng.NormFloat64()),
			clamp01(1 - memBound + 0.08*rng.NormFloat64()),
			clamp01(0.3 + 0.2*rng.NormFloat64()),
			clamp01(0.5 + 0.5*memBound*rng.Float64()),
			clamp01(threadScale + 0.08*rng.NormFloat64()),
		},
		base:     60 + rng.Float64()*120,
		main:     make([]float64, nOptions),
		pair:     make([][]float64, nOptions),
		idleW:    80,
		powerAdd: make([]float64, nOptions),
	}
	for i := range w.pair {
		w.pair[i] = make([]float64, nOptions)
		for j := range w.pair[i] {
			w.pair[i][j] = 1
		}
	}
	for i := 0; i < nOptions; i++ {
		// Semantics for the canonical five options; extra options beyond
		// them get mild random effects (the scalability study of Fig. 6.9).
		switch {
		case i == 0 || i == 1: // prefetchers: help memory-bound, can hurt compute
			w.main[i] = 1 - 0.25*memBound + 0.06*(1-memBound)*rng.Float64()
		case i == 2: // CPU turbo: helps compute-bound
			w.main[i] = 1 - 0.22*(1-memBound) + 0.02*rng.Float64()
		case i == 3: // memory turbo: helps memory-bound
			w.main[i] = 1 - 0.18*memBound + 0.02*rng.Float64()
		case i == 4: // hyper-threading: helps thread-scalable, hurts others
			w.main[i] = 1 - 0.2*threadScale + 0.15*(1-threadScale)
		default:
			w.main[i] = 1 + 0.08*rng.NormFloat64()
		}
		if w.main[i] < 0.5 {
			w.main[i] = 0.5
		}
		w.powerAdd[i] = 4 + 10*rng.Float64()
	}
	// Interactions: prefetchers overlap (diminishing returns); the two
	// turbos contend for the power budget; HT changes prefetch utility.
	setPair := func(a, b int, v float64) {
		if a < nOptions && b < nOptions {
			w.pair[a][b] = v
			w.pair[b][a] = v
		}
	}
	setPair(0, 1, 1+0.12*memBound)                  // HP×CP partly redundant
	setPair(2, 3, 1+0.05+0.05*rng.Float64())        // CTB×MTB contention
	setPair(0, 3, 1-0.08*memBound)                  // HP×MTB synergize on memory
	setPair(0, 4, 1+0.1*(1-threadScale))            // HT thrashes the prefetcher
	setPair(2, 4, 1+0.06*threadScale*rng.Float64()) // turbo×HT thermal clash
	return w
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Objective selects what the searches minimize.
type Objective int

const (
	MinRuntime Objective = iota
	MinEnergy
)

func (o Objective) eval(w *Workload, c Config) float64 {
	if o == MinEnergy {
		return w.Energy(c)
	}
	return w.Runtime(c)
}

// SearchResult reports a configuration search.
type SearchResult struct {
	Best Config
	// Value is the objective at Best.
	Value float64
	// Evaluations is how many configurations were measured (each costs a
	// server reboot in the real system, which is why FXplore-S's O(N²)
	// matters against 2^N).
	Evaluations int
}

// BruteForce enumerates all 2^N configurations — the baseline FXplore
// accelerates.
func BruteForce(w *Workload, obj Objective) SearchResult {
	n := w.NumOptions()
	best := Config(0)
	bestV := math.Inf(1)
	total := 1 << uint(n)
	for c := 0; c < total; c++ {
		if v := obj.eval(w, Config(c)); v < bestV {
			bestV = v
			best = Config(c)
		}
	}
	return SearchResult{Best: best, Value: bestV, Evaluations: total}
}

// SequentialSearch is FXplore-S (Algorithm 7): start with every option
// enabled and free; each round, tentatively disable every free option,
// keep the disabling that helps the objective most, and lock it. After all
// rounds, return the best configuration seen anywhere along the way.
func SequentialSearch(w *Workload, obj Objective) SearchResult {
	n := w.NumOptions()
	cur := AllEnabled(n)
	free := make([]bool, n)
	for i := range free {
		free[i] = true
	}
	best := cur
	bestV := obj.eval(w, cur)
	evals := 1
	for round := 0; round < n; round++ {
		lock := -1
		lockV := math.Inf(1)
		for i := 0; i < n; i++ {
			if !free[i] {
				continue
			}
			v := obj.eval(w, cur.With(i, false))
			evals++
			if v < lockV {
				lockV = v
				lock = i
			}
			if v < bestV {
				bestV = v
				best = cur.With(i, false)
			}
		}
		if lock < 0 {
			break
		}
		cur = cur.With(lock, false)
		free[lock] = false
	}
	return SearchResult{Best: best, Value: bestV, Evaluations: evals}
}

// SubCluster is one FXplore-SC group: a centroid in feature space and the
// firmware configuration derived from its representative workload.
type SubCluster struct {
	Centroid []float64
	Config   Config
	Members  []int
}

// SubClusterResult is the offline output of FXplore-SC.
type SubClusterResult struct {
	Clusters []SubCluster
	// Assign[w] is workload w's cluster index.
	Assign []int
	// Evaluations counts configuration measurements (reboots) spent.
	Evaluations int
}

// SubClusterSearch is FXplore-SC (Algorithm 8): k-means the workloads'
// feature vectors into k groups, run FXplore-S once per group on the
// member closest to the centroid, and adopt that configuration for the
// whole group.
func SubClusterSearch(ws []*Workload, k int, obj Objective, rng *rand.Rand) (SubClusterResult, error) {
	if k <= 0 || k > len(ws) {
		return SubClusterResult{}, fmt.Errorf("firmware: k=%d out of range for %d workloads", k, len(ws))
	}
	points := make([][]float64, len(ws))
	for i, w := range ws {
		points[i] = w.Features
	}
	assign, centroids, err := KMeans(points, k, 100, rng)
	if err != nil {
		return SubClusterResult{}, err
	}
	res := SubClusterResult{Assign: assign, Clusters: make([]SubCluster, k)}
	for c := 0; c < k; c++ {
		var members []int
		for i, a := range assign {
			if a == c {
				members = append(members, i)
			}
		}
		res.Clusters[c] = SubCluster{Centroid: centroids[c], Members: members}
		if len(members) == 0 {
			res.Clusters[c].Config = AllEnabled(ws[0].NumOptions())
			continue
		}
		// Representative: the member nearest the centroid.
		rep := members[0]
		repD := math.Inf(1)
		for _, m := range members {
			if d := sqDist(ws[m].Features, centroids[c]); d < repD {
				repD = d
				rep = m
			}
		}
		sr := SequentialSearch(ws[rep], obj)
		res.Clusters[c].Config = sr.Best
		res.Evaluations += sr.Evaluations
	}
	return res, nil
}

// Map performs the online step: place a new workload (by its measured
// feature vector) on the nearest sub-cluster and return that cluster's
// pre-computed configuration. No reboot needed.
func (r SubClusterResult) Map(features []float64) (int, Config, error) {
	if len(r.Clusters) == 0 {
		return 0, 0, errors.New("firmware: no clusters")
	}
	best := 0
	bestD := math.Inf(1)
	for c, cl := range r.Clusters {
		if d := sqDist(features, cl.Centroid); d < bestD {
			bestD = d
			best = c
		}
	}
	return best, r.Clusters[best].Config, nil
}

// KMeans runs Lloyd's algorithm with k-means++-style seeding on the given
// points and returns assignments and centroids.
func KMeans(points [][]float64, k, maxIters int, rng *rand.Rand) ([]int, [][]float64, error) {
	n := len(points)
	if n == 0 || k <= 0 || k > n {
		return nil, nil, fmt.Errorf("firmware: bad kmeans input (n=%d, k=%d)", n, k)
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, nil, errors.New("firmware: ragged feature vectors")
		}
	}
	// Seeding: first centroid uniform, others proportional to squared
	// distance from the nearest existing centroid.
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64(nil), points[rng.Intn(n)]...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		var sum float64
		for i, p := range points {
			d2[i] = math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < d2[i] {
					d2[i] = d
				}
			}
			sum += d2[i]
		}
		pick := n - 1
		if sum > 0 {
			r := rng.Float64() * sum
			acc := 0.0
			for i, d := range d2 {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(n)
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}

	assign := make([]int, n)
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, p := range points {
			best := 0
			bestD := math.Inf(1)
			for c := range centroids {
				if d := sqDist(p, centroids[c]); d < bestD {
					bestD = d
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			counts[assign[i]]++
			for d, v := range p {
				sums[assign[i]][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // keep the old centroid for empty clusters
			}
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	return assign, centroids, nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
