package firmware

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigBits(t *testing.T) {
	c := Config(0)
	c = c.With(0, true).With(3, true)
	if !c.Enabled(0) || !c.Enabled(3) || c.Enabled(1) {
		t.Fatalf("bit ops broken: %b", c)
	}
	c = c.With(0, false)
	if c.Enabled(0) {
		t.Fatal("With(false) must clear")
	}
	if AllEnabled(5) != 0b11111 {
		t.Fatalf("AllEnabled(5) = %b", AllEnabled(5))
	}
	if Config(0).String() != "none" {
		t.Fatal("empty config string")
	}
	if AllEnabled(2).String() != "HP+CP" {
		t.Fatalf("string = %q", AllEnabled(2).String())
	}
}

func TestGenerateWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		w := Generate("w", 5, rng)
		if w.NumOptions() != 5 || len(w.Features) != 5 {
			t.Fatal("wrong dimensions")
		}
		for c := Config(0); c < 32; c++ {
			if r := w.Runtime(c); r <= 0 || math.IsNaN(r) {
				t.Fatalf("runtime(%v) = %v", c, r)
			}
			if p := w.Power(c); p < w.idleW {
				t.Fatalf("power below idle: %v", p)
			}
			if e := w.Energy(c); e != w.Runtime(c)*w.Power(c) {
				t.Fatal("energy inconsistent")
			}
		}
		for _, f := range w.Features {
			if f < 0 || f > 1 {
				t.Fatalf("feature out of [0,1]: %v", f)
			}
		}
	}
}

func TestOptimaAreWorkloadSpecific(t *testing.T) {
	// Observation #2: different workloads have different optima, and the
	// runtime optimum can differ from the energy optimum.
	rng := rand.New(rand.NewSource(2))
	optima := map[Config]bool{}
	energyDiffers := false
	for i := 0; i < 30; i++ {
		w := Generate("w", 5, rng)
		rt := BruteForce(w, MinRuntime)
		en := BruteForce(w, MinEnergy)
		optima[rt.Best] = true
		if rt.Best != en.Best {
			energyDiffers = true
		}
	}
	if len(optima) < 3 {
		t.Fatalf("only %d distinct runtime optima across 30 workloads", len(optima))
	}
	if !energyDiffers {
		t.Fatal("energy and runtime optima never differed")
	}
}

func TestAllEnabledIsNotAlwaysOptimal(t *testing.T) {
	// Observation #2's surprise: enabling everything is frequently not best.
	rng := rand.New(rand.NewSource(3))
	notAll := 0
	for i := 0; i < 40; i++ {
		w := Generate("w", 5, rng)
		if BruteForce(w, MinRuntime).Best != AllEnabled(5) {
			notAll++
		}
	}
	if notAll < 10 {
		t.Fatalf("all-enabled optimal in %d/40 cases — interactions too weak", 40-notAll)
	}
}

func TestSequentialSearchNearOptimalAndCheap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var worstGap float64
	for i := 0; i < 100; i++ {
		w := Generate("w", 5, rng)
		bf := BruteForce(w, MinRuntime)
		sr := SequentialSearch(w, MinRuntime)
		if sr.Evaluations >= bf.Evaluations {
			t.Fatalf("FXplore-S used %d evals ≥ brute force %d", sr.Evaluations, bf.Evaluations)
		}
		gap := (sr.Value - bf.Value) / bf.Value
		if gap < -1e-12 {
			t.Fatal("cannot beat brute force")
		}
		if gap > worstGap {
			worstGap = gap
		}
	}
	// The paper reports FXplore-S matching brute force on most workloads;
	// allow small misses from interactions but no blowups.
	if worstGap > 0.05 {
		t.Fatalf("worst FXplore-S gap %.3f > 5%%", worstGap)
	}
}

func TestSequentialSearchQuadraticScaling(t *testing.T) {
	// Evaluations must grow like N², not 2^N (Fig. 6.9's scalability).
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{5, 8, 12, 16} {
		w := Generate("w", n, rng)
		sr := SequentialSearch(w, MinRuntime)
		wantMax := 1 + n*(n+1)/2
		if sr.Evaluations > wantMax {
			t.Fatalf("n=%d: %d evals > bound %d", n, sr.Evaluations, wantMax)
		}
	}
}

func TestKMeansBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Two well-separated blobs.
	var pts [][]float64
	for i := 0; i < 20; i++ {
		pts = append(pts, []float64{0.1 + 0.02*rng.NormFloat64(), 0.1 + 0.02*rng.NormFloat64()})
	}
	for i := 0; i < 20; i++ {
		pts = append(pts, []float64{0.9 + 0.02*rng.NormFloat64(), 0.9 + 0.02*rng.NormFloat64()})
	}
	assign, cents, err := KMeans(pts, 2, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cents) != 2 {
		t.Fatal("want 2 centroids")
	}
	// All of blob 1 in one cluster, all of blob 2 in the other.
	for i := 1; i < 20; i++ {
		if assign[i] != assign[0] {
			t.Fatal("blob 1 split")
		}
	}
	for i := 21; i < 40; i++ {
		if assign[i] != assign[20] {
			t.Fatal("blob 2 split")
		}
	}
	if assign[0] == assign[20] {
		t.Fatal("blobs merged")
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, _, err := KMeans(nil, 2, 10, rng); err == nil {
		t.Fatal("empty points must error")
	}
	if _, _, err := KMeans([][]float64{{1}}, 2, 10, rng); err == nil {
		t.Fatal("k>n must error")
	}
	if _, _, err := KMeans([][]float64{{1, 2}, {1}}, 1, 10, rng); err == nil {
		t.Fatal("ragged vectors must error")
	}
}

func TestSubClusterSearchBeatsBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ws := make([]*Workload, 24)
	for i := range ws {
		ws[i] = Generate("w", 5, rng)
	}
	res, err := SubClusterSearch(ws, 4, MinRuntime, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 4 {
		t.Fatal("want 4 clusters")
	}
	// Using each workload's sub-cluster config must on average beat the
	// all-enabled baseline (Fig. 6.10's finding), and cost far fewer
	// reboots than per-workload brute force.
	var clustered, baselineT float64
	for i, w := range ws {
		cfg := res.Clusters[res.Assign[i]].Config
		clustered += w.Runtime(cfg)
		baselineT += w.Runtime(AllEnabled(5))
	}
	if clustered >= baselineT {
		t.Fatalf("sub-cluster configs (%.1f) must beat all-enabled (%.1f)", clustered, baselineT)
	}
	if res.Evaluations >= len(ws)*32 {
		t.Fatal("sub-clustering must cost fewer evaluations than per-workload brute force")
	}
}

func TestSubClusterSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ws := []*Workload{Generate("w", 5, rng)}
	if _, err := SubClusterSearch(ws, 0, MinRuntime, rng); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := SubClusterSearch(ws, 2, MinRuntime, rng); err == nil {
		t.Fatal("k>n must error")
	}
}

func TestOnlineMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ws := make([]*Workload, 30)
	for i := range ws {
		ws[i] = Generate("w", 5, rng)
	}
	res, err := SubClusterSearch(ws, 4, MinRuntime, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Mapping a training workload's own features must return its cluster's
	// config, and mapping must beat all-enabled on fresh workloads in
	// aggregate.
	ci, cfg, err := res.Map(ws[0].Features)
	if err != nil {
		t.Fatal(err)
	}
	if cfg != res.Clusters[ci].Config {
		t.Fatal("inconsistent mapping")
	}
	var mapped, baseline float64
	for i := 0; i < 30; i++ {
		fresh := Generate("new", 5, rng)
		_, cfg, err := res.Map(fresh.Features)
		if err != nil {
			t.Fatal(err)
		}
		mapped += fresh.Runtime(cfg)
		baseline += fresh.Runtime(AllEnabled(5))
	}
	if mapped >= baseline {
		t.Fatalf("online mapping (%.1f) must beat all-enabled (%.1f) on fresh workloads", mapped, baseline)
	}
	empty := SubClusterResult{}
	if _, _, err := empty.Map([]float64{1}); err == nil {
		t.Fatal("empty result must error")
	}
}

// Property: FXplore-S never returns a value worse than the all-enabled
// baseline, for any option count and objective.
func TestSequentialAtLeastBaselineProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		w := Generate("w", n, rng)
		for _, obj := range []Objective{MinRuntime, MinEnergy} {
			sr := SequentialSearch(w, obj)
			if sr.Value > obj.eval(w, AllEnabled(n))+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
