package firmware_test

import (
	"fmt"
	"math/rand"

	"powercap/internal/firmware"
)

// FXplore-S finds a (near-)optimal firmware configuration in O(N²) reboots
// instead of 2^N.
func ExampleSequentialSearch() {
	rng := rand.New(rand.NewSource(7))
	w := firmware.Generate("workload", 5, rng)
	bf := firmware.BruteForce(w, firmware.MinRuntime)
	sq := firmware.SequentialSearch(w, firmware.MinRuntime)
	fmt.Printf("brute force: %d reboots; FXplore-S: %d reboots; same optimum: %v\n",
		bf.Evaluations, sq.Evaluations, sq.Value <= bf.Value*1.0001)
	// Output: brute force: 32 reboots; FXplore-S: 16 reboots; same optimum: true
}
