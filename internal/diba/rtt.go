package diba

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// rtt.go is the gray-failure detector's measurement core: a per-peer
// round-trip estimator (TCP-RTO-style smoothed RTT + variance), an
// adaptive per-peer gather deadline derived from it, and a phi-accrual-
// style suspicion score over observed silence. The estimator is pure —
// callers feed it durations and ask it questions; it never reads the
// clock — which is what makes the property tests (rtt_test.go) exact.
//
// Detection model: a crashed peer goes silent forever, so suspicion grows
// without bound and the PR 2 alive/dead detector fires. A gray peer keeps
// answering, just slowly — its RTT estimate inflates, its adaptive
// deadline stretches (up to the clamp), and its suspicion stays bounded
// because silence keeps resetting. The two verdicts are therefore
// separable: "degraded" is an RTT statement, "dead" a silence statement.

// rttWindow is the ring-buffer depth backing the exact Mean/P99 quantile
// report. 128 samples ≈ 2-6 minutes of heartbeat echoes at defaults —
// enough history for a stable p99 without unbounded memory.
const rttWindow = 128

// rttBackoff multiplies the variance term in deadlines and suspicion
// (the classic RTO K=4).
const rttBackoff = 4

// PeerRTT estimates one peer's round-trip behavior from observed samples.
// Not safe for concurrent use; wrap with a lock at the owner.
type PeerRTT struct {
	srtt   float64 // smoothed RTT, seconds
	rttvar float64 // smoothed mean deviation, seconds
	n      uint64  // samples observed, ever

	ring [rttWindow]float64 // newest window, seconds
	head int
}

// Observe feeds one round-trip sample. Non-positive samples are clamped to
// a nanosecond so a same-instant echo still counts as evidence of life.
func (r *PeerRTT) Observe(d time.Duration) {
	if d <= 0 {
		d = time.Nanosecond
	}
	s := d.Seconds()
	if r.n == 0 {
		// RFC 6298 initialization: first sample seeds both estimators.
		r.srtt = s
		r.rttvar = s / 2
	} else {
		// alpha = 1/8, beta = 1/4.
		r.rttvar += (math.Abs(r.srtt-s) - r.rttvar) / 4
		r.srtt += (s - r.srtt) / 8
	}
	r.ring[r.head%rttWindow] = s
	r.head = (r.head + 1) % rttWindow
	r.n++
}

// Samples returns how many observations have ever been fed.
func (r *PeerRTT) Samples() uint64 { return r.n }

// SRTT returns the smoothed RTT estimate (zero before any sample).
func (r *PeerRTT) SRTT() time.Duration {
	return time.Duration(r.srtt * float64(time.Second))
}

// Mean returns the arithmetic mean over the retained window.
func (r *PeerRTT) Mean() time.Duration {
	k := r.windowLen()
	if k == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += r.ring[i]
	}
	return time.Duration(sum / float64(k) * float64(time.Second))
}

// P99 returns the 99th-percentile sample over the retained window.
func (r *PeerRTT) P99() time.Duration {
	k := r.windowLen()
	if k == 0 {
		return 0
	}
	var buf [rttWindow]float64
	w := buf[:k]
	copy(w, r.ring[:k])
	sort.Float64s(w)
	idx := (k*99 + 99) / 100 // ceil(k*0.99)
	if idx > k {
		idx = k
	}
	return time.Duration(w[idx-1] * float64(time.Second))
}

func (r *PeerRTT) windowLen() int {
	if r.n >= rttWindow {
		return rttWindow
	}
	return int(r.n)
}

// Deadline derives the adaptive per-peer gather deadline: srtt + 4·rttvar
// (the TCP RTO form), clamped to [min, max]. With no samples yet it
// returns max — never give a peer less patience than the configured
// ceiling before we have evidence it is fast.
func (r *PeerRTT) Deadline(min, max time.Duration) time.Duration {
	if max < min {
		max = min
	}
	if r.n == 0 {
		return max
	}
	d := time.Duration((r.srtt + rttBackoff*r.rttvar) * float64(time.Second))
	if d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}

// Suspicion converts observed silence into a phi-accrual-style score:
// zero while silence ≤ floor (the configured minimum no peer may be
// suspected faster than), then growing linearly in the excess silence
// normalized by the peer's expected round-trip spread. A score ≥ 1 means
// the silence exceeds the floor by at least one full expected-RTT spread;
// callers pick their own thresholds.
func (r *PeerRTT) Suspicion(silence, floor time.Duration) float64 {
	if floor < 0 {
		floor = 0
	}
	if silence <= floor {
		return 0
	}
	scale := r.srtt + rttBackoff*r.rttvar
	if scale <= 0 {
		scale = floor.Seconds()
	}
	if scale <= 0 {
		scale = 1
	}
	return (silence - floor).Seconds() / scale
}

// jitterDur spreads d uniformly over [0.85d, 1.15d) using rng. Every
// timer-driven retry in the runtime — gather deadlines, reconnect backoff
// — goes through it so that agents sharing a fault cannot fire their
// timeouts in lockstep and stampede the fabric. A nil rng returns d
// unchanged.
func jitterDur(d time.Duration, rng *rand.Rand) time.Duration {
	if d <= 0 || rng == nil {
		return d
	}
	return time.Duration(float64(d) * (0.85 + 0.3*rng.Float64()))
}

// RTTStats is the exported per-peer snapshot printed next to WireStats in
// dibad's exit log and tcpcluster's summary.
type RTTStats struct {
	Mean      time.Duration
	P99       time.Duration
	Samples   uint64
	Suspicion float64
	Degraded  bool
}
