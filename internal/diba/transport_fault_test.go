package diba

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// The failure detector is only as good as the transport semantics under it.
// These tests pin the fault-facing contracts: a closed endpoint behaves like
// a dead host, a full mailbox errors instead of wedging the sender, receives
// honor deadlines, heartbeats feed the liveness clock, and a broken TCP link
// is redialed with the last message replayed.

func TestChanNetworkClosedEndpointSemantics(t *testing.T) {
	net := NewChanNetwork(2, 4)
	a, b := net.Endpoint(0), net.Endpoint(1)
	if err := a.Send(1, Message{From: 0, Round: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// The message sent before the close must still be drainable.
	if m, err := b.Recv(); err != nil || m.Round != 1 {
		t.Fatalf("drain after close: m=%+v err=%v", m, err)
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("recv on a closed drained endpoint must error, not block")
	}
	if err := a.Send(1, Message{From: 0}); err == nil {
		t.Fatal("send to a closed endpoint must error")
	}
	if err := b.Send(0, Message{From: 1}); err == nil {
		t.Fatal("send from a closed endpoint must error")
	}
	// Closing twice is fine.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestChanNetworkFullMailboxErrors(t *testing.T) {
	net := NewChanNetwork(2, 2)
	a := net.Endpoint(0)
	for i := 0; i < 2; i++ {
		if err := a.Send(1, Message{From: 0, Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	err := a.Send(1, Message{From: 0, Round: 2})
	if err == nil || !strings.Contains(err.Error(), "full") {
		t.Fatalf("overflowing a stalled mailbox: err=%v, want a full-mailbox error", err)
	}
}

func TestChanNetworkRecvTimeout(t *testing.T) {
	net := NewChanNetwork(2, 2)
	a := net.Endpoint(0).(*chanEndpoint)
	start := time.Now()
	if _, err := a.RecvTimeout(20 * time.Millisecond); !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("empty mailbox: err=%v, want ErrRecvTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("RecvTimeout blocked far past its deadline")
	}
	if err := net.Endpoint(1).Send(0, Message{From: 1, Round: 7}); err != nil {
		t.Fatal(err)
	}
	if m, err := a.RecvTimeout(time.Second); err != nil || m.Round != 7 {
		t.Fatalf("delivery under deadline: m=%+v err=%v", m, err)
	}
}

func TestTCPRecvTimeout(t *testing.T) {
	tr, err := NewTCPTransport(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.RecvTimeout(30 * time.Millisecond); !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("err=%v, want ErrRecvTimeout", err)
	}
}

func TestTCPHeartbeatFeedsLastHeard(t *testing.T) {
	checkGoroutineLeak(t)
	mk := func(id int) *TCPTransport {
		tr, err := NewTCPTransport(id, "127.0.0.1:0", WithHeartbeat(10*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(0), mk(1)
	defer a.Close()
	defer b.Close()
	addrs := map[int]string{0: a.Addr(), 1: b.Addr()}
	if err := a.ConnectNeighbors([]int{1}, addrs, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectNeighbors([]int{0}, addrs, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	first, ok := b.LastHeard(0)
	if !ok {
		t.Fatal("no LastHeard right after connect")
	}
	// With no agent traffic at all, heartbeats alone must advance the clock.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ts, _ := b.LastHeard(0); ts.After(first) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("LastHeard never advanced from heartbeats")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Heartbeats must not leak into the inbox.
	if m, err := b.RecvTimeout(50 * time.Millisecond); !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("inbox got %+v err=%v, want timeout (heartbeats filtered)", m, err)
	}
}

func TestTCPReconnectReplaysLastMessage(t *testing.T) {
	checkGoroutineLeak(t)
	mk := func(id int) *TCPTransport {
		tr, err := NewTCPTransport(id, "127.0.0.1:0",
			WithReconnect(5*time.Millisecond, 50*time.Millisecond, 20))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(0), mk(1)
	defer a.Close()
	defer b.Close()
	addrs := map[int]string{0: a.Addr(), 1: b.Addr()}
	if err := a.ConnectNeighbors([]int{1}, addrs, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectNeighbors([]int{0}, addrs, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, Message{From: 0, Round: 1, E: -3}); err != nil {
		t.Fatal(err)
	}
	if m, err := b.Recv(); err != nil || m.Round != 1 {
		t.Fatalf("first delivery: m=%+v err=%v", m, err)
	}

	// Sever the link out from under the dialing side: its pump sees the
	// decode error and must redial with backoff, replaying round 1.
	a.mu.Lock()
	a.conns[1].c.Close()
	a.mu.Unlock()

	// The replay (a duplicate of round 1) and any retried new sends must get
	// through once the link is back. Sends may fail while the link is down —
	// the agent layer tolerates that — so retry like a broadcast loop would.
	deadline := time.Now().Add(5 * time.Second)
	sent := false
	for !sent {
		if time.Now().After(deadline) {
			t.Fatal("send never succeeded after link break")
		}
		if err := a.Send(1, Message{From: 0, Round: 2, E: -4}); err == nil {
			sent = true
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	for {
		m, err := b.RecvTimeout(time.Until(deadline))
		if err != nil {
			t.Fatalf("round 2 never arrived after reconnect: %v", err)
		}
		if m.Round == 2 {
			break // replayed round-1 duplicates before it are expected
		}
	}
}

func TestConnectNeighborsBoundedByDeadline(t *testing.T) {
	tr, err := NewTCPTransport(0, "127.0.0.1:0", WithDialTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// A listener that exists but never answers hellos is indistinguishable
	// from a hung peer for the dial loop's purposes; simpler still, point at
	// a port with no listener and let every attempt fail until the deadline.
	dead := map[int]string{1: "127.0.0.1:1"}
	start := time.Now()
	err = tr.ConnectNeighbors([]int{1}, dead, 300*time.Millisecond)
	if err == nil {
		t.Fatal("connect to a dead peer must fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("ConnectNeighbors ran %v past its 300ms deadline", elapsed)
	}
}
