package diba

import (
	"sort"
	"strconv"
	"time"
)

// Gray-failure mitigation: straggler-tolerant gather.
//
// A gray peer is alive — it beacons, its frames keep arriving — but slow.
// The fixed-timeout gather (agent.go) handles it correctly yet expensively:
// every round stalls until the straggler's frame lands, so one 10×-slowed
// node drags the whole cluster's round rate down to its pace. With
// FaultPolicy.StragglerTolerant set, gather instead gives each peer an
// adaptive deadline derived from its observed round-trip behavior (rtt.go)
// and, when the deadline fires on a peer with recent traffic, proceeds:
//
//   - Stale-proceed: if the peer's last-known estimate is at most MaxLag
//     rounds old, the round computes with it as a stand-in. The exact edge
//     term moved, t_stale = edgeTransfer(e_own, e_stale, …), is recorded.
//   - Soft-exclude: a peer lagging beyond MaxLag (or never heard) moves no
//     flow this round — the same convention as a mid-gather death — and a
//     zero-flow record is kept.
//
// Either way the peer's true round-r frame is still in flight. When it
// lands (late in the same gather, or rounds later), settleStale replaces
// the stand-in with the truth: the peer computed its side of the edge with
// our real broadcast and moved −t_true, so our estimate is corrected by
// t_stale − t_true through the comp accumulator — folded in after the
// exact fault-free float grouping, exactly like the dead-edge repairs.
// After settlement the edge's net flow for round r is t_true on both
// sides: antisymmetry, and hence Σe = Σp − B, is restored exactly.
//
// If the peer dies before its frame arrives, the dead-edge convention
// (neither side moves the flow) applies instead: settleStaleOnDeath undoes
// the stand-in by adding t_stale back, and the usual deadRecord machinery
// takes over. A frame permanently lost to a lossy transport leaves its
// record unsettled; records are capped per peer and the oldest is settled
// to the dead-edge convention on overflow, so the residual error is
// bounded by the same one-round edge-flow detection limit the crash-stop
// model already documents.
//
// Death detection is deliberately unchanged: sweepStragglers only
// mitigates peers whose liveness clock (agent heard-times merged with the
// transport's PeerLiveness) is within the heartbeat grace. A truly silent
// peer keeps its entry in the need set and takes the ordinary
// GatherTimeout → triage → declareDead path, so a beaconing slow peer is
// never declared dead and a dead one is never silently substituted
// forever.

// maxStaleOutstanding caps the unsettled records kept per peer. Overflow
// settles the oldest record to the dead-edge convention (its stand-in flow
// is added back), bounding memory on a lossy link at the cost of the
// documented one-round residual.
const maxStaleOutstanding = 512

// staleUse records one stale substitution (or soft-exclusion) awaiting its
// true frame: the round it stood in for, the flow the stand-in moved (0
// for soft-exclude), and our own estimate/degree at that round — the
// inputs needed to recompute the true edge term bitwise when the frame
// arrives.
type staleUse struct {
	round  int
	tStale float64
	ownE   float64
	ownDeg int
}

// stragglerDeadlines computes each needed peer's mitigation deadline for
// this gather: now + the adaptive RTT-derived deadline, jittered ±15% so
// co-stalled agents don't fire in lockstep.
func (a *Agent) stragglerDeadlines(now time.Time, need map[int]bool) map[int]time.Time {
	dmin := a.fp.DeadlineMin
	if dmin <= 0 {
		dmin = a.fp.GatherTimeout / 16
	}
	dmax := a.fp.DeadlineMax
	if dmax <= 0 {
		dmax = a.fp.GatherTimeout / 2
	}
	out := make(map[int]time.Time, len(need))
	for nb := range need {
		out[nb] = now.Add(jitterDur(a.peerRTT(nb).Deadline(dmin, dmax), a.jrng))
	}
	return out
}

// sweepStragglers mitigates every needed peer whose adaptive deadline has
// passed and whose liveness clock shows recent traffic. Peers without
// recent traffic are left to the fixed-timeout death detector.
func (a *Agent) sweepStragglers(now time.Time, mitAt map[int]time.Time, need map[int]bool, got map[int]Message) {
	grace := a.fp.HeartbeatGrace
	if grace <= 0 {
		grace = a.fp.GatherTimeout
	}
	pl, hasPL := a.tr.(PeerLiveness)
	for nb := range need {
		t, ok := mitAt[nb]
		if !ok || now.Before(t) {
			continue
		}
		heard := a.heard[nb]
		if hasPL {
			if ts, ok2 := pl.LastHeard(nb); ok2 && ts.After(heard) {
				heard = ts
			}
		}
		if heard.IsZero() || now.Sub(heard) >= grace {
			continue // possibly dead: let the fixed-timeout detector decide
		}
		a.mitigateStraggler(nb, got)
		delete(need, nb)
	}
}

// mitigateStraggler proceeds without peer nb's current-round frame:
// stale-proceed when a recent-enough estimate is known, soft-exclude
// otherwise. Either way a settlement record is pushed.
func (a *Agent) mitigateStraggler(nb int, got map[int]Message) {
	maxLag := a.fp.MaxLag
	if maxLag <= 0 {
		maxLag = 8
	}
	rec := staleUse{round: a.round, ownE: a.e, ownDeg: len(a.Neighbors)}
	last, ok := a.lastFrom[nb]
	if ok && a.round-last.Round <= maxLag {
		// Compute the stand-in's edge term exactly as nodeRule will (it
		// converts wire degrees through int32): settlement must cancel it
		// bitwise. edgeTransfer ignores cfg.Eta, so a.cfg matches the
		// per-round cfg nodeRule receives.
		deg := int(int32(last.Degree))
		rec.tStale = edgeTransfer(a.cfg, a.e, last.E, len(a.Neighbors), deg)
		got[nb] = Message{From: nb, Round: a.round, E: last.E, Degree: deg}
		a.staleNow[nb] = true
		a.event("stale-proceed", nb, "substituted estimate from round "+strconv.Itoa(last.Round))
	} else {
		a.event("soft-exclude", nb, "no usable estimate (lag beyond limit)")
	}
	a.staleCount[nb]++
	a.pushStale(nb, rec)
}

// pushStale appends a settlement record, settling the oldest to the
// dead-edge convention if the peer's queue is full.
func (a *Agent) pushStale(nb int, rec staleUse) {
	recs := a.staleOut[nb]
	if len(recs) >= maxStaleOutstanding {
		a.comp += recs[0].tStale
		recs = recs[1:]
	}
	a.staleOut[nb] = append(recs, rec)
}

// settleStale resolves the outstanding record whose round matches an
// arriving true frame: the stand-in flow is replaced by the true edge term
// through the comp accumulator, and usedRound advances so the dead-edge
// compensation machinery sees this round as genuinely consumed.
func (a *Agent) settleStale(m Message) {
	if len(a.staleOut) == 0 {
		return
	}
	recs := a.staleOut[m.From]
	for i := range recs {
		if recs[i].round != m.Round {
			continue
		}
		tTrue := edgeTransfer(a.cfg, recs[i].ownE, m.E, recs[i].ownDeg, m.Degree)
		a.comp += recs[i].tStale - tTrue
		if m.Round > a.usedRound[m.From] {
			a.usedRound[m.From] = m.Round
		}
		recs = append(recs[:i], recs[i+1:]...)
		if len(recs) == 0 {
			delete(a.staleOut, m.From)
		} else {
			a.staleOut[m.From] = recs
		}
		return
	}
}

// settleStaleOnDeath applies the dead-edge convention to every record
// still outstanding against a newly dead peer: the peer never matched the
// stand-in flows, so they are added back. Run once, when the death record
// is first created.
func (a *Agent) settleStaleOnDeath(node int) {
	if recs := a.staleOut[node]; len(recs) > 0 {
		for _, rec := range recs {
			a.comp += rec.tStale
		}
		delete(a.staleOut, node)
	}
}

// peerRTT returns (lazily creating) the estimator for one peer.
func (a *Agent) peerRTT(nb int) *PeerRTT {
	r := a.rtt[nb]
	if r == nil {
		r = &PeerRTT{}
		a.rtt[nb] = r
	}
	return r
}

// observePeerRTT feeds one gather round-trip sample.
func (a *Agent) observePeerRTT(nb int, d time.Duration) {
	if a.rtt == nil {
		return
	}
	a.peerRTT(nb).Observe(d)
}

// PeerHealth is one peer's gray-failure verdict as seen by this agent:
// round-trip statistics, the silence-based suspicion score, the degraded
// flag (round trips ≥4× the fastest peer's), and the mitigation counters.
type PeerHealth struct {
	Peer        int
	RTT         RTTStats
	StaleRounds int // rounds that proceeded without this peer's frame
	Outstanding int // stale records still awaiting the true frame
}

// PeerHealth reports every known peer's verdict, sorted by peer id. Call
// it after the agent's run loop has stopped; it is not synchronized with a
// running gather.
func (a *Agent) PeerHealth() []PeerHealth {
	if a.rtt == nil {
		return nil
	}
	grace := a.fp.HeartbeatGrace
	if grace <= 0 {
		grace = a.fp.GatherTimeout
	}
	now := time.Now()
	minSRTT := time.Duration(0)
	for _, r := range a.rtt {
		if r.Samples() == 0 {
			continue
		}
		if s := r.SRTT(); minSRTT == 0 || s < minSRTT {
			minSRTT = s
		}
	}
	ids := make([]int, 0, len(a.rtt))
	for nb := range a.rtt {
		ids = append(ids, nb)
	}
	sort.Ints(ids)
	out := make([]PeerHealth, 0, len(ids))
	for _, nb := range ids {
		r := a.rtt[nb]
		st := RTTStats{Mean: r.Mean(), P99: r.P99(), Samples: r.Samples()}
		if heard, ok := a.heard[nb]; ok {
			st.Suspicion = r.Suspicion(now.Sub(heard), grace)
		}
		if s := r.SRTT(); r.Samples() > 0 && minSRTT > 0 &&
			s >= grayRTTFactor*minSRTT && s-minSRTT > time.Millisecond {
			st.Degraded = true
		}
		out = append(out, PeerHealth{
			Peer:        nb,
			RTT:         st,
			StaleRounds: a.staleCount[nb],
			Outstanding: len(a.staleOut[nb]),
		})
	}
	return out
}

// OutstandingStale returns the total number of unsettled stale records —
// zero once every substituted round has been reconciled against its true
// frame (the exact-conservation condition the soak test asserts).
func (a *Agent) OutstandingStale() int {
	n := 0
	for _, recs := range a.staleOut {
		n += len(recs)
	}
	return n
}

// StaleRounds returns how many times any peer was substituted or excluded.
func (a *Agent) StaleRounds() int {
	n := 0
	for _, c := range a.staleCount {
		n += c
	}
	return n
}
