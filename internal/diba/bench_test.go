package diba

import (
	"math/rand"
	"testing"

	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Micro-benchmarks for the per-round cost that Table 4.2's computation
// column is built from.

func benchCluster(b *testing.B, n int) []workload.Utility {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		b.Fatal(err)
	}
	return a.UtilitySlice()
}

func benchmarkStep(b *testing.B, n int) {
	us := benchCluster(b, n)
	en, err := New(topology.Ring(n), us, 170*float64(n), Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.Step()
	}
}

func BenchmarkEngineStep100(b *testing.B)  { benchmarkStep(b, 100) }
func BenchmarkEngineStep1000(b *testing.B) { benchmarkStep(b, 1000) }
func BenchmarkEngineStep6400(b *testing.B) { benchmarkStep(b, 6400) }

// The cost of a full convergence run, including the per-round aggregate
// queries (TotalUtility for the target check) that Step amortizes
// incrementally.
func BenchmarkRunToTarget1000(b *testing.B) {
	us := benchCluster(b, 1000)
	g := topology.Ring(1000)
	ref := func() float64 {
		en, err := New(g, us, 170_000, Config{})
		if err != nil {
			b.Fatal(err)
		}
		en.RunToQuiescence(1e-3, 20, 50_000)
		return en.TotalUtility()
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en, err := New(g, us, 170_000, Config{})
		if err != nil {
			b.Fatal(err)
		}
		en.RunToTarget(ref, 0.99, 5000)
	}
}

func BenchmarkAsyncActivation(b *testing.B) {
	us := benchCluster(b, 1000)
	ac, err := NewAsync(topology.Ring(1000), us, 170000, Config{}, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ac.Step()
	}
}

func BenchmarkHierStep(b *testing.B) {
	const nRacks, perRack = 10, 40
	n := nRacks * perRack
	us := benchCluster(b, n)
	g := topology.NewGraph(n)
	rackOf := make([]int, n)
	for k := 0; k < nRacks; k++ {
		base := k * perRack
		for j := 0; j < perRack; j++ {
			rackOf[base+j] = k
			_ = g.AddEdge(base+j, base+(j+1)%perRack)
		}
		_ = g.AddEdge(base, ((k+1)%nRacks)*perRack)
	}
	racks := Racks{RackOf: rackOf, RackBudget: make([]float64, nRacks)}
	for k := range racks.RackBudget {
		racks.RackBudget[k] = 170 * perRack
	}
	en, err := NewHier(g, us, 165*float64(n), racks, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.Step()
	}
}

// Multi-level hierarchical step on the nested-ring scale topology
// (6 rows × 25 racks × 40 servers): three constraint families per node.
func benchHierLevels(b *testing.B, parallelStep bool) {
	counts := []int{6, 25, 40}
	g, gofs := topology.NestedRings(counts...)
	n := g.N()
	us := benchCluster(b, n)
	levels := make([]Level, len(gofs))
	for l, gof := range gofs {
		ng := 0
		for _, k := range gof {
			if k >= ng {
				ng = k + 1
			}
		}
		bud := make([]float64, ng)
		for k := range bud {
			bud[k] = (152 + 2*float64(l)) * float64(n/ng)
		}
		levels[l] = Level{GroupOf: gof, Budget: bud}
	}
	en, err := NewHierLevels(g, us, 150*float64(n), levels, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer en.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if parallelStep {
			en.StepParallel(0)
		} else {
			en.Step()
		}
	}
}

func BenchmarkHierStepLevels6000(b *testing.B)         { benchHierLevels(b, false) }
func BenchmarkHierStepLevelsParallel6000(b *testing.B) { benchHierLevels(b, true) }

func BenchmarkEngineStepParallel6400(b *testing.B) {
	us := benchCluster(b, 6400)
	en, err := New(topology.Ring(6400), us, 170*6400, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.StepParallel(0)
	}
}
