package diba_test

import (
	"fmt"
	"math/rand"

	"powercap/internal/diba"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// The minimal DiBA loop: build utilities, run to quiescence, read caps.
// No coordinator exists anywhere; the budget is respected on every round.
func ExampleEngine() {
	rng := rand.New(rand.NewSource(1))
	assign, _ := workload.Assign(workload.HPC, 16, workload.DefaultServer, 0, 0, rng)
	engine, err := diba.New(topology.Ring(16), assign.UtilitySlice(), 16*170, diba.Config{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res := engine.RunToQuiescence(1e-3, 20, 50000)
	fmt.Printf("converged=%v feasible=%v\n", res.Converged, engine.TotalPower() <= 16*170)
	// Output: converged=true feasible=true
}

// A demand-response cut: the budget drops 10% and the engine re-tracks it
// immediately, never violating on the way down.
func ExampleEngine_SetBudget() {
	rng := rand.New(rand.NewSource(2))
	assign, _ := workload.Assign(workload.HPC, 16, workload.DefaultServer, 0, 0, rng)
	engine, _ := diba.New(topology.Ring(16), assign.UtilitySlice(), 16*185, diba.Config{})
	engine.RunToQuiescence(1e-3, 20, 50000)

	newBudget := 16 * 166.0
	if err := engine.SetBudget(newBudget); err != nil {
		fmt.Println("error:", err)
		return
	}
	violated := engine.TotalPower() > newBudget
	for k := 0; k < 2000; k++ {
		engine.Step()
		violated = violated || engine.TotalPower() > newBudget
	}
	fmt.Printf("ever violated after the cut: %v\n", violated)
	// Output: ever violated after the cut: false
}
