package diba

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"powercap/internal/workload"
)

// Agent is one server's DiBA controller running over a Transport — the unit
// that would be deployed per machine in a real cluster. It executes the
// identical per-node rule as the synchronous Engine (nodeRule), in
// bulk-synchronous rounds: broadcast the local estimate, gather every
// neighbor's, step.
//
// With a FaultPolicy installed (SetFaultPolicy), the agent additionally
// detects dead neighbors, repairs the topology over standby chords, and
// reconciles the budget — see repair.go for the full fault model.
type Agent struct {
	// ID is the agent's node id, unique within the cluster.
	ID int
	// Neighbors are the node ids this agent exchanges estimates with. With
	// fault tolerance enabled the set can shrink (dead neighbors removed)
	// and grow (standby chords activated) between rounds.
	Neighbors []int

	util workload.Utility
	cfg  Config
	tr   Transport

	p, e float64
	// pending buffers messages that arrived early: a neighbor may run up to
	// one round ahead of us (it cannot advance further without our current
	// message). Keyed by round, then by sender.
	pending map[int]map[int]Message
	round   int

	// Fault tolerance state (repair.go). All nil/zero unless SetFaultPolicy
	// enabled detection, so the fault-free path carries no overhead and its
	// arithmetic is untouched.
	fp      FaultPolicy
	standby []int
	// budget0 is the configured cluster budget; budget is this agent's
	// current view after subtracting every known dead node's frozen share.
	budget0, budget float64
	clusterSize     int
	// lastFrom holds the freshest estimate message seen per peer — the
	// candidate frozen state should that peer die.
	lastFrom map[int]Message
	// usedRound records, per peer, the highest round whose nodeRule
	// computation consumed that peer's message. Compensation is only valid
	// for a round we actually computed with the dead node's message.
	usedRound map[int]int
	dead      map[int]*deadRecord
	// histE/histDeg snapshot the agent's estimate and degree at the start
	// of recent rounds (the values its broadcasts carried), for computing
	// the unmatched final-round edge flow. Pruned to a sliding window.
	histE   map[int]float64
	histDeg map[int]int
	// comp accumulates pending estimate corrections (compensations and
	// their undos); folded into e at the end of the round so the exact
	// fault-free float grouping below is never disturbed.
	comp float64
	// heard is the agent-level liveness clock: the wall time of the last
	// message of any kind received from each peer. It complements the
	// transport's PeerLiveness (which in-process transports lack) so triage
	// can tell a stalled-but-beaconing peer from a dead one.
	heard map[int]time.Time

	// Gray-failure tolerance state (straggler.go). rtt estimates each
	// peer's gather round trip (broadcast → its frame arrives), feeding the
	// adaptive per-peer deadlines; jrng is the agent's deterministic timer
	// jitter source; staleOut holds unsettled stale-substitution records,
	// staleNow the peers substituted in the round in flight, staleCount a
	// per-peer mitigation counter for the health report.
	rtt        map[int]*PeerRTT
	jrng       *rand.Rand
	staleOut   map[int][]staleUse
	staleNow   map[int]bool
	staleCount map[int]int

	// tel is the local telemetry guard (telemetry.go); nil when the agent
	// trusts its sensor unconditionally.
	tel *telemetryState
	// rejoined tombstones completed rejoins (rejoin.go): node id → the
	// round it rejoined at plus its adopted state, guarding against stale
	// death reports still circulating. rejoinedAt is this agent's own
	// rejoin round when it itself came back from a restart.
	rejoined   map[int]rejoinRecord
	rejoinedAt int

	// hierSink receives hierarchical control-plane messages (MsgLease,
	// MsgLeaseAck, MsgAggHello) that arrive interleaved with round traffic.
	// It is called synchronously from gather, so it must only record the
	// message — HierAgent buffers them and acts between rounds. Nil for a
	// flat agent, which drops them.
	hierSink func(Message)

	// pub, when set, receives an immutable StateSnapshot at the end of
	// every completed round (publish.go) — the lock-free feed the control
	// plane serves reads from. Nil means no publication and no overhead.
	pub *StatePub
}

// AgentState is an agent's externally visible state after a run.
type AgentState struct {
	ID     int
	Power  float64
	E      float64
	Rounds int
	// Budget is the agent's final view of the cluster budget (shrunk by
	// failures it learned of); Dead lists the node ids it believes dead.
	Budget float64
	Dead   []int
}

// NewAgent constructs an agent. budget and clusterSize let the agent derive
// its initial estimate locally: it starts at its idle cap with an even
// share of the cluster surplus, exactly as Engine does.
func NewAgent(id int, neighbors []int, u workload.Utility, budget float64, clusterSize int, totalIdle float64, cfg Config, tr Transport) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(neighbors) == 0 {
		return nil, fmt.Errorf("diba: agent %d has no neighbors", id)
	}
	share := (totalIdle - budget) / float64(clusterSize)
	if share >= 0 {
		return nil, fmt.Errorf("diba: budget %.1f cannot cover cluster idle power %.1f", budget, totalIdle)
	}
	ns := append([]int(nil), neighbors...)
	sort.Ints(ns)
	return &Agent{
		ID:          id,
		Neighbors:   ns,
		util:        u,
		cfg:         cfg.withDefaults(),
		tr:          tr,
		p:           u.MinPower(),
		e:           share,
		pending:     make(map[int]map[int]Message),
		budget0:     budget,
		budget:      budget,
		clusterSize: clusterSize,
	}, nil
}

// Power returns the agent's current power cap.
func (a *Agent) Power() float64 { return a.p }

// Estimate returns the agent's current surplus estimate.
func (a *Agent) Estimate() float64 { return a.e }

// Run executes the given number of BSP rounds and returns the final state.
func (a *Agent) Run(rounds int) (AgentState, error) {
	for r := 0; r < rounds; r++ {
		if err := a.StepOnce(); err != nil {
			return AgentState{}, fmt.Errorf("diba: agent %d round %d: %w", a.ID, r, err)
		}
	}
	return a.state(), nil
}

func (a *Agent) state() AgentState {
	return AgentState{ID: a.ID, Power: a.p, E: a.e, Rounds: a.round, Budget: a.budget, Dead: a.DeadNodes()}
}

// StepOnce performs one BSP round: broadcast the current estimate, gather
// one message from every neighbor for this round, apply nodeRule.
func (a *Agent) StepOnce() error {
	_, _, err := a.runRound(0, 0)
	return err
}

// runRound executes one BSP round with the given termination fields
// piggybacked, returning the gathered messages and this node's power move.
func (a *Agent) runRound(quietView, stopProposal int) (map[int]Message, float64, error) {
	a.beginRound()
	out := Message{
		From:   a.ID,
		Round:  a.round,
		E:      a.e,
		Degree: len(a.Neighbors),
		Quiet:  quietView,
		Stop:   stopProposal,
		P:      a.p,
	}
	for _, nb := range a.Neighbors {
		if err := a.sendRound(nb, out); err != nil {
			return nil, 0, err
		}
	}
	got, err := a.gather()
	if err != nil {
		return nil, 0, err
	}
	nbrE := make([]float64, 0, len(a.Neighbors))
	nbrDeg := make([]int32, 0, len(a.Neighbors))
	for _, nb := range a.Neighbors {
		m, ok := got[nb]
		if !ok {
			// Neighbor declared dead mid-gather: its edge moves no flow this
			// round (neither side computes it), which keeps the per-edge
			// antisymmetry — and hence conservation — intact.
			continue
		}
		nbrE = append(nbrE, m.E)
		nbrDeg = append(nbrDeg, int32(m.Degree))
	}
	cfg := a.cfg
	cfg.Eta = a.cfg.etaAt(a.round)
	phat, outflow := nodeRule(cfg, a.util, a.p, a.e, len(a.Neighbors), nbrE, nbrDeg)
	a.p += phat
	// Grouped exactly as Engine.Step computes it so that agents and engine
	// stay bitwise identical (float addition is not associative).
	a.e = a.e + phat - outflow
	a.round++
	a.finishRound(got)
	a.applyTelemetry()
	a.publishRound()
	return got, phat, nil
}

// sendRound broadcasts one round message to nb. With fault tolerance on, a
// send failure to a (possibly dead) neighbor is not fatal — detection
// happens in gather — except ErrCrashed, which means *we* are the injected
// casualty and must stop like a crashed process would.
func (a *Agent) sendRound(nb int, out Message) error {
	err := a.tr.Send(nb, out)
	if err == nil || (a.ftEnabled() && !errors.Is(err, ErrCrashed)) {
		return nil
	}
	return err
}

// gather collects this round's message from every neighbor, buffering any
// early messages from the next round. With a FaultPolicy installed it waits
// at most GatherTimeout per silent neighbor (modulo heartbeat grace),
// declaring unresponsive neighbors dead instead of blocking forever.
func (a *Agent) gather() (map[int]Message, error) {
	ft := a.ftEnabled()
	need := make(map[int]bool, len(a.Neighbors))
	for _, nb := range a.Neighbors {
		if ft {
			if rec := a.dead[nb]; rec != nil && a.round > rec.lastRound {
				continue // dead before this round; no message will come
			}
		}
		need[nb] = true
	}
	got := a.pending[a.round]
	if got == nil {
		got = make(map[int]Message, len(a.Neighbors))
	} else {
		delete(a.pending, a.round)
		for from := range got {
			delete(need, from)
		}
	}
	var deadlineAt, hardAt, nextBeacon, gatherStart time.Time
	var beaconEvery time.Duration
	var mitAt map[int]time.Time
	tolerant := ft && a.fp.StragglerTolerant
	if ft {
		now := time.Now()
		gatherStart = now
		// The fixed hard timeout is jittered ±15% per agent so that peers
		// sharing one fault cannot fire their detectors in lockstep and
		// stampede the fabric with a synchronized suspicion wave.
		deadlineAt = now.Add(jitterDur(a.fp.GatherTimeout, a.jrng))
		maxStall := a.fp.MaxStall
		if maxStall <= 0 {
			maxStall = 10 * a.fp.GatherTimeout
		}
		hardAt = now.Add(maxStall)
		// While stalled, beacon liveness to our links several times per
		// timeout window. Detection of a real death stalls this agent for
		// GatherTimeout, which delays its own broadcast by the same amount;
		// without beacons, its neighbors' timeouts would fire in a race
		// with that delayed broadcast and a false-suspicion wave could
		// sweep the whole cluster.
		beaconEvery = a.fp.GatherTimeout / 4
		if beaconEvery < time.Millisecond {
			beaconEvery = time.Millisecond
		}
		nextBeacon = now.Add(beaconEvery)
		if tolerant {
			mitAt = a.stragglerDeadlines(now, need)
		}
	}
	for len(need) > 0 {
		var m Message
		var err error
		if ft {
			until := deadlineAt
			if nextBeacon.Before(until) {
				until = nextBeacon
			}
			for nb := range need {
				if t, ok := mitAt[nb]; ok && t.Before(until) {
					until = t
				}
			}
			wait := time.Until(until)
			if wait <= 0 {
				wait = time.Millisecond
			}
			m, err = recvTimeout(a.tr, wait)
			if errors.Is(err, ErrRecvTimeout) {
				now := time.Now()
				if !now.Before(nextBeacon) {
					a.beacon()
					nextBeacon = now.Add(beaconEvery)
				}
				if tolerant {
					a.sweepStragglers(now, mitAt, need, got)
					if len(need) == 0 {
						break
					}
				}
				if now.Before(deadlineAt) {
					continue
				}
				silent := a.triage(need, hardAt)
				if len(silent) == 0 {
					// Every missing peer showed recent liveness; keep waiting.
					deadlineAt = now.Add(jitterDur(a.fp.GatherTimeout, a.jrng))
					continue
				}
				if !a.fp.Recover {
					return nil, fmt.Errorf("diba: agent %d round %d: neighbor(s) %v silent past %v", a.ID, a.round, silent, a.fp.GatherTimeout)
				}
				a.declareDead(silent)
				a.refreshNeed(need)
				deadlineAt = now.Add(jitterDur(a.fp.GatherTimeout, a.jrng))
				continue
			}
		} else {
			m, err = a.tr.Recv()
		}
		if err != nil {
			return nil, err
		}
		if err := a.absorb(m, need, got, gatherStart, ft); err != nil {
			return nil, err
		}
	}
	// A member lagging its peers finds every needed frame already buffered
	// in pending and would otherwise never touch the transport this round,
	// leaving control-plane traffic — lease floods, dead epidemics, its own
	// deposition verdict — queued forever. Drain whatever is immediately
	// available; a closed transport is left for the next blocking receive
	// to report.
	for {
		m, ok, err := tryRecv(a.tr)
		if err != nil || !ok {
			break
		}
		if err := a.absorb(m, need, got, gatherStart, ft); err != nil {
			return nil, err
		}
	}
	return got, nil
}

// absorb applies one inbound message to the gather state: liveness
// bookkeeping, control-plane dispatch, stale settlement, and round-frame
// collection. Both the blocking gather loop and the post-gather drain feed
// it, so a message behaves identically however it arrived.
func (a *Agent) absorb(m Message, need map[int]bool, got map[int]Message, gatherStart time.Time, ft bool) error {
	if ft && m.Kind != MsgRejoinReq {
		// A rejoin request is a plea from a node that lost its round
		// state — deliberately not counted as liveness, so the failure
		// detector still declares the restarted node dead and readmission
		// goes through the handshake (rejoin.go).
		a.heard[m.From] = time.Now()
	}
	switch m.Kind {
	case MsgHeartbeat:
		return nil // transport liveness beacon that leaked through
	case MsgNodeDead:
		if !ft {
			return nil // mixed cluster: ignore epidemics we cannot act on
		}
		if err := a.applyDeadReport(m); err != nil {
			return err
		}
		a.refreshNeed(need)
		return nil
	case MsgHealth:
		a.noteHealth(m)
		return nil
	case MsgRejoinReq:
		if ft {
			a.handleRejoinReq(m)
		}
		return nil
	case MsgRejoin:
		if ft {
			a.handleRejoinFlood(m)
		}
		return nil
	case MsgRejoinAck:
		return nil // only meaningful inside Agent.Rejoin
	case MsgLease, MsgLeaseAck, MsgAggHello:
		if a.hierSink != nil {
			a.hierSink(m)
		}
		return nil
	}
	if m.Kind != MsgEstimate {
		// Control frame from a newer build in a mixed-version cluster:
		// misreading it as a round message would corrupt the arithmetic,
		// so drop it.
		return nil
	}
	if ft {
		a.noteRound(m)
		// Settle any outstanding stale substitution this frame is the
		// true value for — even a frame that arrives rounds late, or
		// later in the very gather that substituted it.
		a.settleStale(m)
	}
	switch {
	case m.Round == a.round:
		if need[m.From] {
			if ft {
				// A current-round arrival is one gather round trip: the
				// time from our broadcast to the peer's frame. It feeds
				// the adaptive deadline for the next rounds.
				a.observePeerRTT(m.From, time.Since(gatherStart))
			}
			got[m.From] = m
			delete(need, m.From)
		}
	case m.Round > a.round:
		buf := a.pending[m.Round]
		if buf == nil {
			buf = make(map[int]Message)
			a.pending[m.Round] = buf
		}
		buf[m.From] = m
	default:
		// Stale duplicate; reliable ordered transports never produce one
		// in fault-free BSP, and the chaos transport may — drop it.
	}
	return nil
}

// SetHierSink installs the hierarchical control-plane tap: gather hands
// every MsgLease/MsgLeaseAck/MsgAggHello to fn instead of dropping it. fn
// runs synchronously inside gather and must not block or touch agent state;
// HierAgent uses it to buffer control messages for processing between
// rounds.
func (a *Agent) SetHierSink(fn func(Message)) { a.hierSink = fn }

// setBudgetBase repoints the agent's configured budget at w and rebuilds
// its current view (budget0 minus every known dead node's frozen share).
// This is pure bookkeeping — it does not touch p or e — so the hierarchical
// runtime can recompute a group's budget view exactly from its integer
// lease on every change, keeping members bitwise identical.
func (a *Agent) setBudgetBase(w float64) {
	a.budget0 = w
	a.budget = w
	a.recomputeBudget()
}

// nudgeEstimate shifts the agent's surplus estimate by delta (a budget
// increase arrives as a negative delta: more budget, more surplus). If the
// estimate turns non-negative the agent sheds power immediately, down to
// its idle cap — the same emergency rule as SetBudgetDelta.
func (a *Agent) nudgeEstimate(delta float64) {
	a.e += delta
	if a.e >= 0 {
		drop := a.e + emergencyShedMarginW
		if maxDrop := a.p - a.util.MinPower(); drop > maxDrop {
			drop = maxDrop
		}
		a.p -= drop
		a.e -= drop
	}
}

// SetBudgetDelta applies a cluster budget change of totalDelta watts,
// shifting this agent's estimate by its 1/N share — the local action every
// agent takes when the new budget is announced. If the estimate turns
// non-negative the agent sheds power immediately, down to its idle cap.
func (a *Agent) SetBudgetDelta(totalDelta float64, clusterSize int) {
	a.budget0 += totalDelta
	a.budget += totalDelta
	a.e -= totalDelta / float64(clusterSize)
	if a.e >= 0 {
		drop := a.e + emergencyShedMarginW
		if maxDrop := a.p - a.util.MinPower(); drop > maxDrop {
			drop = maxDrop
		}
		a.p -= drop
		a.e -= drop
	}
}
