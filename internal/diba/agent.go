package diba

import (
	"fmt"
	"sort"

	"powercap/internal/workload"
)

// Agent is one server's DiBA controller running over a Transport — the unit
// that would be deployed per machine in a real cluster. It executes the
// identical per-node rule as the synchronous Engine (nodeRule), in
// bulk-synchronous rounds: broadcast the local estimate, gather every
// neighbor's, step.
type Agent struct {
	// ID is the agent's node id, unique within the cluster.
	ID int
	// Neighbors are the node ids this agent exchanges estimates with.
	Neighbors []int

	util workload.Utility
	cfg  Config
	tr   Transport

	p, e float64
	// pending buffers messages that arrived early: a neighbor may run up to
	// one round ahead of us (it cannot advance further without our current
	// message). Keyed by round, then by sender.
	pending map[int]map[int]Message
	round   int
}

// AgentState is an agent's externally visible state after a run.
type AgentState struct {
	ID     int
	Power  float64
	E      float64
	Rounds int
}

// NewAgent constructs an agent. budget and clusterSize let the agent derive
// its initial estimate locally: it starts at its idle cap with an even
// share of the cluster surplus, exactly as Engine does.
func NewAgent(id int, neighbors []int, u workload.Utility, budget float64, clusterSize int, totalIdle float64, cfg Config, tr Transport) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(neighbors) == 0 {
		return nil, fmt.Errorf("diba: agent %d has no neighbors", id)
	}
	share := (totalIdle - budget) / float64(clusterSize)
	if share >= 0 {
		return nil, fmt.Errorf("diba: budget %.1f cannot cover cluster idle power %.1f", budget, totalIdle)
	}
	ns := append([]int(nil), neighbors...)
	sort.Ints(ns)
	return &Agent{
		ID:        id,
		Neighbors: ns,
		util:      u,
		cfg:       cfg.withDefaults(),
		tr:        tr,
		p:         u.MinPower(),
		e:         share,
		pending:   make(map[int]map[int]Message),
	}, nil
}

// Power returns the agent's current power cap.
func (a *Agent) Power() float64 { return a.p }

// Estimate returns the agent's current surplus estimate.
func (a *Agent) Estimate() float64 { return a.e }

// Run executes the given number of BSP rounds and returns the final state.
func (a *Agent) Run(rounds int) (AgentState, error) {
	for r := 0; r < rounds; r++ {
		if err := a.StepOnce(); err != nil {
			return AgentState{}, fmt.Errorf("diba: agent %d round %d: %w", a.ID, r, err)
		}
	}
	return AgentState{ID: a.ID, Power: a.p, E: a.e, Rounds: a.round}, nil
}

// StepOnce performs one BSP round: broadcast the current estimate, gather
// one message from every neighbor for this round, apply nodeRule.
func (a *Agent) StepOnce() error {
	out := Message{From: a.ID, Round: a.round, E: a.e, Degree: len(a.Neighbors)}
	for _, nb := range a.Neighbors {
		if err := a.tr.Send(nb, out); err != nil {
			return err
		}
	}
	got, err := a.gather()
	if err != nil {
		return err
	}
	nbrE := make([]float64, len(a.Neighbors))
	nbrDeg := make([]int32, len(a.Neighbors))
	for k, nb := range a.Neighbors {
		m := got[nb]
		nbrE[k] = m.E
		nbrDeg[k] = int32(m.Degree)
	}
	cfg := a.cfg
	cfg.Eta = a.cfg.etaAt(a.round)
	phat, outflow := nodeRule(cfg, a.util, a.p, a.e, len(a.Neighbors), nbrE, nbrDeg)
	a.p += phat
	// Grouped exactly as Engine.Step computes it so that agents and engine
	// stay bitwise identical (float addition is not associative).
	a.e = a.e + phat - outflow
	a.round++
	return nil
}

// gather collects this round's message from every neighbor, buffering any
// early messages from the next round.
func (a *Agent) gather() (map[int]Message, error) {
	need := make(map[int]bool, len(a.Neighbors))
	for _, nb := range a.Neighbors {
		need[nb] = true
	}
	got := a.pending[a.round]
	if got == nil {
		got = make(map[int]Message, len(a.Neighbors))
	} else {
		delete(a.pending, a.round)
		for from := range got {
			delete(need, from)
		}
	}
	for len(need) > 0 {
		m, err := a.tr.Recv()
		if err != nil {
			return nil, err
		}
		switch {
		case m.Round == a.round:
			if need[m.From] {
				got[m.From] = m
				delete(need, m.From)
			}
		case m.Round > a.round:
			buf := a.pending[m.Round]
			if buf == nil {
				buf = make(map[int]Message)
				a.pending[m.Round] = buf
			}
			buf[m.From] = m
		default:
			// Stale duplicate; BSP semantics make these impossible with a
			// reliable ordered transport, so drop defensively.
		}
	}
	return got, nil
}

// SetBudgetDelta applies a cluster budget change of totalDelta watts,
// shifting this agent's estimate by its 1/N share — the local action every
// agent takes when the new budget is announced. If the estimate turns
// non-negative the agent sheds power immediately, down to its idle cap.
func (a *Agent) SetBudgetDelta(totalDelta float64, clusterSize int) {
	a.e -= totalDelta / float64(clusterSize)
	if a.e >= 0 {
		drop := a.e + 0.01
		if maxDrop := a.p - a.util.MinPower(); drop > maxDrop {
			drop = maxDrop
		}
		a.p -= drop
		a.e -= drop
	}
}
