package diba

import (
	"fmt"
	"math"
)

// Distributed termination. The Engine detects quiescence with a global
// view; real agents have none. RunUntilQuiet gives agents a coordinator-
// free stopping rule built from two piggybacked fields:
//
//   - Quiet: a min-consensus of "rounds since my power move exceeded tol".
//     Each round a node's view becomes min(own counter, neighbors' views
//     from last round); once every node has been quiet for a while, the
//     minimum seen anywhere rises together across the graph (with at most
//     diameter rounds of lag).
//   - Stop: when a node's Quiet view crosses the settle threshold at round
//     t, it proposes the stop round t+margin and floods the *minimum*
//     proposal. Because all nodes cross within diameter rounds of each
//     other and margin exceeds the diameter, every node learns the same
//     minimal proposal in time — and all agents halt at exactly the same
//     round, so no gather ever blocks on a stopped neighbor.
//
// The rule is conservative: margin > graph diameter is required for
// agreement (a ring of N needs margin ≥ N/2; callers who know only N can
// pass N). If maxRounds elapses first, agents stop there — also all at the
// same round, keeping the BSP exchange deadlock-free.

// QuietConfig parameterizes RunUntilQuiet.
type QuietConfig struct {
	// TolW is the power-move magnitude below which a round counts as quiet.
	TolW float64
	// Settle is how many consecutive quiet rounds (as seen by the global
	// minimum) trigger a stop proposal.
	Settle int
	// Margin is added to the proposal round; it must exceed the
	// communication graph's diameter for all agents to agree.
	Margin int
	// MaxRounds bounds the run unconditionally.
	MaxRounds int
}

// Validate reports configuration errors.
func (q QuietConfig) Validate() error {
	if q.TolW <= 0 || q.Settle <= 0 || q.Margin <= 0 || q.MaxRounds <= 0 {
		return fmt.Errorf("diba: QuietConfig fields must be positive: %+v", q)
	}
	return nil
}

// RunUntilQuiet runs BSP rounds until the distributed stopping rule fires
// (or MaxRounds elapses) and returns the final state. Every agent in the
// cluster must use the same QuietConfig, or they will disagree on the stop
// round and deadlock.
func (a *Agent) RunUntilQuiet(q QuietConfig) (AgentState, error) {
	if err := q.Validate(); err != nil {
		return AgentState{}, err
	}
	ownQuiet := 0
	quietView := 0
	stopAt := math.MaxInt
	for a.round < q.MaxRounds {
		if a.round >= stopAt {
			break
		}
		outStop := 0 // 0 encodes "no proposal yet" on the wire
		if stopAt != math.MaxInt {
			outStop = stopAt
		}
		got, phat, err := a.runRound(quietView, outStop)
		if err != nil {
			return AgentState{}, err
		}
		// Membership may have changed mid-round (a neighbor declared dead
		// contributes no message), so the consensus fields fold over the
		// messages actually gathered rather than the static neighbor list.
		minNbrQuiet := math.MaxInt
		for _, m := range got {
			if m.Quiet < minNbrQuiet {
				minNbrQuiet = m.Quiet
			}
			if m.Stop != 0 && m.Stop < stopAt {
				stopAt = m.Stop
			}
		}

		if math.Abs(phat) < q.TolW {
			ownQuiet++
		} else {
			ownQuiet = 0
		}
		// Aged min-consensus: a neighbor's view is one round old, and quiet
		// counters grow by one per quiet round, so add the age before
		// taking the minimum. (Without the +1 the historical zero would
		// flood the graph and the view could never rise.)
		quietView = ownQuiet
		if minNbrQuiet != math.MaxInt && minNbrQuiet+1 < quietView {
			quietView = minNbrQuiet + 1
		}
		if quietView >= q.Settle && stopAt == math.MaxInt {
			stopAt = a.round + q.Margin
		}
	}
	return a.state(), nil
}
