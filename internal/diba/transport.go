package diba

import (
	"fmt"
	"sync"
)

// Message is the single message type DiBA agents exchange: one scalar
// estimate per neighbor per round, plus the sender's degree (needed for the
// symmetric per-edge flow caps; it is constant, but carrying it keeps the
// protocol stateless).
type Message struct {
	From   int     `json:"from"`
	Round  int     `json:"round"`
	E      float64 `json:"e"`
	Degree int     `json:"deg"`
	// Quiet and Stop drive the distributed termination rule of
	// RunUntilQuiet (see terminate.go); both are zero during plain Run.
	Quiet int `json:"quiet,omitempty"`
	Stop  int `json:"stop,omitempty"`
}

// Transport moves messages between one agent and its neighbors. Send must
// be safe for concurrent use with Recv; Recv blocks until a message for
// this agent arrives. Message order per sender must be preserved.
type Transport interface {
	Send(to int, m Message) error
	Recv() (Message, error)
	// Close releases transport resources. Agents call it when done.
	Close() error
}

// ChanNetwork is an in-process transport fabric: one buffered mailbox per
// agent, delivery by channel send. It implements reliable, ordered,
// asynchronous delivery — the semantics of the TCP links the prototype
// cluster uses, without the sockets.
type ChanNetwork struct {
	mu        sync.Mutex
	mailboxes []chan Message
	closed    bool
}

// NewChanNetwork creates a fabric for n agents with the given per-agent
// mailbox capacity (buffering at least 2× the max degree avoids any
// blocking in BSP rounds).
func NewChanNetwork(n, capacity int) *ChanNetwork {
	boxes := make([]chan Message, n)
	for i := range boxes {
		boxes[i] = make(chan Message, capacity)
	}
	return &ChanNetwork{mailboxes: boxes}
}

// Endpoint returns agent id's transport endpoint.
func (cn *ChanNetwork) Endpoint(id int) Transport {
	return &chanEndpoint{net: cn, id: id}
}

type chanEndpoint struct {
	net *ChanNetwork
	id  int
}

func (ep *chanEndpoint) Send(to int, m Message) error {
	if to < 0 || to >= len(ep.net.mailboxes) {
		return fmt.Errorf("diba: send to unknown agent %d", to)
	}
	ep.net.mailboxes[to] <- m
	return nil
}

func (ep *chanEndpoint) Recv() (Message, error) {
	m, ok := <-ep.net.mailboxes[ep.id]
	if !ok {
		return Message{}, fmt.Errorf("diba: agent %d mailbox closed", ep.id)
	}
	return m, nil
}

func (ep *chanEndpoint) Close() error { return nil }
