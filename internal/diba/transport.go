package diba

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Message kinds. The zero value is a normal estimate (round) message so that
// the pre-fault-tolerance wire format is unchanged; control-plane messages
// (heartbeats, failure epidemics) are tagged explicitly.
const (
	// MsgEstimate is a normal BSP round message.
	MsgEstimate = 0
	// MsgHeartbeat is a transport-level liveness beacon. Transports filter
	// heartbeats out of the inbox where they can; agents drop any that leak
	// through.
	MsgHeartbeat = 1
	// MsgNodeDead is the failure epidemic: a survivor announcing a dead
	// node's identity, its frozen state, and the agreed repair round. See
	// repair.go.
	MsgNodeDead = 2
	// MsgHealth is an application-level telemetry-health beacon: an agent
	// whose power sensor went invalid announces degraded operation (Act=1)
	// or recovery (Act=0) so peers can observe it without any change to the
	// round arithmetic. See telemetry.go.
	MsgHealth = 3
	// MsgRejoinReq, MsgRejoin and MsgRejoinAck implement the restart-rejoin
	// handshake: a node restarted from a snapshot asks its former neighbors
	// back in (Req), the survivors agree on a rejoin round and flood it
	// (Rejoin), and each contacted survivor hands the rejoiner its frozen
	// state and the agreed round (Ack). See rejoin.go.
	MsgRejoinReq = 4
	MsgRejoin    = 5
	MsgRejoinAck = 6
	// MsgLease, MsgLeaseAck and MsgAggHello are the hierarchical control
	// plane (hieragent.go): an aggregate agent grants its group a TTL'd
	// budget lease (Lease), upper-ring aggregates exchange demand and
	// per-edge transfer ledgers (AggHello/LeaseAck), and a failed-over
	// aggregate reconciles its group's lease from its neighbors' ledger
	// records. See lease.go for the conservation identity.
	MsgLease    = 7
	MsgLeaseAck = 8
	MsgAggHello = 9
	// MsgPing and MsgPong are the RTT measurement exchange of the
	// gray-failure detector (rtt.go): a ping carries the sender's send
	// timestamp in Echo, the receiver answers a pong echoing it untouched,
	// and the pinger computes the round trip entirely on its own clock —
	// no clock synchronization needed. Transports answer and absorb both
	// kinds before the inbox where they can; agents drop any that leak
	// through.
	MsgPing = 10
	MsgPong = 11

	// maxKnownMsgKind is the highest message kind this build understands.
	// Agents ignore control frames with a larger Kind — they come from a
	// newer build in a mixed-version cluster and must not be misread as
	// round messages.
	maxKnownMsgKind = MsgPong
)

// Message is the single message type DiBA agents exchange: one scalar
// estimate per neighbor per round, plus the sender's degree (needed for the
// symmetric per-edge flow caps; carrying it also makes the protocol robust
// to membership changes — a receiver always uses the degree the sender
// actually computed with).
type Message struct {
	From   int     `json:"from"`
	Round  int     `json:"round"`
	E      float64 `json:"e"`
	Degree int     `json:"deg"`
	// Quiet and Stop drive the distributed termination rule of
	// RunUntilQuiet (see terminate.go); both are zero during plain Run.
	Quiet int `json:"quiet,omitempty"`
	Stop  int `json:"stop,omitempty"`
	// P is the sender's current power cap. It does not enter the round
	// arithmetic; it is carried so that, if the sender dies, its neighbors
	// hold its frozen state for the budget reconciliation (failure.go
	// derives the survivors' budget as P − p_dead + e_dead).
	P float64 `json:"p,omitempty"`
	// Kind tags control-plane messages; 0 (MsgEstimate) is a round message.
	Kind int `json:"kind,omitempty"`
	// Dead and Act are the MsgNodeDead payload: the dead node id and the
	// agreed chord-activation round. For a MsgNodeDead, Round/E/P carry the
	// dead node's final broadcast round and frozen estimate/power, not the
	// sender's.
	Dead int `json:"dead,omitempty"`
	Act  int `json:"act,omitempty"`
	// Group, Epoch, Lease, Cum and Seq are the hierarchical control-plane
	// payload (MsgLease/MsgLeaseAck/MsgAggHello, hieragent.go): the sender's
	// group id, its aggregate epoch (fencing deposed aggregates), the lease
	// value in integer milliwatts, and one upper-ring edge's transfer ledger
	// record (net milliwatts given away, with its per-edge sequence number).
	// They encode as binary codec v2 fields; on a link negotiated at v1 a
	// message carrying any of them falls back to JSON, which pre-v2 decoders
	// parse field-by-field (unknown JSON keys are ignored).
	Group int   `json:"grp,omitempty"`
	Epoch int   `json:"epoch,omitempty"`
	Lease int64 `json:"lease,omitempty"`
	Cum   int64 `json:"cum,omitempty"`
	Seq   int   `json:"seq,omitempty"`
	// Echo is the RTT measurement payload (MsgPing/MsgPong): the pinger's
	// monotonic send timestamp in nanoseconds, echoed back verbatim by the
	// pong so the pinger can compute the round trip on its own clock. It
	// encodes as the binary codec's v3 field; on a link negotiated below
	// v3 a message carrying it falls back to JSON.
	Echo int64 `json:"echo,omitempty"`
}

// Transport moves messages between one agent and its neighbors. Send must
// be safe for concurrent use with Recv; Recv blocks until a message for
// this agent arrives. Message order per sender must be preserved.
type Transport interface {
	Send(to int, m Message) error
	Recv() (Message, error)
	// Close releases transport resources. Agents call it when done.
	Close() error
}

// ErrRecvTimeout is returned by TimeoutRecver.RecvTimeout when no message
// arrived within the deadline. It is the signal the failure detector in
// Agent.gather is built on.
var ErrRecvTimeout = errors.New("diba: recv timeout")

// TimeoutRecver is implemented by transports that support deadline-aware
// receive. All transports in this package implement it; the failure
// detector requires it (a Transport without RecvTimeout can only block).
type TimeoutRecver interface {
	RecvTimeout(d time.Duration) (Message, error)
}

// TryRecver is implemented by transports that support a non-blocking
// receive. The gather loop uses it to drain control-plane traffic (lease
// floods, dead epidemics, deposition verdicts) even on rounds where every
// needed frame was already buffered — a member lagging its peers would
// otherwise never touch the transport again and go deaf to the group.
type TryRecver interface {
	// TryRecv returns the next message if one is immediately available.
	// ok is false when the queue is empty; err reports a closed transport.
	TryRecv() (m Message, ok bool, err error)
}

// tryRecv performs a non-blocking receive when the transport supports it,
// reporting an empty queue otherwise (a blocking-only transport simply
// skips the drain).
func tryRecv(tr Transport) (Message, bool, error) {
	if t, ok := tr.(TryRecver); ok {
		return t.TryRecv()
	}
	return Message{}, false, nil
}

// PeerLiveness is implemented by transports that track per-peer liveness
// (e.g. TCPTransport's heartbeats). The failure detector uses it to
// distinguish a slow peer (recent heartbeat, keep waiting) from a dead one.
type PeerLiveness interface {
	// LastHeard returns the last time any traffic arrived from peer, and
	// whether the peer has been heard from at all.
	LastHeard(peer int) (time.Time, bool)
}

// WireAccountant is implemented by transports that meter their wire-level
// traffic (TCPTransport natively; FaultTransport passes the counters of its
// inner transport through). Experiments use it to report measured
// bytes-per-round next to the netsim cost model.
type WireAccountant interface {
	// WireStats returns per-peer traffic counters, keyed by peer id.
	WireStats() map[int]WireStats
	// WireTotals returns traffic counters summed over all peers.
	WireTotals() WireStats
}

// recvTimeout receives with a deadline when the transport supports it and
// d > 0, falling back to a blocking Recv otherwise.
func recvTimeout(tr Transport, d time.Duration) (Message, error) {
	if d > 0 {
		if tm, ok := tr.(TimeoutRecver); ok {
			return tm.RecvTimeout(d)
		}
	}
	return tr.Recv()
}

// ChanNetwork is an in-process transport fabric: one buffered mailbox per
// agent, delivery by channel send. It implements reliable, ordered,
// asynchronous delivery — the semantics of the TCP links the prototype
// cluster uses, without the sockets. A closed endpoint behaves like a dead
// host: its own sends fail, sends to it fail, and its Recv unblocks with an
// error. A full mailbox is an error, never an indefinite block, so a stalled
// receiver cannot wedge its senders.
type ChanNetwork struct {
	mu        sync.Mutex
	mailboxes []chan Message
	closed    []bool
	done      []chan struct{}
}

// NewChanNetwork creates a fabric for n agents with the given per-agent
// mailbox capacity (buffering at least 2× the max degree avoids any
// blocking in BSP rounds).
func NewChanNetwork(n, capacity int) *ChanNetwork {
	boxes := make([]chan Message, n)
	done := make([]chan struct{}, n)
	for i := range boxes {
		boxes[i] = make(chan Message, capacity)
		done[i] = make(chan struct{})
	}
	return &ChanNetwork{mailboxes: boxes, closed: make([]bool, n), done: done}
}

// Endpoint returns agent id's transport endpoint.
func (cn *ChanNetwork) Endpoint(id int) Transport {
	return &chanEndpoint{net: cn, id: id}
}

type chanEndpoint struct {
	net *ChanNetwork
	id  int
}

func (ep *chanEndpoint) Send(to int, m Message) error {
	cn := ep.net
	if to < 0 || to >= len(cn.mailboxes) {
		return fmt.Errorf("diba: send to unknown agent %d", to)
	}
	cn.mu.Lock()
	senderClosed, targetClosed := cn.closed[ep.id], cn.closed[to]
	cn.mu.Unlock()
	if senderClosed {
		return fmt.Errorf("diba: endpoint %d is closed", ep.id)
	}
	if targetClosed {
		return fmt.Errorf("diba: endpoint %d is closed (peer down)", to)
	}
	select {
	case cn.mailboxes[to] <- m:
		return nil
	default:
		return fmt.Errorf("diba: mailbox of agent %d full (capacity %d)", to, cap(cn.mailboxes[to]))
	}
}

func (ep *chanEndpoint) Recv() (Message, error) {
	select {
	case m := <-ep.net.mailboxes[ep.id]:
		return m, nil
	case <-ep.net.done[ep.id]:
		// Drain any message that raced the close; then report closure.
		select {
		case m := <-ep.net.mailboxes[ep.id]:
			return m, nil
		default:
		}
		return Message{}, fmt.Errorf("diba: agent %d mailbox closed", ep.id)
	}
}

// RecvTimeout receives the next message or returns ErrRecvTimeout after d.
func (ep *chanEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case m := <-ep.net.mailboxes[ep.id]:
		return m, nil
	case <-ep.net.done[ep.id]:
		select {
		case m := <-ep.net.mailboxes[ep.id]:
			return m, nil
		default:
		}
		return Message{}, fmt.Errorf("diba: agent %d mailbox closed", ep.id)
	case <-timer.C:
		return Message{}, ErrRecvTimeout
	}
}

// TryRecv returns an immediately available message without blocking.
func (ep *chanEndpoint) TryRecv() (Message, bool, error) {
	select {
	case m := <-ep.net.mailboxes[ep.id]:
		return m, true, nil
	case <-ep.net.done[ep.id]:
		select {
		case m := <-ep.net.mailboxes[ep.id]:
			return m, true, nil
		default:
		}
		return Message{}, false, fmt.Errorf("diba: agent %d mailbox closed", ep.id)
	default:
		return Message{}, false, nil
	}
}

// Reopen brings a closed endpoint back to life — the in-process analogue of
// a crashed daemon restarting on the same host. Stale messages from before
// the crash are drained so the reborn agent starts with an empty inbox.
func (cn *ChanNetwork) Reopen(id int) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if id < 0 || id >= len(cn.mailboxes) || !cn.closed[id] {
		return
	}
	for {
		select {
		case <-cn.mailboxes[id]:
			continue
		default:
		}
		break
	}
	cn.closed[id] = false
	cn.done[id] = make(chan struct{})
}

func (ep *chanEndpoint) Close() error {
	cn := ep.net
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if !cn.closed[ep.id] {
		cn.closed[ep.id] = true
		close(cn.done[ep.id])
	}
	return nil
}
