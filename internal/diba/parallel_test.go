package diba

import (
	"math/rand"
	"runtime"
	"testing"

	"powercap/internal/topology"
	"powercap/internal/workload"
)

// The determinism contract of StepParallel: whatever the worker count, a
// parallel round computes exactly the same floats as a serial one — state,
// activity signal, and the incrementally maintained aggregates. The
// experiment harness leans on this to keep -j N output byte-identical to
// -j 1.

func parallelTestGraphs(t *testing.T, n int) map[string]func() *topology.Graph {
	t.Helper()
	return map[string]func() *topology.Graph{
		"ring":    func() *topology.Graph { return topology.Ring(n) },
		"chordal": func() *topology.Graph { return topology.ChordalRing(n, 7) },
		"random": func() *topology.Graph {
			return topology.ConnectedErdosRenyi(n, 2*n, rand.New(rand.NewSource(11)))
		},
	}
}

func newTestEngine(t *testing.T, g *topology.Graph, n int) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(g, a.UtilitySlice(), 172*float64(n), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return en
}

func requireIdentical(t *testing.T, serial, parallel *Engine, round int, label string) {
	t.Helper()
	ps, es := serial.Alloc(), serial.Estimates()
	pp, ep := parallel.Alloc(), parallel.Estimates()
	for i := range ps {
		if ps[i] != pp[i] {
			t.Fatalf("%s round %d: p[%d] diverged: serial %v parallel %v", label, round, i, ps[i], pp[i])
		}
		if es[i] != ep[i] {
			t.Fatalf("%s round %d: e[%d] diverged: serial %v parallel %v", label, round, i, es[i], ep[i])
		}
	}
	if serial.TotalPower() != parallel.TotalPower() {
		t.Fatalf("%s round %d: ΣP diverged: %v vs %v", label, round, serial.TotalPower(), parallel.TotalPower())
	}
	if serial.TotalUtility() != parallel.TotalUtility() {
		t.Fatalf("%s round %d: ΣU diverged: %v vs %v", label, round, serial.TotalUtility(), parallel.TotalUtility())
	}
}

// forceParallelSmallN drops the serial-fallback threshold so the bitwise
// tests exercise real fork/join even on their deliberately small clusters.
func forceParallelSmallN(t *testing.T) {
	t.Helper()
	old := stepParallelMinN
	stepParallelMinN = 0
	t.Cleanup(func() { stepParallelMinN = old })
}

func TestStepParallelBitwiseIdentical(t *testing.T) {
	forceParallelSmallN(t)
	const n, rounds = 120, 150
	workerCounts := []int{1, 2, 3, runtime.GOMAXPROCS(0)}
	for name, build := range parallelTestGraphs(t, n) {
		for _, w := range workerCounts {
			serial := newTestEngine(t, build(), n)
			par := newTestEngine(t, build(), n)
			for r := 0; r < rounds; r++ {
				actS := serial.Step()
				actP := par.StepParallel(w)
				if actS != actP {
					t.Fatalf("%s w=%d round %d: activity diverged: %v vs %v", name, w, r, actS, actP)
				}
			}
			requireIdentical(t, serial, par, rounds, name)
		}
	}
}

func TestStepParallelBitwiseIdenticalWithDeadNodes(t *testing.T) {
	forceParallelSmallN(t)
	const n, rounds = 100, 120
	for _, w := range []int{2, 3} {
		// Chords keep the survivors connected when nodes die.
		serial := newTestEngine(t, topology.ChordalRing(n, 9), n)
		par := newTestEngine(t, topology.ChordalRing(n, 9), n)
		for r := 0; r < rounds; r++ {
			if r == 40 || r == 80 {
				victim := 13 * r % n
				if err := serial.FailNode(victim); err != nil {
					t.Fatal(err)
				}
				if err := par.FailNode(victim); err != nil {
					t.Fatal(err)
				}
			}
			actS := serial.Step()
			actP := par.StepParallel(w)
			if actS != actP {
				t.Fatalf("w=%d round %d: activity diverged: %v vs %v", w, r, actS, actP)
			}
			if r%20 == 0 {
				requireIdentical(t, serial, par, r, "dead-nodes")
			}
		}
		requireIdentical(t, serial, par, rounds, "dead-nodes")
	}
}

// The BENCH baselines show the fork/join overhead losing to the serial
// loop below a few thousand nodes (and always when only one worker is
// effective: StepParallel(1) at n=10000 measured 737µs vs Step's 647µs
// before the fallback). The dispatch rule must therefore route those cases
// to the serial path; BenchmarkStepSerial*/BenchmarkStepParallel* back the
// threshold's placement.
func TestStepParallelDispatchCrossover(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0) // what workers=0 resolves to (serial when 1)
	cases := []struct {
		n, workers, want int
	}{
		{10000, 1, 1},                     // one worker: serial, whatever the size
		{100, 8, 1},                       // small cluster: serial, whatever the workers
		{stepParallelThreshold - 1, 8, 1}, // just below the crossover
		{stepParallelThreshold, 8, 8},     // at the crossover
		{stepParallelThreshold, 0, gmp},   // auto workers at the crossover
		{3, 8, 1},                         // clamped to n, still <= minimum
	}
	for _, tc := range cases {
		if got := stepParallelWorkers(tc.n, tc.workers); got != tc.want {
			t.Errorf("stepParallelWorkers(n=%d, workers=%d) = %d, want %d", tc.n, tc.workers, got, tc.want)
		}
	}
}

// The incremental aggregates must track a from-scratch recomputation: drift
// beyond float noise would silently corrupt the convergence criterion.
func TestIncrementalAggregatesMatchFullSweep(t *testing.T) {
	const n = 200
	en := newTestEngine(t, topology.Ring(n), n)
	fullSums := func() (sumP, sumU float64) {
		for i, p := range en.p {
			if en.dead[i] {
				continue
			}
			sumP += p
			sumU += en.us[i].Value(p)
		}
		return
	}
	for r := 0; r < 500; r++ {
		en.Step()
	}
	wantP, wantU := fullSums()
	if d := en.TotalPower() - wantP; d > 1e-7 || d < -1e-7 {
		t.Fatalf("ΣP drifted: incremental %v, full sweep %v", en.TotalPower(), wantP)
	}
	if d := en.TotalUtility() - wantU; d > 1e-7 || d < -1e-7 {
		t.Fatalf("ΣU drifted: incremental %v, full sweep %v", en.TotalUtility(), wantU)
	}
}

func benchmarkStepVsParallel(b *testing.B, n int, parallel bool) {
	rng := rand.New(rand.NewSource(1))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		b.Fatal(err)
	}
	en, err := New(topology.Ring(n), a.UtilitySlice(), 170*float64(n), Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if parallel {
			en.StepParallel(0)
		} else {
			en.Step()
		}
	}
}

func BenchmarkStepSerial1000(b *testing.B)    { benchmarkStepVsParallel(b, 1000, false) }
func BenchmarkStepParallel1000(b *testing.B)  { benchmarkStepVsParallel(b, 1000, true) }
func BenchmarkStepSerial10000(b *testing.B)   { benchmarkStepVsParallel(b, 10000, false) }
func BenchmarkStepParallel10000(b *testing.B) { benchmarkStepVsParallel(b, 10000, true) }
