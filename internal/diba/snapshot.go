package diba

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Operational checkpointing. A deployment restarting its control plane
// (upgrade, crash of the monitoring host running a simulation twin, …)
// should resume from the last known state instead of re-ramping the whole
// cluster from idle. Snapshot captures exactly the algorithm state — caps,
// estimates, budget, round count — and Restore resumes, re-validating the
// invariants before accepting it.

// Snapshot is the serializable state of an Engine.
type Snapshot struct {
	Version int       `json:"version"`
	Budget  float64   `json:"budget"`
	Iter    int       `json:"iter"`
	P       []float64 `json:"p"`
	E       []float64 `json:"e"`
	Dead    []int     `json:"dead,omitempty"`
}

// snapshotVersion guards the wire format.
const snapshotVersion = 1

// Snapshot captures the engine's current state.
func (en *Engine) Snapshot() Snapshot {
	s := Snapshot{
		Version: snapshotVersion,
		Budget:  en.budget,
		Iter:    en.iter,
		P:       append([]float64(nil), en.p...),
		E:       append([]float64(nil), en.e...),
	}
	for i := range en.dead {
		s.Dead = append(s.Dead, i)
	}
	return s
}

// WriteSnapshot serializes the engine state as JSON.
func (en *Engine) WriteSnapshot(w io.Writer) error {
	return json.NewEncoder(w).Encode(en.Snapshot())
}

// Restore replaces the engine's state with the snapshot after validating
// shape and invariants (conservation to 1e-6·N and per-node cap ranges).
// The topology and utilities are the receiver's own — a snapshot only
// carries dynamic state.
func (en *Engine) Restore(s Snapshot) error {
	if s.Version != snapshotVersion {
		return fmt.Errorf("diba: snapshot version %d unsupported", s.Version)
	}
	n := len(en.us)
	if len(s.P) != n || len(s.E) != n {
		return fmt.Errorf("diba: snapshot for %d nodes, engine has %d", len(s.P), n)
	}
	dead := make(map[int]bool, len(s.Dead))
	for _, i := range s.Dead {
		if i < 0 || i >= n {
			return fmt.Errorf("diba: snapshot dead node %d out of range", i)
		}
		dead[i] = true
	}
	var sumE, sumP float64
	for i := 0; i < n; i++ {
		if dead[i] {
			if s.P[i] != 0 || s.E[i] != 0 {
				return fmt.Errorf("diba: snapshot dead node %d carries state", i)
			}
			continue
		}
		u := en.us[i]
		if s.P[i] < u.MinPower()-1e-9 || s.P[i] > u.MaxPower()+1e-9 {
			return fmt.Errorf("diba: snapshot cap p[%d]=%g outside [%g,%g]", i, s.P[i], u.MinPower(), u.MaxPower())
		}
		if s.E[i] >= 0 {
			return fmt.Errorf("diba: snapshot estimate e[%d]=%g not strictly negative", i, s.E[i])
		}
		sumE += s.E[i]
		sumP += s.P[i]
	}
	if diff := sumE - (sumP - s.Budget); diff > 1e-6*float64(n) || diff < -1e-6*float64(n) {
		return errors.New("diba: snapshot violates conservation")
	}
	copy(en.p, s.P)
	copy(en.e, s.E)
	en.budget = s.Budget
	en.iter = s.Iter
	// Dead nodes must also leave the communication graph, exactly as
	// FailNode arranged in the engine that took the snapshot — otherwise
	// live neighbors would exchange flows with a zeroed phantom estimate
	// and break conservation.
	for i := range dead {
		if !en.dead[i] {
			en.g = en.g.RemoveNode(i)
		}
	}
	en.dead = dead
	en.rebuildTopoCache()
	en.refreshAggregates()
	return nil
}

// ReadSnapshot deserializes and applies a snapshot.
func (en *Engine) ReadSnapshot(r io.Reader) error {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("diba: decoding snapshot: %w", err)
	}
	return en.Restore(s)
}
