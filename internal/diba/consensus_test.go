package diba

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powercap/internal/stats"
	"powercap/internal/topology"
)

func TestAverageConsensusValidation(t *testing.T) {
	if _, err := AverageConsensus(topology.Ring(4), []float64{1}, 10); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := AverageConsensus(topology.NewGraph(0), nil, 10); err == nil {
		t.Fatal("empty graph must error")
	}
	if _, err := AverageConsensus(topology.NewGraph(3), []float64{1, 2, 3}, 10); err == nil {
		t.Fatal("disconnected graph must error")
	}
}

func TestAverageConsensusConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 100 + rng.Float64()*100
	}
	mean := stats.Mean(vals)
	out, err := AverageConsensus(topology.ChordalRing(n, 6), vals, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.Abs(v-mean) > 1e-6*mean {
			t.Fatalf("node %d estimate %v far from mean %v", i, v, mean)
		}
	}
}

func TestAverageConsensusTelemetry(t *testing.T) {
	// The operational use: every node learns the cluster's total draw.
	n := 60
	us := mkCluster(t, n, 97)
	en, err := New(topology.Ring(n), us, float64(n)*170, Config{})
	if err != nil {
		t.Fatal(err)
	}
	en.RunToQuiescence(1e-3, 20, 30000)
	draws := en.Alloc()
	total := en.TotalPower()
	est, err := AverageConsensus(topology.Ring(n), draws, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range est {
		if math.Abs(v*float64(n)-total) > 0.001*total {
			t.Fatalf("node %d total estimate %v vs true %v", i, v*float64(n), total)
		}
	}
}

// Properties: the sum is conserved exactly each run, and the value spread
// never increases (diffusion is a contraction).
func TestAverageConsensusProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		m := n + rng.Intn(2*n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := topology.ConnectedErdosRenyi(n, m, rng)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 50
		}
		out, err := AverageConsensus(g, vals, 50)
		if err != nil {
			return false
		}
		if math.Abs(stats.Sum(out)-stats.Sum(vals)) > 1e-6*(1+math.Abs(stats.Sum(vals))) {
			return false
		}
		spreadBefore := stats.Max(vals) - stats.Min(vals)
		spreadAfter := stats.Max(out) - stats.Min(out)
		return spreadAfter <= spreadBefore+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
