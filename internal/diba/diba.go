// Package diba implements the paper's primary contribution: fully
// decentralized power-budget allocation for server clusters (DiBA,
// Algorithm 4 of the text; the decentralized power-capping scheme of the
// HPCA'17 paper).
//
// Every server node i holds its power cap p_i and a local estimate e_i of
// the cluster's power surplus. Two invariants drive the design:
//
//   - Conservation: Σ e_i = Σ p_i − P holds exactly at all times. A node's
//     power move p̂_i is added to both p_i and e_i, and the estimate flows
//     exchanged with neighbors are antisymmetric per edge, so they cancel
//     globally.
//   - Feasibility: every e_i stays strictly negative, enforced by a log
//     barrier and per-round move caps. All e_i < 0 implies Σ p_i < P —
//     the cluster budget is respected at every iteration, not only at
//     convergence, which is the safety property power capping exists for.
//
// Per round a node only sends its scalar e_i to its graph neighbors;
// consensus diffusion equalizes the estimates while each node ascends its
// barrier-augmented utility R_i = r_i(p_i) + η·log(−e_i). At the fixed
// point all estimates agree and every unclamped node satisfies
// r_i'(p_i) = λ with the shared shadow price λ = −η/e — the KKT point of
// the global problem, biased by the barrier by O(η·N) utility, which the
// default η keeps well under the paper's 1 % convergence criterion.
package diba

import (
	"errors"
	"fmt"
	"math"

	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Config holds the algorithm's tuning knobs. The zero value selects
// defaults suitable for the paper's cluster scales.
type Config struct {
	// Eta is the barrier weight η. The equilibrium leaves ≈ η/λ watts of
	// budget unused per node and costs ≈ η·N utility; smaller is closer to
	// optimal but numerically stiffer. Default 0.02.
	Eta float64
	// Damping scales the damped-Newton power step
	// p̂ = Damping·(r'(p)+η/e)/(−r''(p)+η/e²). The denominator is the local
	// curvature of the barrier-augmented objective, which keeps the step
	// stable however close e comes to zero (a fixed gradient step is not:
	// its sensitivity to e grows like η/e² and produces limit cycles).
	// Must lie in (0,1]; default 0.8.
	Damping float64
	// StepE is the consensus diffusion coefficient χ on the estimates:
	// the desired flow on edge (i,j) is χ·(e_i − e_j). Stability requires
	// χ ≤ 1/(maxdeg+1); the engine clamps it there. Default 0.25.
	StepE float64
	// Gamma ∈ (0,1) is the per-round safety fraction: flows into a node may
	// consume at most Gamma of its slack −e, and a node's own upward move
	// at most (1−Gamma)/2 of it, so e can never cross zero. Default 0.6.
	Gamma float64
	// MaxMoveW caps a single round's power move in watts. Default 8.
	MaxMoveW float64
	// EtaMin, when positive, anneals the barrier weight: after EtaDelay
	// rounds η decays geometrically (half-life EtaHalfLife rounds) down to
	// EtaMin. The schedule depends only on the shared round counter, so
	// every node applies the identical η without extra communication. A
	// large η converges fast but parks ≈η·N utility below the optimum;
	// annealing recovers that bias after the transient. Annealing applies
	// to the round-counted modes (Engine, Agent); the gossip and
	// hierarchical engines ignore it.
	EtaMin float64
	// EtaDelay is the number of rounds before annealing starts; 0 selects
	// 300 when EtaMin is set.
	EtaDelay int
	// EtaHalfLife is the decay half-life in rounds; 0 selects 200 when
	// EtaMin is set.
	EtaHalfLife int

	// Ablation switches (see the ablation experiment and DESIGN.md): these
	// re-enable the naive variants the final design replaced, to
	// demonstrate why the design is what it is. Leave zero in production.

	// FixedStepP, when positive, replaces the damped-Newton power step with
	// the fixed gradient step p̂ = FixedStepP·(r'(p)+η/e). Near the
	// constraint its sensitivity to e grows like η/e², which produces
	// sustained limit cycles instead of convergence.
	FixedStepP float64
	// TwoSidedCaps clamps each edge flow by the *smaller* of the two
	// endpoints' slacks instead of the at-risk endpoint's. The symmetric
	// cap looks safer but starves exactly the nodes that most need
	// headroom (their own slack is near zero), stalling convergence.
	TwoSidedCaps bool
}

func (c Config) withDefaults() Config {
	if c.Eta == 0 {
		c.Eta = 0.02
	}
	if c.Damping == 0 {
		c.Damping = 0.8
	}
	if c.StepE == 0 {
		c.StepE = 0.25
	}
	if c.Gamma == 0 {
		c.Gamma = 0.6
	}
	if c.MaxMoveW == 0 {
		c.MaxMoveW = 8
	}
	if c.EtaMin > 0 {
		if c.EtaDelay == 0 {
			c.EtaDelay = 300
		}
		if c.EtaHalfLife == 0 {
			c.EtaHalfLife = 200
		}
	}
	return c
}

// etaAt returns the barrier weight in effect at the given round under the
// annealing schedule (the configured Eta when annealing is off).
func (c Config) etaAt(round int) float64 {
	if c.EtaMin <= 0 || c.EtaMin >= c.Eta || round <= c.EtaDelay {
		return c.Eta
	}
	eta := c.Eta * math.Pow(0.5, float64(round-c.EtaDelay)/float64(c.EtaHalfLife))
	if eta < c.EtaMin {
		return c.EtaMin
	}
	return eta
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Eta < 0 || c.StepE <= 0 || c.MaxMoveW <= 0 {
		return errors.New("diba: non-positive tuning parameter")
	}
	if c.EtaMin < 0 || c.EtaDelay < 0 || c.EtaHalfLife < 0 {
		return errors.New("diba: negative annealing parameter")
	}
	if c.Damping <= 0 || c.Damping > 1 {
		return errors.New("diba: Damping must lie in (0,1]")
	}
	if c.Gamma <= 0 || c.Gamma >= 1 {
		return errors.New("diba: Gamma must lie in (0,1)")
	}
	return nil
}

// Engine is the synchronous simulation of DiBA: it advances every node one
// round at a time using only the information that node would have received
// over the communication graph. The goroutine/TCP agents in this package
// run the identical per-node rule (nodeRule) asynchronously.
type Engine struct {
	g   *topology.Graph
	us  []workload.Utility
	cfg Config
	// budget is the cluster cap P.
	budget float64
	p, e   []float64
	// scratch buffers for the synchronous update.
	pNext, eNext []float64
	iter         int
	// dead marks failed nodes (see failure.go).
	dead map[int]bool

	// Flattened topology cache (see rebuildTopoCache): the graph's CSR view
	// plus per-node degrees and, aligned with nbrs, each neighbor's degree.
	// Degrees are static during a run, so the hot loop passes nbrDeg
	// segments to nodeRule without any per-round gather.
	off, nbrs []int32
	deg       []int32
	nbrDeg    []int32

	// Incremental aggregates (see refreshAggregates): Σp and Σr(p) over
	// live nodes, updated from per-node deltas each round so the
	// convergence check and telemetry reads are O(1) instead of an O(N)
	// re-sweep. uVal caches each live node's current utility value; dP/dU
	// are per-round delta scratch for the parallel path, reduced in index
	// order so serial and parallel rounds stay bitwise identical.
	sumP, sumU float64
	uVal       []float64
	dP, dU     []float64

	// Quadratic fast path (see rebuildQuadCache and roundQuad): when every
	// utility is a workload.Quadratic — true for all fitted workloads — the
	// hot loop dispatches to roundQuad, whose concrete-typed calls inline
	// where the interface calls in nodeRule cannot. quadV caches each
	// model's saturation vertex (+Inf when none) and chiE the per-edge
	// diffusion coefficient, both loop-invariant divisions otherwise paid
	// on every evaluation. Both rules perform the same arithmetic, so the
	// paths are bitwise interchangeable.
	qs      []workload.Quadratic
	quadV   []float64
	chiE    []float64
	allQuad bool

	// pub, when set, receives an immutable cluster-level StateSnapshot
	// after every round (publish.go). Nil keeps the step paths zero-alloc.
	pub *StatePub
}

// New builds an engine over graph g (one node per utility) with the given
// cluster budget. The initial state is feasible by construction: every node
// starts at its idle cap and the (negative) surplus is split evenly across
// the estimates — exactly what each node computes locally from P and N.
func New(g *topology.Graph, us []workload.Utility, budget float64, cfg Config) (*Engine, error) {
	if g.N() != len(us) {
		return nil, fmt.Errorf("diba: graph has %d nodes but %d utilities given", g.N(), len(us))
	}
	if len(us) == 0 {
		return nil, errors.New("diba: empty cluster")
	}
	if !g.Connected() {
		return nil, errors.New("diba: communication graph must be connected")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var minSum float64
	for _, u := range us {
		minSum += u.MinPower()
	}
	if budget <= minSum {
		return nil, fmt.Errorf("diba: budget %.1f W cannot cover total idle power %.1f W", budget, minSum)
	}
	n := len(us)
	e := &Engine{
		g:      g,
		us:     us,
		cfg:    cfg,
		budget: budget,
		p:      make([]float64, n),
		e:      make([]float64, n),
		pNext:  make([]float64, n),
		eNext:  make([]float64, n),
		uVal:   make([]float64, n),
		dP:     make([]float64, n),
		dU:     make([]float64, n),
	}
	surplusShare := (minSum - budget) / float64(n) // negative
	for i, u := range us {
		e.p[i] = u.MinPower()
		e.e[i] = surplusShare
	}
	e.rebuildTopoCache()
	e.rebuildQuadCache()
	e.refreshAggregates()
	return e, nil
}

// rebuildQuadCache refreshes the concrete-typed utility cache backing the
// quadratic fast path, including each model's precomputed saturation
// vertex. Must be called whenever en.us changes.
func (en *Engine) rebuildQuadCache() {
	n := len(en.us)
	if cap(en.qs) < n {
		en.qs = make([]workload.Quadratic, n)
		en.quadV = make([]float64, n)
	} else {
		en.qs = en.qs[:n]
		en.quadV = en.quadV[:n]
	}
	en.allQuad = buildQuadCache(en.us, en.qs, en.quadV)
}

// buildQuadCache fills the concrete-quadratic caches (pre-sized to
// len(us)) and reports whether every utility is a workload.Quadratic; on
// the first non-quadratic it stops, leaving later entries stale — callers
// must gate every qs/quadV read on the returned flag. Shared by the flat
// and hierarchical engines.
func buildQuadCache(us []workload.Utility, qs []workload.Quadratic, quadV []float64) bool {
	for i, u := range us {
		q, ok := u.(workload.Quadratic)
		if !ok {
			return false
		}
		qs[i] = q
		if q.A2 < 0 {
			// The exact expression Quadratic.effective evaluates per call.
			quadV[i] = -q.A1 / (2 * q.A2)
		} else {
			quadV[i] = math.Inf(1)
		}
	}
	return true
}

// rebuildTopoCache refreshes the engine's flattened view of the (static
// between failures) communication graph. Must be called whenever en.g is
// replaced, and before any parallel round so goroutines never trigger the
// graph's lazy CSR seal concurrently.
func (en *Engine) rebuildTopoCache() {
	en.off, en.nbrs = en.g.CSR()
	n := en.g.N()
	if cap(en.deg) < n {
		en.deg = make([]int32, n)
	} else {
		en.deg = en.deg[:n]
	}
	for i := 0; i < n; i++ {
		en.deg[i] = en.off[i+1] - en.off[i]
	}
	if cap(en.nbrDeg) < len(en.nbrs) {
		en.nbrDeg = make([]int32, len(en.nbrs))
	} else {
		en.nbrDeg = en.nbrDeg[:len(en.nbrs)]
	}
	for k, j := range en.nbrs {
		en.nbrDeg[k] = en.deg[j]
	}
	// Per-edge diffusion coefficient: χ clamped to the stability limit
	// 1/(maxdeg+1), the value edgeTransfer derives per call. StepE and the
	// degrees are static between topology changes.
	if cap(en.chiE) < len(en.nbrs) {
		en.chiE = make([]float64, len(en.nbrs))
	} else {
		en.chiE = en.chiE[:len(en.nbrs)]
	}
	for i := 0; i < n; i++ {
		for k := en.off[i]; k < en.off[i+1]; k++ {
			chi := en.cfg.StepE
			if lim := 1 / float64(max(int(en.deg[i]), int(en.nbrDeg[k]))+1); chi > lim {
				chi = lim
			}
			en.chiE[k] = chi
		}
	}
}

// refreshAggregates recomputes the cached Σp, Σr(p) and per-node utility
// values from scratch. Called at construction and after any out-of-band
// state change (SetBudget, SetUtility, FailNode, Restore); the per-round
// paths maintain the sums incrementally.
func (en *Engine) refreshAggregates() {
	var sumP, sumU float64
	for i, u := range en.us {
		if en.dead[i] {
			en.uVal[i] = 0
			continue
		}
		sumP += en.p[i]
		v := u.Value(en.p[i])
		en.uVal[i] = v
		sumU += v
	}
	en.sumP, en.sumU = sumP, sumU
}

// N returns the cluster size.
func (en *Engine) N() int { return len(en.us) }

// Iter returns the number of rounds executed so far.
func (en *Engine) Iter() int { return en.iter }

// Budget returns the current cluster power budget.
func (en *Engine) Budget() float64 { return en.budget }

// Alloc returns a copy of the current power caps.
func (en *Engine) Alloc() []float64 {
	out := make([]float64, len(en.p))
	copy(out, en.p)
	return out
}

// Estimates returns a copy of the current surplus estimates.
func (en *Engine) Estimates() []float64 {
	out := make([]float64, len(en.e))
	copy(out, en.e)
	return out
}

// TotalPower returns Σ p_i over live nodes. The sum is maintained
// incrementally by the round updates, so this is a field read.
func (en *Engine) TotalPower() float64 { return en.sumP }

// TotalUtility returns Σ r_i(p_i) over live nodes. The sum is maintained
// incrementally by the round updates, so this is a field read.
func (en *Engine) TotalUtility() float64 { return en.sumU }

// nodeRule computes one node's round from its own state and its neighbors'
// last-round estimates: the power move p̂ and the net estimate outflow.
// This is the single source of truth shared by the synchronous engine and
// the message-passing agents.
//
// ownE/ownP are the node's state; grad is r'(ownP); deg its degree;
// nbrE/nbrDeg the neighbors' estimates and degrees. All quantities are from
// the same round snapshot.
func nodeRule(cfg Config, u workload.Utility, ownP, ownE float64, deg int, nbrE []float64, nbrDeg []int32) (phat, outflow float64) {
	if ownE >= 0 {
		// Constraint-violation emergency (possible transiently after a harsh
		// budget cut): shed power as fast as allowed; flows below will drain
		// the positive estimate into slack neighbors.
		phat = -cfg.MaxMoveW
	} else if cfg.FixedStepP > 0 {
		// Ablation: the naive fixed gradient step.
		phat = cfg.FixedStepP * (u.Grad(ownP) + cfg.Eta/ownE)
	} else {
		// Damped Newton ascent on the own-move objective
		// δ ↦ r(p+δ) + η·log(−(e+δ)): gradient r'(p) + η/e, curvature
		// r''(p) − η/e². The Newton step is bounded — as e→0⁻ it tends to e
		// itself (shed exactly the overdraft) and for slack e it jumps
		// toward the utility vertex.
		gp := u.Grad(ownP) + cfg.Eta/ownE
		curv := -curvature(u, ownP) + cfg.Eta/(ownE*ownE)
		if curv < 1e-9 {
			curv = 1e-9
		}
		phat = cfg.Damping * gp / curv
		// Safety: an upward move may consume at most (1−γ)/2 of the slack
		// −e, leaving room for the γ-bounded incoming flows plus a margin.
		if maxUp := (1 - cfg.Gamma) / 2 * (-ownE); phat > maxUp {
			phat = maxUp
		}
	}
	if phat > cfg.MaxMoveW {
		phat = cfg.MaxMoveW
	}
	if phat < -cfg.MaxMoveW {
		phat = -cfg.MaxMoveW
	}
	// Box constraints on the cap itself.
	if ownP+phat > u.MaxPower() {
		phat = u.MaxPower() - ownP
	}
	if ownP+phat < u.MinPower() {
		phat = u.MinPower() - ownP
	}

	// Consensus flows: edge (i,j) transfers χ·(e_i − e_j) from i to j,
	// clamped by a per-edge cap so neither endpoint's estimate can be
	// pushed across zero even when all its edges flow inward. Every term is
	// symmetric in the edge's two endpoints, so both compute the identical
	// transfer from the shared round snapshot and conservation holds
	// without extra coordination.
	for k, ej := range nbrE {
		outflow += edgeTransfer(cfg, ownE, ej, deg, int(nbrDeg[k]))
	}
	return phat, outflow
}

// curvature returns a local estimate of r”(p) from two gradient samples,
// exact for the quadratic models this repository fits.
func curvature(u workload.Utility, p float64) float64 {
	const h = 0.5
	lo, hi := p-h, p+h
	if lo < u.MinPower() {
		lo = u.MinPower()
	}
	if hi > u.MaxPower() {
		hi = u.MaxPower()
	}
	if hi <= lo {
		return 0
	}
	return (u.Grad(hi) - u.Grad(lo)) / (hi - lo)
}

// roundQuad is nodeRule specialized to the concrete workload.Quadratic
// model every fitted workload uses. The engine's hot loop dispatches here
// when Engine.allQuad holds. Three loop-invariant quantities are
// precomputed instead of re-derived per call: the quadratic's saturation
// vertex (quadV, a division inside every Grad/Value evaluation), the
// per-edge diffusion coefficient χ (chiE, a division per edge per round),
// and neighbor estimates are read straight off the CSR arrays rather than
// through a gather buffer. The float arithmetic MUST stay identical to
// nodeRule's — the fast and generic engine paths, and the agents running
// the generic rule, are required to produce bitwise-identical
// trajectories; TestQuadFastPathMatchesGenericRule pins this.
func (en *Engine) roundQuad(cfg Config, i int) (phat, outflow float64) {
	q := en.qs[i]
	v := en.quadV[i]
	ownP, ownE := en.p[i], en.e[i]
	if ownE >= 0 {
		phat = -cfg.MaxMoveW
	} else if cfg.FixedStepP > 0 {
		phat = cfg.FixedStepP * (quadGradV(q, v, ownP) + cfg.Eta/ownE)
	} else {
		gp := quadGradV(q, v, ownP) + cfg.Eta/ownE
		curv := -quadCurvatureV(q, v, ownP) + cfg.Eta/(ownE*ownE)
		if curv < 1e-9 {
			curv = 1e-9
		}
		phat = cfg.Damping * gp / curv
		if maxUp := (1 - cfg.Gamma) / 2 * (-ownE); phat > maxUp {
			phat = maxUp
		}
	}
	if phat > cfg.MaxMoveW {
		phat = cfg.MaxMoveW
	}
	if phat < -cfg.MaxMoveW {
		phat = -cfg.MaxMoveW
	}
	if ownP+phat > q.MaxW {
		phat = q.MaxW - ownP
	}
	if ownP+phat < q.MinW {
		phat = q.MinW - ownP
	}
	lo, hi := en.off[i], en.off[i+1]
	deg := int(hi - lo)
	for k := lo; k < hi; k++ {
		outflow += edgeTransferChi(cfg, ownE, en.e[en.nbrs[k]], deg, int(en.nbrDeg[k]), en.chiE[k])
	}
	return phat, outflow
}

// quadEffectiveV mirrors Quadratic.effective with the saturation vertex
// precomputed (math.Inf(1) when the model has none, so the comparison is
// always false).
func quadEffectiveV(q workload.Quadratic, v, p float64) float64 {
	if p < q.MinW {
		p = q.MinW
	}
	if p > q.MaxW {
		p = q.MaxW
	}
	if p > v {
		p = v
	}
	return p
}

// quadGradV mirrors Quadratic.Grad using the precomputed vertex.
func quadGradV(q workload.Quadratic, v, p float64) float64 {
	p = quadEffectiveV(q, v, p)
	return q.A1 + 2*q.A2*p
}

// quadValueV mirrors Quadratic.Value using the precomputed vertex.
func quadValueV(q workload.Quadratic, v, p float64) float64 {
	p = quadEffectiveV(q, v, p)
	return q.A0 + q.A1*p + q.A2*p*p
}

// quadCurvatureV mirrors curvature for the concrete quadratic model. Keep
// the secant formula (not the closed-form 2·A2) so the two paths compute
// bitwise-identical floats at the range ends.
func quadCurvatureV(q workload.Quadratic, v, p float64) float64 {
	const h = 0.5
	lo, hi := p-h, p+h
	if lo < q.MinW {
		lo = q.MinW
	}
	if hi > q.MaxW {
		hi = q.MaxW
	}
	if hi <= lo {
		return 0
	}
	return (quadGradV(q, v, hi) - quadGradV(q, v, lo)) / (hi - lo)
}

// edgeTransferChi is edgeTransfer with the clamped diffusion coefficient χ
// supplied by the caller (precomputed per CSR edge slot — it depends only
// on the two endpoint degrees and cfg.StepE, all static between topology
// changes).
func edgeTransferChi(cfg Config, eA, eB float64, degA, degB int, chi float64) float64 {
	t := chi * (eA - eB)
	if cfg.TwoSidedCaps {
		capEdge := math.Max(0, cfg.Gamma*math.Min((-eA)/float64(degA+1), (-eB)/float64(degB+1)))
		if t > capEdge {
			t = capEdge
		}
		if t < -capEdge {
			t = -capEdge
		}
		return t
	}
	if hi := math.Max(0, cfg.Gamma*(-eB)/float64(degB+1)); t > hi {
		t = hi
	}
	if lo := math.Min(0, -cfg.Gamma*(-eA)/float64(degA+1)); t < lo {
		t = lo
	}
	return t
}

// edgeTransfer returns the clamped estimate transfer from the endpoint with
// state (eA, degA) to the endpoint with state (eB, degB). A positive
// transfer raises eB (toward zero) and is therefore bounded by B's slack;
// a negative one raises eA and is bounded by A's. The bounds swap when the
// endpoints do, so the function is antisymmetric and conservation holds.
// An endpoint whose estimate is already non-negative accepts no further
// inflow (its bound floors at zero).
func edgeTransfer(cfg Config, eA, eB float64, degA, degB int) float64 {
	chi := cfg.StepE
	if lim := 1 / float64(max(degA, degB)+1); chi > lim {
		chi = lim
	}
	t := chi * (eA - eB)
	if cfg.TwoSidedCaps {
		// Ablation: the over-conservative symmetric cap.
		capEdge := math.Max(0, cfg.Gamma*math.Min((-eA)/float64(degA+1), (-eB)/float64(degB+1)))
		if t > capEdge {
			t = capEdge
		}
		if t < -capEdge {
			t = -capEdge
		}
		return t
	}
	if hi := math.Max(0, cfg.Gamma*(-eB)/float64(degB+1)); t > hi {
		t = hi
	}
	if lo := math.Min(0, -cfg.Gamma*(-eA)/float64(degA+1)); t < lo {
		t = lo
	}
	return t
}

// Step advances the whole cluster by one synchronous round and returns the
// round's activity: the largest absolute power move or estimate flow. Both
// must die out for the system to be at its fixed point (small power moves
// alone can coexist with still-mixing estimates), so this is the natural
// quiescence signal.
func (en *Engine) Step() float64 {
	n := len(en.us)
	var activity float64
	var nbrE []float64
	cfg := en.cfg
	cfg.Eta = en.cfg.etaAt(en.iter)
	sumP, sumU := en.sumP, en.sumU
	for i := 0; i < n; i++ {
		if en.dead[i] {
			en.pNext[i], en.eNext[i] = 0, 0
			continue
		}
		var phat, outflow float64
		if en.allQuad {
			phat, outflow = en.roundQuad(cfg, i)
		} else {
			lo, hi := en.off[i], en.off[i+1]
			nbrE = nbrE[:0]
			for _, j := range en.nbrs[lo:hi] {
				nbrE = append(nbrE, en.e[j])
			}
			phat, outflow = nodeRule(cfg, en.us[i], en.p[i], en.e[i], int(hi-lo), nbrE, en.nbrDeg[lo:hi])
		}
		pn := en.p[i] + phat
		en.pNext[i] = pn
		en.eNext[i] = en.e[i] + phat - outflow
		var un float64
		if en.allQuad {
			un = quadValueV(en.qs[i], en.quadV[i], pn)
		} else {
			un = en.us[i].Value(pn)
		}
		sumP += phat
		sumU += un - en.uVal[i]
		en.uVal[i] = un
		if m := math.Abs(phat); m > activity {
			activity = m
		}
		if m := math.Abs(outflow); m > activity {
			activity = m
		}
	}
	en.sumP, en.sumU = sumP, sumU
	en.p, en.pNext = en.pNext, en.p
	en.e, en.eNext = en.eNext, en.e
	en.iter++
	en.publishRound()
	return activity
}

// stepParallelThreshold is the cluster size above which the run loops
// switch from Step to StepParallel: below it the fork/join overhead beats
// the per-round work. StepParallel computes bitwise-identical state, so the
// switch never changes results.
const stepParallelThreshold = 4096

// StepAuto advances one round, choosing Step or StepParallel by cluster
// size. The two are bitwise identical, so callers see one deterministic
// sequence of states either way.
func (en *Engine) StepAuto() float64 {
	if len(en.us) >= stepParallelThreshold {
		return en.StepParallel(0)
	}
	return en.Step()
}

// RunResult summarizes a Run.
type RunResult struct {
	Iterations int
	// Converged is true when the stopping criterion was met before the
	// iteration bound.
	Converged bool
	// Utility and Power are the final Σ r_i(p_i) and Σ p_i.
	Utility float64
	Power   float64
}

// RunToTarget iterates until the total utility reaches frac (e.g. 0.99) of
// the given reference utility — the text's convergence criterion
// (Eq. 4.11) — or maxIters rounds elapse. With the incrementally
// maintained aggregate the per-round convergence check is a single field
// read rather than the two O(N) utility sweeps it used to cost.
func (en *Engine) RunToTarget(ref, frac float64, maxIters int) RunResult {
	tol := (1 - frac) * math.Abs(ref)
	for k := 0; k < maxIters; k++ {
		if u := en.sumU; math.Abs(ref-u) <= tol {
			return RunResult{Iterations: k, Converged: true, Utility: u, Power: en.sumP}
		}
		en.StepAuto()
	}
	conv := math.Abs(ref-en.sumU) <= tol
	return RunResult{Iterations: maxIters, Converged: conv, Utility: en.sumU, Power: en.sumP}
}

// RunToQuiescence iterates until the largest per-round power move stays
// below tolW for settle consecutive rounds — the criterion a deployment
// without a centralized reference would use — or maxIters rounds elapse.
func (en *Engine) RunToQuiescence(tolW float64, settle, maxIters int) RunResult {
	quiet := 0
	for k := 0; k < maxIters; k++ {
		move := en.StepAuto()
		if move < tolW {
			quiet++
			if quiet >= settle {
				return RunResult{Iterations: k + 1, Converged: true, Utility: en.sumU, Power: en.sumP}
			}
		} else {
			quiet = 0
		}
	}
	return RunResult{Iterations: maxIters, Converged: false, Utility: en.sumU, Power: en.sumP}
}

// emergencyShedMarginW is the extra margin, in watts, a node sheds beyond
// its overdraft when a budget cut turns its surplus estimate non-negative.
// The safety argument for the flow caps is receiver-protected: every
// per-edge cap is derived from the *negative* slack −e of the endpoints, so
// a node sitting exactly at e = 0 would deadlock (zero caps, no flow can
// drain it). Restoring a strictly negative margin re-arms the caps and lets
// neighbors absorb the remainder. The value is deliberately tiny relative
// to any realistic per-server budget share so it cannot mask a real
// violation.
const emergencyShedMarginW = 0.01

// SetBudget applies a new cluster budget. Every node locally shifts its
// estimate by (P_old − P_new)/N, preserving the conservation invariant. On
// a budget cut a node whose estimate would turn non-negative immediately
// sheds power to restore strict feasibility — computing power drops at
// once, as Fig. 4.5 describes. An error is returned (and no change made)
// if the new budget cannot cover total idle power.
func (en *Engine) SetBudget(newBudget float64) error {
	var minSum float64
	for i, u := range en.us {
		if en.dead[i] {
			continue
		}
		minSum += u.MinPower()
	}
	if newBudget <= minSum {
		return fmt.Errorf("diba: new budget %.1f W cannot cover total idle power %.1f W", newBudget, minSum)
	}
	live := 0
	for i := range en.us {
		if !en.dead[i] {
			live++
		}
	}
	shift := (en.budget - newBudget) / float64(live)
	for i, u := range en.us {
		if en.dead[i] {
			continue
		}
		en.e[i] += shift
		if en.e[i] >= 0 {
			// Shed enough power to restore a small negative margin.
			drop := en.e[i] + emergencyShedMarginW
			maxDrop := en.p[i] - u.MinPower()
			if drop > maxDrop {
				drop = maxDrop
			}
			en.p[i] -= drop
			en.e[i] -= drop
		}
	}
	en.budget = newBudget
	en.refreshAggregates()
	return nil
}

// SetUtility replaces node i's utility (a workload change). State is kept:
// the algorithm re-converges from the current operating point, which is
// what Figs. 4.7–4.9 exercise.
func (en *Engine) SetUtility(i int, u workload.Utility) error {
	if i < 0 || i >= len(en.us) {
		return fmt.Errorf("diba: node %d out of range", i)
	}
	if u.MinPower() >= u.MaxPower() {
		return errors.New("diba: utility has empty cap range")
	}
	en.us[i] = u
	// Clamp the operating point into the new range, keeping conservation:
	// any power shed moves into the node's own estimate.
	if en.p[i] > u.MaxPower() {
		d := en.p[i] - u.MaxPower()
		en.p[i] -= d
		en.e[i] -= d
	}
	if en.p[i] < u.MinPower() {
		d := u.MinPower() - en.p[i]
		en.p[i] += d
		en.e[i] += d
		// A forced rise may push the estimate non-negative; shed elsewhere
		// is not locally possible, so flag via feasibility check in tests.
	}
	en.rebuildQuadCache()
	en.refreshAggregates()
	return nil
}

// CheckConservation verifies Σe = Σp − P within tol. This holds at all
// times, including during recovery from a harsh budget cut.
func (en *Engine) CheckConservation(tol float64) error {
	var sumE, sumP float64
	for i := range en.e {
		if en.dead[i] {
			continue
		}
		sumE += en.e[i]
		sumP += en.p[i]
	}
	if diff := math.Abs(sumE - (sumP - en.budget)); diff > tol {
		return fmt.Errorf("diba: conservation violated: Σe=%g, Σp−P=%g", sumE, sumP-en.budget)
	}
	return nil
}

// CheckFeasible verifies that every estimate is strictly negative, which
// (with conservation) certifies Σp < P. During normal operation this holds
// every round; after a budget cut so harsh that some nodes cannot shed
// enough power locally, estimates may be transiently non-negative until the
// flows drain them into slack neighbors.
func (en *Engine) CheckFeasible() error {
	for i := range en.e {
		if en.dead[i] {
			continue
		}
		if en.e[i] >= 0 {
			return fmt.Errorf("diba: estimate e[%d] = %g not strictly negative", i, en.e[i])
		}
	}
	return nil
}

// CheckInvariant verifies conservation and strict feasibility together —
// the normal-operation invariant.
func (en *Engine) CheckInvariant(tol float64) error {
	if err := en.CheckConservation(tol); err != nil {
		return err
	}
	return en.CheckFeasible()
}

// Price returns the current implied shadow price −η/ē from the mean
// estimate — comparable to the centralized solver's dual variable after
// convergence.
func (en *Engine) Price() float64 {
	var sum float64
	for _, v := range en.e {
		sum += v
	}
	mean := sum / float64(len(en.e))
	if mean >= 0 {
		return math.Inf(1)
	}
	return -en.cfg.etaAt(en.iter) / mean
}
