package diba

import (
	"math"
	"sync"
	"testing"

	"powercap/internal/topology"
)

// The engine must publish a snapshot per step, with Seq ordering and
// self-consistent totals, and the snapshot must be immune to later steps
// (slices are fresh copies, not aliases of engine state).
func TestEnginePublishesPerStep(t *testing.T) {
	const n = 8
	en := newTestEngine(t, topology.Ring(n), n)
	var pub StatePub
	en.PublishState(&pub)

	if pub.Load() != nil {
		t.Fatal("snapshot published before any step")
	}
	en.Step()
	s1 := pub.Load()
	if s1 == nil || s1.Seq != 1 || !s1.EngineMode || s1.Node != -1 || s1.N != n {
		t.Fatalf("first snapshot wrong: %+v", s1)
	}
	if len(s1.Caps) != n {
		t.Fatalf("caps len = %d, want %d", len(s1.Caps), n)
	}
	var sum float64
	for _, c := range s1.Caps {
		sum += c
	}
	if math.Abs(sum-s1.TotalPowW) > 1e-6 {
		t.Fatalf("Σcaps %.9f != TotalPowW %.9f", sum, s1.TotalPowW)
	}

	caps1 := append([]float64(nil), s1.Caps...)
	for i := 0; i < 5; i++ {
		en.Step()
	}
	s2 := pub.Load()
	if s2.Seq != 6 || s2.Round != s1.Round+5 {
		t.Fatalf("seq/round after 5 more steps: seq=%d round=%d (first round %d)", s2.Seq, s2.Round, s1.Round)
	}
	for i, c := range s1.Caps {
		if c != caps1[i] {
			t.Fatal("published snapshot mutated by later steps")
		}
	}
}

// StepParallel must publish exactly like Step.
func TestEnginePublishesFromStepParallel(t *testing.T) {
	forceParallelSmallN(t)
	const n = 16
	en := newTestEngine(t, topology.Ring(n), n)
	var pub StatePub
	en.PublishState(&pub)
	en.StepParallel(4)
	s := pub.Load()
	if s == nil || s.Seq != 1 || s.N != n {
		t.Fatalf("StepParallel did not publish: %+v", s)
	}
}

// A flat agent cluster must publish one snapshot per round per node, with
// the published consensus views and estimates satisfying conservation.
func TestAgentPublishesPerRound(t *testing.T) {
	const n, rounds = 5, 30
	budget := float64(n) * 170
	us := mkCluster(t, n, 71)
	g := topology.Ring(n)
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	net := NewChanNetwork(n, 4*(g.MaxDegree()+1))
	pubs := make([]*StatePub, n)
	agents := make([]*Agent, n)
	for i := 0; i < n; i++ {
		a, err := NewAgent(i, g.NeighborsInts(i), us[i], budget, n, totalIdle, Config{}, net.Endpoint(i))
		if err != nil {
			t.Fatal(err)
		}
		pubs[i] = new(StatePub)
		a.PublishState(pubs[i])
		agents[i] = a
	}
	var wg sync.WaitGroup
	for i := range agents {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := agents[i].Run(rounds); err != nil {
				t.Errorf("agent %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	var sumE, sumP float64
	for i, p := range pubs {
		s := p.Load()
		if s == nil {
			t.Fatalf("node %d never published", i)
		}
		if s.Seq != rounds || s.Round != rounds {
			t.Fatalf("node %d: seq=%d round=%d, want %d", i, s.Seq, s.Round, rounds)
		}
		if s.Node != i || s.Hier || s.EngineMode {
			t.Fatalf("node %d snapshot mislabeled: %+v", i, s)
		}
		if s.BudgetW != budget {
			t.Fatalf("node %d budget view %.3f, want %.3f", i, s.BudgetW, budget)
		}
		if s.CapW <= 0 {
			t.Fatalf("node %d published cap %.3f", i, s.CapW)
		}
		sumE += s.EstimateW
		sumP += s.ConsensusW
	}
	// Conservation over the published views: Σe = Σp − B.
	if math.Abs(sumE-(sumP-budget)) > 1e-6 {
		t.Fatalf("published views violate conservation: Σe=%.6f Σp−B=%.6f", sumE, sumP-budget)
	}
}

// The decorator runs on the publishing goroutine before the swap, so
// decorated fields are visible atomically with the rest of the snapshot.
func TestPublishDecorator(t *testing.T) {
	var pub StatePub
	pub.SetDecorator(func(s *StateSnapshot) {
		s.Wire = WireStats{MsgsSent: s.Seq * 7}
		s.Watchdog = WatchdogView{Enabled: true, Periods: int(s.Seq)}
	})
	pub.Publish(&StateSnapshot{Node: 1})
	pub.Publish(&StateSnapshot{Node: 1})
	s := pub.Load()
	if s.Seq != 2 || s.Wire.MsgsSent != 14 || s.Watchdog.Periods != 2 {
		t.Fatalf("decorator fields wrong: %+v", s)
	}
	if pub.Seq() != 2 {
		t.Fatalf("Seq() = %d, want 2", pub.Seq())
	}
}

// A hierarchical cluster publishes snapshots carrying the lease fields and
// the renewal counters.
func TestHierAgentPublishes(t *testing.T) {
	topo, us := hierTestTopo(t)
	pol := HierPolicy{LeaseTTL: 30, RenewEvery: 3, TransferThresholdW: 2, MaxLeaseStepW: 25}
	n := len(us)
	const rounds = 40
	net := NewChanNetwork(n, 1024)
	pubs := make([]*StatePub, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		pubs[i] = new(StatePub)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h, err := NewHierAgent(topo, pol, id, us[id], Config{}, net.Endpoint(id))
			if err != nil {
				t.Errorf("node %d: %v", id, err)
				return
			}
			h.PublishState(pubs[id])
			for r := 0; r < rounds; r++ {
				if err := h.Step(); err != nil {
					t.Errorf("node %d round %d: %v", id, r, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	var renewals int
	for i, p := range pubs {
		s := p.Load()
		if s == nil {
			t.Fatalf("hier node %d never published", i)
		}
		if !s.Hier {
			t.Fatalf("hier node %d snapshot not marked Hier", i)
		}
		if s.Seq != rounds {
			t.Fatalf("hier node %d: seq=%d, want %d", i, s.Seq, rounds)
		}
		if s.LeaseMw <= 0 {
			t.Fatalf("hier node %d published lease %d", i, s.LeaseMw)
		}
		if s.BudgetW <= 0 {
			t.Fatalf("hier node %d published budget %.3f", i, s.BudgetW)
		}
		renewals += s.Renewals
	}
	// Aggregates renew leases; at least one node must have counted renewals.
	if renewals == 0 {
		t.Fatal("no lease renewals published across the cluster")
	}
}
