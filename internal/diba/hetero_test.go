package diba

import (
	"math/rand"
	"testing"

	"powercap/internal/metrics"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// DiBA never assumes homogeneous hardware: every node carries its own cap
// range inside its utility. This test mixes three server classes in one
// cluster — the "replacement and upgrade" heterogeneity the text says real
// clusters accumulate — and checks convergence and per-class range safety.
func TestHeterogeneousServerClasses(t *testing.T) {
	classes := []workload.Server{
		{IdleWatts: 110, MaxWatts: 200}, // current generation
		{IdleWatts: 80, MaxWatts: 140},  // old low-power nodes
		{IdleWatts: 150, MaxWatts: 300}, // fat dual-socket boxes
	}
	const perClass = 30
	n := perClass * len(classes)
	rng := rand.New(rand.NewSource(51))
	us := make([]workload.Utility, 0, n)
	srvOf := make([]workload.Server, 0, n)
	for _, srv := range classes {
		a, err := workload.Assign(workload.HPC, perClass, srv, 0.05, 0.01, rng)
		if err != nil {
			t.Fatal(err)
		}
		us = append(us, a.UtilitySlice()...)
		for k := 0; k < perClass; k++ {
			srvOf = append(srvOf, srv)
		}
	}
	// Interleave classes around the ring so neighbors differ.
	perm := rng.Perm(n)
	shuffledUs := make([]workload.Utility, n)
	shuffledSrv := make([]workload.Server, n)
	for i, j := range perm {
		shuffledUs[i] = us[j]
		shuffledSrv[i] = srvOf[j]
	}

	budget := 160.0 * float64(n)
	opt, err := solver.Optimal(shuffledUs, budget)
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(topology.Ring(n), shuffledUs, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := en.RunToTarget(opt.Utility, 0.99, 30000)
	if !res.Converged {
		t.Fatalf("heterogeneous cluster did not converge (ratio %v)", res.Utility/opt.Utility)
	}
	if !metrics.Feasible(shuffledUs, en.Alloc(), budget, 1e-6) {
		t.Fatal("allocation infeasible")
	}
	for i, p := range en.Alloc() {
		if p < shuffledSrv[i].IdleWatts-1e-9 || p > shuffledSrv[i].MaxWatts+1e-9 {
			t.Fatalf("node %d cap %v outside its class range [%v,%v]",
				i, p, shuffledSrv[i].IdleWatts, shuffledSrv[i].MaxWatts)
		}
	}
	if err := en.CheckInvariant(1e-6); err != nil {
		t.Fatal(err)
	}
}
