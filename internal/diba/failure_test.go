package diba

import (
	"testing"

	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

func TestFailNodeOnRingDisconnects(t *testing.T) {
	// A plain ring cannot survive two separated failures — the text's
	// argument for chords.
	us := mkCluster(t, 12, 31)
	en, err := New(topology.Ring(12), us, 12*180, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := en.FailNode(3); err != nil {
		t.Fatal(err) // one failure leaves a line: still connected
	}
	if err := en.FailNode(9); err == nil {
		t.Fatal("second opposite failure must disconnect a plain ring")
	}
}

func TestFailNodeValidation(t *testing.T) {
	us := mkCluster(t, 10, 32)
	en, err := New(topology.ChordalRing(10, 3), us, 10*180, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := en.FailNode(-1); err == nil {
		t.Fatal("out of range must be rejected")
	}
	if err := en.FailNode(4); err != nil {
		t.Fatal(err)
	}
	if err := en.FailNode(4); err == nil {
		t.Fatal("double failure must be rejected")
	}
	if got := en.Failed(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("Failed() = %v", got)
	}
}

func TestChordalRingSurvivesFailuresAndReconverges(t *testing.T) {
	n := 60
	us := mkCluster(t, n, 33)
	budget := float64(n) * 180
	en, err := New(topology.ChordalRing(n, 7), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	en.RunToTarget(opt.Utility, 0.99, 20000)

	// Kill three spread-out servers mid-operation.
	for _, victim := range []int{5, 25, 45} {
		if err := en.FailNode(victim); err != nil {
			t.Fatalf("failing %d: %v", victim, err)
		}
		if err := en.CheckInvariant(1e-6); err != nil {
			t.Fatalf("after failing %d: %v", victim, err)
		}
	}
	// Survivors re-converge near the optimum of the survivor problem.
	liveUs := make([]workload.Utility, 0, n-3)
	for i, u := range us {
		switch i {
		case 5, 25, 45:
		default:
			liveUs = append(liveUs, u)
		}
	}
	liveOpt, err := solver.Optimal(liveUs, en.Budget())
	if err != nil {
		t.Fatal(err)
	}
	res := en.RunToTarget(liveOpt.Utility, 0.99, 30000)
	if !res.Converged {
		t.Fatalf("survivors did not re-converge (ratio %v)", res.Utility/liveOpt.Utility)
	}
	// Budget never violated along the way; dead nodes draw nothing.
	if en.TotalPower() > en.Budget() {
		t.Fatal("survivor power exceeds survivor budget")
	}
	alloc := en.Alloc()
	for _, victim := range []int{5, 25, 45} {
		if alloc[victim] != 0 {
			t.Fatalf("dead node %d still drawing %v W", victim, alloc[victim])
		}
	}
}

func TestFailureThenBudgetRestore(t *testing.T) {
	// After a crash the operator rebroadcasts the full budget so survivors
	// reclaim the dead node's share.
	n := 30
	us := mkCluster(t, n, 34)
	budget := float64(n) * 175
	en, err := New(topology.ChordalRing(n, 5), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	en.RunToQuiescence(1e-3, 20, 30000)
	if err := en.FailNode(7); err != nil {
		t.Fatal(err)
	}
	shrunk := en.Budget()
	if shrunk >= budget {
		t.Fatal("failure must shrink the budget conservatively")
	}
	if err := en.SetBudget(budget); err != nil {
		t.Fatal(err)
	}
	if err := en.CheckInvariant(1e-6); err != nil {
		t.Fatal(err)
	}
	before := en.TotalUtility()
	en.RunToQuiescence(1e-3, 20, 30000)
	if en.TotalUtility() <= before {
		t.Fatal("survivors must benefit from the restored budget")
	}
	if en.TotalPower() > budget {
		t.Fatal("restored budget violated")
	}
}

func TestFailNodeInfeasibleRejected(t *testing.T) {
	// The conservation-preserving accounting makes failures from any state
	// the engine itself reaches feasible; force the pathological state — a
	// node drawing far above its estimate-backed share on a tight budget —
	// directly, and check the failure is refused without mutating state.
	n := 6
	us := mkCluster(t, n, 35)
	budget := us[0].MinPower()*float64(n) + 89.9
	en, err := New(topology.Complete(n), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	en.p[0] = us[0].MaxPower() // hogging all the slack at full draw
	en.e[0] = -0.01
	if err := en.FailNode(0); err == nil {
		t.Fatal("infeasible failure must be rejected")
	}
	if en.Budget() != budget || len(en.Failed()) != 0 {
		t.Fatal("rejected failure must not mutate state")
	}
}
