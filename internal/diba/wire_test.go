package diba

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// wireTestMessages covers every message kind the protocol produces plus
// boundary values of the codec's integer and float domains.
var wireTestMessages = []Message{
	{},
	{From: 3, Round: 17, E: -0.6666666666666666, Degree: 2},
	{From: 0, Round: 1, E: -1.5, Degree: 4, Quiet: 2, Stop: 1, P: 145.23456789012345},
	{From: 12, Kind: MsgHeartbeat},
	{From: 5, Round: 99, Kind: MsgNodeDead, Dead: 7, Act: 1},
	{From: 1, Kind: MsgHealth, Act: 1},
	{From: 9, Round: 1000, Kind: MsgRejoinReq, Dead: 9},
	{From: 2, Round: 1001, Kind: MsgRejoin, E: -3.25, P: 210, Dead: 9, Act: 2},
	{From: 4, Round: 1002, Kind: MsgRejoinAck, Dead: 9},
	{From: -1, Round: -42, E: math.Inf(-1), Degree: -2, Quiet: -1, Stop: -1, P: math.Inf(1), Kind: -1, Dead: -1, Act: -1},
	{From: math.MaxInt32, Round: math.MaxInt32, Degree: math.MaxInt16, Quiet: math.MaxInt32, Stop: math.MaxInt32, Kind: math.MaxInt32, Dead: math.MaxInt32, Act: math.MaxInt32},
	{From: math.MinInt32, Round: math.MinInt32, Degree: math.MinInt16, Quiet: math.MinInt32, Stop: math.MinInt32, Kind: math.MinInt32, Dead: math.MinInt32, Act: math.MinInt32},
	{E: math.Copysign(0, -1), P: math.Copysign(0, -1)},
	{E: 4.9e-324, P: math.MaxFloat64},
}

// sameMessage compares two messages with floats matched by bit pattern, so
// NaN payloads and signed zeros count as equal only when truly identical.
func sameMessage(a, b Message) bool {
	return a.From == b.From && a.Round == b.Round && a.Degree == b.Degree &&
		a.Quiet == b.Quiet && a.Stop == b.Stop && a.Kind == b.Kind &&
		a.Dead == b.Dead && a.Act == b.Act &&
		math.Float64bits(a.E) == math.Float64bits(b.E) &&
		math.Float64bits(a.P) == math.Float64bits(b.P)
}

func TestWireRoundTrip(t *testing.T) {
	for i, m := range wireTestMessages {
		frame := EncodeTo(nil, m)
		if len(frame) > maxWireFrame {
			t.Fatalf("case %d: frame is %d bytes, exceeds maxWireFrame=%d", i, len(frame), maxWireFrame)
		}
		got, n, err := Decode(frame)
		if err != nil {
			t.Fatalf("case %d: Decode: %v", i, err)
		}
		if n != len(frame) {
			t.Fatalf("case %d: Decode consumed %d of %d bytes", i, n, len(frame))
		}
		if want := wireCanon(m); !sameMessage(got, want) {
			t.Fatalf("case %d: round trip mismatch:\n got  %+v\n want %+v", i, got, want)
		}
	}
}

func TestWireAppendStyle(t *testing.T) {
	// EncodeTo must append, leaving existing bytes intact, and frames must
	// decode back-to-back off one buffer using the returned lengths.
	var buf []byte
	for _, m := range wireTestMessages {
		buf = EncodeTo(buf, m)
	}
	rest := buf
	for i, m := range wireTestMessages {
		got, n, err := Decode(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if want := wireCanon(m); !sameMessage(got, want) {
			t.Fatalf("frame %d mismatch: got %+v want %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d stray bytes after last frame", len(rest))
	}
}

func TestWireEstimateFrameSmallerThanJSON(t *testing.T) {
	// The common-case round message must hold the ~30-byte v1 layout and
	// stay well under its JSON encoding — that gap is the point of the codec.
	m := Message{From: 12, Round: 157, E: -0.6666666666666666, Degree: 2, P: 145.23456789012345}
	frame := EncodeTo(nil, m)
	if len(frame) != 30 {
		t.Fatalf("MsgEstimate frame is %d bytes, want 30", len(frame))
	}
	js, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	jsonLen := len(js) + 1 // json.Encoder appends '\n' on the wire
	if len(frame)*2 >= jsonLen {
		t.Fatalf("binary frame %dB is not >2x smaller than JSON %dB", len(frame), jsonLen)
	}
}

func TestWireDecodeAllocFree(t *testing.T) {
	frame := EncodeTo(nil, Message{From: 7, Round: 3, E: -2.5, Degree: 3, P: 99.5})
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := Decode(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Decode allocates %.1f times per call, want 0", allocs)
	}
}

func TestWireDecodeRejectsCorruptFrames(t *testing.T) {
	good := EncodeTo(nil, Message{From: 3, Round: 8, E: -1, Degree: 2})
	cases := map[string][]byte{
		"empty":          nil,
		"short header":   good[:3],
		"truncated body": good[:len(good)-1],
		"bad magic":      append([]byte{'{'}, good[1:]...),
		"json bytes":     []byte(`{"from":3,"round":8}` + "\n"),
	}
	// Length byte inconsistent with the bitmap.
	lied := bytes.Clone(good)
	lied[1]++
	cases["length over bitmap"] = append(lied, 0)
	// Bitmap bits beyond v1's ten fields.
	future := bytes.Clone(good)
	future[3] |= 0x80 // bit 15
	cases["future bitmap bit"] = future
	for name, b := range cases {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted a corrupt frame", name)
		}
	}
}

func TestWireHeartbeatFrameTiny(t *testing.T) {
	// The heartbeat special case (precomputed frame in tcp.go) relies on
	// heartbeats encoding to a constant few bytes: magic+len+bitmap+From+Kind.
	frame := EncodeTo(nil, Message{From: 6, Kind: MsgHeartbeat})
	if len(frame) != 12 {
		t.Fatalf("heartbeat frame is %d bytes, want 12", len(frame))
	}
}

// FuzzWireMessage round-trips arbitrary field values through the binary
// codec. Values outside the codec's integer domain are canonicalized by the
// same truncating conversions EncodeTo applies, so the invariant checked is
// Decode(EncodeTo(m)) == wireCanon(m) exactly.
func FuzzWireMessage(f *testing.F) {
	for _, m := range wireTestMessages {
		f.Add(m.From, m.Round, m.E, m.Degree, m.Quiet, m.Stop, m.P, m.Kind, m.Dead, m.Act)
	}
	f.Fuzz(func(t *testing.T, from, round int, e float64, degree, quiet, stop int, p float64, kind, dead, act int) {
		m := Message{From: from, Round: round, E: e, Degree: degree,
			Quiet: quiet, Stop: stop, P: p, Kind: kind, Dead: dead, Act: act}
		frame := EncodeTo(nil, m)
		if len(frame) > maxWireFrame {
			t.Fatalf("frame is %d bytes, exceeds maxWireFrame=%d", len(frame), maxWireFrame)
		}
		got, n, err := Decode(frame)
		if err != nil {
			t.Fatalf("Decode(EncodeTo(%+v)): %v", m, err)
		}
		if n != len(frame) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(frame))
		}
		if want := wireCanon(m); !sameMessage(got, want) {
			t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, want)
		}
	})
}

// FuzzWireDecode feeds arbitrary bytes to Decode: it must never panic and
// must never consume more bytes than it was given.
func FuzzWireDecode(f *testing.F) {
	for _, m := range wireTestMessages {
		f.Add(EncodeTo(nil, m))
	}
	f.Add([]byte{wireMagic})
	f.Add([]byte{wireMagic, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := Decode(b)
		if err != nil {
			return
		}
		if n < 4 || n > len(b) || n > maxWireFrame {
			t.Fatalf("Decode reported %d bytes consumed of %d", n, len(b))
		}
		// A decoded message must survive a second round trip: explicitly
		// encoded zero fields collapse to omitted, after which the encoding
		// is canonical.
		re := EncodeTo(nil, m)
		m2, n2, err := Decode(re)
		if err != nil || n2 != len(re) || !sameMessage(m, m2) {
			t.Fatalf("re-encode round trip failed: %v (%+v vs %+v)", err, m, m2)
		}
	})
}
