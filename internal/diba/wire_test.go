package diba

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"

	"powercap/internal/topology"
)

// wireTestMessages covers every message kind the protocol produces plus
// boundary values of the codec's integer and float domains.
var wireTestMessages = []Message{
	{},
	{From: 3, Round: 17, E: -0.6666666666666666, Degree: 2},
	{From: 0, Round: 1, E: -1.5, Degree: 4, Quiet: 2, Stop: 1, P: 145.23456789012345},
	{From: 12, Kind: MsgHeartbeat},
	{From: 5, Round: 99, Kind: MsgNodeDead, Dead: 7, Act: 1},
	{From: 1, Kind: MsgHealth, Act: 1},
	{From: 9, Round: 1000, Kind: MsgRejoinReq, Dead: 9},
	{From: 2, Round: 1001, Kind: MsgRejoin, E: -3.25, P: 210, Dead: 9, Act: 2},
	{From: 4, Round: 1002, Kind: MsgRejoinAck, Dead: 9},
	{From: -1, Round: -42, E: math.Inf(-1), Degree: -2, Quiet: -1, Stop: -1, P: math.Inf(1), Kind: -1, Dead: -1, Act: -1},
	{From: math.MaxInt32, Round: math.MaxInt32, Degree: math.MaxInt16, Quiet: math.MaxInt32, Stop: math.MaxInt32, Kind: math.MaxInt32, Dead: math.MaxInt32, Act: math.MaxInt32},
	{From: math.MinInt32, Round: math.MinInt32, Degree: math.MinInt16, Quiet: math.MinInt32, Stop: math.MinInt32, Kind: math.MinInt32, Dead: math.MinInt32, Act: math.MinInt32},
	{E: math.Copysign(0, -1), P: math.Copysign(0, -1)},
	{E: 4.9e-324, P: math.MaxFloat64},
	// The hierarchical control plane (v2 bitmap bits).
	{From: 3, Round: 40, Kind: MsgLease, Group: 1, Epoch: 2, Seq: 17, Lease: 510_000_000, Cum: 12_345},
	{From: 0, Round: 41, Kind: MsgLeaseAck, Group: 2, Epoch: 2, Act: 1, Lease: -1, Cum: -170_000},
	{From: 6, Kind: MsgAggHello, Group: 2, Epoch: 3, Seq: 1},
	{Kind: MsgLease, Group: math.MaxInt32, Epoch: math.MinInt32, Seq: -1, Lease: math.MaxInt64, Cum: math.MinInt64},
	// The RTT measurement exchange (v3 bitmap bit).
	{From: 2, Kind: MsgPing, Echo: 1_234_567_890},
	{From: 5, Kind: MsgPong, Echo: math.MaxInt64},
	{From: 1, Round: 7, E: -0.5, Degree: 2, Echo: math.MinInt64},
}

// sameMessage compares two messages with floats matched by bit pattern, so
// NaN payloads and signed zeros count as equal only when truly identical.
func sameMessage(a, b Message) bool {
	return a.From == b.From && a.Round == b.Round && a.Degree == b.Degree &&
		a.Quiet == b.Quiet && a.Stop == b.Stop && a.Kind == b.Kind &&
		a.Dead == b.Dead && a.Act == b.Act &&
		a.Group == b.Group && a.Epoch == b.Epoch && a.Seq == b.Seq &&
		a.Lease == b.Lease && a.Cum == b.Cum && a.Echo == b.Echo &&
		math.Float64bits(a.E) == math.Float64bits(b.E) &&
		math.Float64bits(a.P) == math.Float64bits(b.P)
}

func TestWireRoundTrip(t *testing.T) {
	for i, m := range wireTestMessages {
		frame := EncodeTo(nil, m)
		if len(frame) > maxWireFrame {
			t.Fatalf("case %d: frame is %d bytes, exceeds maxWireFrame=%d", i, len(frame), maxWireFrame)
		}
		got, n, err := Decode(frame)
		if err != nil {
			t.Fatalf("case %d: Decode: %v", i, err)
		}
		if n != len(frame) {
			t.Fatalf("case %d: Decode consumed %d of %d bytes", i, n, len(frame))
		}
		if want := wireCanon(m); !sameMessage(got, want) {
			t.Fatalf("case %d: round trip mismatch:\n got  %+v\n want %+v", i, got, want)
		}
	}
}

func TestWireAppendStyle(t *testing.T) {
	// EncodeTo must append, leaving existing bytes intact, and frames must
	// decode back-to-back off one buffer using the returned lengths.
	var buf []byte
	for _, m := range wireTestMessages {
		buf = EncodeTo(buf, m)
	}
	rest := buf
	for i, m := range wireTestMessages {
		got, n, err := Decode(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if want := wireCanon(m); !sameMessage(got, want) {
			t.Fatalf("frame %d mismatch: got %+v want %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d stray bytes after last frame", len(rest))
	}
}

func TestWireEstimateFrameSmallerThanJSON(t *testing.T) {
	// The common-case round message must hold the ~30-byte v1 layout and
	// stay well under its JSON encoding — that gap is the point of the codec.
	m := Message{From: 12, Round: 157, E: -0.6666666666666666, Degree: 2, P: 145.23456789012345}
	frame := EncodeTo(nil, m)
	if len(frame) != 30 {
		t.Fatalf("MsgEstimate frame is %d bytes, want 30", len(frame))
	}
	js, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	jsonLen := len(js) + 1 // json.Encoder appends '\n' on the wire
	if len(frame)*2 >= jsonLen {
		t.Fatalf("binary frame %dB is not >2x smaller than JSON %dB", len(frame), jsonLen)
	}
}

func TestWireDecodeAllocFree(t *testing.T) {
	frame := EncodeTo(nil, Message{From: 7, Round: 3, E: -2.5, Degree: 3, P: 99.5})
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := Decode(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Decode allocates %.1f times per call, want 0", allocs)
	}
}

func TestWireDecodeRejectsCorruptFrames(t *testing.T) {
	good := EncodeTo(nil, Message{From: 3, Round: 8, E: -1, Degree: 2})
	cases := map[string][]byte{
		"empty":          nil,
		"short header":   good[:3],
		"truncated body": good[:len(good)-1],
		"bad magic":      append([]byte{'{'}, good[1:]...),
		"json bytes":     []byte(`{"from":3,"round":8}` + "\n"),
	}
	// Length byte inconsistent with the bitmap.
	lied := bytes.Clone(good)
	lied[1]++
	cases["length over bitmap"] = append(lied, 0)
	// A bitmap bit claimed without its payload bytes (bit 15 is the v3
	// Echo field, 8 bytes the frame does not carry): rejected by the
	// length-vs-bitmap width check.
	future := bytes.Clone(good)
	future[3] |= 0x80 // bit 15
	cases["bitmap bit without payload"] = future
	// The same corruption modes on a v2 lease frame.
	lease := EncodeTo(nil, Message{From: 1, Kind: MsgLease, Group: 2, Epoch: 3, Seq: 4, Lease: 510_000, Cum: -7})
	cases["lease frame truncated"] = lease[:len(lease)-3]
	liedLease := bytes.Clone(lease)
	liedLease[1]--
	cases["lease length under bitmap"] = liedLease
	for name, b := range cases {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted a corrupt frame", name)
		}
	}
}

// TestWireV2FallbackContract pins the agreement tcp.go's per-message JSON
// fallback relies on: wireNeedsV2(m) is true exactly when m's frame sets a
// bitmap bit beyond the v1 field set — so a v1-negotiated link sends those
// messages (and only those) as JSON, and every frame it does emit in binary
// is decodable by a v1 peer.
func TestWireV2FallbackContract(t *testing.T) {
	for i, m := range wireTestMessages {
		frame := EncodeTo(nil, m)
		bm := getU16(frame[2:])
		hasPostV1Bits := bm>>wireV1Bits != 0
		if hasPostV1Bits != (wireNeedsV2(m) || wireNeedsV3(m)) {
			t.Errorf("case %d: frame post-v1 bits = %v but wireNeedsV2/V3 = %v/%v for %+v",
				i, hasPostV1Bits, wireNeedsV2(m), wireNeedsV3(m), m)
		}
		hasEchoBit := bm&(1<<15) != 0
		if hasEchoBit != wireNeedsV3(m) {
			t.Errorf("case %d: frame echo bit = %v but wireNeedsV3 = %v for %+v",
				i, hasEchoBit, wireNeedsV3(m), m)
		}
	}
	// Every hierarchical control message the protocol produces carries a
	// group id or lease payload, so none of them leaks onto a v1 binary link.
	for _, m := range []Message{
		{From: 1, Kind: MsgLease, Group: 1, Epoch: 1, Seq: 1, Lease: 1},
		{From: 1, Kind: MsgLeaseAck, Group: 1, Epoch: 1, Act: 1, Cum: 1},
		{From: 1, Kind: MsgAggHello, Group: 1, Epoch: 1},
	} {
		if !wireNeedsV2(m) {
			t.Errorf("hierarchical message %+v not flagged for the v2 codec", m)
		}
	}
}

// TestAgentIgnoresAggregateControlFrames runs a flat cluster while an
// injector floods every agent with hierarchical control frames and a kind
// from a future build. The final allocation must match a clean run bitwise:
// a flat member of a mixed-version cluster treats aggregate traffic as
// noise, never as round arithmetic.
func TestAgentIgnoresAggregateControlFrames(t *testing.T) {
	const n, rounds = 8, 60
	g := topology.Ring(n)
	us := mkCluster(t, n, 7)
	budget := float64(n * 170)
	want, err := RunAgents(g, us, budget, Config{}, rounds)
	if err != nil {
		t.Fatal(err)
	}

	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	// One extra mailbox for the injector; generous capacity so the noise
	// cannot fill a mailbox and fail a legitimate neighbor send.
	net := NewChanNetwork(n+1, 1024)
	agents := make([]*Agent, n)
	for i := 0; i < n; i++ {
		a, err := NewAgent(i, g.NeighborsInts(i), us[i], budget, n, totalIdle, Config{}, net.Endpoint(i))
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
	}
	stop := make(chan struct{})
	var injWG sync.WaitGroup
	injWG.Add(1)
	go func() {
		defer injWG.Done()
		inj := net.Endpoint(n)
		noise := []Message{
			{From: n, Kind: MsgLease, Group: 1, Epoch: 2, Seq: 3, Lease: 123_456, Round: 5},
			{From: n, Kind: MsgLeaseAck, Group: 1, Epoch: 2, Act: 1, Cum: -9},
			{From: n, Kind: MsgAggHello, Group: 0, Epoch: 1},
			{From: n, Kind: maxKnownMsgKind + 1, Round: 3, E: 99, Degree: 1},
		}
		for i := 0; ; i++ {
			for to := 0; to < n; to++ {
				_ = inj.Send(to, noise[i%len(noise)])
			}
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range agents {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = agents[i].Run(rounds)
		}(i)
	}
	wg.Wait()
	close(stop)
	injWG.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d under control-frame noise: %v", i, err)
		}
	}
	for i, a := range agents {
		if a.Power() != want[i] {
			t.Errorf("agent %d: alloc %v under noise, want %v bitwise", i, a.Power(), want[i])
		}
	}
}

func TestWireHeartbeatFrameTiny(t *testing.T) {
	// The heartbeat special case (precomputed frame in tcp.go) relies on
	// heartbeats encoding to a constant few bytes: magic+len+bitmap+From+Kind.
	frame := EncodeTo(nil, Message{From: 6, Kind: MsgHeartbeat})
	if len(frame) != 12 {
		t.Fatalf("heartbeat frame is %d bytes, want 12", len(frame))
	}
}

// FuzzWireMessage round-trips arbitrary field values through the binary
// codec. Values outside the codec's integer domain are canonicalized by the
// same truncating conversions EncodeTo applies, so the invariant checked is
// Decode(EncodeTo(m)) == wireCanon(m) exactly.
func FuzzWireMessage(f *testing.F) {
	for _, m := range wireTestMessages {
		f.Add(m.From, m.Round, m.E, m.Degree, m.Quiet, m.Stop, m.P, m.Kind, m.Dead, m.Act,
			m.Group, m.Epoch, m.Lease, m.Cum, m.Seq, m.Echo)
	}
	f.Fuzz(func(t *testing.T, from, round int, e float64, degree, quiet, stop int, p float64, kind, dead, act, group, epoch int, lease, cum int64, seq int, echo int64) {
		m := Message{From: from, Round: round, E: e, Degree: degree,
			Quiet: quiet, Stop: stop, P: p, Kind: kind, Dead: dead, Act: act,
			Group: group, Epoch: epoch, Lease: lease, Cum: cum, Seq: seq, Echo: echo}
		frame := EncodeTo(nil, m)
		if len(frame) > maxWireFrame {
			t.Fatalf("frame is %d bytes, exceeds maxWireFrame=%d", len(frame), maxWireFrame)
		}
		got, n, err := Decode(frame)
		if err != nil {
			t.Fatalf("Decode(EncodeTo(%+v)): %v", m, err)
		}
		if n != len(frame) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(frame))
		}
		if want := wireCanon(m); !sameMessage(got, want) {
			t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, want)
		}
	})
}

// FuzzWireDecode feeds arbitrary bytes to Decode: it must never panic and
// must never consume more bytes than it was given.
func FuzzWireDecode(f *testing.F) {
	for _, m := range wireTestMessages {
		f.Add(EncodeTo(nil, m))
	}
	f.Add([]byte{wireMagic})
	f.Add([]byte{wireMagic, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := Decode(b)
		if err != nil {
			return
		}
		if n < 4 || n > len(b) || n > maxWireFrame {
			t.Fatalf("Decode reported %d bytes consumed of %d", n, len(b))
		}
		// A decoded message must survive a second round trip: explicitly
		// encoded zero fields collapse to omitted, after which the encoding
		// is canonical.
		re := EncodeTo(nil, m)
		m2, n2, err := Decode(re)
		if err != nil || n2 != len(re) || !sameMessage(m, m2) {
			t.Fatalf("re-encode round trip failed: %v (%+v vs %+v)", err, m, m2)
		}
	})
}
