package diba

import (
	"sync"
	"testing"
	"time"
)

// TestWireStatsConcurrentWithReconnect is the control plane's safety net:
// the daemon's snapshot decorator calls WireStats/WireTotals/RTTStats from
// the agent goroutine on every round, concurrent with the transport's own
// reconnect teardown (pump goroutines dying, writeLoops replaced, counters
// updated from both sides). Under -race, hammering the accessors while the
// link is repeatedly severed must expose no data race and no torn read.
func TestWireStatsConcurrentWithReconnect(t *testing.T) {
	checkGoroutineLeak(t)
	mk := func(id int) *TCPTransport {
		tr, err := NewTCPTransport(id, "127.0.0.1:0",
			WithReconnect(2*time.Millisecond, 20*time.Millisecond, 500),
			WithHeartbeat(5*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(0), mk(1)
	defer a.Close()
	defer b.Close()
	addrs := map[int]string{0: a.Addr(), 1: b.Addr()}
	if err := a.ConnectNeighbors([]int{1}, addrs, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectNeighbors([]int{0}, addrs, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Stats readers: what the snapshot decorator does per round, times four.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(tr *TCPTransport) {
			defer wg.Done()
			var lastSent uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				per := tr.WireStats()
				tot := tr.WireTotals()
				rtt := tr.RTTStats()
				// Monotonicity across reads: totals never go backwards even
				// while teardown/reconnect churns the per-conn counters.
				if tot.MsgsSent < lastSent {
					t.Errorf("WireTotals went backwards: %d after %d", tot.MsgsSent, lastSent)
					return
				}
				lastSent = tot.MsgsSent
				var perSum uint64
				for _, ws := range per {
					perSum += ws.MsgsSent
				}
				if perSum > tot.MsgsSent {
					t.Errorf("per-peer sum %d exceeds totals %d", perSum, tot.MsgsSent)
					return
				}
				for p, st := range rtt {
					if st.Samples > 0 && st.Mean < 0 {
						t.Errorf("peer %d negative RTT mean %v", p, st.Mean)
						return
					}
				}
			}
		}([]*TCPTransport{a, b}[r%2])
	}

	// Traffic generator: keeps the write path and counters hot. Sends fail
	// while the link is down; that is the reconnect window working.
	wg.Add(1)
	go func() {
		defer wg.Done()
		round := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			round++
			_ = a.Send(1, Message{From: 0, Round: round, E: -1})
			_ = b.Send(0, Message{From: 1, Round: round, E: -2})
			time.Sleep(200 * time.Microsecond)
		}
	}()
	// Drain both inboxes so delivery never wedges on a full queue.
	for _, tr := range []*TCPTransport{a, b} {
		wg.Add(1)
		go func(tr *TCPTransport) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = tr.RecvTimeout(5 * time.Millisecond)
			}
		}(tr)
	}

	// The churn: repeatedly sever a's live connection to 1 out from under
	// the readers, forcing teardown + backoff redial while stats flow.
	for i := 0; i < 30; i++ {
		a.mu.Lock()
		if conn, ok := a.conns[1]; ok {
			conn.c.Close()
		}
		a.mu.Unlock()
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}
