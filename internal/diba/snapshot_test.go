package diba

import (
	"bytes"
	"strings"
	"testing"

	"powercap/internal/solver"
	"powercap/internal/topology"
)

func TestSnapshotRoundTrip(t *testing.T) {
	n := 40
	us := mkCluster(t, n, 71)
	budget := 170.0 * float64(n)
	en, err := New(topology.Ring(n), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 500; k++ {
		en.Step()
	}
	var buf bytes.Buffer
	if err := en.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh engine over the same cluster resumes exactly.
	en2, err := New(topology.Ring(n), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := en2.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	a1, a2 := en.Alloc(), en2.Alloc()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("cap %d differs after restore", i)
		}
	}
	if en2.Iter() != en.Iter() || en2.Budget() != en.Budget() {
		t.Fatal("metadata not restored")
	}
	// And both evolve identically afterwards.
	for k := 0; k < 200; k++ {
		en.Step()
		en2.Step()
	}
	a1, a2 = en.Alloc(), en2.Alloc()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("evolution diverged at node %d after restore", i)
		}
	}
}

func TestSnapshotResumeConvergence(t *testing.T) {
	// Restart mid-transient: resuming must converge to the same optimum
	// without re-ramping from idle.
	n := 60
	us := mkCluster(t, n, 72)
	budget := 172.0 * float64(n)
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(topology.Ring(n), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 50; k++ { // mid-ramp
		en.Step()
	}
	snap := en.Snapshot()
	en2, err := New(topology.Ring(n), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := en2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if en2.TotalPower() <= float64(n)*us[0].MinPower()+1 {
		t.Fatal("restored engine must not be back at idle")
	}
	res := en2.RunToTarget(opt.Utility, 0.99, 20000)
	if !res.Converged {
		t.Fatal("restored engine failed to converge")
	}
}

func TestRestoreValidation(t *testing.T) {
	n := 10
	us := mkCluster(t, n, 73)
	en, err := New(topology.Ring(n), us, 1800, Config{})
	if err != nil {
		t.Fatal(err)
	}
	good := en.Snapshot()

	bad := good
	bad.Version = 99
	if err := en.Restore(bad); err == nil {
		t.Fatal("wrong version must be rejected")
	}
	bad = good
	bad.P = bad.P[:5]
	if err := en.Restore(bad); err == nil {
		t.Fatal("wrong length must be rejected")
	}
	bad = en.Snapshot()
	bad.E[3] = 0.5
	if err := en.Restore(bad); err == nil {
		t.Fatal("non-negative estimate must be rejected")
	}
	bad = en.Snapshot()
	bad.P[2] = 5000
	if err := en.Restore(bad); err == nil {
		t.Fatal("out-of-range cap must be rejected")
	}
	bad = en.Snapshot()
	bad.Budget += 100 // breaks conservation
	if err := en.Restore(bad); err == nil {
		t.Fatal("conservation-breaking snapshot must be rejected")
	}
	bad = en.Snapshot()
	bad.Dead = []int{42}
	if err := en.Restore(bad); err == nil {
		t.Fatal("out-of-range dead node must be rejected")
	}
	if err := en.ReadSnapshot(strings.NewReader("{garbage")); err == nil {
		t.Fatal("malformed JSON must be rejected")
	}
}

func TestSnapshotWithFailedNodes(t *testing.T) {
	n := 20
	us := mkCluster(t, n, 74)
	en, err := New(topology.ChordalRing(n, 5), us, float64(n)*175, Config{})
	if err != nil {
		t.Fatal(err)
	}
	en.RunToQuiescence(1e-3, 10, 20000)
	if err := en.FailNode(4); err != nil {
		t.Fatal(err)
	}
	snap := en.Snapshot()
	if len(snap.Dead) != 1 || snap.Dead[0] != 4 {
		t.Fatalf("dead list = %v", snap.Dead)
	}
	en2, err := New(topology.ChordalRing(n, 5), us, float64(n)*175, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := en2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := en2.Failed(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("restored dead list = %v", got)
	}
	if err := en2.CheckConservation(1e-6); err != nil {
		t.Fatal(err)
	}
	// Stepping after restore must keep conservation: the dead node's edges
	// must be gone (a phantom zero-estimate neighbor would siphon mass).
	for k := 0; k < 500; k++ {
		en2.Step()
		if err := en2.CheckConservation(1e-6); err != nil {
			t.Fatalf("step %d after restore: %v", k, err)
		}
	}
	if en2.Alloc()[4] != 0 {
		t.Fatal("dead node must stay at zero draw after restore")
	}
}
