package diba

import (
	"fmt"

	"powercap/internal/topology"
)

// Node failures. The text motivates decentralization with fault isolation:
// "the failure in one or few servers or the communication breakdown can be
// mitigated as the overall performance of the system does not hinge on a
// particular unit", and suggests equipping the ring with chords so the
// communication graph stays connected when nodes die. FailNode models a
// crashed server: it stops computing, stops exchanging estimates, and its
// power draw drops to zero (the machine is down).
//
// Accounting: the failed node's state (p_i, e_i) leaves the system, and the
// surviving budget is set to P − p_i + e_i, which preserves the
// conservation identity Σe = Σp − P over the survivors *exactly*. Since
// e_i < 0, the survivors' budget is strictly below P minus the dead node's
// draw — conservative by construction, so feasibility is never endangered
// by a crash. An operator who wants the survivors to reclaim the dead
// node's full share afterwards broadcasts a budget update (SetBudget),
// which redistributes safely through the usual shedding path.

// FailNode removes node i from the computation: its edges are dropped from
// the communication graph, its power is treated as zero, and the cluster
// budget shrinks by one per-node share. An error is returned if the
// failure would disconnect the surviving communication graph (a ring needs
// chords to survive, which is exactly the text's point) or leave it
// infeasible.
func (en *Engine) FailNode(i int) error {
	n := len(en.us)
	if i < 0 || i >= n {
		return fmt.Errorf("diba: node %d out of range", i)
	}
	if en.failed(i) {
		return fmt.Errorf("diba: node %d already failed", i)
	}
	g := en.g.RemoveNode(i)
	if !survivorsConnected(g, en.deadSet(), i) {
		return fmt.Errorf("diba: failing node %d disconnects the survivors", i)
	}
	newBudget := en.budget - en.p[i] + en.e[i]
	var minSum float64
	for j, u := range en.us {
		if j == i || en.failed(j) {
			continue
		}
		minSum += u.MinPower()
	}
	if newBudget <= minSum {
		return fmt.Errorf("diba: post-failure budget %.1f W cannot cover survivors' idle power %.1f W", newBudget, minSum)
	}

	en.g = g
	if en.dead == nil {
		en.dead = make(map[int]bool)
	}
	en.dead[i] = true
	en.p[i] = 0
	en.e[i] = 0
	en.budget = newBudget
	en.rebuildTopoCache()
	en.refreshAggregates()
	return nil
}

// failed reports whether node i has been failed.
func (en *Engine) failed(i int) bool { return en.dead[i] }

// Failed returns the failed node ids (unordered).
func (en *Engine) Failed() []int {
	out := make([]int, 0, len(en.dead))
	for i := range en.dead {
		out = append(out, i)
	}
	return out
}

func (en *Engine) deadSet() map[int]bool { return en.dead }

// survivorsConnected checks connectivity of g restricted to live nodes,
// with extra treated as dead.
func survivorsConnected(g *topology.Graph, dead map[int]bool, extra int) bool {
	n := g.N()
	isDead := func(v int) bool { return v == extra || dead[v] }
	start := -1
	live := 0
	for v := 0; v < n; v++ {
		if !isDead(v) {
			live++
			if start < 0 {
				start = v
			}
		}
	}
	if live <= 1 {
		return live == 1
	}
	seen := make([]bool, n)
	stack := []int{start}
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if !seen[w] && !isDead(int(w)) {
				seen[w] = true
				count++
				stack = append(stack, int(w))
			}
		}
	}
	return count == live
}
