package diba

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"powercap/internal/topology"
	"powercap/internal/workload"
)

func TestAgentsMatchEngineExactly(t *testing.T) {
	// The goroutine agents and the synchronous engine run the same rule in
	// the same BSP order, so after the same number of rounds their states
	// must agree bitwise.
	n := 40
	us := mkCluster(t, n, 21)
	budget := float64(n) * 170
	g := topology.Ring(n)
	const rounds = 300

	en, err := New(g, us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rounds; k++ {
		en.Step()
	}
	want := en.Alloc()

	got, err := RunAgents(g, us, budget, Config{}, rounds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d: agents %v != engine %v", i, got[i], want[i])
		}
	}
}

func TestAgentsMatchEngineOnIrregularGraph(t *testing.T) {
	n := 30
	us := mkCluster(t, n, 22)
	budget := float64(n) * 168
	rng := rand.New(rand.NewSource(23))
	g := topology.ConnectedErdosRenyi(n, 70, rng)
	const rounds = 200

	en, err := New(g, us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rounds; k++ {
		en.Step()
	}
	want := en.Alloc()
	got, err := RunAgents(g, us, budget, Config{}, rounds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d: agents %v != engine %v", i, got[i], want[i])
		}
	}
}

func TestNewAgentValidation(t *testing.T) {
	us := mkCluster(t, 4, 24)
	net := NewChanNetwork(4, 16)
	if _, err := NewAgent(0, nil, us[0], 700, 4, 400, Config{}, net.Endpoint(0)); err == nil {
		t.Fatal("agent without neighbors must be rejected")
	}
	if _, err := NewAgent(0, []int{1}, us[0], 300, 4, 400, Config{}, net.Endpoint(0)); err == nil {
		t.Fatal("budget below idle power must be rejected")
	}
	if _, err := NewAgent(0, []int{1}, us[0], 700, 4, 400, Config{Gamma: 7}, net.Endpoint(0)); err == nil {
		t.Fatal("bad config must be rejected")
	}
}

func TestRunAgentsValidation(t *testing.T) {
	us := mkCluster(t, 4, 25)
	if _, err := RunAgents(topology.Ring(5), us, 900, Config{}, 10); err == nil {
		t.Fatal("size mismatch must be rejected")
	}
	if _, err := RunAgents(topology.NewGraph(4), us, 900, Config{}, 10); err == nil {
		t.Fatal("disconnected graph must be rejected")
	}
}

func TestAgentBudgetDelta(t *testing.T) {
	us := mkCluster(t, 4, 26)
	net := NewChanNetwork(4, 16)
	a, err := NewAgent(0, []int{1}, us[0], 4*180, 4, 400, Config{}, net.Endpoint(0))
	if err != nil {
		t.Fatal(err)
	}
	e0 := a.Estimate()
	a.SetBudgetDelta(-40, 4) // budget cut of 40 W total
	if a.Estimate() >= e0+10+1e-9 && a.Estimate() >= 0 {
		t.Fatal("estimate must shift by the per-node share or power must shed")
	}
	if a.Estimate() >= 0 {
		t.Fatalf("estimate must stay negative after moderate cut, got %v", a.Estimate())
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	t0, err := NewTCPTransport(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := NewTCPTransport(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	addrs := map[int]string{0: t0.Addr(), 1: t1.Addr()}

	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, 2)
	go func() {
		defer wg.Done()
		errs <- t0.ConnectNeighbors([]int{1}, addrs, 2*time.Second)
	}()
	go func() {
		defer wg.Done()
		errs <- t1.ConnectNeighbors([]int{0}, addrs, 2*time.Second)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	want := Message{From: 0, Round: 3, E: -1.25, Degree: 1}
	if err := t0.Send(1, want); err != nil {
		t.Fatal(err)
	}
	got, err := t1.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	// And the reverse direction over the same connection.
	want2 := Message{From: 1, Round: 3, E: -0.5, Degree: 1}
	if err := t1.Send(0, want2); err != nil {
		t.Fatal(err)
	}
	got2, err := t0.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want2 {
		t.Fatalf("got %+v, want %+v", got2, want2)
	}
}

func TestAgentsOverTCPMatchEngine(t *testing.T) {
	// Full DiBA over real sockets must reproduce the engine bitwise under
	// every wire configuration: both codecs, a mixed-codec cluster (one
	// JSON agent among binary ones exercises the negotiated per-link
	// fallback), and with coalescing disabled.
	t.Run("binary", func(t *testing.T) {
		testAgentsOverTCPMatchEngine(t, func(int) []TCPOption { return nil })
	})
	t.Run("json", func(t *testing.T) {
		testAgentsOverTCPMatchEngine(t, func(int) []TCPOption {
			return []TCPOption{WithWireCodec(WireJSON)}
		})
	})
	t.Run("mixed", func(t *testing.T) {
		testAgentsOverTCPMatchEngine(t, func(id int) []TCPOption {
			if id == 0 {
				return []TCPOption{WithWireCodec(WireJSON)}
			}
			return nil
		})
	})
	t.Run("uncoalesced", func(t *testing.T) {
		testAgentsOverTCPMatchEngine(t, func(int) []TCPOption {
			return []TCPOption{WithSendQueue(0)}
		})
	})
}

func testAgentsOverTCPMatchEngine(t *testing.T, optsFor func(id int) []TCPOption) {
	n := 6
	us := mkCluster(t, n, 27)
	budget := float64(n) * 170
	g := topology.Ring(n)
	const rounds = 120

	en, err := New(g, us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rounds; k++ {
		en.Step()
	}
	want := en.Alloc()

	trs := make([]*TCPTransport, n)
	addrs := make(map[int]string, n)
	for i := 0; i < n; i++ {
		tr, err := NewTCPTransport(i, "127.0.0.1:0", optsFor(i)...)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		trs[i] = tr
		addrs[i] = tr.Addr()
	}
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	var wg sync.WaitGroup
	results := make([]AgentState, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := trs[i].ConnectNeighbors(g.NeighborsInts(i), addrs, 5*time.Second); err != nil {
				errs[i] = err
				return
			}
			a, err := NewAgent(i, g.NeighborsInts(i), us[i], budget, n, totalIdle, Config{}, trs[i])
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = a.Run(rounds)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	for i := range want {
		if diff := results[i].Power - want[i]; diff != 0 {
			t.Fatalf("node %d over TCP: %v != engine %v", i, results[i].Power, want[i])
		}
	}
}

func TestChanNetworkUnknownAgent(t *testing.T) {
	net := NewChanNetwork(2, 4)
	ep := net.Endpoint(0)
	if err := ep.Send(5, Message{}); err == nil {
		t.Fatal("send to unknown agent must fail")
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPSendWithoutConnection(t *testing.T) {
	tr, err := NewTCPTransport(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(3, Message{}); err == nil {
		t.Fatal("send without connection must fail")
	}
}

func TestTCPConnectMissingAddress(t *testing.T) {
	tr, err := NewTCPTransport(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	err = tr.ConnectNeighbors([]int{1}, map[int]string{}, 100*time.Millisecond)
	if err == nil {
		t.Fatal("missing neighbor address must fail")
	}
}

func ExampleRunAgents() {
	rng := rand.New(rand.NewSource(1))
	a, _ := workload.Assign(workload.HPC, 12, workload.DefaultServer, 0, 0, rng)
	alloc, err := RunAgents(topology.Ring(12), a.UtilitySlice(), 12*170, Config{}, 500)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var sum float64
	for _, p := range alloc {
		sum += p
	}
	fmt.Printf("within budget: %v\n", sum <= 12*170)
	// Output: within budget: true
}
