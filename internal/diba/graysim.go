package diba

import (
	"fmt"

	"powercap/internal/workload"
)

// graysim.go is a deterministic virtual-time model of a DiBA ring with one
// gray (slowed, alive) node, used by the pinned `repro grayfail` experiment
// and the `repro bench -gray` gates. Real-agent runs of the same scenario
// are wall-clock driven and therefore unpinnable; this model replaces the
// clock with discrete slots — every healthy link delivers in 1 slot, every
// link touching the slow node in Sigma slots — while running the *exact*
// round arithmetic (nodeRule/edgeTransfer) and the exact stale-settlement
// algebra of straggler.go. That makes both the performance claim (a
// fixed-deadline ring throttles to the slow node's pace; a
// straggler-tolerant ring does not) and the conservation claim (every
// substituted round settles back to Σe = Σp − B) reproducible bitwise.
//
// The timing model is max-plus: node i starts round r+1 when its round-r
// inputs are satisfied, so with fixed deadlines the ring's asymptotic round
// period is the maximum cycle mean of the latency graph — Sigma, set by the
// two-slot cycle across either slow link. With straggler tolerance every
// input is satisfied no later than the adaptive deadline, so the period is
// bounded by the deadline regardless of Sigma.

// graySimDeadline is the tolerant per-peer deadline in slots: the converged
// value of the adaptive estimator on a healthy 1-slot link (srtt 1, low
// variance, clamped at 2× the healthy round trip).
const graySimDeadline = 2

// graySimStallSlots classifies a round as stalled when it takes longer
// than this many slots — 3× the healthy round period.
const graySimStallSlots = 3

// GraySimConfig configures one virtual-time gray-failure run.
type GraySimConfig struct {
	N        int  // ring size (>= 3)
	Slow     int  // id of the gray node
	Sigma    int  // latency of the slow node's links, in slots (healthy = 1)
	Tolerant bool // straggler-tolerant gather vs fixed-deadline baseline
	Rounds   int  // BSP rounds every node executes
	MaxLag   int  // substitution staleness bound (0 selects 8, as FaultPolicy)
	BudgetW  float64
	Util     []workload.Utility // one per node
	Cfg      Config
}

// GraySimResult summarizes one run.
type GraySimResult struct {
	Rounds        int     // rounds executed per node
	Slots         float64 // virtual time at which the last node finished
	SlotsPerRound float64 // asymptotic round period (Slots / Rounds)
	StalledRounds int     // node-rounds that took > graySimStallSlots
	Substituted   int     // stale-proceed mitigations
	SoftExcluded  int     // soft-exclude mitigations
	Outstanding   int     // records never settled (0: every frame arrived)
	// MaxAbsGap is |Σe − (Σp − B)| after every node finished and every
	// in-flight frame settled — the conservation invariant.
	MaxAbsGap float64
	// SlowDeclaredDead would be a false death of the beaconing slow node;
	// the model cannot produce one (there is no silence), it is reported
	// for symmetry with the real-agent gates.
	SlowDeclaredDead bool
}

// RunGraySim executes the model.
func RunGraySim(sc GraySimConfig) (GraySimResult, error) {
	if sc.N < 3 {
		return GraySimResult{}, fmt.Errorf("diba: graysim needs N >= 3, got %d", sc.N)
	}
	if sc.Slow < 0 || sc.Slow >= sc.N {
		return GraySimResult{}, fmt.Errorf("diba: graysim slow node %d out of range", sc.Slow)
	}
	if sc.Sigma < 1 {
		return GraySimResult{}, fmt.Errorf("diba: graysim sigma %d must be >= 1", sc.Sigma)
	}
	if len(sc.Util) != sc.N {
		return GraySimResult{}, fmt.Errorf("diba: graysim has %d utilities for %d nodes", len(sc.Util), sc.N)
	}
	cfg := sc.Cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return GraySimResult{}, err
	}
	maxLag := sc.MaxLag
	if maxLag <= 0 {
		maxLag = 8
	}

	var totalIdle float64
	for _, u := range sc.Util {
		totalIdle += u.MinPower()
	}
	share := (totalIdle - sc.BudgetW) / float64(sc.N)
	if share >= 0 {
		return GraySimResult{}, fmt.Errorf("diba: graysim budget %.1f cannot cover idle power %.1f", sc.BudgetW, totalIdle)
	}

	lat := func(from, to int) float64 {
		if from == sc.Slow || to == sc.Slow {
			return float64(sc.Sigma)
		}
		return 1
	}
	left := func(i int) int { return (i - 1 + sc.N) % sc.N }
	right := func(i int) int { return (i + 1) % sc.N }

	type settleRec struct {
		peer    int
		round   int
		tStale  float64
		ownE    float64
		trueArr float64
	}

	n, R := sc.N, sc.Rounds
	e := make([]float64, n)
	p := make([]float64, n)
	comp := make([]float64, n)
	pending := make([][]settleRec, n)
	// bcastAt[i][r] / bcastE[i][r]: the slot node i broadcast round r at,
	// and the estimate that broadcast carried.
	bcastAt := make([][]float64, n)
	bcastE := make([][]float64, n)
	for i := 0; i < n; i++ {
		e[i] = share
		p[i] = sc.Util[i].MinPower()
		bcastAt[i] = make([]float64, R+1)
		bcastE[i] = make([]float64, R)
	}

	res := GraySimResult{Rounds: R}
	nbrE := make([]float64, 0, 2)
	nbrDeg := make([]int32, 0, 2)
	for r := 0; r < R; r++ {
		for i := 0; i < n; i++ {
			bcastE[i][r] = e[i]
		}
		rcfg := cfg
		rcfg.Eta = cfg.etaAt(r)
		for i := 0; i < n; i++ {
			start := bcastAt[i][r]
			tDone := start
			nbrE = nbrE[:0]
			nbrDeg = nbrDeg[:0]
			for _, nb := range []int{left(i), right(i)} {
				arr := bcastAt[nb][r] + lat(nb, i)
				if !sc.Tolerant || arr <= start+graySimDeadline {
					if arr > tDone {
						tDone = arr
					}
					nbrE = append(nbrE, bcastE[nb][r])
					nbrDeg = append(nbrDeg, 2)
					continue
				}
				// Adaptive deadline fired: mitigate exactly as
				// straggler.go does. The freshest frame already arrived
				// by the deadline stands in if it is recent enough.
				deadline := start + graySimDeadline
				if deadline > tDone {
					tDone = deadline
				}
				stale := -1
				for rr := r - 1; rr >= 0 && r-rr <= maxLag; rr-- {
					if bcastAt[nb][rr]+lat(nb, i) <= deadline {
						stale = rr
						break
					}
				}
				rec := settleRec{peer: nb, round: r, ownE: e[i], trueArr: arr}
				if stale >= 0 {
					rec.tStale = edgeTransfer(cfg, e[i], bcastE[nb][stale], 2, 2)
					nbrE = append(nbrE, bcastE[nb][stale])
					nbrDeg = append(nbrDeg, 2)
					res.Substituted++
				} else {
					res.SoftExcluded++
				}
				pending[i] = append(pending[i], rec)
			}
			phat, outflow := nodeRule(rcfg, sc.Util[i], p[i], e[i], 2, nbrE, nbrDeg)
			p[i] += phat
			// Grouped exactly as Agent.runRound / Engine.Step.
			e[i] = e[i] + phat - outflow
			if tDone-start > graySimStallSlots {
				res.StalledRounds++
			}
			// Settle every record whose true frame has landed by the end
			// of this round, then fold the corrections — after the exact
			// grouping, like finishRound.
			keep := pending[i][:0]
			for _, rec := range pending[i] {
				if rec.trueArr <= tDone {
					tTrue := edgeTransfer(cfg, rec.ownE, bcastE[rec.peer][rec.round], 2, 2)
					comp[i] += rec.tStale - tTrue
				} else {
					keep = append(keep, rec)
				}
			}
			pending[i] = keep
			if comp[i] != 0 {
				e[i] += comp[i]
				comp[i] = 0
			}
			bcastAt[i][r+1] = tDone
			if bcastAt[i][r+1] > res.Slots {
				res.Slots = bcastAt[i][r+1]
			}
		}
	}
	// Drain: every broadcast frame eventually arrives; settle what is
	// still outstanding.
	for i := 0; i < n; i++ {
		for _, rec := range pending[i] {
			tTrue := edgeTransfer(cfg, rec.ownE, bcastE[rec.peer][rec.round], 2, 2)
			comp[i] += rec.tStale - tTrue
		}
		pending[i] = nil
		if comp[i] != 0 {
			e[i] += comp[i]
			comp[i] = 0
		}
	}
	res.Outstanding = 0
	var sumE, sumP float64
	for i := 0; i < n; i++ {
		sumE += e[i]
		sumP += p[i]
	}
	gap := sumE - (sumP - sc.BudgetW)
	if gap < 0 {
		gap = -gap
	}
	res.MaxAbsGap = gap
	if R > 0 {
		res.SlotsPerRound = res.Slots / float64(R)
	}
	return res, nil
}
