package diba

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Restart-rejoin: the inverse of repair.go. A node that crashed and was
// declared dead can come back — restarted from an operational snapshot —
// and the cluster heals to exactly its original membership and budget:
//
//  1. The restarted agent floods MsgRejoinReq to its former ring neighbors
//     (resending until answered; a request is deliberately NOT liveness, so
//     a restart that beat the failure detector still gets declared dead
//     first and then readmitted).
//  2. A survivor holding a dead record for the requester schedules a rejoin
//     round J comfortably ahead of its own round counter, floods MsgRejoin
//     so every survivor agrees (minimum J wins, improvements re-flood — the
//     same epidemic-minimum trick chord activation uses), and answers the
//     requester with MsgRejoinAck carrying J and the frozen state
//     (p_d, e_d) the cluster froze at the death.
//  3. The rejoiner adopts the frozen state — NOT its own snapshot state —
//     sets its round to J, and resumes normal BSP rounds. Survivors keep
//     their flow compensation folded; adopting exactly (p_d, e_d) is what
//     makes Σe = Σp − B hold to float precision again (the death shrank
//     the budget by p_d − e_d; the rejoiner brings back exactly that).
//  4. At round J every survivor deletes the dead record, re-adds the ring
//     edge it dropped, and recomputes its budget view — back to exactly
//     the configured B. A tombstone guards against stale death epidemics
//     still circulating from before the rejoin.
//
// Assumes the failure that took the node out has otherwise quiesced (the
// record set converged) and that the handshake completes before the
// survivors reach J — the margin is generous (cluster size + RepairMargin
// + 8 rounds), but a rejoiner that misses its window simply times out and
// retries after the cluster re-declares it dead.

// AgentSnapshot is the serializable per-agent state for crash-restart. It
// intentionally carries only what a restart cannot re-derive: identity,
// round position, and the (p, e) pair. Topology, utility, and policy come
// from the daemon's own configuration.
type AgentSnapshot struct {
	Version int     `json:"version"`
	ID      int     `json:"id"`
	Round   int     `json:"round"`
	P       float64 `json:"p"`
	E       float64 `json:"e"`
	// Budget is the configured cluster budget (budget0), recorded so a
	// restart with a mismatched -budget flag is caught instead of silently
	// corrupting conservation.
	Budget float64 `json:"budget"`
}

// agentSnapshotVersion guards the wire format.
const agentSnapshotVersion = 1

// Snapshot captures the agent's restartable state.
func (a *Agent) Snapshot() AgentSnapshot {
	return AgentSnapshot{
		Version: agentSnapshotVersion,
		ID:      a.ID,
		Round:   a.round,
		P:       a.p,
		E:       a.e,
		Budget:  a.budget0,
	}
}

// WriteSnapshot serializes the agent state as JSON.
func (a *Agent) WriteSnapshot(w io.Writer) error {
	return json.NewEncoder(w).Encode(a.Snapshot())
}

// Resume replaces the agent's dynamic state with the snapshot after
// validation. Call before the first round; a subsequent Rejoin overrides
// (p, e, round) with the cluster's frozen view, which is the authoritative
// one for conservation.
func (a *Agent) Resume(s AgentSnapshot) error {
	if s.Version != agentSnapshotVersion {
		return fmt.Errorf("diba: agent snapshot version %d unsupported", s.Version)
	}
	if s.ID != a.ID {
		return fmt.Errorf("diba: snapshot is for agent %d, this agent is %d", s.ID, a.ID)
	}
	if s.Round < 0 {
		return fmt.Errorf("diba: snapshot round %d negative", s.Round)
	}
	if math.IsNaN(s.P) || math.IsInf(s.P, 0) || math.IsNaN(s.E) || math.IsInf(s.E, 0) {
		return errors.New("diba: snapshot carries non-finite state")
	}
	if s.P < a.util.MinPower()-1e-9 || s.P > a.util.MaxPower()+1e-9 {
		return fmt.Errorf("diba: snapshot cap %g outside [%g, %g]", s.P, a.util.MinPower(), a.util.MaxPower())
	}
	if s.E >= 0 {
		return fmt.Errorf("diba: snapshot estimate %g not strictly negative", s.E)
	}
	if d := s.Budget - a.budget0; d > 1e-6 || d < -1e-6 {
		return fmt.Errorf("diba: snapshot budget %g does not match configured %g", s.Budget, a.budget0)
	}
	a.round = s.Round
	a.p = s.P
	a.e = s.E
	if a.tel != nil {
		a.tel.applied.Store(math.Float64bits(s.P))
	}
	return nil
}

// ReadSnapshot deserializes and applies an agent snapshot.
func (a *Agent) ReadSnapshot(r io.Reader) error {
	var s AgentSnapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("diba: decoding agent snapshot: %w", err)
	}
	return a.Resume(s)
}

// Round returns the agent's current round counter.
func (a *Agent) Round() int { return a.round }

// rejoinRecord tombstones a completed rejoin: the agreed rejoin round and
// the state the rejoiner adopted, kept so stale death epidemics from before
// the rejoin are recognized and ignored.
type rejoinRecord struct {
	at        int
	lastRound int
	p, e      float64
}

// Rejoin runs the restart-rejoin handshake: flood requests to the ring
// neighbors, collect acknowledgements, adopt the cluster's frozen state and
// the agreed rejoin round. On success the agent is ready to run normal
// rounds starting at that round. Requires a FaultPolicy (SetFaultPolicy).
func (a *Agent) Rejoin(timeout time.Duration) error {
	if !a.ftEnabled() {
		return errors.New("diba: rejoin requires a fault policy with detection enabled")
	}
	deadline := time.Now().Add(timeout)
	resendEvery := timeout / 20
	if resendEvery < 10*time.Millisecond {
		resendEvery = 10 * time.Millisecond
	}
	if resendEvery > 250*time.Millisecond {
		resendEvery = 250 * time.Millisecond
	}
	req := Message{Kind: MsgRejoinReq, From: a.ID, Round: a.round}
	acks := make(map[int]Message, len(a.Neighbors))
	bestL, minJ := -1, 0
	var frozenP, frozenE float64
	var nextSend time.Time
	var deferred []Message // dead reports about others, applied after adoption
	for len(acks) < len(a.Neighbors) || minJ == 0 {
		now := time.Now()
		if !now.Before(deadline) {
			if len(acks) > 0 && minJ > 0 {
				break // partial but sufficient: at least one survivor vouched
			}
			return fmt.Errorf("diba: agent %d rejoin timed out after %v (%d/%d neighbors answered)", a.ID, timeout, len(acks), len(a.Neighbors))
		}
		if !now.Before(nextSend) {
			for _, nb := range a.Neighbors {
				_ = a.tr.Send(nb, req)
			}
			nextSend = now.Add(resendEvery)
		}
		until := nextSend
		if deadline.Before(until) {
			until = deadline
		}
		wait := time.Until(until)
		if wait <= 0 {
			wait = time.Millisecond
		}
		m, err := recvTimeout(a.tr, wait)
		if errors.Is(err, ErrRecvTimeout) {
			continue
		}
		if err != nil {
			return err
		}
		switch m.Kind {
		case MsgRejoinAck:
			if m.Dead != a.ID || m.Act <= 0 {
				continue
			}
			acks[m.From] = m
			a.heard[m.From] = time.Now()
			if m.Round > bestL {
				bestL, frozenP, frozenE = m.Round, m.P, m.E
			}
			if minJ == 0 || m.Act < minJ {
				minJ = m.Act
			}
		case MsgRejoin:
			if m.Dead == a.ID && m.Act > 0 && (minJ == 0 || m.Act < minJ) {
				minJ = m.Act
			}
		case MsgNodeDead:
			if m.Dead != a.ID {
				deferred = append(deferred, m)
			}
			// Reports about our former self are stale by construction here.
		case MsgEstimate:
			// A survivor already past J is broadcasting to us; buffer it for
			// the round loop.
			buf := a.pending[m.Round]
			if buf == nil {
				buf = make(map[int]Message)
				a.pending[m.Round] = buf
			}
			buf[m.From] = m
		}
	}
	if bestL < 0 {
		return fmt.Errorf("diba: agent %d rejoin: no survivor holds frozen state", a.ID)
	}
	// Adopt the cluster's frozen view — this, not the snapshot, is what
	// restores Σe = Σp − B exactly (the survivors' budgets shrank by
	// exactly p_frozen − e_frozen).
	a.p = frozenP
	a.e = frozenE
	a.round = minJ
	a.rejoinedAt = minJ
	a.budget = a.budget0
	if a.tel != nil {
		a.tel.applied.Store(math.Float64bits(a.p))
	}
	for r := range a.pending {
		if r < minJ {
			delete(a.pending, r)
		}
	}
	for _, m := range deferred {
		_ = a.applyDeadReport(m) // self-reports were filtered above
	}
	a.event("rejoin", a.ID, fmt.Sprintf("rejoined at round %d with frozen p=%.3f e=%.3f (%d acks)", minJ, frozenP, frozenE, len(acks)))
	return nil
}

// rejoinMargin is how many rounds ahead of the proposer the rejoin round is
// scheduled: past the epidemic's propagation (cluster size, like
// RepairMargin) plus slack for the handshake round trips.
func (a *Agent) rejoinMargin() int {
	m := a.fp.RepairMargin
	if m < a.clusterSize {
		m = a.clusterSize
	}
	return m + 8
}

// handleRejoinReq answers a restarted node asking back in. Only a survivor
// that still holds the requester's dead record can vouch; anyone else stays
// silent and lets detection (or the epidemic) catch up first.
func (a *Agent) handleRejoinReq(m Message) {
	rec := a.dead[m.From]
	if rec == nil {
		return
	}
	if rec.rejoinAt <= 0 {
		rec.rejoinAt = a.round + a.rejoinMargin()
		a.floodRejoin(rec)
		a.event("rejoin", m.From, fmt.Sprintf("rejoin scheduled for round %d", rec.rejoinAt))
	}
	_ = a.tr.Send(m.From, Message{
		Kind:  MsgRejoinAck,
		From:  a.ID,
		Dead:  m.From,
		Act:   rec.rejoinAt,
		Round: rec.lastRound,
		P:     rec.frozenP,
		E:     rec.frozenE,
	})
}

// handleRejoinFlood merges a rejoin schedule from a peer: the minimum round
// wins and improvements re-flood, so all survivors converge on one J.
func (a *Agent) handleRejoinFlood(m Message) {
	if m.Dead == a.ID {
		return // echo of our own rejoin; Rejoin consumed the ones that matter
	}
	rec := a.dead[m.Dead]
	if rec == nil {
		// The schedule can outrun the death epidemic itself — both flood
		// concurrently over delaying links. The flood carries the sender's
		// frozen-state view, so it doubles as a death report: merge it and
		// fall through. Dropping it would orphan this survivor from the
		// rejoin (a missed schedule is otherwise only re-delivered by the
		// periodic anti-entropy).
		a.mergeDead(m.Dead, m.Round, m.P, m.E, 0)
		rec = a.dead[m.Dead]
		if rec == nil {
			return // tombstoned: a stale flood from before a completed rejoin
		}
	} else if m.Round > rec.lastRound {
		// Max-merge the frozen-state view like any other epidemic report.
		// This heals a split record (one survivor missed the final-broadcast
		// revision) before the rejoiner adopts the frozen state — a split
		// view would leave a spurious flow compensation behind and break
		// conservation by one round's edge flow.
		a.mergeDead(m.Dead, m.Round, m.P, m.E, rec.activateAt)
	}
	if m.Act > 0 && (rec.rejoinAt <= 0 || m.Act < rec.rejoinAt) {
		rec.rejoinAt = m.Act
		a.floodRejoin(rec)
	}
}

// floodRejoin announces rec's rejoin schedule over every live link.
func (a *Agent) floodRejoin(rec *deadRecord) {
	out := Message{
		Kind:  MsgRejoin,
		From:  a.ID,
		Dead:  rec.node,
		Act:   rec.rejoinAt,
		Round: rec.lastRound,
		P:     rec.frozenP,
		E:     rec.frozenE,
	}
	for _, nb := range a.links() {
		_ = a.tr.Send(nb, out)
	}
}

// completeRejoins finishes every rejoin whose round has arrived: re-add the
// dropped ring edge, forget the dead record, and restore the budget view —
// with a single failure now healed, back to exactly the configured budget.
// Runs at the top of beginRound so the same round's gather already expects
// the rejoiner's broadcast.
func (a *Agent) completeRejoins() {
	var done []int
	for id, rec := range a.dead {
		if rec.rejoinAt > 0 && a.round >= rec.rejoinAt {
			done = append(done, id)
		}
	}
	sort.Ints(done)
	for _, id := range done {
		rec := a.dead[id]
		if rec.droppedEdge && !a.hasNeighbor(id) {
			a.Neighbors = append(a.Neighbors, id)
			sort.Ints(a.Neighbors)
		}
		delete(a.dead, id)
		delete(a.usedRound, id)
		delete(a.lastFrom, id)
		if a.rejoined == nil {
			a.rejoined = make(map[int]rejoinRecord)
		}
		a.rejoined[id] = rejoinRecord{at: rec.rejoinAt, lastRound: rec.lastRound, p: rec.frozenP, e: rec.frozenE}
		a.recomputeBudget()
		a.event("rejoin", id, fmt.Sprintf("node readmitted at round %d; budget view %.3f W", rec.rejoinAt, a.budget))
	}
}
