package diba

import (
	"fmt"
	"sort"

	"powercap/internal/workload"
)

// hieragent.go is the distributed hierarchical runtime: the process-level
// counterpart of the in-process HierEngine (hierarchy.go). Each group of
// leaf agents runs plain DiBA consensus against its group's budget lease
// instead of the cluster budget B; one member per group — the aggregate
// agent — additionally participates in the upper ring on the group's
// behalf, exchanging lease transfers with the aggregates of adjacent
// groups so budget migrates toward overloaded groups.
//
// Robustness model:
//
//   - Election is deterministic rank order: the acting aggregate is the
//     lowest-id live member, per each member's local dead set (the PR 2
//     failure detector). No votes — when the aggregate dies, every
//     survivor independently agrees on the successor.
//   - The aggregate's authority is fenced by an epoch: each promotion
//     bumps it, lease floods carry (epoch, seq) and members accept only
//     lexicographically newer values, and upper-ring peers echo the
//     highest epoch they have seen for a group (Message.Act in the lease
//     ack) so a deposed aggregate that survived a false suspicion or a
//     healed partition demotes itself instead of split-brain leasing.
//   - A freshly promoted successor is a *candidate*: it has no transfer
//     ledger, so its lease view is provisional (the last flooded value).
//     It rebuilds the exact ledger from its upper-ring neighbors' echoes
//     (lease.go) and is confirmed — renewing leases, allowed to donate —
//     only once every edge has synced. If the group is partitioned from
//     the upper level, confirmation never comes, the lease TTL expires,
//     and every member independently freezes at the last leased budget
//     minus the freeze margin — never the full cluster B.
//   - Leases are TTL'd in rounds of each member's own counter: the
//     confirmed aggregate re-floods every RenewEvery rounds, and a member
//     that has not accepted a newer (epoch, seq) within LeaseTTL rounds
//     freezes as above. Any later valid flood unfreezes it.
//
// Budget-view plumbing: a lease change reaches the group as
// setBudgetBase(LeaseWatts(lease)) at every member — recomputed from the
// integer milliwatt lease, so member views are bitwise identical — while
// the estimate shift that keeps Σe = Σp − B conserved is absorbed entirely
// by the aggregate (nudgeEstimate of −Δ). The freeze margin is the one
// exception: freezing is a local, uncoordinated act, so each member
// absorbs margin/m itself. Leaf deaths inside the group compose with all
// of this unchanged — the PR 2/PR 4 reconciliation runs against the lease
// base (budget0 is the lease), so a rejoin restores the group view to
// exactly its leased share.

// HierTopo describes a two-level hierarchy: leaf groups of node ids (each
// group runs its own DiBA ring), with the groups forming the upper ring in
// index order. BudgetW is the cluster budget, IdleW each node's idle power.
type HierTopo struct {
	Groups  [][]int
	BudgetW float64
	IdleW   float64
}

// Validate checks the topology: at least one group, every group with at
// least two members (a one-node group has no ring), no duplicate ids.
func (t HierTopo) Validate() error {
	if len(t.Groups) == 0 {
		return fmt.Errorf("diba: hier topology has no groups")
	}
	seen := make(map[int]bool)
	for g, members := range t.Groups {
		if len(members) < 2 {
			return fmt.Errorf("diba: group %d has %d member(s), need >= 2", g, len(members))
		}
		for _, id := range members {
			if seen[id] {
				return fmt.Errorf("diba: node %d appears in two groups", id)
			}
			seen[id] = true
		}
	}
	if t.BudgetW <= t.IdleW*float64(len(seen)) {
		return fmt.Errorf("diba: budget %.1f W cannot cover %d nodes' idle power", t.BudgetW, len(seen))
	}
	return nil
}

// GroupOf returns the group index holding id, or -1.
func (t HierTopo) GroupOf(id int) int {
	for g, members := range t.Groups {
		for _, m := range members {
			if m == id {
				return g
			}
		}
	}
	return -1
}

// groupMembers returns group g's members in ascending id order — the rank
// order of the aggregate election.
func (t HierTopo) groupMembers(g int) []int {
	ms := append([]int(nil), t.Groups[g]...)
	sort.Ints(ms)
	return ms
}

// LeafNeighbors returns id's ring neighbors within its own group.
func (t HierTopo) LeafNeighbors(id int) []int {
	g := t.GroupOf(id)
	if g < 0 {
		return nil
	}
	ms := t.groupMembers(g)
	idx := sort.SearchInts(ms, id)
	set := map[int]bool{
		ms[(idx+1)%len(ms)]:         true,
		ms[(idx-1+len(ms))%len(ms)]: true,
	}
	delete(set, id)
	out := make([]int, 0, len(set))
	for nb := range set {
		out = append(out, nb)
	}
	sort.Ints(out)
	return out
}

// AdjacentGroups returns the upper-ring neighbors of group g (its
// predecessor and successor in index order, deduplicated).
func (t HierTopo) AdjacentGroups(g int) []int {
	n := len(t.Groups)
	if n <= 1 {
		return nil
	}
	set := map[int]bool{(g + 1) % n: true, (g - 1 + n) % n: true}
	delete(set, g)
	out := make([]int, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// UpperPeers returns every member of every group adjacent to id's group —
// the nodes id must be able to reach so that hierarchical control messages
// find whoever is currently acting as those groups' aggregate.
func (t HierTopo) UpperPeers(id int) []int {
	g := t.GroupOf(id)
	if g < 0 {
		return nil
	}
	var out []int
	for _, ag := range t.AdjacentGroups(g) {
		out = append(out, t.groupMembers(ag)...)
	}
	sort.Ints(out)
	return out
}

// GenesisMw returns the groups' genesis lease shares in milliwatts,
// proportional to group size and summing to LeaseMilliwatts(BudgetW)
// exactly (lease.go).
func (t HierTopo) GenesisMw() ([]int64, error) {
	sizes := make([]int, len(t.Groups))
	for g, members := range t.Groups {
		sizes[g] = len(members)
	}
	return GenesisLeases(LeaseMilliwatts(t.BudgetW), sizes)
}

// HierPolicy tunes the lease protocol. All round counts are in rounds of
// each member's own leaf counter.
type HierPolicy struct {
	// LeaseTTL is how many rounds a lease view stays valid with no newer
	// flood accepted before the member freezes.
	LeaseTTL int
	// RenewEvery is how often a confirmed aggregate re-floods the lease.
	RenewEvery int
	// ExchangeEvery is how often a confirmed aggregate sends AggHello to
	// its adjacent groups (candidates send every round until synced).
	ExchangeEvery int
	// FreezeMarginW is subtracted from the last leased budget when a
	// member freezes — the degraded-mode safety margin.
	FreezeMarginW float64
	// MaxLeaseStepW caps a single donation.
	MaxLeaseStepW float64
	// TransferThresholdW is the minimum slack gap (donor minus asker, in
	// watts) before any donation happens — hysteresis against churn.
	TransferThresholdW float64
	// FloorMarginW keeps a donor's lease at least this far above its
	// group's total idle power.
	FloorMarginW float64
	// DemoteAfter is how many rounds a member tolerates without an
	// accepted renewal before it marks the acting aggregate gray — alive
	// but too slow to lead — and elects around it. This is the proactive
	// gray-failure failover: it fires well before the LeaseTTL freeze, so
	// a group led by a crawling aggregate gets a healthy leader instead of
	// degraded mode. 0 selects 2/3 of LeaseTTL; negative disables gray
	// demotion (renewal starvation then runs straight to the freeze).
	DemoteAfter int
	// GrayHold is how many rounds a gray verdict lasts: members exclude a
	// gray-marked peer from election for this long, and a gray-deposed
	// aggregate stands down for this long before it may lead again (if it
	// is still slow it is simply re-deposed one DemoteAfter later). 0
	// selects 2× LeaseTTL.
	GrayHold int
}

func (p HierPolicy) withDefaults() HierPolicy {
	if p.LeaseTTL <= 0 {
		p.LeaseTTL = 12
	}
	if p.RenewEvery <= 0 {
		p.RenewEvery = 4
	}
	if p.ExchangeEvery <= 0 {
		p.ExchangeEvery = 4
	}
	if p.FreezeMarginW <= 0 {
		p.FreezeMarginW = emergencyShedMarginW
	}
	if p.MaxLeaseStepW <= 0 {
		p.MaxLeaseStepW = 50
	}
	if p.TransferThresholdW <= 0 {
		p.TransferThresholdW = 5
	}
	if p.FloorMarginW <= 0 {
		p.FloorMarginW = 1
	}
	if p.DemoteAfter == 0 {
		p.DemoteAfter = 2 * p.LeaseTTL / 3
	}
	if p.GrayHold <= 0 {
		p.GrayHold = 2 * p.LeaseTTL
	}
	return p
}

// leaseTransfer computes the donation (milliwatts) a donor group makes to
// an asker whose slack lags the donor's by gap watts: a quarter of the gap
// per exchange (geometric approach, no oscillation), capped by the policy
// step and by the donor's floor. Zero when the gap is under the threshold.
func leaseTransfer(donorSlackW, askerSlackW float64, donorLeaseMw, donorFloorMw int64, pol HierPolicy) int64 {
	gap := donorSlackW - askerSlackW
	if gap <= pol.TransferThresholdW {
		return 0
	}
	step := gap / 4
	if step > pol.MaxLeaseStepW {
		step = pol.MaxLeaseStepW
	}
	t := LeaseMilliwatts(step)
	if room := donorLeaseMw - donorFloorMw; t > room {
		t = room
	}
	if t < 0 {
		t = 0
	}
	return t
}

// HierAgent wraps one leaf Agent with the hierarchical lease protocol. It
// is driven like an Agent — one Step per BSP round — and is not safe for
// concurrent use.
type HierAgent struct {
	ag  *Agent
	pol HierPolicy

	group     int
	rank      int
	members   []int // own group, ascending id = rank order
	adjGroups []int
	upperPeer map[int][]int // adjacent group -> its members
	genesisMw int64
	idleW     float64

	// Lease view (every member).
	leaseMw   int64
	epoch     int
	renewSeq  int
	lastRenew int
	frozen    bool
	// Lifetime counters, published for the control plane's /metrics.
	renewCount  int
	demoteCount int

	// Gray-failure demotion state. grayUntil marks members excluded from
	// election (id → round the verdict expires); deposedUntil is this
	// member's own standdown after being gray-deposed; leaderSince is the
	// round the presumed leader's identity last changed (a fresh successor
	// gets a full DemoteAfter window before it, too, can be suspected);
	// deposed/deposedCarry make the successor's lease floods carry the
	// verdict (Act = victim+1) so the whole group — the victim included —
	// learns of the deposition.
	grayUntil    map[int]int
	deposedUntil int
	leaderSince  int
	lastLeader   int
	deposed      int
	deposedCarry int

	// Aggregate state (nil/false on plain members).
	aggActive  bool
	aggSynced  bool
	ledger     *LeaseLedger
	peerEpochs map[int]int

	round        int
	lastExchange int
	inbox        []Message

	// pub, when set, receives an immutable StateSnapshot after every Step
	// (publish.go). Nil means no publication.
	pub *StatePub
}

// NewHierAgent builds the hierarchical agent for node id. The underlying
// leaf Agent runs the group's ring with the group's genesis lease as its
// budget; install a FaultPolicy (FaultPolicy method) to enable failover.
func NewHierAgent(topo HierTopo, pol HierPolicy, id int, u workload.Utility, cfg Config, tr Transport) (*HierAgent, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	g := topo.GroupOf(id)
	if g < 0 {
		return nil, fmt.Errorf("diba: node %d is in no group", id)
	}
	genesis, err := topo.GenesisMw()
	if err != nil {
		return nil, err
	}
	members := topo.groupMembers(g)
	rank := sort.SearchInts(members, id)
	ag, err := NewAgent(id, topo.LeafNeighbors(id), u, LeaseWatts(genesis[g]),
		len(members), topo.IdleW*float64(len(members)), cfg, tr)
	if err != nil {
		return nil, err
	}
	h := &HierAgent{
		ag:         ag,
		pol:        pol.withDefaults(),
		group:      g,
		rank:       rank,
		members:    members,
		adjGroups:  topo.AdjacentGroups(g),
		upperPeer:  make(map[int][]int),
		genesisMw:  genesis[g],
		idleW:      topo.IdleW,
		leaseMw:    genesis[g],
		epoch:      1,
		peerEpochs: make(map[int]int),
		grayUntil:  make(map[int]int),
		lastLeader: -1,
	}
	for _, a := range h.adjGroups {
		h.upperPeer[a] = topo.groupMembers(a)
	}
	if rank == 0 {
		// The initial aggregate's ledger is synced by construction: at
		// round zero no transfer can have happened, so the zero counters
		// are exact.
		h.aggActive, h.aggSynced = true, true
		h.ledger = NewLeaseLedger(h.genesisMw, h.adjGroups, true)
	}
	ag.SetHierSink(func(m Message) { h.inbox = append(h.inbox, m) })
	return h, nil
}

// Agent returns the underlying leaf agent.
func (h *HierAgent) Agent() *Agent { return h.ag }

// FaultPolicy installs fp on the leaf agent. Failover requires it: without
// failure detection an aggregate death is never observed.
func (h *HierAgent) FaultPolicy(fp FaultPolicy) { h.ag.SetFaultPolicy(fp) }

// Lease returns the member's current lease view in milliwatts.
func (h *HierAgent) Lease() int64 { return h.leaseMw }

// Epoch returns the highest aggregate epoch this member has accepted.
func (h *HierAgent) Epoch() int { return h.epoch }

// Frozen reports whether the member is in lease-expired degraded mode.
func (h *HierAgent) Frozen() bool { return h.frozen }

// IsAggregate reports whether this member currently acts as its group's
// aggregate (confirmed or candidate).
func (h *HierAgent) IsAggregate() bool { return h.aggActive }

// Confirmed reports whether an acting aggregate's ledger is synced — it
// renews leases and may donate.
func (h *HierAgent) Confirmed() bool { return h.aggActive && h.aggSynced }

// Group returns the member's group index; Rank its election rank.
func (h *HierAgent) Group() int { return h.group }
func (h *HierAgent) Rank() int  { return h.rank }

// Gray returns the member ids this agent currently holds under a gray
// (too-slow-to-lead) verdict, sorted.
func (h *HierAgent) Gray() []int {
	out := make([]int, 0, len(h.grayUntil))
	for m, until := range h.grayUntil {
		if until > h.round {
			out = append(out, m)
		}
	}
	sort.Ints(out)
	return out
}

// Deposed reports whether this member is standing down after being
// gray-deposed as aggregate.
func (h *HierAgent) Deposed() bool { return h.round < h.deposedUntil }

// Round returns how many rounds this member has completed.
func (h *HierAgent) Round() int { return h.round }

// Step runs one leaf BSP round, then the hierarchical control work queued
// during it: lease floods, ledger exchanges, role changes, renewals, TTL
// expiry. Control messages never touch the in-round arithmetic — they are
// buffered by the gather sink and processed only here, between rounds.
func (h *HierAgent) Step() error {
	if err := h.ag.StepOnce(); err != nil {
		return err
	}
	h.round++
	h.afterRound()
	h.publishRound()
	return nil
}

func (h *HierAgent) id() int { return h.ag.ID }

func (h *HierAgent) send(to int, m Message) { _ = h.ag.tr.Send(to, m) }

func (h *HierAgent) afterRound() {
	msgs := h.inbox
	h.inbox = h.inbox[:0]
	for _, m := range msgs {
		switch m.Kind {
		case MsgLease:
			h.handleLease(m)
		case MsgLeaseAck:
			h.handleLeaseAck(m)
		case MsgAggHello:
			h.handleAggHello(m)
		}
	}
	h.checkGrayLeader()
	h.updateRole()
	if h.aggActive && h.aggSynced {
		if h.round-h.lastRenew >= h.pol.RenewEvery {
			h.renewLease()
		}
	} else if !h.frozen && h.round-h.lastRenew > h.pol.LeaseTTL {
		h.freeze()
	}
	if h.aggActive && (!h.aggSynced || h.round-h.lastExchange >= h.pol.ExchangeEvery) {
		h.sendHellos()
	}
}

// electLeader runs the deterministic election: the lowest-id member not in
// the local dead set and (unless that empties the field) not under a gray
// verdict — our own standdown counts as our gray mark. The all-gray
// fallback keeps a pathological group led rather than leaderless.
func (h *HierAgent) electLeader() int {
	dead := make(map[int]bool)
	for _, d := range h.ag.DeadNodes() {
		dead[d] = true
	}
	fallback := -1
	for _, m := range h.members {
		if dead[m] {
			continue
		}
		if fallback < 0 {
			fallback = m
		}
		if h.grayUntil[m] > h.round {
			continue
		}
		if m == h.id() && h.round < h.deposedUntil {
			continue
		}
		return m
	}
	return fallback
}

// checkGrayLeader is the renewal-starvation detector: a member that has
// accepted no lease renewal for DemoteAfter rounds — despite a leader that
// has held the role at least that long — marks that leader gray and lets
// the election route around it. The aggregate role moves to a healthy
// member *before* the LeaseTTL freeze, so a group led by a crawling
// aggregate never waits frozen on its gray leader.
func (h *HierAgent) checkGrayLeader() {
	for m, until := range h.grayUntil {
		if until <= h.round {
			delete(h.grayUntil, m)
		}
	}
	if h.pol.DemoteAfter < 0 || h.aggActive || h.frozen {
		return
	}
	leader := h.electLeader()
	if leader != h.lastLeader {
		h.lastLeader = leader
		h.leaderSince = h.round
	}
	if leader < 0 || leader == h.id() {
		return
	}
	since := h.lastRenew
	if h.leaderSince > since {
		since = h.leaderSince
	}
	if h.round-since <= h.pol.DemoteAfter {
		return
	}
	h.grayUntil[leader] = h.round + h.pol.GrayHold
	// Restart the patience clock: the successor gets a full window to
	// promote, sync its ledger and renew before it can be suspected too.
	h.lastRenew = h.round
}

// updateRole applies the election result. Every survivor evaluates the
// same rule, so after the death epidemic (and the gray-verdict floods)
// converge they agree without voting; epoch fencing covers the window
// where they do not.
func (h *HierAgent) updateRole() {
	leader := h.electLeader()
	if leader != h.lastLeader {
		h.lastLeader = leader
		h.leaderSince = h.round
	}
	switch {
	case leader == h.id() && !h.aggActive:
		h.promote()
	case leader != h.id() && h.aggActive:
		h.demote()
	}
}

// promote makes this member a candidate aggregate: fresh epoch, fresh
// (unsynced) ledger. It starts helloing the upper ring immediately but
// neither renews nor donates until the ledger syncs.
func (h *HierAgent) promote() {
	h.epoch++
	h.renewSeq = 0
	h.aggActive = true
	h.aggSynced = false
	h.ledger = NewLeaseLedger(h.genesisMw, h.adjGroups, false)
	// A gray promotion: if a lower-ranked live member is under a gray
	// verdict, we are succeeding a deposed (not dead) aggregate. Carry the
	// verdict in our lease floods for one hold window so the whole group —
	// the victim included — learns of the deposition.
	h.deposed, h.deposedCarry = 0, 0
	for _, m := range h.members {
		if m >= h.id() {
			break
		}
		if h.grayUntil[m] > h.round {
			h.deposed = m + 1
			h.deposedCarry = h.round + h.pol.GrayHold
			break
		}
	}
}

// demote strips aggregate state: a higher epoch exists (or a lower-ranked
// member rejoined), so this member reverts to following lease floods.
func (h *HierAgent) demote() {
	if h.aggActive {
		h.demoteCount++
	}
	h.aggActive, h.aggSynced = false, false
	h.ledger = nil
}

// maybeConfirm promotes a candidate to confirmed aggregate once its ledger
// has synced every upper-ring edge, adopting the ledger's exact lease and
// flooding it (which also unfreezes any member that froze while the group
// was orphaned).
func (h *HierAgent) maybeConfirm() {
	if h.aggActive && !h.aggSynced && h.ledger.Synced() {
		h.aggSynced = true
		h.adoptLease(h.ledger.Lease())
	}
}

// syncLease re-derives the lease from the ledger after a merge and adopts
// any change (e.g. a donation received via a peer's hello or ack).
func (h *HierAgent) syncLease() {
	if h.aggActive && h.aggSynced && h.ledger.Lease() != h.leaseMw {
		h.adoptLease(h.ledger.Lease())
	}
}

// applyView moves this member's lease view to newMw: the budget base is
// recomputed from the integer lease (bitwise identical across members) and
// a frozen member returns its freeze-margin share to its estimate. The
// estimate shift for the lease delta itself is the aggregate's to absorb
// (adoptLease), not the member's.
func (h *HierAgent) applyView(newMw int64) {
	wasFrozen := h.frozen
	if newMw == h.leaseMw && !wasFrozen {
		return
	}
	h.frozen = false
	h.leaseMw = newMw
	h.ag.setBudgetBase(LeaseWatts(newMw))
	if wasFrozen {
		h.ag.nudgeEstimate(-h.pol.FreezeMarginW / float64(len(h.members)))
	}
}

// adoptLease is the aggregate-side lease change: apply the new view,
// absorb the full estimate delta locally (budget up, surplus up), bump the
// renewal sequence and flood the group.
func (h *HierAgent) adoptLease(newMw int64) {
	old := h.leaseMw
	h.applyView(newMw)
	if delta := LeaseWatts(newMw) - LeaseWatts(old); delta != 0 {
		h.ag.nudgeEstimate(-delta)
	}
	h.renewLease()
}

// renewLease floods the current lease under a fresh sequence number and
// refreshes the aggregate's own TTL clock.
func (h *HierAgent) renewLease() {
	h.renewSeq++
	h.lastRenew = h.round
	h.renewCount++
	h.floodLease()
}

// floodLease starts (or relays) the intra-group lease epidemic over the
// leaf links. Receivers accept only lexicographically newer (epoch, seq),
// so the relay terminates.
func (h *HierAgent) floodLease() {
	out := Message{From: h.id(), Kind: MsgLease, Group: h.group,
		Epoch: h.epoch, Seq: h.renewSeq, Lease: h.leaseMw, Round: h.round}
	if h.deposed > 0 && h.round < h.deposedCarry {
		out.Act = h.deposed // gray-deposition verdict: victim id + 1
	}
	for _, nb := range h.ag.Neighbors {
		h.send(nb, out)
	}
}

// slackW estimates the group's total surplus headroom in watts from the
// local estimate (estimates equalize within the group, so e·m tracks Σe;
// negative e is slack).
func (h *HierAgent) slackW() float64 {
	return -h.ag.Estimate() * float64(len(h.members))
}

// floorMw is the lease floor a donor must keep: the group's idle power
// plus the policy margin.
func (h *HierAgent) floorMw() int64 {
	return LeaseMilliwatts(h.idleW*float64(len(h.members)) + h.pol.FloorMarginW)
}

// sendHellos sends this aggregate's per-edge ledger state and demand to
// every member of each adjacent group — every member, because which of
// them currently acts as aggregate is unknowable here; non-aggregates
// drop the frame after noting the epoch.
func (h *HierAgent) sendHellos() {
	h.lastExchange = h.round
	slack := h.slackW()
	for _, g := range h.adjGroups {
		out := Message{From: h.id(), Kind: MsgAggHello, Group: h.group,
			Epoch: h.epoch, E: slack, Cum: h.ledger.Given(g),
			Lease: h.ledger.Taken(g), Round: h.round}
		for _, peer := range h.upperPeer[g] {
			h.send(peer, out)
		}
	}
}

// handleLease processes one intra-group lease flood.
func (h *HierAgent) handleLease(m Message) {
	if m.Group != h.group {
		return
	}
	if m.Epoch < h.epoch || (m.Epoch == h.epoch && m.Seq <= h.renewSeq) {
		return // stale or already seen
	}
	if h.aggActive && m.Epoch > h.epoch {
		// A successor with a fresher epoch exists: we were deposed (false
		// suspicion, healed partition) — follow it.
		h.demote()
	}
	if m.Act > 0 {
		// The flood carries a gray-deposition verdict. The victim stands
		// down instead of re-promoting itself (it is, after all, the
		// lowest-id live member); everyone else adopts the gray mark so
		// the election stays consistent group-wide.
		if victim := m.Act - 1; victim == h.id() {
			h.deposedUntil = h.round + h.pol.GrayHold
		} else if h.grayUntil[victim] <= h.round {
			h.grayUntil[victim] = h.round + h.pol.GrayHold
		}
	}
	h.epoch, h.renewSeq = m.Epoch, m.Seq
	h.lastRenew = h.round
	h.applyView(m.Lease)
	// Relay the epidemic (receivers drop anything not strictly newer).
	for _, nb := range h.ag.Neighbors {
		if nb != m.From {
			h.send(nb, m)
		}
	}
}

// handleAggHello processes an adjacent group's ledger exchange: merge the
// edge counters, reconcile the lease, decide a donation (donor-first: the
// cut is committed and flooded before the ack leaves, so a lost ack
// strands power rather than minting it), and ack with post-commit state.
func (h *HierAgent) handleAggHello(m Message) {
	g := m.Group
	if g == h.group {
		return
	}
	if m.Epoch > h.peerEpochs[g] {
		h.peerEpochs[g] = m.Epoch
	}
	if !h.aggActive {
		return
	}
	if _, adjacent := h.upperPeer[g]; !adjacent {
		return
	}
	h.ledger.Merge(g, m.Cum, m.Lease)
	h.maybeConfirm()
	h.syncLease()
	if h.aggSynced && !h.frozen {
		t := leaseTransfer(h.slackW(), m.E, h.ledger.Lease(), h.floorMw(), h.pol)
		if t > 0 {
			h.ledger.Donate(g, t)
			h.adoptLease(h.ledger.Lease())
		}
	}
	h.send(m.From, Message{From: h.id(), Kind: MsgLeaseAck, Group: h.group,
		Epoch: h.epoch, E: h.slackW(), Cum: h.ledger.Given(g),
		Lease: h.ledger.Taken(g), Act: h.peerEpochs[g], Round: h.round})
}

// handleLeaseAck processes the reply to our hello: fencing first (the ack
// echoes the highest epoch the peer has seen for OUR group — higher than
// ours means we are deposed), then the same merge/reconcile as a hello.
func (h *HierAgent) handleLeaseAck(m Message) {
	g := m.Group
	if g == h.group {
		return
	}
	if m.Epoch > h.peerEpochs[g] {
		h.peerEpochs[g] = m.Epoch
	}
	if m.Act > h.epoch {
		h.demote()
		return
	}
	if !h.aggActive {
		return
	}
	if _, adjacent := h.upperPeer[g]; !adjacent {
		return
	}
	h.ledger.Merge(g, m.Cum, m.Lease)
	h.maybeConfirm()
	h.syncLease()
}

// freeze enters lease-expired degraded mode: the member rebases to the
// last leased budget minus the freeze margin and absorbs its 1/m share of
// the margin into its estimate (shedding immediately if that flips the
// estimate non-negative). Freezing is local and uncoordinated — it is what
// a member does precisely when nobody can tell it anything.
func (h *HierAgent) freeze() {
	h.frozen = true
	h.ag.setBudgetBase(LeaseWatts(h.leaseMw) - h.pol.FreezeMarginW)
	h.ag.nudgeEstimate(h.pol.FreezeMarginW / float64(len(h.members)))
}
