package diba

import (
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"powercap/internal/topology"
)

// TestGraySimDeterministicAndTolerant pins the virtual-slot model's two
// claims in-process: the run is a pure function of its config (two runs
// are identical field for field), and at a 10×-slowed node the tolerant
// gather has at least 5x fewer stalled node-rounds than the fixed-deadline
// baseline while settling every substitution exactly.
func TestGraySimDeterministicAndTolerant(t *testing.T) {
	us := mkCluster(t, 16, 7)
	base := GraySimConfig{
		N: 16, Slow: 5, Sigma: 10, Rounds: 300,
		BudgetW: 170 * 16, Util: us,
	}
	runOnce := func(tolerant bool) GraySimResult {
		cfg := base
		cfg.Tolerant = tolerant
		res, err := RunGraySim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := runOnce(true), runOnce(true); !reflect.DeepEqual(a, b) {
		t.Fatalf("graysim is not deterministic:\n%+v\n%+v", a, b)
	}
	fixed, tol := runOnce(false), runOnce(true)
	if fixed.StalledRounds == 0 {
		t.Fatal("fixed-deadline baseline never stalled at sigma=10; the scenario is vacuous")
	}
	if 5*tol.StalledRounds > fixed.StalledRounds {
		t.Fatalf("tolerant stalled %d node-rounds vs fixed %d, want >= 5x fewer",
			tol.StalledRounds, fixed.StalledRounds)
	}
	for _, r := range []GraySimResult{fixed, tol} {
		if r.Outstanding != 0 {
			t.Fatalf("%d stale records never settled", r.Outstanding)
		}
		if r.MaxAbsGap > 1e-9 {
			t.Fatalf("conservation gap %v exceeds 1e-9", r.MaxAbsGap)
		}
		if r.SlowDeclaredDead {
			t.Fatal("the alive slow node was declared dead")
		}
	}
	if tol.Substituted+tol.SoftExcluded == 0 {
		t.Fatal("tolerant run never mitigated; the slow node was not exercised")
	}
}

// runGraySoak deploys a real-agent ring under a combined gray-failure plan
// — one degraded node (flapping off after its On window), a mid-run link
// partition, optionally permanent message loss — with straggler-tolerant
// rounds on, and returns the live agents for post-run assertions.
func runGraySoak(t *testing.T, n, rounds, slow int, drop float64) []*Agent {
	t.Helper()
	g := topology.Ring(n)
	us := mkCluster(t, n, 47)
	budget := 170.0 * float64(n)
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	// The slowness ends after its On window and the partition heals
	// mid-run, so the tail of the run is healthy: every outstanding stale
	// record meets its true frame and settles before the agents stop.
	plan := &FaultPlan{
		Seed:     91,
		DropProb: drop,
		SlowNodes: map[int]SlowSpec{slow: {
			Delay:  12 * time.Millisecond,
			Jitter: 2 * time.Millisecond,
			Period: 10 * time.Minute,
			On:     400 * time.Millisecond,
		}},
		Partitions: []Partition{{A: 1, B: 2, Start: 80 * time.Millisecond, Dur: 200 * time.Millisecond}},
	}
	fp := FaultPolicy{
		GatherTimeout:     2 * time.Second,
		Recover:           true,
		StragglerTolerant: true,
		DeadlineMin:       time.Millisecond,
		DeadlineMax:       4 * time.Millisecond,
		MaxLag:            6,
	}
	net := NewChanNetwork(n, 4096)
	agents := make([]*Agent, n)
	for i := 0; i < n; i++ {
		a, err := NewAgent(i, g.NeighborsInts(i), us[i], budget, n, totalIdle, Config{},
			NewFaultTransport(net.Endpoint(i), i, plan))
		if err != nil {
			t.Fatal(err)
		}
		a.SetFaultPolicy(fp)
		agents[i] = a
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range agents {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = agents[i].Run(rounds)
		}(i)
	}
	wg.Wait()
	plan.Quiesce()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	return agents
}

// TestGraySoakExactReconciliation is the no-loss soak: slow node plus a
// partition window, straggler-tolerant rounds. The slow node must never be
// declared dead, every budget view must stay at the full cluster budget,
// every stale record must settle once the faults lift, and the cluster-wide
// conservation identity must close exactly.
func TestGraySoakExactReconciliation(t *testing.T) {
	checkGoroutineLeak(t)
	const n, rounds, slow = 10, 400, 5
	agents := runGraySoak(t, n, rounds, slow, 0)

	budget := 170.0 * float64(n)
	var sumE, sumP float64
	mitigated := 0
	for i, a := range agents {
		if d := a.DeadNodes(); len(d) != 0 {
			t.Fatalf("agent %d declared %v dead; every node was alive (slow != dead)", i, d)
		}
		if a.Budget() != budget {
			t.Fatalf("agent %d budget view %v != %v", i, a.Budget(), budget)
		}
		if o := a.OutstandingStale(); o != 0 {
			t.Fatalf("agent %d still holds %d unsettled stale records after the healthy tail", i, o)
		}
		sumE += a.Estimate()
		sumP += a.Power()
		mitigated += a.StaleRounds()
	}
	if mitigated == 0 {
		t.Fatal("no round was ever mitigated; the soak did not exercise the straggler path")
	}
	if gap := math.Abs(sumE - (sumP - budget)); gap > 1e-6 {
		t.Fatalf("conservation violated after settle: Σe − (Σp − B) = %v", gap)
	}
}

// TestGraySoakWithLoss adds permanent message loss on top of the slow node
// and the partition. A dropped true frame can leave its stale record
// unsettled forever, so conservation is only bounded, not exact — but the
// cluster must still terminate (no deadlock), never declare the slow node
// dead, and keep every budget view at the full budget.
func TestGraySoakWithLoss(t *testing.T) {
	checkGoroutineLeak(t)
	const n, rounds, slow = 10, 400, 5
	agents := runGraySoak(t, n, rounds, slow, 0.01)

	budget := 170.0 * float64(n)
	var sumE, sumP float64
	for i, a := range agents {
		if d := a.DeadNodes(); len(d) != 0 {
			t.Fatalf("agent %d declared %v dead under 1%% loss with mitigation on", i, d)
		}
		if a.Budget() != budget {
			t.Fatalf("agent %d budget view %v != %v", i, a.Budget(), budget)
		}
		sumE += a.Estimate()
		sumP += a.Power()
	}
	gap := math.Abs(sumE - (sumP - budget))
	if math.IsNaN(gap) || gap > 0.05*budget {
		t.Fatalf("conservation gap %v not bounded under loss (budget %v)", gap, budget)
	}
}
