package diba

import (
	"fmt"
	"math"
)

// wire.go is the versioned binary wire codec of the DiBA message plane.
//
// The dissertation's Table 4.2 argument is that one DiBA round costs one
// neighbor read plus one write regardless of cluster size; the prototype
// should not spend that budget on reflection-driven JSON. A Message frames
// as a fixed-layout, length-prefixed record with an omit-zero bitmap, so
// the common MsgEstimate round message is ~30 bytes where its JSON form is
// ~80:
//
//	offset  size  field
//	0       1     magic 0xD1 (identifies a binary v1 frame; JSON messages
//	              start with '{', so a reader can tell the codecs apart
//	              per frame on a mixed stream)
//	1       1     length of the rest of the frame (bitmap + fields)
//	2       2     field bitmap, little endian; bit i set = field i present
//	4       ...   present fields, in bit order, fixed width each:
//
//	bit  field   width  encoding
//	0    From    4      int32, little endian
//	1    Round   4      int32
//	2    E       8      IEEE-754 float64 bits, little endian
//	3    Degree  2      int16
//	4    Quiet   4      int32
//	5    Stop    4      int32
//	6    P       8      float64 bits
//	7    Kind    4      int32
//	8    Dead    4      int32
//	9    Act     4      int32
//	10   Group   4      int32           (v2)
//	11   Epoch   4      int32           (v2)
//	12   Lease   8      int64           (v2)
//	13   Cum     8      int64           (v2)
//	14   Seq     4      int32           (v2)
//	15   Echo    8      int64           (v3)
//
// A field whose value is zero is omitted from the frame and its bitmap bit
// is clear; Decode restores it as zero. E and P are compared by bit
// pattern, so a negative zero survives the round trip. The codec's integer
// domain is int32 for all counters and ids, int16 for Degree (a node's
// neighbor count), and int64 for the milliwatt lease ledger fields;
// EncodeTo truncates wider values by conversion, which the protocol never
// produces. Both functions are pure and safe for concurrent use; Decode
// allocates nothing.
//
// Versioning: the frame layout is versioned by its bitmap, under the same
// 0xD1 magic. Bits 0–9 are the v1 field set; bits 10–14 (the hierarchical
// control-plane payload) are v2; bit 15 (the RTT echo timestamp) is v3.
// An older decoder rejects any frame carrying a bitmap bit it does not
// know, so a sender may write newer bits only on a link whose peer
// negotiated that wire version in the TCP hello (tcp.go); on a link
// negotiated lower, messages that carry newer fields fall back to JSON
// for that message (readers detect the codec per frame), and every other
// message stays on the shared field set.

const (
	// wireMagic tags a binary frame. It must never collide with the
	// first byte of a JSON message ('{') or of anything json.Encoder emits.
	wireMagic = 0xD1
	// WireVersion is the highest binary codec version this build speaks,
	// offered and accepted in the TCP hello exchange.
	WireVersion = 3
	// wireV1Bits is how many bitmap bits the v1 field set defined; frames
	// restricted to those bits are decodable by every binary-capable build.
	wireV1Bits = 10
	// maxWireFrame is the largest possible frame: header (2) + bitmap (2) +
	// every v1 field present (46) + every v2 field present (28) + the v3
	// echo (8).
	maxWireFrame = 86
)

// wireWidths holds the encoded width of each bitmap field, in bit order.
var wireWidths = [16]int{4, 4, 8, 2, 4, 4, 8, 4, 4, 4, 4, 4, 8, 8, 4, 8}

// wireNeedsV2 reports whether m carries any field outside the v1 set, in
// which case its binary frame is decodable only by wire >= 2 peers.
func wireNeedsV2(m Message) bool {
	return m.Group != 0 || m.Epoch != 0 || m.Lease != 0 || m.Cum != 0 || m.Seq != 0
}

// wireNeedsV3 reports whether m carries the v3 echo field, in which case
// its binary frame is decodable only by wire >= 3 peers.
func wireNeedsV3(m Message) bool {
	return m.Echo != 0
}

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func getU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

// wireCanon maps m onto the codec's integer domain (int32 counters, int16
// degree) by truncating conversion — the identity for every message the
// protocol produces. EncodeTo encodes the canonical values, so
// Decode(EncodeTo(m)) == wireCanon(m) holds for arbitrary field values.
func wireCanon(m Message) Message {
	m.From = int(int32(m.From))
	m.Round = int(int32(m.Round))
	m.Degree = int(int16(m.Degree))
	m.Quiet = int(int32(m.Quiet))
	m.Stop = int(int32(m.Stop))
	m.Kind = int(int32(m.Kind))
	m.Dead = int(int32(m.Dead))
	m.Act = int(int32(m.Act))
	m.Group = int(int32(m.Group))
	m.Epoch = int(int32(m.Epoch))
	m.Seq = int(int32(m.Seq))
	return m
}

// EncodeTo appends m's binary v1 frame to buf and returns the extended
// slice, in the append style of strconv: pass a reused buffer to encode
// without allocating. Safe for concurrent use.
func EncodeTo(buf []byte, m Message) []byte {
	start := len(buf)
	buf = append(buf, wireMagic, 0, 0, 0) // length and bitmap backfilled below
	var bm uint16
	if v := int32(m.From); v != 0 {
		bm |= 1 << 0
		buf = appendU32(buf, uint32(v))
	}
	if v := int32(m.Round); v != 0 {
		bm |= 1 << 1
		buf = appendU32(buf, uint32(v))
	}
	if bits := math.Float64bits(m.E); bits != 0 {
		bm |= 1 << 2
		buf = appendU64(buf, bits)
	}
	if v := int16(m.Degree); v != 0 {
		bm |= 1 << 3
		buf = appendU16(buf, uint16(v))
	}
	if v := int32(m.Quiet); v != 0 {
		bm |= 1 << 4
		buf = appendU32(buf, uint32(v))
	}
	if v := int32(m.Stop); v != 0 {
		bm |= 1 << 5
		buf = appendU32(buf, uint32(v))
	}
	if bits := math.Float64bits(m.P); bits != 0 {
		bm |= 1 << 6
		buf = appendU64(buf, bits)
	}
	if v := int32(m.Kind); v != 0 {
		bm |= 1 << 7
		buf = appendU32(buf, uint32(v))
	}
	if v := int32(m.Dead); v != 0 {
		bm |= 1 << 8
		buf = appendU32(buf, uint32(v))
	}
	if v := int32(m.Act); v != 0 {
		bm |= 1 << 9
		buf = appendU32(buf, uint32(v))
	}
	if v := int32(m.Group); v != 0 {
		bm |= 1 << 10
		buf = appendU32(buf, uint32(v))
	}
	if v := int32(m.Epoch); v != 0 {
		bm |= 1 << 11
		buf = appendU32(buf, uint32(v))
	}
	if m.Lease != 0 {
		bm |= 1 << 12
		buf = appendU64(buf, uint64(m.Lease))
	}
	if m.Cum != 0 {
		bm |= 1 << 13
		buf = appendU64(buf, uint64(m.Cum))
	}
	if v := int32(m.Seq); v != 0 {
		bm |= 1 << 14
		buf = appendU32(buf, uint32(v))
	}
	if m.Echo != 0 {
		bm |= 1 << 15
		buf = appendU64(buf, uint64(m.Echo))
	}
	buf[start+1] = byte(len(buf) - start - 2)
	buf[start+2] = byte(bm)
	buf[start+3] = byte(bm >> 8)
	return buf
}

// Decode parses one binary v1 frame from the start of b, returning the
// message and the number of bytes consumed. It allocates nothing and is
// safe for concurrent use. Errors are returned for a short buffer, a wrong
// magic byte, bitmap bits this version does not know, and a length byte
// inconsistent with the bitmap.
func Decode(b []byte) (Message, int, error) {
	var m Message
	if len(b) < 4 {
		return m, 0, fmt.Errorf("diba: wire frame truncated (%d bytes)", len(b))
	}
	if b[0] != wireMagic {
		return m, 0, fmt.Errorf("diba: not a binary wire frame (byte 0x%02x)", b[0])
	}
	total := int(b[1]) + 2
	if len(b) < total {
		return m, 0, fmt.Errorf("diba: wire frame truncated (%d of %d bytes)", len(b), total)
	}
	bm := getU16(b[2:])
	// All 16 bitmap bits are assigned as of v3, so there is no "newer
	// codec" bit pattern left to reject by mask; a frame whose bitmap
	// disagrees with its length (the only way a foreign frame can look)
	// fails the width check below instead.
	want := 4
	for i, w := range wireWidths {
		if bm&(1<<i) != 0 {
			want += w
		}
	}
	if total != want {
		return m, 0, fmt.Errorf("diba: wire frame length %d does not match bitmap %#x (want %d)", total, bm, want)
	}
	p := 4
	if bm&(1<<0) != 0 {
		m.From = int(int32(getU32(b[p:])))
		p += 4
	}
	if bm&(1<<1) != 0 {
		m.Round = int(int32(getU32(b[p:])))
		p += 4
	}
	if bm&(1<<2) != 0 {
		m.E = math.Float64frombits(getU64(b[p:]))
		p += 8
	}
	if bm&(1<<3) != 0 {
		m.Degree = int(int16(getU16(b[p:])))
		p += 2
	}
	if bm&(1<<4) != 0 {
		m.Quiet = int(int32(getU32(b[p:])))
		p += 4
	}
	if bm&(1<<5) != 0 {
		m.Stop = int(int32(getU32(b[p:])))
		p += 4
	}
	if bm&(1<<6) != 0 {
		m.P = math.Float64frombits(getU64(b[p:]))
		p += 8
	}
	if bm&(1<<7) != 0 {
		m.Kind = int(int32(getU32(b[p:])))
		p += 4
	}
	if bm&(1<<8) != 0 {
		m.Dead = int(int32(getU32(b[p:])))
		p += 4
	}
	if bm&(1<<9) != 0 {
		m.Act = int(int32(getU32(b[p:])))
		p += 4
	}
	if bm&(1<<10) != 0 {
		m.Group = int(int32(getU32(b[p:])))
		p += 4
	}
	if bm&(1<<11) != 0 {
		m.Epoch = int(int32(getU32(b[p:])))
		p += 4
	}
	if bm&(1<<12) != 0 {
		m.Lease = int64(getU64(b[p:]))
		p += 8
	}
	if bm&(1<<13) != 0 {
		m.Cum = int64(getU64(b[p:]))
		p += 8
	}
	if bm&(1<<14) != 0 {
		m.Seq = int(int32(getU32(b[p:])))
		p += 4
	}
	if bm&(1<<15) != 0 {
		m.Echo = int64(getU64(b[p:]))
	}
	return m, total, nil
}
