package diba

import (
	"bufio"
	"io"
	"net"
	"testing"
	"time"
)

// wirePair builds two connected transports (0 dials 1) with per-side
// options and closes them on cleanup.
func wirePair(t *testing.T, optsA, optsB []TCPOption) (a, b *TCPTransport) {
	t.Helper()
	a, err := NewTCPTransport(0, "127.0.0.1:0", optsA...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err = NewTCPTransport(1, "127.0.0.1:0", optsB...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	addrs := map[int]string{0: a.Addr(), 1: b.Addr()}
	if err := a.ConnectNeighbors([]int{1}, addrs, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectNeighbors([]int{0}, addrs, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// connWire returns the negotiated write codec version of tr's connection to
// peer (0 = JSON).
func connWire(t *testing.T, tr *TCPTransport, peer int) int {
	t.Helper()
	tr.mu.Lock()
	conn, ok := tr.conns[peer]
	tr.mu.Unlock()
	if !ok {
		t.Fatalf("transport %d has no connection to %d", tr.id, peer)
	}
	return int(conn.wire.Load())
}

// connBinary reports whether tr's connection to peer currently writes the
// binary codec.
func connBinary(t *testing.T, tr *TCPTransport, peer int) bool {
	t.Helper()
	return connWire(t, tr, peer) >= 1
}

// exchange round-trips one estimate message in each direction, which also
// guarantees the dialer has processed any hello-ack (the ack precedes the
// acceptor's first message on the wire).
func exchange(t *testing.T, a, b *TCPTransport) {
	t.Helper()
	est := Message{From: 0, Round: 1, E: -1.5, Degree: 2}
	if err := a.Send(1, est); err != nil {
		t.Fatal(err)
	}
	if m, err := b.RecvTimeout(5 * time.Second); err != nil || m.Round != 1 {
		t.Fatalf("b recv: %v %+v", err, m)
	}
	est.From = 1
	if err := b.Send(0, est); err != nil {
		t.Fatal(err)
	}
	if m, err := a.RecvTimeout(5 * time.Second); err != nil || m.From != 1 {
		t.Fatalf("a recv: %v %+v", err, m)
	}
}

func TestTCPCodecNegotiation(t *testing.T) {
	// Binary frames flow on a link exactly when both endpoints are
	// binary-configured; any JSON endpoint holds the whole link on JSON,
	// which is also how a pre-wire peer is handled (it never advertises).
	jsonOpt := []TCPOption{WithWireCodec(WireJSON)}
	cases := []struct {
		name           string
		optsA, optsB   []TCPOption
		binaryExpected bool
	}{
		{"binary-binary", nil, nil, true},
		{"binary-json", nil, jsonOpt, false},
		{"json-binary", jsonOpt, nil, false},
		{"json-json", jsonOpt, jsonOpt, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkGoroutineLeak(t)
			a, b := wirePair(t, tc.optsA, tc.optsB)
			exchange(t, a, b)
			if got := connBinary(t, a, 1); got != tc.binaryExpected {
				t.Errorf("dialer writes binary = %v, want %v", got, tc.binaryExpected)
			}
			if got := connBinary(t, b, 0); got != tc.binaryExpected {
				t.Errorf("acceptor writes binary = %v, want %v", got, tc.binaryExpected)
			}
		})
	}
}

// TestTCPWireVersionNegotiationMatrix pins the version half of the
// negotiation: the link settles on the lower of the two endpoints' maximum
// wire versions, and a message carrying v2-only fields (the hierarchical
// lease plane) still round-trips intact on a v1 link — it falls back to
// JSON per message instead of silently truncating, so mixed-version
// clusters interoperate.
func TestTCPWireVersionNegotiationMatrix(t *testing.T) {
	v1 := []TCPOption{WithWireVersion(1)}
	v2 := []TCPOption{WithWireVersion(2)}
	cases := []struct {
		name         string
		optsA, optsB []TCPOption
		wantWire     int
	}{
		{"v3-v3", nil, nil, 3},
		{"v3-v2", nil, v2, 2},
		{"v2-v3", v2, nil, 2},
		{"v2-v1", v2, v1, 1},
		{"v1-v3", v1, nil, 1},
		{"v1-v1", v1, v1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkGoroutineLeak(t)
			a, b := wirePair(t, tc.optsA, tc.optsB)
			exchange(t, a, b)
			if got := connWire(t, a, 1); got != tc.wantWire {
				t.Errorf("dialer negotiated wire %d, want %d", got, tc.wantWire)
			}
			if got := connWire(t, b, 0); got != tc.wantWire {
				t.Errorf("acceptor negotiated wire %d, want %d", got, tc.wantWire)
			}
			lease := Message{From: 0, Kind: MsgLease, Group: 2, Epoch: 3, Seq: 9,
				Lease: 510_123, Cum: -42, Round: 5}
			if err := a.Send(1, lease); err != nil {
				t.Fatal(err)
			}
			got, err := b.RecvTimeout(5 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if got != lease {
				t.Errorf("lease message arrived as %+v, want %+v", got, lease)
			}
			// A message carrying the v3 echo field must round-trip intact on
			// every link too — binary on v3, JSON fallback below it.
			echoed := Message{From: 0, Round: 6, E: -0.25, Degree: 2, Echo: 987654321}
			if err := a.Send(1, echoed); err != nil {
				t.Fatal(err)
			}
			got, err = b.RecvTimeout(5 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if got != echoed {
				t.Errorf("echo-carrying message arrived as %+v, want %+v", got, echoed)
			}
		})
	}
}

// TestTCPShutdownDrainsCoalescedQueues is the transport half of the signal
// shutdown audit: Close must flush every message sitting in the coalescing
// send queues before tearing the connections down — a shutdown loses
// nothing a clean exit would deliver.
func TestTCPShutdownDrainsCoalescedQueues(t *testing.T) {
	checkGoroutineLeak(t)
	a, b := wirePair(t, nil, nil)
	exchange(t, a, b)
	const n = 300
	for i := 0; i < n; i++ {
		if err := a.Send(1, Message{From: 0, Round: i + 2, E: -1, Degree: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		m, err := b.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("message %d of %d lost in the shutdown drain: %v", i, n, err)
		}
		if m.Round != i+2 {
			t.Fatalf("message %d drained out of order: round %d, want %d", i, m.Round, i+2)
		}
	}
}

// FuzzTCPHello feeds arbitrary bytes through the acceptor's hello
// negotiation (JSON hello line, version clamp, ack write, registration) —
// the one TCP read path FuzzTCPPump does not reach. It must never panic,
// and must always come back to a closed connection.
func FuzzTCPHello(f *testing.F) {
	f.Add([]byte("{\"hello\":0,\"wire\":2}\n"))    // current version
	f.Add([]byte("{\"hello\":0,\"wire\":1}\n"))    // v1 peer
	f.Add([]byte("{\"hello\":0}\n"))               // pre-wire JSON peer
	f.Add([]byte("{\"hello\":0,\"wire\":99}\n"))   // future version, clamp down
	f.Add([]byte("{\"hello\":0,\"wire\":-3}\n"))   // nonsense version
	f.Add([]byte("{\"helloack\":1,\"wire\":1}\n")) // ack where a hello belongs
	f.Add([]byte("{\"hello\":0,\"wire\":2}"))      // truncated: no newline
	f.Add([]byte("complete garbage\n"))
	f.Add(append([]byte("{\"hello\":0,\"wire\":2}\n"), EncodeTo(nil, Message{From: 0, Round: 1, E: -1, Degree: 2})...))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := newPumpTestTransport(len(data) + 1)
		tr.opt.sendQueue = 0 // no per-iteration writer goroutine to leak
		client, server := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			client.SetDeadline(time.Now().Add(time.Second))
			client.Write(data)
			// Drain the ack (and anything else) so the acceptor's writes
			// cannot block on the unbuffered pipe, then EOF the connection.
			io.Copy(io.Discard, client)
			client.Close()
		}()
		tr.wg.Add(1) // handleIncoming is normally spawned by acceptLoop
		tr.handleIncoming(server)
		<-done
	})
}

func TestTCPWireStatsAccounting(t *testing.T) {
	checkGoroutineLeak(t)
	a, b := wirePair(t, nil, nil)
	exchange(t, a, b) // ensures the negotiated upgrade is complete
	base := a.WireStats()[1]

	const sends = 5
	est := Message{From: 0, Round: 7, E: -0.6666666666666666, Degree: 2}
	frameLen := uint64(len(EncodeTo(nil, est)))
	for i := 0; i < sends; i++ {
		if err := a.Send(1, est); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sends; i++ {
		if _, err := b.RecvTimeout(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	got := a.WireStats()[1]
	sent, bytes, flushes := got.MsgsSent-base.MsgsSent, got.BytesSent-base.BytesSent, got.Flushes-base.Flushes
	if sent != sends {
		t.Errorf("MsgsSent delta = %d, want %d", sent, sends)
	}
	if bytes != sends*frameLen {
		t.Errorf("BytesSent delta = %d, want %d (%d frames x %d B)", bytes, sends*frameLen, sends, frameLen)
	}
	if flushes == 0 || flushes > sends {
		t.Errorf("Flushes delta = %d, want 1..%d", flushes, sends)
	}
	recv := b.WireStats()[0]
	if recv.MsgsRecv < sends || recv.BytesRecv < sends*frameLen {
		t.Errorf("receiver counted %d msgs / %d B from peer 0, want at least %d / %d",
			recv.MsgsRecv, recv.BytesRecv, sends, sends*frameLen)
	}
	tot := a.WireTotals()
	if tot.MsgsSent != got.MsgsSent || tot.BytesSent != got.BytesSent {
		t.Errorf("WireTotals %+v does not sum WireStats %+v", tot, got)
	}
}

func TestTCPCoalescingPreservesOrder(t *testing.T) {
	checkGoroutineLeak(t)
	a, b := wirePair(t, nil, nil)
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(1, Message{From: 0, Round: i + 1, E: -1, Degree: 2}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m, err := b.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if m.Round != i+1 {
			t.Fatalf("message %d arrived with round %d: coalescing broke send order", i, m.Round)
		}
	}
	if st := a.WireStats()[1]; st.Flushes >= st.MsgsSent {
		t.Logf("note: no batching observed (%d msgs in %d flushes)", st.MsgsSent, st.Flushes)
	}
}

// newPumpTestTransport builds a bare transport (no listener, no loops) for
// exercising the connection-level read/write paths in isolation.
func newPumpTestTransport(inboxCap int) *TCPTransport {
	return &TCPTransport{
		id:           1,
		inbox:        make(chan Message, inboxCap),
		opt:          defaultTCPOptions(),
		conns:        make(map[int]*tcpConn),
		lastSent:     make(map[int]Message),
		haveSent:     make(map[int]bool),
		unflushed:    make(map[int][]Message),
		lastHeard:    make(map[int]time.Time),
		reconnecting: make(map[int]bool),
		stats:        make(map[int]*wireCounters),
		done:         make(chan struct{}),
	}
}

func newTestConn(c net.Conn, peer, queue int) *tcpConn {
	conn := &tcpConn{c: c, peer: peer, done: make(chan struct{}),
		drain: make(chan struct{}), flushed: make(chan struct{})}
	if queue > 0 {
		conn.queue = make(chan Message, queue)
	}
	return conn
}

// TestTCPPumpCorruptFrame is the regression test for the peer-controlled
// length byte: a corrupt binary frame on a live TCP connection must tear
// the connection down for reconnect, never panic the pump goroutine (which
// would kill the whole agent process).
func TestTCPPumpCorruptFrame(t *testing.T) {
	checkGoroutineLeak(t)
	cases := []struct {
		name    string
		payload []byte
	}{
		// Length byte 0xFF: 0xFF+2 overruns the fixed 50-byte frame buffer.
		{"oversized-length", []byte{wireMagic, 0xFF}},
		// Largest length byte that still fits the buffer, but the bitmap
		// declares unknown bits, so Decode rejects it.
		{"unknown-bitmap", append([]byte{wireMagic, 48, 0xFF, 0xFF}, make([]byte, 46)...)},
		// Length inconsistent with an otherwise-valid bitmap.
		{"length-mismatch", []byte{wireMagic, 10, 0x01, 0x00, 1, 2, 3, 4, 5, 6, 7, 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := NewTCPTransport(1, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			raw, err := net.Dial("tcp", tr.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer raw.Close()
			if _, err := raw.Write([]byte("{\"hello\":0}\n")); err != nil {
				t.Fatal(err)
			}
			if _, err := raw.Write(tc.payload); err != nil {
				t.Fatal(err)
			}
			// The transport must close the connection; our read unblocks
			// with EOF (or a reset) instead of hanging.
			raw.SetReadDeadline(time.Now().Add(5 * time.Second))
			buf := make([]byte, 64)
			for {
				if _, err := raw.Read(buf); err != nil {
					if ne, ok := err.(net.Error); ok && ne.Timeout() {
						t.Fatal("transport did not tear down the connection after a corrupt frame")
					}
					return
				}
			}
		})
	}
}

// FuzzTCPPump feeds arbitrary bytes through the transport's TCP read path
// (framing detection, header handling, decode, teardown) — not just Decode,
// which the wire fuzzer already covers. It must never panic.
func FuzzTCPPump(f *testing.F) {
	f.Add([]byte{wireMagic, 0xFF})                                         // the live-repro crash
	f.Add([]byte{wireMagic, 48, 0xFF, 0xFF})                               // unknown bitmap bits
	f.Add([]byte{wireMagic, 2, 0, 0})                                      // minimal valid frame
	f.Add(EncodeTo(nil, Message{From: 3, Round: 9, E: -1.5, Degree: 4}))   // valid estimate
	f.Add([]byte("{\"from\":2,\"round\":1,\"e\":0.5,\"deg\":2}\n"))        // valid JSON message
	f.Add([]byte("{\"helloack\":1,\"wire\":1}\n"))                         // hello-ack line
	f.Add([]byte("not json at all\n"))                                     // undecodable line
	f.Add(append(EncodeTo(nil, Message{From: 1, Round: 2}), wireMagic, 7)) // valid then truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := newPumpTestTransport(len(data) + 1)
		client, server := net.Pipe()
		conn := newTestConn(server, 0, 0)
		go func() {
			client.Write(data)
			client.Close()
		}()
		// pump exits on the first read/decode error (at the latest, EOF)
		// after tearing the connection down; any panic fails the fuzzer.
		tr.pump(0, bufio.NewReader(server), conn)
	})
}

// TestWriteLoopFailureSavesUnflushed covers the coalesced-flush loss
// window: when a batched write fails, every dequeued-but-unwritten message
// (except heartbeats) must land in the transport's unflushed buffer, and
// replayLast must re-send them in order on the next connection.
func TestWriteLoopFailureSavesUnflushed(t *testing.T) {
	tr := newPumpTestTransport(1)
	client, server := net.Pipe()
	client.Close() // every write on server now fails immediately
	defer server.Close()
	conn := newTestConn(server, 3, 8)
	msgs := []Message{
		{From: 1, Round: 1, E: 0.5, Degree: 2},
		{From: 1, Kind: MsgHeartbeat},
		{From: 1, Round: 2, E: 0.25, Degree: 2},
	}
	for _, m := range msgs {
		conn.queue <- m
	}
	tr.wg.Add(1)
	go tr.writeLoop(conn)
	select {
	case <-conn.flushed:
	case <-time.After(5 * time.Second):
		t.Fatal("writeLoop did not exit after a failed flush")
	}
	tr.mu.Lock()
	pend := append([]Message(nil), tr.unflushed[3]...)
	tr.mu.Unlock()
	if len(pend) != 2 || pend[0].Round != 1 || pend[1].Round != 2 {
		t.Fatalf("unflushed = %+v, want rounds [1 2] with the heartbeat dropped", pend)
	}

	// A fresh connection appears and replayLast runs: the saved batch must
	// be re-enqueued in order and the buffer cleared.
	good := newTestConn(nil, 3, 8)
	tr.mu.Lock()
	tr.conns[3] = good
	tr.mu.Unlock()
	tr.replayLast(3)
	for i, want := range []int{1, 2} {
		select {
		case m := <-good.queue:
			if m.Round != want {
				t.Fatalf("replayed message %d has round %d, want %d", i, m.Round, want)
			}
		default:
			t.Fatalf("replayed message %d missing from the new connection's queue", i)
		}
	}
	tr.mu.Lock()
	left := len(tr.unflushed[3])
	tr.mu.Unlock()
	if left != 0 {
		t.Fatalf("unflushed buffer not cleared after replay (%d left)", left)
	}
}

// TestSendToDeadConnectionErrors covers the enqueue/teardown race: once a
// connection's writer has been torn down, Send must report the loss even if
// the abandoned queue still has room.
func TestSendToDeadConnectionErrors(t *testing.T) {
	tr := newPumpTestTransport(1)
	client, server := net.Pipe()
	defer client.Close()
	conn := newTestConn(server, 2, 8)
	tr.mu.Lock()
	tr.conns[2] = conn
	tr.mu.Unlock()
	conn.shutdown()
	// Both select cases are ready; whichever the runtime picks, the send
	// must fail rather than silently parking the message on a dead queue.
	for i := 0; i < 50; i++ {
		if err := tr.Send(2, Message{From: 1, Round: i + 1}); err == nil {
			t.Fatalf("Send %d to a torn-down connection returned nil", i)
		}
	}
}

// measureLoopback pushes msgs estimate messages through a fresh pair and
// returns the measured throughput and average wire bytes per message.
func measureLoopback(t *testing.T, opts []TCPOption, msgs int) (msgsPerSec, bytesPerMsg float64) {
	t.Helper()
	a, b := wirePair(t, opts, opts)
	exchange(t, a, b)
	base := a.WireStats()[1]
	est := Message{From: 0, Round: 3, E: -0.6666666666666666, Degree: 2, P: 145.23456789012345}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < msgs; i++ {
			if _, err := b.RecvTimeout(10 * time.Second); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	start := time.Now()
	for i := 0; i < msgs; i++ {
		est.Round = i + 4
		if err := a.Send(1, est); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	st := a.WireStats()[1]
	sent := st.MsgsSent - base.MsgsSent
	return float64(sent) / elapsed.Seconds(), float64(st.BytesSent-base.BytesSent) / float64(sent)
}

// TestBinaryCoalescedBeatsJSONLoopback is the CI bench-smoke: the binary
// coalesced path must move strictly more messages per second than the
// JSON-per-write path and spend at least 2.5x fewer bytes per message.
// Throughput on a loaded CI runner is noisy, so the speed check takes the
// best of three attempts before failing.
func TestBinaryCoalescedBeatsJSONLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback throughput measurement")
	}
	const msgs = 2000
	jsonOpts := []TCPOption{WithWireCodec(WireJSON), WithSendQueue(0)}
	var lastJSON, lastBin float64
	for attempt := 1; attempt <= 3; attempt++ {
		jsonRate, jsonBytes := measureLoopback(t, jsonOpts, msgs)
		binRate, binBytes := measureLoopback(t, nil, msgs)
		if binBytes*2.5 > jsonBytes {
			t.Fatalf("binary codec spends %.1f B/msg, want <= JSON %.1f/2.5", binBytes, jsonBytes)
		}
		t.Logf("attempt %d: json %.0f msg/s @ %.1f B/msg; binary+coalesced %.0f msg/s @ %.1f B/msg (%.2fx rate, %.2fx bytes)",
			attempt, jsonRate, jsonBytes, binRate, binBytes, binRate/jsonRate, jsonBytes/binBytes)
		if binRate > jsonRate {
			return
		}
		lastJSON, lastBin = jsonRate, binRate
	}
	t.Fatalf("binary+coalesced path is not faster than JSON-per-write (%.0f vs %.0f msg/s)", lastBin, lastJSON)
}
