package diba

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"powercap/internal/topology"
)

// recordingTransport captures sends for schedule-determinism assertions.
type recordingTransport struct {
	mu   sync.Mutex
	sent []Message
}

func (r *recordingTransport) Send(to int, m Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m.Dead = to // reuse a spare field to record the destination
	r.sent = append(r.sent, m)
	return nil
}
func (r *recordingTransport) Recv() (Message, error) { select {} }
func (r *recordingTransport) Close() error           { return nil }

func driveSchedule(seed int64) []Message {
	rec := &recordingTransport{}
	plan := &FaultPlan{Seed: seed, DropProb: 0.2, DupProb: 0.2, ReorderProb: 0.2}
	ft := NewFaultTransport(rec, 0, plan)
	for i := 0; i < 200; i++ {
		_ = ft.Send(i%3+1, Message{From: 0, Round: i, E: float64(i)})
	}
	plan.Quiesce()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]Message(nil), rec.sent...)
}

func TestFaultScheduleDeterministic(t *testing.T) {
	// Same seed → the exact same sequence of deliveries (drops, dups and
	// reorders all land identically); different seed → a different one.
	a, b := driveSchedule(42), driveSchedule(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delivery %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := driveSchedule(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical fault schedule")
	}
}

func TestFaultTransportCrashPoint(t *testing.T) {
	rec := &recordingTransport{}
	plan := &FaultPlan{Seed: 1, CrashAfterSends: map[int]int{0: 3}}
	ft := NewFaultTransport(rec, 0, plan)
	for i := 0; i < 3; i++ {
		if err := ft.Send(1, Message{Round: i}); err != nil {
			t.Fatalf("send %d before the crash point: %v", i, err)
		}
	}
	if err := ft.Send(1, Message{Round: 3}); err != ErrCrashed {
		t.Fatalf("send past the crash point: got %v, want ErrCrashed", err)
	}
	if !plan.Crashed(0) {
		t.Fatal("plan must report node 0 crashed")
	}
	if _, err := ft.Recv(); err != ErrCrashed {
		t.Fatalf("recv after crash: got %v, want ErrCrashed", err)
	}
}

func TestChaosDelayDupReorderBitwise(t *testing.T) {
	// Delay, duplication and reordering are exactly the faults a reliable
	// transport's retransmission produces, and the BSP gather is provably
	// insensitive to them (order-independent, deduplicating). A chaos run
	// under those faults must therefore be *bitwise identical* to the clean
	// engine run — the strongest possible pinning of the fault-free path.
	n := 16
	us := mkCluster(t, n, 31)
	budget := float64(n) * 170
	g := topology.Ring(n)
	const rounds = 150

	en, err := New(g, us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rounds; k++ {
		en.Step()
	}
	want := en.Alloc()

	plan := &FaultPlan{
		Seed:        7,
		DelayProb:   0.3,
		MaxDelay:    2 * time.Millisecond,
		DupProb:     0.2,
		ReorderProb: 0.2,
	}
	fp := FaultPolicy{GatherTimeout: 5 * time.Second, Recover: true}
	states, err := RunAgentsUnderFaults(g, us, budget, Config{}, rounds, plan, fp, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range states {
		if st.Power != want[i] {
			t.Fatalf("node %d under chaos: %v != engine %v", i, st.Power, want[i])
		}
		if len(st.Dead) != 0 {
			t.Fatalf("node %d falsely declared %v dead under benign chaos", i, st.Dead)
		}
	}
}

func TestPartitionHealsBitwise(t *testing.T) {
	// A short link partition buffers traffic and flushes it at heal — a
	// delay in disguise — so the run must still match the engine bitwise.
	n := 10
	us := mkCluster(t, n, 32)
	budget := float64(n) * 170
	g := topology.Ring(n)
	const rounds = 120

	en, err := New(g, us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rounds; k++ {
		en.Step()
	}
	want := en.Alloc()

	plan := &FaultPlan{
		Seed:       11,
		Partitions: []Partition{{A: 2, B: 3, Start: 0, Dur: 30 * time.Millisecond}},
	}
	fp := FaultPolicy{GatherTimeout: 5 * time.Second, Recover: true}
	states, err := RunAgentsUnderFaults(g, us, budget, Config{}, rounds, plan, fp, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range states {
		if st.Power != want[i] {
			t.Fatalf("node %d across partition: %v != engine %v", i, st.Power, want[i])
		}
	}
}

// ringStandby builds the standby chord sets for a ring of n with the given
// stride.
func ringStandby(n, stride int) [][]int {
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		prev, next := (i+n-1)%n, (i+1)%n
		for _, c := range []int{(i + stride) % n, (i - stride + n) % n} {
			if c != i && c != prev && c != next {
				out[i] = append(out[i], c)
			}
		}
	}
	return out
}

func TestCrashMidBroadcastRepairAndConservation(t *testing.T) {
	// The acceptance scenario: one agent crashes partway through a
	// broadcast (the hardest case — its neighbors see different final
	// rounds and must reconcile via the epidemic's max-merge). Survivors
	// must detect it, agree on the frozen state, shrink the budget to
	// P − p_dead + e_dead, activate chords, and keep the conservation
	// identity Σe = Σp − P′ on the survivor set.
	checkGoroutineLeak(t)
	n := 10
	const victim = 4
	us := mkCluster(t, n, 33)
	budget := float64(n) * 170
	g := topology.Ring(n)
	const rounds = 400

	// Victim degree is 2, so an odd crash threshold lands mid-broadcast:
	// round 150's message reaches one ring neighbor but not the other.
	plan := &FaultPlan{Seed: 5, CrashAfterSends: map[int]int{victim: 301}}
	fp := FaultPolicy{GatherTimeout: 300 * time.Millisecond, Recover: true}
	states, err := RunAgentsUnderFaults(g, us, budget, Config{}, rounds, plan, fp, ringStandby(n, 3))
	if err != nil {
		t.Fatal(err)
	}

	vz := states[victim]
	if vz.Rounds >= rounds {
		t.Fatalf("victim ran all %d rounds; crash not injected", rounds)
	}
	wantBudget := budget - (vz.Power - vz.E)
	var sumP, sumE float64
	for i, st := range states {
		if i == victim {
			continue
		}
		if st.Rounds != rounds {
			t.Fatalf("survivor %d stopped at round %d, want %d", i, st.Rounds, rounds)
		}
		if len(st.Dead) != 1 || st.Dead[0] != victim {
			t.Fatalf("survivor %d dead set %v, want [%d]", i, st.Dead, victim)
		}
		if diff := st.Budget - wantBudget; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("survivor %d budget view %v, want %v (frozen state p=%v e=%v)", i, st.Budget, wantBudget, vz.Power, vz.E)
		}
		if st.E >= 0 {
			t.Fatalf("survivor %d estimate %v not negative (feasibility lost)", i, st.E)
		}
		sumP += st.Power
		sumE += st.E
	}
	if gap := sumE - (sumP - wantBudget); gap > 1e-6 || gap < -1e-6 {
		t.Fatalf("conservation violated on survivors: Σe − (Σp − P′) = %v", gap)
	}
	if sumP > wantBudget {
		t.Fatalf("survivors exceed the reconciled budget: Σp = %v > %v", sumP, wantBudget)
	}
}

func TestRunUntilQuietToleratesDeath(t *testing.T) {
	// The distributed stopping rule must keep working when membership
	// shrinks mid-run: all survivors halt at the identical round.
	checkGoroutineLeak(t)
	n := 8
	const victim = 3
	us := mkCluster(t, n, 34)
	budget := float64(n) * 170
	g := topology.Ring(n)
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	standby := ringStandby(n, 2)

	// Crash early (mid round 10) so the death happens well before the
	// cluster settles.
	plan := &FaultPlan{Seed: 9, CrashAfterSends: map[int]int{victim: 21}}
	fp := FaultPolicy{GatherTimeout: 300 * time.Millisecond, Recover: true}
	net := NewChanNetwork(n, 128)

	var wg sync.WaitGroup
	states := make([]AgentState, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := NewAgent(i, g.NeighborsInts(i), us[i], budget, n, totalIdle, Config{}, NewFaultTransport(net.Endpoint(i), i, plan))
			if err != nil {
				errs[i] = err
				return
			}
			a.SetFaultPolicy(fp)
			a.SetStandby(standby[i])
			st, err := a.RunUntilQuiet(QuietConfig{TolW: 1e-3, Settle: 30, Margin: n, MaxRounds: 50000})
			if err != nil {
				if strings.Contains(err.Error(), "crashed") {
					_ = a.tr.Close() // the injected casualty falls silent
					return
				}
				errs[i] = err
				return
			}
			states[i] = st
		}(i)
	}
	wg.Wait()
	plan.Quiesce()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	stopRound := 0
	for i, st := range states {
		if i == victim {
			continue
		}
		if st.Rounds == 50000 {
			t.Fatalf("survivor %d hit MaxRounds; stopping rule broke", i)
		}
		if stopRound == 0 {
			stopRound = st.Rounds
		} else if st.Rounds != stopRound {
			t.Fatalf("survivor %d stopped at round %d, others at %d", i, st.Rounds, stopRound)
		}
		if len(st.Dead) != 1 || st.Dead[0] != victim {
			t.Fatalf("survivor %d dead set %v, want [%d]", i, st.Dead, victim)
		}
	}
}

func TestFaultPolicyFaultFreeBitwise(t *testing.T) {
	// Installing a FaultPolicy must not perturb the fault-free arithmetic:
	// with no faults injected, the run stays bitwise identical to the
	// engine (the TestQuadFastPathMatchesGenericRule-style pinning the
	// acceptance criteria require).
	n := 20
	us := mkCluster(t, n, 35)
	budget := float64(n) * 170
	g := topology.Ring(n)
	const rounds = 200

	en, err := New(g, us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rounds; k++ {
		en.Step()
	}
	want := en.Alloc()

	fp := FaultPolicy{GatherTimeout: 5 * time.Second, Recover: true}
	states, err := RunAgentsUnderFaults(g, us, budget, Config{}, rounds, nil, fp, ringStandby(n, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range states {
		if st.Power != want[i] {
			t.Fatalf("node %d with fault policy: %v != engine %v", i, st.Power, want[i])
		}
		if st.Budget != budget {
			t.Fatalf("node %d budget view drifted to %v without any failure", i, st.Budget)
		}
	}
}

func TestGatherErrorsNotHangsOnSilence(t *testing.T) {
	// Regression for the original hang: with Recover off, a silent
	// neighbor must surface as an error, promptly.
	us := mkCluster(t, 3, 36)
	net := NewChanNetwork(3, 16)
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	a, err := NewAgent(0, []int{1, 2}, us[0], 3*170, 3, totalIdle, Config{}, net.Endpoint(0))
	if err != nil {
		t.Fatal(err)
	}
	a.SetFaultPolicy(FaultPolicy{GatherTimeout: 100 * time.Millisecond, Recover: false})
	done := make(chan error, 1)
	go func() {
		_, err := a.Run(5)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("gather with silent neighbors must error")
		}
		if !strings.Contains(err.Error(), "silent") {
			t.Fatalf("error %q does not name the silent neighbors", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gather hung on silent neighbors despite the fault policy")
	}
}

// checkGoroutineLeak fails the test if goroutines outlive it (stray fault
// timers, transport pumps). Registered as a cleanup so it runs last.
func checkGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	})
}
