package diba

import (
	"errors"
	"fmt"
	"sync"

	"powercap/internal/topology"
	"powercap/internal/workload"
)

// RunAgents deploys one goroutine-backed Agent per node of g, wired through
// an in-process ChanNetwork, runs the given number of BSP rounds, and
// returns the final power allocation. Because every agent executes the same
// nodeRule the synchronous Engine uses, the result matches Engine.Step run
// the same number of times exactly — the tests assert bitwise equality.
func RunAgents(g *topology.Graph, us []workload.Utility, budget float64, cfg Config, rounds int) ([]float64, error) {
	n := g.N()
	if n != len(us) {
		return nil, fmt.Errorf("diba: graph has %d nodes but %d utilities given", n, len(us))
	}
	if !g.Connected() {
		return nil, fmt.Errorf("diba: communication graph must be connected")
	}
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	net := NewChanNetwork(n, 4*(g.MaxDegree()+1))
	agents := make([]*Agent, n)
	for i := 0; i < n; i++ {
		a, err := NewAgent(i, g.NeighborsInts(i), us[i], budget, n, totalIdle, cfg, net.Endpoint(i))
		if err != nil {
			return nil, err
		}
		agents[i] = a
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range agents {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = agents[i].Run(rounds)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("diba: agent %d failed: %w", i, err)
		}
	}
	alloc := make([]float64, n)
	for i, a := range agents {
		alloc[i] = a.Power()
	}
	return alloc, nil
}

// RunAgentsUnderFaults deploys one goroutine-backed Agent per node like
// RunAgents, but wires every endpoint through a FaultTransport driven by
// plan (nil injects nothing), installs fp on every agent, and registers
// standby[i] as node i's standby chord links (standby may be nil). A node
// that hits its injected crash point simply stops — its last state is
// returned with its error slot nil, like a process that died — while any
// other agent error fails the run. The returned states carry each agent's
// final budget view and dead set so tests can assert the survivors'
// reconciliation.
func RunAgentsUnderFaults(g *topology.Graph, us []workload.Utility, budget float64, cfg Config, rounds int, plan *FaultPlan, fp FaultPolicy, standby [][]int) ([]AgentState, error) {
	n := g.N()
	if n != len(us) {
		return nil, fmt.Errorf("diba: graph has %d nodes but %d utilities given", n, len(us))
	}
	if standby != nil && len(standby) != n {
		return nil, fmt.Errorf("diba: standby has %d entries for %d nodes", len(standby), n)
	}
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	// Generous mailboxes: on top of the ≤2 outstanding round messages per
	// sender, chaos duplication and failure epidemics add bounded bursts,
	// and a full mailbox drops gossip (recovered by anti-entropy) but must
	// not drop round traffic.
	net := NewChanNetwork(n, 16*(g.MaxDegree()+2))
	agents := make([]*Agent, n)
	for i := 0; i < n; i++ {
		var tr Transport = net.Endpoint(i)
		if plan != nil {
			tr = NewFaultTransport(tr, i, plan)
		}
		a, err := NewAgent(i, g.NeighborsInts(i), us[i], budget, n, totalIdle, cfg, tr)
		if err != nil {
			return nil, err
		}
		a.SetFaultPolicy(fp)
		if standby != nil {
			a.SetStandby(standby[i])
		}
		agents[i] = a
	}

	var wg sync.WaitGroup
	states := make([]AgentState, n)
	errs := make([]error, n)
	for i := range agents {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := agents[i].Run(rounds)
			if err != nil && errors.Is(err, ErrCrashed) {
				// The injected casualty: record how far it got and fall
				// silent, exactly like a crashed process.
				states[i] = agents[i].state()
				_ = agents[i].tr.Close()
				return
			}
			states[i], errs[i] = st, err
		}(i)
	}
	wg.Wait()
	if plan != nil {
		plan.Quiesce()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("diba: agent %d failed: %w", i, err)
		}
	}
	return states, nil
}
