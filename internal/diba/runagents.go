package diba

import (
	"fmt"
	"sync"

	"powercap/internal/topology"
	"powercap/internal/workload"
)

// RunAgents deploys one goroutine-backed Agent per node of g, wired through
// an in-process ChanNetwork, runs the given number of BSP rounds, and
// returns the final power allocation. Because every agent executes the same
// nodeRule the synchronous Engine uses, the result matches Engine.Step run
// the same number of times exactly — the tests assert bitwise equality.
func RunAgents(g *topology.Graph, us []workload.Utility, budget float64, cfg Config, rounds int) ([]float64, error) {
	n := g.N()
	if n != len(us) {
		return nil, fmt.Errorf("diba: graph has %d nodes but %d utilities given", n, len(us))
	}
	if !g.Connected() {
		return nil, fmt.Errorf("diba: communication graph must be connected")
	}
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	net := NewChanNetwork(n, 4*(g.MaxDegree()+1))
	agents := make([]*Agent, n)
	for i := 0; i < n; i++ {
		a, err := NewAgent(i, g.NeighborsInts(i), us[i], budget, n, totalIdle, cfg, net.Endpoint(i))
		if err != nil {
			return nil, err
		}
		agents[i] = a
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range agents {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = agents[i].Run(rounds)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("diba: agent %d failed: %w", i, err)
		}
	}
	alloc := make([]float64, n)
	for i, a := range agents {
		alloc[i] = a.Power()
	}
	return alloc, nil
}
