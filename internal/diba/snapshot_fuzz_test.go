package diba

import (
	"bytes"
	"math"
	"testing"

	"powercap/internal/topology"
)

// Fuzzing the snapshot readers: an operational checkpoint comes off a disk
// or a wire, so arbitrary bytes must never panic the restore path — either
// the state is validated and adopted, or a descriptive error comes back and
// the receiver is untouched. The seed corpus runs under plain `go test`,
// so CI exercises the interesting shapes on every run; `go test -fuzz` digs
// further.

// fuzzEngine builds a small deterministic engine for restore attempts.
func fuzzEngine(t testing.TB) *Engine {
	t.Helper()
	us := mkCluster(t, 4, 7)
	en, err := New(topology.Ring(4), us, 4*170, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return en
}

func FuzzEngineReadSnapshot(f *testing.F) {
	// A valid snapshot, stepped a few rounds in.
	en := fuzzEngine(f)
	for i := 0; i < 5; i++ {
		en.Step()
	}
	var valid bytes.Buffer
	if err := en.WriteSnapshot(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"budget":680,"iter":3,"p":[1e9,150,150,150],"e":[-1,-1,-1,-1]}`))
	f.Add([]byte(`{"version":1,"budget":680,"iter":3,"p":[150,150,150,150],"e":[-1,-1,-1,5]}`))
	f.Add([]byte(`{"version":1,"budget":680,"iter":3,"p":[0,150,150,150],"e":[0,-1,-1,-1],"dead":[0]}`))
	f.Add([]byte(`{"version":1,"budget":680,"iter":3,"p":[150,150,150,150],"e":[-1,-1,-1,-1],"dead":[99]}`))
	f.Add([]byte(`{"version":1,"budget":1e308,"iter":3,"p":[150,150,150,150],"e":[-1,-1,-1,-1]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		en := fuzzEngine(t)
		if err := en.ReadSnapshot(bytes.NewReader(data)); err != nil {
			return
		}
		// An accepted snapshot must leave the engine in a computable state.
		for _, p := range en.Alloc() {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatalf("accepted snapshot left a non-finite cap: %v", en.Alloc())
			}
		}
		en.Step()
	})
}

func FuzzAgentReadSnapshot(f *testing.F) {
	f.Add([]byte(`{"version":1,"id":1,"round":12,"p":150,"e":-2.5,"budget":680}`))
	f.Add([]byte(`{"version":1,"id":0,"round":12,"p":150,"e":-2.5,"budget":680}`))
	f.Add([]byte(`{"version":1,"id":1,"round":-3,"p":150,"e":-2.5,"budget":680}`))
	f.Add([]byte(`{"version":1,"id":1,"round":12,"p":1e9,"e":-2.5,"budget":680}`))
	f.Add([]byte(`{"version":1,"id":1,"round":12,"p":150,"e":0,"budget":680}`))
	f.Add([]byte(`{"version":1,"id":1,"round":12,"p":150,"e":-2.5,"budget":1}`))
	f.Add([]byte(`nonsense`))
	f.Add([]byte(`{"version":1,"id":1,"round":12,"p":null,"e":-2.5,"budget":680}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		us := mkCluster(t, 4, 7)
		var totalIdle float64
		for _, u := range us {
			totalIdle += u.MinPower()
		}
		a, err := NewAgent(1, []int{0, 2}, us[1], 4*170, 4, totalIdle, Config{}, &recordingTransport{})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.ReadSnapshot(bytes.NewReader(data)); err != nil {
			return
		}
		if math.IsNaN(a.Power()) || math.IsInf(a.Power(), 0) || a.Estimate() >= 0 {
			t.Fatalf("accepted agent snapshot left invalid state: p=%v e=%v", a.Power(), a.Estimate())
		}
	})
}
