package diba

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powercap/internal/metrics"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

func mkCluster(t testing.TB, n int, seed int64) []workload.Utility {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	return a.UtilitySlice()
}

func TestNewValidation(t *testing.T) {
	us := mkCluster(t, 10, 1)
	if _, err := New(topology.Ring(10), us, 500, Config{}); err == nil {
		t.Fatal("budget below idle power must be rejected")
	}
	if _, err := New(topology.Ring(12), us, 2000, Config{}); err == nil {
		t.Fatal("node/utility count mismatch must be rejected")
	}
	if _, err := New(topology.Ring(10), us, 2000, Config{Gamma: 2}); err == nil {
		t.Fatal("invalid Gamma must be rejected")
	}
	g := topology.NewGraph(10) // edgeless: disconnected
	if _, err := New(g, us, 2000, Config{}); err == nil {
		t.Fatal("disconnected graph must be rejected")
	}
	if _, err := New(topology.NewGraph(0), nil, 2000, Config{}); err == nil {
		t.Fatal("empty cluster must be rejected")
	}
}

func TestInitialStateFeasible(t *testing.T) {
	us := mkCluster(t, 20, 2)
	en, err := New(topology.Ring(20), us, 20*170, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := en.CheckInvariant(1e-9); err != nil {
		t.Fatal(err)
	}
	for i, p := range en.Alloc() {
		if p != us[i].MinPower() {
			t.Fatalf("node %d must start at idle power", i)
		}
	}
}

func TestInvariantsEveryRound(t *testing.T) {
	us := mkCluster(t, 50, 3)
	budget := 50 * 168.0
	en, err := New(topology.Ring(50), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2000; k++ {
		en.Step()
		if err := en.CheckInvariant(1e-6); err != nil {
			t.Fatalf("round %d: %v", k, err)
		}
		if en.TotalPower() > budget {
			t.Fatalf("round %d: budget violated: %v > %v", k, en.TotalPower(), budget)
		}
	}
}

func TestConvergesTo99PercentOnRing(t *testing.T) {
	for _, n := range []int{100, 400} {
		us := mkCluster(t, n, 4)
		budget := float64(n) * 170
		opt, err := solver.Optimal(us, budget)
		if err != nil {
			t.Fatal(err)
		}
		en, err := New(topology.Ring(n), us, budget, Config{})
		if err != nil {
			t.Fatal(err)
		}
		res := en.RunToTarget(opt.Utility, 0.99, 5000)
		if !res.Converged {
			t.Fatalf("N=%d: not converged in 5000 rounds (ratio %v)", n, res.Utility/opt.Utility)
		}
		if res.Power > budget {
			t.Fatalf("N=%d: power %v exceeds budget %v", n, res.Power, budget)
		}
		if !metrics.Feasible(us, en.Alloc(), budget, 1e-6) {
			t.Fatalf("N=%d: final allocation infeasible", n)
		}
	}
}

func TestConvergesOnOtherTopologies(t *testing.T) {
	n := 100
	us := mkCluster(t, n, 5)
	budget := float64(n) * 170
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	graphs := map[string]*topology.Graph{
		"chordal":  topology.ChordalRing(n, 7),
		"er":       topology.ConnectedErdosRenyi(n, 300, rng),
		"complete": topology.Complete(n),
	}
	for name, g := range graphs {
		en, err := New(g, us, budget, Config{})
		if err != nil {
			t.Fatal(err)
		}
		res := en.RunToTarget(opt.Utility, 0.99, 8000)
		if !res.Converged {
			t.Fatalf("%s: not converged (ratio %v)", name, res.Utility/opt.Utility)
		}
	}
}

func TestHigherConnectivityConvergesFaster(t *testing.T) {
	n := 100
	us := mkCluster(t, n, 6)
	budget := float64(n) * 168
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	run := func(g *topology.Graph) int {
		en, err := New(g, us, budget, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return en.RunToTarget(opt.Utility, 0.99, 30000).Iterations
	}
	ring := run(topology.Ring(n))
	rng := rand.New(rand.NewSource(8))
	dense := run(topology.ConnectedErdosRenyi(n, 600, rng))
	if dense >= ring {
		t.Fatalf("dense graph (%d iters) must converge faster than ring (%d iters)", dense, ring)
	}
}

func TestRunToQuiescence(t *testing.T) {
	n := 60
	us := mkCluster(t, n, 9)
	budget := float64(n) * 172
	en, err := New(topology.Ring(n), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := en.RunToQuiescence(1e-3, 20, 200000)
	if !res.Converged {
		t.Fatal("quiescence not reached")
	}
	opt, _ := solver.Optimal(us, budget)
	if res.Utility < 0.985*opt.Utility {
		t.Fatalf("quiescent utility %v below 98.5%% of optimal %v", res.Utility, opt.Utility)
	}
}

func TestBudgetDropImmediatePowerCut(t *testing.T) {
	n := 100
	us := mkCluster(t, n, 10)
	en, err := New(topology.Ring(n), us, float64(n)*190, Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := solver.Optimal(us, float64(n)*190)
	en.RunToTarget(opt.Utility, 0.99, 10000)

	newBudget := float64(n) * 170
	if err := en.SetBudget(newBudget); err != nil {
		t.Fatal(err)
	}
	// Feasibility must be restored immediately, before any new rounds.
	if en.TotalPower() > newBudget {
		t.Fatalf("power %v exceeds new budget %v right after the cut", en.TotalPower(), newBudget)
	}
	if err := en.CheckInvariant(1e-6); err != nil {
		t.Fatal(err)
	}
	// And the engine re-converges near the new optimum.
	opt2, _ := solver.Optimal(us, newBudget)
	res := en.RunToTarget(opt2.Utility, 0.99, 10000)
	if !res.Converged {
		t.Fatalf("no re-convergence after budget drop (ratio %v)", res.Utility/opt2.Utility)
	}
}

func TestBudgetRise(t *testing.T) {
	n := 100
	us := mkCluster(t, n, 11)
	en, err := New(topology.Ring(n), us, float64(n)*170, Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := solver.Optimal(us, float64(n)*170)
	en.RunToTarget(opt.Utility, 0.99, 10000)
	before := en.TotalUtility()

	if err := en.SetBudget(float64(n) * 190); err != nil {
		t.Fatal(err)
	}
	if err := en.CheckInvariant(1e-6); err != nil {
		t.Fatal(err)
	}
	opt2, _ := solver.Optimal(us, float64(n)*190)
	res := en.RunToTarget(opt2.Utility, 0.99, 10000)
	if !res.Converged {
		t.Fatalf("no re-convergence after budget rise (ratio %v)", res.Utility/opt2.Utility)
	}
	if res.Utility <= before {
		t.Fatal("more budget must raise utility")
	}
}

func TestSetBudgetInfeasibleRejected(t *testing.T) {
	n := 10
	us := mkCluster(t, n, 12)
	en, err := New(topology.Ring(n), us, float64(n)*170, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := en.SetBudget(500); err == nil {
		t.Fatal("budget below idle power must be rejected")
	}
	if en.Budget() != float64(n)*170 {
		t.Fatal("rejected budget change must not alter state")
	}
}

func TestWorkloadChangeLocality(t *testing.T) {
	// Fig. 4.9: after a single node's utility changes, the power deltas at
	// re-convergence concentrate around the perturbed node.
	n := 100
	us := mkCluster(t, n, 13)
	budget := float64(n) * 172
	en, err := New(topology.Ring(n), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	en.RunToQuiescence(1e-4, 30, 200000)
	before := en.Alloc()

	// Swap node 50's workload for one with the opposite character, so the
	// equilibrium genuinely moves there (memory-bound RA sheds most of its
	// power).
	ra, _ := workload.ByName(workload.HPC, "RA")
	newU := workload.TrueUtility(ra, workload.DefaultServer)
	if err := en.SetUtility(50, newU); err != nil {
		t.Fatal(err)
	}
	us[50] = newU
	en.RunToQuiescence(1e-4, 30, 200000)
	after := en.Alloc()

	var near, far, nearN, farN float64
	for i := range after {
		d := math.Abs(after[i] - before[i])
		dist := ringDist(i, 50, n)
		if dist <= 10 {
			near += d
			nearN++
		} else if dist >= 30 {
			far += d
			farN++
		}
	}
	if d50 := math.Abs(after[50] - before[50]); d50 < 20 {
		t.Fatalf("perturbed node must move substantially, moved %v W", d50)
	}
	if near/nearN <= 3*far/farN {
		t.Fatalf("perturbation must stay local: near/node=%v far/node=%v", near/nearN, far/farN)
	}
	if err := en.CheckInvariant(1e-6); err != nil {
		t.Fatal(err)
	}
}

func ringDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

func TestSetUtilityValidation(t *testing.T) {
	us := mkCluster(t, 10, 14)
	en, err := New(topology.Ring(10), us, 1800, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := en.SetUtility(99, us[0]); err == nil {
		t.Fatal("out-of-range node must be rejected")
	}
}

func TestPriceApproachesOptimalDual(t *testing.T) {
	n := 200
	us := mkCluster(t, n, 15)
	budget := float64(n) * 170
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(topology.Ring(n), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	en.RunToQuiescence(1e-4, 30, 50000)
	price := en.Price()
	if price <= 0 || math.IsInf(price, 1) {
		t.Fatalf("degenerate price %v", price)
	}
	if math.Abs(price-opt.Price)/opt.Price > 0.5 {
		t.Fatalf("implied price %v too far from dual %v", price, opt.Price)
	}
}

func TestEstimateErrorDecaysAfterPerturbation(t *testing.T) {
	// Fig. 4.8: the estimate disturbance decays over iterations.
	n := 100
	us := mkCluster(t, n, 16)
	budget := float64(n) * 172
	en, err := New(topology.Ring(n), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	en.RunToQuiescence(1e-4, 30, 200000)
	ra, _ := workload.ByName(workload.HPC, "RA")
	if err := en.SetUtility(50, workload.TrueUtility(ra, workload.DefaultServer)); err != nil {
		t.Fatal(err)
	}
	spread := func() float64 {
		es := en.Estimates()
		var mean float64
		for _, v := range es {
			mean += v
		}
		mean /= float64(len(es))
		var s float64
		for _, v := range es {
			s += math.Abs(v - mean)
		}
		return s
	}
	for k := 0; k < 50; k++ {
		en.Step()
	}
	early := spread()
	for k := 0; k < 3000; k++ {
		en.Step()
	}
	late := spread()
	if late > early {
		t.Fatalf("estimate spread must decay: early=%v late=%v", early, late)
	}
}

func TestStepReportsMaxMove(t *testing.T) {
	us := mkCluster(t, 20, 17)
	en, err := New(topology.Ring(20), us, 20*175, Config{})
	if err != nil {
		t.Fatal(err)
	}
	move := en.Step()
	if move <= 0 {
		t.Fatal("first round from idle must move power")
	}
	if move > (Config{}).withDefaults().MaxMoveW+1e-9 {
		t.Fatalf("move %v exceeds MaxMoveW", move)
	}
}

func TestEdgeTransferAntisymmetric(t *testing.T) {
	cfg := Config{}.withDefaults()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eA := -rng.Float64()*10 - 1e-6
		eB := -rng.Float64()*10 - 1e-6
		dA := 1 + rng.Intn(6)
		dB := 1 + rng.Intn(6)
		ab := edgeTransfer(cfg, eA, eB, dA, dB)
		ba := edgeTransfer(cfg, eB, eA, dB, dA)
		return math.Abs(ab+ba) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeTransferCannotCrossZero(t *testing.T) {
	cfg := Config{}.withDefaults()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eA := -rng.Float64() * 10
		eB := -rng.Float64() * 10
		dA := 1 + rng.Intn(6)
		dB := 1 + rng.Intn(6)
		t := edgeTransfer(cfg, eA, eB, dA, dB)
		// Receiving endpoint's estimate after dB (resp. dA) such inflows
		// stays negative.
		afterB := eB + float64(dB)*math.Max(t, 0)
		afterA := eA + float64(dA)*math.Max(-t, 0)
		return afterB < 0 && afterA < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: invariants hold after arbitrary interleavings of rounds, budget
// changes and workload swaps.
func TestInvariantUnderRandomEventsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.1, 0.01, rng)
		if err != nil {
			return false
		}
		us := a.UtilitySlice()
		budget := float64(n) * (150 + rng.Float64()*40)
		en, err := New(topology.Ring(n), us, budget, Config{})
		if err != nil {
			return false
		}
		for ev := 0; ev < 30; ev++ {
			switch rng.Intn(3) {
			case 0:
				for k := 0; k < 20; k++ {
					en.Step()
				}
			case 1:
				nb := float64(n) * (150 + rng.Float64()*40)
				if err := en.SetBudget(nb); err != nil {
					return false
				}
			case 2:
				b := workload.HPC[rng.Intn(len(workload.HPC))]
				if err := en.SetUtility(rng.Intn(n), workload.TrueUtility(b, workload.DefaultServer)); err != nil {
					return false
				}
			}
			// Conservation holds unconditionally, even mid-recovery from a
			// harsh budget cut.
			if err := en.CheckConservation(1e-5); err != nil {
				return false
			}
			// Strict feasibility holds whenever all estimates are negative;
			// a harsh cut may leave some transiently non-negative.
			if en.CheckFeasible() == nil && en.TotalPower() > en.Budget() {
				return false
			}
		}
		// After the event storm settles, feasibility must be restored.
		for k := 0; k < 500; k++ {
			en.Step()
		}
		return en.CheckFeasible() == nil && en.TotalPower() <= en.Budget()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEtaAnnealingRecoversBarrierBias(t *testing.T) {
	n := 80
	us := mkCluster(t, n, 81)
	budget := float64(n) * 170
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg Config) float64 {
		en, err := New(topology.Ring(n), us, budget, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 8000; k++ {
			en.Step()
			if en.TotalPower() > budget {
				t.Fatalf("round %d: budget violated under annealing", k)
			}
		}
		return en.TotalUtility() / opt.Utility
	}
	plain := run(Config{})
	annealed := run(Config{EtaMin: 0.001})
	if annealed <= plain {
		t.Fatalf("annealing must improve the asymptote: plain %v, annealed %v", plain, annealed)
	}
	if annealed < 0.998 {
		t.Fatalf("annealed asymptote %v should approach 1", annealed)
	}
}

func TestEtaAnnealingValidation(t *testing.T) {
	us := mkCluster(t, 10, 82)
	if _, err := New(topology.Ring(10), us, 1800, Config{EtaMin: -1}); err == nil {
		t.Fatal("negative EtaMin must be rejected")
	}
}

func TestStepParallelMatchesSequential(t *testing.T) {
	n := 500
	us := mkCluster(t, n, 83)
	budget := float64(n) * 170
	seq, err := New(topology.Ring(n), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(topology.Ring(n), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 400; k++ {
		a1 := seq.Step()
		a2 := par.StepParallel(4)
		if a1 != a2 {
			t.Fatalf("round %d: activity differs: %v vs %v", k, a1, a2)
		}
	}
	p1, p2 := seq.Alloc(), par.Alloc()
	e1, e2 := seq.Estimates(), par.Estimates()
	for i := range p1 {
		if p1[i] != p2[i] || e1[i] != e2[i] {
			t.Fatalf("node %d: parallel state diverged", i)
		}
	}
	// workers ≤ 1 falls back to the sequential path.
	if par.StepParallel(1) != seq.Step() {
		t.Fatal("single-worker fallback diverged")
	}
}
