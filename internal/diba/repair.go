package diba

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Failure detection and ring repair for the message-passing agents — the
// deployable counterpart of the synchronous simulator's FailNode
// (failure.go). The text motivates decentralization with fault isolation
// and suggests equipping the ring with chords so the communication graph
// stays connected when nodes die; this file implements that end to end:
//
//  1. Detection. gather() (agent.go) waits at most FaultPolicy.GatherTimeout
//     for a silent neighbor, granting extensions while the transport's
//     heartbeat clock still shows the peer alive, then declares it dead.
//  2. Epidemic. The detector floods a NodeDead record — the dead node's
//     identity, its final broadcast round L, its frozen state (p_d, e_d)
//     from that broadcast, and a proposed chord-activation round — over all
//     links, active and standby. Receivers merge records (max L wins, min
//     activation round wins), re-flooding on every improvement, so all
//     survivors converge on one view.
//  3. Repair. Standby chord links activate at the agreed round. Because the
//     activation round exceeds detection by a margin larger than the graph
//     diameter, every survivor learns it before its own round counter gets
//     there — the same flood-a-minimum trick the termination rule uses —
//     and both endpoints of each chord start exchanging estimates at the
//     identical round, keeping the BSP exchange deadlock-free.
//  4. Budget reconciliation. The dead node's state leaves the system and
//     each survivor's budget view shrinks to P − p_d + e_d, which preserves
//     Σe = Σp − P′ over the survivors exactly (failure.go proves the same
//     accounting safe in the simulator; e_d < 0 makes it conservative).
//     Survivors' estimates need no adjustment — except for the one
//     asymmetric round: a neighbor that computed round L with the dead
//     node's final message moved an edge flow the dead node never matched,
//     and adds exactly that flow back (reconcile). The identity then holds
//     to float precision whenever some survivor observed the final
//     broadcast; if the node died between computing a round and announcing
//     it, the unobservable last update leaves an error of one round's edge
//     flow — the detection limit of a crash-stop model.
//
// What is tolerated: any number of node crashes that leave the active
// graph connected (a ring survives one; chords extend that), transient
// link loss (transport reconnect + replay), and message delay, duplication
// and reordering. What is not: byzantine nodes, network partitions that
// persist past the detection timeout (each side will declare the other
// dead), and crashes before a node's first broadcast (no frozen state to
// account with).

// FaultPolicy configures an agent's failure detection and recovery. The
// zero value disables detection entirely: gather blocks forever on a silent
// neighbor, the pre-fault-tolerance behavior.
type FaultPolicy struct {
	// GatherTimeout is how long one round's gather may wait on a silent
	// neighbor before it is suspected. 0 disables failure detection.
	GatherTimeout time.Duration
	// HeartbeatGrace keeps a suspected neighbor alive while the transport
	// heard from it (any traffic, heartbeats included) within this window —
	// distinguishing slow from dead. Requires a PeerLiveness transport;
	// 0 disables grace (suspicion is death).
	HeartbeatGrace time.Duration
	// MaxStall bounds one gather's total wait regardless of grace
	// extensions. 0 selects 10× GatherTimeout.
	MaxStall time.Duration
	// RepairMargin is the number of rounds between detection and chord
	// activation. It must exceed the communication graph's diameter so the
	// epidemic reaches every survivor before the activation round; 0
	// selects the cluster size, which always suffices.
	RepairMargin int
	// Recover selects what a detected death does: true repairs the ring
	// and continues; false fails the run with a descriptive error (for
	// deployments that prefer crash-and-restart).
	Recover bool
	// OnEvent, when set, observes detection and repair events (logging,
	// metrics). Called from the agent's own goroutine.
	OnEvent func(FaultEvent)

	// StragglerTolerant enables gray-failure mitigation (straggler.go):
	// after an adaptive per-peer deadline — derived from observed gather
	// round trips, far shorter than GatherTimeout — the round proceeds
	// with the straggler's last-known estimate (or without its edge) and
	// reconciles exactly when the late message lands. Death detection is
	// unchanged: only peers with recent traffic are mitigated, so a truly
	// silent peer still takes the GatherTimeout → triage → dead path.
	StragglerTolerant bool
	// DeadlineMin and DeadlineMax clamp the adaptive per-peer deadline.
	// Defaults: GatherTimeout/16 and GatherTimeout/2 — even a peer never
	// measured cannot stall a tolerant round past half the hard timeout.
	DeadlineMin time.Duration
	DeadlineMax time.Duration
	// MaxLag bounds how many rounds old a substituted estimate may be.
	// Beyond it the straggler's edge moves no flow at all (soft-exclude,
	// the mid-gather-dead convention) until its true frames catch up.
	// 0 selects 8.
	MaxLag int
	// JitterSeed seeds this agent's deterministic timer jitter (gather
	// deadlines; ±15%). 0 derives a per-agent seed from the id, so a
	// cluster under one policy still jitters apart.
	JitterSeed int64
}

// FaultEvent describes one detection/repair action for observability.
type FaultEvent struct {
	Round int
	Kind  string // "suspect-dead", "record", "repair", "budget"
	Node  int
	Info  string
}

// deadRecord is an agent's view of one dead node, merged across the
// epidemic.
type deadRecord struct {
	node int
	// lastRound is the dead node's final broadcast round L (the highest
	// round any survivor received from it); -1 if it was never heard.
	lastRound int
	// frozenP/frozenE are the state carried by that final broadcast — the
	// node's power and estimate when it stopped computing.
	frozenP, frozenE float64
	// activateAt is the agreed chord-activation round (minimum over all
	// proposals seen).
	activateAt int
	// compensated is the unmatched final-round edge flow this agent added
	// back to its own estimate (0 if it was not an affected neighbor).
	compensated float64
	activated   bool
	// rejoinAt is the agreed readmission round when the node is coming back
	// from a restart (0 = no rejoin scheduled); droppedEdge records that
	// this agent removed its direct edge to the node, so completion knows
	// to restore it. See rejoin.go.
	rejoinAt    int
	droppedEdge bool
}

// SetFaultPolicy installs the failure detection and recovery policy. Call
// before the first round.
func (a *Agent) SetFaultPolicy(fp FaultPolicy) {
	a.fp = fp
	if a.ftEnabled() && a.lastFrom == nil {
		a.lastFrom = make(map[int]Message)
		a.usedRound = make(map[int]int)
		a.dead = make(map[int]*deadRecord)
		a.histE = make(map[int]float64)
		a.histDeg = make(map[int]int)
		a.heard = make(map[int]time.Time)
	}
	if a.ftEnabled() && a.rtt == nil {
		a.rtt = make(map[int]*PeerRTT)
		a.staleOut = make(map[int][]staleUse)
		a.staleNow = make(map[int]bool)
		a.staleCount = make(map[int]int)
		seed := fp.JitterSeed
		if seed == 0 {
			seed = int64(a.ID) + 1
		}
		a.jrng = rand.New(rand.NewSource(laneSeed(seed, a.ID, a.ID)))
	}
}

// SetStandby registers standby chord links: node ids this agent can reach
// (connections exist) but does not exchange estimates with until a failure
// triggers repair, at which point they join Neighbors at the agreed round.
func (a *Agent) SetStandby(chords []int) {
	a.standby = append([]int(nil), chords...)
	sort.Ints(a.standby)
}

// Budget returns the agent's current view of the cluster budget: the
// configured budget shrunk by P − p_d + e_d for every known dead node.
func (a *Agent) Budget() float64 { return a.budget }

// DeadNodes returns the ids this agent believes dead, sorted.
func (a *Agent) DeadNodes() []int {
	out := make([]int, 0, len(a.dead))
	for id := range a.dead {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func (a *Agent) ftEnabled() bool { return a.fp.GatherTimeout > 0 }

func (a *Agent) event(kind string, node int, info string) {
	if a.fp.OnEvent != nil {
		a.fp.OnEvent(FaultEvent{Round: a.round, Kind: kind, Node: node, Info: info})
	}
}

// beginRound runs the membership housekeeping that must happen between
// rounds: fire due chord activations, drop edges to nodes dead since before
// this round, and snapshot the round's starting state for the flow
// compensation. It is a no-op with fault tolerance disabled, keeping the
// fault-free path untouched.
func (a *Agent) beginRound() {
	if !a.ftEnabled() {
		return
	}
	a.completeRejoins()
	for _, rec := range a.dead {
		if !rec.activated && rec.activateAt > 0 && a.round >= rec.activateAt {
			rec.activated = true
			a.activateStandby()
		}
		if a.round > rec.lastRound {
			if a.removeNeighbor(rec.node) {
				rec.droppedEdge = true
			}
		}
	}
	// Periodic anti-entropy while a repair or a rejoin is pending, in case
	// an epidemic message was lost to a full mailbox or flaky link. A
	// pending rejoin keeps it running past activation: the budgets converge
	// back to exactly B only if every survivor's frozen-state view agreed,
	// so split records must heal before round J.
	if len(a.dead) > 0 && a.round%8 == 0 {
		for _, rec := range a.dead {
			if !rec.activated || rec.rejoinAt > 0 {
				a.gossipRecord(rec)
			}
			if rec.rejoinAt > 0 {
				// Re-flood the rejoin schedule too: the margin (≥ cluster
				// size + 8) guarantees at least one anti-entropy tick before
				// round J, so a survivor that missed the one-shot flood still
				// readmits the node on time.
				a.floodRejoin(rec)
			}
		}
	}
	a.histE[a.round] = a.e
	a.histDeg[a.round] = len(a.Neighbors)
	delete(a.histE, a.round-16)
	delete(a.histDeg, a.round-16)
}

// activateStandby merges the standby chords into the active neighbor set.
func (a *Agent) activateStandby() {
	if len(a.standby) == 0 {
		return
	}
	added := 0
	for _, s := range a.standby {
		if a.dead[s] != nil || a.hasNeighbor(s) || s == a.ID {
			continue
		}
		a.Neighbors = append(a.Neighbors, s)
		added++
	}
	a.standby = nil
	sort.Ints(a.Neighbors)
	a.event("repair", a.ID, fmt.Sprintf("activated %d chord link(s), degree now %d", added, len(a.Neighbors)))
}

func (a *Agent) hasNeighbor(id int) bool {
	for _, nb := range a.Neighbors {
		if nb == id {
			return true
		}
	}
	return false
}

// removeNeighbor drops id from the active neighbor set, reporting whether
// an edge was actually removed (so a later rejoin knows to restore it).
func (a *Agent) removeNeighbor(id int) bool {
	for k, nb := range a.Neighbors {
		if nb == id {
			a.Neighbors = append(a.Neighbors[:k], a.Neighbors[k+1:]...)
			return true
		}
	}
	return false
}

// links returns every id this agent can talk to: active neighbors plus
// standby chords, excluding known-dead nodes.
func (a *Agent) links() []int {
	out := make([]int, 0, len(a.Neighbors)+len(a.standby))
	for _, nb := range a.Neighbors {
		if a.dead[nb] == nil {
			out = append(out, nb)
		}
	}
	for _, s := range a.standby {
		if a.dead[s] == nil && !a.hasNeighbor(s) {
			out = append(out, s)
		}
	}
	return out
}

// noteRound tracks the freshest estimate message per peer (the would-be
// frozen state) and revises a dead record upward when a late message proves
// the node broadcast further than previously known.
func (a *Agent) noteRound(m Message) {
	if m.Kind != MsgEstimate {
		return
	}
	if rec := a.dead[m.From]; rec != nil && rec.rejoinAt > 0 && m.Round >= rec.rejoinAt {
		// Not a late pre-crash message: the node's reborn incarnation is
		// already broadcasting at its rejoin round. It is no evidence about
		// the dead incarnation — updating lastFrom or the frozen state from
		// it would corrupt the flow compensation; completeRejoins settles
		// the record instead, and lastFrom restarts clean afterwards.
		return
	}
	if cur, ok := a.lastFrom[m.From]; !ok || m.Round > cur.Round {
		a.lastFrom[m.From] = m
	}
	if rec := a.dead[m.From]; rec != nil && m.Round > rec.lastRound {
		a.mergeDead(m.From, m.Round, m.P, m.E, rec.activateAt)
	}
}

// declareDead records first-hand detections: the peers were silent past the
// policy's timeout. Their frozen state is the last round message each sent
// us (BSP guarantees the detector's copy is at most one round behind the
// true final broadcast; the epidemic's max-merge closes that gap when
// another neighbor saw more).
func (a *Agent) declareDead(ids []int) {
	margin := a.fp.RepairMargin
	if margin <= 0 {
		margin = a.clusterSize
	}
	for _, id := range ids {
		lastRound, fP, fE := -1, 0.0, 0.0
		if last, ok := a.lastFrom[id]; ok {
			lastRound, fP, fE = last.Round, last.P, last.E
		}
		a.event("suspect-dead", id, fmt.Sprintf("silent past %v (last broadcast round %d)", a.fp.GatherTimeout, lastRound))
		a.mergeDead(id, lastRound, fP, fE, a.round+margin)
	}
}

// applyDeadReport merges an epidemic record received from a peer. It
// returns an error only when the cluster has declared *this* agent dead —
// a false positive the agent cannot recover from (survivors have already
// dropped its edges), so it must stop rather than corrupt the budget.
func (a *Agent) applyDeadReport(m Message) error {
	if m.Dead == a.ID {
		if a.rejoinedAt > 0 && m.Round < a.rejoinedAt {
			// A stale epidemic about our pre-restart incarnation is still
			// circulating; the rejoin already superseded it.
			return nil
		}
		return fmt.Errorf("diba: agent %d declared dead by the cluster (report from %d); stopping", a.ID, m.From)
	}
	a.mergeDead(m.Dead, m.Round, m.P, m.E, m.Act)
	return nil
}

// mergeDead folds one report (first- or second-hand) into the record set:
// the highest final round wins the frozen state, the lowest activation
// round wins the repair schedule, and any improvement re-floods and
// re-reconciles.
func (a *Agent) mergeDead(dead, lastRound int, fP, fE float64, act int) {
	if tb, ok := a.rejoined[dead]; ok {
		if lastRound < tb.at {
			return // stale report from before the node's rejoin
		}
		// A genuinely new death after the rejoin: the tombstone has served
		// its purpose.
		delete(a.rejoined, dead)
	}
	// Our own inbox may know a fresher final broadcast than the report.
	if last, ok := a.lastFrom[dead]; ok && last.Round > lastRound {
		lastRound, fP, fE = last.Round, last.P, last.E
	}
	rec := a.dead[dead]
	improved := false
	if rec == nil {
		rec = &deadRecord{node: dead, lastRound: lastRound, frozenP: fP, frozenE: fE, activateAt: act}
		a.dead[dead] = rec
		a.settleStaleOnDeath(dead)
		improved = true
	} else {
		if lastRound > rec.lastRound {
			rec.lastRound, rec.frozenP, rec.frozenE = lastRound, fP, fE
			improved = true
		}
		if act > 0 && !rec.activated && (rec.activateAt <= 0 || act < rec.activateAt) {
			rec.activateAt = act
			improved = true
		}
	}
	if improved {
		a.reconcile(rec)
		a.gossipRecord(rec)
		a.event("record", dead, fmt.Sprintf("final round %d, frozen p=%.3f e=%.3f, repair at round %d", rec.lastRound, rec.frozenP, rec.frozenE, rec.activateAt))
	}
}

// reconcile recomputes this agent's compensation for rec and the budget
// view. The compensation: if this agent computed a round using the dead
// node's *final* broadcast (round L), the edge flow it moved that round was
// never matched by the dead side — the frozen state predates round L — so
// it adds exactly that flow back. usedRound gates the "we actually computed
// with it" condition: a late message that was received but never consumed
// creates no unmatched flow. Any previous compensation is first undone, so
// upward revisions of L stay exact.
func (a *Agent) reconcile(rec *deadRecord) {
	if rec.compensated != 0 {
		a.comp -= rec.compensated
		rec.compensated = 0
	}
	if last, ok := a.lastFrom[rec.node]; ok && last.Round == rec.lastRound && a.usedRound[rec.node] == rec.lastRound {
		if ownE, ok2 := a.histE[rec.lastRound]; ok2 {
			t := edgeTransfer(a.cfg, ownE, last.E, a.histDeg[rec.lastRound], last.Degree)
			rec.compensated = t
			a.comp += t
		}
	}
	a.recomputeBudget()
}

// recomputeBudget rebuilds the budget view from the original budget and the
// frozen state of every known dead node: P′ = P − Σ (p_d − e_d).
func (a *Agent) recomputeBudget() {
	b := a.budget0
	for _, rec := range a.dead {
		b -= rec.frozenP - rec.frozenE
	}
	if b != a.budget {
		a.budget = b
		a.event("budget", a.ID, fmt.Sprintf("cluster budget view now %.3f W", b))
	}
}

// gossipRecord floods rec over every live link, active and standby. Send
// errors are ignored: the periodic anti-entropy in beginRound and the
// other survivors' relays provide redundancy.
func (a *Agent) gossipRecord(rec *deadRecord) {
	out := Message{
		Kind:  MsgNodeDead,
		From:  a.ID,
		Dead:  rec.node,
		Round: rec.lastRound,
		P:     rec.frozenP,
		E:     rec.frozenE,
		Act:   rec.activateAt,
	}
	for _, nb := range a.links() {
		_ = a.tr.Send(nb, out)
	}
}

// beacon broadcasts an application-level liveness heartbeat over every live
// link. gather calls it while stalled past its beacon interval, so neighbors
// waiting on this agent's next broadcast can tell "stalled detecting a
// failure" from "dead": a real death stalls its detectors for GatherTimeout,
// which delays their own broadcasts by the same amount, and without beacons
// those delayed broadcasts would race their neighbors' timeouts — one crash
// would cascade into a cluster-wide wave of false suspicions.
func (a *Agent) beacon() {
	out := Message{Kind: MsgHeartbeat, From: a.ID, Round: a.round}
	for _, nb := range a.links() {
		_ = a.tr.Send(nb, out)
	}
}

// triage inspects the still-needed peers after a gather timeout: peers heard
// from recently — on the agent's own clock (round traffic, gossip, beacons)
// or the transport's heartbeat clock — stay alive, the rest are returned for
// death declaration. Past the hard stall bound everyone still missing is
// returned.
func (a *Agent) triage(need map[int]bool, hardAt time.Time) []int {
	now := time.Now()
	pastHard := now.After(hardAt)
	grace := a.fp.HeartbeatGrace
	if grace <= 0 {
		grace = a.fp.GatherTimeout
	}
	pl, hasPL := a.tr.(PeerLiveness)
	var deadNow []int
	for nb := range need {
		if !pastHard {
			heard := a.heard[nb]
			if hasPL {
				if ts, ok := pl.LastHeard(nb); ok && ts.After(heard) {
					heard = ts
				}
			}
			if !heard.IsZero() && now.Sub(heard) < grace {
				continue // alive but slow; keep waiting
			}
		}
		deadNow = append(deadNow, nb)
	}
	sort.Ints(deadNow)
	return deadNow
}

// refreshNeed drops every peer now known dead from the gather's need set. A
// dead peer's message either already arrived (then it is in got/pending, not
// in need) or was lost with the link — waiting longer cannot produce it, and
// keeping the entry would stall the gather forever re-declaring the same
// death. Computing without a lost final broadcast is safe for conservation:
// neither side moves that round's flow on the edge, so nothing is unmatched
// (usedRound then correctly withholds the compensation).
func (a *Agent) refreshNeed(need map[int]bool) {
	for nb := range need {
		if a.dead[nb] != nil {
			delete(need, nb)
		}
	}
}

// finishRound runs after a round's estimate update: it records which peers'
// messages the computation consumed, re-checks compensation for any record
// that has none yet (the round just computed may have been a dead
// neighbor's final broadcast round), and folds pending correction mass into
// the estimate — after the exact fault-free grouping, never inside it.
func (a *Agent) finishRound(got map[int]Message) {
	if !a.ftEnabled() {
		return
	}
	r := a.round - 1 // the round just computed
	for nb := range got {
		if a.staleNow[nb] {
			// A synthesized (stale-substituted) entry: the peer's true
			// round-r message was not consumed, so it must not gate the
			// dead-edge compensation. settleStale advances usedRound when
			// the true frame lands instead.
			continue
		}
		a.usedRound[nb] = r
	}
	for nb := range a.staleNow {
		delete(a.staleNow, nb)
	}
	for _, rec := range a.dead {
		if rec.compensated == 0 {
			a.reconcile(rec)
		}
	}
	if a.comp != 0 {
		a.e += a.comp
		a.comp = 0
	}
}
