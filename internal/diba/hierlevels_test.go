package diba

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Multi-level engine tests: the L-level generalization, the sharded
// round's determinism contract, and the zero-allocation guarantee of both
// step paths.

// newTestHierLevels builds a NestedRings cluster with per-node budget
// densities per explicit level (finest first) and for the cluster.
func newTestHierLevels(t testing.TB, counts []int, groupPer []float64, clusterPer float64, seed int64) *HierEngine {
	t.Helper()
	g, gofs := topology.NestedRings(counts...)
	n := g.N()
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	levels := make([]Level, len(gofs))
	for l, gof := range gofs {
		ng := 0
		for _, k := range gof {
			if k >= ng {
				ng = k + 1
			}
		}
		size := n / ng
		b := make([]float64, ng)
		for k := range b {
			b[k] = groupPer[l] * float64(size)
		}
		levels[l] = Level{GroupOf: gof, Budget: b}
	}
	en, err := NewHierLevels(g, a.UtilitySlice(), clusterPer*float64(n), levels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return en
}

func requireHierIdentical(t *testing.T, serial, parallel *HierEngine, round int, label string) {
	t.Helper()
	for i := range serial.p {
		if serial.p[i] != parallel.p[i] {
			t.Fatalf("%s round %d: p[%d] diverged: serial %v parallel %v", label, round, i, serial.p[i], parallel.p[i])
		}
	}
	for x := range serial.est {
		if serial.est[x] != parallel.est[x] {
			t.Fatalf("%s round %d: est[%d] (node %d family %d) diverged: serial %v parallel %v",
				label, round, x, x/serial.nl, x%serial.nl, serial.est[x], parallel.est[x])
		}
	}
	if serial.TotalPower() != parallel.TotalPower() {
		t.Fatalf("%s round %d: ΣP diverged: %v vs %v", label, round, serial.TotalPower(), parallel.TotalPower())
	}
	if serial.TotalUtility() != parallel.TotalUtility() {
		t.Fatalf("%s round %d: ΣU diverged: %v vs %v", label, round, serial.TotalUtility(), parallel.TotalUtility())
	}
}

func TestHierStepParallelBitwiseIdentical(t *testing.T) {
	forceParallelSmallN(t)
	counts := []int{4, 5, 10} // 200 nodes, levels: 20 racks × 10, 4 rows × 50
	const rounds = 150
	for _, w := range []int{1, 2, 3, 8} {
		serial := newTestHierLevels(t, counts, []float64{150, 152}, 148, 21)
		par := newTestHierLevels(t, counts, []float64{150, 152}, 148, 21)
		defer par.Close()
		for r := 0; r < rounds; r++ {
			actS := serial.Step()
			actP := par.StepParallel(w)
			if actS != actP {
				t.Fatalf("w=%d round %d: activity diverged: %v vs %v", w, r, actS, actP)
			}
			if r%30 == 0 {
				requireHierIdentical(t, serial, par, r, "nested-rings")
			}
		}
		requireHierIdentical(t, serial, par, rounds, "nested-rings")
	}
}

func TestHierStepParallelBitwiseIdenticalWithDeadNodes(t *testing.T) {
	forceParallelSmallN(t)
	counts := []int{4, 5, 10}
	const rounds = 120
	// Non-leader victims: a leaf ring survives losing one interior member
	// (it degrades to a path) and every leader stays up, so both the
	// cluster and every group remain connected.
	victims := map[int]int{40: 13, 80: 87}
	for _, w := range []int{1, 2, 3, 8} {
		serial := newTestHierLevels(t, counts, []float64{150, 152}, 148, 22)
		par := newTestHierLevels(t, counts, []float64{150, 152}, 148, 22)
		defer par.Close()
		for r := 0; r < rounds; r++ {
			if v, ok := victims[r]; ok {
				if err := serial.FailNode(v); err != nil {
					t.Fatal(err)
				}
				if err := par.FailNode(v); err != nil {
					t.Fatal(err)
				}
			}
			actS := serial.Step()
			actP := par.StepParallel(w)
			if actS != actP {
				t.Fatalf("w=%d round %d: activity diverged: %v vs %v", w, r, actS, actP)
			}
			if r%20 == 0 {
				requireHierIdentical(t, serial, par, r, "dead-nodes")
			}
			// Every round: a stale pool shard holding pre-shrink membership
			// would break a conservation identity immediately.
			if err := par.CheckInvariant(1e-6); err != nil {
				t.Fatalf("w=%d round %d (parallel): %v", w, r, err)
			}
		}
		requireHierIdentical(t, serial, par, rounds, "dead-nodes")
		if err := serial.CheckInvariant(1e-6); err != nil {
			t.Fatal(err)
		}
	}
}

// Both hier step paths must allocate nothing in steady state — at 100k–1M
// nodes per-round garbage would dominate the round itself.
func TestHierStepZeroAlloc(t *testing.T) {
	counts := []int{4, 5, 10}
	serial := newTestHierLevels(t, counts, []float64{150, 152}, 148, 23)
	if avg := testing.AllocsPerRun(50, func() { serial.Step() }); avg != 0 {
		t.Fatalf("serial hier Step allocates %v per round, want 0", avg)
	}

	forceParallelSmallN(t)
	par := newTestHierLevels(t, counts, []float64{150, 152}, 148, 23)
	defer par.Close()
	// AllocsPerRun's warm-up call absorbs the one-time pool construction.
	if avg := testing.AllocsPerRun(50, func() { par.StepParallel(4) }); avg != 0 {
		t.Fatalf("parallel hier Step allocates %v per round, want 0", avg)
	}
}

// Property: on random nested topologies and budget densities, the engine
// keeps every conservation identity (cluster and each group of each level)
// and never violates any budget at any round.
func TestHierMultiLevelInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		counts := []int{2 + rng.Intn(3), 2 + rng.Intn(3), 3 + rng.Intn(4)}
		g, gofs := topology.NestedRings(counts...)
		n := g.N()
		a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.1, 0.01, rng)
		if err != nil {
			return false
		}
		levels := make([]Level, len(gofs))
		for l, gof := range gofs {
			ng := 0
			for _, k := range gof {
				if k >= ng {
					ng = k + 1
				}
			}
			b := make([]float64, ng)
			for k := range b {
				b[k] = (130 + rng.Float64()*60) * float64(n/ng)
			}
			levels[l] = Level{GroupOf: gof, Budget: b}
		}
		cluster := (125 + rng.Float64()*60) * float64(n)
		en, err := NewHierLevels(g, a.UtilitySlice(), cluster, levels, Config{})
		if err != nil {
			return true // infeasible draw; nothing to test
		}
		for r := 0; r < 250; r++ {
			en.Step()
			if en.CheckInvariant(1e-5) != nil {
				return false
			}
			if en.TotalPower() > cluster {
				return false
			}
			for l := range levels {
				for k := 0; k < en.NumGroups(l); k++ {
					if en.GroupPower(l, k) > en.GroupBudget(l, k) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// The hier engine's quadratic fast path must be bitwise interchangeable
// with the generic interface path, like the flat engine's
// (TestQuadFastPathMatchesGenericRule).
func TestHierQuadFastPathMatchesGenericPath(t *testing.T) {
	counts := []int{3, 4, 6}
	fast := newTestHierLevels(t, counts, []float64{150, 152}, 148, 24)
	slow := newTestHierLevels(t, counts, []float64{150, 152}, 148, 24)
	if !fast.allQuad {
		t.Fatal("fixture should enable the quad fast path")
	}
	slow.allQuad = false
	for r := 0; r < 300; r++ {
		actF := fast.Step()
		actS := slow.Step()
		if actF != actS {
			t.Fatalf("round %d: activity diverged: quad %v generic %v", r, actF, actS)
		}
	}
	requireHierIdentical(t, fast, slow, 300, "quad-vs-generic")
}

// The incremental ΣP/ΣU aggregates must track a from-scratch recomputation.
func TestHierIncrementalAggregatesMatchFullSweep(t *testing.T) {
	en := newTestHierLevels(t, []int{3, 4, 6}, []float64{150, 152}, 148, 25)
	for r := 0; r < 500; r++ {
		en.Step()
	}
	var wantP, wantU float64
	for i, p := range en.p {
		if en.dead[i] {
			continue
		}
		wantP += p
		wantU += en.us[i].Value(p)
	}
	if d := en.TotalPower() - wantP; d > 1e-7 || d < -1e-7 {
		t.Fatalf("ΣP drifted: incremental %v, full sweep %v", en.TotalPower(), wantP)
	}
	if d := en.TotalUtility() - wantU; d > 1e-7 || d < -1e-7 {
		t.Fatalf("ΣU drifted: incremental %v, full sweep %v", en.TotalUtility(), wantU)
	}
}

// TestHierScaleSmoke is the CI bench-smoke: a 10k-node three-level cluster
// must sustain a nonzero round rate (each round well under a second) with
// every invariant intact. Run explicitly by the workflow's hier bench-smoke
// step; cheap enough to run everywhere.
func TestHierScaleSmoke(t *testing.T) {
	en := newTestHierLevels(t, []int{10, 25, 40}, []float64{152, 154}, 150, 20)
	defer en.Close()
	const rounds = 20
	start := time.Now()
	for r := 0; r < rounds; r++ {
		en.StepAuto()
	}
	elapsed := time.Since(start)
	perRound := elapsed / rounds
	rate := float64(rounds) / elapsed.Seconds()
	if rate <= 0 {
		t.Fatalf("rounds/sec must be nonzero, got %v", rate)
	}
	if perRound > time.Second {
		t.Fatalf("10k-node round took %v, want well under a second", perRound)
	}
	if err := en.CheckInvariant(1e-6 * 10000); err != nil {
		t.Fatal(err)
	}
	t.Logf("10k-node hier engine: %.0f rounds/sec (%v per round)", rate, perRound)
}

func TestNewHierLevelsValidation(t *testing.T) {
	g, gofs := topology.NestedRings(3, 4, 5)
	n := g.N()
	rng := rand.New(rand.NewSource(26))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	us := a.UtilitySlice()
	good := []Level{
		{GroupOf: gofs[0], Budget: make([]float64, 12)},
		{GroupOf: gofs[1], Budget: make([]float64, 3)},
	}
	for k := range good[0].Budget {
		good[0].Budget[k] = 160 * 5
	}
	for k := range good[1].Budget {
		good[1].Budget[k] = 162 * 20
	}
	if _, err := NewHierLevels(g, us, 158*float64(n), good, Config{}); err != nil {
		t.Fatalf("valid two-level build rejected: %v", err)
	}
	if _, err := NewHierLevels(g, us, 158*float64(n), nil, Config{}); err == nil {
		t.Fatal("zero levels must be rejected")
	}
	short := []Level{{GroupOf: gofs[0][:n-1], Budget: good[0].Budget}}
	if _, err := NewHierLevels(g, us, 158*float64(n), short, Config{}); err == nil {
		t.Fatal("short assignment must be rejected")
	}
	empty := []Level{{GroupOf: gofs[0], Budget: make([]float64, 13)}}
	copy(empty[0].Budget, good[0].Budget)
	if _, err := NewHierLevels(g, us, 158*float64(n), empty, Config{}); err == nil {
		t.Fatal("empty group must be rejected")
	}
	tight := []Level{{GroupOf: gofs[0], Budget: append([]float64(nil), good[0].Budget...)}}
	tight[0].Budget[3] = 100 // below 5 nodes' idle power
	if _, err := NewHierLevels(g, us, 158*float64(n), tight, Config{}); err == nil {
		t.Fatal("group budget below idle must be rejected")
	}
	many := make([]Level, topology.MaxGroupLevels)
	for l := range many {
		many[l] = Level{GroupOf: gofs[0], Budget: good[0].Budget}
	}
	if _, err := NewHierLevels(g, us, 158*float64(n), many, Config{}); err == nil {
		t.Fatal("too many levels must be rejected")
	}
	// Internally disconnected group: swap one node of rack 0 into rack 1.
	mixed := append([]int(nil), gofs[0]...)
	mixed[2] = 1
	bad := []Level{{GroupOf: mixed, Budget: good[0].Budget}}
	if _, err := NewHierLevels(g, us, 158*float64(n), bad, Config{}); err == nil {
		t.Fatal("internally disconnected group must be rejected")
	}
}

// FailNode must refuse a removal that splits a group internally even when
// the cluster graph stays connected, and must preserve every invariant on
// a legal removal.
func TestHierFailNode(t *testing.T) {
	// Two 3-node line groups bridged at both ends: removing an interior
	// node (1 or 4) keeps the cluster connected but splits its group.
	g := topology.NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {0, 3}, {2, 5}} {
		_ = g.AddEdge(e[0], e[1])
	}
	us := mkCluster(t, 6, 27)
	levels := []Level{{GroupOf: []int{0, 0, 0, 1, 1, 1}, Budget: []float64{160 * 3, 160 * 3}}}
	en, err := NewHierLevels(g, us, 155*6, levels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50; r++ {
		en.Step()
	}
	if err := en.FailNode(1); err == nil {
		t.Fatal("removing node 1 splits group 0 and must be rejected")
	}
	preB := en.Budget()
	preG := en.GroupBudget(0, 0)
	if err := en.FailNode(0); err != nil {
		t.Fatalf("removing group end node 0 must be legal: %v", err)
	}
	if en.Budget() >= preB || en.GroupBudget(0, 0) >= preG {
		t.Fatal("failure must shrink both the cluster and the group budget")
	}
	for r := 0; r < 200; r++ {
		en.Step()
		if err := en.CheckInvariant(1e-6); err != nil {
			t.Fatalf("post-failure round %d: %v", r, err)
		}
	}
	if en.TotalPower() > en.Budget() {
		t.Fatal("post-failure cluster budget violated")
	}
	if en.GroupPower(0, 0) > en.GroupBudget(0, 0) {
		t.Fatal("post-failure group budget violated")
	}
}
