package diba

import (
	"math/rand"
	"testing"
	"testing/quick"

	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// rackTopology builds a graph whose racks are internally ringed and whose
// rack leaders (first member of each rack) form a cluster ring.
func rackTopology(nRacks, perRack int) (*topology.Graph, Racks) {
	n := nRacks * perRack
	g := topology.NewGraph(n)
	rackOf := make([]int, n)
	for k := 0; k < nRacks; k++ {
		base := k * perRack
		for j := 0; j < perRack; j++ {
			rackOf[base+j] = k
			if perRack > 1 {
				_ = g.AddEdge(base+j, base+(j+1)%perRack)
			}
		}
	}
	for k := 0; k < nRacks; k++ {
		_ = g.AddEdge(k*perRack, ((k+1)%nRacks)*perRack)
	}
	return g, Racks{RackOf: rackOf}
}

func hierFixture(t *testing.T, nRacks, perRack int, rackBudgetPer, clusterPer float64, seed int64) (*HierEngine, []workload.Utility, solver.Hierarchy) {
	t.Helper()
	g, racks := rackTopology(nRacks, perRack)
	n := nRacks * perRack
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	us := a.UtilitySlice()
	racks.RackBudget = make([]float64, nRacks)
	for k := range racks.RackBudget {
		racks.RackBudget[k] = rackBudgetPer * float64(perRack)
	}
	en, err := NewHier(g, us, clusterPer*float64(n), racks, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sh := solver.Hierarchy{RackOf: racks.RackOf, RackBudget: racks.RackBudget}
	return en, us, sh
}

func TestNewHierValidation(t *testing.T) {
	g, racks := rackTopology(4, 5)
	us := mkCluster(t, 20, 61)
	racks.RackBudget = []float64{900, 900, 900, 900}
	if _, err := NewHier(g, us[:10], 20*170, racks, Config{}); err == nil {
		t.Fatal("size mismatch must be rejected")
	}
	if _, err := NewHier(g, us, 500, racks, Config{}); err == nil {
		t.Fatal("infeasible cluster budget must be rejected")
	}
	bad := Racks{RackOf: racks.RackOf, RackBudget: []float64{900, 900, 900, 100}}
	if _, err := NewHier(g, us, 20*170, bad, Config{}); err == nil {
		t.Fatal("rack budget below rack idle power must be rejected")
	}
	wrongRack := Racks{RackOf: make([]int, 20), RackBudget: []float64{900, 900}}
	for i := range wrongRack.RackOf {
		wrongRack.RackOf[i] = 3 // out of range
	}
	if _, err := NewHier(g, us, 20*170, wrongRack, Config{}); err == nil {
		t.Fatal("invalid rack index must be rejected")
	}
	// Internally disconnected rack: assign alternating nodes of one ring
	// rack to two racks.
	g2, racks2 := rackTopology(2, 6)
	racks2.RackBudget = []float64{1200, 1200}
	bad2 := append([]int(nil), racks2.RackOf...)
	bad2[1] = 1 // node 1 sits inside rack 0's ring but belongs to rack 1
	if _, err := NewHier(g2, us[:12], 12*170, Racks{RackOf: bad2, RackBudget: racks2.RackBudget}, Config{}); err == nil {
		t.Fatal("internally disconnected rack must be rejected")
	}
}

func TestHierInvariantsEveryRound(t *testing.T) {
	en, _, _ := hierFixture(t, 5, 8, 150, 145, 62)
	for k := 0; k < 2000; k++ {
		en.Step()
		if err := en.CheckInvariant(1e-6); err != nil {
			t.Fatalf("round %d: %v", k, err)
		}
		// Both constraint families respected every round.
		if en.TotalPower() > en.Budget() {
			t.Fatalf("round %d: cluster budget violated", k)
		}
		for rk := 0; rk < en.NumGroups(0); rk++ {
			if en.RackPower(rk) > en.GroupBudget(0, rk) {
				t.Fatalf("round %d: rack %d PDU violated", k, rk)
			}
		}
	}
}

func TestHierConvergesToHierarchicalOptimum(t *testing.T) {
	// Tight rack budgets genuinely bind: the flat optimum is infeasible
	// and the engine must find the rack-constrained one.
	en, us, sh := hierFixture(t, 5, 8, 150, 160, 63)
	opt, err := solver.OptimalHierarchical(us, 160*40, sh)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the rack constraints actually bite.
	flat, err := solver.Optimal(us, 160*40)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Utility <= opt.Utility {
		t.Fatal("fixture broken: rack constraints do not bind")
	}
	res := en.RunToTarget(opt.Utility, 0.99, 30000)
	if !res.Converged {
		t.Fatalf("hier engine did not converge (ratio %v)", res.Utility/opt.Utility)
	}
	if res.Utility > opt.Utility+1e-6 {
		t.Fatal("cannot beat the rack-constrained optimum")
	}
}

func TestHierWithSlackRacksMatchesFlat(t *testing.T) {
	// Generous rack budgets reduce the problem to plain DiBA.
	en, us, _ := hierFixture(t, 5, 8, 400, 160, 64)
	flat, err := solver.Optimal(us, 160*40)
	if err != nil {
		t.Fatal(err)
	}
	res := en.RunToTarget(flat.Utility, 0.99, 30000)
	if !res.Converged {
		t.Fatalf("slack-rack hier engine must match flat optimum (ratio %v)", res.Utility/flat.Utility)
	}
}

func TestOptimalHierarchicalAgainstBruteForce(t *testing.T) {
	// Two racks × two nodes, grid cross-check.
	q1, _ := workload.NewQuadratic(0, 6, -0.02, 110, 200)
	q2, _ := workload.NewQuadratic(0, 3, -0.006, 110, 200)
	q3, _ := workload.NewQuadratic(0, 5, -0.015, 110, 200)
	q4, _ := workload.NewQuadratic(0, 2, -0.004, 110, 200)
	us := []workload.Utility{q1, q2, q3, q4}
	h := solver.Hierarchy{RackOf: []int{0, 0, 1, 1}, RackBudget: []float64{300, 330}}
	budget := 600.0
	res, err := solver.OptimalHierarchical(us, budget, h)
	if err != nil {
		t.Fatal(err)
	}
	best := -1.0
	for p1 := 110.0; p1 <= 190; p1 += 1 {
		for p3 := 110.0; p3 <= 200; p3 += 1 {
			p2 := 300 - p1
			p4min := 110.0
			p4 := budget - p1 - p2 - p3
			if p4 > 330-p3 {
				p4 = 330 - p3
			}
			if p2 < 110 || p2 > 200 || p4 < p4min || p4 > 200 {
				continue
			}
			v := q1.Value(p1) + q2.Value(p2) + q3.Value(p3) + q4.Value(p4)
			if v > best {
				best = v
			}
		}
	}
	if res.Utility < best-0.01*best {
		t.Fatalf("hierarchical solver %v below grid search %v", res.Utility, best)
	}
}

func TestOptimalHierarchicalValidation(t *testing.T) {
	us := mkCluster(t, 4, 65)
	if _, err := solver.OptimalHierarchical(nil, 100, solver.Hierarchy{}); err == nil {
		t.Fatal("empty must error")
	}
	h := solver.Hierarchy{RackOf: []int{0, 0, 1, 1}, RackBudget: []float64{100, 500}}
	if _, err := solver.OptimalHierarchical(us, 4*180, h); err == nil {
		t.Fatal("rack below idle must error")
	}
	h2 := solver.Hierarchy{RackOf: []int{0, 0, 1, 1}, RackBudget: []float64{500, 500}}
	if _, err := solver.OptimalHierarchical(us, 100, h2); err == nil {
		t.Fatal("cluster below idle must error")
	}
	h3 := solver.Hierarchy{RackOf: []int{0, 0, 5, 1}, RackBudget: []float64{500, 500}}
	if _, err := solver.OptimalHierarchical(us, 4*180, h3); err == nil {
		t.Fatal("bad rack index must error")
	}
}

// Property: on random rack structures and budgets, the hierarchical engine
// keeps both conservation identities and never violates any budget at any
// round.
func TestHierInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nRacks := 2 + rng.Intn(4)
		perRack := 3 + rng.Intn(6)
		g, racks := rackTopology(nRacks, perRack)
		n := nRacks * perRack
		a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.1, 0.01, rng)
		if err != nil {
			return false
		}
		us := a.UtilitySlice()
		racks.RackBudget = make([]float64, nRacks)
		for k := range racks.RackBudget {
			racks.RackBudget[k] = (130 + rng.Float64()*60) * float64(perRack)
		}
		cluster := (125 + rng.Float64()*60) * float64(n)
		en, err := NewHier(g, us, cluster, racks, Config{})
		if err != nil {
			return true // infeasible draw; nothing to test
		}
		for k := 0; k < 300; k++ {
			en.Step()
			if en.CheckInvariant(1e-5) != nil {
				return false
			}
			if en.TotalPower() > cluster {
				return false
			}
			for rk := range racks.RackBudget {
				if en.RackPower(rk) > racks.RackBudget[rk] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
