package diba

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Fault injection. The paper's core argument for decentralization is fault
// isolation, so the failure paths must be as testable as the happy path.
// FaultTransport decorates any Transport with seeded, deterministic fault
// injection: delay, duplication, reordering, link partitions, permanent
// message loss, and endpoint crashes. Every random decision is drawn from a
// per-directed-link RNG seeded by (plan seed, from, to) in send order, so a
// given seed always yields the same fault schedule on every link regardless
// of goroutine interleaving — chaos runs are reproducible bug reports.
//
// Fidelity notes. Delay, duplication and reordering model what reliable
// transports actually do under congestion and reconnection, and BSP agents
// are provably insensitive to them (gather is order-independent and
// deduplicating), so a chaos run under those faults must produce bitwise
// the same result as a clean run — the tests pin that. A partition is a
// link outage with buffering: messages are held and flushed when the window
// ends, which is how a TCP link with retransmission behaves. Permanent
// single-message loss (DropProb) cannot happen on a healthy reliable link —
// it models crash-truncated streams — so it stalls plain BSP agents by
// design; use it only with the failure detector enabled.

// ErrCrashed is returned by a FaultTransport endpoint once its configured
// crash point has been reached: the node is dead, and the injected error is
// how the "process" discovers it (a real crashed process simply stops).
var ErrCrashed = errors.New("diba: endpoint crashed (fault injection)")

// FaultPlan is a deterministic, seeded fault schedule shared by all
// endpoints of one cluster. The zero value injects nothing.
type FaultPlan struct {
	// Seed drives every injection decision. Two runs with equal plans see
	// identical per-link fault schedules.
	Seed int64
	// DelayProb is the probability a message is held for a uniform duration
	// in (0, MaxDelay] before delivery.
	DelayProb float64
	MaxDelay  time.Duration
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// ReorderProb is the probability a message is held back and delivered
	// after the next message on the same link (a flush timer bounds the
	// hold so a final message cannot be withheld forever).
	ReorderProb float64
	// DropProb is the probability a message is silently lost, permanently.
	// See the package note: this stalls BSP agents unless failure detection
	// is on.
	DropProb float64
	// CrashAfterSends, per node id, crashes the endpoint after that many
	// successful sends: the send that crosses the threshold and everything
	// after it fail with ErrCrashed. Mid-round thresholds truncate a
	// broadcast partway — the hardest failure mode for the budget
	// reconciliation, which must then converge on the latest frozen state
	// any survivor observed.
	CrashAfterSends map[int]int
	// Partitions are timed link outages (both directions); held messages
	// flush when the window closes.
	Partitions []Partition
	// SlowLinks impose persistent gray-failure latency on specific links
	// (both directions): messages still arrive — eventually — which is
	// exactly what binary alive/dead detection cannot see.
	SlowLinks []SlowLink
	// SlowNodes impose a SlowSpec on every lane touching the node (either
	// direction) — the degraded-node mode: failing NIC, thermal throttle,
	// GC-stalling daemon.
	SlowNodes map[int]SlowSpec

	state *faultState
	once  sync.Once
}

// SlowSpec describes one persistent gray-slowness regime. All fields are
// deterministic functions of the plan seed and the fabric clock, like every
// other injection mode. The zero value injects nothing.
type SlowSpec struct {
	// Delay is the constant extra latency added to every affected message
	// once the spec is active.
	Delay time.Duration
	// Jitter adds a uniform extra [0, Jitter) per message on top of Delay,
	// drawn from the lane RNG (ramping jitter: combine with RampOver).
	Jitter time.Duration
	// RampOver, when positive, scales Delay linearly from 0 to full over
	// this window after Start — a gradually degrading component rather
	// than a step change.
	RampOver time.Duration
	// Period and On make the slowness flap: within each Period after
	// Start, the spec is active for the first On and healthy for the rest.
	// Period = 0 means always active after Start.
	Period time.Duration
	On     time.Duration
	// Start is the activation offset from the fabric's first use.
	Start time.Duration
}

// SlowLink binds a SlowSpec to one bidirectional link.
type SlowLink struct {
	A, B int
	SlowSpec
}

// Partition is a bidirectional link outage between nodes A and B, starting
// Start after the fabric's first use and lasting Dur.
type Partition struct {
	A, B  int
	Start time.Duration
	Dur   time.Duration
}

type faultState struct {
	mu      sync.Mutex
	lanes   map[[2]int]*laneState
	sent    map[int]int
	crashed map[int]bool
	start   time.Time
	wg      sync.WaitGroup
	closed  bool
}

type laneState struct {
	rng  *rand.Rand
	held []Message // partition buffer or reorder hold, in order
	// reorderHold marks the held buffer as a reorder swap: the next send
	// ships before it. A partition backlog (reorderHold false) ships ahead
	// of the next send instead, preserving order.
	reorderHold bool
	seq         uint64 // guards the flush timer
}

func (p *FaultPlan) runtime() *faultState {
	p.once.Do(func() {
		p.state = &faultState{
			lanes:   make(map[[2]int]*laneState),
			sent:    make(map[int]int),
			crashed: make(map[int]bool),
			start:   time.Now(),
		}
	})
	return p.state
}

// laneSeed mixes the plan seed with the directed link identity (splitmix64
// finalizer) so each lane's decision stream is independent and stable.
func laneSeed(seed int64, from, to int) int64 {
	z := uint64(seed) ^ (uint64(from)+1)*0x9e3779b97f4a7c15 ^ (uint64(to)+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

func (s *faultState) lane(seed int64, from, to int) *laneState {
	key := [2]int{from, to}
	l := s.lanes[key]
	if l == nil {
		l = &laneState{rng: rand.New(rand.NewSource(laneSeed(seed, from, to)))}
		s.lanes[key] = l
	}
	return l
}

// FaultTransport wraps one endpoint of a cluster under a shared FaultPlan.
type FaultTransport struct {
	inner Transport
	id    int
	plan  *FaultPlan
}

// NewFaultTransport decorates inner (the endpoint of node id) with the
// plan's fault schedule. All endpoints of one cluster must share the same
// *FaultPlan value.
func NewFaultTransport(inner Transport, id int, plan *FaultPlan) *FaultTransport {
	plan.runtime()
	return &FaultTransport{inner: inner, id: id, plan: plan}
}

// inPartition reports whether the from↔to link is inside an outage window
// at time now.
func (p *FaultPlan) inPartition(from, to int, now time.Duration) bool {
	for _, pt := range p.Partitions {
		if (pt.A == from && pt.B == to) || (pt.A == to && pt.B == from) {
			if now >= pt.Start && now < pt.Start+pt.Dur {
				return true
			}
		}
	}
	return false
}

// Send applies the lane's next scheduled faults to m and forwards the
// survivors to the inner transport.
func (ft *FaultTransport) Send(to int, m Message) error {
	p := ft.plan
	s := p.runtime()
	s.mu.Lock()
	if s.crashed[ft.id] {
		s.mu.Unlock()
		return ErrCrashed
	}
	if limit, ok := p.CrashAfterSends[ft.id]; ok && s.sent[ft.id] >= limit {
		s.crashed[ft.id] = true
		s.mu.Unlock()
		return ErrCrashed
	}
	s.sent[ft.id]++
	l := s.lane(p.Seed, ft.id, to)

	// Draw the lane's decisions in a fixed order so the schedule depends
	// only on (seed, link, message index).
	drop := p.DropProb > 0 && l.rng.Float64() < p.DropProb
	dup := p.DupProb > 0 && l.rng.Float64() < p.DupProb
	var delay time.Duration
	if p.DelayProb > 0 && l.rng.Float64() < p.DelayProb && p.MaxDelay > 0 {
		delay = time.Duration(1 + l.rng.Int63n(int64(p.MaxDelay)))
	}
	reorder := p.ReorderProb > 0 && l.rng.Float64() < p.ReorderProb
	// Gray slowness draws last so the drop/dup/delay/reorder schedule for a
	// given seed is bitwise identical whether or not slow specs are set.
	delay += p.graySlowDelay(l, ft.id, to, time.Since(s.start))

	if drop {
		s.mu.Unlock()
		return nil
	}

	// A message arriving on a partitioned link queues behind the outage
	// (any reorder hold joins the backlog, losing its swap).
	if p.inPartition(ft.id, to, time.Since(s.start)) {
		l.held = append(l.held, m)
		l.reorderHold = false
		l.seq++
		ft.scheduleFlush(s, l, to, ft.healDelay(ft.id, to, time.Since(s.start)))
		s.mu.Unlock()
		return nil
	}

	if reorder && len(l.held) == 0 {
		// Hold this message back; it ships after the NEXT send on the lane
		// (or after the flush timer, so a stream's last message cannot be
		// withheld forever).
		l.held = append(l.held, m)
		l.reorderHold = true
		l.seq++
		ft.scheduleFlush(s, l, to, maxDuration(p.MaxDelay, 5*time.Millisecond))
		s.mu.Unlock()
		return nil
	}

	// Release whatever the lane was holding: a healed partition backlog
	// ships before this message (order preserved); a reorder hold ships
	// after it (the swap).
	pending := l.held
	swap := l.reorderHold
	l.held = nil
	l.reorderHold = false
	l.seq++
	s.mu.Unlock()
	if !swap {
		for _, hm := range pending {
			if err := ft.deliver(to, hm, 0, false); err != nil {
				return err
			}
		}
	}
	err := ft.deliver(to, m, delay, dup)
	if swap {
		for _, hm := range pending {
			if e := ft.deliver(to, hm, 0, false); err == nil {
				err = e
			}
		}
	}
	return err
}

// graySlowDelay returns the extra gray-failure latency imposed on a message
// crossing the from→to lane at fabric time now: the worst applicable spec
// among the link's own entry and either endpoint's degraded-node entry.
// Caller holds s.mu (jitter comes from the lane RNG).
func (p *FaultPlan) graySlowDelay(l *laneState, from, to int, now time.Duration) time.Duration {
	var worst time.Duration
	consider := func(spec SlowSpec) {
		if d := spec.delayAt(now, l.rng); d > worst {
			worst = d
		}
	}
	if spec, ok := p.SlowNodes[from]; ok {
		consider(spec)
	}
	if spec, ok := p.SlowNodes[to]; ok {
		consider(spec)
	}
	for _, sl := range p.SlowLinks {
		if (sl.A == from && sl.B == to) || (sl.A == to && sl.B == from) {
			consider(sl.SlowSpec)
		}
	}
	return worst
}

// delayAt evaluates the spec at fabric offset now. The jitter draw happens
// whenever Jitter > 0 — even outside the active window or before Start — so
// the lane's decision stream consumes a fixed number of draws per message
// and the schedule stays deterministic across flapping phases.
func (spec SlowSpec) delayAt(now time.Duration, rng *rand.Rand) time.Duration {
	var jitter time.Duration
	if spec.Jitter > 0 {
		jitter = time.Duration(rng.Int63n(int64(spec.Jitter)))
	}
	if now < spec.Start {
		return 0
	}
	since := now - spec.Start
	if spec.Period > 0 && spec.On > 0 && since%spec.Period >= spec.On {
		return 0
	}
	d := spec.Delay
	if spec.RampOver > 0 && since < spec.RampOver {
		d = time.Duration(float64(d) * (float64(since) / float64(spec.RampOver)))
	}
	return d + jitter
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// healDelay returns how long until the current partition window on the link
// closes.
func (ft *FaultTransport) healDelay(from, to int, now time.Duration) time.Duration {
	var d time.Duration = 5 * time.Millisecond
	for _, pt := range ft.plan.Partitions {
		if (pt.A == from && pt.B == to) || (pt.A == to && pt.B == from) {
			if end := pt.Start + pt.Dur; now < end && end-now > d {
				d = end - now
			}
		}
	}
	return d
}

// scheduleFlush arms a timer that delivers the lane's held messages if no
// later send has flushed them first. Caller holds s.mu.
func (ft *FaultTransport) scheduleFlush(s *faultState, l *laneState, to int, after time.Duration) {
	seq := l.seq
	s.wg.Add(1)
	time.AfterFunc(after, func() {
		defer s.wg.Done()
		s.mu.Lock()
		if l.seq != seq || len(l.held) == 0 {
			s.mu.Unlock()
			return
		}
		held := l.held
		l.held = nil
		s.mu.Unlock()
		for _, hm := range held {
			_ = ft.inner.Send(to, hm)
		}
	})
}

// deliver forwards m (and an optional duplicate) after an optional delay.
func (ft *FaultTransport) deliver(to int, m Message, delay time.Duration, dup bool) error {
	send := func() error {
		err := ft.inner.Send(to, m)
		if dup {
			_ = ft.inner.Send(to, m)
		}
		return err
	}
	if delay <= 0 {
		return send()
	}
	s := ft.plan.runtime()
	s.wg.Add(1)
	time.AfterFunc(delay, func() {
		defer s.wg.Done()
		_ = send()
	})
	return nil
}

// Recv forwards to the inner transport, surfacing the crash once the
// endpoint is dead so a crashed "process" stops instead of blocking.
func (ft *FaultTransport) Recv() (Message, error) {
	if ft.crashedNow() {
		return Message{}, ErrCrashed
	}
	return ft.inner.Recv()
}

// TryRecv forwards the non-blocking receive to the inner transport,
// surfacing the crash like Recv does.
func (ft *FaultTransport) TryRecv() (Message, bool, error) {
	if ft.crashedNow() {
		return Message{}, false, ErrCrashed
	}
	return tryRecv(ft.inner)
}

// RecvTimeout forwards deadline-aware receive to the inner transport.
func (ft *FaultTransport) RecvTimeout(d time.Duration) (Message, error) {
	if ft.crashedNow() {
		return Message{}, ErrCrashed
	}
	return recvTimeout(ft.inner, d)
}

// LastHeard delegates to the inner transport's liveness clock, when it has
// one.
func (ft *FaultTransport) LastHeard(peer int) (time.Time, bool) {
	if pl, ok := ft.inner.(PeerLiveness); ok {
		return pl.LastHeard(peer)
	}
	return time.Time{}, false
}

// WireStats passes the inner transport's wire-level traffic counters
// through, so chaos experiments can meter bytes on the real socket beneath
// the injected faults. A non-metering inner transport reports nil.
func (ft *FaultTransport) WireStats() map[int]WireStats {
	if wa, ok := ft.inner.(WireAccountant); ok {
		return wa.WireStats()
	}
	return nil
}

// WireTotals passes the inner transport's summed traffic counters through.
func (ft *FaultTransport) WireTotals() WireStats {
	if wa, ok := ft.inner.(WireAccountant); ok {
		return wa.WireTotals()
	}
	return WireStats{}
}

func (ft *FaultTransport) crashedNow() bool {
	s := ft.plan.runtime()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed[ft.id]
}

// Crashed reports whether node id's endpoint has hit its crash point.
func (p *FaultPlan) Crashed(id int) bool {
	s := p.runtime()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed[id]
}

// Close closes the inner transport. The plan's in-flight timers drain via
// Quiesce, not here, because endpoints share the plan.
func (ft *FaultTransport) Close() error { return ft.inner.Close() }

// Quiesce blocks until every delayed or held delivery scheduled so far has
// fired. Call it before tearing a test cluster down so no timer goroutine
// outlives the run.
func (p *FaultPlan) Quiesce() {
	p.runtime().wg.Wait()
}

// String summarizes the plan for logs.
func (p *FaultPlan) String() string {
	return fmt.Sprintf("seed=%d delay=%.2f(max %v) dup=%.2f reorder=%.2f drop=%.2f crash=%v partitions=%d slowlinks=%d slownodes=%d",
		p.Seed, p.DelayProb, p.MaxDelay, p.DupProb, p.ReorderProb, p.DropProb, p.CrashAfterSends,
		len(p.Partitions), len(p.SlowLinks), len(p.SlowNodes))
}

// IsolateNode builds the partition windows that cut node off from every
// peer for [start, start+dur) — the chaos plan that targets an aggregate
// agent without killing its process (it keeps running, deposed and blind).
func IsolateNode(node int, peers []int, start, dur time.Duration) []Partition {
	out := make([]Partition, 0, len(peers))
	for _, p := range peers {
		if p == node {
			continue
		}
		out = append(out, Partition{A: node, B: p, Start: start, Dur: dur})
	}
	return out
}

// SeverGroups builds the partition windows that cut every a-member off
// from every b-member for [start, start+dur) — an inter-level outage that
// leaves both groups internally healthy but unable to exchange leases.
func SeverGroups(a, b []int, start, dur time.Duration) []Partition {
	out := make([]Partition, 0, len(a)*len(b))
	for _, x := range a {
		for _, y := range b {
			if x == y {
				continue
			}
			out = append(out, Partition{A: x, B: y, Start: start, Dur: dur})
		}
	}
	return out
}
