package diba

import (
	"math"
	"sync/atomic"
)

// Telemetry hardening for the agent loop. The consensus arithmetic (p, e)
// is driven purely by the utility model and neighbor exchanges — a sensor
// cannot corrupt it. What a bad sensor CAN do is make the agent apply its
// computed cap to hardware it can no longer verify. The TelemetryGuard
// closes that gap: after every round the agent polls its (filtered) power
// sensor; while the reading is invalid it freezes the cap it actually
// applies at the lowest recently agreed value, widens it by a safety
// margin, and beacons degraded health to its peers. The consensus state is
// deliberately untouched — a degraded agent keeps converging with the
// cluster, it just refuses to actuate beyond what it can verify, so the
// fault-free byte-identical guarantees of the round arithmetic hold with
// the guard installed.

// HealthEvent reports a telemetry-health transition for observability.
type HealthEvent struct {
	Round int
	// Degraded is the new state: true when the sensor went invalid.
	Degraded bool
	// AppliedW is the cap the agent is actually applying.
	AppliedW float64
}

// TelemetryGuard configures the agent's local sensor check. Install with
// Agent.SetTelemetryGuard before the first round.
type TelemetryGuard struct {
	// Measure polls the server's power-sensor chain: expectedW is the
	// agent's current cap; the return values are the filtered reading and
	// whether it may be trusted (see internal/sensor.Pipeline.Measure —
	// any func with this shape fits). Required.
	Measure func(expectedW float64) (float64, bool)
	// MarginW is how far below the frozen cap the applied cap sits while
	// the sensor is invalid (default 2 W) — the local analogue of the
	// emergency shed margin.
	MarginW float64
	// BeaconEvery is how often (in rounds) a degraded agent re-beacons its
	// health over its links (default 8). Transitions always beacon.
	BeaconEvery int
	// OnEvent, when set, observes health transitions.
	OnEvent func(HealthEvent)
}

// telemetryState is the agent-side runtime state of the guard. applied and
// degraded are atomics so an external monitor (the watchdog loop, a status
// endpoint) can read them while the agent goroutine runs rounds.
type telemetryState struct {
	guard       TelemetryGuard
	applied     atomic.Uint64 // Float64bits of the applied cap
	degraded    atomic.Bool
	sinceBeacon int
	peerBad     map[int]bool
}

// SetTelemetryGuard installs the local sensor check. Call before the first
// round. A nil Measure func disables the guard.
func (a *Agent) SetTelemetryGuard(g TelemetryGuard) {
	if g.Measure == nil {
		a.tel = nil
		return
	}
	if g.MarginW <= 0 {
		g.MarginW = 2
	}
	if g.BeaconEvery <= 0 {
		g.BeaconEvery = 8
	}
	a.tel = &telemetryState{guard: g, peerBad: make(map[int]bool)}
	a.tel.applied.Store(math.Float64bits(a.p))
}

// AppliedCap returns the cap the agent is actually applying to its server:
// the consensus cap when telemetry is healthy, the frozen-and-margined cap
// while degraded. Safe to call from other goroutines. Without a guard it
// is the consensus cap.
func (a *Agent) AppliedCap() float64 {
	if a.tel == nil {
		return a.p
	}
	return math.Float64frombits(a.tel.applied.Load())
}

// Degraded reports whether the agent's telemetry is currently invalid.
// Safe to call from other goroutines.
func (a *Agent) Degraded() bool {
	return a.tel != nil && a.tel.degraded.Load()
}

// DegradedPeers returns the ids whose most recent health beacon announced
// degraded telemetry. Only valid from the agent's own goroutine.
func (a *Agent) DegradedPeers() []int {
	if a.tel == nil {
		return nil
	}
	out := make([]int, 0, len(a.tel.peerBad))
	for id, bad := range a.tel.peerBad {
		if bad {
			out = append(out, id)
		}
	}
	return out
}

// applyTelemetry runs after each round's estimate update: poll the sensor,
// decide what cap to actually apply, beacon health transitions.
func (a *Agent) applyTelemetry() {
	t := a.tel
	if t == nil {
		return
	}
	_, ok := t.guard.Measure(a.p)
	wasBad := t.degraded.Load()
	if ok {
		t.applied.Store(math.Float64bits(a.p))
		if wasBad {
			t.degraded.Store(false)
			a.beaconHealth(false)
			t.sinceBeacon = 0
			a.event("telemetry", a.ID, "sensor recovered; applying consensus cap")
			if t.guard.OnEvent != nil {
				t.guard.OnEvent(HealthEvent{Round: a.round, Degraded: false, AppliedW: a.p})
			}
		}
		return
	}
	// Invalid reading: freeze at the lowest verified cap, widened by the
	// margin, and never above what consensus currently grants. The floor is
	// the utility's own minimum — an unverifiable server sheds toward idle,
	// it does not switch off.
	frozen := math.Float64frombits(t.applied.Load())
	next := math.Min(frozen, a.p) - t.guard.MarginW
	if min := a.util.MinPower(); next < min {
		next = min
	}
	t.applied.Store(math.Float64bits(next))
	if !wasBad {
		t.degraded.Store(true)
		a.beaconHealth(true)
		t.sinceBeacon = 0
		a.event("telemetry", a.ID, "sensor invalid; freezing applied cap")
		if t.guard.OnEvent != nil {
			t.guard.OnEvent(HealthEvent{Round: a.round, Degraded: true, AppliedW: next})
		}
		return
	}
	t.sinceBeacon++
	if t.sinceBeacon >= t.guard.BeaconEvery {
		a.beaconHealth(true)
		t.sinceBeacon = 0
	}
}

// beaconHealth floods a health beacon over every live link. Best-effort:
// health is advisory, round progress never depends on it.
func (a *Agent) beaconHealth(degraded bool) {
	act := 0
	if degraded {
		act = 1
	}
	out := Message{Kind: MsgHealth, From: a.ID, Round: a.round, Act: act}
	for _, nb := range a.links() {
		_ = a.tr.Send(nb, out)
	}
}

// noteHealth records a peer's health beacon.
func (a *Agent) noteHealth(m Message) {
	if a.tel == nil {
		return
	}
	a.tel.peerBad[m.From] = m.Act == 1
}
