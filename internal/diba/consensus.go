package diba

import (
	"errors"

	"powercap/internal/topology"
)

// AverageConsensus runs classic diffusion averaging over the graph: every
// round each node moves χ·(z_j − z_i) along each edge, with χ safely below
// 1/(maxdeg+1). After enough rounds every node's value approaches the
// global mean of the inputs.
//
// In this repository it is the telemetry counterpart of the allocation
// algorithm: seeded with each node's power draw, it gives *every* node an
// estimate of the cluster's mean (hence total) draw with no coordinator —
// the same way DiBA's e-estimates spread budget information. The sum of
// the values is conserved exactly every round, so the estimates are never
// collectively biased.
func AverageConsensus(g *topology.Graph, values []float64, rounds int) ([]float64, error) {
	n := g.N()
	if n != len(values) {
		return nil, errors.New("diba: values length must match graph size")
	}
	if n == 0 {
		return nil, errors.New("diba: empty graph")
	}
	if !g.Connected() {
		return nil, errors.New("diba: consensus needs a connected graph")
	}
	chi := 1.0 / float64(g.MaxDegree()+1)
	cur := append([]float64(nil), values...)
	next := make([]float64, n)
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			v := cur[i]
			for _, j := range g.Neighbors(i) {
				v += chi * (cur[j] - cur[i])
			}
			next[i] = v
		}
		cur, next = next, cur
	}
	return cur, nil
}
