package diba

import (
	"math/rand"
	"sync"
	"testing"

	"powercap/internal/topology"
)

// adversarialTransport wraps a Transport and injects the duplicates a
// real network stack can produce on retransmit/reconnect; BSP agents must
// drop them and converge to the identical result. (Cross-sender
// reordering and ahead-of-round delivery are already exercised by the
// asynchronous goroutine scheduling: a fast neighbor legitimately runs a
// full round ahead.) Holding messages back is deliberately *not* done —
// an adversary that starves the last gather of a run would deadlock any
// blocking BSP implementation, ours included.
type adversarialTransport struct {
	inner Transport
	rng   *rand.Rand
	mu    sync.Mutex
}

func (a *adversarialTransport) Send(to int, m Message) error {
	if err := a.inner.Send(to, m); err != nil {
		return err
	}
	a.mu.Lock()
	dup := a.rng.Float64() < 0.25
	a.mu.Unlock()
	if dup {
		return a.inner.Send(to, m)
	}
	return nil
}

func (a *adversarialTransport) Recv() (Message, error) { return a.inner.Recv() }

func (a *adversarialTransport) Close() error { return a.inner.Close() }

func TestAgentsSurviveDuplicatesAndReordering(t *testing.T) {
	n := 16
	us := mkCluster(t, n, 95)
	g := topology.Ring(n)
	budget := 170.0 * float64(n)
	const rounds = 500

	// Reference: clean engine run.
	en, err := New(g, us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rounds; k++ {
		en.Step()
	}
	want := en.Alloc()

	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	// Mailboxes need room for the duplicates.
	net := NewChanNetwork(n, 128)
	states := make([]AgentState, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := &adversarialTransport{inner: net.Endpoint(i), rng: rand.New(rand.NewSource(int64(100 + i)))}
			a, err := NewAgent(i, g.NeighborsInts(i), us[i], budget, n, totalIdle, Config{}, tr)
			if err != nil {
				errs[i] = err
				return
			}
			states[i], errs[i] = a.Run(rounds)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	for i := range want {
		if states[i].Power != want[i] {
			t.Fatalf("node %d diverged under adversarial delivery: %v vs %v", i, states[i].Power, want[i])
		}
	}
}
