package diba

import (
	"errors"
	"sync"
	"testing"
	"time"

	"powercap/internal/workload"
)

// hierSample is one member's externally visible state after a round,
// recorded by the member's own goroutine (no cross-goroutine reads).
type hierSample struct {
	p, budget float64
	lease     int64
	frozen    bool
	agg       bool
	epoch     int
}

type hierRun struct {
	agents []*HierAgent
	hist   [][]hierSample
	errs   []error
}

// runHierCluster spins one goroutine per node, each driving its HierAgent
// for the given number of rounds (or until it crashes), and returns the
// final agents plus per-round histories. plan and fp may be nil for a
// fault-free run.
func runHierCluster(t *testing.T, topo HierTopo, pol HierPolicy, fp *FaultPolicy, plan *FaultPlan, us []workload.Utility, rounds int) *hierRun {
	t.Helper()
	n := len(us)
	net := NewChanNetwork(n, 1024)
	run := &hierRun{
		agents: make([]*HierAgent, n),
		hist:   make([][]hierSample, n),
		errs:   make([]error, n),
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var tr Transport = net.Endpoint(id)
			if plan != nil {
				tr = NewFaultTransport(tr, id, plan)
			}
			h, err := NewHierAgent(topo, pol, id, us[id], Config{}, tr)
			if err != nil {
				run.errs[id] = err
				return
			}
			if fp != nil {
				h.FaultPolicy(*fp)
			}
			run.agents[id] = h
			for r := 0; r < rounds; r++ {
				if err := h.Step(); err != nil {
					run.errs[id] = err
					_ = tr.Close() // a crashed daemon's socket dies with it
					return
				}
				run.hist[id] = append(run.hist[id], hierSample{
					p: h.ag.p, budget: h.ag.budget, lease: h.leaseMw,
					frozen: h.frozen, agg: h.aggActive, epoch: h.epoch,
				})
			}
		}(i)
	}
	wg.Wait()
	if plan != nil {
		plan.Quiesce()
	}
	return run
}

func hierTestTopo(t *testing.T) (HierTopo, []workload.Utility) {
	t.Helper()
	us := mkCluster(t, 9, 61)
	topo := HierTopo{
		Groups:  [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}},
		BudgetW: 9 * 170,
		IdleW:   workload.DefaultServer.IdleWatts,
	}
	return topo, us
}

// requireGroupView asserts every live member of a group ended with the
// same lease view, bitwise-equal budget views, and internal conservation
// against the leased budget.
func requireGroupView(t *testing.T, run *hierRun, members []int, dead map[int]bool, label string) int64 {
	t.Helper()
	first := -1
	var sumP, sumE float64
	for _, id := range members {
		if dead[id] {
			continue
		}
		h := run.agents[id]
		if first < 0 {
			first = id
		} else {
			ref := run.agents[first]
			if h.leaseMw != ref.leaseMw {
				t.Fatalf("%s: member %d lease %d != member %d lease %d", label, id, h.leaseMw, first, ref.leaseMw)
			}
			if h.ag.budget != ref.ag.budget {
				t.Fatalf("%s: member %d budget view %v != member %d %v (must be bitwise equal)",
					label, id, h.ag.budget, first, ref.ag.budget)
			}
			if h.epoch != ref.epoch {
				t.Fatalf("%s: member %d epoch %d != member %d %d", label, id, h.epoch, first, ref.epoch)
			}
		}
		sumP += h.ag.p
		sumE += h.ag.e
	}
	ref := run.agents[first]
	if gap := sumE - (sumP - ref.ag.budget); gap > 1e-6 || gap < -1e-6 {
		t.Fatalf("%s: group conservation violated: Σe − (Σp − b) = %v", label, gap)
	}
	if sumP > ref.ag.budget+1e-9 {
		t.Fatalf("%s: group power %v exceeds its budget view %v", label, sumP, ref.ag.budget)
	}
	return ref.leaseMw
}

// sumAggregateLeases adds up the acting aggregates' ledger identities —
// the quantity that must equal the cluster budget bitwise.
func sumAggregateLeases(t *testing.T, run *hierRun, aggs []int) int64 {
	t.Helper()
	var sum int64
	for _, id := range aggs {
		h := run.agents[id]
		if !h.Confirmed() {
			t.Fatalf("node %d is not a confirmed aggregate", id)
		}
		if got := h.ledger.Lease(); got != h.leaseMw {
			t.Fatalf("aggregate %d ledger lease %d != flooded lease %d", id, got, h.leaseMw)
		}
		sum += h.leaseMw
	}
	return sum
}

// TestHierAgentLeaseSteadyState runs the two-level runtime fault-free: the
// rank-0 aggregates renew leases, exchange demand over the upper ring and
// migrate budget between groups; nobody freezes, member views stay bitwise
// identical per group, and Σ(leases) == B exactly at quiescence.
func TestHierAgentLeaseSteadyState(t *testing.T) {
	checkGoroutineLeak(t)
	topo, us := hierTestTopo(t)
	pol := HierPolicy{TransferThresholdW: 2, MaxLeaseStepW: 25}
	run := runHierCluster(t, topo, pol, nil, nil, us, 240)
	for i, err := range run.errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	budgetMw := LeaseMilliwatts(topo.BudgetW)
	var sum int64
	for g, members := range topo.Groups {
		lease := requireGroupView(t, run, members, nil, "group "+string(rune('0'+g)))
		sum += lease
		for _, id := range members {
			h := run.agents[id]
			if h.Frozen() {
				t.Fatalf("member %d frozen in a fault-free run", id)
			}
			if h.Epoch() != 1 {
				t.Fatalf("member %d epoch %d, want 1 (no failover happened)", id, h.Epoch())
			}
			if (id == members[0]) != h.IsAggregate() {
				t.Fatalf("member %d aggregate=%v, want rank-0 only", id, h.IsAggregate())
			}
		}
	}
	if sum != budgetMw {
		t.Fatalf("Σ(leases) = %d mw, want exactly %d", sum, budgetMw)
	}
	if got := sumAggregateLeases(t, run, []int{0, 3, 6}); got != budgetMw {
		t.Fatalf("Σ over aggregate ledgers = %d, want %d", got, budgetMw)
	}
}

// TestHierAggregateKillFailoverReconcilesLeases is the tentpole's crash
// drill, in process: group 1's aggregate is crash-injected mid-run. The
// survivors detect it, reconcile the leaf budget by the frozen-state
// identity, elect the next rank, which rebuilds the transfer ledger from
// its upper-ring neighbors' echoes and resumes renewals under a fresh
// epoch — and Σ(leases) over the acting aggregates is exactly B again.
func TestHierAggregateKillFailoverReconcilesLeases(t *testing.T) {
	checkGoroutineLeak(t)
	topo, us := hierTestTopo(t)
	const victim = 3 // rank-0 of group 1
	pol := HierPolicy{TransferThresholdW: 2, MaxLeaseStepW: 25}
	plan := &FaultPlan{Seed: 19, DelayProb: 1.0, MaxDelay: 1500 * time.Microsecond,
		CrashAfterSends: map[int]int{victim: 301}}
	fp := FaultPolicy{GatherTimeout: 300 * time.Millisecond, Recover: true}
	run := runHierCluster(t, topo, pol, &fp, plan, us, 400)

	for i, err := range run.errs {
		if i == victim {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("victim error = %v, want injected crash", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	dead := map[int]bool{victim: true}
	var sum int64
	for g, members := range topo.Groups {
		sum += requireGroupView(t, run, members, dead, "group "+string(rune('0'+g)))
	}
	if budgetMw := LeaseMilliwatts(topo.BudgetW); sum != budgetMw {
		t.Fatalf("Σ(leases) after failover = %d mw, want exactly %d", sum, budgetMw)
	}
	// The successor is the next rank, confirmed, under a bumped epoch.
	succ := run.agents[4]
	if !succ.Confirmed() || succ.Epoch() < 2 {
		t.Fatalf("successor state: confirmed=%v epoch=%d, want confirmed at epoch >= 2",
			succ.Confirmed(), succ.Epoch())
	}
	if run.agents[5].IsAggregate() {
		t.Fatal("rank-2 member must not act as aggregate while rank-1 lives")
	}
	for _, id := range []int{4, 5} {
		got := run.agents[id].ag.DeadNodes()
		if len(got) != 1 || got[0] != victim {
			t.Fatalf("member %d dead set %v, want [%d]", id, got, victim)
		}
		if run.agents[id].Frozen() {
			t.Fatalf("member %d frozen after successful failover", id)
		}
	}
	if got := sumAggregateLeases(t, run, []int{0, 4, 6}); got != LeaseMilliwatts(topo.BudgetW) {
		t.Fatalf("Σ over aggregate ledgers = %d, want %d", got, LeaseMilliwatts(topo.BudgetW))
	}
}

// TestHierInterLevelPartitionFreezeAndHeal forces the lease-expiry path:
// group 1 is severed from the upper ring AND loses its aggregate inside
// the outage, so the successor stays an unconfirmed candidate, the lease
// TTL expires, and every surviving member freezes at the last leased
// budget minus the freeze margin — never the full cluster B. When the
// partition heals, the candidate syncs its ledger from the neighbors'
// echoes, confirms, re-floods, the group thaws, and Σ(leases) == B holds
// bitwise again. Transfers are disabled (threshold above any slack gap) so
// the per-round power sums are assertable against the static leases.
func TestHierInterLevelPartitionFreezeAndHeal(t *testing.T) {
	checkGoroutineLeak(t)
	topo, us := hierTestTopo(t)
	const victim = 3
	group1 := []int{3, 4, 5}
	others := []int{0, 1, 2, 6, 7, 8}
	pol := HierPolicy{LeaseTTL: 10, RenewEvery: 3, FreezeMarginW: 3, TransferThresholdW: 1e9}
	// The 3ms per-message delay paces rounds so the fixed wall-clock heal
	// lands well before the round budget runs out, with margin to spare on
	// slow (or race-instrumented) machines.
	plan := &FaultPlan{Seed: 23, DelayProb: 1.0, MaxDelay: 3 * time.Millisecond,
		CrashAfterSends: map[int]int{victim: 451},
		Partitions:      SeverGroups(group1, others, 100*time.Millisecond, 1200*time.Millisecond)}
	fp := FaultPolicy{GatherTimeout: 250 * time.Millisecond, Recover: true}
	run := runHierCluster(t, topo, pol, &fp, plan, us, 900)

	for i, err := range run.errs {
		if i == victim {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("victim error = %v, want injected crash", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	genesis, err := topo.GenesisMw()
	if err != nil {
		t.Fatal(err)
	}
	// Both orphaned survivors froze during the outage, at (or below, once
	// the dead leaf's share was reconciled away) lease minus margin.
	for _, id := range []int{4, 5} {
		froze := false
		for _, s := range run.hist[id] {
			if s.frozen {
				froze = true
				if s.lease != genesis[1] {
					t.Fatalf("member %d froze at lease %d, want last leased %d", id, s.lease, genesis[1])
				}
				if max := LeaseWatts(genesis[1]) - pol.FreezeMarginW; s.budget > max+1e-9 {
					t.Fatalf("member %d frozen budget view %v above lease-minus-margin %v", id, s.budget, max)
				}
			}
		}
		if !froze {
			t.Fatalf("member %d never froze during the inter-level outage", id)
		}
		if run.agents[id].Frozen() {
			t.Fatalf("member %d still frozen after the heal", id)
		}
	}
	// Healed: successor confirmed at a fresh epoch, leases exact.
	succ := run.agents[4]
	if !succ.Confirmed() || succ.Epoch() < 2 {
		t.Fatalf("successor confirmed=%v epoch=%d after heal", succ.Confirmed(), succ.Epoch())
	}
	dead := map[int]bool{victim: true}
	var sum int64
	for g, members := range topo.Groups {
		lease := requireGroupView(t, run, members, dead, "group "+string(rune('0'+g)))
		if lease != genesis[g] {
			t.Fatalf("group %d lease %d != genesis %d (transfers were disabled)", g, lease, genesis[g])
		}
		sum += lease
	}
	if budgetMw := LeaseMilliwatts(topo.BudgetW); sum != budgetMw {
		t.Fatalf("Σ(leases) after heal = %d, want exactly %d", sum, budgetMw)
	}
	// Degraded operation never overdrew: per-round live power stays under
	// B (plus the watchdog margin) through crash, freeze and heal. Groups
	// run independent BSP clocks, but with static leases each group is
	// individually bounded, so any index alignment of the histories is.
	budget := topo.BudgetW
	maxRounds := 0
	for _, hs := range run.hist {
		if len(hs) > maxRounds {
			maxRounds = len(hs)
		}
	}
	for r := 0; r < maxRounds; r++ {
		var sumP float64
		for id, hs := range run.hist {
			if r < len(hs) {
				sumP += hs[r].p
			} else if id != victim && len(hs) > 0 {
				sumP += hs[len(hs)-1].p
			}
		}
		if sumP > budget+3*emergencyShedMarginW+1e-6 {
			t.Fatalf("round %d: live ΣP = %v exceeds budget %v + margin", r, sumP, budget)
		}
	}
}

// TestHierSlowAggregateGrayDemoted is the gray-failure drill: group 1's
// rank-0 aggregate is compute-slow (paced by a sleep per step, the thermal
// throttle / GC-stall mode), not dead. Its straggler-tolerant members run
// ahead, starve of lease renewals, mark the leader gray well before the
// LeaseTTL freeze, and elect the next rank, which promotes and carries the
// deposition verdict in its lease floods — the victim itself learns it was
// deposed and stands down. The victim must never appear in anyone's dead
// set, and the healthy groups must be untouched.
func TestHierSlowAggregateGrayDemoted(t *testing.T) {
	checkGoroutineLeak(t)
	topo, us := hierTestTopo(t)
	const victim = 3 // rank-0 of group 1
	const rounds = 300
	// Sticky gray hold: once deposed the victim stays excluded for the
	// whole run, so the end state is stable (no retry flapping to race
	// the assertions against). Transfers off keeps leases static. The
	// victim renews every RenewEvery of its own ~20 ms rounds (~80 ms)
	// while its members pace ~7 ms rounds (3 ms sleep + ~4 ms adaptive
	// deadline on the victim's lane), so the renewal gap they observe
	// (~11 rounds) clears DemoteAfter decisively — early in the run,
	// while the victim is still stepping and can hear the verdict — yet
	// stays far under the LeaseTTL freeze.
	pol := HierPolicy{LeaseTTL: 30, DemoteAfter: 6, GrayHold: 1 << 20, TransferThresholdW: 1e9}
	fp := FaultPolicy{
		GatherTimeout:     2 * time.Second,
		Recover:           true,
		StragglerTolerant: true,
		DeadlineMin:       time.Millisecond,
		DeadlineMax:       4 * time.Millisecond,
		MaxLag:            6,
	}
	n := len(us)
	net := NewChanNetwork(n, 4096)
	agents := make([]*HierAgent, n)
	errs := make([]error, n)
	froze := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h, err := NewHierAgent(topo, pol, id, us[id], Config{}, net.Endpoint(id))
			if err != nil {
				errs[id] = err
				return
			}
			h.FaultPolicy(fp)
			agents[id] = h
			// Every agent is paced so the whole cluster stays live for the
			// full drill (an unpaced healthy group would finish its rounds
			// in milliseconds and stop acking the successor's ledger-sync
			// hellos). The victim crawls at ~3x its peers' full round time
			// and runs a sixth of the rounds: alive, beaconing, answering —
			// but starving its group of renewals for the whole run.
			steps, pace := rounds, 3*time.Millisecond
			if id == victim {
				steps, pace = rounds/6, 20*time.Millisecond
			}
			for r := 0; r < steps; r++ {
				time.Sleep(pace)
				if err := h.Step(); err != nil {
					errs[id] = err
					return
				}
				froze[id] = froze[id] || h.Frozen()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}

	// The victim is deposed, alive, and in nobody's dead set.
	if !agents[victim].Deposed() {
		t.Fatal("slow aggregate never learned it was deposed")
	}
	if agents[victim].IsAggregate() {
		t.Fatal("deposed aggregate still acting")
	}
	for i, h := range agents {
		if d := h.Agent().DeadNodes(); len(d) != 0 {
			t.Fatalf("agent %d declared %v dead; the slow aggregate was alive", i, d)
		}
	}
	// Its members marked it gray, promoted rank-1, and never froze — the
	// demotion fired before the lease TTL ran out.
	succ := agents[4]
	if !succ.Confirmed() || succ.Epoch() < 2 {
		t.Fatalf("successor confirmed=%v epoch=%d, want confirmed at epoch >= 2",
			succ.Confirmed(), succ.Epoch())
	}
	if agents[5].IsAggregate() {
		t.Fatal("rank-2 member must not act as aggregate while rank-1 lives")
	}
	for _, id := range []int{4, 5} {
		gray := agents[id].Gray()
		found := false
		for _, m := range gray {
			found = found || m == victim
		}
		if !found {
			t.Fatalf("member %d gray set %v does not hold the slow leader %d", id, gray, victim)
		}
		if froze[id] {
			t.Fatalf("member %d froze; gray demotion must fire before the TTL freeze", id)
		}
	}
	// Healthy groups never noticed: rank-0 aggregates, original epoch.
	for _, id := range []int{0, 6} {
		if !agents[id].Confirmed() || agents[id].Epoch() != 1 {
			t.Fatalf("healthy aggregate %d confirmed=%v epoch=%d, want confirmed at epoch 1",
				id, agents[id].Confirmed(), agents[id].Epoch())
		}
	}
}
