package diba

import (
	"errors"
	"fmt"
	"math/rand"

	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Asynchronous (gossip) operation. The synchronous engine and the BSP
// agents advance in lock-step rounds; a real cluster has no barrier — the
// text contrasts the primal-dual scheme, which "is synchronized ... usually
// provided through Network Time Protocol", with DiBA's locality. This file
// implements DiBA without any synchrony assumption.
//
// The synchronous flow rule cannot be reused directly: its conservation
// argument needs both endpoints of an edge to compute the identical
// transfer from a shared snapshot. Without rounds there is no shared
// snapshot. Instead the async protocol makes estimate mass *explicitly
// travel in messages*:
//
//   - when node i activates, it may push part of its estimate to a
//     neighbor: it subtracts Δ from e_i and sends Δ;
//   - the receiver adds Δ to e_j on delivery.
//
// Conservation then holds unconditionally — Σ e(nodes) + Σ Δ(in flight)
// = Σ p − P at every instant, whatever the delays or interleavings —
// which the property tests assert at arbitrary points of random
// schedules. Safety is receiver-protected: a node whose estimate is pushed
// toward zero by in-flight mass sheds power through the usual emergency
// path, and senders bound each push by γ·(−e_j)/(deg_j+1) using their
// (possibly stale) view of the receiver, which keeps such events rare.

// AsyncCluster simulates gossip-scheduled DiBA: node activations are drawn
// one at a time (uniformly or from any schedule), and messages experience
// arbitrary (bounded) delivery delay. It is a simulation harness — the
// per-node logic is what a fully asynchronous deployment would run.
type AsyncCluster struct {
	g      *topology.Graph
	us     []workload.Utility
	cfg    Config
	budget float64
	p, e   []float64
	// view[i][k] is node i's last-received estimate of its k-th neighbor
	// (ordered as g.Neighbors(i)).
	view [][]float64
	// inFlight holds estimate mass travelling in messages.
	inFlight []asyncMsg
	// maxDelay is the maximum number of activations a message may wait
	// before delivery (1 = deliver before the next activation).
	maxDelay int
	rng      *rand.Rand
	steps    int
}

type asyncMsg struct {
	to    int
	from  int
	delta float64 // estimate mass being transferred
	e     float64 // sender's estimate after the move, for the view update
	due   int     // activation count at which this message is deliverable
}

// NewAsync builds a gossip cluster. maxDelay ≥ 1 bounds message delay in
// units of activations; seed drives the activation and delay schedule.
func NewAsync(g *topology.Graph, us []workload.Utility, budget float64, cfg Config, maxDelay int, seed int64) (*AsyncCluster, error) {
	if g.N() != len(us) {
		return nil, fmt.Errorf("diba: graph has %d nodes but %d utilities given", g.N(), len(us))
	}
	if len(us) == 0 {
		return nil, errors.New("diba: empty cluster")
	}
	if !g.Connected() {
		return nil, errors.New("diba: communication graph must be connected")
	}
	if maxDelay < 1 {
		return nil, errors.New("diba: maxDelay must be at least 1")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var minSum float64
	for _, u := range us {
		minSum += u.MinPower()
	}
	if budget <= minSum {
		return nil, fmt.Errorf("diba: budget %.1f W cannot cover total idle power %.1f W", budget, minSum)
	}
	n := len(us)
	ac := &AsyncCluster{
		g:        g,
		us:       us,
		cfg:      cfg,
		budget:   budget,
		p:        make([]float64, n),
		e:        make([]float64, n),
		view:     make([][]float64, n),
		maxDelay: maxDelay,
		rng:      rand.New(rand.NewSource(seed)),
	}
	share := (minSum - budget) / float64(n)
	for i, u := range us {
		ac.p[i] = u.MinPower()
		ac.e[i] = share
		ns := g.Neighbors(i)
		ac.view[i] = make([]float64, len(ns))
		for k := range ns {
			// Initial views are exact: every node starts from the same
			// published (budget, N) and can derive them.
			ac.view[i][k] = share
		}
	}
	return ac, nil
}

// Step activates one uniformly random node: deliver its due messages, let
// it move power and push estimate mass, and enqueue its outgoing messages.
// It returns the node activated.
func (ac *AsyncCluster) Step() int {
	ac.steps++
	// Deliver all due messages (to any node — the network runs on its own
	// clock).
	kept := ac.inFlight[:0]
	for _, m := range ac.inFlight {
		if m.due <= ac.steps {
			ac.deliver(m)
		} else {
			kept = append(kept, m)
		}
	}
	ac.inFlight = kept

	i := ac.rng.Intn(len(ac.us))
	ac.activate(i)
	return i
}

func (ac *AsyncCluster) deliver(m asyncMsg) {
	ac.e[m.to] += m.delta
	// Update the receiver's view of the sender.
	ns := ac.g.Neighbors(m.to)
	for k, nb := range ns {
		if int(nb) == m.from {
			ac.view[m.to][k] = m.e
			break
		}
	}
}

// activate runs node i's local logic once.
func (ac *AsyncCluster) activate(i int) {
	u := ac.us[i]
	ns := ac.g.Neighbors(i)
	deg := len(ns)

	// Power move: same barrier-Newton rule as the synchronous engine,
	// against the node's own (always current) estimate; flows are
	// sender-initiated below, so no neighbor snapshot is passed.
	phat, _ := nodeRule(ac.cfg, u, ac.p[i], ac.e[i], deg, nil, nil)
	ac.p[i] += phat
	ac.e[i] += phat

	if ac.e[i] >= 0 {
		// Emergency: shed immediately down to the floor; leftover positive
		// estimate is pushed out below (its neighbors' slack absorbs it).
		drop := ac.e[i] + emergencyShedMarginW
		if maxDrop := ac.p[i] - u.MinPower(); drop > maxDrop {
			drop = maxDrop
		}
		ac.p[i] -= drop
		ac.e[i] -= drop
	}

	// Estimate pushes: sender-initiated transfers based on the last-known
	// neighbor views. The transfer leaves e_i now and arrives later.
	for k, nb := range ns {
		t := edgeTransfer(ac.cfg, ac.e[i], ac.view[i][k], deg, ac.g.Degree(int(nb)))
		if t == 0 {
			continue
		}
		ac.e[i] -= t
		ac.view[i][k] += t // optimistic: assume the neighbor will absorb it
		ac.inFlight = append(ac.inFlight, asyncMsg{
			to:    int(nb),
			from:  i,
			delta: t,
			e:     ac.e[i],
			due:   ac.steps + 1 + ac.rng.Intn(ac.maxDelay),
		})
	}
}

// Run executes the given number of activations.
func (ac *AsyncCluster) Run(activations int) {
	for k := 0; k < activations; k++ {
		ac.Step()
	}
}

// Flush delivers every in-flight message immediately (e.g. before reading
// a consistent final state).
func (ac *AsyncCluster) Flush() {
	for _, m := range ac.inFlight {
		ac.deliver(m)
	}
	ac.inFlight = ac.inFlight[:0]
}

// Alloc returns a copy of the power caps.
func (ac *AsyncCluster) Alloc() []float64 {
	out := make([]float64, len(ac.p))
	copy(out, ac.p)
	return out
}

// TotalPower returns Σ p_i.
func (ac *AsyncCluster) TotalPower() float64 {
	var s float64
	for _, v := range ac.p {
		s += v
	}
	return s
}

// TotalUtility returns Σ r_i(p_i).
func (ac *AsyncCluster) TotalUtility() float64 {
	var s float64
	for i, u := range ac.us {
		s += u.Value(ac.p[i])
	}
	return s
}

// CheckConservation verifies Σe + in-flight mass = Σp − P within tol —
// the async invariant, valid at any instant of any schedule.
func (ac *AsyncCluster) CheckConservation(tol float64) error {
	var sumE, sumP float64
	for i := range ac.e {
		sumE += ac.e[i]
		sumP += ac.p[i]
	}
	for _, m := range ac.inFlight {
		sumE += m.delta
	}
	if diff := sumE - (sumP - ac.budget); diff > tol || diff < -tol {
		return fmt.Errorf("diba: async conservation violated: Σe+flight=%g, Σp−P=%g", sumE, sumP-ac.budget)
	}
	return nil
}

// Budget returns the cluster budget.
func (ac *AsyncCluster) Budget() float64 { return ac.budget }
