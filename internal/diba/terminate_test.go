package diba

import (
	"sync"
	"testing"
	"time"

	"powercap/internal/solver"
	"powercap/internal/topology"
)

// runQuietAgents spawns one goroutine agent per ring node running
// RunUntilQuiet and returns their final states.
func runQuietAgents(t *testing.T, n int, budgetPer float64, q QuietConfig, seed int64) []AgentState {
	t.Helper()
	us := mkCluster(t, n, seed)
	g := topology.Ring(n)
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	net := NewChanNetwork(n, 4*(g.MaxDegree()+1))
	states := make([]AgentState, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := NewAgent(i, g.NeighborsInts(i), us[i], budgetPer*float64(n), n, totalIdle, Config{}, net.Endpoint(i))
			if err != nil {
				errs[i] = err
				return
			}
			states[i], errs[i] = a.RunUntilQuiet(q)
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("agents deadlocked")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	return states
}

func TestRunUntilQuietAllStopTogether(t *testing.T) {
	n := 24
	q := QuietConfig{TolW: 1e-3, Settle: 30, Margin: n, MaxRounds: 60000}
	states := runQuietAgents(t, n, 172, q, 91)
	stopRound := states[0].Rounds
	var total float64
	for i, st := range states {
		if st.Rounds != stopRound {
			t.Fatalf("agent %d stopped at round %d, agent 0 at %d", i, st.Rounds, stopRound)
		}
		total += st.Power
	}
	if stopRound >= q.MaxRounds {
		t.Fatal("termination rule never fired")
	}
	budget := 172.0 * float64(n)
	if total > budget {
		t.Fatalf("final power %v exceeds budget %v", total, budget)
	}
	// The self-terminated allocation is near optimal.
	us := mkCluster(t, n, 91)
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	var util float64
	for i, st := range states {
		util += us[i].Value(st.Power)
	}
	if util < 0.985*opt.Utility {
		t.Fatalf("self-terminated utility %v below 98.5%% of optimal %v", util, opt.Utility)
	}
}

func TestRunUntilQuietMaxRoundsFallback(t *testing.T) {
	// An unreachable tolerance: all agents must still stop together at
	// MaxRounds without deadlocking.
	n := 12
	q := QuietConfig{TolW: 1e-300, Settle: 10, Margin: n, MaxRounds: 400}
	states := runQuietAgents(t, n, 170, q, 92)
	for i, st := range states {
		if st.Rounds != 400 {
			t.Fatalf("agent %d stopped at %d, want MaxRounds 400", i, st.Rounds)
		}
	}
}

func TestQuietConfigValidation(t *testing.T) {
	us := mkCluster(t, 4, 93)
	net := NewChanNetwork(4, 8)
	a, err := NewAgent(0, []int{1}, us[0], 4*170, 4, 4*us[0].MinPower(), Config{}, net.Endpoint(0))
	if err != nil {
		t.Fatal(err)
	}
	bad := []QuietConfig{
		{},
		{TolW: 1, Settle: 1, Margin: 1},
		{TolW: -1, Settle: 1, Margin: 1, MaxRounds: 10},
	}
	for _, q := range bad {
		if _, err := a.RunUntilQuiet(q); err == nil {
			t.Fatalf("config %+v must be rejected", q)
		}
	}
}
