package diba

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// tcpOptions are the transport's robustness knobs, set via TCPOption. The
// defaults preserve the original behavior on healthy links while bounding
// every blocking operation: writes carry a deadline (a stuck peer cannot
// wedge the sender), dials get a short per-attempt budget under the overall
// connect deadline, and a broken outbound link is redialed with exponential
// backoff before the peer is given up on.
type tcpOptions struct {
	writeTimeout   time.Duration
	dialTimeout    time.Duration
	heartbeat      time.Duration
	reconnectMin   time.Duration
	reconnectMax   time.Duration
	reconnectTries int
}

func defaultTCPOptions() tcpOptions {
	return tcpOptions{
		writeTimeout:   30 * time.Second,
		dialTimeout:    2 * time.Second,
		heartbeat:      0, // off unless enabled
		reconnectMin:   50 * time.Millisecond,
		reconnectMax:   2 * time.Second,
		reconnectTries: 8,
	}
}

// TCPOption customizes a TCPTransport.
type TCPOption func(*tcpOptions)

// WithWriteTimeout bounds each Send's socket write; 0 disables the deadline.
func WithWriteTimeout(d time.Duration) TCPOption {
	return func(o *tcpOptions) { o.writeTimeout = d }
}

// WithDialTimeout sets the per-attempt dial budget used by ConnectNeighbors
// and the reconnect loop (always additionally capped by the overall
// deadline).
func WithDialTimeout(d time.Duration) TCPOption {
	return func(o *tcpOptions) { o.dialTimeout = d }
}

// WithHeartbeat enables periodic liveness beacons on every connection.
// Heartbeats never reach the inbox; they only refresh LastHeard, letting a
// failure detector distinguish a slow peer from a dead one.
func WithHeartbeat(interval time.Duration) TCPOption {
	return func(o *tcpOptions) { o.heartbeat = interval }
}

// WithReconnect tunes the exponential-backoff redial of broken outbound
// links: the first retry waits min, doubling up to max, for at most tries
// attempts. tries = 0 disables reconnection.
func WithReconnect(min, max time.Duration, tries int) TCPOption {
	return func(o *tcpOptions) { o.reconnectMin, o.reconnectMax, o.reconnectTries = min, max, tries }
}

// TCPTransport implements Transport over real TCP sockets — the deployment
// path of the dissertation's "working prototype of DiBA on a real
// experimental cluster". Each agent listens on its own address and keeps
// one persistent connection per neighbor; messages are newline-delimited
// JSON. The dial direction is deterministic (lower id dials higher id) so
// exactly one connection exists per edge.
//
// Fault behavior: every socket write carries a deadline, optional
// heartbeats feed a per-peer LastHeard clock, and when an outbound link
// breaks the dialing side redials with exponential backoff, replaying the
// last message sent to the peer (receivers deduplicate, so replay is safe).
// A link that stays down past the retry budget is abandoned; subsequent
// Sends to that peer fail and its LastHeard goes stale, which is what the
// agent-level failure detector keys on.
type TCPTransport struct {
	id    int
	ln    net.Listener
	inbox chan Message
	opt   tcpOptions

	mu           sync.Mutex
	conns        map[int]*tcpConn
	addrs        map[int]string // learned in ConnectNeighbors, for redial
	lastSent     map[int]Message
	haveSent     map[int]bool
	lastHeard    map[int]time.Time
	reconnecting map[int]bool

	wg   sync.WaitGroup
	done chan struct{}
}

type tcpConn struct {
	c   net.Conn
	enc *json.Encoder
	mu  sync.Mutex
}

type tcpHello struct {
	From int `json:"hello"`
}

// NewTCPTransport starts listening on addr (e.g. "127.0.0.1:9000") for
// agent id. Call ConnectNeighbors afterwards, once every agent in the
// cluster is listening.
func NewTCPTransport(id int, addr string, opts ...TCPOption) (*TCPTransport, error) {
	opt := defaultTCPOptions()
	for _, o := range opts {
		o(&opt)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("diba: agent %d listen: %w", id, err)
	}
	t := &TCPTransport{
		id:           id,
		ln:           ln,
		inbox:        make(chan Message, 1024),
		opt:          opt,
		conns:        make(map[int]*tcpConn),
		lastSent:     make(map[int]Message),
		haveSent:     make(map[int]bool),
		lastHeard:    make(map[int]time.Time),
		reconnecting: make(map[int]bool),
		done:         make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	if opt.heartbeat > 0 {
		t.wg.Add(1)
		go t.heartbeatLoop()
	}
	return t, nil
}

// Addr returns the transport's listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.handleIncoming(c)
	}
}

// handleIncoming reads the peer's hello, registers the connection, replays
// the last message we sent the peer (it may have been lost with the old
// link; receivers dedup), then pumps messages into the inbox.
func (t *TCPTransport) handleIncoming(c net.Conn) {
	defer t.wg.Done()
	dec := json.NewDecoder(bufio.NewReader(c))
	var hello tcpHello
	if err := dec.Decode(&hello); err != nil {
		c.Close()
		return
	}
	t.register(hello.From, c)
	t.replayLast(hello.From)
	t.pump(hello.From, dec, c)
}

func (t *TCPTransport) register(peer int, c net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.conns[peer]; ok {
		old.c.Close()
	}
	t.conns[peer] = &tcpConn{c: c, enc: json.NewEncoder(c)}
	t.lastHeard[peer] = time.Now()
}

// replayLast re-sends the last message addressed to peer, if any — the one
// that may have been in flight when the previous connection died.
func (t *TCPTransport) replayLast(peer int) {
	t.mu.Lock()
	m, ok := t.lastSent[peer], t.haveSent[peer]
	t.mu.Unlock()
	if ok {
		_ = t.Send(peer, m)
	}
}

// heartbeatLoop beacons on every live connection so peers can tell slow
// from dead.
func (t *TCPTransport) heartbeatLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.opt.heartbeat)
	defer tick.Stop()
	hb := Message{From: t.id, Kind: MsgHeartbeat}
	for {
		select {
		case <-t.done:
			return
		case <-tick.C:
			t.mu.Lock()
			peers := make([]int, 0, len(t.conns))
			for p := range t.conns {
				peers = append(peers, p)
			}
			t.mu.Unlock()
			for _, p := range peers {
				_ = t.writeTo(p, hb, false)
			}
		}
	}
}

func (t *TCPTransport) pump(peer int, dec *json.Decoder, c net.Conn) {
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			c.Close()
			t.maybeReconnect(peer, c)
			return
		}
		t.mu.Lock()
		t.lastHeard[m.From] = time.Now()
		t.mu.Unlock()
		if m.Kind == MsgHeartbeat {
			continue
		}
		select {
		case t.inbox <- m:
		case <-t.done:
			c.Close()
			return
		}
	}
}

// maybeReconnect redials peer with exponential backoff after its link
// broke. Only the dialing side (peer id greater than ours) redials — the
// accepting side waits for the peer to come back — and only one reconnect
// loop runs per peer.
func (t *TCPTransport) maybeReconnect(peer int, broken net.Conn) {
	select {
	case <-t.done:
		return
	default:
	}
	if peer <= t.id || t.opt.reconnectTries <= 0 {
		return
	}
	t.mu.Lock()
	addr, known := t.addrs[peer]
	cur, hasCur := t.conns[peer]
	if !known || t.reconnecting[peer] || (hasCur && cur.c != broken) {
		// Unknown address, a loop already running, or the connection was
		// already replaced (e.g. the peer re-dialed us): nothing to do.
		t.mu.Unlock()
		return
	}
	t.reconnecting[peer] = true
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		defer func() {
			t.mu.Lock()
			t.reconnecting[peer] = false
			t.mu.Unlock()
		}()
		backoff := t.opt.reconnectMin
		for try := 0; try < t.opt.reconnectTries; try++ {
			timer := time.NewTimer(backoff)
			select {
			case <-t.done:
				timer.Stop()
				return
			case <-timer.C:
			}
			if backoff *= 2; backoff > t.opt.reconnectMax {
				backoff = t.opt.reconnectMax
			}
			if err := t.dialPeer(peer, addr, t.opt.dialTimeout); err == nil {
				t.replayLast(peer)
				return
			}
		}
	}()
}

// dialPeer dials addr, performs the hello handshake, registers the
// connection and starts its pump.
func (t *TCPTransport) dialPeer(peer int, addr string, timeout time.Duration) error {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	if t.opt.writeTimeout > 0 {
		c.SetWriteDeadline(time.Now().Add(t.opt.writeTimeout))
	}
	if err := json.NewEncoder(c).Encode(tcpHello{From: t.id}); err != nil {
		c.Close()
		return err
	}
	c.SetWriteDeadline(time.Time{})
	t.register(peer, c)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.pump(peer, json.NewDecoder(bufio.NewReader(c)), c)
	}()
	return nil
}

// ConnectNeighbors dials every neighbor whose id is greater than ours
// (lower id dials, higher id accepts) and waits until connections for all
// neighbors exist or the timeout expires. addrs maps node id to listen
// address. Each individual dial attempt gets at most the per-attempt dial
// budget (WithDialTimeout), so one unresponsive peer cannot consume the
// whole deadline that the remaining dials still need.
func (t *TCPTransport) ConnectNeighbors(neighbors []int, addrs map[int]string, timeout time.Duration) error {
	t.mu.Lock()
	if t.addrs == nil {
		t.addrs = make(map[int]string, len(addrs))
	}
	for id, a := range addrs {
		t.addrs[id] = a
	}
	t.mu.Unlock()

	deadlineAll := time.Now().Add(timeout)
	for _, nb := range neighbors {
		if nb > t.id {
			addr, ok := addrs[nb]
			if !ok {
				return fmt.Errorf("diba: no address for neighbor %d", nb)
			}
			// Peers start in arbitrary order; retry refused dials until the
			// deadline so a daemon may come up before its higher-id
			// neighbors are listening. Each attempt is individually capped
			// so a black-holed peer fails fast and the retry loop (not one
			// blocking dial) owns the overall deadline.
			var err error
			for {
				attempt := t.opt.dialTimeout
				if remaining := time.Until(deadlineAll); attempt > remaining {
					attempt = remaining
				}
				if attempt <= 0 {
					err = fmt.Errorf("diba: deadline exceeded")
				} else {
					err = t.dialPeer(nb, addr, attempt)
				}
				if err == nil || time.Now().After(deadlineAll) {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err != nil {
				return fmt.Errorf("diba: agent %d dial %d: %w", t.id, nb, err)
			}
		}
	}
	// Wait for inbound connections from lower-id neighbors.
	for {
		t.mu.Lock()
		missing := 0
		for _, nb := range neighbors {
			if _, ok := t.conns[nb]; !ok {
				missing++
			}
		}
		t.mu.Unlock()
		if missing == 0 {
			return nil
		}
		if time.Now().After(deadlineAll) {
			return fmt.Errorf("diba: agent %d timed out waiting for %d neighbor connection(s)", t.id, missing)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// writeTo encodes m on the persistent connection to peer, under the write
// deadline. record selects whether the message is remembered for replay
// after a reconnect (round messages are; heartbeats are not).
func (t *TCPTransport) writeTo(to int, m Message, record bool) error {
	t.mu.Lock()
	conn, ok := t.conns[to]
	if record {
		t.lastSent[to] = m
		t.haveSent[to] = true
	}
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("diba: agent %d has no connection to %d", t.id, to)
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if t.opt.writeTimeout > 0 {
		conn.c.SetWriteDeadline(time.Now().Add(t.opt.writeTimeout))
	}
	err := conn.enc.Encode(m)
	if err != nil {
		// A failed write leaves the stream in an undefined state; drop the
		// connection so the reconnect path (or the peer's redial) replaces
		// it rather than corrupting framing.
		conn.c.Close()
	}
	return err
}

// Send writes the message to the persistent connection for the target
// neighbor. The write carries a deadline, so a stuck peer cannot block the
// sender forever; a failed or deadline-exceeded write tears the connection
// down and lets the reconnect path re-establish it.
func (t *TCPTransport) Send(to int, m Message) error {
	return t.writeTo(to, m, m.Kind != MsgHeartbeat)
}

// Recv blocks for the next inbound message.
func (t *TCPTransport) Recv() (Message, error) {
	select {
	case m := <-t.inbox:
		return m, nil
	case <-t.done:
		return Message{}, fmt.Errorf("diba: transport %d closed", t.id)
	}
}

// RecvTimeout returns the next inbound message or ErrRecvTimeout after d.
func (t *TCPTransport) RecvTimeout(d time.Duration) (Message, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case m := <-t.inbox:
		return m, nil
	case <-t.done:
		return Message{}, fmt.Errorf("diba: transport %d closed", t.id)
	case <-timer.C:
		return Message{}, ErrRecvTimeout
	}
}

// LastHeard reports when traffic (rounds or heartbeats) last arrived from
// peer. It implements PeerLiveness for the agent's failure detector.
func (t *TCPTransport) LastHeard(peer int) (time.Time, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts, ok := t.lastHeard[peer]
	return ts, ok
}

// Close shuts the listener and all connections down.
func (t *TCPTransport) Close() error {
	select {
	case <-t.done:
		return nil
	default:
	}
	close(t.done)
	err := t.ln.Close()
	t.mu.Lock()
	for _, c := range t.conns {
		c.c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}
