package diba

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPTransport implements Transport over real TCP sockets — the deployment
// path of the dissertation's "working prototype of DiBA on a real
// experimental cluster". Each agent listens on its own address and keeps
// one persistent connection per neighbor; messages are newline-delimited
// JSON. The dial direction is deterministic (lower id dials higher id) so
// exactly one connection exists per edge.
type TCPTransport struct {
	id    int
	ln    net.Listener
	inbox chan Message

	mu    sync.Mutex
	conns map[int]*tcpConn
	wg    sync.WaitGroup
	done  chan struct{}
}

type tcpConn struct {
	c   net.Conn
	enc *json.Encoder
	mu  sync.Mutex
}

type tcpHello struct {
	From int `json:"hello"`
}

// NewTCPTransport starts listening on addr (e.g. "127.0.0.1:9000") for
// agent id. Call ConnectNeighbors afterwards, once every agent in the
// cluster is listening.
func NewTCPTransport(id int, addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("diba: agent %d listen: %w", id, err)
	}
	t := &TCPTransport{
		id:    id,
		ln:    ln,
		inbox: make(chan Message, 1024),
		conns: make(map[int]*tcpConn),
		done:  make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.handleIncoming(c)
	}
}

// handleIncoming reads the peer's hello, registers the connection, then
// pumps messages into the inbox.
func (t *TCPTransport) handleIncoming(c net.Conn) {
	defer t.wg.Done()
	dec := json.NewDecoder(bufio.NewReader(c))
	var hello tcpHello
	if err := dec.Decode(&hello); err != nil {
		c.Close()
		return
	}
	t.register(hello.From, c)
	t.pump(dec, c)
}

func (t *TCPTransport) register(peer int, c net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.conns[peer]; ok {
		old.c.Close()
	}
	t.conns[peer] = &tcpConn{c: c, enc: json.NewEncoder(c)}
}

func (t *TCPTransport) pump(dec *json.Decoder, c net.Conn) {
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			c.Close()
			return
		}
		select {
		case t.inbox <- m:
		case <-t.done:
			c.Close()
			return
		}
	}
}

// ConnectNeighbors dials every neighbor whose id is greater than ours
// (lower id dials, higher id accepts) and waits until connections for all
// neighbors exist or the timeout expires. addrs maps node id to listen
// address.
func (t *TCPTransport) ConnectNeighbors(neighbors []int, addrs map[int]string, timeout time.Duration) error {
	deadlineAll := time.Now().Add(timeout)
	for _, nb := range neighbors {
		if nb > t.id {
			addr, ok := addrs[nb]
			if !ok {
				return fmt.Errorf("diba: no address for neighbor %d", nb)
			}
			// Peers start in arbitrary order; retry refused dials until the
			// deadline so a daemon may come up before its higher-id
			// neighbors are listening.
			var c net.Conn
			var err error
			for {
				c, err = net.DialTimeout("tcp", addr, timeout)
				if err == nil || time.Now().After(deadlineAll) {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err != nil {
				return fmt.Errorf("diba: agent %d dial %d: %w", t.id, nb, err)
			}
			enc := json.NewEncoder(c)
			if err := enc.Encode(tcpHello{From: t.id}); err != nil {
				c.Close()
				return err
			}
			t.register(nb, c)
			t.wg.Add(1)
			go func(c net.Conn) {
				defer t.wg.Done()
				t.pump(json.NewDecoder(bufio.NewReader(c)), c)
			}(c)
		}
	}
	// Wait for inbound connections from lower-id neighbors.
	deadline := deadlineAll
	for {
		t.mu.Lock()
		missing := 0
		for _, nb := range neighbors {
			if _, ok := t.conns[nb]; !ok {
				missing++
			}
		}
		t.mu.Unlock()
		if missing == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("diba: agent %d timed out waiting for %d neighbor connection(s)", t.id, missing)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Send writes the message to the persistent connection for the target
// neighbor.
func (t *TCPTransport) Send(to int, m Message) error {
	t.mu.Lock()
	conn, ok := t.conns[to]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("diba: agent %d has no connection to %d", t.id, to)
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	return conn.enc.Encode(m)
}

// Recv blocks for the next inbound message.
func (t *TCPTransport) Recv() (Message, error) {
	select {
	case m := <-t.inbox:
		return m, nil
	case <-t.done:
		return Message{}, fmt.Errorf("diba: transport %d closed", t.id)
	}
}

// Close shuts the listener and all connections down.
func (t *TCPTransport) Close() error {
	select {
	case <-t.done:
		return nil
	default:
	}
	close(t.done)
	err := t.ln.Close()
	t.mu.Lock()
	for _, c := range t.conns {
		c.c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}
