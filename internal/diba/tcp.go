package diba

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// WireCodec selects the encoding a transport writes on its connections.
// Reading is always codec-agnostic: a binary v1 frame starts with the magic
// byte 0xD1 and a JSON message with '{', so the receive path tells them
// apart per message and a mixed-version cluster keeps working.
type WireCodec int

const (
	// WireBinary writes the compact binary v1 frames of wire.go on every
	// connection whose peer negotiated binary in the hello exchange, and
	// falls back to JSON per connection otherwise.
	WireBinary WireCodec = iota
	// WireJSON writes newline-delimited JSON unconditionally — the codec
	// of transports predating wire.go.
	WireJSON
)

func (c WireCodec) String() string {
	if c == WireJSON {
		return "json"
	}
	return "binary"
}

// ParseWireCodec parses the -wire flag values "binary" and "json".
func ParseWireCodec(s string) (WireCodec, error) {
	switch s {
	case "binary":
		return WireBinary, nil
	case "json":
		return WireJSON, nil
	}
	return 0, fmt.Errorf("diba: unknown wire codec %q (want binary or json)", s)
}

// tcpOptions are the transport's robustness knobs, set via TCPOption. The
// defaults preserve the original behavior on healthy links while bounding
// every blocking operation: writes carry a deadline (a stuck peer cannot
// wedge the sender), dials get a short per-attempt budget under the overall
// connect deadline, and a broken outbound link is redialed with exponential
// backoff before the peer is given up on.
type tcpOptions struct {
	writeTimeout   time.Duration
	dialTimeout    time.Duration
	heartbeat      time.Duration
	reconnectMin   time.Duration
	reconnectMax   time.Duration
	reconnectTries int
	codec          WireCodec
	sendQueue      int
	maxWire        int
}

func defaultTCPOptions() tcpOptions {
	return tcpOptions{
		writeTimeout:   30 * time.Second,
		dialTimeout:    2 * time.Second,
		heartbeat:      0, // off unless enabled
		reconnectMin:   50 * time.Millisecond,
		reconnectMax:   2 * time.Second,
		reconnectTries: 8,
		codec:          WireBinary,
		sendQueue:      256,
		maxWire:        WireVersion,
	}
}

// TCPOption customizes a TCPTransport.
type TCPOption func(*tcpOptions)

// WithWriteTimeout bounds each Send's socket write; 0 disables the deadline.
func WithWriteTimeout(d time.Duration) TCPOption {
	return func(o *tcpOptions) { o.writeTimeout = d }
}

// WithDialTimeout sets the per-attempt dial budget used by ConnectNeighbors
// and the reconnect loop (always additionally capped by the overall
// deadline).
func WithDialTimeout(d time.Duration) TCPOption {
	return func(o *tcpOptions) { o.dialTimeout = d }
}

// WithHeartbeat enables periodic liveness beacons on every connection.
// Heartbeats never reach the inbox; they only refresh LastHeard, letting a
// failure detector distinguish a slow peer from a dead one.
func WithHeartbeat(interval time.Duration) TCPOption {
	return func(o *tcpOptions) { o.heartbeat = interval }
}

// WithReconnect tunes the exponential-backoff redial of broken outbound
// links: the first retry waits min, doubling up to max, for at most tries
// attempts. tries = 0 disables reconnection.
func WithReconnect(min, max time.Duration, tries int) TCPOption {
	return func(o *tcpOptions) { o.reconnectMin, o.reconnectMax, o.reconnectTries = min, max, tries }
}

// WithWireCodec selects the encoding written on outbound connections. The
// default is WireBinary; whether a connection actually carries binary is
// negotiated per link in the hello exchange, so a WireBinary transport
// talking to a WireJSON (or pre-wire) peer transparently stays on JSON.
func WithWireCodec(c WireCodec) TCPOption {
	return func(o *tcpOptions) { o.codec = c }
}

// WithWireVersion caps the binary codec version this transport advertises
// and accepts in the hello exchange (clamped to [1, WireVersion]). The
// default is WireVersion; lower values emulate an older build for
// mixed-version interop testing — a v1-capped link carries only v1 bitmap
// bits, with v2-field messages falling back to JSON per message.
func WithWireVersion(v int) TCPOption {
	return func(o *tcpOptions) {
		if v < 1 {
			v = 1
		}
		if v > WireVersion {
			v = WireVersion
		}
		o.maxWire = v
	}
}

// WithSendQueue sets the per-connection outbound queue depth that feeds the
// coalescing writer: Send enqueues, and a per-connection writer drains
// every pending message into one buffered socket write (heartbeats
// piggyback on pending flushes instead of forcing their own syscall).
// n <= 0 disables coalescing entirely — every Send performs its own
// synchronous socket write, the pre-coalescing behavior. The default is
// 256.
func WithSendQueue(n int) TCPOption {
	return func(o *tcpOptions) { o.sendQueue = n }
}

// WireStats counts a peer link's traffic in both directions. Counters are
// cumulative across reconnects of the link. Flushes is the number of socket
// writes; with coalescing enabled MsgsSent/Flushes is the average batch
// size, and BytesSent/MsgsSent the measured bytes per message that the
// repro reports next to netsim's Table 4.2 model.
type WireStats struct {
	MsgsSent  uint64
	MsgsRecv  uint64
	BytesSent uint64
	BytesRecv uint64
	Flushes   uint64
}

// wireCounters is the internal, atomically-updated form of WireStats.
type wireCounters struct {
	msgsSent  atomic.Uint64
	msgsRecv  atomic.Uint64
	bytesSent atomic.Uint64
	bytesRecv atomic.Uint64
	flushes   atomic.Uint64
}

func (c *wireCounters) snapshot() WireStats {
	return WireStats{
		MsgsSent:  c.msgsSent.Load(),
		MsgsRecv:  c.msgsRecv.Load(),
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
		Flushes:   c.flushes.Load(),
	}
}

// TCPTransport implements Transport over real TCP sockets — the deployment
// path of the dissertation's "working prototype of DiBA on a real
// experimental cluster". Each agent listens on its own address and keeps
// one persistent connection per neighbor; the dial direction is
// deterministic (lower id dials higher id) so exactly one connection exists
// per edge.
//
// Wire format: each message is either a binary v1 frame (wire.go) or a line
// of JSON; which one a link carries is negotiated in the hello exchange
// (see tcpHello) and the receive path additionally distinguishes the two by
// first byte, so mixed-codec and mixed-version clusters interoperate.
// Outbound messages pass through a bounded per-connection queue whose
// writer coalesces every pending message into a single socket write
// (WithSendQueue).
//
// Fault behavior: every socket write carries a deadline, optional
// heartbeats feed a per-peer LastHeard clock, and when an outbound link
// breaks the dialing side redials with exponential backoff, replaying the
// last message sent to the peer (receivers deduplicate, so replay is safe).
// A link that stays down past the retry budget is abandoned; subsequent
// Sends to that peer fail and its LastHeard goes stale, which is what the
// agent-level failure detector keys on.
type TCPTransport struct {
	id    int
	ln    net.Listener
	inbox chan Message
	opt   tcpOptions

	// Heartbeats are identical every interval, so both encodings are
	// precomputed once and appended as raw bytes on the hot path.
	hbMsg  Message
	hbJSON []byte
	hbBin  []byte

	// epoch anchors the ping Echo timestamps: pings carry nanoseconds
	// since it, and the matching pong's round trip is measured against the
	// same clock — entirely local, no peer clock involved.
	epoch time.Time

	mu           sync.Mutex
	conns        map[int]*tcpConn
	addrs        map[int]string // learned in ConnectNeighbors, for redial
	lastSent     map[int]Message
	haveSent     map[int]bool
	unflushed    map[int][]Message // dequeued but never written; replayed on reconnect
	lastHeard    map[int]time.Time
	reconnecting map[int]bool
	stats        map[int]*wireCounters
	rtt          map[int]*PeerRTT
	// rng jitters reconnect backoff (±15%) so simultaneous link deaths
	// across a cluster cannot re-dial in lockstep; seeded by id, so each
	// agent's jitter stream is deterministic.
	rng *rand.Rand

	wg   sync.WaitGroup
	done chan struct{}
}

// tcpConn is one live connection. When the send queue is enabled, writes
// happen only on the connection's writeLoop goroutine; when disabled, Send
// writes directly under mu. wire is the negotiated write codec version
// (0 = JSON, >= 1 = binary up to that bitmap version) — it starts 0 (JSON)
// on dialed connections and rises when the peer's hello-ack arrives.
type tcpConn struct {
	c        net.Conn
	peer     int
	queue    chan Message // nil when coalescing is disabled
	done     chan struct{}
	drain    chan struct{} // closed by Close: flush the queue, then stop
	flushed  chan struct{} // closed by writeLoop once the final flush is out
	closing  sync.Once
	draining sync.Once
	finished sync.Once
	wire     atomic.Int32

	mu      sync.Mutex // serializes direct writes (queue disabled)
	scratch []byte
}

// shutdown tears the connection down exactly once: the writeLoop drains
// out via done and both pump and any blocked writer fail over the closed
// socket.
func (conn *tcpConn) shutdown() {
	conn.closing.Do(func() {
		close(conn.done)
		conn.c.Close()
	})
}

// startDrain asks the writeLoop to flush everything queued and stop.
func (conn *tcpConn) startDrain() {
	conn.draining.Do(func() { close(conn.drain) })
}

func (conn *tcpConn) finishFlush() {
	conn.finished.Do(func() { close(conn.flushed) })
}

// tcpHello opens every dialed connection. Wire advertises the highest
// binary codec version the dialer is willing to write and read (0 or
// absent: JSON only — also what pre-wire peers send, since their decoder
// ignores the unknown field). An acceptor that is itself binary-configured
// answers a hello with Wire >= 1 by a tcpHelloAck carrying the negotiated
// version — the lower of the two advertisements — and starts writing binary
// frames at that version; the dialer upgrades its write codec when the ack
// arrives. Both directions therefore carry binary exactly when both
// endpoints are binary-configured, at the highest version both understand,
// and any link with a JSON or pre-wire endpoint stays pure JSON.
type tcpHello struct {
	From int `json:"hello"`
	Wire int `json:"wire,omitempty"`
}

type tcpHelloAck struct {
	From int `json:"helloack"`
	Wire int `json:"wire"`
}

// helloAckPrefix identifies an ack line in the receive path. Acks are only
// ever sent to peers that advertised Wire >= 1, so pre-wire peers never see
// one.
var helloAckPrefix = []byte(`{"helloack"`)

// NewTCPTransport starts listening on addr (e.g. "127.0.0.1:9000") for
// agent id. Call ConnectNeighbors afterwards, once every agent in the
// cluster is listening.
func NewTCPTransport(id int, addr string, opts ...TCPOption) (*TCPTransport, error) {
	opt := defaultTCPOptions()
	for _, o := range opts {
		o(&opt)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("diba: agent %d listen: %w", id, err)
	}
	t := &TCPTransport{
		id:           id,
		ln:           ln,
		inbox:        make(chan Message, 1024),
		opt:          opt,
		epoch:        time.Now(),
		conns:        make(map[int]*tcpConn),
		lastSent:     make(map[int]Message),
		haveSent:     make(map[int]bool),
		unflushed:    make(map[int][]Message),
		lastHeard:    make(map[int]time.Time),
		reconnecting: make(map[int]bool),
		stats:        make(map[int]*wireCounters),
		rtt:          make(map[int]*PeerRTT),
		rng:          rand.New(rand.NewSource(laneSeed(0x6a177e4, id, id))),
		done:         make(chan struct{}),
	}
	t.hbMsg = Message{From: id, Kind: MsgHeartbeat}
	js, err := json.Marshal(t.hbMsg)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("diba: agent %d heartbeat encode: %w", id, err)
	}
	t.hbJSON = append(js, '\n')
	t.hbBin = EncodeTo(nil, t.hbMsg)
	t.wg.Add(1)
	go t.acceptLoop()
	if opt.heartbeat > 0 {
		t.wg.Add(1)
		go t.heartbeatLoop()
	}
	return t, nil
}

// Addr returns the transport's listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.handleIncoming(c)
	}
}

// handleIncoming reads the peer's hello, answers binary-capable peers with
// an ack, registers the connection, replays the last message we sent the
// peer (it may have been lost with the old link; receivers dedup), then
// pumps messages into the inbox.
func (t *TCPTransport) handleIncoming(c net.Conn) {
	defer t.wg.Done()
	br := bufio.NewReader(c)
	line, err := br.ReadBytes('\n')
	if err != nil {
		c.Close()
		return
	}
	var hello tcpHello
	if err := json.Unmarshal(line, &hello); err != nil {
		c.Close()
		return
	}
	level := hello.Wire
	if level > t.opt.maxWire {
		level = t.opt.maxWire
	}
	binary := level >= 1 && t.opt.codec == WireBinary
	if !binary {
		level = 0
	}
	if binary {
		// Tell the dialer it may upgrade its write codec, and to which
		// version. Written before the connection is registered, so it cannot
		// interleave with coalesced batches.
		ack, err := json.Marshal(tcpHelloAck{From: t.id, Wire: level})
		if err == nil {
			line := append(ack, '\n')
			if t.opt.writeTimeout > 0 {
				c.SetWriteDeadline(time.Now().Add(t.opt.writeTimeout))
			}
			_, err = c.Write(line)
			c.SetWriteDeadline(time.Time{})
			if err == nil {
				// The dialer's pump counts the ack line into BytesRecv, so
				// count it here too — keeping BytesSent on this end equal to
				// BytesRecv on the other.
				t.counters(hello.From).bytesSent.Add(uint64(len(line)))
			}
		}
		if err != nil {
			c.Close()
			return
		}
	}
	conn := t.register(hello.From, c, level)
	t.replayLast(hello.From)
	t.pump(hello.From, br, conn)
}

// register installs a fresh tcpConn for peer (tearing down any previous
// one) and starts its coalescing writer. wire is the negotiated write codec
// version (0 = JSON).
func (t *TCPTransport) register(peer int, c net.Conn, wire int) *tcpConn {
	conn := &tcpConn{c: c, peer: peer, done: make(chan struct{}),
		drain: make(chan struct{}), flushed: make(chan struct{})}
	conn.wire.Store(int32(wire))
	if t.opt.sendQueue > 0 {
		conn.queue = make(chan Message, t.opt.sendQueue)
	}
	t.mu.Lock()
	if old, ok := t.conns[peer]; ok {
		old.shutdown()
	}
	t.conns[peer] = conn
	t.lastHeard[peer] = time.Now()
	t.mu.Unlock()
	if conn.queue != nil {
		t.wg.Add(1)
		go t.writeLoop(conn)
	}
	return conn
}

// counters returns peer's cumulative traffic counters, creating them on
// first use.
func (t *TCPTransport) counters(peer int) *wireCounters {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.stats[peer]
	if !ok {
		st = &wireCounters{}
		t.stats[peer] = st
	}
	return st
}

// WireStats returns a snapshot of per-peer wire-level traffic counters,
// keyed by peer id.
func (t *TCPTransport) WireStats() map[int]WireStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]WireStats, len(t.stats))
	for p, c := range t.stats {
		out[p] = c.snapshot()
	}
	return out
}

// WireTotals returns wire-level traffic counters summed over all peers.
func (t *TCPTransport) WireTotals() WireStats {
	var sum WireStats
	for _, s := range t.WireStats() {
		sum.MsgsSent += s.MsgsSent
		sum.MsgsRecv += s.MsgsRecv
		sum.BytesSent += s.BytesSent
		sum.BytesRecv += s.BytesRecv
		sum.Flushes += s.Flushes
	}
	return sum
}

// replayLast re-sends everything that may have been lost with the previous
// connection: first any batch the coalescing writer dequeued but never got
// onto the wire (saveUnflushed), in original order, then the last recorded
// message — the one that may have been in flight when the link died.
// Receivers deduplicate, so replay is safe.
func (t *TCPTransport) replayLast(peer int) {
	t.mu.Lock()
	pend := t.unflushed[peer]
	delete(t.unflushed, peer)
	m, ok := t.lastSent[peer], t.haveSent[peer]
	t.mu.Unlock()
	for _, pm := range pend {
		// record=false: these were recorded when first sent, and lastSent
		// must keep pointing at the newest message, not an older replay.
		_ = t.writeTo(peer, pm, false)
	}
	if ok {
		_ = t.Send(peer, m)
	}
}

// heartbeatLoop beacons on every live connection so peers can tell slow
// from dead. With coalescing enabled a heartbeat is enqueued without
// blocking — if round traffic already fills the queue the beacon is
// redundant and skipped, and otherwise it rides the writer's next flush
// as a precomputed frame. Each tick also sends an RTT ping: the pong's
// echoed timestamp feeds the per-peer estimator that drives adaptive
// gather deadlines and the degraded-peer verdict (rtt.go).
func (t *TCPTransport) heartbeatLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.opt.heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-tick.C:
			t.mu.Lock()
			conns := make([]*tcpConn, 0, len(t.conns))
			for _, conn := range t.conns {
				conns = append(conns, conn)
			}
			t.mu.Unlock()
			ping := Message{From: t.id, Kind: MsgPing, Echo: t.nowNanos()}
			for _, conn := range conns {
				if conn.queue == nil {
					_ = t.writeDirect(conn, t.hbMsg)
					_ = t.writeDirect(conn, ping)
					continue
				}
				select {
				case conn.queue <- t.hbMsg:
				default:
				}
				select {
				case conn.queue <- ping:
				default:
				}
			}
		}
	}
}

// nowNanos is the transport's local monotonic clock for ping timestamps —
// nanoseconds since construction, never zero (a zero Echo would be omitted
// from the wire frame).
func (t *TCPTransport) nowNanos() int64 {
	n := time.Since(t.epoch).Nanoseconds()
	if n <= 0 {
		n = 1
	}
	return n
}

// deliver routes one inbound message: every arrival refreshes the sender's
// LastHeard clock, and heartbeats, pings and pongs stop there instead of
// reaching the inbox — a ping is answered with a pong echoing its
// timestamp, and a pong closes the loop by feeding the sender's measured
// round trip into the per-peer RTT estimator.
func (t *TCPTransport) deliver(m Message, c net.Conn) bool {
	t.mu.Lock()
	t.lastHeard[m.From] = time.Now()
	t.mu.Unlock()
	switch m.Kind {
	case MsgHeartbeat:
		return true
	case MsgPing:
		_ = t.writeTo(m.From, Message{From: t.id, Kind: MsgPong, Echo: m.Echo}, false)
		return true
	case MsgPong:
		if d := time.Duration(t.nowNanos() - m.Echo); d > 0 {
			t.observeRTT(m.From, d)
		}
		return true
	}
	select {
	case t.inbox <- m:
		return true
	case <-t.done:
		c.Close()
		return false
	}
}

// observeRTT feeds one measured round trip into peer's estimator.
func (t *TCPTransport) observeRTT(peer int, d time.Duration) {
	t.mu.Lock()
	r := t.rtt[peer]
	if r == nil {
		r = &PeerRTT{}
		t.rtt[peer] = r
	}
	r.Observe(d)
	t.mu.Unlock()
}

// grayRTTFactor is how many times slower than the fastest peer a peer's
// smoothed RTT must be before RTTStats marks it degraded. Relative, not
// absolute: on a uniformly slow fabric nobody is gray.
const grayRTTFactor = 4

// RTTStats snapshots the per-peer RTT estimators next to WireStats: mean
// and p99 over the retained sample window, a suspicion score over the
// current silence (floor = two heartbeat intervals), and the degraded
// verdict — smoothed RTT at least grayRTTFactor times the fastest peer's
// and more than a millisecond over it, so measurement noise on a healthy
// LAN never convicts.
func (t *TCPTransport) RTTStats() map[int]RTTStats {
	floor := 2 * t.opt.heartbeat
	if floor <= 0 {
		floor = 500 * time.Millisecond
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var minSRTT time.Duration = -1
	for _, r := range t.rtt {
		if r.Samples() == 0 {
			continue
		}
		if s := r.SRTT(); minSRTT < 0 || s < minSRTT {
			minSRTT = s
		}
	}
	out := make(map[int]RTTStats, len(t.rtt))
	for p, r := range t.rtt {
		st := RTTStats{Mean: r.Mean(), P99: r.P99(), Samples: r.Samples()}
		if heard, ok := t.lastHeard[p]; ok {
			st.Suspicion = r.Suspicion(now.Sub(heard), floor)
		}
		if s := r.SRTT(); minSRTT > 0 && s >= grayRTTFactor*minSRTT && s-minSRTT > time.Millisecond {
			st.Degraded = true
		}
		out[p] = st
	}
	return out
}

// pump reads messages off one connection until it breaks. The framing is
// detected per message: a 0xD1 first byte is a binary v1 frame, anything
// else a newline-terminated line of JSON — either a hello-ack (which
// upgrades the connection's write codec) or a Message.
func (t *TCPTransport) pump(peer int, br *bufio.Reader, conn *tcpConn) {
	st := t.counters(peer)
	var frame [maxWireFrame]byte
	for {
		first, err := br.Peek(1)
		if err == nil && first[0] == wireMagic {
			var hdr []byte
			if hdr, err = br.Peek(2); err == nil {
				// The length byte is peer-controlled: a value above the v1
				// maximum is a corrupt or hostile frame, and slicing the fixed
				// buffer with it would panic. Fall through to the teardown
				// path instead, like any other decode error.
				if n := int(hdr[1]) + 2; n <= maxWireFrame {
					b := frame[:n]
					if _, err = io.ReadFull(br, b); err == nil {
						var m Message
						if m, _, err = Decode(b); err == nil {
							st.bytesRecv.Add(uint64(len(b)))
							st.msgsRecv.Add(1)
							if !t.deliver(m, conn.c) {
								return
							}
							continue
						}
					}
				}
			}
		} else if err == nil {
			var line []byte
			if line, err = br.ReadBytes('\n'); err == nil {
				st.bytesRecv.Add(uint64(len(line)))
				if bytes.HasPrefix(line, helloAckPrefix) {
					var ack tcpHelloAck
					if json.Unmarshal(line, &ack) == nil && ack.Wire >= 1 && t.opt.codec == WireBinary {
						w := ack.Wire
						if w > t.opt.maxWire {
							w = t.opt.maxWire
						}
						conn.wire.Store(int32(w))
					}
					continue
				}
				var m Message
				if err = json.Unmarshal(line, &m); err == nil {
					st.msgsRecv.Add(1)
					if !t.deliver(m, conn.c) {
						return
					}
					continue
				}
			}
		}
		// Read or decode error: a broken or desynchronized stream is torn
		// down and left to the reconnect path.
		conn.shutdown()
		t.maybeReconnect(peer, conn.c)
		return
	}
}

// encodeMsg appends m's wire form in the connection's current write codec,
// substituting the precomputed frame for heartbeats. A message carrying
// fields newer than the link's negotiated version falls back to JSON for
// that message — the peer's older binary decoder would reject the unknown
// bitmap bits, but its JSON reader parses field-by-field (readers detect
// the codec per frame).
func (t *TCPTransport) encodeMsg(buf []byte, conn *tcpConn, m Message) []byte {
	if w := conn.wire.Load(); w >= 3 ||
		(w == 2 && !wireNeedsV3(m)) ||
		(w == 1 && !wireNeedsV2(m) && !wireNeedsV3(m)) {
		if m == t.hbMsg {
			return append(buf, t.hbBin...)
		}
		return EncodeTo(buf, m)
	}
	if m == t.hbMsg {
		return append(buf, t.hbJSON...)
	}
	js, err := json.Marshal(m)
	if err != nil {
		// Unreachable: Message contains only plain ints and float64s.
		return buf
	}
	buf = append(buf, js...)
	return append(buf, '\n')
}

// maxCoalesce bounds how many queued messages one flush may carry.
const maxCoalesce = 128

// writeBatch writes first plus everything else pending on the queue (up to
// maxCoalesce) to the socket in a single syscall under one write deadline.
// It reports false after a failed write, with the connection already torn
// down and the unwritten messages left in *batch so the caller can hand
// them to saveUnflushed for replay on the next link.
func (t *TCPTransport) writeBatch(conn *tcpConn, st *wireCounters, buf *[]byte, batch *[]Message, first Message) bool {
	bs := append((*batch)[:0], first)
pending:
	for len(bs) < maxCoalesce {
		select {
		case m := <-conn.queue:
			bs = append(bs, m)
		default:
			break pending
		}
	}
	*batch = bs
	b := (*buf)[:0]
	for _, m := range bs {
		b = t.encodeMsg(b, conn, m)
	}
	*buf = b
	if t.opt.writeTimeout > 0 {
		conn.c.SetWriteDeadline(time.Now().Add(t.opt.writeTimeout))
	}
	if _, err := conn.c.Write(b); err != nil {
		// A failed or expired write leaves the stream in an undefined
		// state; drop the connection and let the pump's read failure
		// trigger the reconnect path.
		conn.shutdown()
		return false
	}
	st.bytesSent.Add(uint64(len(b)))
	st.msgsSent.Add(uint64(len(bs)))
	st.flushes.Add(1)
	return true
}

// saveUnflushed records a failed flush's batch plus everything still queued
// on the dead connection so replayLast can re-send all of it on the next
// link (receivers dedup, so replay is safe). Without this a failed
// coalesced flush would lose up to maxCoalesce already-dequeued messages
// while reconnect replay restored only the single last one. Heartbeats are
// not worth replaying and are skipped; the buffer is capped to the newest
// queue-plus-batch worth of messages so repeated link deaths cannot grow it
// without bound.
func (t *TCPTransport) saveUnflushed(conn *tcpConn, batch []Message) {
	pend := make([]Message, 0, len(batch))
	for _, m := range batch {
		if m.Kind != MsgHeartbeat {
			pend = append(pend, m)
		}
	}
drained:
	for {
		select {
		case m := <-conn.queue:
			if m.Kind != MsgHeartbeat {
				pend = append(pend, m)
			}
		default:
			break drained
		}
	}
	if len(pend) == 0 {
		return
	}
	t.mu.Lock()
	all := append(t.unflushed[conn.peer], pend...)
	if limit := t.opt.sendQueue + maxCoalesce; len(all) > limit {
		all = all[len(all)-limit:]
	}
	t.unflushed[conn.peer] = all
	t.mu.Unlock()
}

// writeLoop drains a connection's send queue: it blocks for one message,
// then greedily coalesces everything else pending into one buffered write
// (writeBatch). Per-sender ordering is preserved — messages leave the queue
// and hit the socket in Send order. When Close signals drain, the loop
// flushes whatever is still queued and reports back via flushed: Send is
// asynchronous, so the caller's last messages may otherwise die in the
// queue — exactly the tail a BSP peer still needs to finish its final
// round.
func (t *TCPTransport) writeLoop(conn *tcpConn) {
	defer t.wg.Done()
	defer conn.finishFlush()
	st := t.counters(conn.peer)
	buf := make([]byte, 0, 4096)
	batch := make([]Message, 0, maxCoalesce)
	for {
		var m Message
		select {
		case m = <-conn.queue:
		case <-conn.done:
			// Torn down from outside (pump failure or replacement by a fresh
			// link): whatever is still queued would otherwise die with this
			// connection.
			t.saveUnflushed(conn, nil)
			return
		case <-conn.drain:
			for {
				select {
				case m = <-conn.queue:
					if !t.writeBatch(conn, st, &buf, &batch, m) {
						t.saveUnflushed(conn, batch)
						return
					}
				default:
					return
				}
			}
		}
		if !t.writeBatch(conn, st, &buf, &batch, m) {
			t.saveUnflushed(conn, batch)
			return
		}
	}
}

// writeDirect synchronously encodes and writes one message — the
// coalescing-disabled path (WithSendQueue(0)) and the pre-wire behavior:
// one socket write per message.
func (t *TCPTransport) writeDirect(conn *tcpConn, m Message) error {
	conn.mu.Lock()
	defer conn.mu.Unlock()
	conn.scratch = t.encodeMsg(conn.scratch[:0], conn, m)
	if t.opt.writeTimeout > 0 {
		conn.c.SetWriteDeadline(time.Now().Add(t.opt.writeTimeout))
	}
	_, err := conn.c.Write(conn.scratch)
	if err != nil {
		conn.shutdown()
		return err
	}
	st := t.counters(conn.peer)
	st.bytesSent.Add(uint64(len(conn.scratch)))
	st.msgsSent.Add(1)
	st.flushes.Add(1)
	return nil
}

// maybeReconnect redials peer with exponential backoff after its link
// broke. Only the dialing side (peer id greater than ours) redials — the
// accepting side waits for the peer to come back — and only one reconnect
// loop runs per peer.
func (t *TCPTransport) maybeReconnect(peer int, broken net.Conn) {
	select {
	case <-t.done:
		return
	default:
	}
	if peer <= t.id || t.opt.reconnectTries <= 0 {
		return
	}
	t.mu.Lock()
	addr, known := t.addrs[peer]
	cur, hasCur := t.conns[peer]
	if !known || t.reconnecting[peer] || (hasCur && cur.c != broken) {
		// Unknown address, a loop already running, or the connection was
		// already replaced (e.g. the peer re-dialed us): nothing to do.
		t.mu.Unlock()
		return
	}
	t.reconnecting[peer] = true
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		defer func() {
			t.mu.Lock()
			t.reconnecting[peer] = false
			t.mu.Unlock()
		}()
		backoff := t.opt.reconnectMin
		for try := 0; try < t.opt.reconnectTries; try++ {
			// Jitter each wait ±15% so links that died together (one slow or
			// partitioned switch) do not re-dial in a synchronized storm.
			t.mu.Lock()
			wait := jitterDur(backoff, t.rng)
			t.mu.Unlock()
			timer := time.NewTimer(wait)
			select {
			case <-t.done:
				timer.Stop()
				return
			case <-timer.C:
			}
			if backoff *= 2; backoff > t.opt.reconnectMax {
				backoff = t.opt.reconnectMax
			}
			if err := t.dialPeer(peer, addr, t.opt.dialTimeout); err == nil {
				t.replayLast(peer)
				return
			}
		}
	}()
}

// dialPeer dials addr, sends the hello (advertising the binary codec when
// configured), registers the connection and starts its pump. The dialed
// connection starts on JSON and upgrades to binary when the peer's ack
// arrives.
func (t *TCPTransport) dialPeer(peer int, addr string, timeout time.Duration) error {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	hello := tcpHello{From: t.id}
	if t.opt.codec == WireBinary {
		hello.Wire = t.opt.maxWire
	}
	js, err := json.Marshal(hello)
	if err != nil {
		c.Close()
		return err
	}
	if t.opt.writeTimeout > 0 {
		c.SetWriteDeadline(time.Now().Add(t.opt.writeTimeout))
	}
	if _, err := c.Write(append(js, '\n')); err != nil {
		c.Close()
		return err
	}
	c.SetWriteDeadline(time.Time{})
	conn := t.register(peer, c, 0)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.pump(peer, bufio.NewReader(c), conn)
	}()
	return nil
}

// ConnectNeighbors dials every neighbor whose id is greater than ours
// (lower id dials, higher id accepts) and waits until connections for all
// neighbors exist or the timeout expires. addrs maps node id to listen
// address. Each individual dial attempt gets at most the per-attempt dial
// budget (WithDialTimeout), so one unresponsive peer cannot consume the
// whole deadline that the remaining dials still need.
func (t *TCPTransport) ConnectNeighbors(neighbors []int, addrs map[int]string, timeout time.Duration) error {
	t.mu.Lock()
	if t.addrs == nil {
		t.addrs = make(map[int]string, len(addrs))
	}
	for id, a := range addrs {
		t.addrs[id] = a
	}
	t.mu.Unlock()

	deadlineAll := time.Now().Add(timeout)
	for _, nb := range neighbors {
		if nb > t.id {
			addr, ok := addrs[nb]
			if !ok {
				return fmt.Errorf("diba: no address for neighbor %d", nb)
			}
			// Peers start in arbitrary order; retry refused dials until the
			// deadline so a daemon may come up before its higher-id
			// neighbors are listening. Each attempt is individually capped
			// so a black-holed peer fails fast and the retry loop (not one
			// blocking dial) owns the overall deadline.
			var err error
			for {
				attempt := t.opt.dialTimeout
				if remaining := time.Until(deadlineAll); attempt > remaining {
					attempt = remaining
				}
				if attempt <= 0 {
					err = fmt.Errorf("diba: deadline exceeded")
				} else {
					err = t.dialPeer(nb, addr, attempt)
				}
				if err == nil || time.Now().After(deadlineAll) {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err != nil {
				return fmt.Errorf("diba: agent %d dial %d: %w", t.id, nb, err)
			}
		}
	}
	// Wait for inbound connections from lower-id neighbors.
	for {
		t.mu.Lock()
		missing := 0
		for _, nb := range neighbors {
			if _, ok := t.conns[nb]; !ok {
				missing++
			}
		}
		t.mu.Unlock()
		if missing == 0 {
			return nil
		}
		if time.Now().After(deadlineAll) {
			return fmt.Errorf("diba: agent %d timed out waiting for %d neighbor connection(s)", t.id, missing)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// writeTo hands m to the connection for peer: enqueued for the coalescing
// writer when the send queue is enabled, written synchronously otherwise.
// record selects whether the message is remembered for replay after a
// reconnect (round messages are; heartbeats are not).
func (t *TCPTransport) writeTo(to int, m Message, record bool) error {
	t.mu.Lock()
	conn, ok := t.conns[to]
	if record {
		t.lastSent[to] = m
		t.haveSent[to] = true
	}
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("diba: agent %d has no connection to %d", t.id, to)
	}
	if conn.queue == nil {
		return t.writeDirect(conn, m)
	}
	select {
	case conn.queue <- m:
		return t.checkEnqueued(conn, to)
	case <-conn.done:
		return fmt.Errorf("diba: agent %d lost connection to %d", t.id, to)
	default:
	}
	// Queue full: block up to the write timeout, mirroring how a direct
	// write would stall on a full socket buffer.
	var expired <-chan time.Time
	if t.opt.writeTimeout > 0 {
		timer := time.NewTimer(t.opt.writeTimeout)
		defer timer.Stop()
		expired = timer.C
	}
	select {
	case conn.queue <- m:
		return t.checkEnqueued(conn, to)
	case <-conn.done:
		return fmt.Errorf("diba: agent %d lost connection to %d", t.id, to)
	case <-expired:
		conn.shutdown()
		return fmt.Errorf("diba: agent %d send queue to %d full past write timeout", t.id, to)
	}
}

// checkEnqueued re-checks conn liveness after a successful enqueue: when
// both select cases are ready the enqueue may win even though conn.done is
// already closed, placing the message on a queue whose writeLoop has
// exited. Reporting the loss here turns that silent drop into a send error
// (recorded messages are additionally covered by reconnect replay).
func (t *TCPTransport) checkEnqueued(conn *tcpConn, to int) error {
	select {
	case <-conn.done:
		return fmt.Errorf("diba: agent %d lost connection to %d", t.id, to)
	default:
		return nil
	}
}

// Send writes the message to the persistent connection for the target
// neighbor. With coalescing enabled the write itself is asynchronous: Send
// fails synchronously when no connection exists (or the queue stays full
// past the write timeout), while a socket-level failure surfaces on a later
// Send after the writer tears the connection down. A failed write drops the
// connection and lets the reconnect path re-establish it.
func (t *TCPTransport) Send(to int, m Message) error {
	return t.writeTo(to, m, m.Kind != MsgHeartbeat)
}

// Recv blocks for the next inbound message.
func (t *TCPTransport) Recv() (Message, error) {
	select {
	case m := <-t.inbox:
		return m, nil
	case <-t.done:
		return Message{}, fmt.Errorf("diba: transport %d closed", t.id)
	}
}

// TryRecv returns an immediately available inbound message without
// blocking.
func (t *TCPTransport) TryRecv() (Message, bool, error) {
	select {
	case m := <-t.inbox:
		return m, true, nil
	case <-t.done:
		return Message{}, false, fmt.Errorf("diba: transport %d closed", t.id)
	default:
		return Message{}, false, nil
	}
}

// RecvTimeout returns the next inbound message or ErrRecvTimeout after d.
func (t *TCPTransport) RecvTimeout(d time.Duration) (Message, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case m := <-t.inbox:
		return m, nil
	case <-t.done:
		return Message{}, fmt.Errorf("diba: transport %d closed", t.id)
	case <-timer.C:
		return Message{}, ErrRecvTimeout
	}
}

// LastHeard reports when traffic (rounds or heartbeats) last arrived from
// peer. It implements PeerLiveness for the agent's failure detector.
func (t *TCPTransport) LastHeard(peer int) (time.Time, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts, ok := t.lastHeard[peer]
	return ts, ok
}

// Close flushes every connection's pending sends, then shuts the listener
// and all connections down. The flush matters because Send is asynchronous:
// an agent that reached its stop condition exits right after its final
// broadcast, and without the flush those queued messages would die with the
// process while BSP peers still need them to finish the round. The wait is
// bounded by the write timeout (or its default when deadlines are disabled).
func (t *TCPTransport) Close() error {
	select {
	case <-t.done:
		return nil
	default:
	}
	t.mu.Lock()
	conns := make([]*tcpConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	// With WithWriteTimeout(0) socket writes have no deadline, so a stuck
	// peer could hold <-c.flushed open forever; fall back to the default
	// write timeout as the drain bound rather than blocking Close.
	drainWait := t.opt.writeTimeout
	if drainWait <= 0 {
		drainWait = defaultTCPOptions().writeTimeout
	}
	timer := time.NewTimer(drainWait)
	defer timer.Stop()
	for _, c := range conns {
		if c.queue == nil {
			continue
		}
		c.startDrain()
		select {
		case <-c.flushed:
		case <-timer.C:
		}
	}
	close(t.done)
	err := t.ln.Close()
	t.mu.Lock()
	for _, c := range t.conns {
		c.shutdown()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}
