package diba

import (
	"errors"
	"fmt"
	"math"

	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Hierarchical power capping. Real delivery infrastructure nests budgets:
// each rack's PDU has its own breaker limit inside its row's feed, which
// in turn sits inside the facility budget. The DiBA machinery generalizes
// directly — a node keeps one surplus estimate per constraint family it
// participates in:
//
//	e_i[0] — cluster surplus share, conserved over the whole graph,
//	e_i[l] — level-l group surplus share, conserved within the node's
//	         group at that level (rack, row, ...),
//
// and ascends r_i(p_i) + η·Σ_l log(−e_i[l]). Power moves add to p and to
// every estimate together; family-l flows run only on edges whose
// endpoints share a level-l group, all antisymmetric. Keeping every
// estimate negative then certifies *every* constraint family at every
// round:
//
//	Σ e[0] = Σp − P                            (cluster)
//	Σ_{group k at level l} e[l] = Σ_k p − B_k  (each group, each level)
//
// Nothing about the machinery is specific to a number of levels; the
// two-level rack scheme is the L=1 case (NewHier).
//
// The engine is built to sustain 100k–1M simulated agents per step: it
// runs on the same flattened fast path as the flat Engine — grouped CSR
// adjacency with per-edge level bitmasks (no group-id compares in the hot
// loop), precomputed per-edge per-level diffusion coefficients, the
// concrete-quadratic dispatch, incremental ΣP/ΣU aggregates, and a
// zero-allocation round — plus a sharded StepParallel (hierparallel.go)
// whose reduction is bitwise identical to the serial Step at any worker
// count.

// Level describes one grouping tier of the budget hierarchy below the
// cluster: a partition of the nodes into groups, each with its own power
// budget. The communication graph must keep every group's members
// internally connected (group estimates only flow inside the group).
type Level struct {
	// GroupOf[i] is node i's group index at this level, in
	// [0, len(Budget)).
	GroupOf []int
	// Budget[k] is group k's power budget in watts. Every group must have
	// at least one member and a budget strictly above its idle power.
	Budget []float64
}

// Racks describes the two-level hierarchy (rack PDU limits inside the
// cluster budget): node→rack assignment and per-rack budgets. It is the
// single-Level special case of the general engine.
type Racks struct {
	RackOf     []int
	RackBudget []float64
}

// HierEngine is the synchronous hierarchical DiBA simulation over an
// L-level budget tree.
type HierEngine struct {
	g   *topology.Graph
	us  []workload.Utility
	cfg Config
	// budget is the cluster cap P.
	budget float64
	// levels are the explicit grouping tiers (finest first by convention);
	// the cluster is the implicit family 0.
	levels []Level
	// nl is the number of constraint families = len(levels)+1.
	nl int
	// members[l][k] lists level l's group k members.
	members [][][]int

	// p is the per-node cap; est is node-major: node i's family-l estimate
	// is est[i*nl+l], family 0 the cluster.
	p, pNext     []float64
	est, estNext []float64
	iter         int
	dead         map[int]bool

	// Grouped-CSR caches (see rebuildTopoCache): the graph's CSR arrays,
	// the per-slot level bitmask, node-major per-family within-group
	// degrees, slot-major per-family neighbor degrees, and the slot-major
	// per-family clamped diffusion coefficient χ. All static between
	// topology changes, so a round never compares group ids or derives a
	// division.
	off, nbrs []int32
	mask      []uint32
	degN      []int32
	nbrDegL   []int32
	chi       []float64

	// Incremental aggregates (see refreshAggregates): Σp and Σr(p) over
	// live nodes, folded from per-node deltas (dP/dU) in index order after
	// every round so serial and sharded rounds stay bitwise identical and
	// RunToTarget's convergence check is a field read.
	sumP, sumU float64
	uVal       []float64
	dP, dU     []float64

	// Quadratic fast path, same contract as the flat Engine's.
	qs      []workload.Quadratic
	quadV   []float64
	allQuad bool

	// Sharding state (hierparallel.go): the persistent worker pool and the
	// per-shard scratch — one activity slot and one per-family outflow
	// buffer per shard, so a pooled round allocates nothing.
	pool    *hierPool
	actBuf  []float64
	outBufs [][]float64
}

// NewHier builds the two-level (cluster + racks) hierarchical engine — the
// single-Level case of NewHierLevels.
func NewHier(g *topology.Graph, us []workload.Utility, clusterBudget float64, racks Racks, cfg Config) (*HierEngine, error) {
	return NewHierLevels(g, us, clusterBudget, []Level{{GroupOf: racks.RackOf, Budget: racks.RackBudget}}, cfg)
}

// NewHierLevels builds a hierarchical engine over an arbitrary budget
// tree. Levels are conventionally ordered finest first (rack, row, ...);
// the cluster constraint is implicit. Every group of every level must be
// internally connected in g and every budget (cluster and per group) must
// strictly cover the relevant idle power. Levels need not nest, but
// physical budget trees do.
func NewHierLevels(g *topology.Graph, us []workload.Utility, clusterBudget float64, levels []Level, cfg Config) (*HierEngine, error) {
	n := g.N()
	if n != len(us) {
		return nil, fmt.Errorf("diba: graph has %d nodes but %d utilities given", n, len(us))
	}
	if len(us) == 0 {
		return nil, errors.New("diba: empty cluster")
	}
	if len(levels) == 0 {
		return nil, errors.New("diba: hierarchical engine needs at least one level")
	}
	if len(levels)+1 > topology.MaxGroupLevels {
		return nil, fmt.Errorf("diba: %d levels exceed the supported maximum %d", len(levels), topology.MaxGroupLevels-1)
	}
	if !g.Connected() {
		return nil, errors.New("diba: communication graph must be connected")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	var minSum float64
	for _, u := range us {
		minSum += u.MinPower()
	}
	if clusterBudget <= minSum {
		return nil, fmt.Errorf("diba: cluster budget %.1f W cannot cover total idle power %.1f W", clusterBudget, minSum)
	}

	nl := len(levels) + 1
	lvls := make([]Level, len(levels))
	members := make([][][]int, len(levels))
	groupShare := make([][]float64, len(levels)) // initial estimate per group
	for l, lv := range levels {
		if len(lv.GroupOf) != n {
			return nil, fmt.Errorf("diba: level %d assigns %d nodes, want %d", l, len(lv.GroupOf), n)
		}
		ng := len(lv.Budget)
		mem := make([][]int, ng)
		idle := make([]float64, ng)
		for i, k := range lv.GroupOf {
			if k < 0 || k >= ng {
				return nil, fmt.Errorf("diba: node %d assigned to invalid level-%d group %d", i, l, k)
			}
			mem[k] = append(mem[k], i)
			idle[k] += us[i].MinPower()
		}
		for k, b := range lv.Budget {
			if len(mem[k]) == 0 {
				return nil, fmt.Errorf("diba: level %d group %d has no members", l, k)
			}
			if b <= idle[k] {
				return nil, fmt.Errorf("diba: level %d group %d budget %.1f W cannot cover its idle power %.1f W", l, k, b, idle[k])
			}
		}
		if bad, ok := topology.GroupConnected(g, lv.GroupOf); !ok {
			return nil, fmt.Errorf("diba: level %d group %d is not internally connected", l, bad)
		}
		lvls[l] = Level{
			GroupOf: append([]int(nil), lv.GroupOf...),
			Budget:  append([]float64(nil), lv.Budget...),
		}
		members[l] = mem
		share := make([]float64, ng)
		for k := range share {
			share[k] = (idle[k] - lv.Budget[k]) / float64(len(mem[k]))
		}
		groupShare[l] = share
	}

	h := &HierEngine{
		g: g, us: us, cfg: cfg, budget: clusterBudget,
		levels: lvls, nl: nl, members: members,
		p: make([]float64, n), pNext: make([]float64, n),
		est: make([]float64, n*nl), estNext: make([]float64, n*nl),
		uVal: make([]float64, n), dP: make([]float64, n), dU: make([]float64, n),
		qs: make([]workload.Quadratic, n), quadV: make([]float64, n),
		outBufs: [][]float64{make([]float64, nl)},
	}
	clusterShare := (minSum - clusterBudget) / float64(n)
	for i, u := range us {
		h.p[i] = u.MinPower()
		h.est[i*nl] = clusterShare
		for l := range lvls {
			h.est[i*nl+1+l] = groupShare[l][lvls[l].GroupOf[i]]
		}
	}
	if err := h.rebuildTopoCache(); err != nil {
		return nil, err
	}
	h.allQuad = buildQuadCache(h.us, h.qs, h.quadV)
	h.refreshAggregates()
	return h, nil
}

// rebuildTopoCache refreshes the engine's grouped-CSR view of the (static
// between failures) communication graph and the per-edge per-family
// diffusion coefficients. Must be called whenever h.g is replaced, and
// before any sharded round so goroutines never trigger the graph's lazy
// CSR seal concurrently.
func (h *HierEngine) rebuildTopoCache() error {
	gof := make([][]int, h.nl)
	for l := range h.levels {
		gof[1+l] = h.levels[l].GroupOf
	}
	gc, err := topology.BuildGroupedCSR(h.g, gof...)
	if err != nil {
		return err
	}
	h.off, h.nbrs = gc.Off, gc.Nbr
	h.mask, h.degN, h.nbrDegL = gc.Mask, gc.Deg, gc.NbrDeg
	nl := h.nl
	want := len(h.nbrs) * nl
	if cap(h.chi) < want {
		h.chi = make([]float64, want)
	} else {
		h.chi = h.chi[:want]
	}
	n := h.g.N()
	for i := 0; i < n; i++ {
		for k := h.off[i]; k < h.off[i+1]; k++ {
			kb := int(k) * nl
			m := h.mask[k]
			for l := 0; l < nl; l++ {
				if m&(1<<uint(l)) == 0 {
					h.chi[kb+l] = 0
					continue
				}
				// χ clamped to the stability limit 1/(maxdeg+1) over the
				// family's within-group degrees — the value edgeTransfer
				// derives per call.
				chi := h.cfg.StepE
				if lim := 1 / float64(max(int(h.degN[i*nl+l]), int(h.nbrDegL[kb+l]))+1); chi > lim {
					chi = lim
				}
				h.chi[kb+l] = chi
			}
		}
	}
	return nil
}

// refreshAggregates recomputes the cached Σp, Σr(p) and per-node utility
// values from scratch. Called at construction and after any out-of-band
// state change (FailNode); the per-round paths maintain the sums
// incrementally.
func (h *HierEngine) refreshAggregates() {
	var sumP, sumU float64
	for i, u := range h.us {
		if h.dead[i] {
			h.uVal[i] = 0
			continue
		}
		sumP += h.p[i]
		v := u.Value(h.p[i])
		h.uVal[i] = v
		sumU += v
	}
	h.sumP, h.sumU = sumP, sumU
}

// N returns the cluster size.
func (h *HierEngine) N() int { return len(h.us) }

// Iter returns the number of rounds executed so far.
func (h *HierEngine) Iter() int { return h.iter }

// Budget returns the cluster power budget.
func (h *HierEngine) Budget() float64 { return h.budget }

// NumLevels returns the number of explicit grouping levels below the
// cluster.
func (h *HierEngine) NumLevels() int { return len(h.levels) }

// NumGroups returns the number of groups at level l.
func (h *HierEngine) NumGroups(l int) int { return len(h.levels[l].Budget) }

// GroupBudget returns group k's budget at level l.
func (h *HierEngine) GroupBudget(l, k int) float64 { return h.levels[l].Budget[k] }

// shardStep advances nodes [lo, hi) of one synchronous round from the
// previous round's snapshot: it writes only pNext/estNext/dP/dU/uVal slots
// it owns plus the caller-provided per-family outflow scratch, and returns
// the shard's activity (largest absolute power move or estimate flow).
// Both the serial Step and every StepParallel shard run exactly this code,
// which is what makes the two bitwise interchangeable.
func (h *HierEngine) shardStep(cfg Config, lo, hi int, out []float64) float64 {
	nl := h.nl
	var activity float64
	for i := lo; i < hi; i++ {
		base := i * nl
		if h.dead[i] {
			h.pNext[i] = 0
			for l := 0; l < nl; l++ {
				h.estNext[base+l] = 0
			}
			h.dP[i], h.dU[i] = 0, 0
			continue
		}
		ownP := h.p[i]
		emergency := false
		for l := 0; l < nl; l++ {
			if h.est[base+l] >= 0 {
				emergency = true
				break
			}
		}
		var minW, maxW float64
		if h.allQuad {
			minW, maxW = h.qs[i].MinW, h.qs[i].MaxW
		} else {
			minW, maxW = h.us[i].MinPower(), h.us[i].MaxPower()
		}
		var phat float64
		if emergency {
			// Constraint-violation emergency: shed as fast as allowed; the
			// flows below drain the non-negative estimate into neighbors.
			phat = -cfg.MaxMoveW
		} else {
			// Damped Newton ascent on r(p) + η·Σ_l log(−e[l]): every family
			// contributes a barrier gradient and curvature term, and the
			// per-round upward move is bounded by the *tightest* family's
			// slack so no estimate can cross zero.
			var gp, curv float64
			if h.allQuad {
				q, v := h.qs[i], h.quadV[i]
				gp = quadGradV(q, v, ownP)
				curv = -quadCurvatureV(q, v, ownP)
			} else {
				gp = h.us[i].Grad(ownP)
				curv = -curvature(h.us[i], ownP)
			}
			minSlack := math.Inf(1)
			for l := 0; l < nl; l++ {
				el := h.est[base+l]
				gp += cfg.Eta / el
				curv += cfg.Eta / (el * el)
				if s := -el; s < minSlack {
					minSlack = s
				}
			}
			if curv < 1e-9 {
				curv = 1e-9
			}
			phat = cfg.Damping * gp / curv
			if maxUp := (1 - cfg.Gamma) / 2 * minSlack; phat > maxUp {
				phat = maxUp
			}
		}
		if phat > cfg.MaxMoveW {
			phat = cfg.MaxMoveW
		}
		if phat < -cfg.MaxMoveW {
			phat = -cfg.MaxMoveW
		}
		if ownP+phat > maxW {
			phat = maxW - ownP
		}
		if ownP+phat < minW {
			phat = minW - ownP
		}

		// Consensus flows, one family at a time off the per-slot level
		// bitmask — no group-id compares, no degree lookups, no divisions
		// beyond the clamp arithmetic itself.
		for l := 0; l < nl; l++ {
			out[l] = 0
		}
		kHi := h.off[i+1]
		for k := h.off[i]; k < kHi; k++ {
			jb := int(h.nbrs[k]) * nl
			kb := int(k) * nl
			m := h.mask[k]
			for l := 0; l < nl; l++ {
				if m&(1<<uint(l)) == 0 {
					continue
				}
				out[l] += edgeTransferChi(cfg, h.est[base+l], h.est[jb+l],
					int(h.degN[base+l]), int(h.nbrDegL[kb+l]), h.chi[kb+l])
			}
		}

		pn := ownP + phat
		h.pNext[i] = pn
		for l := 0; l < nl; l++ {
			h.estNext[base+l] = h.est[base+l] + phat - out[l]
		}
		var un float64
		if h.allQuad {
			un = quadValueV(h.qs[i], h.quadV[i], pn)
		} else {
			un = h.us[i].Value(pn)
		}
		h.dP[i] = phat
		h.dU[i] = un - h.uVal[i]
		h.uVal[i] = un
		if m := math.Abs(phat); m > activity {
			activity = m
		}
		for l := 0; l < nl; l++ {
			if m := math.Abs(out[l]); m > activity {
				activity = m
			}
		}
	}
	return activity
}

// finishRound folds the per-node aggregate deltas into ΣP/ΣU serially in
// index order — float addition is not associative, and this single
// addition sequence is what keeps serial and sharded rounds bitwise
// identical — then publishes the round by swapping the state buffers.
func (h *HierEngine) finishRound() {
	n := len(h.us)
	sumP, sumU := h.sumP, h.sumU
	for i := 0; i < n; i++ {
		if h.dead[i] {
			continue
		}
		sumP += h.dP[i]
		sumU += h.dU[i]
	}
	h.sumP, h.sumU = sumP, sumU
	h.p, h.pNext = h.pNext, h.p
	h.est, h.estNext = h.estNext, h.est
	h.iter++
}

// Step advances one synchronous round and returns the round's activity.
// The hierarchical engine applies the configured η directly (no annealing
// schedule). The round allocates nothing.
func (h *HierEngine) Step() float64 {
	activity := h.shardStep(h.cfg, 0, len(h.us), h.outBufs[0])
	h.finishRound()
	return activity
}

// StepAuto advances one round, choosing Step or StepParallel by cluster
// size. The two are bitwise identical, so callers see one deterministic
// sequence of states either way.
func (h *HierEngine) StepAuto() float64 {
	if len(h.us) >= stepParallelThreshold {
		return h.StepParallel(0)
	}
	return h.Step()
}

// RunToTarget iterates to the 99%-style criterion against a reference.
// With the incrementally maintained aggregate the per-round convergence
// check is a single field read (it used to evaluate the O(n) TotalUtility
// twice per iteration).
func (h *HierEngine) RunToTarget(ref, frac float64, maxIters int) RunResult {
	tol := (1 - frac) * math.Abs(ref)
	for k := 0; k < maxIters; k++ {
		if u := h.sumU; math.Abs(ref-u) <= tol {
			return RunResult{Iterations: k, Converged: true, Utility: u, Power: h.sumP}
		}
		h.StepAuto()
	}
	conv := math.Abs(ref-h.sumU) <= tol
	return RunResult{Iterations: maxIters, Converged: conv, Utility: h.sumU, Power: h.sumP}
}

// Alloc returns a copy of the caps.
func (h *HierEngine) Alloc() []float64 {
	out := make([]float64, len(h.p))
	copy(out, h.p)
	return out
}

// TotalPower returns Σp over live nodes: a field read, maintained
// incrementally by the round updates.
func (h *HierEngine) TotalPower() float64 { return h.sumP }

// TotalUtility returns Σ r_i(p_i) over live nodes: a field read,
// maintained incrementally by the round updates.
func (h *HierEngine) TotalUtility() float64 { return h.sumU }

// GroupPower returns Σp over level l's group k members.
func (h *HierEngine) GroupPower(l, k int) float64 {
	var s float64
	for _, i := range h.members[l][k] {
		s += h.p[i]
	}
	return s
}

// RackPower returns Σp over rack k's members (level 0 — the two-level
// engine's accessor).
func (h *HierEngine) RackPower(k int) float64 { return h.GroupPower(0, k) }

// FailNode removes node i from the computation: its edges are dropped,
// its power is treated as zero, and every budget it participated in —
// the cluster's and each level's group — shrinks by p_i − e_i[l], which
// preserves the corresponding conservation identity over the survivors
// exactly (and is conservative, since every estimate is negative). An
// error is returned if the failure would disconnect the survivors of any
// constraint family or leave any budget infeasible.
func (h *HierEngine) FailNode(i int) error {
	n := len(h.us)
	if i < 0 || i >= n {
		return fmt.Errorf("diba: node %d out of range", i)
	}
	if h.dead[i] {
		return fmt.Errorf("diba: node %d already failed", i)
	}
	g := h.g.RemoveNode(i)
	if !survivorsConnected(g, h.dead, i) {
		return fmt.Errorf("diba: failing node %d disconnects the survivors", i)
	}
	for l := range h.levels {
		k := h.levels[l].GroupOf[i]
		if !groupSurvivorsConnected(g, h.levels[l].GroupOf, h.members[l][k], h.dead, i) {
			return fmt.Errorf("diba: failing node %d disconnects level %d group %d", i, l, k)
		}
	}
	base := i * h.nl
	newBudget := h.budget - h.p[i] + h.est[base]
	var minSum float64
	for j, u := range h.us {
		if j == i || h.dead[j] {
			continue
		}
		minSum += u.MinPower()
	}
	if newBudget <= minSum {
		return fmt.Errorf("diba: post-failure budget %.1f W cannot cover survivors' idle power %.1f W", newBudget, minSum)
	}
	newGroupB := make([]float64, len(h.levels))
	for l := range h.levels {
		k := h.levels[l].GroupOf[i]
		nb := h.levels[l].Budget[k] - h.p[i] + h.est[base+1+l]
		var idle float64
		live := false
		for _, j := range h.members[l][k] {
			if j == i || h.dead[j] {
				continue
			}
			live = true
			idle += h.us[j].MinPower()
		}
		if live && nb <= idle {
			return fmt.Errorf("diba: post-failure level %d group %d budget %.1f W cannot cover its idle power %.1f W", l, k, nb, idle)
		}
		newGroupB[l] = nb
	}

	h.g = g
	if h.dead == nil {
		h.dead = make(map[int]bool)
	}
	h.dead[i] = true
	h.p[i] = 0
	for l := 0; l < h.nl; l++ {
		h.est[base+l] = 0
	}
	h.budget = newBudget
	for l := range h.levels {
		h.levels[l].Budget[h.levels[l].GroupOf[i]] = newGroupB[l]
	}
	if err := h.rebuildTopoCache(); err != nil {
		return err
	}
	h.refreshAggregates()
	return nil
}

// groupSurvivorsConnected checks connectivity of group members (same
// groupOf value, drawn from members) restricted to live nodes, with extra
// treated as dead.
func groupSurvivorsConnected(g *topology.Graph, groupOf []int, members []int, dead map[int]bool, extra int) bool {
	isDead := func(v int) bool { return v == extra || dead[v] }
	start, live := -1, 0
	for _, v := range members {
		if !isDead(v) {
			live++
			if start < 0 {
				start = v
			}
		}
	}
	if live <= 1 {
		return true
	}
	grp := groupOf[start]
	seen := map[int]bool{start: true}
	stack := []int{start}
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			j := int(w)
			if groupOf[j] == grp && !seen[j] && !isDead(j) {
				seen[j] = true
				count++
				stack = append(stack, j)
			}
		}
	}
	return count == live
}

// CheckInvariant verifies every conservation identity — cluster and each
// group of each level — and strict negativity of every live estimate.
func (h *HierEngine) CheckInvariant(tol float64) error {
	nl := h.nl
	var sumE, sumP float64
	for i := range h.us {
		if h.dead[i] {
			continue
		}
		base := i * nl
		for l := 0; l < nl; l++ {
			if h.est[base+l] >= 0 {
				return fmt.Errorf("diba: family %d estimate e[%d] = %g not strictly negative", l, i, h.est[base+l])
			}
		}
		sumE += h.est[base]
		sumP += h.p[i]
	}
	if d := math.Abs(sumE - (sumP - h.budget)); d > tol {
		return fmt.Errorf("diba: cluster conservation violated by %g", d)
	}
	for l := range h.levels {
		for k, m := range h.members[l] {
			var sumF, groupP float64
			live := false
			for _, i := range m {
				if h.dead[i] {
					continue
				}
				live = true
				sumF += h.est[i*nl+1+l]
				groupP += h.p[i]
			}
			if !live {
				continue
			}
			if d := math.Abs(sumF - (groupP - h.levels[l].Budget[k])); d > tol {
				return fmt.Errorf("diba: level %d group %d conservation violated by %g", l, k, d)
			}
		}
	}
	return nil
}
