package diba

import (
	"errors"
	"fmt"
	"math"

	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Hierarchical power capping. Real delivery infrastructure nests budgets:
// each rack's PDU has its own breaker limit inside the facility budget.
// The DiBA machinery generalizes directly — a node keeps one surplus
// estimate per constraint it participates in:
//
//	e_i  — cluster surplus share, conserved over the whole graph,
//	f_i  — rack surplus share, conserved within the node's rack,
//
// and ascends r_i(p_i) + η·log(−e_i) + η·log(−f_i). Power moves add to
// p, e and f together; e-flows run on every edge, f-flows only on
// intra-rack edges, both antisymmetric. Keeping every estimate negative
// then certifies *both* constraint families at every round:
//
//	Σ e = Σp − P           (cluster)
//	Σ_{rack k} f = Σ_{rack k} p − B_k   (each rack)
//
// This is the natural extension the dissertation's modular-architecture
// motivation points toward; nothing about it is specific to two levels.

// Racks describes the hierarchy for a HierEngine: node→rack assignment and
// per-rack budgets. The communication graph must keep each rack's nodes
// internally connected (rack estimates only flow inside the rack).
type Racks struct {
	RackOf     []int
	RackBudget []float64
}

// HierEngine is the synchronous hierarchical DiBA simulation.
type HierEngine struct {
	g      *topology.Graph
	us     []workload.Utility
	cfg    Config
	budget float64
	racks  Racks

	p, e, f                []float64
	pNext, eNext, fNext    []float64
	rackDeg                []int // intra-rack degree per node
	iter                   int
	rackMembers            [][]int
	totalIdle, rackIdleSum []float64 // rackIdleSum indexed by rack
}

// NewHier builds a hierarchical engine. Every rack's subgraph must be
// connected and every budget (cluster and rack) must cover the relevant
// idle power.
func NewHier(g *topology.Graph, us []workload.Utility, clusterBudget float64, racks Racks, cfg Config) (*HierEngine, error) {
	n := g.N()
	if n != len(us) {
		return nil, fmt.Errorf("diba: graph has %d nodes but %d utilities given", n, len(us))
	}
	if len(us) == 0 {
		return nil, errors.New("diba: empty cluster")
	}
	if len(racks.RackOf) != n {
		return nil, fmt.Errorf("diba: RackOf has %d entries, want %d", len(racks.RackOf), n)
	}
	if !g.Connected() {
		return nil, errors.New("diba: communication graph must be connected")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	nRacks := len(racks.RackBudget)
	members := make([][]int, nRacks)
	for i, k := range racks.RackOf {
		if k < 0 || k >= nRacks {
			return nil, fmt.Errorf("diba: node %d assigned to invalid rack %d", i, k)
		}
		members[k] = append(members[k], i)
	}
	// Idle-power feasibility, cluster and per rack.
	var minSum float64
	rackIdle := make([]float64, nRacks)
	for i, u := range us {
		minSum += u.MinPower()
		rackIdle[racks.RackOf[i]] += u.MinPower()
	}
	if clusterBudget <= minSum {
		return nil, fmt.Errorf("diba: cluster budget %.1f W cannot cover total idle power %.1f W", clusterBudget, minSum)
	}
	for k, b := range racks.RackBudget {
		if b <= rackIdle[k] {
			return nil, fmt.Errorf("diba: rack %d budget %.1f W cannot cover its idle power %.1f W", k, b, rackIdle[k])
		}
	}
	// Intra-rack connectivity and degrees.
	rackDeg := make([]int, n)
	for i := 0; i < n; i++ {
		for _, j := range g.Neighbors(i) {
			if racks.RackOf[j] == racks.RackOf[i] {
				rackDeg[i]++
			}
		}
	}
	for k, m := range members {
		if len(m) == 0 {
			return nil, fmt.Errorf("diba: rack %d has no members", k)
		}
		if len(m) > 1 && !rackConnected(g, racks.RackOf, m) {
			return nil, fmt.Errorf("diba: rack %d is not internally connected", k)
		}
	}

	h := &HierEngine{
		g: g, us: us, cfg: cfg, budget: clusterBudget, racks: racks,
		p: make([]float64, n), e: make([]float64, n), f: make([]float64, n),
		pNext: make([]float64, n), eNext: make([]float64, n), fNext: make([]float64, n),
		rackDeg: rackDeg, rackMembers: members, rackIdleSum: rackIdle,
	}
	clusterShare := (minSum - clusterBudget) / float64(n)
	for i, u := range us {
		h.p[i] = u.MinPower()
		h.e[i] = clusterShare
		k := racks.RackOf[i]
		h.f[i] = (rackIdle[k] - racks.RackBudget[k]) / float64(len(members[k]))
	}
	return h, nil
}

func rackConnected(g *topology.Graph, rackOf []int, members []int) bool {
	rack := rackOf[members[0]]
	seen := map[int]bool{members[0]: true}
	stack := []int{members[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if rackOf[w] == rack && !seen[int(w)] {
				seen[int(w)] = true
				stack = append(stack, int(w))
			}
		}
	}
	return len(seen) == len(members)
}

// Step advances one synchronous round and returns the round's activity.
func (h *HierEngine) Step() float64 {
	n := len(h.us)
	var activity float64
	for i := 0; i < n; i++ {
		u := h.us[i]
		var phat float64
		if h.e[i] >= 0 || h.f[i] >= 0 {
			phat = -h.cfg.MaxMoveW
		} else {
			gp := u.Grad(h.p[i]) + h.cfg.Eta/h.e[i] + h.cfg.Eta/h.f[i]
			curv := -curvature(u, h.p[i]) + h.cfg.Eta/(h.e[i]*h.e[i]) + h.cfg.Eta/(h.f[i]*h.f[i])
			if curv < 1e-9 {
				curv = 1e-9
			}
			phat = h.cfg.Damping * gp / curv
			maxUp := (1 - h.cfg.Gamma) / 2 * math.Min(-h.e[i], -h.f[i])
			if phat > maxUp {
				phat = maxUp
			}
		}
		if phat > h.cfg.MaxMoveW {
			phat = h.cfg.MaxMoveW
		}
		if phat < -h.cfg.MaxMoveW {
			phat = -h.cfg.MaxMoveW
		}
		if h.p[i]+phat > u.MaxPower() {
			phat = u.MaxPower() - h.p[i]
		}
		if h.p[i]+phat < u.MinPower() {
			phat = u.MinPower() - h.p[i]
		}

		var eOut, fOut float64
		di := h.g.Degree(i)
		for _, j := range h.g.Neighbors(i) {
			eOut += edgeTransfer(h.cfg, h.e[i], h.e[j], di, h.g.Degree(int(j)))
			if h.racks.RackOf[j] == h.racks.RackOf[i] {
				fOut += edgeTransfer(h.cfg, h.f[i], h.f[j], h.rackDeg[i], h.rackDeg[j])
			}
		}
		h.pNext[i] = h.p[i] + phat
		h.eNext[i] = h.e[i] + phat - eOut
		h.fNext[i] = h.f[i] + phat - fOut
		for _, m := range []float64{phat, eOut, fOut} {
			if m < 0 {
				m = -m
			}
			if m > activity {
				activity = m
			}
		}
	}
	h.p, h.pNext = h.pNext, h.p
	h.e, h.eNext = h.eNext, h.e
	h.f, h.fNext = h.fNext, h.f
	h.iter++
	return activity
}

// RunToTarget iterates to the 99%-style criterion against a reference.
func (h *HierEngine) RunToTarget(ref, frac float64, maxIters int) RunResult {
	for k := 0; k < maxIters; k++ {
		if math.Abs(ref-h.TotalUtility()) <= (1-frac)*math.Abs(ref) {
			return RunResult{Iterations: k, Converged: true, Utility: h.TotalUtility(), Power: h.TotalPower()}
		}
		h.Step()
	}
	conv := math.Abs(ref-h.TotalUtility()) <= (1-frac)*math.Abs(ref)
	return RunResult{Iterations: maxIters, Converged: conv, Utility: h.TotalUtility(), Power: h.TotalPower()}
}

// Alloc returns a copy of the caps.
func (h *HierEngine) Alloc() []float64 {
	out := make([]float64, len(h.p))
	copy(out, h.p)
	return out
}

// TotalPower returns Σp.
func (h *HierEngine) TotalPower() float64 {
	var s float64
	for _, v := range h.p {
		s += v
	}
	return s
}

// TotalUtility returns Σ r_i(p_i).
func (h *HierEngine) TotalUtility() float64 {
	var s float64
	for i, u := range h.us {
		s += u.Value(h.p[i])
	}
	return s
}

// RackPower returns Σ p over rack k's members.
func (h *HierEngine) RackPower(k int) float64 {
	var s float64
	for _, i := range h.rackMembers[k] {
		s += h.p[i]
	}
	return s
}

// CheckInvariant verifies both conservation identities and strict
// negativity of every estimate.
func (h *HierEngine) CheckInvariant(tol float64) error {
	var sumE, sumP float64
	for i := range h.e {
		if h.e[i] >= 0 {
			return fmt.Errorf("diba: cluster estimate e[%d] = %g not strictly negative", i, h.e[i])
		}
		if h.f[i] >= 0 {
			return fmt.Errorf("diba: rack estimate f[%d] = %g not strictly negative", i, h.f[i])
		}
		sumE += h.e[i]
		sumP += h.p[i]
	}
	if d := math.Abs(sumE - (sumP - h.budget)); d > tol {
		return fmt.Errorf("diba: cluster conservation violated by %g", d)
	}
	for k, m := range h.rackMembers {
		var sumF, rackP float64
		for _, i := range m {
			sumF += h.f[i]
			rackP += h.p[i]
		}
		if d := math.Abs(sumF - (rackP - h.racks.RackBudget[k])); d > tol {
			return fmt.Errorf("diba: rack %d conservation violated by %g", k, d)
		}
	}
	return nil
}
