package diba

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenesisLeasesExactSplit(t *testing.T) {
	// The genesis shares must sum to the budget bitwise — integer equality,
	// not a float tolerance — for arbitrary budgets and group shapes.
	prop := func(budget uint32, rawSizes []uint8) bool {
		budgetMw := int64(budget)
		sizes := make([]int, 0, len(rawSizes)+1)
		total := 0
		for _, s := range rawSizes {
			sizes = append(sizes, int(s))
			total += int(s)
		}
		if total == 0 {
			sizes = append(sizes, 3)
			total = 3
		}
		out, err := GenesisLeases(budgetMw, sizes)
		if err != nil {
			return false
		}
		var sum int64
		for g, mw := range out {
			sum += mw
			// Each share is within 1 mw of exactly proportional.
			exact := float64(budgetMw) * float64(sizes[g]) / float64(total)
			if d := float64(mw) - exact; d > 1 || d < -1 {
				return false
			}
		}
		return sum == budgetMw
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGenesisLeasesValidation(t *testing.T) {
	if _, err := GenesisLeases(1000, []int{0, 0}); err == nil {
		t.Fatal("zero-size split must be rejected")
	}
	if _, err := GenesisLeases(1000, []int{3, -1}); err == nil {
		t.Fatal("negative size must be rejected")
	}
	out, err := GenesisLeases(1000, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for g, mw := range out {
		if mw*3 != 1000 && (mw < 333 || mw > 334) {
			t.Fatalf("share %d = %d mw, want ~333", g, mw)
		}
	}
}

func TestLeaseMilliwattsRoundTrip(t *testing.T) {
	for _, w := range []float64{0, 0.001, -0.001, 170.25, 1e6} {
		if got := LeaseWatts(LeaseMilliwatts(w)); got != w {
			t.Fatalf("round trip of %v W = %v", w, got)
		}
	}
}

// TestLeaseLedgerConservationUnderChaos drives two groups' ledgers over one
// edge through random donations from both sides with lossy, duplicated and
// reordered message delivery. The invariant is the tentpole's: the lease
// sum never exceeds the budget at any instant (transfers in flight strand
// power, never mint it), and after a full exchange in both directions it
// equals the budget exactly — integer equality.
func TestLeaseLedgerConservationUnderChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		budget := int64(2_000_000 + rng.Int63n(1_000_000))
		gen, err := GenesisLeases(budget, []int{3, 5})
		if err != nil {
			t.Fatal(err)
		}
		a := NewLeaseLedger(gen[0], []int{1}, true)
		b := NewLeaseLedger(gen[1], []int{0}, true)
		// Stale message pool: (to, given, echo) tuples that may be
		// redelivered at any time, modeling duplication and reordering.
		type msg struct {
			toA   bool
			given int64
			echo  int64
		}
		var pool []msg
		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0: // a donates
				a.Donate(1, rng.Int63n(5000))
			case 1: // b donates
				b.Donate(0, rng.Int63n(5000))
			case 2: // a sends its edge state; delivery may be lost
				m := msg{toA: false, given: a.Given(1), echo: a.Taken(1)}
				pool = append(pool, m)
				if rng.Intn(3) != 0 {
					b.Merge(0, m.given, m.echo)
				}
			case 3:
				m := msg{toA: true, given: b.Given(0), echo: b.Taken(0)}
				pool = append(pool, m)
				if rng.Intn(3) != 0 {
					a.Merge(1, m.given, m.echo)
				}
			}
			if len(pool) > 0 && rng.Intn(2) == 0 {
				// Replay a random stale message.
				m := pool[rng.Intn(len(pool))]
				if m.toA {
					a.Merge(1, m.given, m.echo)
				} else {
					b.Merge(0, m.given, m.echo)
				}
			}
			if sum := a.Lease() + b.Lease(); sum > budget {
				t.Fatalf("trial %d step %d: Σ leases %d exceeds budget %d", trial, step, sum, budget)
			}
		}
		// One fresh exchange in each direction syncs the edge exactly.
		b.Merge(0, a.Given(1), a.Taken(1))
		a.Merge(1, b.Given(0), b.Taken(0))
		b.Merge(0, a.Given(1), a.Taken(1))
		if sum := a.Lease() + b.Lease(); sum != budget {
			t.Fatalf("trial %d: synced Σ leases %d != budget %d", trial, sum, budget)
		}
	}
}

// TestLeaseLedgerFailoverEchoRecovery is the failover identity: a freshly
// promoted aggregate's zero ledger is rebuilt bitwise from its neighbors'
// echoes, including donations the dead aggregate made and received.
func TestLeaseLedgerFailoverEchoRecovery(t *testing.T) {
	budget := int64(9_000_000)
	gen, err := GenesisLeases(budget, []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(g int, peers []int, synced bool) *LeaseLedger {
		return NewLeaseLedger(gen[g], peers, synced)
	}
	l0 := mk(0, []int{1, 2}, true)
	l1 := mk(1, []int{0, 2}, true)
	l2 := mk(2, []int{0, 1}, true)
	// Group 1's aggregate donates to 2, receives from 0, with full sync.
	l1.Donate(2, 40_000)
	l2.Merge(1, l1.Given(2), l1.Taken(2))
	l1.Merge(2, l2.Given(1), l2.Taken(1))
	l0.Donate(1, 25_000)
	l1.Merge(0, l0.Given(1), l0.Taken(1))
	l0.Merge(1, l1.Given(0), l1.Taken(0))
	want := l1.Lease()
	if sum := l0.Lease() + l1.Lease() + l2.Lease(); sum != budget {
		t.Fatalf("pre-failover Σ = %d, want %d", sum, budget)
	}

	// Group 1's aggregate dies; the successor starts from nothing.
	succ := mk(1, []int{0, 2}, false)
	if succ.Synced() {
		t.Fatal("fresh failover ledger must start unsynced")
	}
	// One hello/ack exchange per edge: the successor's zero counters are
	// merged harmlessly by the peers, and their echoes rebuild its state.
	l0.Merge(1, succ.Given(0), succ.Taken(0))
	succ.Merge(0, l0.Given(1), l0.Taken(1))
	if succ.Synced() {
		t.Fatal("one of two edges synced must not confirm the ledger")
	}
	l2.Merge(1, succ.Given(2), succ.Taken(2))
	succ.Merge(2, l2.Given(1), l2.Taken(1))
	if !succ.Synced() {
		t.Fatal("both edges exchanged; ledger must be synced")
	}
	if succ.Lease() != want {
		t.Fatalf("recovered lease %d != dead aggregate's %d", succ.Lease(), want)
	}
	if sum := l0.Lease() + succ.Lease() + l2.Lease(); sum != budget {
		t.Fatalf("post-failover Σ = %d, want exactly %d", sum, budget)
	}
}

func TestLeaseTransferBounds(t *testing.T) {
	pol := HierPolicy{}.withDefaults()
	floor := int64(500_000)
	lease := int64(900_000)
	if got := leaseTransfer(3, 0, lease, floor, pol); got != 0 {
		t.Fatalf("gap under threshold must not transfer, got %d", got)
	}
	if got := leaseTransfer(40, 0, lease, floor, pol); got != LeaseMilliwatts(10) {
		t.Fatalf("quarter-gap transfer = %d, want %d", got, LeaseMilliwatts(10))
	}
	if got := leaseTransfer(1000, 0, lease, floor, pol); got != LeaseMilliwatts(pol.MaxLeaseStepW) {
		t.Fatalf("step cap violated: %d", got)
	}
	// Donor floor: never donate below idle + margin.
	if got := leaseTransfer(1000, 0, floor+2000, floor, pol); got != 2000 {
		t.Fatalf("floor clamp = %d, want 2000", got)
	}
	if got := leaseTransfer(1000, 0, floor, floor, pol); got != 0 {
		t.Fatalf("at the floor the donor must not donate, got %d", got)
	}
	if got := leaseTransfer(0, 40, lease, floor, pol); got != 0 {
		t.Fatalf("needier donor must not donate, got %d", got)
	}
}
