package diba

import (
	"math/rand"
	"testing"
	"testing/quick"

	"powercap/internal/solver"
	"powercap/internal/topology"
)

func TestNewAsyncValidation(t *testing.T) {
	us := mkCluster(t, 10, 41)
	if _, err := NewAsync(topology.Ring(10), us, 500, Config{}, 3, 1); err == nil {
		t.Fatal("infeasible budget must be rejected")
	}
	if _, err := NewAsync(topology.Ring(12), us, 2000, Config{}, 3, 1); err == nil {
		t.Fatal("size mismatch must be rejected")
	}
	if _, err := NewAsync(topology.Ring(10), us, 2000, Config{}, 0, 1); err == nil {
		t.Fatal("maxDelay < 1 must be rejected")
	}
	if _, err := NewAsync(topology.NewGraph(10), us, 2000, Config{}, 3, 1); err == nil {
		t.Fatal("disconnected graph must be rejected")
	}
}

func TestAsyncConvergesNearOptimal(t *testing.T) {
	n := 100
	us := mkCluster(t, n, 42)
	budget := float64(n) * 170
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := NewAsync(topology.Ring(n), us, budget, Config{}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Activations are per-node events; n·rounds activations correspond
	// loosely to `rounds` synchronous rounds.
	ac.Run(n * 3000)
	ac.Flush()
	if got := ac.TotalUtility(); got < 0.985*opt.Utility {
		t.Fatalf("async utility %v below 98.5%% of optimal %v", got, opt.Utility)
	}
	if ac.TotalPower() > budget {
		t.Fatalf("async power %v exceeds budget %v", ac.TotalPower(), budget)
	}
	if err := ac.CheckConservation(1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncConservationUnderRandomSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(30)
		us := mkCluster(t, n, seed)
		budget := float64(n) * (150 + rng.Float64()*40)
		delay := 1 + rng.Intn(8)
		ac, err := NewAsync(topology.Ring(n), us, budget, Config{}, delay, seed)
		if err != nil {
			return false
		}
		for k := 0; k < 500; k++ {
			ac.Step()
			// The async invariant must hold at *every* instant, with mass
			// in flight.
			if ac.CheckConservation(1e-6) != nil {
				return false
			}
		}
		ac.Flush()
		return ac.CheckConservation(1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncBudgetSafetyInPractice(t *testing.T) {
	// The async protocol's hard guarantee is conservation; budget safety is
	// receiver-protected and bounded by in-flight mass. Measure the worst
	// observed overshoot across a long delayed-message run: it must be
	// negligible relative to the budget.
	n := 60
	us := mkCluster(t, n, 43)
	budget := float64(n) * 168
	ac, err := NewAsync(topology.Ring(n), us, budget, Config{}, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for k := 0; k < n*2000; k++ {
		ac.Step()
		if over := ac.TotalPower() - budget; over > worst {
			worst = over
		}
	}
	if worst > 0.001*budget {
		t.Fatalf("async overshoot %v W exceeds 0.1%% of the budget", worst)
	}
}

func TestAsyncDelayToleranceDegradesGracefully(t *testing.T) {
	// Longer message delays may slow convergence but must not break it.
	n := 60
	us := mkCluster(t, n, 44)
	budget := float64(n) * 172
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	for _, delay := range []int{1, 5, 20} {
		ac, err := NewAsync(topology.Ring(n), us, budget, Config{}, delay, 11)
		if err != nil {
			t.Fatal(err)
		}
		ac.Run(n * 4000)
		ac.Flush()
		if got := ac.TotalUtility(); got < 0.97*opt.Utility {
			t.Fatalf("delay %d: utility %v below 97%% of optimal %v", delay, got, opt.Utility)
		}
	}
}

func TestAsyncMatchesSyncQuality(t *testing.T) {
	// Gossip and BSP must land at essentially the same allocation quality.
	n := 80
	us := mkCluster(t, n, 45)
	budget := float64(n) * 170
	en, err := New(topology.Ring(n), us, budget, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3000; k++ {
		en.Step()
	}
	ac, err := NewAsync(topology.Ring(n), us, budget, Config{}, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	ac.Run(n * 3000)
	ac.Flush()
	syncU, asyncU := en.TotalUtility(), ac.TotalUtility()
	if asyncU < 0.99*syncU {
		t.Fatalf("async quality %v below 99%% of sync %v", asyncU, syncU)
	}
}
