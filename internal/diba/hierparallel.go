package diba

import "sync"

// Sharded rounds for the hierarchical engine. The determinism contract is
// the flat engine's: every node reads only the previous round's snapshot
// and writes only slots it owns, so shards can run in any order, and the
// ΣP/ΣU aggregate deltas are folded serially in index order after the join
// (finishRound) — the exact addition sequence the serial Step performs.
// StepParallel is therefore bitwise identical to Step at any worker count.
//
// Unlike the flat engine, the hierarchical engine targets 100k–1M-node
// rounds where even the per-round fork cost matters, and its alloc-guard
// test requires a zero-allocation parallel step. Spawning goroutines per
// round allocates (goroutine + closure), so the engine keeps a persistent
// pool of shard workers, parked on per-worker command channels. A round
// sends each worker its [lo, hi) range by value and waits on a reused
// WaitGroup; nothing escapes to the heap in steady state.

// hierCmd is one shard assignment: advance nodes [lo, hi) under cfg and
// report activity into slot.
type hierCmd struct {
	cfg    Config
	lo, hi int
	slot   int
}

// hierPool is the persistent shard-worker pool of one HierEngine.
type hierPool struct {
	workers int
	cmds    []chan hierCmd
	wg      sync.WaitGroup
}

// ensurePool (re)builds the worker pool for the given worker count, along
// with the per-shard scratch: one activity slot and one per-family outflow
// buffer per worker (outBufs[0] doubles as the serial Step's scratch).
func (h *HierEngine) ensurePool(workers int) {
	if h.pool != nil && h.pool.workers == workers {
		return
	}
	h.closePool()
	if cap(h.actBuf) < workers {
		h.actBuf = make([]float64, workers)
	} else {
		h.actBuf = h.actBuf[:workers]
	}
	for len(h.outBufs) < workers {
		h.outBufs = append(h.outBufs, make([]float64, h.nl))
	}
	p := &hierPool{workers: workers, cmds: make([]chan hierCmd, workers)}
	for w := range p.cmds {
		ch := make(chan hierCmd, 1)
		p.cmds[w] = ch
		go func(w int, ch chan hierCmd) {
			for c := range ch {
				h.actBuf[c.slot] = h.shardStep(c.cfg, c.lo, c.hi, h.outBufs[w])
				p.wg.Done()
			}
		}(w, ch)
	}
	h.pool = p
}

// Close releases the engine's persistent shard workers. Optional: an
// engine that never called StepParallel (or whose rounds all fell back to
// the serial path) has no pool, and a leaked pool only parks goroutines on
// channel receives until the engine is collected.
func (h *HierEngine) Close() { h.closePool() }

func (h *HierEngine) closePool() {
	if h.pool == nil {
		return
	}
	// Only called between rounds: after finishRound every worker is parked
	// on its channel receive, so closing is race-free.
	for _, ch := range h.pool.cmds {
		close(ch)
	}
	h.pool = nil
}

// StepParallel advances one synchronous round sharded over the given
// number of workers (0 selects GOMAXPROCS). It computes bitwise-identical
// state to Step at any worker count; when the effective count is 1 — or
// the cluster is below stepParallelMinN, the flat engine's measured
// crossover — it falls back to the serial Step, which is faster there.
// Steady-state rounds allocate nothing (the pool is built on first use or
// worker-count change).
func (h *HierEngine) StepParallel(workers int) float64 {
	n := len(h.us)
	workers = stepParallelWorkers(n, workers)
	if workers <= 1 {
		return h.Step()
	}
	h.ensurePool(workers)
	chunk := (n + workers - 1) / workers
	shards := (n + chunk - 1) / chunk
	h.pool.wg.Add(shards)
	for w := 0; w < shards; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		h.pool.cmds[w] <- hierCmd{cfg: h.cfg, lo: lo, hi: hi, slot: w}
	}
	h.pool.wg.Wait()
	h.finishRound()
	var maxAct float64
	for _, a := range h.actBuf[:shards] {
		if a > maxAct {
			maxAct = a
		}
	}
	return maxAct
}
