package diba

import (
	"math"
	"runtime"
	"sync"
)

// StepParallel advances one synchronous round using the given number of
// worker goroutines (0 selects GOMAXPROCS). It computes exactly the same
// state as Step — every node reads only the previous round's snapshot and
// writes only its own slots, so the result is deterministic and bitwise
// identical regardless of worker count. Worth using from a few thousand
// nodes upward; below that the fork/join overhead dominates.
func (en *Engine) StepParallel(workers int) float64 {
	n := len(en.us)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return en.Step()
	}
	cfg := en.cfg
	cfg.Eta = en.cfg.etaAt(en.iter)

	activities := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var nbrE []float64
			var nbrDeg []int
			var activity float64
			for i := lo; i < hi; i++ {
				if en.dead[i] {
					en.pNext[i], en.eNext[i] = 0, 0
					continue
				}
				ns := en.g.Neighbors(i)
				nbrE = nbrE[:0]
				nbrDeg = nbrDeg[:0]
				for _, j := range ns {
					nbrE = append(nbrE, en.e[j])
					nbrDeg = append(nbrDeg, en.g.Degree(j))
				}
				phat, outflow := nodeRule(cfg, en.us[i], en.p[i], en.e[i], len(ns), nbrE, nbrDeg)
				en.pNext[i] = en.p[i] + phat
				en.eNext[i] = en.e[i] + phat - outflow
				if m := math.Abs(phat); m > activity {
					activity = m
				}
				if m := math.Abs(outflow); m > activity {
					activity = m
				}
			}
			activities[w] = activity
		}(w, lo, hi)
	}
	wg.Wait()
	en.p, en.pNext = en.pNext, en.p
	en.e, en.eNext = en.eNext, en.e
	en.iter++
	var max float64
	for _, a := range activities {
		if a > max {
			max = a
		}
	}
	return max
}
