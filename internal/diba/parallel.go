package diba

import (
	"math"
	"runtime"
	"sync"
)

// stepParallelMinN is the smallest cluster StepParallel will actually fork
// goroutines for; below it the fork/join overhead beats the per-round work
// (the BenchmarkStepSerial*/BenchmarkStepParallel* pair measures the
// crossover, recorded in the committed BENCH files) and the serial path is
// both faster and trivially bitwise identical. A variable, not a constant,
// so the bitwise-identity tests can drop it and force real forking on
// small clusters.
var stepParallelMinN = stepParallelThreshold

// stepParallelWorkers resolves the worker count StepParallel dispatches
// with for an n-node round: 0 selects GOMAXPROCS, the count is clamped to
// n, and a resolved count of 1 — or a cluster below stepParallelMinN —
// selects the serial path.
func stepParallelWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < stepParallelMinN {
		return 1
	}
	return workers
}

// StepParallel advances one synchronous round using the given number of
// worker goroutines (0 selects GOMAXPROCS). It computes exactly the same
// state as Step — every node reads only the previous round's snapshot and
// writes only its own slots, and the incremental power/utility aggregates
// are reduced from per-node deltas in index order after the join, the same
// addition sequence the serial loop performs — so the result is
// deterministic and bitwise identical regardless of worker count. When the
// effective worker count is 1 or the cluster is below stepParallelMinN it
// falls back to the serial Step, which is faster there.
func (en *Engine) StepParallel(workers int) float64 {
	n := len(en.us)
	workers = stepParallelWorkers(n, workers)
	if workers <= 1 {
		return en.Step()
	}
	cfg := en.cfg
	cfg.Eta = en.cfg.etaAt(en.iter)

	activities := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var nbrE []float64
			var activity float64
			for i := lo; i < hi; i++ {
				if en.dead[i] {
					en.pNext[i], en.eNext[i] = 0, 0
					continue
				}
				var phat, outflow float64
				if en.allQuad {
					phat, outflow = en.roundQuad(cfg, i)
				} else {
					nlo, nhi := en.off[i], en.off[i+1]
					nbrE = nbrE[:0]
					for _, j := range en.nbrs[nlo:nhi] {
						nbrE = append(nbrE, en.e[j])
					}
					phat, outflow = nodeRule(cfg, en.us[i], en.p[i], en.e[i], int(nhi-nlo), nbrE, en.nbrDeg[nlo:nhi])
				}
				pn := en.p[i] + phat
				en.pNext[i] = pn
				en.eNext[i] = en.e[i] + phat - outflow
				var un float64
				if en.allQuad {
					un = quadValueV(en.qs[i], en.quadV[i], pn)
				} else {
					un = en.us[i].Value(pn)
				}
				en.dP[i] = phat
				en.dU[i] = un - en.uVal[i]
				en.uVal[i] = un
				if m := math.Abs(phat); m > activity {
					activity = m
				}
				if m := math.Abs(outflow); m > activity {
					activity = m
				}
			}
			activities[w] = activity
		}(w, lo, hi)
	}
	wg.Wait()
	// Reduce the aggregate deltas serially in index order — float addition
	// is not associative, and this order is exactly what Step produces.
	sumP, sumU := en.sumP, en.sumU
	for i := 0; i < n; i++ {
		if en.dead[i] {
			continue
		}
		sumP += en.dP[i]
		sumU += en.dU[i]
	}
	en.sumP, en.sumU = sumP, sumU
	en.p, en.pNext = en.pNext, en.p
	en.e, en.eNext = en.eNext, en.e
	en.iter++
	en.publishRound()
	var maxAct float64
	for _, a := range activities {
		if a > maxAct {
			maxAct = a
		}
	}
	return maxAct
}
