package diba

import (
	"errors"
	"sync"
	"testing"
	"time"

	"powercap/internal/topology"
)

// runToRound drives one agent to the target round, reporting any error
// other than the injected crash (which the caller handles).
func runToRound(a *Agent, target int) error {
	for a.Round() < target {
		if err := a.StepOnce(); err != nil {
			return err
		}
	}
	return nil
}

func TestCrashRestartRejoinRestoresBudgetExactly(t *testing.T) {
	// The full restart-rejoin drill, in process: a mid-broadcast crash,
	// detection + ring repair by the survivors, then the victim restarts
	// from its snapshot, rejoins through the handshake, and the cluster
	// heals to its original membership. Afterwards every agent's budget
	// view must be exactly the configured B again, no dead records may
	// remain, and the conservation identity Σe = Σp − B must hold over the
	// full (healed) membership.
	checkGoroutineLeak(t)
	n := 6
	const victim = 3
	us := mkCluster(t, n, 41)
	budget := float64(n) * 170
	g := topology.Ring(n)
	standby := ringStandby(n, 2)
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	const rounds = 300

	// Delays pace the rounds to ~ms so the rejoin handshake (wall-clock)
	// fits inside the round budget; the odd crash threshold lands the
	// crash mid-broadcast (degree 2), the hardest reconciliation case.
	plan := &FaultPlan{Seed: 17, DelayProb: 1.0, MaxDelay: 1500 * time.Microsecond, CrashAfterSends: map[int]int{victim: 101}}
	fp := FaultPolicy{GatherTimeout: 400 * time.Millisecond, Recover: true}
	net := NewChanNetwork(n, 256)

	var wg sync.WaitGroup
	states := make([]AgentState, n)
	errs := make([]error, n)
	crashed := make(chan AgentSnapshot, 1)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := NewAgent(i, g.NeighborsInts(i), us[i], budget, n, totalIdle, Config{}, NewFaultTransport(net.Endpoint(i), i, plan))
			if err != nil {
				errs[i] = err
				return
			}
			a.SetFaultPolicy(fp)
			a.SetStandby(standby[i])
			if err := runToRound(a, rounds); err != nil {
				if errors.Is(err, ErrCrashed) {
					snap := a.Snapshot()
					_ = a.tr.Close()
					crashed <- snap
					return
				}
				errs[i] = err
				return
			}
			states[i] = a.state()
		}(i)
	}

	// The operator side: wait for the crash, restart the daemon on the
	// same host from its snapshot, rejoin, run to the common final round.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var snap AgentSnapshot
		select {
		case snap = <-crashed:
		case <-time.After(30 * time.Second):
			errs[victim] = errors.New("victim never crashed; injection broken")
			return
		}
		net.Reopen(victim)
		a, err := NewAgent(victim, g.NeighborsInts(victim), us[victim], budget, n, totalIdle, Config{}, net.Endpoint(victim))
		if err != nil {
			errs[victim] = err
			return
		}
		a.SetFaultPolicy(fp)
		if err := a.Resume(snap); err != nil {
			errs[victim] = err
			return
		}
		if err := a.Rejoin(10 * time.Second); err != nil {
			errs[victim] = err
			return
		}
		if a.Round() <= snap.Round {
			errs[victim] = errors.New("rejoin round not ahead of the crash snapshot")
			return
		}
		if err := runToRound(a, rounds); err != nil {
			errs[victim] = err
			return
		}
		states[victim] = a.state()
	}()
	wg.Wait()
	plan.Quiesce()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}

	var sumP, sumE float64
	for i, st := range states {
		if st.Rounds != rounds {
			t.Fatalf("agent %d stopped at round %d, want %d", i, st.Rounds, rounds)
		}
		if len(st.Dead) != 0 {
			t.Fatalf("agent %d still holds dead records %v after the rejoin", i, st.Dead)
		}
		if st.Budget != budget {
			t.Fatalf("agent %d budget view %v, want exactly %v", i, st.Budget, budget)
		}
		sumP += st.Power
		sumE += st.E
	}
	if gap := sumE - (sumP - budget); gap > 1e-6 || gap < -1e-6 {
		t.Fatalf("conservation violated after rejoin: Σe − (Σp − B) = %v", gap)
	}
	if sumP > budget+1e-9 {
		t.Fatalf("healed cluster exceeds budget: Σp = %v > %v", sumP, budget)
	}
}

func TestAgentSnapshotRoundTripAndValidation(t *testing.T) {
	us := mkCluster(t, 4, 42)
	budget := 4.0 * 170
	g := topology.Ring(4)
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	mk := func() *Agent {
		a, err := NewAgent(1, g.NeighborsInts(1), us[1], budget, 4, totalIdle, Config{}, &recordingTransport{})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a := mk()
	a.round, a.p, a.e = 37, 150, -3.25
	snap := a.Snapshot()

	b := mk()
	if err := b.Resume(snap); err != nil {
		t.Fatalf("round-trip resume: %v", err)
	}
	if b.Round() != 37 || b.Power() != 150 || b.Estimate() != -3.25 {
		t.Fatalf("resumed state (%d, %v, %v) does not match snapshot", b.Round(), b.Power(), b.Estimate())
	}

	bad := []AgentSnapshot{
		{Version: 99, ID: 1, Round: 1, P: 150, E: -1, Budget: budget},
		{Version: 1, ID: 2, Round: 1, P: 150, E: -1, Budget: budget},
		{Version: 1, ID: 1, Round: -1, P: 150, E: -1, Budget: budget},
		{Version: 1, ID: 1, Round: 1, P: 1e9, E: -1, Budget: budget},
		{Version: 1, ID: 1, Round: 1, P: 150, E: 0.5, Budget: budget},
		{Version: 1, ID: 1, Round: 1, P: 150, E: -1, Budget: budget + 10},
	}
	for k, s := range bad {
		if err := mk().Resume(s); err == nil {
			t.Fatalf("bad snapshot %d accepted: %+v", k, s)
		}
	}
}
