package diba

import (
	"fmt"
	"math"
	"sort"
)

// lease.go is the integer budget-lease accounting of the hierarchical
// runtime (hieragent.go). The acceptance bar is bitwise: across every
// failure in the matrix — aggregate crash, inter-level partition, lease
// expiry — the per-group leases must reconcile to exactly the cluster
// budget, Σ(leases) == B, not to within a float tolerance. Floating-point
// transfers cannot deliver that (addition is not associative and transfer
// amounts differ per observer), so leases live in integer milliwatts:
//
//   - GenesisLeases splits B over the groups by cumulative integer
//     division, so the genesis shares sum to B exactly, by construction.
//   - Each inter-group edge carries two monotone donation counters, one
//     per direction, each written by exactly one group (its aggregate of
//     the moment). A group's lease is the identity
//
//       L_g = genesis_g − Σ_edges (given_e − taken_e)
//
//     where given is what g donated over the edge and taken is g's view of
//     the peer's donations. Counters only grow, so views merge by max —
//     a state-based CRDT — and any interleaving of crashes, replays and
//     reorderings converges to the same ledger.
//   - Summing the identity over all groups, each edge contributes
//     (given_A − taken_B) + (given_B − taken_A). taken is a max-merge of
//     past values of the peer's given, so taken_B <= given_A always:
//     Σ L_g <= B at every instant (transfers in flight strand power, never
//     mint it), with equality — bitwise, it is integer arithmetic — as
//     soon as both ends of every edge have exchanged one message.
//
// Failover is where the single-writer rule earns its keep: a freshly
// promoted aggregate has no ledger, but every neighbor holds the dead
// aggregate's given counters as its own taken, and echoes them back in the
// hello/ack exchange (Message.Cum carries the sender's given, Message.Lease
// the echo of the receiver's). One exchange per edge rebuilds the exact
// ledger; until every edge has confirmed (Synced), the successor treats the
// last flooded lease as provisional and must not donate.

// mwPerW converts between the float watt domain of the consensus plane and
// the integer milliwatt domain of the lease ledger.
const mwPerW = 1000

// LeaseMilliwatts converts watts to the ledger's integer milliwatts,
// rounding to nearest.
func LeaseMilliwatts(w float64) int64 { return int64(math.Round(w * mwPerW)) }

// LeaseWatts converts ledger milliwatts back to watts.
func LeaseWatts(mw int64) float64 { return float64(mw) / mwPerW }

// GenesisLeases splits budgetMw over groups proportionally to their sizes,
// by cumulative integer division: group g gets its cumulative share's end
// minus its start, so the shares differ by at most 1 mw from proportional
// and sum to budgetMw exactly. An empty or zero-size group gets 0.
func GenesisLeases(budgetMw int64, sizes []int) ([]int64, error) {
	total := 0
	for g, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("diba: group %d has negative size %d", g, s)
		}
		total += s
	}
	if total == 0 {
		return nil, fmt.Errorf("diba: no nodes across %d groups", len(sizes))
	}
	out := make([]int64, len(sizes))
	var acc int64
	cum := 0
	for g, s := range sizes {
		cum += s
		end := budgetMw * int64(cum) / int64(total)
		out[g] = end - acc
		acc = end
	}
	return out, nil
}

// leaseEdge is one inter-group edge's state as seen from this group: two
// monotone donation counters and a freshness flag.
type leaseEdge struct {
	// given is the net milliwatts this group has donated over the edge.
	// Written only by this group's acting aggregate; monotone nondecreasing.
	given int64
	// taken is this group's view of the peer's donations to it: a max-merge
	// of the given counter the peer's messages carry. Monotone, and never
	// ahead of the peer's actual given.
	taken int64
	// synced records that at least one message from the peer has been
	// merged since this ledger was (re)constructed — the edge's counters
	// are real, not the zero value of a fresh failover.
	synced bool
}

// LeaseLedger tracks one group's budget lease as the conservation identity
// genesis − Σ(given − taken) over its inter-group edges. Not safe for
// concurrent use; HierAgent mutates it only between rounds.
type LeaseLedger struct {
	genesis int64
	edges   map[int]*leaseEdge
}

// NewLeaseLedger builds a ledger for a group whose genesis share is
// genesisMw and whose upper-ring neighbors are peerGroups. synced marks the
// edges as already confirmed — true only for the initial rank-0 aggregate
// at round zero, when no transfer can have happened yet; a failover
// successor starts unsynced and rebuilds the counters from its neighbors'
// echoes.
func NewLeaseLedger(genesisMw int64, peerGroups []int, synced bool) *LeaseLedger {
	l := &LeaseLedger{genesis: genesisMw, edges: make(map[int]*leaseEdge, len(peerGroups))}
	for _, g := range peerGroups {
		l.edges[g] = &leaseEdge{synced: synced}
	}
	return l
}

// Genesis returns the group's genesis share in milliwatts.
func (l *LeaseLedger) Genesis() int64 { return l.genesis }

// Lease evaluates the conservation identity: genesis minus the net
// milliwatts donated over every edge.
func (l *LeaseLedger) Lease() int64 {
	lease := l.genesis
	for _, e := range l.edges {
		lease -= e.given - e.taken
	}
	return lease
}

// Synced reports whether every edge has merged at least one peer message
// since construction. An unsynced ledger's Lease() may undercount what the
// group already donated, so the aggregate must treat the last flooded lease
// as provisional and must not donate until Synced.
func (l *LeaseLedger) Synced() bool {
	for _, e := range l.edges {
		if !e.synced {
			return false
		}
	}
	return true
}

// EdgeSynced reports whether the edge to peer has been confirmed.
func (l *LeaseLedger) EdgeSynced(peer int) bool {
	e, ok := l.edges[peer]
	return ok && e.synced
}

// Given returns the net milliwatts donated to peer.
func (l *LeaseLedger) Given(peer int) int64 {
	if e, ok := l.edges[peer]; ok {
		return e.given
	}
	return 0
}

// Taken returns this group's view of peer's donations to it.
func (l *LeaseLedger) Taken(peer int) int64 {
	if e, ok := l.edges[peer]; ok {
		return e.taken
	}
	return 0
}

// Peers returns the ledger's edge peers in ascending group order.
func (l *LeaseLedger) Peers() []int {
	out := make([]int, 0, len(l.edges))
	for g := range l.edges {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// Donate commits a donation of mw milliwatts to peer: the group's lease
// drops by mw immediately (donor-first — the recipient raises only when the
// message carrying the new counter reaches it, so a lost message strands
// power instead of minting it). mw must be nonnegative; unknown peers and
// mw <= 0 are no-ops.
func (l *LeaseLedger) Donate(peer int, mw int64) {
	if mw <= 0 {
		return
	}
	if e, ok := l.edges[peer]; ok {
		e.given += mw
	}
}

// Merge folds one peer message's edge state in: peerGiven is the peer's own
// donation counter (raises our taken), echo is the peer's record of OUR
// donations to it (raises our given — the failover recovery path: a fresh
// successor's zero counter is restored from what the neighbors witnessed).
// Both merges are max, so replayed and reordered messages are harmless, and
// the edge becomes synced. Unknown peers are ignored.
func (l *LeaseLedger) Merge(peer int, peerGiven, echo int64) {
	e, ok := l.edges[peer]
	if !ok {
		return
	}
	if peerGiven > e.taken {
		e.taken = peerGiven
	}
	if echo > e.given {
		e.given = echo
	}
	e.synced = true
}
