package diba

import (
	"testing"

	"powercap/internal/topology"
	"powercap/internal/workload"
)

// The engine dispatches to roundQuad (precomputed saturation vertex and
// per-edge χ, no interface calls) whenever every utility is a concrete
// workload.Quadratic. That specialization must be invisible: the fast and
// generic paths are required to produce bitwise-identical trajectories,
// because agents and the TCP daemon run the generic rule and the repo's
// determinism guarantees compare engine and agent floats with ==.
func TestQuadFastPathMatchesGenericRule(t *testing.T) {
	const n, rounds = 140, 200
	build := func() *Engine { return newTestEngine(t, topology.ChordalRing(n, 7), n) }

	fast := build()
	generic := build()
	if !fast.allQuad {
		t.Fatal("fitted workloads should enable the quad fast path")
	}
	generic.allQuad = false // force the interface-dispatch path

	for r := 0; r < rounds; r++ {
		if r == 60 {
			// Out-of-band utility swap: rebuildQuadCache must refresh the
			// precomputed vertex or the fast path diverges here.
			q, err := workload.NewQuadratic(2, 1.4, -0.004, 60, 210)
			if err != nil {
				t.Fatal(err)
			}
			if err := fast.SetUtility(17, q); err != nil {
				t.Fatal(err)
			}
			if err := generic.SetUtility(17, q); err != nil {
				t.Fatal(err)
			}
			generic.allQuad = false // SetUtility re-detects; re-force
		}
		if r == 120 {
			if err := fast.FailNode(33); err != nil {
				t.Fatal(err)
			}
			if err := generic.FailNode(33); err != nil {
				t.Fatal(err)
			}
		}
		actF := fast.Step()
		actG := generic.Step()
		if actF != actG {
			t.Fatalf("round %d: activity diverged: fast %v generic %v", r, actF, actG)
		}
		if r%25 == 0 {
			requireIdentical(t, generic, fast, r, "quad-fast-path")
		}
	}
	requireIdentical(t, generic, fast, rounds, "quad-fast-path")

	// And the parallel step must agree with the generic serial path too.
	fastPar := build()
	genSerial := build()
	genSerial.allQuad = false
	for r := 0; r < rounds; r++ {
		actP := fastPar.StepParallel(3)
		actS := genSerial.Step()
		if actP != actS {
			t.Fatalf("round %d: parallel fast path diverged from generic serial: %v vs %v", r, actP, actS)
		}
	}
	requireIdentical(t, genSerial, fastPar, rounds, "quad-fast-path-parallel")
}
