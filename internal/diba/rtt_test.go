package diba

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// The estimator is pure — it never reads the clock — so its contracts can
// be checked as properties over arbitrary sample streams.

// clampDur maps an arbitrary int64 into a positive duration bounded well
// below the overflow range, so property inputs stay physical.
func clampDur(v int64, max time.Duration) time.Duration {
	if v < 0 {
		v = -v
	}
	return time.Duration(v%int64(max)) + time.Nanosecond
}

// Suspicion is zero at or below the floor and monotone in silence beyond
// it: more silence never looks healthier.
func TestSuspicionFloorAndMonotone(t *testing.T) {
	prop := func(samples []int64, s1, s2, floorRaw int64) bool {
		var r PeerRTT
		for _, v := range samples {
			r.Observe(clampDur(v, time.Second))
		}
		floor := clampDur(floorRaw, 10*time.Second)
		a := clampDur(s1, time.Hour)
		b := clampDur(s2, time.Hour)
		if a > b {
			a, b = b, a
		}
		if r.Suspicion(floor/2, floor) != 0 || r.Suspicion(floor, floor) != 0 {
			return false
		}
		return r.Suspicion(a, floor) <= r.Suspicion(b, floor)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Deadline stays inside [min, max] for every sample history, and with no
// samples it returns max — a never-measured peer gets full patience.
func TestDeadlineClamp(t *testing.T) {
	prop := func(samples []int64, minRaw, maxRaw int64) bool {
		var r PeerRTT
		dmin := clampDur(minRaw, time.Second)
		dmax := clampDur(maxRaw, time.Second)
		if dmax < dmin {
			dmin, dmax = dmax, dmin
		}
		if r.Deadline(dmin, dmax) != dmax {
			return false
		}
		for _, v := range samples {
			r.Observe(clampDur(v, time.Second))
		}
		d := r.Deadline(dmin, dmax)
		return d >= dmin && d <= dmax
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// A slow spell must wash out: after a full window of fast samples the
// windowed statistics reflect only the clean regime, and the adaptive
// deadline converges back toward the fast round trips.
func TestEstimatorRecoversAfterCleanWindow(t *testing.T) {
	var r PeerRTT
	const slow, fast = 80 * time.Millisecond, 200 * time.Microsecond
	for i := 0; i < 64; i++ {
		r.Observe(slow)
	}
	for i := 0; i < rttWindow; i++ {
		r.Observe(fast)
	}
	if m := r.Mean(); m < fast-time.Microsecond || m > fast+time.Microsecond {
		t.Errorf("windowed mean %v after a clean window, want ~%v", m, fast)
	}
	if p := r.P99(); p != fast {
		t.Errorf("windowed p99 %v after a clean window, want %v", p, fast)
	}
	d := r.Deadline(0, time.Second)
	if d > 10*fast {
		t.Errorf("deadline %v has not recovered toward the %v round trips", d, fast)
	}
}

// jitterDur spreads into [0.85d, 1.15d) and passes d through unchanged
// for a nil rng or non-positive d.
func TestJitterDurBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(raw int64) bool {
		d := clampDur(raw, time.Minute)
		j := jitterDur(d, rng)
		lo := time.Duration(float64(d) * 0.85)
		hi := time.Duration(float64(d) * 1.15)
		return j >= lo && j <= hi
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if jitterDur(time.Second, nil) != time.Second {
		t.Error("nil rng must pass the duration through unchanged")
	}
	if jitterDur(-time.Second, rng) != -time.Second {
		t.Error("non-positive durations must pass through unchanged")
	}
}
