package diba

import "sync/atomic"

// Control-plane state publication.
//
// The operator-facing API (internal/ctlplane) must answer cap/budget/health
// queries continuously while the consensus loop runs underneath, and it
// must never perturb a round to do so. The contract that makes that safe is
// one-directional and lock-free:
//
//   - Once per completed round, the owning goroutine (Agent, HierAgent or
//     Engine) builds a fresh, immutable StateSnapshot and swaps it into a
//     StatePub with a single atomic pointer store.
//   - Readers call Load and get the latest published snapshot. They never
//     take a lock, never block a round, and never observe consensus state
//     mid-update — only whole rounds, always self-consistent.
//   - A snapshot is never mutated after Publish. Serving layers may cache
//     derived artifacts (encoded bytes) keyed by the snapshot pointer
//     itself, which is what makes a steady-state read a pointer load plus
//     one write.
//
// The publication hook is opt-in: with no StatePub installed the round loop
// carries zero overhead and the engine hot paths keep their 0 allocs/op
// guarantee.

// WatchdogView is the cap-safety watchdog's status as published in a
// StateSnapshot. The daemon maps safety.Stats into it via the publisher's
// decorator so this package needs no dependency on internal/safety.
type WatchdogView struct {
	Enabled    bool
	Periods    int
	Violations int
	Sheds      int
	Releases   int
	// MinDerate is the deepest cap derate ever applied (1 if never shed).
	MinDerate float64
}

// PeerWire pairs a peer id with its wire-level traffic counters, sorted by
// peer id in the snapshot so encoding is deterministic.
type PeerWire struct {
	Peer  int
	Stats WireStats
}

// StateSnapshot is one round's externally visible state: everything the
// control plane serves, frozen at a round boundary. Snapshots are immutable
// after publication; every slice they carry is freshly built by the
// publishing goroutine and never written again.
type StateSnapshot struct {
	// Seq increments on every publication; readers use it to order
	// snapshots and to key caches of derived encodings.
	Seq uint64

	// Agent-mode fields (one daemon, one node).
	Node int
	// Round is the consensus round the snapshot was taken after.
	Round int
	// CapW is the cap actually applied to the server — the consensus
	// allocation unless the telemetry guard froze it lower.
	CapW float64
	// ConsensusW is the consensus allocation p_i.
	ConsensusW float64
	// EstimateW is the surplus estimate e_i.
	EstimateW float64
	// BudgetW is this node's current view of the cluster budget (shrunk by
	// known deaths, or derived from the group lease in hierarchical mode).
	BudgetW float64
	// Dead lists the node ids this agent believes dead, ascending.
	Dead []int
	// Degraded reports the local telemetry verdict (sensor distrusted).
	Degraded bool
	// Health carries the per-peer gray-failure verdicts (RTT, suspicion,
	// staleness), sorted by peer id.
	Health []PeerHealth

	// Hierarchical-mode fields (zero/false on a flat ring).
	Hier      bool
	Group     int
	Epoch     int
	LeaseMw   int64
	Aggregate bool
	Frozen    bool
	// GrayPeers lists group members currently excluded from aggregate
	// election by the renewal-starvation detector.
	GrayPeers []int
	// Renewals counts successful lease renewals by this node; Demotions
	// counts times this node stood down from the aggregate role.
	Renewals  int
	Demotions int

	// Transport accounting, attached by the publisher's decorator (the
	// consensus layer does not know its transport's counters).
	Wire      WireStats
	WirePeers []PeerWire
	// Watchdog is the local cap-safety watchdog status.
	Watchdog WatchdogView

	// Engine-mode fields (standalone in-process cluster, Node == -1).
	EngineMode bool
	N          int
	TotalPowW  float64
	TotalUtil  float64
	// Caps is the full per-node allocation (engine mode only).
	Caps []float64
}

// StatePub publishes immutable per-round snapshots via an atomic pointer
// swap. The zero value is ready to use. Exactly one goroutine publishes
// (the round loop); any number of goroutines Load concurrently.
type StatePub struct {
	cur atomic.Pointer[StateSnapshot]
	seq atomic.Uint64
	// decorate, when set, runs on the publishing goroutine just before the
	// swap — the daemon uses it to attach wire counters and watchdog stats
	// the consensus layer cannot see. It must only write fields of the
	// not-yet-published snapshot.
	decorate func(*StateSnapshot)
}

// SetDecorator installs fn to run on every publication, on the publishing
// goroutine, before the snapshot becomes visible. Install it before the
// round loop starts; it is not synchronized against a concurrent Publish.
func (p *StatePub) SetDecorator(fn func(*StateSnapshot)) { p.decorate = fn }

// Publish stamps s with the next sequence number, runs the decorator, and
// makes s the current snapshot. s must not be mutated afterwards.
func (p *StatePub) Publish(s *StateSnapshot) {
	s.Seq = p.seq.Add(1)
	if p.decorate != nil {
		p.decorate(s)
	}
	p.cur.Store(s)
}

// Load returns the latest published snapshot, or nil before the first
// publication. The returned snapshot is immutable and safe to read from
// any goroutine.
func (p *StatePub) Load() *StateSnapshot { return p.cur.Load() }

// Seq returns the sequence number of the latest publication (0 before the
// first).
func (p *StatePub) Seq() uint64 { return p.seq.Load() }

// PublishState installs pub as the agent's per-round publication target:
// at the end of every completed round the agent builds a StateSnapshot and
// swaps it in. Install before the round loop starts. A nil pub disables
// publication.
func (a *Agent) PublishState(pub *StatePub) { a.pub = pub }

// publishRound builds and publishes this round's snapshot. Called at the
// end of runRound on the agent's own goroutine, so every field read is
// ordinary single-threaded access to consensus state.
func (a *Agent) publishRound() {
	if a.pub == nil {
		return
	}
	a.pub.Publish(a.buildSnapshot())
}

// buildSnapshot assembles the agent-mode snapshot base. HierAgent reuses it
// and layers the lease fields on top.
func (a *Agent) buildSnapshot() *StateSnapshot {
	return &StateSnapshot{
		Node:       a.ID,
		Round:      a.round,
		CapW:       a.AppliedCap(),
		ConsensusW: a.p,
		EstimateW:  a.e,
		BudgetW:    a.budget,
		Dead:       a.DeadNodes(),
		Degraded:   a.Degraded(),
		Health:     a.PeerHealth(),
	}
}

// PublishState installs pub as the hierarchical agent's publication target.
// The underlying flat agent's own hook stays nil — HierAgent publishes once
// per Step, after the lease/role bookkeeping, so the snapshot's hierarchy
// fields are from the same round as its consensus fields.
func (h *HierAgent) PublishState(pub *StatePub) { h.pub = pub }

func (h *HierAgent) publishRound() {
	if h.pub == nil {
		return
	}
	s := h.ag.buildSnapshot()
	s.Hier = true
	s.Group = h.group
	s.Epoch = h.epoch
	s.LeaseMw = h.leaseMw
	s.Aggregate = h.aggActive
	s.Frozen = h.frozen
	s.GrayPeers = h.Gray()
	s.Renewals = h.renewCount
	s.Demotions = h.demoteCount
	h.pub.Publish(s)
}

// PublishState installs pub as the engine's publication target: every Step
// or StepParallel publishes a cluster-level snapshot (Node == -1) with the
// full per-node allocation. With no publisher installed the step paths are
// untouched and keep their zero-allocation guarantee.
func (en *Engine) PublishState(pub *StatePub) { en.pub = pub }

func (en *Engine) publishRound() {
	if en.pub == nil {
		return
	}
	en.pub.Publish(&StateSnapshot{
		Node:       -1,
		EngineMode: true,
		N:          en.N(),
		Round:      en.iter,
		BudgetW:    en.budget,
		TotalPowW:  en.sumP,
		TotalUtil:  en.sumU,
		Caps:       append([]float64(nil), en.p...),
	})
}
