package netsim

import (
	"errors"
	"math/rand"
	"sort"
	"time"
)

// Stochastic coordinator model. The deterministic formulas in this package
// give the mean picture; Section 4.4.1's methodology draws uplink packet
// handling times from a Poisson process ("the packets arrival time are
// drawn from the Poisson distribution with average inter-arrival time of
// 200µs"). GatherScatter simulates the coordinator's serial queue with
// exponential per-packet service, giving the full distribution of round
// times — the jitter real coordinators see on top of the mean.

// RoundStats summarizes sampled coordinator rounds.
type RoundStats struct {
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	Max  time.Duration
}

// GatherScatter samples the duration of `rounds` coordinator round-trips
// with n nodes: n uplink packets served serially with exponential service
// time (mean Read) followed by n serial downlink writes (mean Write).
func (l LinkModel) GatherScatter(n, rounds int, rng *rand.Rand) (RoundStats, error) {
	if n <= 0 || rounds <= 0 {
		return RoundStats{}, errors.New("netsim: n and rounds must be positive")
	}
	samples := make([]float64, rounds)
	readMean := float64(l.Read)
	writeMean := float64(l.Write)
	for r := 0; r < rounds; r++ {
		var total float64
		for i := 0; i < n; i++ {
			total += rng.ExpFloat64() * readMean
			total += rng.ExpFloat64() * writeMean
		}
		samples[r] = total
	}
	sort.Float64s(samples)
	var sum float64
	for _, s := range samples {
		sum += s
	}
	at := func(q float64) time.Duration {
		idx := int(q * float64(rounds-1))
		return time.Duration(samples[idx])
	}
	return RoundStats{
		Mean: time.Duration(sum / float64(rounds)),
		P50:  at(0.50),
		P95:  at(0.95),
		Max:  time.Duration(samples[rounds-1]),
	}, nil
}

// DiBARoundSampled samples one DiBA round's communication time with
// exponential per-packet service: each node's exchanges run in parallel,
// so the round is the maximum over nodes of (read+write) — with n nodes
// the expected maximum grows only logarithmically, which is why sampled
// DiBA rounds stay tightly bounded where coordinator rounds balloon.
func (l LinkModel) DiBARoundSampled(n int, rng *rand.Rand) time.Duration {
	var worst float64
	for i := 0; i < n; i++ {
		d := rng.ExpFloat64()*float64(l.Read) + rng.ExpFloat64()*float64(l.Write)
		if d > worst {
			worst = d
		}
	}
	return time.Duration(worst)
}
