// Package netsim models the communication cost of the three allocation
// architectures, following Section 4.4's methodology: the measured average
// latencies of reading and writing a packet on TCP sockets between two
// cluster nodes (≈200 µs and ≈10 µs) drive a queueing model of the
// coordinator's uplink/downlink in the centralized and primal-dual schemes,
// while DiBA's neighbor exchanges proceed in parallel and cost one
// read+write per round regardless of cluster size. These are the models
// behind Table 4.2.
package netsim

import (
	"math"
	"math/rand"
	"time"
)

// LinkModel carries the per-packet service times of one TCP hop.
type LinkModel struct {
	// Read is the time for a node to read one packet from a socket.
	Read time.Duration
	// Write is the time to write one packet to a socket.
	Write time.Duration
}

// Measured is the link model measured on the experimental cluster
// (Section 4.4.2): reading ≈ 200 µs, writing ≈ 10 µs.
var Measured = LinkModel{Read: 200 * time.Microsecond, Write: 10 * time.Microsecond}

// perPacket is the coordinator-side cost of handling one node's packet.
func (l LinkModel) perPacket() time.Duration { return l.Read + l.Write }

// CentralizedRound returns the communication time of one centralized
// round-trip: the coordinator serially reads all n utility reports
// ("uplink") and serially writes the n cap assignments back ("downlink").
func (l LinkModel) CentralizedRound(n int) time.Duration {
	return time.Duration(n) * l.perPacket()
}

// PDTotal returns the primal-dual scheme's communication time: every
// iteration repeats the coordinator's serial gather/scatter of n packets.
func (l LinkModel) PDTotal(n, iters int) time.Duration {
	return time.Duration(iters) * l.CentralizedRound(n)
}

// DiBARound returns one DiBA round's communication time: each node writes
// to and reads from its neighbors over independent links in parallel, so
// the round costs one read plus one write regardless of cluster size (the
// per-neighbor exchanges overlap).
func (l LinkModel) DiBARound() time.Duration { return l.perPacket() }

// DiBATotal returns DiBA's communication time for the given number of
// rounds — flat in cluster size.
func (l LinkModel) DiBATotal(iters int) time.Duration {
	return time.Duration(iters) * l.DiBARound()
}

// SampledGather draws the coordinator's uplink time for n nodes with
// exponentially distributed per-packet service (mean Read), matching the
// Poisson arrival model of the text. It is always at least the
// deterministic serial time's order of magnitude; use it to add realistic
// jitter to the Table 4.2 reproduction.
func (l LinkModel) SampledGather(n int, rng *rand.Rand) time.Duration {
	var total float64
	mean := float64(l.Read)
	for i := 0; i < n; i++ {
		total += rng.ExpFloat64() * mean
	}
	return time.Duration(total)
}

// Architecture labels the three schemes of Table 4.2.
type Architecture int

const (
	Centralized Architecture = iota
	PrimalDual
	DiBA
)

func (a Architecture) String() string {
	switch a {
	case Centralized:
		return "centralized"
	case PrimalDual:
		return "primal-dual"
	case DiBA:
		return "DiBA"
	default:
		return "unknown"
	}
}

// Cost is one Table 4.2 cell pair: computation and communication time.
type Cost struct {
	Comp time.Duration
	Comm time.Duration
}

// Total returns computation plus communication.
func (c Cost) Total() time.Duration { return c.Comp + c.Comm }

// Millis renders a duration in fractional milliseconds, the unit of
// Table 4.2.
func Millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// PacketsPerIteration returns the number of packets exchanged per iteration
// by each scheme: 2N for the coordinator schemes (one up, one down per
// node), d·N for DiBA on a graph with average degree d (Section 4.3.2).
func PacketsPerIteration(a Architecture, n int, avgDegree float64) int {
	switch a {
	case Centralized, PrimalDual:
		return 2 * n
	case DiBA:
		return int(math.Round(avgDegree * float64(n)))
	default:
		return 0
	}
}

// BytesPerIteration scales the packet model by a measured per-message wire
// size, so an experiment can print the modeled traffic volume next to the
// bytes a real transport actually counted (TCPTransport's WireStats).
// bytesPerMsg is whatever the deployment measures — ~30 B for the binary
// v1 estimate frame, ~80 B for its JSON form.
func BytesPerIteration(a Architecture, n int, avgDegree, bytesPerMsg float64) float64 {
	return float64(PacketsPerIteration(a, n, avgDegree)) * bytesPerMsg
}
