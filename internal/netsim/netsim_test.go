package netsim

import (
	"math/rand"
	"testing"
	"time"
)

func TestCentralizedRoundMatchesPaperScale(t *testing.T) {
	// Table 4.2 reports ≈86 ms of centralized communication at 400 nodes:
	// 400 × (200+10) µs = 84 ms.
	got := Measured.CentralizedRound(400)
	if got != 84*time.Millisecond {
		t.Fatalf("got %v, want 84ms", got)
	}
}

func TestCentralizedRoundScalesLinearly(t *testing.T) {
	a := Measured.CentralizedRound(400)
	b := Measured.CentralizedRound(800)
	if b != 2*a {
		t.Fatalf("doubling nodes must double the round: %v vs %v", a, b)
	}
}

func TestPDTotal(t *testing.T) {
	// 6 iterations at 400 nodes ≈ the paper's 517 ms (we get 504 ms with
	// deterministic service times).
	got := Measured.PDTotal(400, 6)
	if got != 504*time.Millisecond {
		t.Fatalf("got %v, want 504ms", got)
	}
}

func TestDiBAFlatInN(t *testing.T) {
	// DiBA's round cost carries no N dependence at all.
	if Measured.DiBARound() != 210*time.Microsecond {
		t.Fatalf("round = %v, want 210µs", Measured.DiBARound())
	}
	// 133 rounds ≈ the paper's ≈28 ms.
	got := Measured.DiBATotal(133)
	if got < 27*time.Millisecond || got > 29*time.Millisecond {
		t.Fatalf("133 rounds = %v, want ≈28ms", got)
	}
}

func TestSampledGatherNearDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 1000
	var sum time.Duration
	const trials = 50
	for i := 0; i < trials; i++ {
		sum += Measured.SampledGather(n, rng)
	}
	mean := sum / trials
	want := time.Duration(n) * Measured.Read
	ratio := float64(mean) / float64(want)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("sampled mean %v too far from %v", mean, want)
	}
}

func TestArchitectureString(t *testing.T) {
	if Centralized.String() != "centralized" || PrimalDual.String() != "primal-dual" || DiBA.String() != "DiBA" {
		t.Fatal("wrong labels")
	}
	if Architecture(99).String() != "unknown" {
		t.Fatal("unknown label")
	}
}

func TestCostTotalAndMillis(t *testing.T) {
	c := Cost{Comp: time.Millisecond, Comm: 2 * time.Millisecond}
	if c.Total() != 3*time.Millisecond {
		t.Fatal("Total wrong")
	}
	if Millis(c.Total()) != 3 {
		t.Fatal("Millis wrong")
	}
}

func TestPacketsPerIteration(t *testing.T) {
	if PacketsPerIteration(Centralized, 100, 0) != 200 {
		t.Fatal("centralized packets")
	}
	if PacketsPerIteration(PrimalDual, 100, 0) != 200 {
		t.Fatal("PD packets")
	}
	// Ring: average degree 2 → 2N packets, matching the text's observation
	// that DiBA on a ring matches PD's packet count but in parallel.
	if PacketsPerIteration(DiBA, 100, 2) != 200 {
		t.Fatal("DiBA ring packets")
	}
	if PacketsPerIteration(Architecture(9), 10, 1) != 0 {
		t.Fatal("unknown arch packets")
	}
}

func TestBytesPerIteration(t *testing.T) {
	// A 100-node ring of 30 B binary estimate frames: 2N messages x 30 B.
	if got := BytesPerIteration(DiBA, 100, 2, 30); got != 6000 {
		t.Fatalf("DiBA ring bytes = %v, want 6000", got)
	}
	// The coordinator schemes move 2N packets whatever the topology.
	if got := BytesPerIteration(Centralized, 100, 0, 80); got != 16000 {
		t.Fatalf("centralized bytes = %v, want 16000", got)
	}
	if got := BytesPerIteration(Architecture(9), 10, 1, 30); got != 0 {
		t.Fatalf("unknown arch bytes = %v, want 0", got)
	}
}
