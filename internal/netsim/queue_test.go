package netsim

import (
	"math/rand"
	"testing"
	"time"
)

func TestGatherScatterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Measured.GatherScatter(0, 10, rng); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := Measured.GatherScatter(10, 0, rng); err == nil {
		t.Fatal("rounds=0 must error")
	}
}

func TestGatherScatterMeanMatchesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 400
	st, err := Measured.GatherScatter(n, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := Measured.CentralizedRound(n)
	ratio := float64(st.Mean) / float64(want)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("sampled mean %v too far from deterministic %v", st.Mean, want)
	}
	if st.P50 > st.P95 || st.P95 > st.Max {
		t.Fatalf("quantiles out of order: %+v", st)
	}
	if st.P95 <= st.P50 {
		t.Fatal("there must be jitter above the median")
	}
}

func TestGatherScatterScalesWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small, err := Measured.GatherScatter(100, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Measured.GatherScatter(800, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if big.Mean < 6*small.Mean {
		t.Fatalf("8× nodes must cost ≈8× time: %v vs %v", big.Mean, small.Mean)
	}
}

func TestDiBARoundSampledGrowsSlowly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mean := func(n int) time.Duration {
		var sum time.Duration
		const trials = 300
		for i := 0; i < trials; i++ {
			sum += Measured.DiBARoundSampled(n, rng)
		}
		return sum / trials
	}
	small := mean(100)
	big := mean(6400)
	// Max of exponentials grows like ln(n): 64× the nodes must cost far
	// less than 64× — under 3× here.
	if big > 3*small {
		t.Fatalf("parallel round grew too fast: %v → %v", small, big)
	}
	if big <= small {
		t.Fatal("expected some growth from the max over more nodes")
	}
}
