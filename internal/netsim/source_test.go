package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"powercap/internal/des"
)

// TestRoundsSourceMatchesClosedForm: playing the exchanges out as events
// must reproduce the exact durations a DiBARoundSampled loop draws from
// the same rng — the event decomposition changes the mechanics, not the
// distribution or the draw order.
func TestRoundsSourceMatchesClosedForm(t *testing.T) {
	f := func(seed int64, nRaw, roundsRaw uint8) bool {
		n := 1 + int(nRaw%64)
		rounds := 1 + int(roundsRaw%20)

		ref := rand.New(rand.NewSource(seed))
		want := make([]time.Duration, rounds)
		for r := range want {
			want[r] = Measured.DiBARoundSampled(n, ref)
		}

		got, err := Measured.SampleRounds(n, rounds, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if len(got) != rounds {
			return false
		}
		for r := range got {
			if got[r] != want[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundsSourceSequentialRounds: round k+1 cannot start before round k's
// slowest exchange lands, so cumulative start times are non-decreasing and
// Total equals the sum of per-round durations.
func TestRoundsSourceSequentialRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src, err := NewRoundsSource(Measured, 16, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	sched := des.NewScheduler(src)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !src.Done() {
		t.Fatal("source not done after scheduler drained it")
	}
	durs := src.Durations()
	if len(durs) != 40 {
		t.Fatalf("got %d rounds, want 40", len(durs))
	}
	for _, d := range durs {
		if d <= 0 {
			t.Fatalf("non-positive round duration %v", d)
		}
	}
	// Total sums the un-truncated float durations; compare on that scale.
	var sum float64
	for _, d := range src.durations {
		sum += d
	}
	if got := src.Total(); got != time.Duration(sum) {
		t.Fatalf("Total %v != summed durations %v", got, time.Duration(sum))
	}
	// The scheduler clock sits at the last completion; rounds run
	// back-to-back from t=0, so it must match the summed durations up to
	// float telescoping error.
	if got := sched.Now(); got < sum*(1-1e-12) || got > sum*(1+1e-12) {
		t.Fatalf("clock %v != total %v", got, sum)
	}
}

// TestRoundsSourceStats: the summary over many rounds should look like the
// DiBA column of Table 4.2 — mean near the closed-form round latency's
// sampled mean, P95 above P50, max above P95.
func TestRoundsSourceStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src, err := NewRoundsSource(Measured, 48, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := des.NewScheduler(src).Run(); err != nil {
		t.Fatal(err)
	}
	st, err := src.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !(st.P50 <= st.P95 && st.P95 <= st.Max) {
		t.Fatalf("percentiles out of order: %+v", st)
	}
	// Max over 48 exp draws: mean is around Read·H(48) ≈ 200µs·4.4; allow a
	// wide deterministic band.
	if st.Mean < 400*time.Microsecond || st.Mean > 3*time.Millisecond {
		t.Fatalf("implausible mean round latency %v", st.Mean)
	}
}

// TestRoundsSourceRejectsBadArgs covers the validation path.
func TestRoundsSourceRejectsBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewRoundsSource(Measured, 0, 5, rng); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewRoundsSource(Measured, 5, 0, rng); err == nil {
		t.Fatal("rounds=0 accepted")
	}
}
