package netsim

import (
	"errors"
	"math/rand"
	"sort"
	"time"

	"powercap/internal/des"
)

// Event-driven DiBA round latency. DiBARoundSampled collapses a round to
// its closed-form maximum; RoundsSource instead plays the round out as
// individual neighbor-exchange completions on the shared-clock event core,
// so link traffic can interleave with other simulators (cluster dynamics,
// queueing) under one des.Scheduler. Per round the draws happen in node
// order at the round start, which keeps the sampled round durations
// bit-identical to a DiBARoundSampled loop over the same rng.

// RoundsSource is a des.EventSource that simulates `rounds` synchronous
// DiBA rounds over n nodes: each node's neighbor exchange completes after
// an Exp(Read)+Exp(Write) delay, and the next round starts when the
// slowest exchange of the current round lands.
type RoundsSource struct {
	link   LinkModel
	n      int
	rounds int
	rng    *rand.Rand

	q           des.Heap
	round       int     // rounds fully completed
	outstanding int     // exchanges still in flight this round
	start       float64 // current round's start time (ns scale)
	durations   []float64
}

// NewRoundsSource builds the source and schedules the first round's
// exchanges at time 0.
func NewRoundsSource(link LinkModel, n, rounds int, rng *rand.Rand) (*RoundsSource, error) {
	if n <= 0 || rounds <= 0 {
		return nil, errors.New("netsim: n and rounds must be positive")
	}
	s := &RoundsSource{
		link:      link,
		n:         n,
		rounds:    rounds,
		rng:       rng,
		durations: make([]float64, 0, rounds),
	}
	s.q.Grow(n)
	s.beginRound(0)
	return s, nil
}

// beginRound draws every node's exchange duration (node order, matching
// DiBARoundSampled) and schedules the completions.
func (s *RoundsSource) beginRound(at float64) {
	s.start = at
	s.outstanding = s.n
	read := float64(s.link.Read)
	write := float64(s.link.Write)
	for i := 0; i < s.n; i++ {
		d := s.rng.ExpFloat64()*read + s.rng.ExpFloat64()*write
		s.q.Push(des.Item{Time: at + d, Node: int32(i)})
	}
}

// HasPendingEvents implements des.EventSource.
func (s *RoundsSource) HasPendingEvents() bool { return s.q.Len() > 0 }

// PeekNextEventTime implements des.EventSource.
func (s *RoundsSource) PeekNextEventTime() float64 { return s.q.PeekTime() }

// ProcessNextEvent implements des.EventSource: one exchange completion.
// The last completion of a round records the round duration and, if rounds
// remain, starts the next one at that instant.
func (s *RoundsSource) ProcessNextEvent() error {
	ev := s.q.Pop()
	s.outstanding--
	if s.outstanding > 0 {
		return nil
	}
	s.durations = append(s.durations, ev.Time-s.start)
	s.round++
	if s.round < s.rounds {
		s.beginRound(ev.Time)
	}
	return nil
}

// Done reports whether every round has completed.
func (s *RoundsSource) Done() bool { return s.round >= s.rounds }

// Durations returns the per-round communication times recorded so far.
func (s *RoundsSource) Durations() []time.Duration {
	out := make([]time.Duration, len(s.durations))
	for i, d := range s.durations {
		out[i] = time.Duration(d)
	}
	return out
}

// Total returns the summed duration of all completed rounds.
func (s *RoundsSource) Total() time.Duration {
	var sum float64
	for _, d := range s.durations {
		sum += d
	}
	return time.Duration(sum)
}

// Stats summarizes the completed rounds like LinkModel.GatherScatter does
// for coordinator rounds.
func (s *RoundsSource) Stats() (RoundStats, error) {
	if len(s.durations) == 0 {
		return RoundStats{}, errors.New("netsim: no completed rounds")
	}
	samples := append([]float64(nil), s.durations...)
	sort.Float64s(samples)
	var sum float64
	for _, v := range samples {
		sum += v
	}
	at := func(q float64) time.Duration {
		return time.Duration(samples[int(q*float64(len(samples)-1))])
	}
	return RoundStats{
		Mean: time.Duration(sum / float64(len(samples))),
		P50:  at(0.50),
		P95:  at(0.95),
		Max:  time.Duration(samples[len(samples)-1]),
	}, nil
}

// SampleRounds drives a RoundsSource to completion on its own scheduler
// and returns the per-round durations — the event-driven equivalent of
// calling DiBARoundSampled `rounds` times.
func (l LinkModel) SampleRounds(n, rounds int, rng *rand.Rand) ([]time.Duration, error) {
	src, err := NewRoundsSource(l, n, rounds, rng)
	if err != nil {
		return nil, err
	}
	if err := des.NewScheduler(src).Run(); err != nil {
		return nil, err
	}
	return src.Durations(), nil
}
