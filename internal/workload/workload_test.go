package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCatalogsWellFormed(t *testing.T) {
	for _, cat := range [][]Benchmark{HPC, Desktop} {
		for _, b := range cat {
			if b.Name == "" || b.PeakBIPS <= 0 {
				t.Fatalf("malformed benchmark %+v", b)
			}
			if b.Base <= 0 || b.Base >= 1 {
				t.Fatalf("%s: Base %v out of (0,1)", b.Name, b.Base)
			}
			if b.MemBound <= 0 || b.MemBound > 1 {
				t.Fatalf("%s: MemBound %v out of (0,1]", b.Name, b.MemBound)
			}
		}
	}
	if len(HPC) != 10 {
		t.Fatalf("HPC catalog has %d entries, want 10 (Table 4.1)", len(HPC))
	}
}

func TestByName(t *testing.T) {
	b, err := ByName(HPC, "EP")
	if err != nil {
		t.Fatal(err)
	}
	if b.Suite != "NPB" {
		t.Fatalf("EP suite = %s", b.Suite)
	}
	if _, err := ByName(HPC, "nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestGroundTruthEndpointsAndMonotonicity(t *testing.T) {
	s := DefaultServer
	for _, b := range HPC {
		atMin := b.GroundTruth(s.IdleWatts, s.IdleWatts, s.MaxWatts)
		atMax := b.GroundTruth(s.MaxWatts, s.IdleWatts, s.MaxWatts)
		if !almost(atMin, b.Base*b.PeakBIPS, 1e-9) {
			t.Fatalf("%s: value at min cap = %v, want %v", b.Name, atMin, b.Base*b.PeakBIPS)
		}
		if !almost(atMax, b.PeakBIPS, 1e-9) {
			t.Fatalf("%s: value at max cap = %v, want peak %v", b.Name, atMax, b.PeakBIPS)
		}
		prev := atMin
		for p := s.IdleWatts + 1; p <= s.MaxWatts; p++ {
			v := b.GroundTruth(p, s.IdleWatts, s.MaxWatts)
			if v < prev-1e-9 {
				t.Fatalf("%s: ground truth decreasing at %v W", b.Name, p)
			}
			prev = v
		}
		// Clamping.
		if b.GroundTruth(0, s.IdleWatts, s.MaxWatts) != atMin {
			t.Fatalf("%s: clamping below range failed", b.Name)
		}
		if b.GroundTruth(1e6, s.IdleWatts, s.MaxWatts) != atMax {
			t.Fatalf("%s: clamping above range failed", b.Name)
		}
	}
}

func TestMemBoundOrderingOfGains(t *testing.T) {
	// Compute-bound EP must gain more from extra power than memory-bound RA.
	s := DefaultServer
	ep, _ := ByName(HPC, "EP")
	ra, _ := ByName(HPC, "RA")
	gain := func(b Benchmark) float64 {
		lo := b.GroundTruth(s.IdleWatts, s.IdleWatts, s.MaxWatts)
		hi := b.GroundTruth(s.MaxWatts, s.IdleWatts, s.MaxWatts)
		return hi / lo
	}
	if gain(ep) <= gain(ra) {
		t.Fatalf("EP relative gain %v must exceed RA's %v", gain(ep), gain(ra))
	}
}

func TestServerValidate(t *testing.T) {
	if err := DefaultServer.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Server{IdleWatts: 0, MaxWatts: 10}).Validate(); err == nil {
		t.Fatal("zero idle power must be invalid")
	}
	if err := (Server{IdleWatts: 10, MaxWatts: 10}).Validate(); err == nil {
		t.Fatal("empty range must be invalid")
	}
}

func TestNewQuadraticValidation(t *testing.T) {
	if _, err := NewQuadratic(0, 1, 0.5, 0, 1); err != ErrNotConcave {
		t.Fatalf("convex quadratic must be rejected, got %v", err)
	}
	if _, err := NewQuadratic(0, 1, 0, 5, 5); err == nil {
		t.Fatal("empty power range must be rejected")
	}
	if _, err := NewQuadratic(0, -1, 0, 0, 1); err == nil {
		t.Fatal("decreasing utility must be rejected")
	}
}

func TestQuadraticValueGradPeak(t *testing.T) {
	// r(p) = 10 + 2p − 0.01p² on [10, 90]: vertex at p=100, beyond range,
	// so peak at p=90.
	q, err := NewQuadratic(10, 2, -0.01, 10, 90)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Value(50); !almost(got, 10+100-25, 1e-12) {
		t.Fatalf("Value(50) = %v, want 85", got)
	}
	if got := q.Grad(50); !almost(got, 1, 1e-12) {
		t.Fatalf("Grad(50) = %v, want 1", got)
	}
	if got := q.Peak(); !almost(got, q.Value(90), 1e-12) {
		t.Fatalf("Peak = %v, want %v", got, q.Value(90))
	}
	// Interior vertex case.
	q2, _ := NewQuadratic(0, 2, -0.02, 10, 90)
	if got := q2.Peak(); !almost(got, q2.Value(50), 1e-12) {
		t.Fatalf("interior peak = %v, want %v", got, q2.Value(50))
	}
	// Clamping of Value outside range.
	if q.Value(0) != q.Value(10) || q.Value(1000) != q.Value(90) {
		t.Fatal("Value must clamp")
	}
}

func TestQuadraticGradMatchesNumeric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a2 := -rng.Float64() * 0.01
		a1 := rng.Float64()*2 + 5 // keep increasing at range start
		q, err := NewQuadratic(rng.Float64()*10, a1, a2, 100, 200)
		if err != nil {
			return true // skip rejected params
		}
		for p := 110.0; p < 190; p += 17 {
			h := 1e-6
			num := (q.Value(p+h) - q.Value(p-h)) / (2 * h)
			if !almost(q.Grad(p), num, 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBestResponseOptimality(t *testing.T) {
	q, _ := NewQuadratic(0, 5, -0.02, 100, 200)
	for _, lambda := range []float64{0, 0.5, 1, 2, 5, 10} {
		p := q.BestResponse(lambda)
		if p < q.MinPower()-1e-9 || p > q.MaxPower()+1e-9 {
			t.Fatalf("λ=%v: best response %v out of range", lambda, p)
		}
		obj := func(x float64) float64 { return q.Value(x) - lambda*x }
		best := obj(p)
		for x := q.MinPower(); x <= q.MaxPower(); x += 0.5 {
			if obj(x) > best+1e-9 {
				t.Fatalf("λ=%v: grid point %v beats best response %v", lambda, x, p)
			}
		}
	}
}

func TestBestResponseLinearDegenerate(t *testing.T) {
	q, _ := NewQuadratic(0, 2, 0, 100, 200)
	if q.BestResponse(1) != 200 {
		t.Fatal("steeper-than-price line must saturate at max")
	}
	if q.BestResponse(3) != 100 {
		t.Fatal("shallower-than-price line must drop to min")
	}
}

func TestFitQuadraticCloseToTruthOnNoiselessSweep(t *testing.T) {
	// The 6-point DVFS fit must stay close to the dense-sweep TrueUtility.
	// For benchmarks without interior saturation both are the exact same
	// quadratic; for saturating benchmarks the quadratic family only
	// approximates the kinked ground truth, so allow a few percent.
	s := DefaultServer
	rng := rand.New(rand.NewSource(3))
	for _, b := range HPC {
		q, err := FitFromSweep(b, s, 0, rng)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		truth := TrueUtility(b, s)
		tol := 1e-6 * b.PeakBIPS
		if b.SatFrac > 0 && b.SatFrac < 1 {
			tol = 0.06 * b.PeakBIPS
		}
		for p := s.IdleWatts; p <= s.MaxWatts; p += 10 {
			if !almost(q.Value(p), truth.Value(p), tol) {
				t.Fatalf("%s: fit %v vs truth %v at %v W", b.Name, q.Value(p), truth.Value(p), p)
			}
		}
	}
}

func TestTrueUtilityMatchesGroundTruth(t *testing.T) {
	s := DefaultServer
	for _, b := range HPC {
		q := TrueUtility(b, s)
		tol := 1e-9
		if b.SatFrac > 0 && b.SatFrac < 1 {
			// Quadratic approximation of the saturating (kinked) curve.
			tol = 0.13
		}
		for p := s.IdleWatts; p <= s.MaxWatts; p += 7 {
			want := b.GroundTruth(p, s.IdleWatts, s.MaxWatts)
			if !almost(q.Value(p), want, tol*(1+want)) {
				t.Fatalf("%s: TrueUtility(%v) = %v, want %v", b.Name, p, q.Value(p), want)
			}
		}
	}
}

func TestQuadraticFlatPastVertex(t *testing.T) {
	// A model whose parabola peaks inside the range must be flat (not
	// decreasing) beyond the vertex: a capped server cannot be forced to
	// draw more power than its workload uses.
	q2, err := NewQuadratic(0, 6, -0.02, 110, 200) // vertex at 150
	if err != nil {
		t.Fatal(err)
	}
	peak := q2.Value(150)
	for p := 150.0; p <= 200; p += 10 {
		if !almost(q2.Value(p), peak, 1e-12) {
			t.Fatalf("Value(%v) = %v, want flat %v", p, q2.Value(p), peak)
		}
	}
	if q2.Grad(180) != 0 {
		t.Fatalf("gradient past saturation = %v, want 0", q2.Grad(180))
	}
	if !almost(q2.Peak(), peak, 1e-12) {
		t.Fatalf("Peak = %v, want %v", q2.Peak(), peak)
	}
}

func TestFitQuadraticNoisyStaysConcaveAndClose(t *testing.T) {
	s := DefaultServer
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		b := HPC[rng.Intn(len(HPC))]
		q, err := FitFromSweep(b, s, 0.02, rng)
		if err != nil {
			t.Fatal(err)
		}
		if q.A2 > 0 {
			t.Fatal("fit must be concave")
		}
		truth := TrueUtility(b, s)
		// Mid-range error bounded by a few percent.
		p := 150.0
		if math.Abs(q.Value(p)-truth.Value(p))/truth.Value(p) > 0.1 {
			t.Fatalf("%s: noisy fit off by >10%% at %v W", b.Name, p)
		}
	}
}

func TestFitQuadraticErrors(t *testing.T) {
	if _, err := FitQuadratic([]float64{1, 2}, []float64{1, 2}, 0, 1); err == nil {
		t.Fatal("need ≥3 samples")
	}
	if _, err := FitQuadratic([]float64{1, 2, 3}, []float64{1, 2}, 0, 1); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestPowerAtDVFSMonotone(t *testing.T) {
	s := DefaultServer
	fmin, fmax := DVFSLevels[0], DVFSLevels[len(DVFSLevels)-1]
	prev := -1.0
	for _, f := range DVFSLevels {
		p := PowerAtDVFS(s, f, fmin, fmax)
		if p <= prev {
			t.Fatalf("power not increasing at %v GHz", f)
		}
		prev = p
	}
	if got := PowerAtDVFS(s, fmin, fmin, fmax); got != s.IdleWatts {
		t.Fatalf("min-frequency power = %v, want idle %v", got, s.IdleWatts)
	}
	if got := PowerAtDVFS(s, fmax, fmin, fmax); !almost(got, s.MaxWatts, 1e-9) {
		t.Fatalf("max-frequency power = %v, want max %v", got, s.MaxWatts)
	}
}

func TestAssignCoversCatalogAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, err := Assign(HPC, 50, DefaultServer, 0.05, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Benchmarks) != 50 || len(a.Utilities) != 50 {
		t.Fatal("wrong assignment size")
	}
	seen := map[string]bool{}
	for _, b := range a.Benchmarks {
		seen[b.Name] = true
	}
	for _, b := range HPC {
		if !seen[b.Name] {
			t.Fatalf("benchmark %s missing from assignment", b.Name)
		}
	}
	for i, q := range a.Utilities {
		if q.MinPower() != DefaultServer.IdleWatts || q.MaxPower() != DefaultServer.MaxWatts {
			t.Fatalf("utility %d has wrong power range", i)
		}
	}
	us := a.UtilitySlice()
	if len(us) != 50 {
		t.Fatal("UtilitySlice wrong length")
	}
}

func TestAssignErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Assign(nil, 5, DefaultServer, 0, 0, rng); err == nil {
		t.Fatal("empty catalog must error")
	}
	if _, err := Assign(HPC, 5, Server{}, 0, 0, rng); err == nil {
		t.Fatal("invalid server must error")
	}
}

func TestPerturbStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b, _ := ByName(HPC, "CG")
	for i := 0; i < 200; i++ {
		p := b.Perturb(rng, 0.2)
		if p.Base < 0.05 || p.Base > 0.95 || p.MemBound < 0.02 || p.MemBound > 1 || p.PeakBIPS <= 0 {
			t.Fatalf("perturbed benchmark out of range: %+v", p)
		}
	}
}

func TestSetConstruction(t *testing.T) {
	b, _ := ByName(Desktop, "mcf")
	hs := NewHomoSet(b)
	if hs.Kind != HomoWithin {
		t.Fatal("wrong kind")
	}
	for _, m := range hs.Members {
		if m.Name != "mcf" {
			t.Fatal("homogeneous set must repeat the benchmark")
		}
	}
	rng := rand.New(rand.NewSource(2))
	het := NewHeteroSet(Desktop, rng)
	names := map[string]bool{}
	for _, m := range het.Members {
		names[m.Name] = true
	}
	if len(names) != 4 {
		t.Fatalf("heterogeneous set must have 4 distinct members, got %d", len(names))
	}
}

func TestSetGroundTruthProperties(t *testing.T) {
	s := Chapter3Server
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		ws := NewHeteroSet(Desktop, rng)
		prev := -1.0
		for p := s.IdleWatts; p <= s.MaxWatts; p += 1 {
			v := ws.GroundTruth(p, s)
			if v <= 0 {
				t.Fatal("set throughput must be positive")
			}
			if v < prev-1e-6 {
				t.Fatalf("set throughput decreasing at %v W", p)
			}
			prev = v
		}
		if ws.Peak(s) != ws.GroundTruth(s.MaxWatts, s) {
			t.Fatal("Peak must be the max-cap value")
		}
	}
}

func TestHomoSetMatchesMemberCurve(t *testing.T) {
	s := Chapter3Server
	b, _ := ByName(Desktop, "namd")
	ws := NewHomoSet(b)
	for p := s.IdleWatts; p <= s.MaxWatts; p += 5 {
		want := b.GroundTruth(p, s.IdleWatts, s.MaxWatts)
		if !almost(ws.GroundTruth(p, s), want, 1e-12) {
			t.Fatal("homogeneous set must equal its member's curve")
		}
	}
}

func TestObserveNoiseless(t *testing.T) {
	s := Chapter3Server
	b, _ := ByName(Desktop, "gcc")
	ws := NewHomoSet(b)
	obs := ws.Observe(150, s, 0, nil)
	if obs.Cap != 150 || !almost(obs.Throughput, ws.GroundTruth(150, s), 1e-12) || !almost(obs.LLC, ws.LLC(), 1e-12) {
		t.Fatalf("noiseless observation mismatch: %+v", obs)
	}
}

func TestCapGrid(t *testing.T) {
	grid := CapGrid(Chapter3Server, 5)
	if len(grid) != 8 {
		t.Fatalf("grid length = %d, want 8 (130..165)", len(grid))
	}
	if grid[0] != 130 || grid[7] != 165 {
		t.Fatalf("grid = %v", grid)
	}
}

func TestSweepDeterministicWithoutNoise(t *testing.T) {
	b, _ := ByName(HPC, "LU")
	p1, r1 := Sweep(b, DefaultServer, 0, nil)
	p2, r2 := Sweep(b, DefaultServer, 0, nil)
	for i := range p1 {
		if p1[i] != p2[i] || r1[i] != r2[i] {
			t.Fatal("noiseless sweep must be deterministic")
		}
	}
	if len(p1) != len(DVFSLevels) {
		t.Fatal("one sample per DVFS level")
	}
}
