package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestCatalogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, HPC); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(HPC) {
		t.Fatalf("round trip lost entries: %d vs %d", len(got), len(HPC))
	}
	for i := range got {
		if got[i] != HPC[i] {
			t.Fatalf("entry %d changed: %+v vs %+v", i, got[i], HPC[i])
		}
	}
}

func TestShippedCatalogsValidate(t *testing.T) {
	for _, cat := range [][]Benchmark{HPC, Desktop} {
		if err := ValidateCatalog(cat); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadCatalogRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":      "{not json",
		"empty":        "[]",
		"no name":      `[{"PeakBIPS":1,"Base":0.5,"MemBound":0.5}]`,
		"bad peak":     `[{"Name":"x","PeakBIPS":0,"Base":0.5,"MemBound":0.5}]`,
		"bad base":     `[{"Name":"x","PeakBIPS":1,"Base":1.5,"MemBound":0.5}]`,
		"bad membound": `[{"Name":"x","PeakBIPS":1,"Base":0.5,"MemBound":0}]`,
		"bad satfrac":  `[{"Name":"x","PeakBIPS":1,"Base":0.5,"MemBound":0.5,"SatFrac":2}]`,
		"negative llc": `[{"Name":"x","PeakBIPS":1,"Base":0.5,"MemBound":0.5,"LLCPerKInst":-1}]`,
		"duplicate":    `[{"Name":"x","PeakBIPS":1,"Base":0.5,"MemBound":0.5},{"Name":"x","PeakBIPS":1,"Base":0.5,"MemBound":0.5}]`,
	}
	for label, in := range cases {
		if _, err := ReadCatalog(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: must be rejected", label)
		}
	}
}

func TestCustomCatalogDrivesAssign(t *testing.T) {
	custom := `[
	  {"Name":"batch","PeakBIPS":10,"Base":0.3,"MemBound":0.2,"SatFrac":1,"LLCPerKInst":1},
	  {"Name":"serve","PeakBIPS":5,"Base":0.8,"MemBound":0.9,"SatFrac":0.4,"LLCPerKInst":9}
	]`
	cat, err := ReadCatalog(strings.NewReader(custom))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a, err := Assign(cat, 6, DefaultServer, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, b := range a.Benchmarks {
		seen[b.Name] = true
	}
	if !seen["batch"] || !seen["serve"] {
		t.Fatal("custom catalog entries must drive the assignment")
	}
	// The saturating "serve" workload's fitted model must flatten inside
	// the cap range.
	for i, b := range a.Benchmarks {
		if b.Name == "serve" {
			q := a.Utilities[i]
			if q.Grad(DefaultServer.MaxWatts-1) > q.Grad(DefaultServer.IdleWatts+1) {
				t.Fatal("saturating workload should have a decaying gradient")
			}
		}
	}
}
