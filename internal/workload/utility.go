package workload

import (
	"errors"
	"fmt"

	"powercap/internal/linalg"
)

// Server describes the power-cap range of one physical server, matching the
// Dell PowerEdge C1100 class machines of the evaluation: the cap can be
// enforced anywhere between the idle-power floor and the maximum draw.
type Server struct {
	IdleWatts float64
	MaxWatts  float64
}

// DefaultServer is the reference server used by the Chapter 4 experiments,
// modeled on the dual-socket Dell PowerEdge C1100 of the evaluation
// (idle ≈ 120 W, peak ≈ 250 W). With 1000 servers its cap range makes the
// paper's 166–186 kW cluster budgets genuinely constraining: a uniform
// split sits at roughly a third of each server's dynamic range.
var DefaultServer = Server{IdleWatts: 110, MaxWatts: 200}

// Chapter3Server is the quad-core i7 reference server of Chapter 3, with the
// discrete cap grid 130 W … 165 W in 5 W steps.
var Chapter3Server = Server{IdleWatts: 130, MaxWatts: 165}

// Validate reports an error if the cap range is empty or non-physical.
func (s Server) Validate() error {
	if s.IdleWatts <= 0 || s.MaxWatts <= s.IdleWatts {
		return fmt.Errorf("workload: invalid server power range [%g, %g]", s.IdleWatts, s.MaxWatts)
	}
	return nil
}

// Utility is the per-node objective r_i(p_i) every allocator consumes: the
// throughput the node attains when capped at p watts, defined on
// [MinPower, MaxPower]. Implementations must be continuous, non-decreasing
// and concave on the range for the optimality guarantees of the solvers to
// hold; the quadratic fits produced by this package satisfy that by
// construction.
type Utility interface {
	// Value returns the throughput at power cap p. Arguments outside the
	// range are clamped.
	Value(p float64) float64
	// Grad returns dValue/dp at p (one-sided at the range ends).
	Grad(p float64) float64
	// MinPower returns the lowest enforceable cap (idle power).
	MinPower() float64
	// MaxPower returns the highest meaningful cap.
	MaxPower() float64
	// Peak returns the maximum attainable throughput on the cap range,
	// used to normalize ANP = Value/Peak.
	Peak() float64
}

// BestResponder is implemented by utilities that can compute
// argmax_p { Value(p) − λ·p } in closed form. The primal-dual baseline and
// the centralized oracle use it; callers fall back to numeric search when a
// Utility does not implement it.
type BestResponder interface {
	// BestResponse returns the cap in [MinPower, MaxPower] maximizing
	// Value(p) − λ·p.
	BestResponse(lambda float64) float64
}

// Quadratic is a fitted throughput model r(p) = A0 + A1·p + A2·p² on
// [MinW, MaxW], the model family of Eq. 3.7 and the Chapter 4 throughput
// functions. A2 ≤ 0 (concavity) is enforced at construction.
//
// When the fitted parabola peaks inside the cap range — a workload that
// saturates before the top cap — the model is flat beyond the vertex: a
// capped server never draws more power than its workload can use, so
// raising the cap past the saturation point leaves throughput at the peak
// (it does not bend down). Value and Grad evaluate at the effective draw
// min(p, vertex).
type Quadratic struct {
	A0, A1, A2 float64
	MinW, MaxW float64
}

// ErrNotConcave is returned when a quadratic fit comes out convex, which
// the noise levels used in this repository should never produce.
var ErrNotConcave = errors.New("workload: fitted quadratic is not concave")

// NewQuadratic validates and returns a quadratic utility.
func NewQuadratic(a0, a1, a2, minW, maxW float64) (Quadratic, error) {
	if minW >= maxW {
		return Quadratic{}, fmt.Errorf("workload: empty power range [%g, %g]", minW, maxW)
	}
	if a2 > 0 {
		return Quadratic{}, ErrNotConcave
	}
	q := Quadratic{A0: a0, A1: a1, A2: a2, MinW: minW, MaxW: maxW}
	if q.Grad(minW) < 0 {
		return Quadratic{}, fmt.Errorf("workload: quadratic decreasing at range start (grad %g)", q.Grad(minW))
	}
	return q, nil
}

func (q Quadratic) clamp(p float64) float64 {
	if p < q.MinW {
		return q.MinW
	}
	if p > q.MaxW {
		return q.MaxW
	}
	return p
}

// effective returns the power the server actually draws under cap p: the
// cap clamped to the range, and never past the model's vertex (saturation).
func (q Quadratic) effective(p float64) float64 {
	p = q.clamp(p)
	if q.A2 < 0 {
		if v := -q.A1 / (2 * q.A2); p > v {
			p = v
		}
	}
	return p
}

// Value returns r(p) with p clamped to the cap range and to the saturation
// point, making the model monotone non-decreasing.
func (q Quadratic) Value(p float64) float64 {
	p = q.effective(p)
	return q.A0 + q.A1*p + q.A2*p*p
}

// Grad returns r'(p) at the effective draw (0 beyond saturation).
func (q Quadratic) Grad(p float64) float64 {
	p = q.effective(p)
	return q.A1 + 2*q.A2*p
}

// MinPower returns the lowest enforceable cap.
func (q Quadratic) MinPower() float64 { return q.MinW }

// MaxPower returns the highest meaningful cap.
func (q Quadratic) MaxPower() float64 { return q.MaxW }

// Peak returns the maximum of r over the cap range. For a concave quadratic
// this is either the vertex or the upper range end.
func (q Quadratic) Peak() float64 {
	if q.A2 < 0 {
		vertex := -q.A1 / (2 * q.A2)
		if vertex >= q.MinW && vertex <= q.MaxW {
			return q.Value(vertex)
		}
	}
	vLo, vHi := q.Value(q.MinW), q.Value(q.MaxW)
	if vLo > vHi {
		return vLo
	}
	return vHi
}

// BestResponse returns argmax_p { r(p) − λp } on the cap range, in closed
// form: the stationary point (A1−λ)/(−2A2) clamped, or an endpoint when the
// quadratic degenerates to a line.
func (q Quadratic) BestResponse(lambda float64) float64 {
	if q.A2 == 0 {
		if q.A1 > lambda {
			return q.MaxW
		}
		return q.MinW
	}
	return q.clamp((lambda - q.A1) / (2 * q.A2))
}

// FitQuadratic least-squares fits r(p) = a0 + a1 p + a2 p² to sweep samples
// and returns the resulting utility bounded to [minW, maxW]. At least three
// samples are required. If the unconstrained fit is (slightly) convex due to
// noise, the curvature is clamped to zero and a line is refit, keeping the
// model concave as the algorithms require.
func FitQuadratic(powers, throughputs []float64, minW, maxW float64) (Quadratic, error) {
	if len(powers) != len(throughputs) {
		return Quadratic{}, linalg.ErrShape
	}
	if len(powers) < 3 {
		return Quadratic{}, errors.New("workload: need at least 3 sweep samples")
	}
	a := linalg.New(len(powers), 3)
	for i, p := range powers {
		a.Set(i, 0, 1)
		a.Set(i, 1, p)
		a.Set(i, 2, p*p)
	}
	c, err := linalg.LeastSquares(a, throughputs)
	if err != nil {
		return Quadratic{}, err
	}
	if c[2] > 0 {
		// Refit as a non-decreasing line.
		al := linalg.New(len(powers), 2)
		for i, p := range powers {
			al.Set(i, 0, 1)
			al.Set(i, 1, p)
		}
		cl, err := linalg.LeastSquares(al, throughputs)
		if err != nil {
			return Quadratic{}, err
		}
		c = []float64{cl[0], cl[1], 0}
	}
	q, err := NewQuadratic(c[0], c[1], c[2], minW, maxW)
	if err != nil {
		return Quadratic{}, fmt.Errorf("fit rejected: %w", err)
	}
	return q, nil
}

// TrueUtility returns the noise-free quadratic utility of the benchmark on
// the given server — the "oracle" model the paper's oracle+knapsack
// comparison uses: the least-squares quadratic of a dense noiseless sweep
// of the ground-truth curve. For benchmarks without interior saturation
// the ground truth is itself quadratic and the fit is exact.
func TrueUtility(b Benchmark, s Server) Quadratic {
	const samples = 28
	powers := make([]float64, samples)
	values := make([]float64, samples)
	span := s.MaxWatts - s.IdleWatts
	for i := 0; i < samples; i++ {
		p := s.IdleWatts + span*float64(i)/float64(samples-1)
		powers[i] = p
		values[i] = b.GroundTruth(p, s.IdleWatts, s.MaxWatts)
	}
	q, err := FitQuadratic(powers, values, s.IdleWatts, s.MaxWatts)
	if err != nil {
		panic(fmt.Sprintf("workload: internal error building true utility for %s: %v", b.Name, err))
	}
	return q
}
