package workload

import (
	"math/rand"
	"testing"
)

func phasedFixture(t *testing.T) *Phased {
	t.Helper()
	ep, _ := ByName(HPC, "EP")
	ra, _ := ByName(HPC, "RA")
	p, err := NewPhased("solver", []Benchmark{ep, ra}, []float64{10, 5})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPhasedValidation(t *testing.T) {
	ep, _ := ByName(HPC, "EP")
	if _, err := NewPhased("x", []Benchmark{ep}, []float64{1}); err == nil {
		t.Fatal("single phase must be rejected")
	}
	if _, err := NewPhased("x", []Benchmark{ep, ep}, []float64{1}); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if _, err := NewPhased("x", []Benchmark{ep, ep}, []float64{1, 0}); err == nil {
		t.Fatal("zero dwell must be rejected")
	}
}

func TestPhasedDeterministicCycle(t *testing.T) {
	p := phasedFixture(t)
	if p.Phase() != 0 || p.Current().Name != "EP" {
		t.Fatal("must start in phase 0")
	}
	if p.Advance(9, nil) {
		t.Fatal("no transition before the dwell elapses")
	}
	if !p.Advance(1, nil) {
		t.Fatal("transition at exactly the dwell boundary")
	}
	if p.Current().Name != "RA" {
		t.Fatalf("phase 1 must be RA, got %s", p.Current().Name)
	}
	// 5 s of RA then back to EP; a 20 s jump crosses multiple boundaries.
	if !p.Advance(20, nil) {
		t.Fatal("long advance must cross transitions")
	}
	if p.Phase() >= len(p.Phases) {
		t.Fatal("phase index out of range")
	}
}

func TestPhasedUtilityTracksPhase(t *testing.T) {
	p := phasedFixture(t)
	s := DefaultServer
	epU := p.Utility(s)
	p.Advance(10, nil)
	raU := p.Utility(s)
	// EP (compute-bound) gains far more over the cap range than RA.
	epGain := epU.Value(s.MaxWatts) - epU.Value(s.IdleWatts)
	raGain := raU.Value(s.MaxWatts) - raU.Value(s.IdleWatts)
	if epGain <= raGain {
		t.Fatalf("EP-phase gain %v must exceed RA-phase gain %v", epGain, raGain)
	}
}

func TestPhasedRandomDwellsStayPositive(t *testing.T) {
	p := phasedFixture(t)
	rng := rand.New(rand.NewSource(3))
	transitions := 0
	for k := 0; k < 1000; k++ {
		if p.Advance(1, rng) {
			transitions++
		}
	}
	if transitions < 50 {
		t.Fatalf("expected many transitions over 1000 s, got %d", transitions)
	}
}
