package workload

import (
	"fmt"
	"math/rand"
)

// DVFSLevels are the processor frequencies (GHz) of the reference Xeon
// L5520, which scales from 1.60 GHz to 2.27 GHz (Section 4.4.1).
var DVFSLevels = []float64{1.60, 1.73, 1.86, 2.00, 2.13, 2.27}

// PowerAtDVFS returns the full-load power draw of server s at frequency f
// given the frequency range [fmin, fmax]. Dynamic power grows super-linearly
// with frequency (voltage scales with it); a 40 % linear / 60 % cubic blend
// reproduces the convex shape of measured DVFS sweeps.
func PowerAtDVFS(s Server, f, fmin, fmax float64) float64 {
	if fmax <= fmin {
		panic("workload: empty frequency range")
	}
	x := (f - fmin) / (fmax - fmin)
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return s.IdleWatts + (s.MaxWatts-s.IdleWatts)*(0.4*x+0.6*x*x*x)
}

// Sweep simulates the paper's characterization procedure: run benchmark b at
// every DVFS level on server s, measure power and throughput, and return the
// paired samples. noise is the relative standard deviation of the throughput
// measurement (the paper's multimeter/pfmon pipeline has small but nonzero
// error).
func Sweep(b Benchmark, s Server, noise float64, rng *rand.Rand) (powers, throughputs []float64) {
	fmin, fmax := DVFSLevels[0], DVFSLevels[len(DVFSLevels)-1]
	powers = make([]float64, len(DVFSLevels))
	throughputs = make([]float64, len(DVFSLevels))
	for i, f := range DVFSLevels {
		p := PowerAtDVFS(s, f, fmin, fmax)
		r := b.GroundTruth(p, s.IdleWatts, s.MaxWatts)
		if noise > 0 {
			r *= 1 + noise*rng.NormFloat64()
		}
		if r < 0 {
			r = 0
		}
		powers[i] = p
		throughputs[i] = r
	}
	return powers, throughputs
}

// FitFromSweep runs a sweep and fits the quadratic throughput model, the
// exact "learn the throughput function on-the-fly" procedure of
// Section 4.4.1.
func FitFromSweep(b Benchmark, s Server, noise float64, rng *rand.Rand) (Quadratic, error) {
	p, r := Sweep(b, s, noise, rng)
	q, err := FitQuadratic(p, r, s.IdleWatts, s.MaxWatts)
	if err != nil {
		return Quadratic{}, fmt.Errorf("workload: fitting %s: %w", b.Name, err)
	}
	return q, nil
}

// Assignment is a cluster-wide draw of workloads: one benchmark instance and
// its fitted utility per server.
type Assignment struct {
	Benchmarks []Benchmark
	Utilities  []Quadratic
}

// Assign draws a benchmark uniformly at random from catalog for each of n
// servers — guaranteeing every benchmark type appears at least once when
// n ≥ len(catalog), as the simulation setup requires — perturbs its curve
// per-server by perturb, fits utilities from noisy sweeps, and returns the
// assignment. noise and perturb may be zero for exact models.
func Assign(catalog []Benchmark, n int, s Server, perturb, noise float64, rng *rand.Rand) (Assignment, error) {
	if len(catalog) == 0 {
		return Assignment{}, fmt.Errorf("workload: empty catalog")
	}
	if err := s.Validate(); err != nil {
		return Assignment{}, err
	}
	a := Assignment{
		Benchmarks: make([]Benchmark, n),
		Utilities:  make([]Quadratic, n),
	}
	for i := 0; i < n; i++ {
		var b Benchmark
		if i < len(catalog) && n >= len(catalog) {
			b = catalog[i] // seed one of each type first
		} else {
			b = catalog[rng.Intn(len(catalog))]
		}
		if perturb > 0 {
			b = b.Perturb(rng, perturb)
		}
		q, err := FitFromSweep(b, s, noise, rng)
		if err != nil {
			return Assignment{}, err
		}
		a.Benchmarks[i] = b
		a.Utilities[i] = q
	}
	return a, nil
}

// UtilitySlice converts the assignment's quadratics to the Utility
// interface, the form the allocators accept.
func (a Assignment) UtilitySlice() []Utility {
	out := make([]Utility, len(a.Utilities))
	for i := range a.Utilities {
		out[i] = a.Utilities[i]
	}
	return out
}
