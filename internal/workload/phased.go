package workload

import (
	"errors"
	"math/rand"
)

// Real applications move through phases — the text re-solves budgets
// periodically "because workloads change their characteristics during
// runtime". Phased models such an application: it cycles through a
// sequence of per-phase benchmarks (e.g. a compute-heavy solve phase, a
// memory-heavy assembly phase), each with a dwell time, so the utility the
// budgeter should use drifts on a timescale the controller must track.
type Phased struct {
	// Name labels the phased application.
	Name string
	// Phases are the per-phase behaviours.
	Phases []Benchmark
	// DwellSeconds is each phase's mean duration.
	DwellSeconds []float64

	phase     int
	remaining float64
}

// NewPhased validates and builds a phased workload starting in phase 0.
func NewPhased(name string, phases []Benchmark, dwellSeconds []float64) (*Phased, error) {
	if len(phases) < 2 {
		return nil, errors.New("workload: a phased workload needs at least two phases")
	}
	if len(phases) != len(dwellSeconds) {
		return nil, errors.New("workload: phases/dwell length mismatch")
	}
	for _, d := range dwellSeconds {
		if d <= 0 {
			return nil, errors.New("workload: non-positive dwell time")
		}
	}
	return &Phased{
		Name:         name,
		Phases:       phases,
		DwellSeconds: dwellSeconds,
		remaining:    dwellSeconds[0],
	}, nil
}

// Current returns the benchmark of the active phase.
func (p *Phased) Current() Benchmark { return p.Phases[p.phase] }

// Phase returns the active phase index.
func (p *Phased) Phase() int { return p.phase }

// Advance moves simulated time forward by dt seconds and reports whether a
// phase transition occurred. Dwell times are exponentially distributed
// around their means when rng is non-nil, deterministic otherwise.
func (p *Phased) Advance(dt float64, rng *rand.Rand) bool {
	changed := false
	for dt > 0 {
		if dt < p.remaining {
			p.remaining -= dt
			break
		}
		dt -= p.remaining
		p.phase = (p.phase + 1) % len(p.Phases)
		mean := p.DwellSeconds[p.phase]
		if rng != nil {
			p.remaining = rng.ExpFloat64() * mean
			if p.remaining < mean/10 {
				p.remaining = mean / 10 // avoid zero-length phases
			}
		} else {
			p.remaining = mean
		}
		changed = true
	}
	return changed
}

// Utility fits the active phase's quadratic model on server s (noise-free;
// callers wanting measurement error should sweep and fit themselves).
func (p *Phased) Utility(s Server) Quadratic {
	return TrueUtility(p.Current(), s)
}
