package workload

import (
	"math/rand"
)

// Chapter 3 runs four workload instances per server (one per core of the
// quad-core i7) and budgets power over a discrete cap grid. Set models such
// a four-member workload set; it is the unit the throughput predictor and
// the knapsack budgeter operate on.

// SetKind distinguishes the two workload-composition cases of Fig. 3.12.
type SetKind int

const (
	// HomoWithin: four instances of the same benchmark on one server
	// ("heterogeneous across servers, homogeneous within server").
	HomoWithin SetKind = iota
	// HeteroWithin: four different benchmarks co-located on one server.
	HeteroWithin
)

func (k SetKind) String() string {
	if k == HomoWithin {
		return "homogeneous-within"
	}
	return "heterogeneous-within"
}

// Set is a four-member workload set running on one server.
type Set struct {
	Members [4]Benchmark
	Kind    SetKind
}

// NewHomoSet builds a set of four instances of benchmark b.
func NewHomoSet(b Benchmark) Set {
	return Set{Members: [4]Benchmark{b, b, b, b}, Kind: HomoWithin}
}

// NewHeteroSet draws four distinct benchmarks from catalog at random.
// The catalog must hold at least four entries.
func NewHeteroSet(catalog []Benchmark, rng *rand.Rand) Set {
	if len(catalog) < 4 {
		panic("workload: catalog too small for a heterogeneous set")
	}
	perm := rng.Perm(len(catalog))
	var s Set
	for i := 0; i < 4; i++ {
		s.Members[i] = catalog[perm[i]]
	}
	s.Kind = HeteroWithin
	return s
}

// GroundTruth returns the set's true aggregate throughput (BIPS) under
// power cap p on server s: the mean of the members' whole-server curves.
// Co-located heterogeneous members additionally interfere on shared caches;
// following the text's observation that "interactions between the workloads
// within the servers reduce the accuracy of the throughput predictor", the
// interference term bends the curve by an amount invisible to the quadratic
// family, so models fitted at one cap extrapolate slightly worse.
func (ws Set) GroundTruth(p float64, s Server) float64 {
	var sum float64
	for _, b := range ws.Members {
		sum += b.GroundTruth(p, s.IdleWatts, s.MaxWatts)
	}
	mean := sum / 4
	if ws.Kind == HeteroWithin {
		x := (clamp(p, s.IdleWatts, s.MaxWatts) - s.IdleWatts) / (s.MaxWatts - s.IdleWatts)
		spread := ws.llcSpread()
		// Contention penalty, strongest mid-range where co-runners compete
		// hardest for the shared cache; bounded by 6 % at maximal spread.
		mean *= 1 - 0.06*spread*4*x*(1-x)*x
	}
	return mean
}

// llcSpread returns the normalized spread of members' LLC intensities, the
// driver of co-location interference (0 for homogeneous sets).
func (ws Set) llcSpread() float64 {
	lo, hi := ws.Members[0].LLCPerKInst, ws.Members[0].LLCPerKInst
	for _, b := range ws.Members[1:] {
		if b.LLCPerKInst < lo {
			lo = b.LLCPerKInst
		}
		if b.LLCPerKInst > hi {
			hi = b.LLCPerKInst
		}
	}
	const llcScale = 16.0
	return (hi - lo) / llcScale
}

// LLC returns the set's mean last-level-cache miss intensity (misses per
// 1000 instructions), the performance-counter signal the Chapter 3
// predictor keys on.
func (ws Set) LLC() float64 {
	var sum float64
	for _, b := range ws.Members {
		sum += b.LLCPerKInst
	}
	return sum / 4
}

// Peak returns the set's true throughput at the highest cap, the "ideal
// throughput" Chapter 3 normalizes ANP against.
func (ws Set) Peak(s Server) float64 { return ws.GroundTruth(s.MaxWatts, s) }

// Observation is one runtime measurement of a capped server: what the power
// monitor and PMU deliver to the budgeter.
type Observation struct {
	Cap        float64 // enforced power cap (W)
	Throughput float64 // measured BIPS
	LLC        float64 // measured LLC misses per 1000 instructions
}

// Observe measures the set at cap p with relative measurement noise.
func (ws Set) Observe(p float64, s Server, noise float64, rng *rand.Rand) Observation {
	r := ws.GroundTruth(p, s)
	l := ws.LLC()
	if noise > 0 {
		r *= 1 + noise*rng.NormFloat64()
		l *= 1 + noise*rng.NormFloat64()
		if l < 0 {
			l = 0
		}
		if r < 0 {
			r = 0
		}
	}
	return Observation{Cap: p, Throughput: r, LLC: l}
}

// CapGrid returns the discrete power caps p0, p0+step, …, up to MaxWatts
// inclusive — e.g. 130, 135, …, 165 W for the Chapter 3 server (r = 8 caps).
func CapGrid(s Server, step float64) []float64 {
	if step <= 0 {
		panic("workload: non-positive cap step")
	}
	var grid []float64
	for p := s.IdleWatts; p <= s.MaxWatts+1e-9; p += step {
		grid = append(grid, p)
	}
	return grid
}
