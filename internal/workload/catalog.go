package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// Catalog I/O. The benchmark catalogs shipped here are synthetic stand-ins
// (DESIGN.md, substitution 1); a deployment that has characterized its own
// machines replaces them with measured parameters. WriteCatalog/ReadCatalog
// serialize catalogs as JSON so such curves live in version-controlled
// config rather than Go source.

// WriteCatalog serializes a catalog as indented JSON.
func WriteCatalog(w io.Writer, catalog []Benchmark) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(catalog)
}

// ReadCatalog deserializes and validates a catalog.
func ReadCatalog(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("workload: decoding catalog: %w", err)
	}
	if err := ValidateCatalog(out); err != nil {
		return nil, err
	}
	return out, nil
}

// ValidateCatalog checks every benchmark's parameters and name uniqueness.
func ValidateCatalog(catalog []Benchmark) error {
	if len(catalog) == 0 {
		return fmt.Errorf("workload: empty catalog")
	}
	seen := make(map[string]bool, len(catalog))
	for i, b := range catalog {
		if b.Name == "" {
			return fmt.Errorf("workload: catalog entry %d has no name", i)
		}
		if seen[b.Name] {
			return fmt.Errorf("workload: duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.PeakBIPS <= 0 {
			return fmt.Errorf("workload: %s: PeakBIPS must be positive", b.Name)
		}
		if b.Base <= 0 || b.Base >= 1 {
			return fmt.Errorf("workload: %s: Base %g outside (0,1)", b.Name, b.Base)
		}
		if b.MemBound <= 0 || b.MemBound > 1 {
			return fmt.Errorf("workload: %s: MemBound %g outside (0,1]", b.Name, b.MemBound)
		}
		if b.SatFrac < 0 || b.SatFrac > 1 {
			return fmt.Errorf("workload: %s: SatFrac %g outside [0,1]", b.Name, b.SatFrac)
		}
		if b.LLCPerKInst < 0 {
			return fmt.Errorf("workload: %s: negative LLC rate", b.Name)
		}
	}
	return nil
}
