// Package workload models the benchmarks the dissertation's evaluation runs
// and the throughput-versus-power behaviour of servers executing them.
//
// The original study measured 10 HPC benchmarks (NPB + HPCC, Table 4.1) on
// Dell PowerEdge C1100 servers, swept DVFS levels, and fitted concave
// quadratic throughput functions r_i(p_i) that every allocation algorithm
// then consumes. We do not have the hardware, so each benchmark carries a
// ground-truth concave curve whose character matches the paper's
// description (compute-bound benchmarks gain steeply from extra power,
// memory-bound ones saturate). The trace generator sweeps simulated DVFS
// levels over that ground truth with measurement noise, and the same
// least-squares quadratic fit the paper uses recovers the model the
// algorithms see. The code path from "measurement" to allocator is thereby
// identical to the paper's.
package workload

import (
	"fmt"
	"math/rand"
)

// Benchmark describes one benchmark's identity and its ground-truth
// power-to-throughput character.
type Benchmark struct {
	// Name is the benchmark's short name, e.g. "CG".
	Name string
	// Suite identifies the originating suite ("NPB", "HPCC", "SPEC", "PARSEC").
	Suite string
	// Desc is the one-line description from Table 4.1.
	Desc string

	// PeakBIPS is the throughput (billions of instructions per second) at
	// the maximum power cap on the reference server.
	PeakBIPS float64
	// Base is the fraction of peak throughput retained at the minimum power
	// cap. Memory-bound workloads have a high Base (power barely helps).
	Base float64
	// MemBound θ ∈ (0,1] controls curvature: the ground-truth normalized
	// throughput is Base + (1−Base)·((1+θ)u − θu²) with u the normalized
	// cap position below the saturation point. θ→0 is almost linear
	// (compute bound), θ=1 flattens completely at the saturation point.
	MemBound float64
	// SatFrac ∈ (0,1] is the fraction of the cap range at which throughput
	// saturates: beyond x = SatFrac extra power buys nothing (the workload
	// cannot use it). Memory-bound workloads saturate well inside the
	// range, which is exactly why uniform provisioning wastes budget on
	// them. 0 is treated as 1 (no interior saturation).
	SatFrac float64
	// LLCPerKInst is the characteristic last-level-cache misses per 1000
	// instructions, used by the Chapter 3 throughput predictor. Strongly
	// correlated with MemBound, as Fig. 3.7 observes.
	LLCPerKInst float64
}

// GroundTruth returns the true throughput (BIPS) of the benchmark when the
// server runs under power cap p on a server with the given cap range. Caps
// outside [minW, maxW] are clamped.
func (b Benchmark) GroundTruth(p, minW, maxW float64) float64 {
	if p < minW {
		p = minW
	}
	if p > maxW {
		p = maxW
	}
	x := (p - minW) / (maxW - minW)
	sat := b.SatFrac
	if sat <= 0 || sat > 1 {
		sat = 1
	}
	u := x / sat
	if u > 1 {
		u = 1 // flat beyond the saturation point
	}
	theta := b.MemBound
	norm := b.Base + (1-b.Base)*((1+theta)*u-theta*u*u)
	return b.PeakBIPS * norm
}

// HPC is the Chapter 4 benchmark catalog (Table 4.1): eight NPB kernels and
// two HPCC benchmarks. Curve parameters are synthetic but ordered to match
// the paper's qualitative description: EP and HPL are compute bound, RA and
// IS are memory bound.
var HPC = []Benchmark{
	{Name: "BT", Suite: "NPB", Desc: "Block Tri-diagonal solver", PeakBIPS: 9.0, Base: 0.40, MemBound: 0.55, SatFrac: 0.45, LLCPerKInst: 3.2},
	{Name: "CG", Suite: "NPB", Desc: "Conjugate Gradient", PeakBIPS: 6.5, Base: 0.70, MemBound: 0.90, SatFrac: 0.30, LLCPerKInst: 9.5},
	{Name: "EP", Suite: "NPB", Desc: "Embarrassingly Parallel", PeakBIPS: 12.0, Base: 0.15, MemBound: 0.05, SatFrac: 1.0, LLCPerKInst: 0.2},
	{Name: "FT", Suite: "NPB", Desc: "discrete 3D fast Fourier Transform", PeakBIPS: 8.0, Base: 0.60, MemBound: 0.80, SatFrac: 0.35, LLCPerKInst: 5.8},
	{Name: "IS", Suite: "NPB", Desc: "Integer Sort", PeakBIPS: 5.5, Base: 0.78, MemBound: 0.95, SatFrac: 0.25, LLCPerKInst: 11.0},
	{Name: "LU", Suite: "NPB", Desc: "Lower-Upper Gauss-Seidel solver", PeakBIPS: 10.0, Base: 0.30, MemBound: 0.35, SatFrac: 0.90, LLCPerKInst: 2.1},
	{Name: "MG", Suite: "NPB", Desc: "Multi-Grid on a sequence of meshes", PeakBIPS: 7.5, Base: 0.55, MemBound: 0.75, SatFrac: 0.40, LLCPerKInst: 6.4},
	{Name: "SP", Suite: "NPB", Desc: "Scalar Penta-diagonal solver", PeakBIPS: 8.5, Base: 0.35, MemBound: 0.45, SatFrac: 0.80, LLCPerKInst: 3.9},
	{Name: "HPL", Suite: "HPCC", Desc: "High performance Linpack benchmark", PeakBIPS: 14.0, Base: 0.18, MemBound: 0.10, SatFrac: 1.0, LLCPerKInst: 0.8},
	{Name: "RA", Suite: "HPCC", Desc: "Integer random access of memory", PeakBIPS: 4.0, Base: 0.85, MemBound: 0.98, SatFrac: 0.20, LLCPerKInst: 14.0},
}

// Desktop is the Chapter 3 benchmark catalog: a SPEC CPU2006 / PARSEC-like
// mix with a wide spread of memory boundedness, used by the throughput
// predictor and the knapsack budgeter.
var Desktop = []Benchmark{
	{Name: "perlbench", Suite: "SPEC", Desc: "Perl interpreter", PeakBIPS: 10.5, Base: 0.50, MemBound: 0.30, LLCPerKInst: 0.9},
	{Name: "bzip2", Suite: "SPEC", Desc: "compression", PeakBIPS: 9.0, Base: 0.54, MemBound: 0.42, LLCPerKInst: 2.0},
	{Name: "gcc", Suite: "SPEC", Desc: "C compiler", PeakBIPS: 8.2, Base: 0.58, MemBound: 0.55, LLCPerKInst: 4.2},
	{Name: "mcf", Suite: "SPEC", Desc: "combinatorial optimization", PeakBIPS: 3.8, Base: 0.80, MemBound: 0.97, LLCPerKInst: 16.0},
	{Name: "milc", Suite: "SPEC", Desc: "lattice QCD", PeakBIPS: 6.0, Base: 0.68, MemBound: 0.82, LLCPerKInst: 8.8},
	{Name: "namd", Suite: "SPEC", Desc: "molecular dynamics", PeakBIPS: 11.5, Base: 0.46, MemBound: 0.18, LLCPerKInst: 0.4},
	{Name: "gobmk", Suite: "SPEC", Desc: "Go playing AI", PeakBIPS: 9.5, Base: 0.52, MemBound: 0.35, LLCPerKInst: 1.4},
	{Name: "soplex", Suite: "SPEC", Desc: "linear programming solver", PeakBIPS: 6.8, Base: 0.64, MemBound: 0.74, LLCPerKInst: 7.0},
	{Name: "hmmer", Suite: "SPEC", Desc: "gene sequence search", PeakBIPS: 12.2, Base: 0.44, MemBound: 0.12, LLCPerKInst: 0.1},
	{Name: "libquantum", Suite: "SPEC", Desc: "quantum computer simulation", PeakBIPS: 5.2, Base: 0.72, MemBound: 0.92, LLCPerKInst: 12.5},
	{Name: "lbm", Suite: "SPEC", Desc: "lattice Boltzmann method", PeakBIPS: 5.8, Base: 0.70, MemBound: 0.88, LLCPerKInst: 10.2},
	{Name: "sphinx3", Suite: "SPEC", Desc: "speech recognition", PeakBIPS: 7.4, Base: 0.61, MemBound: 0.62, LLCPerKInst: 5.1},
	{Name: "blackscholes", Suite: "PARSEC", Desc: "option pricing", PeakBIPS: 11.8, Base: 0.45, MemBound: 0.20, LLCPerKInst: 0.5},
	{Name: "canneal", Suite: "PARSEC", Desc: "chip routing anneal", PeakBIPS: 4.6, Base: 0.75, MemBound: 0.93, LLCPerKInst: 13.0},
	{Name: "dedup", Suite: "PARSEC", Desc: "stream deduplication", PeakBIPS: 7.0, Base: 0.62, MemBound: 0.68, LLCPerKInst: 6.0},
	{Name: "fluidanimate", Suite: "PARSEC", Desc: "fluid dynamics", PeakBIPS: 8.8, Base: 0.56, MemBound: 0.48, LLCPerKInst: 3.0},
	{Name: "streamcluster", Suite: "PARSEC", Desc: "online clustering", PeakBIPS: 5.0, Base: 0.73, MemBound: 0.90, LLCPerKInst: 11.6},
	{Name: "swaptions", Suite: "PARSEC", Desc: "portfolio pricing", PeakBIPS: 11.0, Base: 0.48, MemBound: 0.22, LLCPerKInst: 0.6},
	{Name: "vips", Suite: "PARSEC", Desc: "image processing", PeakBIPS: 9.2, Base: 0.53, MemBound: 0.40, LLCPerKInst: 1.8},
	{Name: "x264", Suite: "PARSEC", Desc: "video encoding", PeakBIPS: 9.8, Base: 0.51, MemBound: 0.38, LLCPerKInst: 1.6},
	// omnetpp and astar break the usual Base↔MemBound correlation: their
	// working sets thrash at low caps (low Base) but fit once the machine
	// speeds up (strong saturation). They produce the crossing ANP curves
	// of Fig. 3.1 that defeat greedy allocation.
	{Name: "omnetpp", Suite: "SPEC", Desc: "discrete event simulation", PeakBIPS: 6.2, Base: 0.35, MemBound: 0.92, LLCPerKInst: 7.8},
	{Name: "astar", Suite: "SPEC", Desc: "pathfinding", PeakBIPS: 7.1, Base: 0.40, MemBound: 0.85, LLCPerKInst: 6.2},
}

// ByName returns the benchmark with the given name from the catalog, or an
// error naming the catalog searched.
func ByName(catalog []Benchmark, name string) (Benchmark, error) {
	for _, b := range catalog {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: benchmark %q not found", name)
}

// Perturb returns a copy of b with its curve parameters jittered by the
// given relative amount, modelling server-to-server and input-set variation.
// The result is kept inside valid parameter ranges.
func (b Benchmark) Perturb(rng *rand.Rand, rel float64) Benchmark {
	out := b
	out.PeakBIPS *= 1 + rel*rng.NormFloat64()
	if out.PeakBIPS < 0.1*b.PeakBIPS {
		out.PeakBIPS = 0.1 * b.PeakBIPS
	}
	out.Base = clamp(b.Base*(1+rel*rng.NormFloat64()), 0.05, 0.95)
	out.MemBound = clamp(b.MemBound*(1+rel*rng.NormFloat64()), 0.02, 1.0)
	sat := b.SatFrac
	if sat <= 0 || sat > 1 {
		sat = 1
	}
	out.SatFrac = clamp(sat*(1+rel*rng.NormFloat64()), 0.1, 1.0)
	out.LLCPerKInst = clamp(b.LLCPerKInst*(1+rel*rng.NormFloat64()), 0, 50)
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
