// Package ctlplane is the operator-facing HTTP/JSON control plane for a
// DiBA daemon or an in-process engine. It is built around one contract:
// serving reads must never touch consensus state. The round loop publishes
// an immutable StateSnapshot per round (internal/diba/publish.go); this
// package serves those snapshots with zero allocations on the steady-state
// read path and funnels writes through a bounded, latest-wins command queue
// that the round loop drains at round boundaries.
package ctlplane

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"powercap/internal/diba"
)

// CommandKind identifies a queued control-plane write.
type CommandKind int

const (
	// CmdSetBudget sets the cluster budget to BudgetW watts.
	CmdSetBudget CommandKind = iota
	// CmdShed is an emergency shed: multiply the budget by (1 - Frac).
	CmdShed
)

func (k CommandKind) String() string {
	switch k {
	case CmdSetBudget:
		return "set-budget"
	case CmdShed:
		return "shed"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Command is one pending control-plane write. Commands with the same Key
// coalesce latest-wins while queued: an operator slamming POST /v1/budget
// ten times between rounds produces one budget change, not ten.
type Command struct {
	Kind    CommandKind
	Key     string
	BudgetW float64
	Frac    float64
	Tenant  string
}

// cmdQueue is the bounded latest-wins command queue. Enqueue is called from
// HTTP handler goroutines; Drain is called from the round loop. The mutex
// is only ever held for map/slice bookkeeping — never while applying.
type cmdQueue struct {
	mu      sync.Mutex
	max     int
	pending map[string]Command
	order   []string // arrival order of first enqueue per key

	queued    atomic.Uint64
	coalesced atomic.Uint64
	rejected  atomic.Uint64
	applied   atomic.Uint64
	failed    atomic.Uint64
}

var errQueueFull = errors.New("command queue full")

// enqueue adds or coalesces cmd. It reports whether the command replaced a
// pending one with the same key.
func (q *cmdQueue) enqueue(cmd Command) (coalesced bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.pending == nil {
		q.pending = make(map[string]Command, q.max)
	}
	if _, ok := q.pending[cmd.Key]; ok {
		q.pending[cmd.Key] = cmd
		q.coalesced.Add(1)
		return true, nil
	}
	if len(q.pending) >= q.max {
		q.rejected.Add(1)
		return false, errQueueFull
	}
	q.pending[cmd.Key] = cmd
	q.order = append(q.order, cmd.Key)
	q.queued.Add(1)
	return false, nil
}

// drain removes all pending commands and applies them in arrival order.
func (q *cmdQueue) drain(apply func(Command) error) (applied, failed int) {
	q.mu.Lock()
	if len(q.pending) == 0 {
		q.mu.Unlock()
		return 0, 0
	}
	cmds := make([]Command, 0, len(q.order))
	for _, key := range q.order {
		cmds = append(cmds, q.pending[key])
	}
	q.pending = nil
	q.order = nil
	q.mu.Unlock()

	for _, cmd := range cmds {
		if err := apply(cmd); err != nil {
			failed++
			q.failed.Add(1)
		} else {
			applied++
			q.applied.Add(1)
		}
	}
	return applied, failed
}

func (q *cmdQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Config parameterizes a Server.
type Config struct {
	// Node is the daemon's node id (-1 for an engine-mode server).
	Node int
	// Workload names the local utility model, echoed by GET /status.
	Workload string
	// Pub is the snapshot source. Required.
	Pub *diba.StatePub
	// BudgetW is the configured full cluster budget in watts; POST
	// /v1/powercap percentages are taken relative to it.
	BudgetW float64
	// Hier rejects budget/shed commands: in hierarchical mode the budget is
	// governed by the lease protocol, not the local agent.
	Hier bool
	// MaxPending bounds the command queue (distinct keys). Default 64.
	MaxPending int
}

// request-counter indices, one per endpoint family.
const (
	reqCaps = iota
	reqHealth
	reqStatus
	reqMetrics
	reqCommand
	reqPaths
)

// Server serves published snapshots and queues control-plane writes. All
// read endpoints are wait-free with respect to the round loop.
type Server struct {
	cfg  Config
	pub  *diba.StatePub
	caps bodyCache
	hlth bodyCache
	stat bodyCache
	cmds cmdQueue

	reqs [reqPaths]atomic.Uint64

	mu sync.Mutex
	hs *http.Server
	ln net.Listener
}

// New builds a Server over cfg.Pub. It does not start listening; call
// Start, or mount Handler on a server of your own.
func New(cfg Config) *Server {
	if cfg.Pub == nil {
		panic("ctlplane: Config.Pub is required")
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 64
	}
	s := &Server{cfg: cfg, pub: cfg.Pub}
	s.cmds.max = cfg.MaxPending
	s.caps.enc = appendCapsJSON
	s.hlth.enc = appendHealthJSON
	s.stat.enc = func(b []byte, snap *diba.StateSnapshot) []byte {
		return appendStatusJSON(b, cfg.Node, cfg.Workload, snap)
	}
	return s
}

// CapsBody returns the encoded GET /v1/caps body for the latest snapshot,
// or nil before the first publication. This is the serving hot path: when
// the snapshot has not changed since the previous call it performs two
// atomic loads, one pointer compare and zero allocations.
func (s *Server) CapsBody() []byte {
	snap := s.pub.Load()
	if snap == nil {
		return nil
	}
	return s.caps.get(snap)
}

// HealthBody returns the encoded GET /v1/health body, with the same
// caching discipline as CapsBody.
func (s *Server) HealthBody() []byte {
	snap := s.pub.Load()
	if snap == nil {
		return nil
	}
	return s.hlth.get(snap)
}

// StatusBody returns the legacy GET /status body.
func (s *Server) StatusBody() []byte {
	snap := s.pub.Load()
	if snap == nil {
		return nil
	}
	return s.stat.get(snap)
}

// Enqueue queues a control-plane write for the next round boundary,
// coalescing latest-wins per key.
func (s *Server) Enqueue(cmd Command) (coalesced bool, err error) {
	if s.cfg.Hier {
		return false, errors.New("hierarchical mode: budget is governed by the lease protocol")
	}
	return s.cmds.enqueue(cmd)
}

// Drain applies every pending command in arrival order via apply. Call it
// from the round loop at a round boundary — apply runs on the caller's
// goroutine and may touch consensus state.
func (s *Server) Drain(apply func(Command) error) (applied, failed int) {
	return s.cmds.drain(apply)
}

// Pending returns the number of queued (un-drained) commands.
func (s *Server) Pending() int { return s.cmds.depth() }

// Requests returns the total HTTP requests served, summed across endpoints.
func (s *Server) Requests() uint64 {
	var n uint64
	for i := range s.reqs {
		n += s.reqs[i].Load()
	}
	return n
}

// Handler returns the control-plane mux:
//
//	GET  /v1/caps     cap/budget view of the latest round
//	GET  /v1/health   gray-failure, watchdog and transport view
//	GET  /status      legacy one-line status (field-compatible with old dibad)
//	GET  /metrics     Prometheus text exposition
//	POST /v1/budget   {"budget_w": 900}            set cluster budget
//	POST /v1/powercap {"percentage": 75}           budget as % of configured
//	POST /v1/shed     {"frac": 0.2, "tenant": ""}  emergency shed
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/caps", func(w http.ResponseWriter, r *http.Request) {
		s.serveBody(w, r, reqCaps, s.CapsBody)
	})
	mux.HandleFunc("/v1/health", func(w http.ResponseWriter, r *http.Request) {
		s.serveBody(w, r, reqHealth, s.HealthBody)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		s.serveBody(w, r, reqStatus, s.StatusBody)
	})
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/v1/budget", s.serveBudget)
	mux.HandleFunc("/v1/powercap", s.servePowercap)
	mux.HandleFunc("/v1/shed", s.serveShed)
	return mux
}

func (s *Server) serveBody(w http.ResponseWriter, r *http.Request, idx int, body func() []byte) {
	s.reqs[idx].Add(1)
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	b := body()
	if b == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", itoa(len(b)))
	w.Write(b)
}

// itoa is a tiny allocation-free int formatter for Content-Length values
// (strconv.Itoa escapes its buffer to the heap).
func itoa(n int) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(buf[i:])
}

func (s *Server) decodeCommand(w http.ResponseWriter, r *http.Request, into any) bool {
	s.reqs[reqCommand].Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) queueAndReply(w http.ResponseWriter, cmd Command) {
	coalesced, err := s.Enqueue(cmd)
	if err != nil {
		code := http.StatusConflict
		if errors.Is(err, errQueueFull) {
			code = http.StatusTooManyRequests
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "{\"status\":\"queued\",\"command\":%q,\"coalesced\":%v}\n", cmd.Kind.String(), coalesced)
}

func (s *Server) serveBudget(w http.ResponseWriter, r *http.Request) {
	var req struct {
		BudgetW float64 `json:"budget_w"`
		Tenant  string  `json:"tenant"`
	}
	if !s.decodeCommand(w, r, &req) {
		return
	}
	if req.BudgetW <= 0 {
		http.Error(w, "budget_w must be positive", http.StatusBadRequest)
		return
	}
	s.queueAndReply(w, Command{Kind: CmdSetBudget, Key: "budget", BudgetW: req.BudgetW, Tenant: req.Tenant})
}

func (s *Server) servePowercap(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Percentage float64 `json:"percentage"`
	}
	if !s.decodeCommand(w, r, &req) {
		return
	}
	if req.Percentage <= 0 || req.Percentage > 100 {
		http.Error(w, "percentage must be in (0, 100]", http.StatusBadRequest)
		return
	}
	if s.cfg.BudgetW <= 0 {
		http.Error(w, "no configured budget to take a percentage of", http.StatusConflict)
		return
	}
	s.queueAndReply(w, Command{
		Kind:    CmdSetBudget,
		Key:     "budget",
		BudgetW: s.cfg.BudgetW * req.Percentage / 100,
	})
}

func (s *Server) serveShed(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Frac   float64 `json:"frac"`
		Tenant string  `json:"tenant"`
	}
	if !s.decodeCommand(w, r, &req) {
		return
	}
	if req.Frac <= 0 || req.Frac >= 1 {
		http.Error(w, "frac must be in (0, 1)", http.StatusBadRequest)
		return
	}
	s.queueAndReply(w, Command{Kind: CmdShed, Key: "shed", Frac: req.Frac, Tenant: req.Tenant})
}

// Start listens on addr and serves the control plane in a background
// goroutine. Use Addr to learn the bound address (addr may use port 0).
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.ln, s.hs = ln, hs
	s.mu.Unlock()
	go hs.Serve(ln)
	return nil
}

// Addr returns the listener address after Start, or "" before it.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the HTTP server: the listener closes
// immediately, in-flight requests get up to timeout to complete, and no
// accepted request is ever dropped mid-response. Safe to call without a
// prior Start (no-op) and at most once meaningfully.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	hs := s.hs
	s.hs, s.ln = nil, nil
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return hs.Shutdown(ctx)
}
