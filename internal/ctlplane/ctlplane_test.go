package ctlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"powercap/internal/diba"
)

func testSnapshot(seq uint64) *diba.StateSnapshot {
	return &diba.StateSnapshot{
		Seq:        seq,
		Node:       3,
		Round:      int(seq) * 10,
		CapW:       151.25,
		ConsensusW: 152.5,
		EstimateW:  -1.25,
		BudgetW:    900,
		Dead:       []int{1, 4},
		Health: []diba.PeerHealth{
			{Peer: 2, RTT: diba.RTTStats{Mean: 310 * time.Microsecond, P99: 900 * time.Microsecond, Samples: 42, Suspicion: 0.1}},
			{Peer: 4, RTT: diba.RTTStats{Degraded: true}, StaleRounds: 3, Outstanding: 1},
		},
		Wire:      diba.WireStats{MsgsSent: 100, MsgsRecv: 99, BytesSent: 2400, BytesRecv: 2376, Flushes: 50},
		WirePeers: []diba.PeerWire{{Peer: 2, Stats: diba.WireStats{MsgsSent: 50}}},
		Watchdog:  diba.WatchdogView{Enabled: true, Periods: 20, Violations: 2, Sheds: 1, MinDerate: 0.9},
	}
}

func newTestServer(t *testing.T) (*Server, *diba.StatePub) {
	t.Helper()
	var pub diba.StatePub
	s := New(Config{Node: 3, Workload: "quad", Pub: &pub, BudgetW: 900, MaxPending: 4})
	return s, &pub
}

// Every encoder must produce valid JSON — the encoders are hand-rolled
// append code, so round-trip each body through encoding/json.
func TestBodiesAreValidJSON(t *testing.T) {
	s, pub := newTestServer(t)
	if s.CapsBody() != nil || s.HealthBody() != nil || s.StatusBody() != nil {
		t.Fatal("bodies must be nil before the first publication")
	}
	pub.Publish(testSnapshot(0))

	for name, body := range map[string][]byte{
		"caps":   s.CapsBody(),
		"health": s.HealthBody(),
		"status": s.StatusBody(),
	} {
		var v map[string]any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("%s body is not valid JSON: %v\n%s", name, err, body)
		}
	}

	var caps struct {
		Seq      uint64  `json:"seq"`
		Node     int     `json:"node"`
		Round    int     `json:"round"`
		CapW     float64 `json:"cap_w"`
		BudgetW  float64 `json:"budget_w"`
		Dead     []int   `json:"dead"`
		Degraded bool    `json:"degraded"`
	}
	if err := json.Unmarshal(s.CapsBody(), &caps); err != nil {
		t.Fatal(err)
	}
	if caps.Seq != 1 || caps.Node != 3 || caps.CapW != 151.25 || caps.BudgetW != 900 {
		t.Fatalf("caps fields wrong: %+v", caps)
	}
	if len(caps.Dead) != 2 || caps.Dead[0] != 1 || caps.Dead[1] != 4 {
		t.Fatalf("dead list wrong: %v", caps.Dead)
	}

	var status struct {
		ID       int     `json:"id"`
		Workload string  `json:"workload"`
		CapW     float64 `json:"capW"`
		Round    int     `json:"round"`
	}
	if err := json.Unmarshal(s.StatusBody(), &status); err != nil {
		t.Fatal(err)
	}
	if status.ID != 3 || status.Workload != "quad" || status.CapW != 151.25 {
		t.Fatalf("status fields wrong: %+v", status)
	}
}

func TestHierAndEngineBodies(t *testing.T) {
	s, pub := newTestServer(t)
	hs := testSnapshot(0)
	hs.Hier = true
	hs.Group, hs.Epoch, hs.LeaseMw = 2, 7, 450_000
	hs.Aggregate, hs.Frozen = true, false
	hs.GrayPeers = []int{5}
	hs.Renewals, hs.Demotions = 12, 1
	pub.Publish(hs)
	var hier struct {
		Group   int   `json:"group"`
		Epoch   int   `json:"epoch"`
		LeaseMw int64 `json:"lease_mw"`
		Gray    []int `json:"gray"`
	}
	if err := json.Unmarshal(s.CapsBody(), &hier); err != nil {
		t.Fatalf("hier caps body: %v\n%s", err, s.CapsBody())
	}
	if hier.Group != 2 || hier.Epoch != 7 || hier.LeaseMw != 450_000 || len(hier.Gray) != 1 {
		t.Fatalf("hier fields wrong: %+v", hier)
	}

	pub.Publish(&diba.StateSnapshot{
		Node: -1, EngineMode: true, N: 4, Round: 9,
		BudgetW: 400, TotalPowW: 399.5, TotalUtil: 80.25,
		Caps: []float64{99, 100, 100.5, 100},
	})
	var eng struct {
		N     int       `json:"n"`
		Caps  []float64 `json:"caps_w"`
		Total float64   `json:"total_power_w"`
	}
	if err := json.Unmarshal(s.CapsBody(), &eng); err != nil {
		t.Fatalf("engine caps body: %v\n%s", err, s.CapsBody())
	}
	if eng.N != 4 || len(eng.Caps) != 4 || eng.Caps[2] != 100.5 || eng.Total != 399.5 {
		t.Fatalf("engine fields wrong: %+v", eng)
	}
}

// The steady-state read path must not allocate: same snapshot, repeated
// reads serve the cached encoding.
func TestCapsBodyZeroAllocSteadyState(t *testing.T) {
	s, pub := newTestServer(t)
	pub.Publish(testSnapshot(0))
	s.CapsBody() // warm the cache

	allocs := testing.AllocsPerRun(1000, func() {
		if s.CapsBody() == nil {
			t.Fatal("nil body")
		}
	})
	if allocs != 0 {
		t.Fatalf("CapsBody steady state allocated %.1f allocs/op, want 0", allocs)
	}
}

// A new snapshot must invalidate the cache, and an interleaved stale
// encoder must never clobber a newer entry (seq-guarded CAS).
func TestBodyCacheTracksLatestSnapshot(t *testing.T) {
	s, pub := newTestServer(t)
	pub.Publish(testSnapshot(0))
	b1 := append([]byte(nil), s.CapsBody()...)
	pub.Publish(testSnapshot(0)) // Publish stamps seq=2, round=20
	b2 := s.CapsBody()
	if bytes.Equal(b1, b2) {
		t.Fatal("cache served a stale body after a new publication")
	}
	if !strings.Contains(string(b2), `"seq":2`) {
		t.Fatalf("body does not reflect latest snapshot: %s", b2)
	}
	// Repeated reads of the same snapshot return the identical cached slice.
	if &b2[0] != &s.CapsBody()[0] {
		t.Fatal("cache re-encoded an unchanged snapshot")
	}
}

// Concurrent readers racing publications must always observe a valid JSON
// body for some published snapshot — never a torn or mixed encoding.
func TestConcurrentReadersRacePublisher(t *testing.T) {
	s, pub := newTestServer(t)
	// Publish stamps seq 1, 2, 3, ... in order; build each snapshot so
	// Round == Seq*10 and readers can detect a mixed encoding.
	pub.Publish(testSnapshot(1))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body := s.CapsBody()
				var v struct {
					Seq   uint64 `json:"seq"`
					Round int    `json:"round"`
				}
				if err := json.Unmarshal(body, &v); err != nil {
					t.Errorf("torn body: %v\n%s", err, body)
					return
				}
				if v.Round != int(v.Seq)*10 {
					t.Errorf("mixed encoding: seq=%d round=%d", v.Seq, v.Round)
					return
				}
			}
		}()
	}
	for i := 2; i <= 5000; i++ {
		pub.Publish(testSnapshot(uint64(i)))
	}
	close(stop)
	wg.Wait()
}

func TestCommandQueueCoalescesLatestWins(t *testing.T) {
	s, _ := newTestServer(t)
	if _, err := s.Enqueue(Command{Kind: CmdSetBudget, Key: "budget", BudgetW: 800}); err != nil {
		t.Fatal(err)
	}
	co, err := s.Enqueue(Command{Kind: CmdSetBudget, Key: "budget", BudgetW: 750})
	if err != nil || !co {
		t.Fatalf("second budget should coalesce: co=%v err=%v", co, err)
	}
	if _, err := s.Enqueue(Command{Kind: CmdShed, Key: "shed", Frac: 0.2}); err != nil {
		t.Fatal(err)
	}
	if got := s.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2 (budget coalesced)", got)
	}

	var got []Command
	applied, failed := s.Drain(func(c Command) error {
		got = append(got, c)
		return nil
	})
	if applied != 2 || failed != 0 {
		t.Fatalf("applied=%d failed=%d", applied, failed)
	}
	// Arrival order preserved; budget carries the LAST value.
	if got[0].Kind != CmdSetBudget || got[0].BudgetW != 750 {
		t.Fatalf("first drained command wrong: %+v", got[0])
	}
	if got[1].Kind != CmdShed || got[1].Frac != 0.2 {
		t.Fatalf("second drained command wrong: %+v", got[1])
	}
	if s.Pending() != 0 {
		t.Fatal("queue not empty after drain")
	}
}

func TestCommandQueueBounded(t *testing.T) {
	s, _ := newTestServer(t) // MaxPending: 4
	for i := 0; i < 4; i++ {
		if _, err := s.Enqueue(Command{Key: fmt.Sprintf("k%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Enqueue(Command{Key: "overflow"}); err == nil {
		t.Fatal("fifth distinct key should be rejected")
	}
	// Coalescing into an existing key still works at capacity.
	if _, err := s.Enqueue(Command{Key: "k0", BudgetW: 1}); err != nil {
		t.Fatalf("coalesce at capacity rejected: %v", err)
	}
}

func TestHierModeRejectsCommands(t *testing.T) {
	var pub diba.StatePub
	s := New(Config{Node: 0, Pub: &pub, Hier: true})
	if _, err := s.Enqueue(Command{Kind: CmdSetBudget, Key: "budget", BudgetW: 500}); err == nil {
		t.Fatal("hier mode must reject budget commands")
	}
}

// End-to-end over real HTTP: endpoints, write validation, metrics text.
func TestHTTPEndpoints(t *testing.T) {
	s, pub := newTestServer(t)
	pub.Publish(testSnapshot(0))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(time.Second)
	base := "http://" + s.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/v1/caps"); code != 200 || !strings.Contains(body, `"cap_w":151.25`) {
		t.Fatalf("GET /v1/caps = %d %s", code, body)
	}
	if code, body := get("/v1/health"); code != 200 || !strings.Contains(body, `"watchdog"`) {
		t.Fatalf("GET /v1/health = %d %s", code, body)
	}
	if code, body := get("/status"); code != 200 || !strings.Contains(body, `"workload":"quad"`) {
		t.Fatalf("GET /status = %d %s", code, body)
	}
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "powercap_cap_watts 151.25") ||
		!strings.Contains(body, `powercap_api_requests_total{path="caps"} 1`) {
		t.Fatalf("GET /metrics = %d %s", code, body)
	}

	if code, _ := post("/v1/budget", `{"budget_w":850}`); code != http.StatusAccepted {
		t.Fatalf("POST /v1/budget = %d", code)
	}
	if code, _ := post("/v1/powercap", `{"percentage":75}`); code != http.StatusAccepted {
		t.Fatalf("POST /v1/powercap = %d", code)
	}
	if code, _ := post("/v1/shed", `{"frac":0.2}`); code != http.StatusAccepted {
		t.Fatalf("POST /v1/shed = %d", code)
	}
	if code, _ := post("/v1/budget", `{"budget_w":-5}`); code != http.StatusBadRequest {
		t.Fatalf("negative budget accepted: %d", code)
	}
	if code, _ := post("/v1/powercap", `{"percentage":150}`); code != http.StatusBadRequest {
		t.Fatalf("percentage >100 accepted: %d", code)
	}
	if code, _ := post("/v1/budget", `{"bad_field":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", code)
	}

	// powercap coalesced onto the budget key: 75% of 900 = 675.
	var drained []Command
	s.Drain(func(c Command) error { drained = append(drained, c); return nil })
	if len(drained) != 2 {
		t.Fatalf("drained %d commands, want 2", len(drained))
	}
	if drained[0].Kind != CmdSetBudget || drained[0].BudgetW != 675 {
		t.Fatalf("budget command wrong: %+v", drained[0])
	}
}

func TestShutdownWithoutStart(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
}
