package ctlplane

import (
	"net/http"
	"strconv"
	"sync"

	"powercap/internal/diba"
)

// GET /metrics renders the latest snapshot plus the server's own counters
// in Prometheus text exposition format. Scrapes are expected at human
// cadence (seconds), so the encoder favors clarity over the caps path's
// zero-alloc discipline — but it still reads only the published snapshot
// and pooled buffers, never consensus state.

var metricsBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

func appendMetric(b []byte, name, labels string, v float64) []byte {
	b = append(b, name...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = strconv.AppendFloat(b, v, 'g', -1, 64)
	return append(b, '\n')
}

func appendMetricHeader(b []byte, name, typ, help string) []byte {
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, help...)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	return append(b, '\n')
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func (s *Server) appendMetrics(b []byte, snap *diba.StateSnapshot) []byte {
	b = appendMetricHeader(b, "powercap_snapshot_seq", "counter", "Published snapshot sequence number.")
	b = appendMetric(b, "powercap_snapshot_seq", "", float64(snap.Seq))
	b = appendMetricHeader(b, "powercap_round", "counter", "Consensus rounds completed.")
	b = appendMetric(b, "powercap_round", "", float64(snap.Round))
	b = appendMetricHeader(b, "powercap_budget_watts", "gauge", "Local view of the cluster power budget.")
	b = appendMetric(b, "powercap_budget_watts", "", snap.BudgetW)

	if snap.EngineMode {
		b = appendMetricHeader(b, "powercap_nodes", "gauge", "Nodes in the in-process engine.")
		b = appendMetric(b, "powercap_nodes", "", float64(snap.N))
		b = appendMetricHeader(b, "powercap_total_power_watts", "gauge", "Sum of all node allocations.")
		b = appendMetric(b, "powercap_total_power_watts", "", snap.TotalPowW)
		b = appendMetricHeader(b, "powercap_total_utility", "gauge", "Sum of all node utilities.")
		b = appendMetric(b, "powercap_total_utility", "", snap.TotalUtil)
	} else {
		b = appendMetricHeader(b, "powercap_cap_watts", "gauge", "Cap applied to this server.")
		b = appendMetric(b, "powercap_cap_watts", "", snap.CapW)
		b = appendMetricHeader(b, "powercap_consensus_watts", "gauge", "Consensus power allocation p_i.")
		b = appendMetric(b, "powercap_consensus_watts", "", snap.ConsensusW)
		b = appendMetricHeader(b, "powercap_estimate_watts", "gauge", "Surplus estimate e_i.")
		b = appendMetric(b, "powercap_estimate_watts", "", snap.EstimateW)
		b = appendMetricHeader(b, "powercap_dead_nodes", "gauge", "Peers this node believes dead.")
		b = appendMetric(b, "powercap_dead_nodes", "", float64(len(snap.Dead)))
		b = appendMetricHeader(b, "powercap_telemetry_degraded", "gauge", "1 when the local telemetry guard distrusts the power sensor.")
		b = appendMetric(b, "powercap_telemetry_degraded", "", b2f(snap.Degraded))
	}

	if snap.Hier {
		b = appendMetricHeader(b, "powercap_lease_milliwatts", "gauge", "Group budget lease held by this node's group.")
		b = appendMetric(b, "powercap_lease_milliwatts", "", float64(snap.LeaseMw))
		b = appendMetricHeader(b, "powercap_lease_epoch", "counter", "Aggregate lease epoch.")
		b = appendMetric(b, "powercap_lease_epoch", "", float64(snap.Epoch))
		b = appendMetricHeader(b, "powercap_aggregate_active", "gauge", "1 when this node is the group aggregate.")
		b = appendMetric(b, "powercap_aggregate_active", "", b2f(snap.Aggregate))
		b = appendMetricHeader(b, "powercap_lease_frozen", "gauge", "1 when the lease is expired and the group budget is frozen.")
		b = appendMetric(b, "powercap_lease_frozen", "", b2f(snap.Frozen))
		b = appendMetricHeader(b, "powercap_lease_renewals_total", "counter", "Successful lease renewals by this node.")
		b = appendMetric(b, "powercap_lease_renewals_total", "", float64(snap.Renewals))
		b = appendMetricHeader(b, "powercap_gray_demotions_total", "counter", "Aggregate self-demotions after renewal starvation.")
		b = appendMetric(b, "powercap_gray_demotions_total", "", float64(snap.Demotions))
		b = appendMetricHeader(b, "powercap_gray_peers", "gauge", "Group members currently excluded from aggregate election.")
		b = appendMetric(b, "powercap_gray_peers", "", float64(len(snap.GrayPeers)))
	}

	if snap.Watchdog.Enabled {
		b = appendMetricHeader(b, "powercap_watchdog_periods_total", "counter", "Watchdog evaluation periods.")
		b = appendMetric(b, "powercap_watchdog_periods_total", "", float64(snap.Watchdog.Periods))
		b = appendMetricHeader(b, "powercap_watchdog_violations_total", "counter", "Periods the measured power exceeded the cap.")
		b = appendMetric(b, "powercap_watchdog_violations_total", "", float64(snap.Watchdog.Violations))
		b = appendMetricHeader(b, "powercap_watchdog_sheds_total", "counter", "Emergency derates applied by the watchdog.")
		b = appendMetric(b, "powercap_watchdog_sheds_total", "", float64(snap.Watchdog.Sheds))
		b = appendMetricHeader(b, "powercap_watchdog_releases_total", "counter", "Derates released after sustained compliance.")
		b = appendMetric(b, "powercap_watchdog_releases_total", "", float64(snap.Watchdog.Releases))
	}

	b = appendMetricHeader(b, "powercap_wire_msgs_sent_total", "counter", "Consensus messages sent.")
	b = appendMetric(b, "powercap_wire_msgs_sent_total", "", float64(snap.Wire.MsgsSent))
	b = appendMetricHeader(b, "powercap_wire_msgs_recv_total", "counter", "Consensus messages received.")
	b = appendMetric(b, "powercap_wire_msgs_recv_total", "", float64(snap.Wire.MsgsRecv))
	b = appendMetricHeader(b, "powercap_wire_bytes_sent_total", "counter", "Consensus bytes sent.")
	b = appendMetric(b, "powercap_wire_bytes_sent_total", "", float64(snap.Wire.BytesSent))
	b = appendMetricHeader(b, "powercap_wire_bytes_recv_total", "counter", "Consensus bytes received.")
	b = appendMetric(b, "powercap_wire_bytes_recv_total", "", float64(snap.Wire.BytesRecv))
	b = appendMetricHeader(b, "powercap_wire_flushes_total", "counter", "Coalesced transport flushes.")
	b = appendMetric(b, "powercap_wire_flushes_total", "", float64(snap.Wire.Flushes))

	b = appendMetricHeader(b, "powercap_api_requests_total", "counter", "Control-plane HTTP requests served.")
	b = appendMetric(b, "powercap_api_requests_total", `path="caps"`, float64(s.reqs[reqCaps].Load()))
	b = appendMetric(b, "powercap_api_requests_total", `path="health"`, float64(s.reqs[reqHealth].Load()))
	b = appendMetric(b, "powercap_api_requests_total", `path="status"`, float64(s.reqs[reqStatus].Load()))
	b = appendMetric(b, "powercap_api_requests_total", `path="metrics"`, float64(s.reqs[reqMetrics].Load()))
	b = appendMetric(b, "powercap_api_requests_total", `path="command"`, float64(s.reqs[reqCommand].Load()))

	b = appendMetricHeader(b, "powercap_api_commands_total", "counter", "Control-plane commands by disposition.")
	b = appendMetric(b, "powercap_api_commands_total", `result="queued"`, float64(s.cmds.queued.Load()))
	b = appendMetric(b, "powercap_api_commands_total", `result="coalesced"`, float64(s.cmds.coalesced.Load()))
	b = appendMetric(b, "powercap_api_commands_total", `result="rejected"`, float64(s.cmds.rejected.Load()))
	b = appendMetric(b, "powercap_api_commands_total", `result="applied"`, float64(s.cmds.applied.Load()))
	b = appendMetric(b, "powercap_api_commands_total", `result="failed"`, float64(s.cmds.failed.Load()))
	return b
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	s.reqs[reqMetrics].Add(1)
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap := s.pub.Load()
	if snap == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	bp := metricsBufPool.Get().(*[]byte)
	b := s.appendMetrics((*bp)[:0], snap)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", itoa(len(b)))
	w.Write(b)
	*bp = b[:0]
	metricsBufPool.Put(bp)
}
