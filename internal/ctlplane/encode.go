package ctlplane

import (
	"strconv"
	"sync/atomic"
	"time"

	"powercap/internal/diba"
)

// Append-style JSON encoding of published snapshots, in the same discipline
// as the wire codec's EncodeTo: every encoder takes a destination buffer
// and returns the appended slice, so the only allocation is the buffer
// itself — and the bodyCache below makes even that once-per-round, not
// once-per-request.

func appendKey(b []byte, key string) []byte {
	b = append(b, '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return b
}

func appendFloatField(b []byte, key string, v float64) []byte {
	b = appendKey(b, key)
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendIntField(b []byte, key string, v int64) []byte {
	b = appendKey(b, key)
	return strconv.AppendInt(b, v, 10)
}

func appendUintField(b []byte, key string, v uint64) []byte {
	b = appendKey(b, key)
	return strconv.AppendUint(b, v, 10)
}

func appendBoolField(b []byte, key string, v bool) []byte {
	b = appendKey(b, key)
	return strconv.AppendBool(b, v)
}

func appendIntsField(b []byte, key string, vs []int) []byte {
	b = appendKey(b, key)
	b = append(b, '[')
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return append(b, ']')
}

func appendDurUs(b []byte, key string, d time.Duration) []byte {
	b = appendKey(b, key)
	return strconv.AppendFloat(b, float64(d)/float64(time.Microsecond), 'g', -1, 64)
}

// appendCapsJSON encodes the cap/budget view — the GET /v1/caps body.
func appendCapsJSON(b []byte, s *diba.StateSnapshot) []byte {
	b = append(b, '{')
	b = appendUintField(b, "seq", s.Seq)
	b = append(b, ',')
	if s.EngineMode {
		b = appendIntField(b, "n", int64(s.N))
		b = append(b, ',')
		b = appendIntField(b, "round", int64(s.Round))
		b = append(b, ',')
		b = appendFloatField(b, "budget_w", s.BudgetW)
		b = append(b, ',')
		b = appendFloatField(b, "total_power_w", s.TotalPowW)
		b = append(b, ',')
		b = appendFloatField(b, "total_utility", s.TotalUtil)
		b = append(b, ',')
		b = appendKey(b, "caps_w")
		b = append(b, '[')
		for i, c := range s.Caps {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendFloat(b, c, 'g', -1, 64)
		}
		b = append(b, ']')
	} else {
		b = appendIntField(b, "node", int64(s.Node))
		b = append(b, ',')
		b = appendIntField(b, "round", int64(s.Round))
		b = append(b, ',')
		b = appendFloatField(b, "cap_w", s.CapW)
		b = append(b, ',')
		b = appendFloatField(b, "consensus_w", s.ConsensusW)
		b = append(b, ',')
		b = appendFloatField(b, "estimate_w", s.EstimateW)
		b = append(b, ',')
		b = appendFloatField(b, "budget_w", s.BudgetW)
		b = append(b, ',')
		b = appendBoolField(b, "degraded", s.Degraded)
		b = append(b, ',')
		b = appendIntsField(b, "dead", s.Dead)
		if s.Hier {
			b = append(b, ',')
			b = appendIntField(b, "group", int64(s.Group))
			b = append(b, ',')
			b = appendIntField(b, "epoch", int64(s.Epoch))
			b = append(b, ',')
			b = appendIntField(b, "lease_mw", s.LeaseMw)
			b = append(b, ',')
			b = appendBoolField(b, "aggregate", s.Aggregate)
			b = append(b, ',')
			b = appendBoolField(b, "frozen", s.Frozen)
			b = append(b, ',')
			b = appendIntsField(b, "gray", s.GrayPeers)
		}
	}
	b = append(b, '}', '\n')
	return b
}

// appendHealthJSON encodes the gray-failure/telemetry/transport view — the
// GET /v1/health body.
func appendHealthJSON(b []byte, s *diba.StateSnapshot) []byte {
	b = append(b, '{')
	b = appendUintField(b, "seq", s.Seq)
	b = append(b, ',')
	b = appendIntField(b, "node", int64(s.Node))
	b = append(b, ',')
	b = appendIntField(b, "round", int64(s.Round))
	b = append(b, ',')
	b = appendBoolField(b, "degraded", s.Degraded)
	if s.Watchdog.Enabled {
		b = append(b, ',')
		b = appendKey(b, "watchdog")
		b = append(b, '{')
		b = appendIntField(b, "periods", int64(s.Watchdog.Periods))
		b = append(b, ',')
		b = appendIntField(b, "violations", int64(s.Watchdog.Violations))
		b = append(b, ',')
		b = appendIntField(b, "sheds", int64(s.Watchdog.Sheds))
		b = append(b, ',')
		b = appendIntField(b, "releases", int64(s.Watchdog.Releases))
		b = append(b, ',')
		b = appendFloatField(b, "min_derate", s.Watchdog.MinDerate)
		b = append(b, '}')
	}
	b = append(b, ',')
	b = appendKey(b, "peers")
	b = append(b, '[')
	for i, ph := range s.Health {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '{')
		b = appendIntField(b, "peer", int64(ph.Peer))
		b = append(b, ',')
		b = appendDurUs(b, "rtt_mean_us", ph.RTT.Mean)
		b = append(b, ',')
		b = appendDurUs(b, "rtt_p99_us", ph.RTT.P99)
		b = append(b, ',')
		b = appendUintField(b, "samples", ph.RTT.Samples)
		b = append(b, ',')
		b = appendFloatField(b, "suspicion", ph.RTT.Suspicion)
		b = append(b, ',')
		b = appendBoolField(b, "degraded", ph.RTT.Degraded)
		b = append(b, ',')
		b = appendIntField(b, "stale_rounds", int64(ph.StaleRounds))
		b = append(b, ',')
		b = appendIntField(b, "outstanding", int64(ph.Outstanding))
		b = append(b, '}')
	}
	b = append(b, ']', ',')
	b = appendKey(b, "wire")
	b = appendWireJSON(b, s.Wire)
	b = append(b, ',')
	b = appendKey(b, "wire_peers")
	b = append(b, '[')
	for i, pw := range s.WirePeers {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '{')
		b = appendIntField(b, "peer", int64(pw.Peer))
		b = append(b, ',')
		b = appendKey(b, "wire")
		b = appendWireJSON(b, pw.Stats)
		b = append(b, '}')
	}
	b = append(b, ']')
	b = append(b, '}', '\n')
	return b
}

func appendWireJSON(b []byte, w diba.WireStats) []byte {
	b = append(b, '{')
	b = appendUintField(b, "msgs_sent", w.MsgsSent)
	b = append(b, ',')
	b = appendUintField(b, "msgs_recv", w.MsgsRecv)
	b = append(b, ',')
	b = appendUintField(b, "bytes_sent", w.BytesSent)
	b = append(b, ',')
	b = appendUintField(b, "bytes_recv", w.BytesRecv)
	b = append(b, ',')
	b = appendUintField(b, "flushes", w.Flushes)
	return append(b, '}')
}

// appendStatusJSON encodes the legacy GET /status body, field-compatible
// with the original dibad status endpoint.
func appendStatusJSON(b []byte, id int, workload string, s *diba.StateSnapshot) []byte {
	b = append(b, '{')
	b = appendIntField(b, "id", int64(id))
	b = append(b, ',')
	b = appendKey(b, "workload")
	b = strconv.AppendQuote(b, workload)
	b = append(b, ',')
	b = appendFloatField(b, "capW", s.CapW)
	b = append(b, ',')
	b = appendFloatField(b, "estimate", s.EstimateW)
	b = append(b, ',')
	b = appendIntField(b, "round", int64(s.Round))
	b = append(b, '}', '\n')
	return b
}

// encoded pairs a snapshot with its rendered body. The snapshot pointer is
// the cache key: snapshots are immutable, so pointer equality means the
// body is current.
type encoded struct {
	snap *diba.StateSnapshot
	body []byte
}

// bodyCache memoizes one encoding of the latest snapshot. The fast path —
// the snapshot has not changed since the last request — is two atomic
// pointer loads, one pointer compare and zero allocations; a changed
// snapshot is re-encoded once by whichever reader gets there first
// (racing encoders both produce a valid body, and the seq-guarded CAS
// keeps a stale encoder from clobbering a newer entry).
type bodyCache struct {
	cur atomic.Pointer[encoded]
	enc func([]byte, *diba.StateSnapshot) []byte
}

func (c *bodyCache) get(snap *diba.StateSnapshot) []byte {
	e := c.cur.Load()
	if e != nil && e.snap == snap {
		return e.body
	}
	hint := 256
	if e != nil {
		hint = len(e.body) + 64
	}
	ne := &encoded{snap: snap, body: c.enc(make([]byte, 0, hint), snap)}
	if e == nil || snap.Seq >= e.snap.Seq {
		c.cur.CompareAndSwap(e, ne)
	}
	return ne.body
}
