package thermal_test

import (
	"fmt"

	"powercap/internal/thermal"
)

// The CoP model of Eq. 3.2: warmer supply air is cheaper to produce, so
// the same heat costs less to remove.
func ExampleCoP() {
	heatW := 100000.0
	for _, t := range []float64{15.0, 20.0, 25.0} {
		fmt.Printf("t_sup %.0f °C: CoP %.2f, cooling %.1f kW\n", t, thermal.CoP(t), heatW/thermal.CoP(t)/1000)
	}
	// Output:
	// t_sup 15 °C: CoP 2.00, cooling 50.0 kW
	// t_sup 20 °C: CoP 3.19, cooling 31.3 kW
	// t_sup 25 °C: CoP 4.73, cooling 21.2 kW
}
