package thermal

import (
	"math"
	"testing"

	"powercap/internal/linalg"
)

func TestCoPMatchesPublishedPoints(t *testing.T) {
	// CoP(15) = 0.0068·225 + 0.0008·15 + 0.458 = 2.0. CoP grows with t.
	if got := CoP(15); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("CoP(15) = %v, want 2.0", got)
	}
	if CoP(25) <= CoP(15) {
		t.Fatal("CoP must increase with supply temperature")
	}
}

func TestNewRoomValidation(t *testing.T) {
	d := linalg.New(2, 3)
	if _, err := NewRoom(d, []float64{1, 1}, 24); err == nil {
		t.Fatal("non-square D must be rejected")
	}
	d2 := linalg.New(2, 2)
	if _, err := NewRoom(d2, []float64{1}, 24); err == nil {
		t.Fatal("K length mismatch must be rejected")
	}
	if _, err := NewRoom(d2, []float64{1, 0}, 24); err == nil {
		t.Fatal("non-positive K must be rejected")
	}
	d2.Set(0, 1, -0.1)
	if _, err := NewRoom(d2, []float64{1, 1}, 24); err == nil {
		t.Fatal("negative D entry must be rejected")
	}
	d3 := linalg.New(2, 2)
	d3.Set(0, 1, 1.2)
	if _, err := NewRoom(d3, []float64{1, 1}, 24); err == nil {
		t.Fatal("row sum ≥ 1 must be rejected")
	}
}

func TestInletRiseNoRecirculationIsZero(t *testing.T) {
	// With D = 0, inlet temperature equals the supply temperature exactly:
	// M = K⁻¹ − K⁻¹ = 0.
	d := linalg.New(3, 3)
	room, err := NewRoom(d, []float64{0.001, 0.001, 0.001}, 24)
	if err != nil {
		t.Fatal(err)
	}
	rise, err := room.InletRise([]float64{10000, 10000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rise {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("rack %d rise %v, want 0 without recirculation", i, v)
		}
	}
}

func TestInletRiseTwoRackClosedForm(t *testing.T) {
	// Two racks, one-way recirculation: rack 1 ingests fraction a of rack
	// 0's heat. Then inlet rise of rack 1 = a·k⁻¹·p0/(appropriately
	// amplified series); with only D(1,0)=a nonzero, (I−Dᵀ)⁻¹ = I + Dᵀ
	// exactly... Dᵀ(0,1)=a. M = K⁻¹[(I−Dᵀ)⁻¹ − I] = K⁻¹·Dᵀ.
	// So rise_0 = k⁻¹·a·p1?? — note the transpose: Eq. 3.5's M·P assigns
	// the rise at the rack D says is affected. Verify numerically against
	// the direct formula.
	a := 0.3
	d := linalg.New(2, 2)
	d.Set(1, 0, a) // rack 0's power raises rack 1's inlet
	kInv := []float64{0.002, 0.002}
	room, err := NewRoom(d, kInv, 24)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{5000, 0}
	rise, err := room.InletRise(p)
	if err != nil {
		t.Fatal(err)
	}
	// Direct evaluation of Eq. 3.5: M = (K − DᵀK)⁻¹ − K⁻¹.
	k := linalg.Diagonal([]float64{1 / kInv[0], 1 / kInv[1]})
	inv, err := linalg.Inverse(k.Sub(d.T().Mul(k)))
	if err != nil {
		t.Fatal(err)
	}
	want := inv.Sub(linalg.Diagonal(kInv)).MulVec(p)
	for i := range rise {
		if math.Abs(rise[i]-want[i]) > 1e-9 {
			t.Fatalf("rise[%d] = %v, want %v", i, rise[i], want[i])
		}
	}
}

func TestMoreRackPowerLowersSupplyTemp(t *testing.T) {
	room, err := NewDefaultRoom(1.0, 24)
	if err != nil {
		t.Fatal(err)
	}
	n := room.N()
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range lo {
		lo[i] = 4000
		hi[i] = 9000
	}
	tLo, err := room.MaxSupplyTemp(lo)
	if err != nil {
		t.Fatal(err)
	}
	tHi, err := room.MaxSupplyTemp(hi)
	if err != nil {
		t.Fatal(err)
	}
	if tHi >= tLo {
		t.Fatalf("hotter room must need colder supply: %v vs %v", tHi, tLo)
	}
	if tLo > 24 {
		t.Fatalf("supply temperature %v above redline", tLo)
	}
}

func TestCoolingPowerShare(t *testing.T) {
	// With the experimental parameters, cooling lands in the paper's
	// 30–38 % of total power band.
	room, err := NewDefaultRoom(1.0, 24)
	if err != nil {
		t.Fatal(err)
	}
	n := room.N()
	p := make([]float64, n)
	for i := range p {
		p[i] = 6000 // 40 servers × 150 W
	}
	cooling, tsup, err := room.CoolingPower(p)
	if err != nil {
		t.Fatal(err)
	}
	if tsup <= 0 || tsup > 24 {
		t.Fatalf("supply temperature %v out of range", tsup)
	}
	total := cooling + float64(n)*6000
	share := cooling / total
	if share < 0.20 || share > 0.45 {
		t.Fatalf("cooling share %.3f outside plausible band", share)
	}
}

func TestSynthesizeDStructure(t *testing.T) {
	d, err := DefaultLayout.SynthesizeD()
	if err != nil {
		t.Fatal(err)
	}
	n := d.Rows()
	if n != 80 {
		t.Fatalf("N = %d, want 80", n)
	}
	for i := 0; i < n; i++ {
		if d.At(i, i) != 0 {
			t.Fatal("no self-recirculation")
		}
		var row float64
		for j := 0; j < n; j++ {
			if d.At(i, j) < 0 {
				t.Fatal("negative recirculation")
			}
			row += d.At(i, j)
		}
		if row >= 1 {
			t.Fatalf("row %d sums to %v ≥ 1", i, row)
		}
	}
	// Nearby racks couple more than distant ones.
	near := d.At(0, 1)
	far := d.At(0, 79)
	if near <= far {
		t.Fatalf("near coupling %v must exceed far coupling %v", near, far)
	}
}

func TestSynthesizeDValidation(t *testing.T) {
	if _, err := (Layout{Rows: 0, RacksPerRow: 0}).SynthesizeD(); err == nil {
		t.Fatal("empty layout must be rejected")
	}
	bad := Layout{Rows: 2, RacksPerRow: 2, Intensity: 0.9, EdgeBoost: 1.5}
	if _, err := bad.SynthesizeD(); err == nil {
		t.Fatal("unstable intensity must be rejected")
	}
}

func TestSelfConsistentPartition(t *testing.T) {
	room, err := NewDefaultRoom(1.0, 24)
	if err != nil {
		t.Fatal(err)
	}
	n := room.N()
	// Simple budgeter: spread the computing budget uniformly.
	budgeter := func(bs float64) ([]float64, error) {
		p := make([]float64, n)
		for i := range p {
			p[i] = bs / float64(n)
		}
		return p, nil
	}
	total := 720000.0 // 0.72 MW, the Fig. 3.11 case
	part, err := room.SelfConsistent(total, budgeter, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Converged {
		t.Fatal("partition must converge")
	}
	if math.Abs(part.Computing+part.Cooling-total) > 1 {
		t.Fatalf("partition %v + %v != %v", part.Computing, part.Cooling, total)
	}
	share := part.Cooling / total
	if share < 0.2 || share > 0.45 {
		t.Fatalf("cooling share %.3f outside the paper's band", share)
	}
	if len(part.Steps) == 0 {
		t.Fatal("trajectory must be recorded")
	}
}

func TestSelfConsistentRatioOfDistanceContracts(t *testing.T) {
	// Fig. 3.4: successive distances to the fixed point shrink.
	room, err := NewDefaultRoom(1.0, 24)
	if err != nil {
		t.Fatal(err)
	}
	n := room.N()
	budgeter := func(bs float64) ([]float64, error) {
		p := make([]float64, n)
		for i := range p {
			p[i] = bs / float64(n)
		}
		return p, nil
	}
	part, err := room.SelfConsistent(660000, budgeter, 1e-6, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Converged {
		t.Fatal("must converge")
	}
	star := part.Computing
	prev := math.Inf(1)
	for k, s := range part.Steps[:len(part.Steps)-1] {
		d := math.Abs(s.Computing - star)
		if d > prev*1.0001 {
			t.Fatalf("step %d: distance %v grew from %v", k, d, prev)
		}
		prev = d
	}
}

func TestSelfConsistentErrors(t *testing.T) {
	room, err := NewDefaultRoom(1.0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := room.SelfConsistent(0, nil, 1, 10); err == nil {
		t.Fatal("zero budget must error")
	}
}

// The self-consistent loop calls CoolingPower up to 50 times per budget;
// the evaluation path must stay allocation-free on a warm Room.
func TestCoolingPowerAllocFree(t *testing.T) {
	room, err := NewDefaultRoom(1.8, 24)
	if err != nil {
		t.Fatal(err)
	}
	power := make([]float64, room.N())
	for i := range power {
		power[i] = 5000 + 10*float64(i)
	}
	if _, _, err := room.CoolingPower(power); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, _, err := room.CoolingPower(power); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("CoolingPower allocates %v times per run", n)
	}
}
