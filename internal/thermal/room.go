package thermal

import (
	"fmt"
	"math"

	"powercap/internal/linalg"
)

// Layout describes the physical arrangement used to synthesize the heat
// cross-interference matrix: racks in rows of equal length, alternating
// cold/hot aisles, CRACs at the room sides — the 8×10 arrangement of the
// experimental cluster (Fig. 3.9 / Fig. 5.1).
type Layout struct {
	Rows        int
	RacksPerRow int
	// AisleCoupling scales recirculation between facing rows sharing a hot
	// aisle relative to within-row coupling. Default 1.6.
	AisleCoupling float64
	// DecayLength is the recirculation decay length in rack pitches.
	// Default 2.5.
	DecayLength float64
	// Intensity scales the whole matrix; rows of D sum to roughly this
	// value in the room's interior. Must stay below 1; default 0.42,
	// calibrated so the minimum sufficient cooling lands in the paper's
	// 30–38% share of total power at the experimental utilizations.
	Intensity float64
	// EdgeBoost multiplies couplings involving row-end racks, which recirculate
	// around the row ends in real rooms. Default 1.5.
	EdgeBoost float64
	// CenterBoost strengthens recirculation for racks far from the CRACs at
	// the room sides: real rooms are hottest mid-row, which is what makes
	// placement matter. Couplings scale by up to (1+CenterBoost) at the
	// room center. Default 2.5.
	CenterBoost float64
}

// DefaultLayout is the 80-rack experimental room.
var DefaultLayout = Layout{Rows: 8, RacksPerRow: 10}

func (l Layout) withDefaults() Layout {
	if l.AisleCoupling == 0 {
		l.AisleCoupling = 1.6
	}
	if l.DecayLength == 0 {
		l.DecayLength = 2.5
	}
	if l.Intensity == 0 {
		l.Intensity = 0.42
	}
	if l.EdgeBoost == 0 {
		l.EdgeBoost = 1.5
	}
	if l.CenterBoost == 0 {
		l.CenterBoost = 2.5
	}
	return l
}

// centrality returns how far column c sits from the room sides, 0 at the
// edges to 1 at the exact center.
func centrality(c, perRow int) float64 {
	if perRow <= 1 {
		return 0
	}
	half := float64(perRow-1) / 2
	d := math.Abs(float64(c) - half)
	return 1 - d/half
}

// position returns rack r's row and column.
func (l Layout) position(r int) (row, col int) {
	return r / l.RacksPerRow, r % l.RacksPerRow
}

// SynthesizeD builds the synthetic heat cross-interference matrix for the
// layout. It is non-negative with row sums below Intensity·EdgeBoost < 1,
// recirculation decays exponentially with rack distance, racks facing each
// other across a hot aisle couple more strongly, and row-end racks couple
// more (heat wraps around row ends).
func (l Layout) SynthesizeD() (*linalg.Matrix, error) {
	l = l.withDefaults()
	n := l.Rows * l.RacksPerRow
	if n == 0 {
		return nil, fmt.Errorf("thermal: empty layout")
	}
	if l.Intensity*l.EdgeBoost >= 1 {
		return nil, fmt.Errorf("thermal: Intensity·EdgeBoost = %.2f must stay below 1", l.Intensity*l.EdgeBoost)
	}
	d := linalg.New(n, n)
	raw := make([]float64, n)
	for i := 0; i < n; i++ {
		ri, ci := l.position(i)
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			rj, cj := l.position(j)
			dx := float64(ci - cj)
			dy := float64(ri-rj) * 2 // rows are farther apart than rack pitch
			dist := math.Sqrt(dx*dx + dy*dy)
			w := math.Exp(-dist / l.DecayLength)
			// Hot-aisle pairing: rows (0,1), (2,3), … exhaust into the same
			// aisle, so facing racks recirculate into each other strongly.
			if ri/2 == rj/2 && ri != rj {
				w *= l.AisleCoupling
			}
			// Row-end racks see wrap-around recirculation.
			if ci == 0 || ci == l.RacksPerRow-1 || cj == 0 || cj == l.RacksPerRow-1 {
				w *= l.EdgeBoost
			}
			// Mid-row racks sit farthest from the CRACs at the room sides
			// and recirculate hardest.
			w *= (1 + l.CenterBoost*centrality(ci, l.RacksPerRow)) *
				(1 + l.CenterBoost*centrality(cj, l.RacksPerRow))
			d.Set(i, j, w)
			rowSum += w
		}
		raw[i] = rowSum
	}
	// Normalize so the largest row sum equals Intensity (uniform scaling
	// preserves the spatial structure).
	maxRow := 0.0
	for _, v := range raw {
		if v > maxRow {
			maxRow = v
		}
	}
	scale := l.Intensity / maxRow
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.Set(i, j, d.At(i, j)*scale)
		}
	}
	return d, nil
}

// NewDefaultRoom builds the 80-rack experimental room with a uniform
// outlet-rise coefficient and the 24 °C redline the Chapter 3 experiments
// assume. riseCPerKW is the outlet temperature rise per kW of rack power
// (≈1 °C/kW for a well-ventilated 40U rack).
func NewDefaultRoom(riseCPerKW, redlineC float64) (*Room, error) {
	d, err := DefaultLayout.SynthesizeD()
	if err != nil {
		return nil, err
	}
	n := d.Rows()
	kInv := make([]float64, n)
	for i := range kInv {
		kInv[i] = riseCPerKW / 1000
	}
	return NewRoom(d, kInv, redlineC)
}
