// Package thermal models the cluster's cooling: the CRAC coefficient of
// performance (Eq. 3.2), the heat cross-interference matrix model that
// replaces CFD at runtime (Eqs. 3.3–3.5), the maximum safe supply
// temperature, the minimum sufficient cooling power (Eq. 3.1), and the
// self-consistent total-power partition of Algorithm 1.
//
// The paper derives the cross-interference matrix D once from CFD
// (6SigmaRoom) simulations of the physical room; we generate a synthetic D
// with the same structural properties — non-negative, spectral radius well
// below one, recirculation decaying with rack distance, stronger coupling
// within a hot aisle and at row ends — and then use the identical matrix
// model everywhere.
package thermal

import (
	"errors"
	"fmt"
	"math"

	"powercap/internal/linalg"
)

// CoP returns the coefficient of performance of the chilled-water CRAC
// units at supply temperature t (°C): 0.0068·t² + 0.0008·t + 0.458, the
// HP Utility datacenter model of Moore et al. used throughout the text.
func CoP(t float64) float64 {
	return 0.0068*t*t + 0.0008*t + 0.458
}

// Room is a thermal model of the machine room: n racks with a heat
// cross-interference matrix D and per-rack heat capacity coefficients K.
//
// The evaluation methods (MaxSupplyTemp, CoolingPower, SelfConsistent)
// reuse an internal rise buffer and are therefore not safe for concurrent
// use on one Room; every experiment builds its own Room, which is how the
// parallel pipeline uses them. InletRiseTo lets callers supply their own
// buffer instead.
type Room struct {
	n int
	// d is the heat cross-interference matrix: d(i,j) is the contribution
	// of rack j's power to rack i's inlet temperature rise.
	d *linalg.Matrix
	// kInv is K⁻¹'s diagonal: °C of outlet rise per watt for each rack.
	kInv []float64
	// m is (K − DᵀK)⁻¹ − K⁻¹, precomputed: inlet rise = m·P (Eq. 3.5).
	m *linalg.Matrix
	// rise is the scratch buffer the evaluation methods reuse so the
	// self-consistent loop runs without per-iteration allocation.
	rise []float64
	// RedlineC is the manufacturer's maximum safe inlet temperature.
	RedlineC float64
}

// NewRoom validates the matrices and precomputes the inlet-rise operator.
// kInvDiag[i] is the i-th rack's outlet temperature rise per watt.
func NewRoom(d *linalg.Matrix, kInvDiag []float64, redlineC float64) (*Room, error) {
	n := d.Rows()
	if d.Cols() != n {
		return nil, errors.New("thermal: D must be square")
	}
	if len(kInvDiag) != n {
		return nil, errors.New("thermal: K diagonal length mismatch")
	}
	for i := 0; i < n; i++ {
		if kInvDiag[i] <= 0 {
			return nil, fmt.Errorf("thermal: non-positive K⁻¹[%d]", i)
		}
		var row float64
		for j := 0; j < n; j++ {
			if d.At(i, j) < 0 {
				return nil, fmt.Errorf("thermal: negative D(%d,%d)", i, j)
			}
			row += d.At(i, j)
		}
		if row >= 1 {
			return nil, fmt.Errorf("thermal: row %d of D sums to %.3f ≥ 1 (unstable recirculation)", i, row)
		}
	}
	// K has diagonal 1/kInv; M = (K − DᵀK)⁻¹ − K⁻¹ (Eq. 3.5).
	k := make([]float64, n)
	for i := range k {
		k[i] = 1 / kInvDiag[i]
	}
	kmat := linalg.Diagonal(k)
	a := kmat.Sub(d.T().Mul(kmat))
	inv, err := linalg.Inverse(a)
	if err != nil {
		return nil, fmt.Errorf("thermal: K − DᵀK singular: %w", err)
	}
	m := inv.Sub(linalg.Diagonal(kInvDiag))
	return &Room{n: n, d: d.Clone(), kInv: append([]float64(nil), kInvDiag...), m: m,
		rise: make([]float64, n), RedlineC: redlineC}, nil
}

// N returns the number of racks.
func (r *Room) N() int { return r.n }

// D returns the heat cross-interference matrix (shared; do not mutate).
func (r *Room) D() *linalg.Matrix { return r.d }

// RiseMatrix returns the location-indexed inlet-rise operator M of Eq. 3.5
// (inlet rise = M·P). The layout planners optimize over it directly
// (shared; do not mutate).
func (r *Room) RiseMatrix() *linalg.Matrix { return r.m }

// InletRise returns each rack's inlet temperature rise above the supply
// temperature for the given per-rack power vector (Eq. 3.5).
func (r *Room) InletRise(power []float64) ([]float64, error) {
	dst := make([]float64, r.n)
	if err := r.InletRiseTo(dst, power); err != nil {
		return nil, err
	}
	return dst, nil
}

// InletRiseTo computes the inlet rises into dst (length n), the
// destination-passing form of InletRise for callers that evaluate many
// power vectors against one room.
func (r *Room) InletRiseTo(dst, power []float64) error {
	if len(power) != r.n {
		return errors.New("thermal: power vector length mismatch")
	}
	if len(dst) != r.n {
		return errors.New("thermal: rise vector length mismatch")
	}
	r.m.MulVecTo(dst, power)
	return nil
}

// MaxSupplyTemp returns the highest CRAC supply temperature that keeps
// every rack's inlet at or below the redline for the given power vector:
// t_sup = t_red − max_i (M·P)_i.
func (r *Room) MaxSupplyTemp(power []float64) (float64, error) {
	if err := r.InletRiseTo(r.rise, power); err != nil {
		return 0, err
	}
	maxRise := 0.0
	for _, v := range r.rise {
		if v > maxRise {
			maxRise = v
		}
	}
	return r.RedlineC - maxRise, nil
}

// CoolingPower returns the minimum sufficient CRAC power for the given
// computing power vector: Σp / CoP(t_sup) at the maximum safe supply
// temperature (Eq. 3.1).
func (r *Room) CoolingPower(power []float64) (cooling, tsup float64, err error) {
	tsup, err = r.MaxSupplyTemp(power)
	if err != nil {
		return 0, 0, err
	}
	cop := CoP(tsup)
	if cop <= 0 {
		return 0, 0, fmt.Errorf("thermal: non-positive CoP at %.1f °C", tsup)
	}
	var sum float64
	for _, p := range power {
		sum += p
	}
	return sum / cop, tsup, nil
}

// PartitionStep is one iteration of the self-consistent budgeting loop.
type PartitionStep struct {
	Computing float64
	Cooling   float64
	SupplyC   float64
}

// Partition is the result of the self-consistent total-power split.
type Partition struct {
	Computing float64
	Cooling   float64
	SupplyC   float64
	// Steps is the convergence trajectory (Fig. 3.11).
	Steps []PartitionStep
	// Converged is false when the iteration cap was reached first.
	Converged bool
}

// SelfConsistent runs Algorithm 1: split total budget B into computing and
// cooling so that the cooling power exactly suffices to extract the heat of
// the computing allocation. budgeter(Bs) must return the per-rack power
// allocation the computing layer produces under computing budget Bs (the
// knapsack budgeter in the paper). tolW is the convergence tolerance on
// |Bs + Bcrac − B|.
func (r *Room) SelfConsistent(total float64, budgeter func(computingBudget float64) ([]float64, error), tolW float64, maxIters int) (Partition, error) {
	if total <= 0 {
		return Partition{}, errors.New("thermal: non-positive total budget")
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	// Initialize cooling from the allocation at the full budget, as the
	// algorithm initializes from an initial CFD run.
	alloc, err := budgeter(total)
	if err != nil {
		return Partition{}, err
	}
	cooling, tsup, err := r.CoolingPower(alloc)
	if err != nil {
		return Partition{}, err
	}
	part := Partition{Steps: make([]PartitionStep, 0, maxIters)}
	for k := 0; k < maxIters; k++ {
		computing := total - cooling
		if computing <= 0 {
			return Partition{}, fmt.Errorf("thermal: cooling demand %.0f W exceeds total budget %.0f W", cooling, total)
		}
		alloc, err = budgeter(computing)
		if err != nil {
			return Partition{}, err
		}
		cooling, tsup, err = r.CoolingPower(alloc)
		if err != nil {
			return Partition{}, err
		}
		part.Steps = append(part.Steps, PartitionStep{Computing: computing, Cooling: cooling, SupplyC: tsup})
		if math.Abs(computing+cooling-total) <= tolW {
			part.Computing = computing
			part.Cooling = cooling
			part.SupplyC = tsup
			part.Converged = true
			return part, nil
		}
	}
	last := part.Steps[len(part.Steps)-1]
	part.Computing = last.Computing
	part.Cooling = last.Cooling
	part.SupplyC = last.SupplyC
	return part, nil
}
