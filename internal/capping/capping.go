// Package capping simulates the per-server DVFS feedback power-capping
// controller of Fig. 2.1 / Section 3.2: every control period the controller
// compares measured power against the allocated cap and steps the
// processor's p-state down when over and up when under. This is the
// actuator that turns the caps computed by any budgeting algorithm into
// enforced server behaviour; the cluster simulator drives one instance per
// server.
package capping

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"powercap/internal/workload"
)

// Sample is one control-period observation of a capped server.
type Sample struct {
	// Level is the DVFS level index in effect during the period.
	Level int
	// Power is the measured average power (W), including measurement noise.
	Power float64
	// Throughput is the attained throughput (BIPS) for the period.
	Throughput float64
	// OverCap reports whether measured power exceeded the cap this period.
	OverCap bool
	// Measured is the telemetry value the control decision was based on
	// (post-sensor, post-filter). Equals the noisy model power when no
	// Telemetry hook is installed.
	Measured float64
	// Trusted reports whether the telemetry was judged safe to act on. When
	// false the controller held or moved in the safe direction only.
	Trusted bool
}

// Telemetry intercepts the controller's power measurement. Measure receives
// the true (noisy) power and the controller's model expectation for its
// current p-state, and returns the value to control on plus whether that
// value can be trusted to drive p-state decisions. Implementations inject
// sensor faults and/or robust filtering (see internal/sensor.Pipeline).
type Telemetry interface {
	Measure(truePower, expected float64) (value float64, trusted bool)
}

// Controller is a deadband feedback controller over discrete DVFS levels.
type Controller struct {
	server workload.Server
	bench  workload.Benchmark
	levels []float64
	cap    float64
	level  int
	// NoiseRel is the relative std-dev of the power measurement; the
	// controller must tolerate it without oscillating out of the deadband.
	NoiseRel float64
	// Deadband is the hysteresis in watts around the cap within which the
	// controller holds its level. Defaults to half the local per-level
	// power difference when zero.
	Deadband float64
	// Telemetry, when non-nil, intercepts the power measurement each Tick.
	// Nil preserves the direct noisy-model measurement path bit-for-bit.
	Telemetry Telemetry
}

// NewController builds a controller for the given benchmark running on the
// given server, starting at the lowest DVFS level with the cap wide open.
func NewController(b workload.Benchmark, s workload.Server) (*Controller, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(workload.DVFSLevels) < 2 {
		return nil, errors.New("capping: need at least two DVFS levels")
	}
	return &Controller{
		server: s,
		bench:  b,
		levels: workload.DVFSLevels,
		cap:    s.MaxWatts,
	}, nil
}

// SetCap sets the power cap in watts. Finite out-of-range values are
// clamped into the server's [idle, max] envelope; NaN, infinite, or
// negative caps are rejected with an error and the previous cap is kept —
// a corrupted cap must never reach the actuator.
func (c *Controller) SetCap(w float64) error {
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("capping: non-finite cap %v rejected", w)
	}
	if w < 0 {
		return fmt.Errorf("capping: negative cap %gW rejected", w)
	}
	if w < c.server.IdleWatts {
		w = c.server.IdleWatts
	}
	if w > c.server.MaxWatts {
		w = c.server.MaxWatts
	}
	c.cap = w
	return nil
}

// EmergencyTo applies cap and immediately drops the p-state to the highest
// level whose model power fits under it — a multi-level emergency shed,
// bypassing the one-level-per-period feedback walk. Used by the safety
// watchdog, whose guarantee ("compliant within one control period") a
// gradual walk cannot honor. Model-actuated on purpose: an emergency must
// not depend on the very sensors whose failure may have triggered it.
func (c *Controller) EmergencyTo(cap float64) error {
	if err := c.SetCap(cap); err != nil {
		return err
	}
	for c.level > 0 && c.levelPower(c.level) > c.cap {
		c.level--
	}
	return nil
}

// Cap returns the current cap.
func (c *Controller) Cap() float64 { return c.cap }

// SetBenchmark swaps the running workload (cluster churn); the power model,
// cap, and p-state are unaffected.
func (c *Controller) SetBenchmark(b workload.Benchmark) { c.bench = b }

// Level returns the current DVFS level index.
func (c *Controller) Level() int { return c.level }

// levelPower returns the true full-load power at level i.
func (c *Controller) levelPower(i int) float64 {
	fmin, fmax := c.levels[0], c.levels[len(c.levels)-1]
	return workload.PowerAtDVFS(c.server, c.levels[i], fmin, fmax)
}

// Tick executes one control period: measure power at the current level,
// compare against the cap, and move one p-state. rng may be nil when
// NoiseRel is zero.
func (c *Controller) Tick(rng *rand.Rand) Sample {
	truePower := c.levelPower(c.level)
	measured := truePower
	if c.NoiseRel > 0 {
		measured *= 1 + c.NoiseRel*rng.NormFloat64()
	}
	trusted := true
	if c.Telemetry != nil {
		measured, trusted = c.Telemetry.Measure(measured, truePower)
	}
	if math.IsNaN(measured) || math.IsInf(measured, 0) {
		// A non-finite measurement must never feed the comparison below;
		// report the model value and fall into the untrusted branch.
		measured, trusted = truePower, false
	}
	deadband := c.Deadband
	if deadband == 0 {
		// Half the gap to the neighboring level, so the controller cannot
		// chatter between two levels on noise alone.
		hi := c.level
		if hi < len(c.levels)-1 {
			hi++
		}
		lo := c.level
		if lo > 0 {
			lo--
		}
		deadband = (c.levelPower(hi) - c.levelPower(lo)) / 4
	}
	switch {
	case !trusted:
		// Untrusted telemetry: only the safe direction is allowed. Consult
		// the model instead of the sensor — step down if the model says the
		// current level violates the cap, and never step up: climbing on a
		// reading the filter rejected is exactly the failure mode that turns
		// a sensor fault into a budget violation.
		if truePower > c.cap && c.level > 0 {
			c.level--
		}
	case measured > c.cap && c.level > 0:
		c.level--
	case measured < c.cap-deadband && c.level < len(c.levels)-1:
		// Only step up if the next level would not overshoot the cap.
		if c.levelPower(c.level+1) <= c.cap {
			c.level++
		}
	}
	effective := c.levelPower(c.level)
	throughput := c.bench.GroundTruth(effective, c.server.IdleWatts, c.server.MaxWatts)
	return Sample{
		Level:      c.level,
		Power:      effective,
		Throughput: throughput,
		OverCap:    effective > c.cap,
		Measured:   measured,
		Trusted:    trusted,
	}
}

// Settle runs the controller for the given number of periods and returns
// the final sample — the steady state the budgeting layer assumes when it
// treats a cap as enforced.
func (c *Controller) Settle(periods int, rng *rand.Rand) Sample {
	var s Sample
	for i := 0; i < periods; i++ {
		s = c.Tick(rng)
	}
	return s
}
