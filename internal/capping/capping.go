// Package capping simulates the per-server DVFS feedback power-capping
// controller of Fig. 2.1 / Section 3.2: every control period the controller
// compares measured power against the allocated cap and steps the
// processor's p-state down when over and up when under. This is the
// actuator that turns the caps computed by any budgeting algorithm into
// enforced server behaviour; the cluster simulator drives one instance per
// server.
package capping

import (
	"errors"
	"math/rand"

	"powercap/internal/workload"
)

// Sample is one control-period observation of a capped server.
type Sample struct {
	// Level is the DVFS level index in effect during the period.
	Level int
	// Power is the measured average power (W), including measurement noise.
	Power float64
	// Throughput is the attained throughput (BIPS) for the period.
	Throughput float64
	// OverCap reports whether measured power exceeded the cap this period.
	OverCap bool
}

// Controller is a deadband feedback controller over discrete DVFS levels.
type Controller struct {
	server workload.Server
	bench  workload.Benchmark
	levels []float64
	cap    float64
	level  int
	// NoiseRel is the relative std-dev of the power measurement; the
	// controller must tolerate it without oscillating out of the deadband.
	NoiseRel float64
	// Deadband is the hysteresis in watts around the cap within which the
	// controller holds its level. Defaults to half the local per-level
	// power difference when zero.
	Deadband float64
}

// NewController builds a controller for the given benchmark running on the
// given server, starting at the lowest DVFS level with the cap wide open.
func NewController(b workload.Benchmark, s workload.Server) (*Controller, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(workload.DVFSLevels) < 2 {
		return nil, errors.New("capping: need at least two DVFS levels")
	}
	return &Controller{
		server: s,
		bench:  b,
		levels: workload.DVFSLevels,
		cap:    s.MaxWatts,
	}, nil
}

// SetCap sets the power cap in watts (clamped into the server's range).
func (c *Controller) SetCap(w float64) {
	if w < c.server.IdleWatts {
		w = c.server.IdleWatts
	}
	if w > c.server.MaxWatts {
		w = c.server.MaxWatts
	}
	c.cap = w
}

// Cap returns the current cap.
func (c *Controller) Cap() float64 { return c.cap }

// Level returns the current DVFS level index.
func (c *Controller) Level() int { return c.level }

// levelPower returns the true full-load power at level i.
func (c *Controller) levelPower(i int) float64 {
	fmin, fmax := c.levels[0], c.levels[len(c.levels)-1]
	return workload.PowerAtDVFS(c.server, c.levels[i], fmin, fmax)
}

// Tick executes one control period: measure power at the current level,
// compare against the cap, and move one p-state. rng may be nil when
// NoiseRel is zero.
func (c *Controller) Tick(rng *rand.Rand) Sample {
	truePower := c.levelPower(c.level)
	measured := truePower
	if c.NoiseRel > 0 {
		measured *= 1 + c.NoiseRel*rng.NormFloat64()
	}
	deadband := c.Deadband
	if deadband == 0 {
		// Half the gap to the neighboring level, so the controller cannot
		// chatter between two levels on noise alone.
		hi := c.level
		if hi < len(c.levels)-1 {
			hi++
		}
		lo := c.level
		if lo > 0 {
			lo--
		}
		deadband = (c.levelPower(hi) - c.levelPower(lo)) / 4
	}
	switch {
	case measured > c.cap && c.level > 0:
		c.level--
	case measured < c.cap-deadband && c.level < len(c.levels)-1:
		// Only step up if the next level would not overshoot the cap.
		if c.levelPower(c.level+1) <= c.cap {
			c.level++
		}
	}
	effective := c.levelPower(c.level)
	throughput := c.bench.GroundTruth(effective, c.server.IdleWatts, c.server.MaxWatts)
	return Sample{
		Level:      c.level,
		Power:      effective,
		Throughput: throughput,
		OverCap:    effective > c.cap,
	}
}

// Settle runs the controller for the given number of periods and returns
// the final sample — the steady state the budgeting layer assumes when it
// treats a cap as enforced.
func (c *Controller) Settle(periods int, rng *rand.Rand) Sample {
	var s Sample
	for i := 0; i < periods; i++ {
		s = c.Tick(rng)
	}
	return s
}
