package capping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"powercap/internal/workload"
)

func mkController(t *testing.T, name string) *Controller {
	t.Helper()
	b, err := workload.ByName(workload.HPC, name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(b, workload.DefaultServer)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewControllerValidation(t *testing.T) {
	b := workload.HPC[0]
	if _, err := NewController(b, workload.Server{}); err == nil {
		t.Fatal("invalid server must be rejected")
	}
}

func TestSetCapClamps(t *testing.T) {
	c := mkController(t, "LU")
	c.SetCap(1)
	if c.Cap() != workload.DefaultServer.IdleWatts {
		t.Fatalf("cap below range must clamp to idle, got %v", c.Cap())
	}
	c.SetCap(9999)
	if c.Cap() != workload.DefaultServer.MaxWatts {
		t.Fatalf("cap above range must clamp to max, got %v", c.Cap())
	}
}

func TestControllerConvergesBelowCap(t *testing.T) {
	c := mkController(t, "BT")
	for _, cap := range []float64{120, 140, 160, 180, 200} {
		c.SetCap(cap)
		s := c.Settle(50, nil)
		if s.Power > cap+1e-9 {
			t.Fatalf("cap %v: settled power %v exceeds cap", cap, s.Power)
		}
		// And it should be the highest level fitting under the cap.
		if s.Level+1 < len(workload.DVFSLevels) {
			nextPower := workload.PowerAtDVFS(workload.DefaultServer,
				workload.DVFSLevels[s.Level+1], workload.DVFSLevels[0], workload.DVFSLevels[len(workload.DVFSLevels)-1])
			if nextPower <= cap {
				t.Fatalf("cap %v: level %d not maximal (next level power %v fits)", cap, s.Level, nextPower)
			}
		}
	}
}

func TestHigherCapNeverLowersThroughput(t *testing.T) {
	c := mkController(t, "EP")
	prev := -1.0
	for cap := 110.0; cap <= 200; cap += 10 {
		c.SetCap(cap)
		s := c.Settle(50, nil)
		if s.Throughput < prev-1e-9 {
			t.Fatalf("throughput decreased when cap rose to %v", cap)
		}
		prev = s.Throughput
	}
}

func TestControllerReactsToCapDrop(t *testing.T) {
	c := mkController(t, "SP")
	c.SetCap(200)
	before := c.Settle(50, nil)
	if before.Level == 0 {
		t.Fatal("open cap must drive a high level")
	}
	c.SetCap(120)
	after := c.Settle(50, nil)
	if after.Power > 120 {
		t.Fatalf("power %v exceeds lowered cap", after.Power)
	}
	if after.Level >= before.Level {
		t.Fatal("lower cap must reduce the level")
	}
}

func TestControllerStableUnderNoise(t *testing.T) {
	c := mkController(t, "MG")
	c.NoiseRel = 0.02
	c.SetCap(160)
	rng := rand.New(rand.NewSource(5))
	c.Settle(50, rng)
	// After settling, the level must stay within one step and power within
	// cap for the vast majority of periods.
	over := 0
	minL, maxL := c.Level(), c.Level()
	for i := 0; i < 500; i++ {
		s := c.Tick(rng)
		if s.OverCap {
			over++
		}
		if s.Level < minL {
			minL = s.Level
		}
		if s.Level > maxL {
			maxL = s.Level
		}
	}
	if maxL-minL > 1 {
		t.Fatalf("level chattering across %d levels", maxL-minL+1)
	}
	if over > 25 { // 5 %
		t.Fatalf("over-cap in %d/500 noisy periods", over)
	}
}

// Property: from any starting cap sequence, settled power never exceeds the
// final cap, for any benchmark.
func TestSettleRespectsCapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := workload.HPC[rng.Intn(len(workload.HPC))]
		c, err := NewController(b, workload.DefaultServer)
		if err != nil {
			return false
		}
		for k := 0; k < 4; k++ {
			cap := 100 + rng.Float64()*100
			c.SetCap(cap)
			s := c.Settle(40, nil)
			if s.Power > c.Cap()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
