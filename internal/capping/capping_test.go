package capping

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powercap/internal/workload"
)

func mkController(t *testing.T, name string) *Controller {
	t.Helper()
	b, err := workload.ByName(workload.HPC, name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(b, workload.DefaultServer)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewControllerValidation(t *testing.T) {
	b := workload.HPC[0]
	if _, err := NewController(b, workload.Server{}); err == nil {
		t.Fatal("invalid server must be rejected")
	}
}

func TestSetCapClamps(t *testing.T) {
	c := mkController(t, "LU")
	c.SetCap(1)
	if c.Cap() != workload.DefaultServer.IdleWatts {
		t.Fatalf("cap below range must clamp to idle, got %v", c.Cap())
	}
	c.SetCap(9999)
	if c.Cap() != workload.DefaultServer.MaxWatts {
		t.Fatalf("cap above range must clamp to max, got %v", c.Cap())
	}
}

func TestSetCapRejectsGarbage(t *testing.T) {
	c := mkController(t, "LU")
	if err := c.SetCap(150); err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -5} {
		if err := c.SetCap(w); err == nil {
			t.Fatalf("SetCap(%v) accepted", w)
		}
		if c.Cap() != 150 {
			t.Fatalf("rejected cap %v still changed the cap to %v", w, c.Cap())
		}
	}
}

// fakeTelemetry scripts the telemetry hook for controller tests.
type fakeTelemetry struct {
	value   func(truePower float64) float64
	trusted bool
}

func (f fakeTelemetry) Measure(truePower, expected float64) (float64, bool) {
	return f.value(truePower), f.trusted
}

func TestTickSurvivesNonFiniteMeasurement(t *testing.T) {
	c := mkController(t, "LU")
	c.SetCap(160)
	c.Settle(20, nil)
	lvl := c.Level()
	c.Telemetry = fakeTelemetry{value: func(float64) float64 { return math.NaN() }, trusted: true}
	for i := 0; i < 5; i++ {
		s := c.Tick(nil)
		if s.Trusted {
			t.Fatal("NaN measurement marked trusted")
		}
		if math.IsNaN(s.Measured) || math.IsNaN(s.Power) {
			t.Fatal("NaN leaked into the sample")
		}
	}
	if c.Level() > lvl {
		t.Fatalf("level climbed from %d to %d on NaN telemetry", lvl, c.Level())
	}
}

func TestUntrustedTelemetryNeverStepsUp(t *testing.T) {
	c := mkController(t, "LU")
	c.SetCap(160)
	c.Settle(20, nil)
	lvl := c.Level()
	// A stuck-low sensor screams "way under cap"; untrusted readings must
	// not drive the level up regardless.
	c.Telemetry = fakeTelemetry{value: func(float64) float64 { return 20 }, trusted: false}
	for i := 0; i < 10; i++ {
		c.Tick(nil)
	}
	if c.Level() > lvl {
		t.Fatalf("untrusted telemetry ratcheted level %d → %d", lvl, c.Level())
	}
}

func TestUntrustedTelemetryStillShedsOnCapCut(t *testing.T) {
	c := mkController(t, "LU")
	c.SetCap(200)
	c.Settle(20, nil)
	// Cut the cap while the sensor is untrusted: the model-guided safe
	// branch must still walk the level down under the new cap.
	c.Telemetry = fakeTelemetry{value: func(tp float64) float64 { return tp }, trusted: false}
	c.SetCap(120)
	s := c.Settle(20, nil)
	if s.Power > 120 {
		t.Fatalf("power %v above the cut cap despite the safe-direction walk", s.Power)
	}
}

func TestEmergencyToDropsWithinOneCall(t *testing.T) {
	c := mkController(t, "LU")
	c.SetCap(200)
	c.Settle(20, nil)
	if err := c.EmergencyTo(120); err != nil {
		t.Fatal(err)
	}
	if p := c.Tick(nil).Power; p > 120 {
		t.Fatalf("power %v still above 120 immediately after EmergencyTo", p)
	}
	if err := c.EmergencyTo(math.NaN()); err == nil {
		t.Fatal("EmergencyTo accepted a NaN cap")
	}
}

func TestControllerConvergesBelowCap(t *testing.T) {
	c := mkController(t, "BT")
	for _, cap := range []float64{120, 140, 160, 180, 200} {
		c.SetCap(cap)
		s := c.Settle(50, nil)
		if s.Power > cap+1e-9 {
			t.Fatalf("cap %v: settled power %v exceeds cap", cap, s.Power)
		}
		// And it should be the highest level fitting under the cap.
		if s.Level+1 < len(workload.DVFSLevels) {
			nextPower := workload.PowerAtDVFS(workload.DefaultServer,
				workload.DVFSLevels[s.Level+1], workload.DVFSLevels[0], workload.DVFSLevels[len(workload.DVFSLevels)-1])
			if nextPower <= cap {
				t.Fatalf("cap %v: level %d not maximal (next level power %v fits)", cap, s.Level, nextPower)
			}
		}
	}
}

func TestHigherCapNeverLowersThroughput(t *testing.T) {
	c := mkController(t, "EP")
	prev := -1.0
	for cap := 110.0; cap <= 200; cap += 10 {
		c.SetCap(cap)
		s := c.Settle(50, nil)
		if s.Throughput < prev-1e-9 {
			t.Fatalf("throughput decreased when cap rose to %v", cap)
		}
		prev = s.Throughput
	}
}

func TestControllerReactsToCapDrop(t *testing.T) {
	c := mkController(t, "SP")
	c.SetCap(200)
	before := c.Settle(50, nil)
	if before.Level == 0 {
		t.Fatal("open cap must drive a high level")
	}
	c.SetCap(120)
	after := c.Settle(50, nil)
	if after.Power > 120 {
		t.Fatalf("power %v exceeds lowered cap", after.Power)
	}
	if after.Level >= before.Level {
		t.Fatal("lower cap must reduce the level")
	}
}

func TestControllerStableUnderNoise(t *testing.T) {
	c := mkController(t, "MG")
	c.NoiseRel = 0.02
	c.SetCap(160)
	rng := rand.New(rand.NewSource(5))
	c.Settle(50, rng)
	// After settling, the level must stay within one step and power within
	// cap for the vast majority of periods.
	over := 0
	minL, maxL := c.Level(), c.Level()
	for i := 0; i < 500; i++ {
		s := c.Tick(rng)
		if s.OverCap {
			over++
		}
		if s.Level < minL {
			minL = s.Level
		}
		if s.Level > maxL {
			maxL = s.Level
		}
	}
	if maxL-minL > 1 {
		t.Fatalf("level chattering across %d levels", maxL-minL+1)
	}
	if over > 25 { // 5 %
		t.Fatalf("over-cap in %d/500 noisy periods", over)
	}
}

// Property: from any starting cap sequence, settled power never exceeds the
// final cap, for any benchmark.
func TestSettleRespectsCapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := workload.HPC[rng.Intn(len(workload.HPC))]
		c, err := NewController(b, workload.DefaultServer)
		if err != nil {
			return false
		}
		for k := 0; k < 4; k++ {
			cap := 100 + rng.Float64()*100
			c.SetCap(cap)
			s := c.Settle(40, nil)
			if s.Power > c.Cap()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
