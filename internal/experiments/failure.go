package experiments

import (
	"fmt"
	"math/rand"

	"powercap/internal/diba"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Failure exercises the fault-isolation claim of Section 4.2 ("the failure
// in one or few servers ... can be mitigated as the overall performance of
// the system does not hinge on a particular unit"): servers crash one
// after another on a chord-augmented ring, and the survivors re-converge
// to the survivor problem's optimum without ever exceeding the (shrunk)
// budget. A plain ring is shown disconnecting, which is why chords exist.
func Failure(scale Scale, seed int64) (Table, error) {
	n := scale.pick(100, 400)
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return Table{}, err
	}
	us := a.UtilitySlice()
	budget := 175.0 * float64(n)
	en, err := diba.New(topology.ChordalRing(n, n/7), us, budget, diba.Config{})
	if err != nil {
		return Table{}, err
	}
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		return Table{}, err
	}
	en.RunToTarget(opt.Utility, 0.99, scale.pick(10000, 30000))

	t := Table{
		ID:      "failure",
		Title:   fmt.Sprintf("Cascading node failures on a chordal ring (N=%d)", n),
		Columns: []string{"event", "live nodes", "budget (kW)", "power (kW)", "survivor-opt ratio", "recovery iters"},
		Notes: []string{
			"expected shape: every crash shrinks the budget conservatively; survivors re-converge ≥99% of their own optimum; power never exceeds the budget",
		},
	}
	ratio := en.TotalUtility() / opt.Utility
	t.AddRow("initial convergence", n, en.Budget()/1000, en.TotalPower()/1000,
		fmt.Sprintf("%.4f", ratio), en.Iter())

	dead := map[int]bool{}
	victims := []int{n / 10, n / 2, 3 * n / 4, n/2 + 1}
	for k, victim := range victims {
		if err := en.FailNode(victim); err != nil {
			return Table{}, fmt.Errorf("experiments: failing node %d: %w", victim, err)
		}
		dead[victim] = true
		liveUs := make([]workload.Utility, 0, n-len(dead))
		for i, u := range us {
			if !dead[i] {
				liveUs = append(liveUs, u)
			}
		}
		liveOpt, err := solver.Optimal(liveUs, en.Budget())
		if err != nil {
			return Table{}, err
		}
		start := en.Iter()
		res := en.RunToTarget(liveOpt.Utility, 0.99, scale.pick(10000, 30000))
		label := fmt.Sprintf("crash #%d (node %d)", k+1, victim)
		violated := ""
		if res.Power > en.Budget() {
			violated = " VIOLATION"
		}
		t.AddRow(label+violated, n-len(dead), en.Budget()/1000, res.Power/1000,
			fmt.Sprintf("%.4f", res.Utility/liveOpt.Utility), en.Iter()-start)
	}

	// Contrast: a plain ring cannot even survive two separated failures.
	plain, err := diba.New(topology.Ring(12), us[:12], 12*175, diba.Config{})
	if err != nil {
		return Table{}, err
	}
	_ = plain.FailNode(3)
	if err := plain.FailNode(9); err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("plain-ring contrast: second failure refused as expected (%v)", err))
	} else {
		t.Notes = append(t.Notes, "WARNING: plain ring accepted a disconnecting failure")
	}
	return t, nil
}
