package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"powercap/internal/diba"
	"powercap/internal/netsim"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Safety quantifies the property the paper's title is about: how *fast*
// each architecture restores Σp ≤ P after an emergency budget cut (a
// tripped feeder, a failed CRAC — the scenarios Chapter 2 motivates power
// capping with). Until compliance, the cluster draws above the new limit;
// the table reports both the time to compliance and the excess energy
// burned through the breaker's margin in that window.
//
//   - Centralized: nothing changes until the coordinator has gathered all
//     utilities, solved, and scattered the new caps — one full round trip
//     plus solve time, all of it spent in violation.
//   - Primal-dual: caps move every iteration, but each iteration costs a
//     serial coordinator round; compliance waits for the price to climb.
//   - DiBA: the budget announcement itself carries enough information for
//     every node to shed its share immediately (the SetBudget path); the
//     cluster is compliant after one broadcast hop, before any
//     optimization rounds run. Re-optimizing for quality then proceeds in
//     the background.
func Safety(scale Scale, seed int64) (Table, error) {
	n := scale.pick(400, 1000)
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0.01, rng)
	if err != nil {
		return Table{}, err
	}
	us := a.UtilitySlice()
	oldBudget := 186.0 * float64(n)
	newBudget := 160.0 * float64(n)

	// Start every scheme at the old optimum.
	oldOpt, err := solver.Optimal(us, oldBudget)
	if err != nil {
		return Table{}, err
	}
	overdraw := 0.0
	for _, p := range oldOpt.Alloc {
		overdraw += p
	}
	overdraw -= newBudget // watts above the new limit at t=0

	t := Table{
		ID:    "safety",
		Title: fmt.Sprintf("Time to restore Σp ≤ P after an emergency cut 186→160 W/node (N=%d)", n),
		Columns: []string{"scheme", "time to compliance (ms)", "excess energy (J)",
			"mechanism"},
		Notes: []string{
			"expected shape: DiBA complies after one broadcast hop (sub-millisecond), orders of magnitude before the coordinator schemes; excess energy scales accordingly",
		},
	}
	link := netsim.Measured

	// Centralized: violation persists for gather + solve + scatter.
	start := time.Now()
	if _, err := solver.Optimal(us, newBudget); err != nil {
		return Table{}, err
	}
	solveTime := time.Since(start)
	centTime := link.CentralizedRound(n) + solveTime
	t.AddRow("centralized",
		fmt.Sprintf("%.2f", netsim.Millis(centTime)),
		fmt.Sprintf("%.1f", overdraw*centTime.Seconds()),
		"full gather+solve+scatter before any cap moves")

	// Primal-dual: price climbs from the old optimum's price; count
	// iterations until the responses fit under the new budget.
	pdIters := 0
	{
		lambda := oldOpt.Price
		alloc := make([]float64, n)
		respond := func(l float64) float64 {
			var sum float64
			for i, u := range us {
				alloc[i] = u.(workload.Quadratic).BestResponse(l)
				sum += alloc[i]
			}
			return sum
		}
		// Use the same conditioned step the PD baseline derives.
		step := estimatePDStep(us, newBudget)
		for pdIters = 1; pdIters < 10000; pdIters++ {
			sum := respond(lambda)
			if sum <= newBudget {
				break
			}
			lambda += step * (sum - newBudget)
		}
	}
	pdTime := link.PDTotal(n, pdIters)
	t.AddRow("primal-dual",
		fmt.Sprintf("%.2f", netsim.Millis(pdTime)),
		fmt.Sprintf("%.1f", overdraw*pdTime.Seconds()),
		fmt.Sprintf("%d serial coordinator rounds until the price catches up", pdIters))

	// DiBA: verify the SetBudget path restores compliance with zero rounds,
	// then charge one broadcast hop for the announcement.
	en, err := diba.New(topology.Ring(n), us, oldBudget, diba.Config{})
	if err != nil {
		return Table{}, err
	}
	en.RunToTarget(oldOpt.Utility, 0.99, scale.pick(5000, 20000))
	if err := en.SetBudget(newBudget); err != nil {
		return Table{}, err
	}
	roundsToComply := 0
	for en.TotalPower() > newBudget && roundsToComply < 1000 {
		en.Step()
		roundsToComply++
	}
	dibaTime := link.DiBARound() + time.Duration(roundsToComply)*link.DiBARound()
	t.AddRow("DiBA",
		fmt.Sprintf("%.2f", netsim.Millis(dibaTime)),
		fmt.Sprintf("%.1f", overdraw*dibaTime.Seconds()),
		fmt.Sprintf("local shedding on the announcement itself (%d extra rounds needed)", roundsToComply))
	return t, nil
}

// estimatePDStep mirrors the PD baseline's slope conditioning for the
// compliance race.
func estimatePDStep(us []workload.Utility, budget float64) float64 {
	var lambdaHi float64
	for _, u := range us {
		if g := u.Grad(u.MinPower()); g > lambdaHi {
			lambdaHi = g
		}
	}
	respond := func(l float64) float64 {
		var sum float64
		for _, u := range us {
			sum += u.(workload.Quadratic).BestResponse(l)
		}
		return sum
	}
	const samples = 16
	var maxSlope float64
	prevL, prevG := 0.0, respond(0)
	for k := 1; k <= samples; k++ {
		l := lambdaHi * float64(k) / samples
		g := respond(l)
		if s := (prevG - g) / (l - prevL); s > maxSlope {
			maxSlope = s
		}
		prevL, prevG = l, g
	}
	if maxSlope <= 0 {
		return 1e-4
	}
	return 1 / maxSlope
}
