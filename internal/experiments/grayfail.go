package experiments

import (
	"fmt"
	"math/rand"

	"powercap/internal/diba"
	"powercap/internal/workload"
)

// GrayFail measures gray-failure tolerance with the deterministic
// virtual-slot-time model (diba.RunGraySim): one node of a DiBA ring stays
// alive but its links run σ× slower than the healthy 1-slot latency, and
// the same scenario runs once with the fixed-deadline baseline gather and
// once with straggler-tolerant rounds (adaptive deadlines + stale-proceed
// reconciliation). Reported per regime: the asymptotic round period in
// slots, how many node-rounds stalled (> 3 slots), how the mitigation
// split between substitution and soft-exclusion, and the conservation gap
// after every late frame settled.
func GrayFail(scale Scale, seed int64) (Table, error) {
	n := scale.pick(16, 48)
	rounds := scale.pick(400, 1600)
	const slow = 5
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return Table{}, err
	}
	us := a.UtilitySlice()
	budget := 170.0 * float64(n)

	t := Table{
		ID:    "grayfail",
		Title: fmt.Sprintf("Gray failure: ring N=%d, node %d slowed σ×, %d rounds (virtual slot time)", n, slow, rounds),
		Columns: []string{"sigma", "gather", "slots/round", "stalled rounds",
			"substituted", "soft-excluded", "unsettled", "|Σe−(Σp−B)|"},
		Notes: []string{
			"expected shape: the fixed-deadline ring throttles to the slow node's pace (slots/round → σ, nearly every round stalled);",
			"straggler-tolerant rounds hold slots/round ≤ the adaptive deadline (2 slots) at every σ, with ≥5x fewer stalled rounds;",
			"substitution carries moderate σ, soft-exclusion takes over once the straggler lags past MaxLag rounds;",
			"every stale substitution settles against the true frame: unsettled is 0 and the budget identity holds to float precision",
		},
	}

	for _, sigma := range []int{2, 5, 10, 20} {
		for _, tolerant := range []bool{false, true} {
			res, err := diba.RunGraySim(diba.GraySimConfig{
				N: n, Slow: slow, Sigma: sigma, Tolerant: tolerant,
				Rounds: rounds, BudgetW: budget, Util: us,
			})
			if err != nil {
				return Table{}, err
			}
			mode := "fixed"
			if tolerant {
				mode = "tolerant"
			}
			t.AddRow(sigma, mode, fmt.Sprintf("%.3f", res.SlotsPerRound),
				res.StalledRounds, res.Substituted, res.SoftExcluded,
				res.Outstanding, fmt.Sprintf("%.3g", res.MaxAbsGap))
		}
	}
	return t, nil
}
