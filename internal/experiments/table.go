// Package experiments regenerates every table and figure of the source
// text's evaluation. Each experiment is a function returning a Table —
// the same rows/series the paper reports — so the cmd/repro binary and the
// repository benchmarks share one implementation. The DESIGN.md
// per-experiment index maps experiment IDs to these functions.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// ID is the experiment id, e.g. "fig4.3" or "table4.2".
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are formatted cells.
	Rows [][]string
	// Notes carry the expected shape from the paper and any caveats.
	Notes []string
}

// AddRow appends a formatted row built from the arguments.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table as aligned text.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table as CSV (header row first, notes as trailing
// comment lines), the format downstream plotting scripts consume.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Scale selects experiment sizing: Full reproduces the paper's parameters,
// Quick shrinks cluster sizes and iteration budgets for CI and benchmarks
// while preserving every qualitative shape.
type Scale int

const (
	Quick Scale = iota
	Full
)

// pick returns quick or full depending on the scale.
func (s Scale) pick(quick, full int) int {
	if s == Full {
		return full
	}
	return quick
}
